// Command sweep runs a custom (configuration x application) matrix and
// prints a CSV of cycles, IPC, bank conflicts, and issue CoV — the
// building block for studies beyond the paper's figures.
//
// Usage:
//
//	sweep -apps pb-mriq,rod-srad -configs gto,rba,fc
//	sweep -suite cugraph -configs gto,rba,srr,shuffle,fc -sms 4
//	sweep -sensitive -configs gto,rba > rba_study.csv
//	sweep -apps pb-mriq,pb-sgemm -configs gto -profile -   # simulator profile (JSON)
//
// Config tokens: gto (baseline), lrr, rba, srr, shuffle, rba+shuffle,
// rba+srr, fc, fc+rba, steal, Ncu (e.g. 4cu), Nbank (e.g. 4bank).
//
// With -profile the sweep runs serially and emits a machine-readable
// simulator-performance report instead of the CSV: per-app wall-clock,
// simulated cycles/sec and instructions/sec, and heap allocations — the
// baseline future performance work diffs against.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/exp"
	"repro/internal/workloads"
)

func main() {
	var (
		appsFlag  = flag.String("apps", "", "comma-separated application names")
		suite     = flag.String("suite", "", "run a whole suite")
		sensitive = flag.Bool("sensitive", false, "run the Table III sensitive subset")
		cfgsFlag  = flag.String("configs", "gto,rba", "comma-separated config tokens")
		sms       = flag.Int("sms", 4, "number of SMs")
		profile   = flag.String("profile", "", "write a simulator-performance JSON report to this file ('-' = stdout) instead of the CSV")
	)
	flag.Parse()

	apps, err := selectApps(*appsFlag, *suite, *sensitive)
	if err != nil {
		fatal(err)
	}
	var cfgs []repro.Config
	var names []string
	for _, tok := range strings.Split(*cfgsFlag, ",") {
		tok = strings.TrimSpace(tok)
		c, err := parseConfig(tok, *sms)
		if err != nil {
			fatal(err)
		}
		cfgs = append(cfgs, c)
		names = append(names, tok)
	}

	if *profile != "" {
		rep, err := exp.Profile(cfgs, names, apps)
		if err != nil {
			fatal(err)
		}
		out := os.Stdout
		if *profile != "-" {
			f, err := os.Create(*profile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := rep.WriteJSON(out); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Print("app,config,cycles,instructions,ipc,bank_conflicts,issue_cov\n")
	for _, app := range apps {
		for ci, cfg := range cfgs {
			r, err := repro.Run(cfg, app)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s,%s,%d,%d,%.4f,%d,%.4f\n",
				app.Name, names[ci], r.Cycles, r.Instructions, r.IPC(),
				r.TotalBankConflicts(), r.IssueCoV())
		}
	}
}

func selectApps(list, suite string, sensitive bool) ([]repro.App, error) {
	switch {
	case list != "":
		var out []repro.App
		for _, name := range strings.Split(list, ",") {
			a, err := repro.AppByName(strings.TrimSpace(name))
			if err != nil {
				return nil, err
			}
			out = append(out, a)
		}
		return out, nil
	case suite != "":
		out := repro.AppsBySuite(suite)
		if len(out) == 0 {
			return nil, fmt.Errorf("unknown suite %q (have %v)", suite, workloads.Suites())
		}
		return out, nil
	case sensitive:
		return repro.SensitiveWorkloads(), nil
	default:
		return repro.Workloads(), nil
	}
}

func parseConfig(tok string, sms int) (repro.Config, error) {
	base := repro.VoltaV100().WithSMs(sms)
	switch tok {
	case "gto", "base", "":
		return base, nil
	case "lrr":
		return base.WithScheduler(repro.SchedLRR), nil
	case "rba":
		return base.WithScheduler(repro.SchedRBA), nil
	case "srr":
		return base.WithAssign(repro.AssignSRR), nil
	case "shuffle":
		return base.WithAssign(repro.AssignShuffle), nil
	case "rba+shuffle", "shuffle+rba":
		return base.WithScheduler(repro.SchedRBA).WithAssign(repro.AssignShuffle), nil
	case "rba+srr", "srr+rba":
		return base.WithScheduler(repro.SchedRBA).WithAssign(repro.AssignSRR), nil
	case "fc":
		return repro.FullyConnected().WithSMs(sms), nil
	case "fc+rba":
		return repro.FullyConnected().WithSMs(sms).WithScheduler(repro.SchedRBA), nil
	case "steal":
		return base.WithBankStealing(), nil
	}
	if n, ok := strings.CutSuffix(tok, "cu"); ok {
		v, err := strconv.Atoi(n)
		if err == nil && v > 0 {
			return base.WithCUs(v), nil
		}
	}
	if n, ok := strings.CutSuffix(tok, "bank"); ok {
		v, err := strconv.Atoi(n)
		if err == nil && v > 0 {
			return base.WithBanks(v), nil
		}
	}
	return repro.Config{}, fmt.Errorf("unknown config token %q", tok)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
