// Command sweep runs a custom (configuration x application) matrix and
// prints a CSV of cycles, IPC, bank conflicts, and issue CoV — the
// building block for studies beyond the paper's figures.
//
// Usage:
//
//	sweep -apps pb-mriq,rod-srad -configs gto,rba,fc
//	sweep -suite cugraph -configs gto,rba,srr,shuffle,fc -sms 4
//	sweep -sensitive -configs gto,rba > rba_study.csv
//	sweep -apps pb-mriq,pb-sgemm -configs gto -profile -   # simulator profile (JSON)
//	sweep -sensitive -checkpoint run.ckpt -diag diag/      # fault-tolerant campaign
//
// Config tokens: gto (baseline), lrr, rba, srr, shuffle, rba+shuffle,
// rba+srr, fc, fc+rba, steal, Ncu (e.g. 4cu), Nbank (e.g. 4bank).
//
// The matrix executes on the fault-tolerant harness (internal/harness,
// docs/ROBUSTNESS.md): cells run in parallel under panic isolation, a
// per-cell wall-clock -timeout, a simulated-cycle cap (-max-cycles), and
// a forward-progress watchdog (-watchdog). A faulted cell is reported on
// stderr — with a flight-recorder dump under -diag when set — and the
// remaining cells keep running; the exit status is 1 if any cell
// faulted. With -checkpoint, completed cells stream to an append-only
// JSONL file and a re-run with the same flags resumes, re-running only
// the missing/faulted cells. Interrupting with Ctrl-C or SIGTERM
// checkpoints cleanly.
//
// With -snapshot-dir, each in-flight cell additionally persists its full
// mid-kernel device state — periodically under -snapshot-interval, and
// always on a graceful shutdown signal — and a restart with
// -resume-snapshots continues those cells mid-kernel with byte-identical
// final statistics (docs/ROBUSTNESS.md). -audit N arms the runtime
// invariant auditor every N cycles; a corrupted simulation dies as a
// structured audit fault instead of producing silently wrong numbers.
//
// With -profile the sweep runs serially and emits a machine-readable
// simulator-performance report instead of the CSV: per-app wall-clock,
// simulated cycles/sec and instructions/sec, and heap allocations — the
// baseline future performance work diffs against.
//
// With -metrics-addr the sweep serves live telemetry over HTTP for its
// duration (docs/OBSERVABILITY.md): `curl $addr/metrics` returns
// Prometheus-format counters and gauges — per-cell heartbeat progress,
// faults by kind, the aggregated CPI stack — and /debug/vars the same
// as JSON. With -bench-out the completed matrix is also written as a
// BENCH_<date>.json performance baseline for cmd/benchdiff.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/bench"
	"repro/internal/exp"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

func main() {
	var (
		appsFlag  = flag.String("apps", "", "comma-separated application names")
		suite     = flag.String("suite", "", "run a whole suite")
		sensitive = flag.Bool("sensitive", false, "run the Table III sensitive subset")
		cfgsFlag  = flag.String("configs", "gto,rba", "comma-separated config tokens")
		sms       = flag.Int("sms", 4, "number of SMs")
		profile   = flag.String("profile", "", "write a simulator-performance JSON report to this file ('-' = stdout) instead of the CSV")
		timeout   = flag.Duration("timeout", 0, "per-cell wall-clock budget (0 = unlimited)")
		maxCycles = flag.Int64("max-cycles", 0, "per-kernel simulated-cycle cap (0 = simulator default)")
		watchdog  = flag.Duration("watchdog", time.Second, "forward-progress watchdog interval (0 = disabled)")
		workers   = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		ckpt      = flag.String("checkpoint", "", "append completed cells to this JSONL file and resume from it")
		diag      = flag.String("diag", "", "write flight-recorder dumps for faulted cells to this directory")
		metricsAt = flag.String("metrics-addr", "", "serve live telemetry on this address (e.g. 127.0.0.1:9090; empty = off)")
		benchOut  = flag.String("bench-out", "", "write the completed matrix as a performance baseline JSON (for benchdiff)")
		noFF      = flag.Bool("no-fastforward", false, "disable the idle-cycle fast-forward (debugging escape hatch; results are identical, only slower)")
		snapDir   = flag.String("snapshot-dir", "", "persist per-cell mid-kernel device snapshots to this directory (resume with -resume-snapshots)")
		snapEvery = flag.Int64("snapshot-interval", 0, "simulated-cycle period between periodic snapshots (0 = only the final frame on SIGTERM/Ctrl-C; needs -snapshot-dir)")
		resumeSnp = flag.Bool("resume-snapshots", false, "resume interrupted cells mid-kernel from their -snapshot-dir frames (results are byte-identical to uninterrupted runs)")
		auditEv   = flag.Int64("audit", 0, "run the runtime invariant auditor every N simulated cycles; violations fault the cell as a structured audit fault (0 = off)")
	)
	flag.Parse()

	apps, err := selectApps(*appsFlag, *suite, *sensitive)
	if err != nil {
		fatal(err)
	}
	var cfgs []repro.Config
	var names []string
	for _, tok := range strings.Split(*cfgsFlag, ",") {
		tok = strings.TrimSpace(tok)
		c, err := parseConfig(tok, *sms)
		if err != nil {
			fatal(err)
		}
		if *noFF {
			c = c.WithNoFastForward()
		}
		if *auditEv > 0 {
			c = c.WithAudit(*auditEv)
		}
		cfgs = append(cfgs, c)
		names = append(names, tok)
	}

	if *profile != "" {
		rep, err := exp.Profile(cfgs, names, apps)
		if err != nil {
			fatal(err)
		}
		out := os.Stdout
		if *profile != "-" {
			f, err := os.Create(*profile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := rep.WriteJSON(out); err != nil {
			fatal(err)
		}
		return
	}

	// Ctrl-C and SIGTERM cancel the sweep gracefully: completed cells are
	// already in the checkpoint, and with -snapshot-dir each in-flight
	// cell writes a final mid-kernel frame on its way down — a re-run
	// with -resume-snapshots continues those cells where the signal
	// landed instead of re-simulating them.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// Live telemetry: counters/gauges scrapeable for the sweep's
	// duration; a hung cell shows as a stalled heartbeat gauge.
	var reg *metrics.Registry
	if *metricsAt != "" {
		reg = metrics.New()
		srv, err := metrics.Serve(*metricsAt, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sweep: telemetry at http://%s/metrics\n", srv.Addr())
	}

	res, err := harness.Run(ctx, cfgs, names, apps, harness.Options{
		Workers:          *workers,
		Timeout:          *timeout,
		MaxCycles:        *maxCycles,
		WatchdogInterval: *watchdog,
		CheckpointPath:   *ckpt,
		DiagDir:          *diag,
		SnapshotDir:      *snapDir,
		SnapshotInterval: *snapEvery,
		ResumeSnapshots:  *resumeSnp,
		Metrics:          reg,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}

	if *benchOut != "" {
		b := bench.FromResult(res, apps, names, time.Now().UTC().Format(time.RFC3339))
		if err := b.WriteFile(*benchOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sweep: wrote %d-cell baseline to %s\n", len(b.Cells), *benchOut)
	}

	fmt.Print("app,config,cycles,instructions,ipc,bank_conflicts,issue_cov\n")
	for i, app := range apps {
		for j := range cfgs {
			r := res.Runs[i][j]
			if r == nil {
				continue // faulted; reported via Logf and the summary
			}
			fmt.Printf("%s,%s,%d,%d,%.4f,%d,%.4f\n",
				app.Name, names[j], r.Cycles, r.Instructions, r.IPC(),
				r.TotalBankConflicts(), r.IssueCoV())
		}
	}
	if !res.Complete() {
		fmt.Fprintf(os.Stderr, "sweep: %d/%d cells faulted (%d completed", len(res.Faults),
			len(apps)*len(cfgs), len(apps)*len(cfgs)-len(res.Faults))
		if *ckpt != "" {
			fmt.Fprintf(os.Stderr, "; rerun with -checkpoint %s to retry only the faulted cells", *ckpt)
		}
		fmt.Fprintln(os.Stderr, ")")
		os.Exit(1)
	}
}

func selectApps(list, suite string, sensitive bool) ([]repro.App, error) {
	switch {
	case list != "":
		var out []repro.App
		for _, name := range strings.Split(list, ",") {
			a, err := repro.AppByName(strings.TrimSpace(name))
			if err != nil {
				return nil, err
			}
			out = append(out, a)
		}
		return out, nil
	case suite != "":
		out, err := repro.AppsBySuite(suite)
		if err != nil {
			return nil, err
		}
		if len(out) == 0 {
			suites, serr := workloads.Suites()
			if serr != nil {
				return nil, serr
			}
			return nil, fmt.Errorf("unknown suite %q (have %v)", suite, suites)
		}
		return out, nil
	case sensitive:
		return repro.SensitiveWorkloads()
	default:
		return repro.Workloads()
	}
}

func parseConfig(tok string, sms int) (repro.Config, error) {
	base := repro.VoltaV100().WithSMs(sms)
	switch tok {
	case "gto", "base", "":
		return base, nil
	case "lrr":
		return base.WithScheduler(repro.SchedLRR), nil
	case "rba":
		return base.WithScheduler(repro.SchedRBA), nil
	case "srr":
		return base.WithAssign(repro.AssignSRR), nil
	case "shuffle":
		return base.WithAssign(repro.AssignShuffle), nil
	case "rba+shuffle", "shuffle+rba":
		return base.WithScheduler(repro.SchedRBA).WithAssign(repro.AssignShuffle), nil
	case "rba+srr", "srr+rba":
		return base.WithScheduler(repro.SchedRBA).WithAssign(repro.AssignSRR), nil
	case "fc":
		return repro.FullyConnected().WithSMs(sms), nil
	case "fc+rba":
		return repro.FullyConnected().WithSMs(sms).WithScheduler(repro.SchedRBA), nil
	case "steal":
		return base.WithBankStealing(), nil
	}
	if n, ok := strings.CutSuffix(tok, "cu"); ok {
		v, err := strconv.Atoi(n)
		if err == nil && v > 0 {
			return base.WithCUs(v), nil
		}
	}
	if n, ok := strings.CutSuffix(tok, "bank"); ok {
		v, err := strconv.Atoi(n)
		if err == nil && v > 0 {
			return base.WithBanks(v), nil
		}
	}
	return repro.Config{}, fmt.Errorf("unknown config token %q", tok)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
