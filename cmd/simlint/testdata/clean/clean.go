// Package clean is a driver-test fixture with nothing to report: the
// exit-code contract test asserts simlint returns 0 on it.
package clean

// Add is deliberately boring.
func Add(a, b int) int { return a + b }
