// Package dirty is a driver-test fixture with exactly one guaranteed
// finding: a per-cycle function that heap-allocates, which the hotpath
// analyzer flags wherever it appears. The exit-code contract test
// asserts simlint returns 1 on it.
package dirty

// tick carries a hot stage word, so the allocation below is a finding.
func tick() []int {
	return make([]int, 8)
}
