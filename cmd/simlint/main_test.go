package main

import (
	"strings"
	"testing"
)

// The exit-code contract (package comment): 0 clean, 1 findings, 2
// driver/load error. CI scripts branch on these, so they are pinned by
// test, not convention.

func runDriver(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCleanIsZero(t *testing.T) {
	code, stdout, stderr := runDriver(t, "testdata/clean")
	if code != exitClean {
		t.Fatalf("clean fixture: exit %d, want %d (stderr: %s)", code, exitClean, stderr)
	}
	if stdout != "" {
		t.Errorf("clean fixture produced output: %q", stdout)
	}
}

func TestExitFindingsIsOne(t *testing.T) {
	code, stdout, stderr := runDriver(t, "testdata/dirty")
	if code != exitFindings {
		t.Fatalf("dirty fixture: exit %d, want %d (stderr: %s)", code, exitFindings, stderr)
	}
	if !strings.Contains(stdout, "hotpath") {
		t.Errorf("findings output does not name the analyzer: %q", stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("summary line missing from stderr: %q", stderr)
	}
}

func TestExitErrorIsTwo(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unloadable package pattern", []string{"./does-not-exist"}},
		{"unknown analyzer", []string{"-analyzers", "nosuch", "testdata/clean"}},
		{"unknown flag", []string{"-definitely-not-a-flag"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runDriver(t, tc.args...)
			if code != exitError {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, exitError, stderr)
			}
		})
	}
}

// TestJSONFindingsStillExitOne pins that -json changes the format, not
// the contract.
func TestJSONFindingsStillExitOne(t *testing.T) {
	code, stdout, _ := runDriver(t, "-json", "testdata/dirty")
	if code != exitFindings {
		t.Fatalf("exit %d, want %d", code, exitFindings)
	}
	if !strings.Contains(stdout, `"analyzer":"hotpath"`) {
		t.Errorf("JSON output missing analyzer field: %q", stdout)
	}
}
