// Command simlint runs the repository's custom static-analysis suite
// (internal/analysis) over the module and exits non-zero on findings.
// It is a tier-1 CI gate: the determinism, hot-path, trace-guard,
// fault-flow, monitor-poll, CPI-ledger, fast-forward, and value-flow
// (clock-taint, config-freeze, goroutine-sharing) invariants it
// enforces are the source-level half of the guarantees
// determinism_test.go and the harness chaos tests check dynamically.
// See docs/STATIC_ANALYSIS.md.
//
// Usage:
//
//	go run ./cmd/simlint ./...                 # whole module
//	go run ./cmd/simlint ./internal/smcore     # one package
//	go run ./cmd/simlint -analyzers hotpath ./...
//	go run ./cmd/simlint -json ./...           # machine-readable findings
//	go run ./cmd/simlint -strict-allow ./...   # also flag stale //simlint:allow
//	go run ./cmd/simlint internal/analysis/testdata/src/hotpath
//
// A directory argument under a testdata tree (which the go tool
// ignores) is loaded as a standalone fixture tree — the same path the
// golden tests use — so each analyzer's fixtures can be linted
// directly and demonstrably fail.
//
// Exit codes are part of the contract CI scripts rely on: 0 means the
// tree is clean, 1 means the analyzers produced findings, 2 means the
// run itself failed (bad flags, unloadable packages, internal error) —
// so a wrapper can distinguish "fix your code" from "fix the linter".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// jsonDiag is one finding in -json output, one object per line
// (JSON Lines), stable fields for CI problem matchers and tooling.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Chain    string `json:"chain,omitempty"`
}

// Exit codes, documented in the package comment and asserted by
// main_test.go.
const (
	exitClean    = 0
	exitFindings = 1
	exitError    = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges injected: argv after the command
// name, the two output streams, and the exit code as the return value.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as JSON Lines on stdout")
	strictAllow := fs.Bool("strict-allow", false,
		"report stale //simlint:allow directives (suppressing nothing) as findings")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: simlint [flags] [packages or fixture dirs]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitError
	}

	if *list {
		for _, a := range analysis.All {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	analyzers := analysis.All
	if *only != "" {
		var err error
		analyzers, err = analysis.ByName(*only)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitError
		}
	}

	rest := fs.Args()
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	var patterns []string
	var pkgs []*analysis.Package
	for _, a := range rest {
		if isFixtureDir(a) {
			fixture, err := analysis.LoadFixture(a)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return exitError
			}
			pkgs = append(pkgs, fixture...)
			continue
		}
		patterns = append(patterns, a)
	}
	if len(patterns) > 0 || len(pkgs) == 0 {
		loaded, err := analysis.Load(patterns...)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitError
		}
		pkgs = append(pkgs, loaded...)
	}

	runFn := analysis.RunAnalyzers
	if *strictAllow {
		runFn = analysis.RunAnalyzersStrict
	}
	diags, err := runFn(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitError
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		for _, d := range diags {
			jd := jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Chain:    d.Chain,
			}
			if err := enc.Encode(jd); err != nil {
				fmt.Fprintln(stderr, err)
				return exitError
			}
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return exitFindings
	}
	return exitClean
}

// isFixtureDir reports whether arg names a directory of Go files inside
// a testdata tree — invisible to `go list` and loaded as a fixture.
func isFixtureDir(arg string) bool {
	if !strings.Contains(filepath.ToSlash(arg), "testdata/") {
		return false
	}
	fi, err := os.Stat(arg)
	return err == nil && fi.IsDir()
}
