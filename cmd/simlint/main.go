// Command simlint runs the repository's custom static-analysis suite
// (internal/analysis) over the module and exits non-zero on findings.
// It is a tier-1 CI gate: the determinism, hot-path, trace-guard,
// fault-flow, monitor-poll, CPI-ledger, and fast-forward invariants it
// enforces are the source-level half of the guarantees
// determinism_test.go and the harness chaos tests check dynamically.
// See docs/STATIC_ANALYSIS.md.
//
// Usage:
//
//	go run ./cmd/simlint ./...                 # whole module
//	go run ./cmd/simlint ./internal/smcore     # one package
//	go run ./cmd/simlint -analyzers hotpath ./...
//	go run ./cmd/simlint -json ./...           # machine-readable findings
//	go run ./cmd/simlint -strict-allow ./...   # also flag stale //simlint:allow
//	go run ./cmd/simlint internal/analysis/testdata/src/hotpath
//
// A directory argument under a testdata tree (which the go tool
// ignores) is loaded as a standalone fixture tree — the same path the
// golden tests use — so each analyzer's fixtures can be linted
// directly and demonstrably fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// jsonDiag is one finding in -json output, one object per line
// (JSON Lines), stable fields for CI problem matchers and tooling.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Chain    string `json:"chain,omitempty"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as JSON Lines on stdout")
	strictAllow := flag.Bool("strict-allow", false,
		"report stale //simlint:allow directives (suppressing nothing) as findings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [flags] [packages or fixture dirs]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers := analysis.All
	if *only != "" {
		var err error
		analyzers, err = analysis.ByName(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var patterns []string
	var pkgs []*analysis.Package
	for _, a := range args {
		if isFixtureDir(a) {
			fixture, err := analysis.LoadFixture(a)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			pkgs = append(pkgs, fixture...)
			continue
		}
		patterns = append(patterns, a)
	}
	if len(patterns) > 0 || len(pkgs) == 0 {
		loaded, err := analysis.Load(patterns...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		pkgs = append(pkgs, loaded...)
	}

	run := analysis.RunAnalyzers
	if *strictAllow {
		run = analysis.RunAnalyzersStrict
	}
	diags, err := run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			jd := jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Chain:    d.Chain,
			}
			if err := enc.Encode(jd); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// isFixtureDir reports whether arg names a directory of Go files inside
// a testdata tree — invisible to `go list` and loaded as a fixture.
func isFixtureDir(arg string) bool {
	if !strings.Contains(filepath.ToSlash(arg), "testdata/") {
		return false
	}
	fi, err := os.Stat(arg)
	return err == nil && fi.IsDir()
}
