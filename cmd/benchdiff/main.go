// Command benchdiff compares two performance baselines written by
// `sweep -bench-out` (the BENCH_<date>.json format of internal/bench)
// and gates on geomean IPC regression.
//
// Usage:
//
//	benchdiff old.json new.json              # exit 1 if geomean IPC drops >= 2%
//	benchdiff -threshold 0.05 old.json new.json
//	benchdiff -warn old.json new.json        # report but always exit 0
//
// The comparison covers only deterministic fields (IPC, CPI-stack
// shares); wall-clock throughput is informational and never gates.
// Exit status: 0 = within threshold, 1 = regression, 2 = usage or I/O
// error.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 0.02, "geomean IPC regression gate (fraction, 0.02 = 2%)")
		warn      = flag.Bool("warn", false, "report regressions but exit 0 (first-landing / advisory mode)")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold f] [-warn] old.json new.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	old, err := bench.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := bench.ReadFile(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	d := bench.Compare(old, cur)
	d.Render(os.Stdout, *threshold)
	if d.Regression(*threshold) {
		fmt.Fprintf(os.Stderr, "benchdiff: REGRESSION: geomean IPC ratio %.4f < %.4f\n",
			d.Geomean, 1-*threshold)
		if !*warn {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchdiff: -warn set; exiting 0")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
