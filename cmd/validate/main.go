// Command validate runs the hardware-correlation experiments of the
// paper's methodology section: the Section V collector-unit count
// validation (seven register-file stress microbenchmarks against the
// silicon stand-in model) and the Section III-B FMA imbalance
// microbenchmark (Figure 3).
package main

import (
	"fmt"
	"os"

	"repro"
	"repro/internal/harness"
)

func main() {
	// Each validation experiment runs under panic isolation so a model
	// bug in one is reported as a structured fault while the other still
	// renders.
	failed := 0
	for _, id := range []string{"sec5cu", "fig3"} {
		err := harness.Guard(id, func() error {
			return repro.RenderExperiment(id, os.Stdout)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "validate: %s: %v\n", id, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
