// Command validate runs the hardware-correlation experiments of the
// paper's methodology section: the Section V collector-unit count
// validation (seven register-file stress microbenchmarks against the
// silicon stand-in model) and the Section III-B FMA imbalance
// microbenchmark (Figure 3).
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	for _, id := range []string{"sec5cu", "fig3"} {
		if err := repro.RenderExperiment(id, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "validate: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
