// Command experiments regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	experiments -list           # available figure/table ids
//	experiments fig9 fig17      # run specific experiments
//	experiments all             # run everything, paper order
//	experiments -format csv fig12 > fig12.csv
//	experiments -format json fig13
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/exp"
	"repro/internal/harness"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "output format: text, csv, json")
	timeout := flag.Duration("timeout", 0, "per-sweep-cell wall-clock budget (0 = unlimited)")
	maxCycles := flag.Int64("max-cycles", 0, "per-kernel simulated-cycle cap (0 = simulator default)")
	flag.Parse()

	// Experiment sweeps execute on the fault-tolerant harness; these
	// knobs bound each (app, config) cell of every experiment run below.
	exp.SweepOpts.Timeout = *timeout
	exp.SweepOpts.MaxCycles = *maxCycles
	exp.SweepOpts.Logf = func(f string, args ...any) {
		fmt.Fprintf(os.Stderr, f+"\n", args...)
	}

	if *list {
		for _, id := range repro.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [-list] <id>... | all")
		os.Exit(2)
	}
	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = repro.ExperimentIDs()
	}
	// Each experiment runs under panic isolation (harness.Guard): a bug
	// in one figure's driver reports a structured fault and a non-zero
	// exit after the remaining figures have run, instead of crashing the
	// whole batch.
	failed := 0
	for _, id := range ids {
		start := time.Now()
		err := harness.Guard(id, func() error {
			tbl, err := repro.Experiment(id)
			if err != nil {
				return err
			}
			return tbl.RenderAs(os.Stdout, *format)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d/%d experiment(s) failed\n", failed, len(ids))
		os.Exit(1)
	}
}
