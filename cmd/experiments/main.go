// Command experiments regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	experiments -list           # available figure/table ids
//	experiments fig9 fig17      # run specific experiments
//	experiments all             # run everything, paper order
//	experiments -format csv fig12 > fig12.csv
//	experiments -format json fig13
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "output format: text, csv, json")
	flag.Parse()

	if *list {
		for _, id := range repro.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [-list] <id>... | all")
		os.Exit(2)
	}
	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = repro.ExperimentIDs()
	}
	for _, id := range ids {
		start := time.Now()
		tbl, err := repro.Experiment(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := tbl.RenderAs(os.Stdout, *format); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}
