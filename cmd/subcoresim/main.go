// Command subcoresim runs one benchmark application on one GPU
// configuration and prints its statistics: cycles, IPC, per-sub-core
// issue balance, stall breakdown, bank conflicts, and cache behaviour.
//
// Usage:
//
//	subcoresim -app pb-mriq
//	subcoresim -app tpcU-q8 -assign srr -sms 20
//	subcoresim -app rod-srad -sched rba -cus 4
//	subcoresim -app pb-mriq -chrome-trace out.json   # open in ui.perfetto.dev
//	subcoresim -app pb-mriq -json > run.json         # full stats for scripting
//	subcoresim -list
//
// Observability (internal/trace): -chrome-trace records SM 0's structured
// event stream (issue, stalls, bank grants, LSU, writebacks, block
// lifecycle) plus sampled counters and exports Chrome trace-event JSON;
// -trace and -timeline print terminal sparklines from the same sampled
// counter series. -metrics-addr serves live telemetry over HTTP for the
// run's duration (`curl $addr/metrics`, docs/OBSERVABILITY.md): cycle
// and instruction counters updated at the monitor heartbeat, so a hung
// run shows as a stalled gauge. The text report ends with the top-down
// CPI stack (internal/stats): every sub-core cycle attributed to
// exactly one cause.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"
	"time"

	"repro"
	"repro/internal/config"
	"repro/internal/exp"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/plot"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		appName  = flag.String("app", "pb-mriq", "application name (see -list)")
		list     = flag.Bool("list", false, "list applications and exit")
		fc       = flag.Bool("fc", false, "use the fully-connected SM model")
		sched    = flag.String("sched", "gto", "warp scheduler: gto, lrr, rba")
		assign   = flag.String("assign", "rr", "sub-core assignment: rr, srr, shuffle")
		sms      = flag.Int("sms", 4, "number of SMs")
		cus      = flag.Int("cus", 0, "collector units per sub-core (0 = default)")
		banks    = flag.Int("banks", 0, "register banks per sub-core (0 = default)")
		steal    = flag.Bool("steal", false, "enable register bank stealing")
		rbaLat   = flag.Int("rba-latency", 0, "RBA score-update latency in cycles")
		trc      = flag.Bool("trace", false, "trace register-file reads/cycle on SM 0 and print a sparkline")
		timeline = flag.Bool("timeline", false, "print per-sub-core issue timelines for SM 0 (imbalance view)")
		chrome   = flag.String("chrome-trace", "", "write SM 0's event stream as Chrome trace-event JSON to this file")
		jsonOut  = flag.Bool("json", false, "dump the full run statistics as JSON instead of the text report")
		sample   = flag.Int("sample", 0, "counter sampling period in cycles (0 = per flag defaults)")
		ringCap  = flag.Int("ring", 0, "event ring capacity for -chrome-trace (0 = default; ring keeps the last N events)")
		cfgFile  = flag.String("config-file", "", "JSON file of configuration overrides (base: VoltaV100)")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget for the run (0 = unlimited)")
		maxCyc   = flag.Int64("max-cycles", 0, "per-kernel simulated-cycle cap (0 = simulator default)")
		metAddr  = flag.String("metrics-addr", "", "serve live telemetry on this address (e.g. 127.0.0.1:9090; empty = off)")
		noFF     = flag.Bool("no-fastforward", false, "disable the idle-cycle fast-forward (debugging escape hatch; results are identical, only slower)")
		snapDir  = flag.String("snapshot-dir", "", "persist mid-kernel device snapshots to this directory (resume with -resume-snapshots)")
		snapEvr  = flag.Int64("snapshot-interval", 0, "simulated-cycle period between periodic snapshots (0 = only the final frame on SIGTERM/Ctrl-C; needs -snapshot-dir)")
		resumeS  = flag.Bool("resume-snapshots", false, "resume an interrupted run mid-kernel from its -snapshot-dir frame (byte-identical results)")
		auditEv  = flag.Int64("audit", 0, "run the runtime invariant auditor every N simulated cycles; violations fault the run as a structured audit fault (0 = off)")
	)
	flag.Parse()

	if *list {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "name\tsuite\tsensitive\tkernels\tinstructions")
		apps, err := repro.Workloads()
		if err != nil {
			fatal(err)
		}
		for _, a := range apps {
			fmt.Fprintf(w, "%s\t%s\t%v\t%d\t%d\n", a.Name, a.Suite, a.Sensitive, len(a.Kernels), a.Instructions())
		}
		w.Flush()
		return
	}

	app, err := repro.AppByName(*appName)
	if err != nil {
		fatal(err)
	}

	cfg := repro.VoltaV100()
	if *fc {
		cfg = repro.FullyConnected()
	}
	if *cfgFile != "" {
		f, err := os.Open(*cfgFile)
		if err != nil {
			fatal(err)
		}
		cfg, err = config.FromJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	cfg = cfg.WithSMs(*sms)
	switch *sched {
	case "gto":
	case "lrr":
		cfg = cfg.WithScheduler(repro.SchedLRR)
	case "rba":
		cfg = cfg.WithScheduler(repro.SchedRBA)
	default:
		fatal(fmt.Errorf("unknown scheduler %q", *sched))
	}
	switch *assign {
	case "rr":
	case "srr":
		cfg = cfg.WithAssign(repro.AssignSRR)
	case "shuffle":
		cfg = cfg.WithAssign(repro.AssignShuffle)
	default:
		fatal(fmt.Errorf("unknown assignment %q", *assign))
	}
	if *cus > 0 {
		cfg = cfg.WithCUs(*cus)
	}
	if *banks > 0 {
		cfg = cfg.WithBanks(*banks)
	}
	if *steal {
		cfg = cfg.WithBankStealing()
	}
	if *noFF {
		cfg = cfg.WithNoFastForward()
	}
	if *auditEv > 0 {
		cfg = cfg.WithAudit(*auditEv)
	}
	cfg.RBAScoreLatency = *rbaLat

	// The sampled counter time-series (internal/trace) drives -trace,
	// -timeline, and the counter tracks of -chrome-trace. -trace needs
	// per-cycle resolution; the timeline and Perfetto views default to
	// the historical 32-cycle bucket.
	needTracer := *trc || *timeline || *chrome != ""
	period := *sample
	if period <= 0 && needTracer {
		if *trc {
			period = 1
		} else {
			period = 32
		}
	}
	if needTracer {
		cfg.TraceSamplePeriod = period
		if *ringCap > 0 {
			cfg.TraceRingCap = *ringCap
		}
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	// The run executes under the fault-tolerant harness: -timeout kills a
	// wall-clock overrun, -max-cycles caps simulated cycles (with one
	// retry at a raised cap), and a watchdog kills a livelocked model; a
	// simulator panic is reported as a structured fault instead of a
	// crash (docs/ROBUSTNESS.md).
	ctx, cancelRun := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancelRun()
	hopt := harness.Options{
		Timeout:          *timeout,
		MaxCycles:        *maxCyc,
		WatchdogInterval: time.Second,
		SnapshotDir:      *snapDir,
		SnapshotInterval: *snapEvr,
		ResumeSnapshots:  *resumeS,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	var tr *trace.Tracer
	if needTracer {
		tr = trace.New(trace.OptionsFor(&cfg, 0))
		hopt.Tracer = tr
	}
	if *metAddr != "" {
		reg := metrics.New()
		srv, err := metrics.Serve(*metAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		hopt.Metrics = reg
		fmt.Fprintf(os.Stderr, "subcoresim: telemetry at http://%s/metrics\n", srv.Addr())
	}
	r, fault := harness.RunOne(ctx, cfg, app, hopt)
	if needTracer {
		if err := tr.Close(); err != nil {
			fatal(err)
		}
	}
	if fault != nil {
		fatal(fault)
	}

	if *jsonOut {
		if err := exp.WriteRunJSON(os.Stdout, app.Name, cfg.Name, r); err != nil {
			fatal(err)
		}
	} else {
		report(cfg.Name, app.Name, r)
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteChrome(f, tr); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("\nwrote Chrome trace to %s (open in ui.perfetto.dev)\n", *chrome)
		}
	}

	c := tr.Counters()
	if *trc && c != nil {
		vals := make([]float64, c.Samples())
		for i, v := range c.RFReads {
			// Each granted read is warp-wide: scale to 4-byte register
			// reads per cycle (Fig 14's unit) and normalize by the period.
			vals[i] = float64(v) * float64(cfg.WarpSize) / float64(c.Period)
		}
		fmt.Println("\nSM0 register reads per cycle (Fig 14 style):")
		fmt.Println(plot.Series(appNameShort(*appName), vals, 100))
	}
	if *timeline && c != nil {
		// Aggregate samples into display buckets of >= 32 cycles so the
		// sparkline stays comparable across sampling periods.
		bucket := 1
		if c.Period < 32 {
			bucket = (32 + c.Period - 1) / c.Period
		}
		fmt.Printf("\nSM0 per-sub-core instructions issued (buckets of %d cycles):\n", bucket*c.Period)
		for sc, series := range c.IssueBySub {
			vals := make([]float64, 0, len(series)/bucket+1)
			for i := 0; i < len(series); i += bucket {
				var s float64
				for j := i; j < i+bucket && j < len(series); j++ {
					s += float64(series[j])
				}
				vals = append(vals, s)
			}
			fmt.Println(plot.Series(fmt.Sprintf("sub-core %d", sc), vals, 100))
		}
	}
}

func appNameShort(s string) string {
	if len(s) > 20 {
		return s[:20]
	}
	return s
}

func report(cfgName, appName string, r *repro.Result) {
	fmt.Printf("app:            %s\n", appName)
	fmt.Printf("config:         %s\n", cfgName)
	fmt.Printf("cycles:         %d\n", r.Cycles)
	fmt.Printf("instructions:   %d\n", r.Instructions)
	fmt.Printf("IPC:            %.3f\n", r.IPC())
	fmt.Printf("issue CoV:      %.3f (per-sub-core imbalance, Fig 17 metric)\n", r.IssueCoV())
	fmt.Printf("bank conflicts: %d (%.3f per read)\n", r.TotalBankConflicts(),
		safeDiv(r.TotalBankConflicts(), r.TotalRegReads()))
	fmt.Println("stalls (sub-core cycles):")
	for reason := stats.StallReason(1); reason < stats.NumStallReasons; reason++ {
		fmt.Printf("  %-12s %d\n", reason, r.TotalStalls(reason))
	}
	var hits, misses int64
	for i := range r.SMs {
		hits += r.SMs[i].L1Hits
		misses += r.SMs[i].L1Misses
	}
	if hits+misses > 0 {
		fmt.Printf("L1 hit rate:    %.3f\n", float64(hits)/float64(hits+misses))
	}
	st := r.CPIStack()
	shares := st.Shares()
	fmt.Println("CPI stack (top-down, every sub-core cycle attributed once):")
	for c := stats.CPIComponent(0); c < stats.NumCPIComponents; c++ {
		fmt.Printf("  %-14s %12d  %5.1f%%\n", c, st[c], shares[c]*100)
	}
}

func safeDiv(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "subcoresim:", err)
	os.Exit(1)
}
