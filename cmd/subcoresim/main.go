// Command subcoresim runs one benchmark application on one GPU
// configuration and prints its statistics: cycles, IPC, per-sub-core
// issue balance, stall breakdown, bank conflicts, and cache behaviour.
//
// Usage:
//
//	subcoresim -app pb-mriq
//	subcoresim -app tpcU-q8 -assign srr -sms 20
//	subcoresim -app rod-srad -sched rba -cus 4
//	subcoresim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro"
	"repro/internal/config"
	"repro/internal/plot"
	"repro/internal/stats"
)

func main() {
	var (
		appName  = flag.String("app", "pb-mriq", "application name (see -list)")
		list     = flag.Bool("list", false, "list applications and exit")
		fc       = flag.Bool("fc", false, "use the fully-connected SM model")
		sched    = flag.String("sched", "gto", "warp scheduler: gto, lrr, rba")
		assign   = flag.String("assign", "rr", "sub-core assignment: rr, srr, shuffle")
		sms      = flag.Int("sms", 4, "number of SMs")
		cus      = flag.Int("cus", 0, "collector units per sub-core (0 = default)")
		banks    = flag.Int("banks", 0, "register banks per sub-core (0 = default)")
		steal    = flag.Bool("steal", false, "enable register bank stealing")
		rbaLat   = flag.Int("rba-latency", 0, "RBA score-update latency in cycles")
		trace    = flag.Bool("trace", false, "trace register-file reads/cycle on SM 0 and print a sparkline")
		timeline = flag.Bool("timeline", false, "print per-sub-core issue timelines for SM 0 (imbalance view)")
		cfgFile  = flag.String("config-file", "", "JSON file of configuration overrides (base: VoltaV100)")
	)
	flag.Parse()

	if *list {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "name\tsuite\tsensitive\tkernels\tinstructions")
		for _, a := range repro.Workloads() {
			fmt.Fprintf(w, "%s\t%s\t%v\t%d\t%d\n", a.Name, a.Suite, a.Sensitive, len(a.Kernels), a.Instructions())
		}
		w.Flush()
		return
	}

	app, err := repro.AppByName(*appName)
	if err != nil {
		fatal(err)
	}

	cfg := repro.VoltaV100()
	if *fc {
		cfg = repro.FullyConnected()
	}
	if *cfgFile != "" {
		f, err := os.Open(*cfgFile)
		if err != nil {
			fatal(err)
		}
		cfg, err = config.FromJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	cfg = cfg.WithSMs(*sms)
	switch *sched {
	case "gto":
	case "lrr":
		cfg = cfg.WithScheduler(repro.SchedLRR)
	case "rba":
		cfg = cfg.WithScheduler(repro.SchedRBA)
	default:
		fatal(fmt.Errorf("unknown scheduler %q", *sched))
	}
	switch *assign {
	case "rr":
	case "srr":
		cfg = cfg.WithAssign(repro.AssignSRR)
	case "shuffle":
		cfg = cfg.WithAssign(repro.AssignShuffle)
	default:
		fatal(fmt.Errorf("unknown assignment %q", *assign))
	}
	if *cus > 0 {
		cfg = cfg.WithCUs(*cus)
	}
	if *banks > 0 {
		cfg = cfg.WithBanks(*banks)
	}
	if *steal {
		cfg = cfg.WithBankStealing()
	}
	cfg.RBAScoreLatency = *rbaLat
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	var r *repro.Result
	if *trace || *timeline {
		g, err := repro.NewGPU(cfg)
		if err != nil {
			fatal(err)
		}
		if *trace {
			g.TraceReads(true)
		}
		if *timeline {
			g.TraceIssue(32)
		}
		for _, k := range app.Kernels {
			if err := g.RunKernel(k, 0); err != nil {
				fatal(err)
			}
		}
		r = g.Run()
	} else {
		var err error
		r, err = repro.Run(cfg, app)
		if err != nil {
			fatal(err)
		}
	}
	report(cfg.Name, app.Name, r)
	if *trace {
		vals := make([]float64, len(r.ReadsPerCycle))
		for i, v := range r.ReadsPerCycle {
			vals[i] = float64(v)
		}
		fmt.Println("\nSM0 register reads per cycle (Fig 14 style):")
		fmt.Println(plot.Series(appNameShort(*appName), vals, 100))
	}
	if *timeline {
		fmt.Printf("\nSM0 per-sub-core instructions issued (buckets of %d cycles):\n", r.IssueBucket)
		for sc, series := range r.IssueTimeline {
			vals := make([]float64, len(series))
			for i, v := range series {
				vals[i] = float64(v)
			}
			fmt.Println(plot.Series(fmt.Sprintf("sub-core %d", sc), vals, 100))
		}
	}
}

func appNameShort(s string) string {
	if len(s) > 20 {
		return s[:20]
	}
	return s
}

func report(cfgName, appName string, r *repro.Result) {
	fmt.Printf("app:            %s\n", appName)
	fmt.Printf("config:         %s\n", cfgName)
	fmt.Printf("cycles:         %d\n", r.Cycles)
	fmt.Printf("instructions:   %d\n", r.Instructions)
	fmt.Printf("IPC:            %.3f\n", r.IPC())
	fmt.Printf("issue CoV:      %.3f (per-sub-core imbalance, Fig 17 metric)\n", r.IssueCoV())
	fmt.Printf("bank conflicts: %d (%.3f per read)\n", r.TotalBankConflicts(),
		safeDiv(r.TotalBankConflicts(), r.TotalRegReads()))
	fmt.Println("stalls (sub-core cycles):")
	for reason := stats.StallReason(1); reason < stats.NumStallReasons; reason++ {
		fmt.Printf("  %-12s %d\n", reason, r.TotalStalls(reason))
	}
	var hits, misses int64
	for i := range r.SMs {
		hits += r.SMs[i].L1Hits
		misses += r.SMs[i].L1Misses
	}
	if hits+misses > 0 {
		fmt.Printf("L1 hit rate:    %.3f\n", float64(hits)/float64(hits+misses))
	}
}

func safeDiv(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "subcoresim:", err)
	os.Exit(1)
}
