package repro

import (
	"testing"
)

// TestDeterminism: identical (config, app, seed) runs must produce
// byte-identical statistics — the property every experiment in this
// repository relies on. Exercises Shuffle's seeded permutations and the
// warps' private PRNG streams.
func TestDeterminism(t *testing.T) {
	app, err := AppByName("cg-pgrnk") // random memory patterns + shuffle
	if err != nil {
		t.Fatal(err)
	}
	cfg := VoltaV100().WithSMs(2).WithAssign(AssignShuffle).WithScheduler(SchedRBA)
	var cycles []int64
	var conflicts []int64
	for i := 0; i < 3; i++ {
		r, err := Run(cfg, app)
		if err != nil {
			t.Fatal(err)
		}
		cycles = append(cycles, r.Cycles)
		conflicts = append(conflicts, r.TotalBankConflicts())
	}
	for i := 1; i < len(cycles); i++ {
		if cycles[i] != cycles[0] || conflicts[i] != conflicts[0] {
			t.Fatalf("run %d diverged: cycles %v, conflicts %v", i, cycles, conflicts)
		}
	}
}

// TestSeedChangesShuffle: a different seed must (almost surely) change a
// Shuffle run, and must never change a deterministic-policy run's
// instruction count.
func TestSeedChangesShuffle(t *testing.T) {
	app, err := AppByName("tpcU-q1")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed int64) Config {
		c := VoltaV100().WithSMs(2).WithAssign(AssignShuffle)
		c.Seed = seed
		return c
	}
	r1, err := Run(mk(1), app)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(mk(99), app)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Instructions != r2.Instructions {
		t.Error("seed changed committed work")
	}
	if r1.Cycles == r2.Cycles {
		t.Log("note: different shuffle seeds produced identical cycles (possible but unlikely)")
	}
}
