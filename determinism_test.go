package repro

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/harness"
	"repro/internal/trace"
)

// TestDeterminism: identical (config, app, seed) runs must produce
// byte-identical statistics — the property every experiment in this
// repository relies on. Exercises Shuffle's seeded permutations and the
// warps' private PRNG streams.
func TestDeterminism(t *testing.T) {
	app, err := AppByName("cg-pgrnk") // random memory patterns + shuffle
	if err != nil {
		t.Fatal(err)
	}
	cfg := VoltaV100().WithSMs(2).WithAssign(AssignShuffle).WithScheduler(SchedRBA)
	var cycles []int64
	var conflicts []int64
	for i := 0; i < 3; i++ {
		r, err := Run(cfg, app)
		if err != nil {
			t.Fatal(err)
		}
		cycles = append(cycles, r.Cycles)
		conflicts = append(conflicts, r.TotalBankConflicts())
	}
	for i := 1; i < len(cycles); i++ {
		if cycles[i] != cycles[0] || conflicts[i] != conflicts[0] {
			t.Fatalf("run %d diverged: cycles %v, conflicts %v", i, cycles, conflicts)
		}
	}
}

// TestDeterministicTelemetry: identical runs must produce byte-identical
// trace event streams and counter samples, not just identical summary
// statistics. Telemetry rides the simulation loop, so any divergence here
// means a hidden source of nondeterminism (map iteration, time, unseeded
// randomness) leaked into the hot path.
func TestDeterministicTelemetry(t *testing.T) {
	app, err := AppByName("cg-pgrnk") // stochastic: shuffle + random access
	if err != nil {
		t.Fatal(err)
	}
	capture := func() (events []trace.Event, counters *trace.Counters, chrome []byte) {
		cfg := VoltaV100().WithSMs(2).WithAssign(AssignShuffle).WithScheduler(SchedRBA)
		cfg.TraceSamplePeriod = 32
		sink := trace.NewMemorySink()
		opt := trace.OptionsFor(&cfg, 0)
		opt.Sink = sink
		tr := trace.New(opt)
		g, err := NewGPU(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g.SetTracer(tr)
		for _, k := range app.Kernels {
			if err := g.RunKernel(k, 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return sink.Events(0), tr.Counters(), buf.Bytes()
	}

	ev1, c1, chrome1 := capture()
	ev2, c2, chrome2 := capture()

	if len(ev1) == 0 {
		t.Fatal("no events captured")
	}
	if !reflect.DeepEqual(ev1, ev2) {
		n := len(ev1)
		if len(ev2) < n {
			n = len(ev2)
		}
		for i := 0; i < n; i++ {
			if ev1[i] != ev2[i] {
				t.Fatalf("event streams diverge at %d: %+v vs %+v (lens %d, %d)",
					i, ev1[i], ev2[i], len(ev1), len(ev2))
			}
		}
		t.Fatalf("event stream lengths diverge: %d vs %d", len(ev1), len(ev2))
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("counter samples diverge between identical runs")
	}
	if !bytes.Equal(chrome1, chrome2) {
		t.Fatal("Chrome trace exports are not byte-identical")
	}
}

// TestDeterministicCheckpoint: the determinism contract must survive the
// fault-tolerance layer. Two harness-supervised runs of the same sweep
// cell — worker pool, watchdog plumbing, checkpoint writer and all —
// must stream byte-identical JSONL checkpoint records, or a resumed
// sweep would mix statistics from two distinguishable populations.
func TestDeterministicCheckpoint(t *testing.T) {
	app, err := AppByName("cg-pgrnk") // stochastic: shuffle + random access
	if err != nil {
		t.Fatal(err)
	}
	cfg := VoltaV100().WithSMs(2).WithAssign(AssignShuffle).WithScheduler(SchedRBA)
	runOnce := func(path string) []byte {
		t.Helper()
		res, err := harness.Run(context.Background(),
			[]Config{cfg}, []string{"v100-2sm-shuffle-rba"}, []App{app},
			harness.Options{Workers: 1, CheckpointPath: path})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete() || res.Executed != 1 {
			t.Fatalf("sweep incomplete: executed %d, faults %v", res.Executed, res.Faults)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	dir := t.TempDir()
	ck1 := runOnce(filepath.Join(dir, "a.jsonl"))
	ck2 := runOnce(filepath.Join(dir, "b.jsonl"))
	if len(ck1) == 0 {
		t.Fatal("checkpoint is empty")
	}
	if !bytes.Equal(ck1, ck2) {
		t.Fatalf("checkpoint records diverge between identical supervised runs:\n%s\nvs\n%s", ck1, ck2)
	}
}

// TestSeedChangesShuffle: a different seed must (almost surely) change a
// Shuffle run, and must never change a deterministic-policy run's
// instruction count.
func TestSeedChangesShuffle(t *testing.T) {
	app, err := AppByName("tpcU-q1")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed int64) Config {
		c := VoltaV100().WithSMs(2).WithAssign(AssignShuffle)
		c.Seed = seed
		return c
	}
	r1, err := Run(mk(1), app)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(mk(99), app)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Instructions != r2.Instructions {
		t.Error("seed changed committed work")
	}
	if r1.Cycles == r2.Cycles {
		t.Log("note: different shuffle seeds produced identical cycles (possible but unlikely)")
	}
}
