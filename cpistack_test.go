package repro

import (
	"testing"
)

// TestCPIStackInvariant: on real workloads and the paper's headline
// configurations, every SM x sub-core's top-down CPI stack must
// attribute each elapsed cycle to exactly one cause — the stack sums
// bit-exactly to the run's cycle count with no negative component
// (internal/stats.CheckCPI). This is the whole-simulator complement of
// smcore's FuzzCPIStack.
func TestCPIStackInvariant(t *testing.T) {
	configs := []struct {
		name string
		cfg  Config
	}{
		{"gto", VoltaV100().WithSMs(2)},
		{"rba", VoltaV100().WithSMs(2).WithScheduler(SchedRBA)},
		{"rba+shuffle", VoltaV100().WithSMs(2).WithScheduler(SchedRBA).WithAssign(AssignShuffle)},
	}
	for _, appName := range []string{"cg-pgrnk", "pb-mriq"} {
		app, err := AppByName(appName)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range configs {
			t.Run(appName+"/"+tc.name, func(t *testing.T) {
				r, err := Run(tc.cfg, app)
				if err != nil {
					t.Fatal(err)
				}
				if err := r.CheckCPI(); err != nil {
					t.Fatal(err)
				}
				st := r.CPIStack()
				subCores := 0
				for i := range r.SMs {
					subCores += len(r.SMs[i].SubCores)
				}
				if want := r.Cycles * int64(subCores); st.Total() != want {
					t.Fatalf("device stack total %d, want cycles x sub-cores = %d", st.Total(), want)
				}
				// The issue component must account for all issued
				// instructions' cycles: a sub-core can issue more than one
				// instruction per cycle, so issue cycles never exceed
				// instructions but must be positive for a non-empty run.
				if r.Instructions > 0 && st[0] == 0 {
					t.Fatal("non-empty run attributed zero issue cycles")
				}
			})
		}
	}
}
