package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"repro/internal/isa"
	"repro/internal/stats"
)

// Chrome trace-event export: each traced SM becomes a Perfetto process,
// each sub-core a thread, with extra threads for the register banks, the
// SM-shared LSU, and the block scheduler. Sampled counters become "C"
// (counter) events, which Perfetto renders as value tracks. One simulated
// cycle maps to one microsecond of trace time.
//
// The output is the JSON array form of the trace-event format, loadable
// directly in ui.perfetto.dev or chrome://tracing.

// Thread ids within an SM process. Sub-core s is tid s; bank b of
// sub-core s is tidBanks + s*banks + b.
const (
	tidLSU    = 90
	tidBlocks = 91
	tidBanks  = 100
)

// chromeWriter emits trace-event JSON with explicit commas so the stream
// stays a single valid array.
type chromeWriter struct {
	w     *bufio.Writer
	first bool
	err   error
}

func (cw *chromeWriter) event(s string) {
	if cw.err != nil {
		return
	}
	if !cw.first {
		if _, cw.err = cw.w.WriteString(",\n"); cw.err != nil {
			return
		}
	}
	cw.first = false
	_, cw.err = cw.w.WriteString(s)
}

func (cw *chromeWriter) eventf(format string, args ...interface{}) {
	cw.event(fmt.Sprintf(format, args...))
}

// meta emits a process/thread metadata record.
func (cw *chromeWriter) meta(name string, pid, tid int, value string) {
	cw.eventf(`{"name":%q,"ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`,
		name, pid, tid, value)
}

// WriteChrome exports a tracer's event rings and counter samples as
// Chrome trace-event JSON. Call Tracer.Close first when a Sink is
// attached; events still buffered in rings are exported directly, and a
// MemorySink's collected stream is exported in full.
func WriteChrome(w io.Writer, t *Tracer) error {
	cw := &chromeWriter{w: bufio.NewWriterSize(w, 1<<16), first: true}
	if _, err := cw.w.WriteString("[\n"); err != nil {
		return err
	}
	banks := t.opt.Banks
	for _, sm := range t.TracedSMs() {
		cw.meta("process_name", sm, 0, fmt.Sprintf("SM %d", sm))
		for s := 0; s < t.opt.SubCores; s++ {
			cw.meta("thread_name", sm, s, fmt.Sprintf("sub-core %d", s))
			for b := 0; b < banks; b++ {
				cw.meta("thread_name", sm, tidBanks+s*banks+b,
					fmt.Sprintf("rf bank %d.%d", s, b))
			}
		}
		cw.meta("thread_name", sm, tidLSU, "LSU")
		cw.meta("thread_name", sm, tidBlocks, "blocks")
		events := t.Events(sm)
		if ms, ok := t.opt.Sink.(*MemorySink); ok {
			if full := ms.Events(sm); len(full) > 0 {
				events = full
			}
		}
		for i := range events {
			writeChromeEvent(cw, &events[i], banks)
		}
	}
	writeChromeCounters(cw, t.Counters())
	if cw.err != nil {
		return cw.err
	}
	if _, err := cw.w.WriteString("\n]\n"); err != nil {
		return err
	}
	return cw.w.Flush()
}

func writeChromeEvent(cw *chromeWriter, e *Event, banks int) {
	pid, ts := int(e.SM), e.Cycle
	switch e.Kind {
	case KIssue:
		cw.eventf(`{"name":%q,"cat":"issue","ph":"X","ts":%d,"dur":1,"pid":%d,"tid":%d,"args":{"warp":%d,"slot":%d}}`,
			isa.Op(e.A).String(), ts, pid, e.Sub, e.Warp, e.B)
	case KStall:
		cw.eventf(`{"name":%q,"cat":"stall","ph":"X","ts":%d,"dur":1,"pid":%d,"tid":%d}`,
			"stall:"+stats.StallReason(e.A).String(), ts, pid, e.Sub)
	case KBankRead:
		cw.eventf(`{"name":"read","cat":"bank","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"warp":%d,"cu":%d}}`,
			ts, pid, tidBanks+int(e.Sub)*banks+int(e.A), e.Warp, e.B)
	case KBankWrite:
		cw.eventf(`{"name":"write","cat":"bank","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"warp":%d}}`,
			ts, pid, tidBanks+int(e.Sub)*banks+int(e.A), e.Warp)
	case KDispatch:
		cw.eventf(`{"name":%q,"cat":"dispatch","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"warp":%d}}`,
			"dispatch "+isa.Op(e.A).String(), ts, pid, e.Sub, e.Warp)
	case KLSUAdmit:
		cw.eventf(`{"name":%q,"cat":"lsu","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"warp":%d,"sub":%d}}`,
			isa.Op(e.A).String(), ts, pid, tidLSU, e.Warp, e.Sub)
	case KCoalesce:
		cw.eventf(`{"name":"coalesce","cat":"lsu","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{"txns":%d,"warp":%d}}`,
			ts, maxI32(e.A, 1), pid, tidLSU, e.A, e.Warp)
	case KWriteback:
		cw.eventf(`{"name":"writeback R%d","cat":"wb","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"warp":%d,"bank":%d}}`,
			e.A, ts, pid, e.Sub, e.Warp, e.B)
	case KBlockPlace:
		cw.eventf(`{"name":"place block %d","cat":"block","ph":"i","s":"p","ts":%d,"pid":%d,"tid":%d,"args":{"warps":%d}}`,
			e.A, ts, pid, tidBlocks, e.B)
	case KBlockRetire:
		cw.eventf(`{"name":"retire block %d","cat":"block","ph":"i","s":"p","ts":%d,"pid":%d,"tid":%d}`,
			e.A, ts, pid, tidBlocks)
	case KFastForward:
		// One span covering the whole skipped stretch, on the blocks track
		// (an SM-level event): in Perfetto the gaps between activity read
		// as explicit "fast-forward" slices instead of silence.
		cw.eventf(`{"name":"fast-forward","cat":"ff","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{"cycles":%d}}`,
			ts, maxI32(e.A, 1), pid, tidBlocks, e.A)
	default:
		cw.eventf(`{"name":%q,"ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"a":%d,"b":%d,"warp":%d}}`,
			e.Kind.String(), ts, pid, e.Sub, e.A, e.B, e.Warp)
	}
}

// writeChromeCounters emits "C" events: one occupancy/LSU/RF-reads track
// plus per-sub-core issue-rate and per-bank queue-depth tracks.
func writeChromeCounters(cw *chromeWriter, c *Counters) {
	if c == nil {
		return
	}
	pid := c.SM
	banks := 0
	if subs := len(c.IssueBySub); subs > 0 {
		banks = len(c.QLenByBank) / subs
	}
	for i, cyc := range c.Cycle {
		ts := strconv.FormatInt(cyc, 10)
		cw.eventf(`{"name":"occupancy","ph":"C","ts":%s,"pid":%d,"args":{"warps":%d}}`,
			ts, pid, c.Occupancy[i])
		cw.eventf(`{"name":"lsu-queue","ph":"C","ts":%s,"pid":%d,"args":{"depth":%d}}`,
			ts, pid, c.LSUQueue[i])
		cw.eventf(`{"name":"rf-reads","ph":"C","ts":%s,"pid":%d,"args":{"reads":%d}}`,
			ts, pid, c.RFReads[i])
		for s := range c.IssueBySub {
			cw.eventf(`{"name":"issue sub %d","ph":"C","ts":%s,"pid":%d,"args":{"issued":%d,"occ":%d}}`,
				s, ts, pid, c.IssueBySub[s][i], c.OccBySub[s][i])
		}
		for q := range c.QLenByBank {
			sub, bank := q, 0
			if banks > 0 {
				sub, bank = q/banks, q%banks
			}
			cw.eventf(`{"name":"qlen bank %d.%d","ph":"C","ts":%s,"pid":%d,"args":{"depth":%d}}`,
				sub, bank, ts, pid, c.QLenByBank[q][i])
		}
	}
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
