// Package trace is the simulator's observability layer: a structured
// cycle-level event stream plus sampled counter time-series, threaded
// through the simulation hot path by internal/gpu and internal/smcore.
//
// Design constraints, in order:
//
//  1. Disabled tracing must be provably cheap. Every emission site in the
//     simulator guards on a nil handle (`if tr != nil`), so a run without
//     a tracer pays one predictable branch per site — measured under 2%
//     of total runtime by BenchmarkTracingOverhead.
//  2. Enabled tracing must not allocate per event. Events are fixed-size
//     structs appended to per-SM ring buffers. With no Sink attached the
//     ring is a flight recorder (the last RingCap events survive); with a
//     Sink, full batches are handed off and the ring reused, so the full
//     stream reaches the sink with bounded buffering.
//  3. Telemetry must be deterministic: identical (config, app, seed) runs
//     produce byte-identical event streams and counter samples
//     (TestDeterministicTelemetry).
//
// Counter sampling records, every SamplePeriod cycles on one designated
// SM: resident warps, LSU queue depth, register-file read throughput,
// per-sub-core occupancy and issue rate, and per-bank arbiter queue
// depths. This generalizes the earlier one-off SM-0 "trace"/"timeline"
// code paths.
//
// WriteChrome (chrome.go) exports both streams as Chrome trace-event JSON
// (SM -> process, sub-core -> thread) loadable in ui.perfetto.dev.
package trace

import (
	"fmt"

	"repro/internal/config"
)

// Kind classifies a trace event.
type Kind uint8

const (
	// KIssue: a warp instruction issued. A = op, B = scheduler slot.
	KIssue Kind = iota
	// KStall: a sub-core scheduler issued nothing this cycle. A = the
	// stats.StallReason attributed.
	KStall
	// KBankRead: a register bank granted a source-operand read.
	// A = bank, B = collector unit.
	KBankRead
	// KBankWrite: a register bank granted a writeback. A = bank.
	KBankWrite
	// KDispatch: a collected instruction left the operand collector for
	// its execution unit (or the LSU). A = op.
	KDispatch
	// KLSUAdmit: the SM-shared LSU started serving a memory instruction.
	// A = op.
	KLSUAdmit
	// KCoalesce: the LSU coalescer generated a burst of line transactions
	// for a global access. A = transaction count.
	KCoalesce
	// KWriteback: a completed instruction's result entered its bank's
	// write-port queue. A = destination register, B = bank.
	KWriteback
	// KBlockPlace: a thread block was placed on the SM. A = kernel block
	// id, B = warps in the block.
	KBlockPlace
	// KBlockRetire: a thread block retired, freeing all its resources at
	// once. A = kernel block id.
	KBlockRetire
	// KFastForward: the device loop skipped a span of provably-inert
	// cycles (idle-cycle fast-forward). A = the number of cycles skipped;
	// the event's Cycle is the first skipped cycle. One event per traced
	// SM per skip replaces the per-cycle KStall stream the ticked loop
	// would have emitted over the span.
	KFastForward

	NumKinds
)

var kindNames = [NumKinds]string{
	"issue", "stall", "bank-read", "bank-write", "dispatch",
	"lsu-admit", "coalesce", "writeback", "block-place", "block-retire",
	"fast-forward",
}

// String names the event kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one structured trace record. Fixed-size by design: rings hold
// events by value and emission never allocates.
type Event struct {
	// Cycle is the global GPU cycle the event occurred on.
	Cycle int64
	// Warp is the warp's index in its SM's warp table, -1 when the event
	// has no warp (block placement, pure stalls).
	Warp int32
	// A, B are kind-specific arguments (see the Kind constants).
	A, B int32
	// SM identifies the SM.
	SM int16
	// Sub identifies the sub-core, -1 for SM-level events (LSU, blocks).
	Sub int8
	// Kind classifies the event.
	Kind Kind
}

// Sink receives completed event batches from a tracer. Flush is called
// with events in emission order; the slice is reused after Flush returns,
// so implementations must copy what they keep.
type Sink interface {
	Flush(sm int, batch []Event) error
}

// MemorySink collects every flushed event in memory, per SM.
type MemorySink struct {
	bySM map[int][]Event
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{bySM: map[int][]Event{}} }

// Flush implements Sink.
func (m *MemorySink) Flush(sm int, batch []Event) error {
	m.bySM[sm] = append(m.bySM[sm], batch...)
	return nil
}

// Events returns the collected stream for one SM.
func (m *MemorySink) Events(sm int) []Event { return m.bySM[sm] }

// DefaultRingCap is the per-SM event ring capacity when Options.RingCap
// is zero: a flight recorder deep enough for ~10k cycles of a busy SM.
const DefaultRingCap = 1 << 16

// Options configures a Tracer.
type Options struct {
	// SMs, SubCores, Banks describe the device topology (Banks is per
	// sub-core). Required for counter sampling and the Chrome export's
	// thread layout.
	SMs, SubCores, Banks int
	// SM selects which SM's events are recorded; -1 records every SM.
	// Event volume is proportional, so whole-device tracing is best
	// combined with a Sink.
	SM int
	// RingCap is the per-SM ring capacity in events (0 = DefaultRingCap).
	RingCap int
	// Sink, when non-nil, receives full batches as rings fill, so the
	// complete stream is preserved. When nil the ring keeps only the most
	// recent RingCap events (flight-recorder mode).
	Sink Sink
	// SamplePeriod enables counter sampling every that many cycles
	// (0 disables sampling).
	SamplePeriod int
	// CounterSM is the SM whose counters are sampled (default 0).
	CounterSM int
}

// OptionsFor derives tracer options from a validated configuration,
// tracing events and counters on SM sm only (-1 = all SMs).
func OptionsFor(cfg *config.GPU, sm int) Options {
	counterSM := sm
	if counterSM < 0 {
		counterSM = 0
	}
	return Options{
		SMs:          cfg.NumSMs,
		SubCores:     cfg.SubCoresPerSM,
		Banks:        cfg.BanksPerSubCore,
		SM:           sm,
		RingCap:      cfg.TraceRingCap,
		SamplePeriod: cfg.TraceSamplePeriod,
		CounterSM:    counterSM,
	}
}

// ring is one SM's event buffer.
type ring struct {
	buf     []Event
	n       int  // next write position
	wrapped bool // flight-recorder mode: buffer has lapped
}

// Tracer is the central telemetry collector for one device run. Build
// with New, attach with gpu.SetTracer, and Close before exporting when a
// Sink is attached.
type Tracer struct {
	opt      Options
	now      int64
	rings    []*ring // indexed by SM id; nil = SM not traced
	handles  []SMT
	counters *Counters
	sinkErr  error

	// scratch is the reused counter-snapshot buffer.
	scratch CounterSample
	// previous cumulative values for delta counters.
	lastIssued []int64
	lastReads  int64
}

// New builds a tracer. Topology fields of opt must be positive;
// RingCap 0 selects DefaultRingCap.
func New(opt Options) *Tracer {
	if opt.SMs < 1 || opt.SubCores < 1 || opt.Banks < 1 {
		panic(fmt.Sprintf("trace: invalid topology %d SMs, %d sub-cores, %d banks",
			opt.SMs, opt.SubCores, opt.Banks))
	}
	if opt.RingCap <= 0 {
		opt.RingCap = DefaultRingCap
	}
	if opt.CounterSM < 0 || opt.CounterSM >= opt.SMs {
		opt.CounterSM = 0
	}
	t := &Tracer{
		opt:   opt,
		rings: make([]*ring, opt.SMs),
	}
	t.handles = make([]SMT, opt.SMs)
	for i := 0; i < opt.SMs; i++ {
		if opt.SM >= 0 && i != opt.SM {
			continue
		}
		t.rings[i] = &ring{buf: make([]Event, opt.RingCap)}
		t.handles[i] = SMT{t: t, sm: int16(i), r: t.rings[i]}
	}
	if opt.SamplePeriod > 0 {
		nb := opt.SubCores * opt.Banks
		t.counters = &Counters{
			Period:     opt.SamplePeriod,
			SM:         opt.CounterSM,
			IssueBySub: make([][]int32, opt.SubCores),
			OccBySub:   make([][]int32, opt.SubCores),
			QLenByBank: make([][]int32, nb),
		}
		t.lastIssued = make([]int64, opt.SubCores)
		t.scratch.IssuedBySub = make([]int64, opt.SubCores)
		t.scratch.OccBySub = make([]int32, opt.SubCores)
		t.scratch.QLenByBank = make([]int32, nb)
	}
	return t
}

// Options returns the tracer's options (after defaulting).
func (t *Tracer) Options() Options { return t.opt }

// SetNow publishes the current global cycle; the device loop calls it
// once per cycle before ticking SMs so emitted events carry the cycle
// without threading it through every call site.
func (t *Tracer) SetNow(cycle int64) { t.now = cycle }

// ForSM returns the emission handle for one SM, or nil when that SM is
// not traced (or t itself is nil). Simulator components keep the handle
// and nil-check it at each emission site — the disabled fast path.
func (t *Tracer) ForSM(sm int) *SMT {
	if t == nil || sm < 0 || sm >= len(t.rings) || t.rings[sm] == nil {
		return nil
	}
	return &t.handles[sm]
}

// SMT is one SM's emission handle.
type SMT struct {
	t  *Tracer
	sm int16
	r  *ring
}

// Emit records one event. sub is -1 for SM-level events; warp is -1 when
// no warp is involved.
func (h *SMT) Emit(k Kind, sub int8, warp, a, b int32) {
	r := h.r
	r.buf[r.n] = Event{
		Cycle: h.t.now,
		Warp:  warp,
		A:     a,
		B:     b,
		SM:    h.sm,
		Sub:   sub,
		Kind:  k,
	}
	r.n++
	if r.n == len(r.buf) {
		if s := h.t.opt.Sink; s != nil {
			if err := s.Flush(int(h.sm), r.buf); err != nil && h.t.sinkErr == nil {
				h.t.sinkErr = err
			}
		} else {
			r.wrapped = true
		}
		r.n = 0
	}
}

// Close flushes partially filled rings to the sink (no-op without one)
// and returns the first sink error, if any.
func (t *Tracer) Close() error {
	if t.opt.Sink != nil {
		for i, r := range t.rings {
			if r == nil || r.n == 0 {
				continue
			}
			if err := t.opt.Sink.Flush(i, r.buf[:r.n]); err != nil && t.sinkErr == nil {
				t.sinkErr = err
			}
			r.n = 0
		}
	}
	return t.sinkErr
}

// Events returns SM sm's buffered events in chronological order: the
// full stream when it fit the ring (or a Sink drained it — then only the
// unflushed tail), or the most recent RingCap events in flight-recorder
// mode.
func (t *Tracer) Events(sm int) []Event {
	if sm < 0 || sm >= len(t.rings) || t.rings[sm] == nil {
		return nil
	}
	r := t.rings[sm]
	if !r.wrapped {
		return append([]Event(nil), r.buf[:r.n]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.n:]...)
	out = append(out, r.buf[:r.n]...)
	return out
}

// TracedSMs lists the SM ids with event rings.
func (t *Tracer) TracedSMs() []int {
	var out []int
	for i, r := range t.rings {
		if r != nil {
			out = append(out, i)
		}
	}
	return out
}

// CounterSample is the per-sample snapshot a counter source fills in.
// Slices are pre-sized by the tracer and reused across samples.
type CounterSample struct {
	// Occupancy is resident warp slots on the SM (all states).
	Occupancy int32
	// LSUQueue is the SM-shared LSU input-queue depth.
	LSUQueue int32
	// RFReadsTotal is the cumulative granted register reads over all
	// sub-cores (the tracer differentiates it into a rate).
	RFReadsTotal int64
	// IssuedBySub holds cumulative issued instructions per sub-core.
	IssuedBySub []int64
	// OccBySub holds occupied warp slots per sub-core.
	OccBySub []int32
	// QLenByBank holds the arbiter read-queue depth of bank b of sub-core
	// s at index s*Banks+b.
	QLenByBank []int32
}

// CounterSource is implemented by the SM model: fill s with the current
// counter values. Cumulative fields must be monotone.
type CounterSource interface {
	TraceCounters(s *CounterSample)
}

// Counters is the sampled time-series, columnar so samples cost one
// append per column and export stays cache-friendly.
type Counters struct {
	// Period is the sampling period in cycles; SM the sampled SM.
	Period int
	SM     int
	// Cycle holds each sample's cycle number.
	Cycle []int64
	// Occupancy: resident warps. LSUQueue: LSU input-queue depth.
	Occupancy []int32
	LSUQueue  []int32
	// RFReads: register reads granted during the period (delta).
	RFReads []int32
	// IssueBySub[s]: instructions issued by sub-core s during the period.
	IssueBySub [][]int32
	// OccBySub[s]: occupied warp slots on sub-core s at the sample.
	OccBySub [][]int32
	// QLenByBank[s*Banks+b]: arbiter queue depth at the sample.
	QLenByBank [][]int32
}

// Samples returns the number of samples recorded.
func (c *Counters) Samples() int { return len(c.Cycle) }

// Counters returns the sampled series (nil when sampling is disabled).
func (t *Tracer) Counters() *Counters {
	if t == nil {
		return nil
	}
	return t.counters
}

// CounterSM returns the SM whose counters are sampled.
func (t *Tracer) CounterSM() int { return t.opt.CounterSM }

// SampleRange records the counter samples falling in cycles [from, to):
// the device loop's fast-forward path calls it in place of per-cycle
// MaybeSample calls when it skips a span. The skipped span is quiescent
// by construction, so every sample in it sees the same counter values a
// ticked loop would have observed.
func (t *Tracer) SampleRange(from, to int64, src CounterSource) {
	c := t.counters
	if c == nil {
		return
	}
	p := int64(c.Period)
	first := from + (p-from%p)%p // first multiple of p at or after from
	for cyc := first; cyc < to; cyc += p {
		t.MaybeSample(cyc, src)
	}
}

// MaybeSample records a counter sample when cycle lands on the sampling
// period. The device loop calls it every cycle with the designated SM.
func (t *Tracer) MaybeSample(cycle int64, src CounterSource) {
	c := t.counters
	if c == nil || cycle%int64(c.Period) != 0 {
		return
	}
	s := &t.scratch
	s.Occupancy, s.LSUQueue, s.RFReadsTotal = 0, 0, 0
	src.TraceCounters(s)
	c.Cycle = append(c.Cycle, cycle)
	c.Occupancy = append(c.Occupancy, s.Occupancy)
	c.LSUQueue = append(c.LSUQueue, s.LSUQueue)
	c.RFReads = append(c.RFReads, int32(s.RFReadsTotal-t.lastReads))
	t.lastReads = s.RFReadsTotal
	for i := range c.IssueBySub {
		c.IssueBySub[i] = append(c.IssueBySub[i], int32(s.IssuedBySub[i]-t.lastIssued[i]))
		t.lastIssued[i] = s.IssuedBySub[i]
		c.OccBySub[i] = append(c.OccBySub[i], s.OccBySub[i])
	}
	for i := range c.QLenByBank {
		c.QLenByBank[i] = append(c.QLenByBank[i], s.QLenByBank[i])
	}
}
