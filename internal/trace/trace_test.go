package trace_test

import (
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// smallCfg is a 2-SM device small enough for fast traced runs.
func smallCfg() config.GPU {
	cfg := config.VoltaV100()
	cfg.NumSMs = 2
	cfg.DRAMBytesPerCycle /= 40
	cfg.L2BytesPerCycle /= 40
	cfg.L2KB = 256
	return cfg
}

// runTraced simulates app on cfg with the given tracer attached.
func runTraced(t *testing.T, cfg config.GPU, appName string, tr *trace.Tracer) {
	t.Helper()
	app, err := workloads.ByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.SetTracer(tr)
	for _, k := range app.Kernels {
		if err := g.RunKernel(k, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEventStream: a traced run emits every event kind the pipeline can
// produce, on the traced SM only, with monotone non-negative cycles.
func TestEventStream(t *testing.T) {
	cfg := smallCfg()
	sink := trace.NewMemorySink()
	opt := trace.OptionsFor(&cfg, 0)
	opt.Sink = sink
	tr := trace.New(opt)
	runTraced(t, cfg, "pb-stencil", tr)

	events := sink.Events(0)
	if len(events) == 0 {
		t.Fatal("no events collected")
	}
	var seen [trace.NumKinds]int
	last := int64(-1)
	for _, e := range events {
		if e.SM != 0 {
			t.Fatalf("event from untraced SM %d", e.SM)
		}
		if e.Cycle < last && e.Kind != trace.KBlockPlace {
			// Events are per-SM in emission order; within a cycle stages
			// interleave but the cycle itself must not go backwards.
			t.Fatalf("cycle went backwards: %d after %d", e.Cycle, last)
		}
		if e.Cycle > last {
			last = e.Cycle
		}
		seen[e.Kind]++
	}
	for k := trace.Kind(0); k < trace.NumKinds; k++ {
		if k == trace.KCoalesce && seen[k] == 0 {
			continue // only global-memory apps coalesce
		}
		if seen[k] == 0 {
			t.Errorf("no %v events emitted", k)
		}
	}
	if len(sink.Events(1)) != 0 {
		t.Error("SM 1 traced despite SM filter 0")
	}
}

// TestFlightRecorder: without a sink the ring keeps the most recent
// RingCap events, still in chronological order.
func TestFlightRecorder(t *testing.T) {
	cfg := smallCfg()
	opt := trace.OptionsFor(&cfg, 0)
	opt.RingCap = 512
	tr := trace.New(opt)
	runTraced(t, cfg, "pb-stencil", tr)

	events := tr.Events(0)
	if len(events) != 512 {
		t.Fatalf("flight recorder kept %d events, want 512", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Cycle < events[i-1].Cycle {
			t.Fatalf("wrapped ring out of order at %d", i)
		}
	}
	// The tail must reach the end of the run: the last event's cycle is
	// within the final cycles of the simulation.
	if events[len(events)-1].Cycle == 0 {
		t.Error("flight recorder did not retain the run's tail")
	}
}

// TestCounterSampling: sampled series have one entry per period tick,
// with issue deltas summing to the run's issued instructions on that SM.
func TestCounterSampling(t *testing.T) {
	cfg := smallCfg()
	cfg.TraceSamplePeriod = 16
	tr := trace.New(trace.OptionsFor(&cfg, 0))

	app, err := workloads.ByName("pb-stencil")
	if err != nil {
		t.Fatal(err)
	}
	g, err := gpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.SetTracer(tr)
	for _, k := range app.Kernels {
		if err := g.RunKernel(k, 0); err != nil {
			t.Fatal(err)
		}
	}
	c := tr.Counters()
	if c == nil || c.Samples() == 0 {
		t.Fatal("no counter samples")
	}
	if got, want := c.Samples(), int(g.Run().Cycles+15)/16; got != want {
		t.Errorf("samples = %d, want %d (cycles=%d, period 16)", got, want, g.Run().Cycles)
	}
	var issued int64
	for _, sub := range c.IssueBySub {
		if len(sub) != c.Samples() {
			t.Fatalf("ragged issue series: %d vs %d samples", len(sub), c.Samples())
		}
		for _, v := range sub {
			issued += int64(v)
		}
	}
	var want int64
	sm0 := g.Run().SMs[0]
	for i := range sm0.SubCores {
		want += sm0.SubCores[i].Issued
	}
	// The last partial period after the final sample is not recorded, so
	// sampled issue may undercount by at most one period's issue.
	slack := int64(16 * cfg.SubCoresPerSM * cfg.SchedulersPerSubCore)
	if issued > want || issued < want-slack {
		t.Errorf("sampled issue %d outside [%d-%d, %d]", issued, want, slack, want)
	}
	for _, q := range c.QLenByBank {
		if len(q) != c.Samples() {
			t.Fatal("ragged bank-queue series")
		}
	}
	if len(c.RFReads) != c.Samples() || len(c.Occupancy) != c.Samples() || len(c.LSUQueue) != c.Samples() {
		t.Fatal("ragged scalar series")
	}
}

// TestSinkBatches: with a tiny ring, every emitted event still reaches
// the sink exactly once (flush-on-full plus Close of the tail).
func TestSinkBatches(t *testing.T) {
	cfg := smallCfg()
	sinkBig := trace.NewMemorySink()
	optBig := trace.OptionsFor(&cfg, 0)
	optBig.Sink = sinkBig
	trBig := trace.New(optBig)
	runTraced(t, cfg, "pb-stencil", trBig)

	sinkSmall := trace.NewMemorySink()
	optSmall := trace.OptionsFor(&cfg, 0)
	optSmall.RingCap = 64
	optSmall.Sink = sinkSmall
	trSmall := trace.New(optSmall)
	runTraced(t, cfg, "pb-stencil", trSmall)

	if !reflect.DeepEqual(sinkBig.Events(0), sinkSmall.Events(0)) {
		t.Fatalf("ring capacity changed the sink stream: %d vs %d events",
			len(sinkBig.Events(0)), len(sinkSmall.Events(0)))
	}
}

// TestNilHandle: an untraced SM yields a nil handle, and ForSM on a nil
// tracer is safe — the contract every emission site relies on.
func TestNilHandle(t *testing.T) {
	cfg := smallCfg()
	tr := trace.New(trace.OptionsFor(&cfg, 0))
	if tr.ForSM(1) != nil {
		t.Error("untraced SM returned a handle")
	}
	if tr.ForSM(-3) != nil || tr.ForSM(99) != nil {
		t.Error("out-of-range SM returned a handle")
	}
	var nilT *trace.Tracer
	if nilT.ForSM(0) != nil {
		t.Error("nil tracer returned a handle")
	}
	if nilT.Counters() != nil {
		t.Error("nil tracer returned counters")
	}
}

// TestKindNames: every kind has a distinct, non-empty name and
// out-of-range kinds do not panic.
func TestKindNames(t *testing.T) {
	seen := map[string]bool{}
	for k := trace.Kind(0); k < trace.NumKinds; k++ {
		name := k.String()
		if name == "" {
			t.Errorf("kind %d has no name", k)
		}
		if seen[name] {
			t.Errorf("duplicate kind name %q", name)
		}
		seen[name] = true
	}
	if got := trace.Kind(200).String(); got != "kind(200)" {
		t.Errorf("out-of-range kind name = %q", got)
	}
}
