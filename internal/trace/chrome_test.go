package trace_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/gpu"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// chromeEvent is the subset of the trace-event format the exporter must
// populate on every record.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   *int64         `json:"ts"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	Cat  string         `json:"cat"`
	Args map[string]any `json:"args"`
}

// TestWriteChromePBMriq is the acceptance check for the Perfetto export:
// tracing pb-mriq on SM 0 yields a valid Chrome trace-event JSON array of
// {"name","ph","ts","pid","tid"} records covering issue, stall, and
// bank-grant events — the same path `subcoresim -chrome-trace` drives.
func TestWriteChromePBMriq(t *testing.T) {
	app, err := workloads.ByName("pb-mriq")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	cfg.TraceSamplePeriod = 64
	sink := trace.NewMemorySink()
	opt := trace.OptionsFor(&cfg, 0)
	opt.Sink = sink
	tr := trace.New(opt)

	g, err := gpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.SetTracer(tr)
	for _, k := range app.Kernels {
		if err := g.RunKernel(k, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}

	var events []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not a valid JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace")
	}

	byPhase := map[string]int{}
	byCat := map[string]int{}
	sawStall := false
	for i, e := range events {
		if e.Name == "" || e.Ph == "" {
			t.Fatalf("event %d missing name/ph: %+v", i, e)
		}
		if e.Pid == nil {
			t.Fatalf("event %d missing pid", i)
		}
		if e.Ph != "M" && e.Ph != "C" {
			// Every timeline record carries ts and tid; metadata ("M")
			// has no ts, counters ("C") have no tid.
			if e.Ts == nil || e.Tid == nil {
				t.Fatalf("event %d (%s/%s) missing ts/tid", i, e.Ph, e.Name)
			}
			if *e.Pid != 0 {
				t.Fatalf("event %d on pid %d, only SM 0 is traced", i, *e.Pid)
			}
		}
		byPhase[e.Ph]++
		byCat[e.Cat]++
		if len(e.Name) >= 6 && e.Name[:6] == "stall:" {
			sawStall = true
		}
	}
	for _, want := range []string{"issue", "bank"} {
		if byCat[want] == 0 {
			t.Errorf("no %q-category events in export", want)
		}
	}
	if !sawStall {
		t.Error("no stall events in export")
	}
	if byPhase["M"] == 0 {
		t.Error("no process/thread metadata emitted")
	}
	if byPhase["C"] == 0 {
		t.Error("no counter samples emitted despite TraceSamplePeriod")
	}
	if byPhase["X"] == 0 || byPhase["i"] == 0 {
		t.Errorf("missing duration/instant events: phases %v", byPhase)
	}
}

// TestWriteChromeFlightRecorder: export also works straight from the
// ring (no sink), the subcoresim default.
func TestWriteChromeFlightRecorder(t *testing.T) {
	cfg := smallCfg()
	opt := trace.OptionsFor(&cfg, 0)
	opt.RingCap = 1024
	tr := trace.New(opt)
	runTraced(t, cfg, "pb-stencil", tr)

	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// metadata + 1024 ring events.
	if len(events) < 1024 {
		t.Fatalf("expected >= 1024 events, got %d", len(events))
	}
}
