// Package gpu assembles the full device: the SM array over a shared
// memory hierarchy, and the thread-block scheduler that launches kernel
// grids onto SMs as resources free up (block granularity, Table I's
// third scheduler level).
package gpu

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/program"
	"repro/internal/smcore"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Kernel describes one kernel launch: a grid of identical-shape thread
// blocks whose warps' instruction streams come from WarpProgram.
type Kernel struct {
	// Name labels the kernel in reports.
	Name string
	// Blocks is the grid size.
	Blocks int
	// WarpsPerBlock is the block size in warps (threads/32).
	WarpsPerBlock int
	// RegsPerThread is the compiler-assigned register footprint.
	RegsPerThread int
	// SharedMemPerBlock is the scratchpad reservation in bytes.
	SharedMemPerBlock int
	// WarpProgram returns warp w of block b's instruction stream.
	// Implementations memoize: most kernels have a handful of distinct
	// per-warp behaviours.
	WarpProgram func(block, warp int) *program.Program
}

// Instructions returns the kernel's total dynamic instruction count.
func (k *Kernel) Instructions() int64 {
	var t int64
	for b := 0; b < k.Blocks; b++ {
		for w := 0; w < k.WarpsPerBlock; w++ {
			t += k.WarpProgram(b, w).Len()
		}
	}
	return t
}

// Validate checks the kernel is runnable on cfg.
func (k *Kernel) Validate(cfg *config.GPU) error {
	switch {
	case k.Blocks < 1:
		return fmt.Errorf("kernel %s: no blocks", k.Name)
	case k.WarpsPerBlock < 1:
		return fmt.Errorf("kernel %s: no warps per block", k.Name)
	case k.WarpsPerBlock > cfg.MaxWarpsPerSM:
		return fmt.Errorf("kernel %s: %d warps/block exceeds SM capacity %d", k.Name, k.WarpsPerBlock, cfg.MaxWarpsPerSM)
	case k.SharedMemPerBlock > cfg.SharedMemKBPerSM*1024:
		return fmt.Errorf("kernel %s: shared memory %d exceeds SM capacity", k.Name, k.SharedMemPerBlock)
	case k.RegsPerThread < 1:
		return fmt.Errorf("kernel %s: RegsPerThread must be >= 1", k.Name)
	case k.WarpProgram == nil:
		return fmt.Errorf("kernel %s: nil WarpProgram", k.Name)
	}
	// A single warp must fit one sub-core's register file.
	if k.RegsPerThread*cfg.WarpSize*4 > cfg.RegFileKBPerSubCore*1024 {
		return fmt.Errorf("kernel %s: %d regs/thread exceeds a sub-core register file", k.Name, k.RegsPerThread)
	}
	return nil
}

// GPU is a simulated device instance. A GPU is single-use per Run result:
// Reset rebuilds state between applications.
type GPU struct {
	cfg   config.GPU
	hier  *mem.Hierarchy
	sms   []*smcore.SM
	run   *stats.Run
	cycle int64

	traceReads  bool
	issueBucket int
	issuePrev   []int64
	issueAccum  []uint32
	issueFill   int

	tracer *trace.Tracer
	mon    *Monitor
	met    *devMetrics
}

// devMetrics holds the device's live-telemetry handles plus the
// last-published watermarks. Counters are flushed as deltas at
// heartbeat granularity (monitorPeriod cycles), never per cycle, so the
// enabled path stays off the critical loop and the disabled path is one
// nil check per heartbeat.
type devMetrics struct {
	cycles  *metrics.Counter
	instrs  *metrics.Counter
	kernels *metrics.Counter

	lastCycle int64
	lastInstr int64
}

// New builds a device for the configuration.
func New(cfg config.GPU) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &GPU{cfg: cfg}
	g.reset()
	return g, nil
}

func (g *GPU) reset() {
	g.hier = mem.NewHierarchy(g.cfg)
	g.run = stats.NewRun(g.cfg.NumSMs, g.cfg.SubCoresPerSM)
	g.sms = g.sms[:0]
	for i := 0; i < g.cfg.NumSMs; i++ {
		g.sms = append(g.sms, smcore.NewSM(i, &g.cfg, g.hier, g.run))
	}
	g.cycle = 0
	if g.traceReads {
		g.sms[0].TraceReads(true)
	}
	if g.tracer != nil {
		for _, sm := range g.sms {
			sm.SetTracer(g.tracer)
		}
	}
}

// SetTracer attaches an observability tracer (see internal/trace) to the
// device, wiring each SM's emission handle through its sub-cores, operand
// collectors, and LSU. Call before RunKernel; pass nil to detach. With no
// tracer attached every emission site reduces to one nil-check — the
// disabled fast path measured by BenchmarkTracingOverhead.
func (g *GPU) SetTracer(t *trace.Tracer) {
	g.tracer = t
	for _, sm := range g.sms {
		sm.SetTracer(t)
	}
}

// Tracer returns the attached tracer, or nil.
func (g *GPU) Tracer() *trace.Tracer { return g.tracer }

// SetMetrics attaches a live telemetry registry: simulated cycles,
// issued instructions, and completed kernels stream to it at heartbeat
// granularity. The handles are shared device-wide aggregates — several
// concurrent GPUs (a sweep's workers) feed the same counters through
// atomic adds. Pass nil to detach (the nil-guarded fast path measured
// by BenchmarkMetricsOverhead).
func (g *GPU) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		g.met = nil
		return
	}
	g.met = &devMetrics{
		cycles:  reg.Counter("sim_cycles_total", "simulated device cycles across all runs feeding this registry"),
		instrs:  reg.Counter("sim_instructions_total", "warp instructions issued across all runs feeding this registry"),
		kernels: reg.Counter("sim_kernels_total", "kernel launches completed"),
		// Deltas are relative to this device's own cycle/instruction
		// space, which survives across RunKernel calls.
		lastCycle: g.cycle,
		lastInstr: g.run.Instructions,
	}
}

// flushMetrics publishes the cycle/instruction deltas accumulated since
// the previous flush. Called at heartbeat boundaries and at kernel
// completion — never per cycle.
func (g *GPU) flushMetrics() {
	m := g.met
	if m == nil {
		return
	}
	m.cycles.Add(g.cycle - m.lastCycle)
	m.instrs.Add(g.run.Instructions - m.lastInstr)
	m.lastCycle, m.lastInstr = g.cycle, g.run.Instructions
}

// TraceReads enables the Fig. 14 per-cycle register-read trace on SM 0.
// Call before RunKernel.
func (g *GPU) TraceReads(on bool) {
	g.traceReads = on
	g.sms[0].TraceReads(on)
}

// TraceIssue enables per-sub-core issue-timeline sampling on SM 0:
// instructions issued per sub-core are accumulated into buckets of the
// given cycle width (the sub-core imbalance visualization). Call before
// RunKernel.
func (g *GPU) TraceIssue(bucketCycles int) {
	if bucketCycles < 1 {
		bucketCycles = 1
	}
	g.issueBucket = bucketCycles
	g.run.IssueBucket = bucketCycles
	n := g.cfg.SubCoresPerSM
	g.issuePrev = make([]int64, n)
	g.issueAccum = make([]uint32, n)
	g.run.IssueTimeline = make([][]uint32, n)
}

// sampleIssue accumulates SM 0's per-sub-core issue deltas.
func (g *GPU) sampleIssue() {
	sm0 := &g.run.SMs[0]
	for i := range sm0.SubCores {
		cur := sm0.SubCores[i].Issued
		g.issueAccum[i] += uint32(cur - g.issuePrev[i])
		g.issuePrev[i] = cur
	}
	g.issueFill++
	if g.issueFill >= g.issueBucket {
		for i := range g.issueAccum {
			g.run.IssueTimeline[i] = append(g.run.IssueTimeline[i], g.issueAccum[i])
			g.issueAccum[i] = 0
		}
		g.issueFill = 0
	}
}

// Config returns the device configuration.
func (g *GPU) Config() config.GPU { return g.cfg }

// Run returns the accumulated statistics.
func (g *GPU) Run() *stats.Run { return g.run }

// DefaultMaxCycles bounds a kernel simulation as a deadlock backstop.
const DefaultMaxCycles = 50_000_000

// RunKernel simulates one kernel to completion, accumulating into the
// device's stats. maxCycles <= 0 selects DefaultMaxCycles.
func (g *GPU) RunKernel(k *Kernel, maxCycles int64) error {
	return g.RunConcurrent([]*Kernel{k}, maxCycles)
}

// RunConcurrent simulates several kernels launched together (concurrent
// kernel execution on separate streams): the thread-block scheduler
// interleaves pending blocks round-robin across kernels, so an SM can
// hold blocks of different kernels at once. This is the scenario behind
// the paper's third and fourth partitioning effects (Section I): warps
// with diverse execution-unit demands, and diverse register-capacity
// demands, pinned to sub-cores.
func (g *GPU) RunConcurrent(kernels []*Kernel, maxCycles int64) error {
	if len(kernels) == 0 {
		return fmt.Errorf("gpu: no kernels to run")
	}
	startCycles, startInstr := g.cycle, g.run.Instructions
	for _, k := range kernels {
		if err := k.Validate(&g.cfg); err != nil {
			return err
		}
	}
	if maxCycles <= 0 {
		maxCycles = DefaultMaxCycles
	}
	for _, sm := range g.sms {
		sm.ResetForKernel()
	}
	nextBlock := make([]int, len(kernels))
	totalLeft := 0
	var totalBlocks int
	for _, k := range kernels {
		totalLeft += k.Blocks
		totalBlocks += k.Blocks
	}
	// Kernel-wide warp IDs must not collide across concurrent kernels;
	// offset each kernel's GID space.
	gidOffset := make([]int64, len(kernels))
	var off int64
	for i, k := range kernels {
		gidOffset[i] = off
		off += int64(k.Blocks) * int64(k.WarpsPerBlock)
	}
	smPtr, kPtr := 0, 0
	deadline := g.cycle + maxCycles
	for {
		if g.tracer != nil {
			// Publish the cycle before any stage emits events.
			g.tracer.SetNow(g.cycle)
		}
		// Thread-block scheduler: place pending blocks on SMs with
		// capacity — loose round-robin over SMs, alternating kernels.
		for totalLeft > 0 {
			// Next kernel with blocks remaining.
			for nextBlock[kPtr] >= kernels[kPtr].Blocks {
				kPtr = (kPtr + 1) % len(kernels)
			}
			k := kernels[kPtr]
			spec := g.blockSpec(k, nextBlock[kPtr], gidOffset[kPtr])
			placed := false
			for scan := 0; scan < len(g.sms); scan++ {
				sm := g.sms[smPtr]
				smPtr = (smPtr + 1) % len(g.sms)
				if sm.CanAccept(spec) {
					if err := sm.Allocate(spec); err != nil {
						return err
					}
					nextBlock[kPtr]++
					totalLeft--
					placed = true
					kPtr = (kPtr + 1) % len(kernels)
					break
				}
			}
			if !placed {
				break
			}
		}

		for _, sm := range g.sms {
			sm.Tick(g.cycle)
		}
		g.run.OccupancySum += int64(g.sms[0].ResidentWarps())
		g.run.OccupancySamples++
		if g.issueBucket > 0 {
			g.sampleIssue()
		}
		if g.tracer != nil {
			g.tracer.MaybeSample(g.cycle, g.sms[g.tracer.CounterSM()])
		}
		g.cycle++
		g.run.Cycles = g.cycle

		if totalLeft == 0 && g.drained() {
			break
		}
		if g.cycle >= deadline {
			return &CycleLimitError{
				Kernel:         kernels[0].Name,
				MaxCycles:      maxCycles,
				BlocksLaunched: totalBlocks - totalLeft,
				BlocksTotal:    totalBlocks,
			}
		}
		if g.cycle&(monitorPeriod-1) == 0 {
			g.flushMetrics()
			if g.mon.beat(g.cycle) {
				return &CancelError{Kernel: kernels[0].Name, Cycle: g.cycle, Reason: g.mon.Reason()}
			}
		}
	}
	g.harvestCacheStats()
	label := kernels[0].Name
	if len(kernels) > 1 {
		label = fmt.Sprintf("%s(+%d concurrent)", label, len(kernels)-1)
	}
	g.run.Kernels = append(g.run.Kernels, stats.KernelStats{
		Name:         label,
		Cycles:       g.cycle - startCycles,
		Instructions: g.run.Instructions - startInstr,
	})
	if g.met != nil {
		g.met.kernels.Inc()
		g.flushMetrics()
	}
	return nil
}

// blockSpec materializes block b of kernel k; gidOffset displaces the
// kernel's warp-GID space under concurrent execution.
func (g *GPU) blockSpec(k *Kernel, b int, gidOffset int64) *smcore.BlockSpec {
	progs := make([]*program.Program, k.WarpsPerBlock)
	for w := range progs {
		progs[w] = k.WarpProgram(b, w)
	}
	return &smcore.BlockSpec{
		KernelBlockID:  b,
		Programs:       progs,
		RegsPerThread:  k.RegsPerThread,
		SharedMemBytes: k.SharedMemPerBlock,
		FirstWarpGID:   gidOffset + int64(b)*int64(k.WarpsPerBlock),
	}
}

func (g *GPU) drained() bool {
	for _, sm := range g.sms {
		if !sm.Drained() {
			return false
		}
	}
	return true
}

func (g *GPU) harvestCacheStats() {
	for i := range g.run.SMs {
		l1 := g.hier.L1(i)
		g.run.SMs[i].L1Hits = l1.Hits
		g.run.SMs[i].L1Misses = l1.Misses
	}
}

// RunKernels simulates a sequence of kernels (one application).
func (g *GPU) RunKernels(ks []*Kernel, maxCycles int64) error {
	for _, k := range ks {
		if err := g.RunKernel(k, maxCycles); err != nil {
			return err
		}
	}
	return nil
}
