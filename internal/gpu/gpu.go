// Package gpu assembles the full device: the SM array over a shared
// memory hierarchy, and the thread-block scheduler that launches kernel
// grids onto SMs as resources free up (block granularity, Table I's
// third scheduler level).
package gpu

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/program"
	"repro/internal/smcore"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Kernel describes one kernel launch: a grid of identical-shape thread
// blocks whose warps' instruction streams come from WarpProgram.
type Kernel struct {
	// Name labels the kernel in reports.
	Name string
	// Blocks is the grid size.
	Blocks int
	// WarpsPerBlock is the block size in warps (threads/32).
	WarpsPerBlock int
	// RegsPerThread is the compiler-assigned register footprint.
	RegsPerThread int
	// SharedMemPerBlock is the scratchpad reservation in bytes.
	SharedMemPerBlock int
	// WarpProgram returns warp w of block b's instruction stream.
	// Implementations memoize: most kernels have a handful of distinct
	// per-warp behaviours.
	WarpProgram func(block, warp int) *program.Program
}

// Instructions returns the kernel's total dynamic instruction count.
func (k *Kernel) Instructions() int64 {
	var t int64
	for b := 0; b < k.Blocks; b++ {
		for w := 0; w < k.WarpsPerBlock; w++ {
			t += k.WarpProgram(b, w).Len()
		}
	}
	return t
}

// Validate checks the kernel is runnable on cfg.
func (k *Kernel) Validate(cfg *config.GPU) error {
	switch {
	case k.Blocks < 1:
		return fmt.Errorf("kernel %s: no blocks", k.Name)
	case k.WarpsPerBlock < 1:
		return fmt.Errorf("kernel %s: no warps per block", k.Name)
	case k.WarpsPerBlock > cfg.MaxWarpsPerSM:
		return fmt.Errorf("kernel %s: %d warps/block exceeds SM capacity %d", k.Name, k.WarpsPerBlock, cfg.MaxWarpsPerSM)
	case k.SharedMemPerBlock > cfg.SharedMemKBPerSM*1024:
		return fmt.Errorf("kernel %s: shared memory %d exceeds SM capacity", k.Name, k.SharedMemPerBlock)
	case k.RegsPerThread < 1:
		return fmt.Errorf("kernel %s: RegsPerThread must be >= 1", k.Name)
	case k.WarpProgram == nil:
		return fmt.Errorf("kernel %s: nil WarpProgram", k.Name)
	}
	// A single warp must fit one sub-core's register file.
	if k.RegsPerThread*cfg.WarpSize*4 > cfg.RegFileKBPerSubCore*1024 {
		return fmt.Errorf("kernel %s: %d regs/thread exceeds a sub-core register file", k.Name, k.RegsPerThread)
	}
	return nil
}

// GPU is a simulated device instance. A GPU is single-use per Run result:
// Reset rebuilds state between applications.
//
//snapshot:state
type GPU struct {
	cfg   config.GPU
	hier  *mem.Hierarchy
	sms   []*smcore.SM
	run   *stats.Run
	cycle int64
	// ffCycles counts cycles skipped by the idle-cycle fast-forward
	// (diagnostic; see FastForwardedCycles).
	ffCycles int64

	traceReads  bool
	issueBucket int
	issuePrev   []int64
	issueAccum  []uint32
	issueFill   int

	tracer *trace.Tracer
	mon    *Monitor
	met    *devMetrics

	// auditEvery/auditNext drive the runtime invariant auditor
	// (config.AuditEvery; audit.go). snapFn is the harness's snapshot
	// hook; curLaunch exposes the active launch to WriteSnapshot; pending
	// carries a restored mid-kernel launch until ContinueKernels picks it
	// up (snapshot.go). corruptKind arms a test-only heartbeat corruption.
	auditEvery  int64
	auditNext   int64
	snapFn      func(*GPU) error
	curLaunch   *launch
	pending     *resumedLaunch
	corruptKind string
}

// devMetrics holds the device's live-telemetry handles plus the
// last-published watermarks. Counters are flushed as deltas at
// heartbeat granularity (monitorPeriod cycles), never per cycle, so the
// enabled path stays off the critical loop and the disabled path is one
// nil check per heartbeat.
//
//snapshot:state
type devMetrics struct {
	cycles  *metrics.Counter
	instrs  *metrics.Counter
	kernels *metrics.Counter

	lastCycle int64
	lastInstr int64
}

// New builds a device for the configuration.
func New(cfg config.GPU) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &GPU{cfg: cfg, auditEvery: cfg.AuditEvery}
	g.reset()
	return g, nil
}

func (g *GPU) reset() {
	g.hier = mem.NewHierarchy(g.cfg)
	g.run = stats.NewRun(g.cfg.NumSMs, g.cfg.SubCoresPerSM)
	g.sms = g.sms[:0]
	for i := 0; i < g.cfg.NumSMs; i++ {
		g.sms = append(g.sms, smcore.NewSM(i, &g.cfg, g.hier, g.run))
	}
	g.cycle = 0
	if g.traceReads {
		g.sms[0].TraceReads(true)
	}
	if g.tracer != nil {
		for _, sm := range g.sms {
			sm.SetTracer(g.tracer)
		}
	}
}

// SetTracer attaches an observability tracer (see internal/trace) to the
// device, wiring each SM's emission handle through its sub-cores, operand
// collectors, and LSU. Call before RunKernel; pass nil to detach. With no
// tracer attached every emission site reduces to one nil-check — the
// disabled fast path measured by BenchmarkTracingOverhead.
func (g *GPU) SetTracer(t *trace.Tracer) {
	g.tracer = t
	for _, sm := range g.sms {
		sm.SetTracer(t)
	}
}

// Tracer returns the attached tracer, or nil.
func (g *GPU) Tracer() *trace.Tracer { return g.tracer }

// SetMetrics attaches a live telemetry registry: simulated cycles,
// issued instructions, and completed kernels stream to it at heartbeat
// granularity. The handles are shared device-wide aggregates — several
// concurrent GPUs (a sweep's workers) feed the same counters through
// atomic adds. Pass nil to detach (the nil-guarded fast path measured
// by BenchmarkMetricsOverhead).
func (g *GPU) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		g.met = nil
		return
	}
	g.met = &devMetrics{
		cycles:  reg.Counter("sim_cycles_total", "simulated device cycles across all runs feeding this registry"),
		instrs:  reg.Counter("sim_instructions_total", "warp instructions issued across all runs feeding this registry"),
		kernels: reg.Counter("sim_kernels_total", "kernel launches completed"),
		// Deltas are relative to this device's own cycle/instruction
		// space, which survives across RunKernel calls.
		lastCycle: g.cycle,
		lastInstr: g.run.Instructions,
	}
}

// flushMetrics publishes the cycle/instruction deltas accumulated since
// the previous flush. Called at heartbeat boundaries and at kernel
// completion — never per cycle.
func (g *GPU) flushMetrics() {
	m := g.met
	if m == nil {
		return
	}
	m.cycles.Add(g.cycle - m.lastCycle)
	m.instrs.Add(g.run.Instructions - m.lastInstr)
	m.lastCycle, m.lastInstr = g.cycle, g.run.Instructions
}

// TraceReads enables the Fig. 14 per-cycle register-read trace on SM 0.
// Call before RunKernel.
func (g *GPU) TraceReads(on bool) {
	g.traceReads = on
	g.sms[0].TraceReads(on)
}

// TraceIssue enables per-sub-core issue-timeline sampling on SM 0:
// instructions issued per sub-core are accumulated into buckets of the
// given cycle width (the sub-core imbalance visualization). Call before
// RunKernel.
func (g *GPU) TraceIssue(bucketCycles int) {
	if bucketCycles < 1 {
		bucketCycles = 1
	}
	g.issueBucket = bucketCycles
	g.run.IssueBucket = bucketCycles
	n := g.cfg.SubCoresPerSM
	g.issuePrev = make([]int64, n)
	g.issueAccum = make([]uint32, n)
	g.run.IssueTimeline = make([][]uint32, n)
}

// sampleIssue accumulates SM 0's per-sub-core issue deltas.
func (g *GPU) sampleIssue() {
	sm0 := &g.run.SMs[0]
	for i := range sm0.SubCores {
		cur := sm0.SubCores[i].Issued
		g.issueAccum[i] += uint32(cur - g.issuePrev[i])
		g.issuePrev[i] = cur
	}
	g.issueFill++
	if g.issueFill >= g.issueBucket {
		for i := range g.issueAccum {
			g.run.IssueTimeline[i] = append(g.run.IssueTimeline[i], g.issueAccum[i])
			g.issueAccum[i] = 0
		}
		g.issueFill = 0
	}
}

// Config returns the device configuration.
func (g *GPU) Config() config.GPU { return g.cfg }

// Run returns the accumulated statistics.
func (g *GPU) Run() *stats.Run { return g.run }

// DefaultMaxCycles bounds a kernel simulation as a deadlock backstop.
const DefaultMaxCycles = 50_000_000

// RunKernel simulates one kernel to completion, accumulating into the
// device's stats. maxCycles <= 0 selects DefaultMaxCycles.
func (g *GPU) RunKernel(k *Kernel, maxCycles int64) error {
	return g.RunConcurrent([]*Kernel{k}, maxCycles)
}

// RunConcurrent simulates several kernels launched together (concurrent
// kernel execution on separate streams): the thread-block scheduler
// interleaves pending blocks round-robin across kernels, so an SM can
// hold blocks of different kernels at once. This is the scenario behind
// the paper's third and fourth partitioning effects (Section I): warps
// with diverse execution-unit demands, and diverse register-capacity
// demands, pinned to sub-cores.
//
// The run loop fast-forwards over provably-inert cycle spans (see
// cycleLoop and docs/ARCHITECTURE.md's "Performance" section) unless
// config.NoFastForward is set; statistics are byte-identical either way.
//
//simlint:hotpath
func (g *GPU) RunConcurrent(kernels []*Kernel, maxCycles int64) error {
	if err := g.validateLaunch(kernels); err != nil {
		return err
	}
	if maxCycles <= 0 {
		maxCycles = DefaultMaxCycles
	}
	for _, sm := range g.sms {
		sm.ResetForKernel()
	}
	return g.runLaunch(g.newLaunch(kernels, maxCycles))
}

// runLaunch drives a prepared launch to completion and finalizes its
// stats entry. Shared by the fresh path (RunConcurrent) and the
// snapshot-resume path (ContinueKernels), which must not re-run
// ResetForKernel or restart the launch bookkeeping.
//
//simlint:cold
func (g *GPU) runLaunch(ls *launch) error {
	g.curLaunch = ls
	defer func() { g.curLaunch = nil }()
	if stop := g.cycleLoop(ls); stop != stopDone {
		return g.launchError(stop, ls)
	}
	g.harvestCacheStats()
	g.run.Kernels = append(g.run.Kernels, stats.KernelStats{
		Name:         launchLabel(ls.kernels),
		Cycles:       g.cycle - ls.startCycles,
		Instructions: g.run.Instructions - ls.startInstr,
	})
	if g.met != nil {
		g.met.kernels.Inc()
		g.flushMetrics()
	}
	return nil
}

// launch is one RunConcurrent call's thread-block-scheduler state,
// hoisted into a struct so the cycle loop itself allocates nothing.
//
//snapshot:state
type launch struct {
	kernels   []*Kernel
	maxCycles int64
	deadline  int64
	// nextBlock[i] is the next unplaced block of kernels[i]; specs[i]
	// caches its materialized BlockSpec until that block places, so the
	// per-cycle placement probe does not rebuild the program slice.
	nextBlock []int
	specs     []*smcore.BlockSpec
	gidOffset []int64
	// kPtr/smPtr are the round-robin cursors over kernels and SMs.
	totalLeft   int
	totalBlocks int
	kPtr, smPtr int
	// startCycles/startInstr are the device watermarks at launch start,
	// for the KernelStats delta (and they ride snapshots, so a resumed
	// launch finalizes the identical entry).
	startCycles int64
	startInstr  int64
	// err carries a placement fault out of the loop (stopFault).
	err error
}

// newLaunch sizes the launch bookkeeping — the only allocations of a
// RunConcurrent call outside block materialization.
func (g *GPU) newLaunch(kernels []*Kernel, maxCycles int64) *launch {
	ls := &launch{
		kernels:     kernels,
		maxCycles:   maxCycles,
		deadline:    g.cycle + maxCycles,
		nextBlock:   make([]int, len(kernels)),
		specs:       make([]*smcore.BlockSpec, len(kernels)),
		gidOffset:   make([]int64, len(kernels)),
		startCycles: g.cycle,
		startInstr:  g.run.Instructions,
	}
	// Kernel-wide warp IDs must not collide across concurrent kernels;
	// offset each kernel's GID space.
	var off int64
	for i, k := range kernels {
		ls.totalLeft += k.Blocks
		ls.totalBlocks += k.Blocks
		ls.gidOffset[i] = off
		off += int64(k.Blocks) * int64(k.WarpsPerBlock)
	}
	return ls
}

// validateLaunch rejects a malformed kernel set before any state is
// touched. Once per launch, not per cycle.
//
//simlint:cold
func (g *GPU) validateLaunch(kernels []*Kernel) error {
	if len(kernels) == 0 {
		return fmt.Errorf("gpu: no kernels to run")
	}
	for _, k := range kernels {
		if err := k.Validate(&g.cfg); err != nil {
			return err
		}
	}
	return nil
}

// launchLabel names a kernel batch's stats entry.
func launchLabel(kernels []*Kernel) string {
	if len(kernels) > 1 {
		return fmt.Sprintf("%s(+%d concurrent)", kernels[0].Name, len(kernels)-1)
	}
	return kernels[0].Name
}

// loopStop is cycleLoop's exit condition. The loop returns an enum and
// launchError materializes the error outside the hot path, keeping the
// loop free of composite-literal allocations.
type loopStop uint8

const (
	stopDone loopStop = iota
	stopDeadline
	stopCanceled
	stopFault
)

// launchError materializes a non-done stop condition as the error
// RunConcurrent returns.
func (g *GPU) launchError(stop loopStop, ls *launch) error {
	switch stop {
	case stopDeadline:
		return &CycleLimitError{
			Kernel:         ls.kernels[0].Name,
			MaxCycles:      ls.maxCycles,
			BlocksLaunched: ls.totalBlocks - ls.totalLeft,
			BlocksTotal:    ls.totalBlocks,
		}
	case stopCanceled:
		return &CancelError{Kernel: ls.kernels[0].Name, Cycle: g.cycle, Reason: g.mon.Reason()}
	case stopFault:
		return ls.err
	}
	return nil
}

// cycleLoop is the device's per-cycle engine: block placement, SM
// ticks, sampling, and the post-cycle drain/deadline/heartbeat checks —
// plus the idle-cycle fast-forward that skips spans in which no SM can
// make progress. Everything on this path must stay allocation-free
// (simlint hotpath; the loop runs tens of millions of iterations per
// sweep cell).
// ffProbeAfter is how many consecutive issueless cycles the loop waits
// before probing for a fast-forward. Probes are not free (a device-wide
// next-event scan), and spans worth skipping are long; failed probes
// back off multiplicatively so a stalled-but-hot phase (writebacks and
// collections in flight, nothing issuing) pays O(log n) probes, not one
// per cycle. Probe timing only affects which cycles get skipped — skips
// are inert — so statistics are identical for any schedule.
const ffProbeAfter = 8

func (g *GPU) cycleLoop(ls *launch) loopStop {
	ff := !g.cfg.NoFastForward
	idleStreak, nextProbe := int64(0), int64(ffProbeAfter)
	for {
		if g.tracer != nil {
			// Publish the cycle before any stage emits events.
			g.tracer.SetNow(g.cycle)
		}
		if ls.totalLeft > 0 && !g.placeBlocks(ls) {
			return stopFault
		}
		instrBefore := g.run.Instructions
		occ := 0
		for _, sm := range g.sms {
			sm.Tick(g.cycle)
			occ += sm.ResidentWarps()
		}
		g.run.OccupancySum += int64(occ)
		g.run.OccupancySamples += int64(len(g.sms))
		if g.issueBucket > 0 {
			g.sampleIssue()
		}
		if g.tracer != nil {
			g.tracer.MaybeSample(g.cycle, g.sms[g.tracer.CounterSM()])
		}
		g.cycle++
		g.run.Cycles = g.cycle

		if ls.totalLeft == 0 && g.drained() {
			return stopDone
		}
		if g.cycle >= ls.deadline {
			return stopDeadline
		}
		if g.cycle&(monitorPeriod-1) == 0 {
			if stop, stopped := g.heartbeat(ls); stopped {
				return stop
			}
		}
		// Idle-cycle fast-forward. The issue-streak guard is purely a cost
		// filter: on cycles that issued work the device is certainly hot,
		// and short gaps are not worth a device-wide next-event scan.
		if g.run.Instructions != instrBefore {
			idleStreak, nextProbe = 0, ffProbeAfter
		} else if ff {
			idleStreak++
			if idleStreak >= nextProbe {
				stop, stopped, skipped := g.fastForward(ls)
				if stopped {
					return stop
				}
				if skipped {
					// Spans often chain across a wake (e.g. a heartbeat
					// boundary cap): retry immediately.
					nextProbe = idleStreak + 1
				} else {
					nextProbe = idleStreak * 2
				}
			}
		}
	}
}

// placeBlocks runs the thread-block scheduler: rounds over the pending
// kernels, each round offering every kernel one placement attempt over
// the SM ring, until a full round places nothing. Offering each kernel
// its own attempt per round is what prevents head-of-line blocking — a
// kernel whose next block currently fits nowhere no longer starves
// concurrent kernels with smaller footprints (previously the loop broke
// outright on the first unplaceable block). A fully failed round
// restores kPtr (and the SM cursor returns to its start by walking
// whole laps), so a stalled scheduler pass mutates nothing — the
// idempotence the fast-forward path relies on when it skips the passes
// the ticked loop would have run. Returns false on a placement fault
// (ls.err is set).
//
//simlint:hotpath
func (g *GPU) placeBlocks(ls *launch) bool {
	for ls.totalLeft > 0 {
		placedAny := false
		startK := ls.kPtr
		for try := 0; try < len(ls.kernels); try++ {
			// Advance to the next kernel with blocks remaining.
			for ls.nextBlock[ls.kPtr] >= ls.kernels[ls.kPtr].Blocks {
				ls.kPtr = (ls.kPtr + 1) % len(ls.kernels)
			}
			ki := ls.kPtr
			ls.kPtr = (ls.kPtr + 1) % len(ls.kernels)
			spec := ls.specs[ki]
			if spec == nil {
				spec = g.blockSpec(ls.kernels[ki], ls.nextBlock[ki], ls.gidOffset[ki])
				ls.specs[ki] = spec
			}
			for scan := 0; scan < len(g.sms); scan++ {
				sm := g.sms[ls.smPtr]
				ls.smPtr = (ls.smPtr + 1) % len(g.sms)
				if sm.CanAccept(spec) {
					if err := sm.Allocate(spec); err != nil {
						ls.err = err
						return false
					}
					ls.nextBlock[ki]++
					ls.specs[ki] = nil
					ls.totalLeft--
					placedAny = true
					break
				}
			}
			if ls.totalLeft == 0 {
				break
			}
		}
		if !placedAny {
			// Failed rounds leave no trace: restore the kernel cursor the
			// skip-exhausted walk may have moved.
			ls.kPtr = startK
			break
		}
	}
	return true
}

// fastForward attempts an idle-cycle skip from the current cycle: when
// every SM's next event lies strictly in the future, jump straight to
// the earliest one — capped at the next heartbeat boundary (preserving
// monitor cadence, metrics flushes, and cancellation latency) and at
// the deadline (so CycleLimitError fires at the identical cycle the
// ticked loop would report). The skipped span's accounting is replayed
// in bulk by skipTo. Returns stopped=true when the skip landed on the
// deadline or observed a cancel, and skipped=true when any cycles were
// skipped (the probe-backoff signal).
//
//simlint:hotpath
func (g *GPU) fastForward(ls *launch) (stop loopStop, stopped, skipped bool) {
	wake := g.nextWake(g.cycle)
	if wake <= g.cycle {
		return stopDone, false, false // something is hot after all; keep ticking
	}
	if b := (g.cycle &^ (monitorPeriod - 1)) + monitorPeriod; b < wake {
		wake = b
	}
	if ls.deadline < wake {
		wake = ls.deadline
	}
	g.skipTo(wake)
	// Post-skip checks mirror the ticked loop's order exactly. Drain
	// cannot change across a quiescent span, so only deadline and
	// heartbeat need re-checking.
	if g.cycle >= ls.deadline {
		return stopDeadline, true, true
	}
	if g.cycle&(monitorPeriod-1) == 0 {
		if st, stopped := g.heartbeat(ls); stopped {
			return st, true, true
		}
	}
	return stopDone, false, true
}

// heartbeat runs the per-monitorPeriod supervision duties shared by the
// ticked loop and the fast-forward wake path: metrics flush, monitor
// beat/cancel poll, the runtime invariant auditor (config.AuditEvery),
// and the harness's snapshot hook. Deliberately not on the per-cycle
// path — everything here may allocate.
//
// The snapshot hook also runs on the heartbeat that observes a
// cancellation, before the loop stops: the device is still mid-launch
// and fully consistent here, so the harness can persist a final frame
// and a restarted process resumes exactly where the SIGTERM/watchdog
// kill landed. A hook failure during cancellation is swallowed — the
// cancel is the fault the caller must see.
//
//simlint:cold
func (g *GPU) heartbeat(ls *launch) (loopStop, bool) {
	g.flushMetrics()
	canceled := g.mon.beat(g.cycle)
	if !canceled {
		if g.corruptKind != "" {
			g.applyCorruption()
		}
		if g.auditEvery > 0 && g.cycle >= g.auditNext {
			g.auditNext = g.cycle + g.auditEvery
			if vs := g.AuditCheck(); len(vs) > 0 {
				ls.err = &AuditError{Cycle: g.cycle, Violations: vs}
				return stopFault, true
			}
		}
	}
	if g.snapFn != nil {
		if err := g.snapFn(g); err != nil && !canceled {
			ls.err = fmt.Errorf("gpu: snapshot hook at cycle %d: %w", g.cycle, err)
			return stopFault, true
		}
	}
	if canceled {
		return stopCanceled, true
	}
	return stopDone, false
}

// nextWake computes the device-wide next-event cycle: the min over all
// SMs' NextEvent and the memory system's, or now when any SM is hot.
// The memory-system events never initiate SM work by themselves (the
// hierarchy is analytic), so including them only shortens skips — a
// conservative bound, never a correctness requirement.
//
//simlint:hotpath
func (g *GPU) nextWake(now int64) int64 {
	wake := mem.NeverCycle
	for _, sm := range g.sms {
		e := sm.NextEvent(now)
		if e <= now {
			return now
		}
		if e < wake {
			wake = e
		}
	}
	if e := g.hier.NextEvent(now); e > now && e < wake {
		wake = e
	}
	return wake
}

// skipTo bulk-charges cycles [g.cycle, wake) and jumps the clock. Every
// per-cycle side channel the ticked loop feeds — CPI-stack stall
// buckets, occupancy sums, issue-timeline buckets, counter samples, the
// register-read trace — advances by exactly what the skipped ticks
// would have produced, which is what keeps stats.Run byte-identical
// with fast-forward on or off.
func (g *GPU) skipTo(wake int64) {
	n := wake - g.cycle
	if g.tracer != nil {
		// The KFastForward events emitted below carry the first skipped
		// cycle; the next loop iteration republishes the wake cycle.
		g.tracer.SetNow(g.cycle)
	}
	occ := 0
	for _, sm := range g.sms {
		sm.FastForward(g.cycle, n)
		occ += sm.ResidentWarps()
	}
	// Residency is constant across a quiescent span (blocks place and
	// retire only on issue activity), so the per-cycle sums scale.
	g.run.OccupancySum += int64(occ) * n
	g.run.OccupancySamples += n * int64(len(g.sms))
	if g.issueBucket > 0 {
		g.skipIssueSamples(n)
	}
	if g.tracer != nil {
		g.tracer.SampleRange(g.cycle, wake, g.sms[g.tracer.CounterSM()])
	}
	g.ffCycles += n
	g.cycle = wake
	g.run.Cycles = g.cycle
}

// skipIssueSamples advances the issue-timeline sampler across n skipped
// cycles. Per-cycle issue deltas are zero over a quiescent span, so
// only bucket-boundary flushes matter: the pre-skip partial accumulation
// flushes into its bucket at the exact cycle the ticked loop would have
// flushed it, and wholly-skipped buckets record zero.
func (g *GPU) skipIssueSamples(n int64) {
	for n > 0 {
		room := int64(g.issueBucket - g.issueFill)
		if n < room {
			g.issueFill += int(n)
			return
		}
		n -= room
		for i := range g.issueAccum {
			g.run.IssueTimeline[i] = append(g.run.IssueTimeline[i], g.issueAccum[i])
			g.issueAccum[i] = 0
		}
		g.issueFill = 0
	}
}

// FastForwardedCycles returns how many cycles the idle-cycle
// fast-forward has skipped over the device's lifetime. Diagnostic only —
// deliberately not part of stats.Run, which must stay byte-identical
// with fast-forward on or off.
func (g *GPU) FastForwardedCycles() int64 { return g.ffCycles }

// blockSpec materializes block b of kernel k; gidOffset displaces the
// kernel's warp-GID space under concurrent execution. Called once per
// placed block: the launch caches the spec until placement succeeds.
//
//simlint:cold
func (g *GPU) blockSpec(k *Kernel, b int, gidOffset int64) *smcore.BlockSpec {
	progs := make([]*program.Program, k.WarpsPerBlock)
	for w := range progs {
		progs[w] = k.WarpProgram(b, w)
	}
	return &smcore.BlockSpec{
		KernelBlockID:  b,
		Programs:       progs,
		RegsPerThread:  k.RegsPerThread,
		SharedMemBytes: k.SharedMemPerBlock,
		FirstWarpGID:   gidOffset + int64(b)*int64(k.WarpsPerBlock),
	}
}

func (g *GPU) drained() bool {
	for _, sm := range g.sms {
		if !sm.Drained() {
			return false
		}
	}
	return true
}

func (g *GPU) harvestCacheStats() {
	for i := range g.run.SMs {
		l1 := g.hier.L1(i)
		g.run.SMs[i].L1Hits = l1.Hits
		g.run.SMs[i].L1Misses = l1.Misses
	}
}

// RunKernels simulates a sequence of kernels (one application).
func (g *GPU) RunKernels(ks []*Kernel, maxCycles int64) error {
	for _, k := range ks {
		if err := g.RunKernel(k, maxCycles); err != nil {
			return err
		}
	}
	return nil
}
