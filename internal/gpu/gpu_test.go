package gpu

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/program"
)

// fmaProgram: n independent-chain FMAs (ilp parallel chains) then exit.
func fmaProgram(n int, ilp int) *program.Program {
	if ilp < 1 {
		ilp = 1
	}
	b := program.NewBuilder()
	b.Loop(int64(n/ilp), func(lb *program.Builder) {
		for c := 0; c < ilp; c++ {
			d := isa.Reg(4 + c)
			lb.FMA(d, d, isa.Reg(1), isa.Reg(2))
		}
	})
	return b.MustBuild()
}

// emptyProgram: barrier then exit (the "empty" warps of Fig. 4).
func emptyProgram() *program.Program {
	return program.NewBuilder().Bar().MustBuild()
}

// fmaThenBarProgram: compute warps of Fig. 4 (FMAs, barrier, exit).
func fmaThenBarProgram(n, ilp int) *program.Program {
	if ilp < 1 {
		ilp = 1
	}
	b := program.NewBuilder()
	b.Loop(int64(n/ilp), func(lb *program.Builder) {
		for c := 0; c < ilp; c++ {
			d := isa.Reg(4 + c)
			lb.FMA(d, d, isa.Reg(1), isa.Reg(2))
		}
	})
	b.Bar()
	return b.MustBuild()
}

func tinyCfg() config.GPU {
	g := config.VoltaV100()
	g.NumSMs = 1
	return g
}

func mustRun(t *testing.T, cfg config.GPU, k *Kernel) *GPU {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RunKernel(k, 2_000_000); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTrivialKernelCompletes(t *testing.T) {
	p := fmaProgram(64, 4)
	k := &Kernel{
		Name: "trivial", Blocks: 2, WarpsPerBlock: 8, RegsPerThread: 16,
		WarpProgram: func(b, w int) *program.Program { return p },
	}
	g := mustRun(t, tinyCfg(), k)
	r := g.Run()
	if r.Cycles <= 0 {
		t.Fatal("no cycles simulated")
	}
	want := int64(2) * 8 * p.Len()
	if r.Instructions != want {
		t.Fatalf("instructions = %d, want %d", r.Instructions, want)
	}
	if r.SMs[0].BlocksCompleted != 2 {
		t.Fatalf("blocks completed = %d, want 2", r.SMs[0].BlocksCompleted)
	}
}

func TestKernelValidate(t *testing.T) {
	cfg := tinyCfg()
	p := fmaProgram(8, 1)
	good := Kernel{Name: "k", Blocks: 1, WarpsPerBlock: 4, RegsPerThread: 8,
		WarpProgram: func(b, w int) *program.Program { return p }}
	if err := good.Validate(&cfg); err != nil {
		t.Fatalf("good kernel rejected: %v", err)
	}
	bads := []func(*Kernel){
		func(k *Kernel) { k.Blocks = 0 },
		func(k *Kernel) { k.WarpsPerBlock = 0 },
		func(k *Kernel) { k.WarpsPerBlock = 65 },
		func(k *Kernel) { k.SharedMemPerBlock = 1 << 30 },
		func(k *Kernel) { k.RegsPerThread = 0 },
		func(k *Kernel) { k.RegsPerThread = 1000 },
		func(k *Kernel) { k.WarpProgram = nil },
	}
	for i, mut := range bads {
		k := good
		mut(&k)
		if err := k.Validate(&cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestScoreboardSerializesDependentChain(t *testing.T) {
	// A single warp with a fully dependent FMA chain must run much slower
	// than one with 8 independent chains.
	dep := fmaProgram(256, 1)
	ind := fmaProgram(256, 8)
	mk := func(p *program.Program) *Kernel {
		return &Kernel{Name: "chain", Blocks: 1, WarpsPerBlock: 1, RegsPerThread: 16,
			WarpProgram: func(b, w int) *program.Program { return p }}
	}
	gDep := mustRun(t, tinyCfg(), mk(dep))
	gInd := mustRun(t, tinyCfg(), mk(ind))
	if gDep.Run().Cycles <= gInd.Run().Cycles*2 {
		t.Errorf("dependent chain %d cycles vs independent %d: scoreboard not serializing",
			gDep.Run().Cycles, gInd.Run().Cycles)
	}
}

func TestBarrierHoldsWarps(t *testing.T) {
	// One slow warp + 7 fast warps with a trailing barrier: total time
	// tracks the slow warp.
	slow := fmaThenBarProgram(2048, 2)
	fast := fmaThenBarProgram(16, 2)
	k := &Kernel{Name: "bar", Blocks: 1, WarpsPerBlock: 8, RegsPerThread: 16,
		WarpProgram: func(b, w int) *program.Program {
			if w == 0 {
				return slow
			}
			return fast
		}}
	g := mustRun(t, tinyCfg(), k)
	// Lower bound: the slow warp's FMA chain alone.
	kSlow := &Kernel{Name: "solo", Blocks: 1, WarpsPerBlock: 1, RegsPerThread: 16,
		WarpProgram: func(b, w int) *program.Program { return slow }}
	gs := mustRun(t, tinyCfg(), kSlow)
	if g.Run().Cycles < gs.Run().Cycles {
		t.Errorf("block with barrier finished in %d cycles, before its slowest warp's %d",
			g.Run().Cycles, gs.Run().Cycles)
	}
}

// TestSubCoreImbalanceEffect reproduces the Fig. 3 phenomenon end-to-end:
// on a 4-sub-core SM, concentrating all compute warps on one sub-core
// (warps 0,4,8,... mod 4 == 0 under round robin) is far slower than
// spreading them; a monolithic (fully-connected) SM is insensitive.
func TestSubCoreImbalanceEffect(t *testing.T) {
	const work = 1024
	compute := fmaThenBarProgram(work, 2)
	empty := emptyProgram()
	mk := func(unbalanced bool) *Kernel {
		return &Kernel{Name: "fma-layout", Blocks: 2, WarpsPerBlock: 32, RegsPerThread: 8,
			WarpProgram: func(b, w int) *program.Program {
				if unbalanced {
					if w%4 == 0 { // all land on sub-core 0 under RR
						return compute
					}
					return empty
				}
				if w < 8 { // spread across sub-cores 0..3
					return compute
				}
				return empty
			}}
	}
	part := tinyCfg()
	gU := mustRun(t, part, mk(true))
	gB := mustRun(t, part, mk(false))
	ratio := float64(gU.Run().Cycles) / float64(gB.Run().Cycles)
	if ratio < 2.0 {
		t.Errorf("partitioned unbalanced/balanced = %.2f, want >= 2 (Fig. 3 shape)", ratio)
	}

	fc := config.FullyConnected()
	fc.NumSMs = 1
	fU := mustRun(t, fc, mk(true))
	fB := mustRun(t, fc, mk(false))
	fratio := float64(fU.Run().Cycles) / float64(fB.Run().Cycles)
	if fratio > 1.3 {
		t.Errorf("fully-connected unbalanced/balanced = %.2f, want ~1 (monolithic insensitive)", fratio)
	}
}

// TestSRRFixesOneInFourImbalance: the paper's TPC-H pattern (one long
// warp every 4) is pathological under RR and fixed by SRR.
func TestSRRFixesOneInFourImbalance(t *testing.T) {
	long := fmaThenBarProgram(1024, 2)
	short := fmaThenBarProgram(32, 2)
	k := func() *Kernel {
		return &Kernel{Name: "tpch-like", Blocks: 4, WarpsPerBlock: 16, RegsPerThread: 8,
			WarpProgram: func(b, w int) *program.Program {
				if w%4 == 0 {
					return long
				}
				return short
			}}
	}
	rr := mustRun(t, tinyCfg(), k())
	srrCfg := tinyCfg().WithAssign(config.AssignSRR)
	srr := mustRun(t, srrCfg, k())
	speedup := float64(rr.Run().Cycles) / float64(srr.Run().Cycles)
	if speedup < 1.5 {
		t.Errorf("SRR speedup on 1-in-4 imbalance = %.2f, want >= 1.5", speedup)
	}
	shufCfg := tinyCfg().WithAssign(config.AssignShuffle)
	shuf := mustRun(t, shufCfg, k())
	sspeed := float64(rr.Run().Cycles) / float64(shuf.Run().Cycles)
	if sspeed < 1.2 {
		t.Errorf("Shuffle speedup = %.2f, want >= 1.2", sspeed)
	}
	// CoV of issued instructions drops under SRR (Fig. 17 metric).
	if srr.Run().IssueCoV() >= rr.Run().IssueCoV() {
		t.Errorf("SRR CoV %.3f not below RR CoV %.3f", srr.Run().IssueCoV(), rr.Run().IssueCoV())
	}
}

// TestRBAReducesBankConflicts: on a register-pressure kernel, RBA should
// cut bank conflicts and not be slower than GTO.
func TestRBAReducesBankConflicts(t *testing.T) {
	// Warps use FMA with operands deliberately spread so different warps
	// collide on banks; high ILP keeps many warps ready.
	b := program.NewBuilder()
	b.Loop(256, func(lb *program.Builder) {
		lb.FMA(4, 1, 3, 5)  // slot-dependent banks
		lb.FMA(6, 2, 8, 10) // different mix
		lb.FMA(7, 9, 11, 13)
	})
	p := b.MustBuild()
	k := func() *Kernel {
		return &Kernel{Name: "rf-heavy", Blocks: 4, WarpsPerBlock: 16, RegsPerThread: 16,
			WarpProgram: func(bk, w int) *program.Program { return p }}
	}
	gto := mustRun(t, tinyCfg(), k())
	rbaCfg := tinyCfg().WithScheduler(config.SchedRBA)
	rba := mustRun(t, rbaCfg, k())
	if rba.Run().Cycles > gto.Run().Cycles*105/100 {
		t.Errorf("RBA %d cycles vs GTO %d: RBA should not lose >5%%", rba.Run().Cycles, gto.Run().Cycles)
	}
	t.Logf("GTO: %d cycles, %d conflicts; RBA: %d cycles, %d conflicts",
		gto.Run().Cycles, gto.Run().TotalBankConflicts(),
		rba.Run().Cycles, rba.Run().TotalBankConflicts())
}

func TestMemoryKernelCompletes(t *testing.T) {
	b := program.NewBuilder()
	b.Loop(64, func(lb *program.Builder) {
		lb.LDG(4, 1, isa.MemTrait{Pattern: isa.PatCoalesced, Footprint: 1 << 20, Shared: true})
		lb.FMA(5, 4, 4, 5)
	})
	p := b.MustBuild()
	k := &Kernel{Name: "mem", Blocks: 4, WarpsPerBlock: 8, RegsPerThread: 16,
		WarpProgram: func(bk, w int) *program.Program { return p }}
	g := mustRun(t, tinyCfg(), k)
	r := g.Run()
	if r.SMs[0].L1Hits+r.SMs[0].L1Misses == 0 {
		t.Error("no L1 traffic recorded")
	}
}

func TestSharedMemoryLimitsOccupancy(t *testing.T) {
	p := fmaProgram(64, 2)
	// Each block reserves 48KB: only 2 fit in 96KB despite warp slots for 8.
	k := &Kernel{Name: "shmem", Blocks: 4, WarpsPerBlock: 8, RegsPerThread: 8,
		SharedMemPerBlock: 48 * 1024,
		WarpProgram:       func(b, w int) *program.Program { return p }}
	g := mustRun(t, tinyCfg(), k)
	if g.Run().SMs[0].BlocksCompleted != 4 {
		t.Fatal("not all blocks completed")
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	p := fmaProgram(1<<20, 1)
	k := &Kernel{Name: "long", Blocks: 1, WarpsPerBlock: 1, RegsPerThread: 8,
		WarpProgram: func(b, w int) *program.Program { return p }}
	g, err := New(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	err = g.RunKernel(k, 100)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("expected cycle-guard error, got %v", err)
	}
	var cle *CycleLimitError
	if !errors.As(err, &cle) {
		t.Fatalf("expected *CycleLimitError, got %T (%v)", err, err)
	}
	if cle.Kernel != "long" || cle.MaxCycles != 100 {
		t.Errorf("CycleLimitError = %+v, want Kernel=long MaxCycles=100", cle)
	}
	if cle.BlocksTotal != 1 {
		t.Errorf("BlocksTotal = %d, want 1", cle.BlocksTotal)
	}
}

// TestMonitorCancel: a Monitor cancellation from another goroutine stops
// the cycle loop with a reason-carrying *CancelError — the mechanism the
// harness watchdog and wall-clock timeout kill hung cells through.
func TestMonitorCancel(t *testing.T) {
	p := fmaProgram(1<<20, 1)
	k := &Kernel{Name: "hung", Blocks: 1, WarpsPerBlock: 1, RegsPerThread: 8,
		WarpProgram: func(b, w int) *program.Program { return p }}
	g, err := New(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	mon := new(Monitor)
	g.SetMonitor(mon)

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Wait until the loop has demonstrably made progress, then kill it.
		for mon.Cycle() == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		mon.Cancel("watchdog: no forward progress")
	}()
	err = g.RunKernel(k, 0)
	<-done

	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("expected *CancelError, got %T (%v)", err, err)
	}
	if ce.Kernel != "hung" || ce.Reason != "watchdog: no forward progress" {
		t.Errorf("CancelError = %+v", ce)
	}
	if ce.Cycle == 0 {
		t.Error("CancelError.Cycle = 0, want the kill-point cycle")
	}
	if mon.Reason() != "watchdog: no forward progress" {
		t.Errorf("Monitor.Reason() = %q", mon.Reason())
	}
}

// TestMonitorHeartbeat: the cycle loop publishes forward progress through
// the monitor even when the run completes normally.
func TestMonitorHeartbeat(t *testing.T) {
	p := fmaProgram(1<<14, 1)
	k := &Kernel{Name: "beat", Blocks: 1, WarpsPerBlock: 1, RegsPerThread: 8,
		WarpProgram: func(b, w int) *program.Program { return p }}
	g, err := New(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	mon := new(Monitor)
	g.SetMonitor(mon)
	if err := g.RunKernel(k, 0); err != nil {
		t.Fatal(err)
	}
	if mon.Cycle() == 0 {
		t.Error("monitor heartbeat never advanced during a long run")
	}
	if mon.Canceled() {
		t.Error("monitor spuriously canceled")
	}
}

func TestRunKernelsSequence(t *testing.T) {
	p := fmaProgram(32, 2)
	mk := func(name string) *Kernel {
		return &Kernel{Name: name, Blocks: 2, WarpsPerBlock: 4, RegsPerThread: 8,
			WarpProgram: func(b, w int) *program.Program { return p }}
	}
	g, err := New(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RunKernels([]*Kernel{mk("k1"), mk("k2")}, 0); err != nil {
		t.Fatal(err)
	}
	want := int64(2) * 2 * 4 * p.Len()
	if g.Run().Instructions != want {
		t.Fatalf("instructions = %d, want %d", g.Run().Instructions, want)
	}
}

func TestTraceReads(t *testing.T) {
	p := fmaProgram(64, 2)
	k := &Kernel{Name: "trace", Blocks: 1, WarpsPerBlock: 8, RegsPerThread: 8,
		WarpProgram: func(b, w int) *program.Program { return p }}
	g, err := New(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	g.TraceReads(true)
	if err := g.RunKernel(k, 0); err != nil {
		t.Fatal(err)
	}
	r := g.Run()
	if int64(len(r.ReadsPerCycle)) != r.Cycles {
		t.Fatalf("trace length %d != cycles %d", len(r.ReadsPerCycle), r.Cycles)
	}
	if r.MeanReadsPerCycle() <= 0 {
		t.Error("no reads traced")
	}
}

func TestBankStealingRunsAndIsClose(t *testing.T) {
	p := fmaProgram(256, 4)
	mk := func() *Kernel {
		return &Kernel{Name: "steal", Blocks: 2, WarpsPerBlock: 16, RegsPerThread: 16,
			WarpProgram: func(b, w int) *program.Program { return p }}
	}
	base := mustRun(t, tinyCfg(), mk())
	steal := mustRun(t, tinyCfg().WithBankStealing(), mk())
	// Section VI: bank stealing is within ~1% with 2 CUs — at minimum it
	// must not corrupt execution or blow up latency.
	ratio := float64(steal.Run().Cycles) / float64(base.Run().Cycles)
	if ratio > 1.15 || ratio < 0.85 {
		t.Errorf("bank stealing ratio = %.3f, want ~1.0", ratio)
	}
	if steal.Run().Instructions != base.Run().Instructions {
		t.Error("bank stealing changed instruction count")
	}
}

func TestFullyConnectedNotSlowerOnBalanced(t *testing.T) {
	p := fmaProgram(512, 4)
	mk := func() *Kernel {
		return &Kernel{Name: "bal", Blocks: 4, WarpsPerBlock: 16, RegsPerThread: 16,
			WarpProgram: func(b, w int) *program.Program { return p }}
	}
	part := mustRun(t, tinyCfg(), mk())
	fcCfg := config.FullyConnected()
	fcCfg.NumSMs = 1
	fc := mustRun(t, fcCfg, mk())
	if fc.Run().Cycles > part.Run().Cycles*11/10 {
		t.Errorf("FC %d cycles vs partitioned %d: FC must not lose on balanced compute",
			fc.Run().Cycles, part.Run().Cycles)
	}
}
