package gpu

import (
	"fmt"

	"repro/internal/audit"
)

// AuditError reports runtime invariant violations found by the device
// auditor (config.AuditEvery / AuditCheck). It is a structured,
// errors.As-able fault: the harness maps it to FaultAudit and dumps the
// flight recorder, so a corrupted simulation dies loudly at the first
// audited heartbeat instead of producing silently wrong statistics.
type AuditError struct {
	// Cycle is the simulation cycle the audit ran at.
	Cycle int64
	// Violations are the broken conservation laws, in deterministic
	// device order (SMs by index, then the memory hierarchy, then the
	// CPI stack).
	Violations []audit.Violation
}

func (e *AuditError) Error() string {
	if len(e.Violations) == 1 {
		return fmt.Sprintf("gpu: invariant audit failed at cycle %d: %s", e.Cycle, e.Violations[0])
	}
	return fmt.Sprintf("gpu: invariant audit failed at cycle %d: %s (and %d more)",
		e.Cycle, e.Violations[0], len(e.Violations)-1)
}

// AuditCheck re-derives the device's conservation laws and returns every
// violation: per-SM scoreboard/lease/occupancy/budget invariants, memory
// hierarchy MSHR/cache/channel invariants, and the CPI-stack identity
// (every sub-core's attributed cycles sum exactly to the device cycles).
// Read-only and safe between cycles; an empty result is a healthy device.
func (g *GPU) AuditCheck() []audit.Violation {
	var vs []audit.Violation
	for _, sm := range g.sms {
		vs = append(vs, sm.Audit()...)
	}
	vs = append(vs, g.hier.Audit()...)
	if err := g.run.CheckCPI(); err != nil {
		vs = append(vs, audit.Violationf("cpi", "device", "%v", err))
	}
	return vs
}

// ArmCorruptionForTest schedules a seeded state corruption of the given
// kind ("scoreboard", "lease", or "mshr") to be applied at the next
// heartbeat — mid-kernel, exactly where real corruption would strike —
// so tests can prove the armed auditor turns it into an AuditError.
// Never call outside tests.
func (g *GPU) ArmCorruptionForTest(kind string) {
	g.corruptKind = kind
}

// applyCorruption performs the armed test corruption. Scoreboard
// corruption needs an active warp; it stays armed until one exists.
func (g *GPU) applyCorruption() {
	switch g.corruptKind {
	case "scoreboard":
		for _, sm := range g.sms {
			if sm.CorruptScoreboardForTest() {
				g.corruptKind = ""
				return
			}
		}
	case "lease":
		g.sms[0].CorruptLeaseForTest()
		g.corruptKind = ""
	case "mshr":
		g.hier.CorruptMSHRForTest(g.cycle)
		g.corruptKind = ""
	default:
		panic(fmt.Sprintf("gpu: unknown test corruption kind %q", g.corruptKind))
	}
}
