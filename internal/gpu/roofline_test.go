package gpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/program"
)

// TestRooflineBounds: simulated IPC can never exceed the architectural
// ceilings — issue width, FP32 initiation throughput, and register-read
// bandwidth — for pure-FMA kernels on any configuration.
func TestRooflineBounds(t *testing.T) {
	p := fmaProgram(256, 8)
	k := &Kernel{Name: "roofline", Blocks: 8, WarpsPerBlock: 16, RegsPerThread: 16,
		WarpProgram: func(b, w int) *program.Program { return p }}
	cfgs := []config.GPU{
		func() config.GPU { c := config.VoltaV100(); c.NumSMs = 1; return c }(),
		func() config.GPU { c := config.FullyConnected(); c.NumSMs = 1; return c }(),
		func() config.GPU { c := config.RDNALike(); c.NumSMs = 1; return c }(),
	}
	for _, cfg := range cfgs {
		g, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.RunKernel(k, 0); err != nil {
			t.Fatal(err)
		}
		ipc := g.Run().IPC()
		issueBound := float64(cfg.NumSMs * cfg.SubCoresPerSM * cfg.SchedulersPerSubCore)
		fp32Bound := float64(cfg.NumSMs*cfg.SubCoresPerSM*cfg.FP32LanesPerSubCore) / float64(isa.WarpSize)
		// FMA reads ~3 operands; bank read ports bound sustained issue.
		bankBound := float64(cfg.NumSMs*cfg.SubCoresPerSM*cfg.BanksPerSubCore) / 2.5
		for name, bound := range map[string]float64{
			"issue": issueBound, "fp32": fp32Bound, "banks": bankBound,
		} {
			// 1% slack: the stream is ~99.8% FMA (EXITs issue too).
			if ipc > bound*1.01 {
				t.Errorf("%s: IPC %.2f exceeds %s roofline %.2f", cfg.Name, ipc, name, bound)
			}
		}
		// And the run must achieve a sane fraction of the tightest bound.
		tightest := issueBound
		if fp32Bound < tightest {
			tightest = fp32Bound
		}
		if ipc < tightest*0.25 {
			t.Errorf("%s: IPC %.2f below 25%% of roofline %.2f", cfg.Name, ipc, tightest)
		}
	}
}

// TestRDNALikePreset checks the 2-way partitioned preset's shape.
func TestRDNALikePreset(t *testing.T) {
	g := config.RDNALike()
	if g.SubCoresPerSM != 2 {
		t.Errorf("SubCoresPerSM = %d, want 2", g.SubCoresPerSM)
	}
	// Total capacity parity with VoltaV100.
	v := config.VoltaV100()
	if g.SubCoresPerSM*g.BanksPerSubCore != v.SubCoresPerSM*v.BanksPerSubCore {
		t.Error("bank totals differ")
	}
	if g.SubCoresPerSM*g.FP32LanesPerSubCore != v.SubCoresPerSM*v.FP32LanesPerSubCore {
		t.Error("lane totals differ")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

// TestPerKernelStats: RunKernels must record one KernelStats per launch
// whose totals match the run.
func TestPerKernelStats(t *testing.T) {
	p := fmaProgram(32, 2)
	mk := func(name string) *Kernel {
		return &Kernel{Name: name, Blocks: 2, WarpsPerBlock: 4, RegsPerThread: 8,
			WarpProgram: func(b, w int) *program.Program { return p }}
	}
	g, err := New(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RunKernels([]*Kernel{mk("k1"), mk("k2")}, 0); err != nil {
		t.Fatal(err)
	}
	r := g.Run()
	if len(r.Kernels) != 2 {
		t.Fatalf("kernel records = %d, want 2", len(r.Kernels))
	}
	var cyc, instr int64
	for _, ks := range r.Kernels {
		cyc += ks.Cycles
		instr += ks.Instructions
	}
	if cyc != r.Cycles || instr != r.Instructions {
		t.Errorf("per-kernel totals (%d, %d) != run totals (%d, %d)", cyc, instr, r.Cycles, r.Instructions)
	}
	if r.Kernels[0].Name != "k1" || r.Kernels[1].Name != "k2" {
		t.Error("kernel labels wrong")
	}
}

// TestOccupancyStat: mean occupancy is positive and bounded by the SM's
// warp capacity.
func TestOccupancyStat(t *testing.T) {
	p := fmaProgram(128, 4)
	k := &Kernel{Name: "occ", Blocks: 8, WarpsPerBlock: 8, RegsPerThread: 16,
		WarpProgram: func(b, w int) *program.Program { return p }}
	g, err := New(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RunKernel(k, 0); err != nil {
		t.Fatal(err)
	}
	occ := g.Run().MeanOccupancy()
	if occ <= 0 || occ > 64 {
		t.Errorf("MeanOccupancy = %.1f, want (0, 64]", occ)
	}
}

// TestConcurrentKernelsInterleave: two concurrent kernels finish faster
// than strictly serializing them when each underutilizes the device.
func TestConcurrentKernelsInterleave(t *testing.T) {
	p := fmaProgram(256, 2)
	mk := func(name string) *Kernel {
		return &Kernel{Name: name, Blocks: 2, WarpsPerBlock: 8, RegsPerThread: 16,
			WarpProgram: func(b, w int) *program.Program { return p }}
	}
	serial, err := New(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.RunKernels([]*Kernel{mk("a"), mk("b")}, 0); err != nil {
		t.Fatal(err)
	}
	conc, err := New(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := conc.RunConcurrent([]*Kernel{mk("a"), mk("b")}, 0); err != nil {
		t.Fatal(err)
	}
	if conc.Run().Instructions != serial.Run().Instructions {
		t.Error("concurrent execution changed committed work")
	}
	if conc.Run().Cycles >= serial.Run().Cycles {
		t.Errorf("concurrent (%d cycles) not faster than serial (%d) on an underutilized device",
			conc.Run().Cycles, serial.Run().Cycles)
	}
	if len(conc.Run().Kernels) != 1 {
		t.Error("concurrent launch should record one batch entry")
	}
}

// TestTraceIssueTimeline: the per-sub-core issue timeline must cover the
// run and sum to SM 0's issued instructions (full buckets only).
func TestTraceIssueTimeline(t *testing.T) {
	p := fmaProgram(128, 4)
	k := &Kernel{Name: "tl", Blocks: 4, WarpsPerBlock: 8, RegsPerThread: 16,
		WarpProgram: func(b, w int) *program.Program { return p }}
	g, err := New(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	g.TraceIssue(16)
	if err := g.RunKernel(k, 0); err != nil {
		t.Fatal(err)
	}
	r := g.Run()
	if len(r.IssueTimeline) != 4 {
		t.Fatalf("timeline sub-cores = %d, want 4", len(r.IssueTimeline))
	}
	var bucketed int64
	for _, series := range r.IssueTimeline {
		for _, v := range series {
			bucketed += int64(v)
		}
	}
	var issued int64
	for i := range r.SMs[0].SubCores {
		issued += r.SMs[0].SubCores[i].Issued
	}
	// The trailing partial bucket may be unflushed.
	if bucketed > issued || issued-bucketed > 4*16*4 {
		t.Errorf("bucketed %d vs issued %d", bucketed, issued)
	}
	if r.IssueBucket != 16 {
		t.Errorf("IssueBucket = %d, want 16", r.IssueBucket)
	}
}
