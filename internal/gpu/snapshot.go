package gpu

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/program"
	"repro/internal/smcore"
	"repro/internal/snapshot"
	"repro/internal/stats"
)

// Snapshot field manifests, checked by TestSnapshotCoverage via
// snapshot.Coverage (see docs/ROBUSTNESS.md for the format).
var (
	gpuManifest = map[string]string{
		"cfg":         "encoded (canonical JSON fingerprint, compared on restore)",
		"hier":        "encoded",
		"sms":         "encoded",
		"run":         "encoded (canonical JSON; restored element-wise to preserve the SMs' stats pointers)",
		"cycle":       "encoded",
		"ffCycles":    "encoded",
		"traceReads":  "encoded (validated: resume requires the same tracing arming)",
		"issueBucket": "encoded (validated: resume requires the same tracing arming)",
		"issuePrev":   "encoded when issue tracing is armed",
		"issueAccum":  "encoded when issue tracing is armed",
		"issueFill":   "encoded when issue tracing is armed",
		"tracer":      "skip: observability wiring, reattached via SetTracer",
		"mon":         "skip: supervision wiring, reattached via SetMonitor",
		"met":         "skip: telemetry wiring; watermarks re-anchored on restore",
		"auditEvery":  "skip: audit policy, taken from the restore target's config",
		"auditNext":   "skip: derived; audits re-arm from the restored cycle",
		"snapFn":      "skip: harness wiring, reattached via SetSnapshotHook",
		"curLaunch":   "encoded (as the launch section, when a launch is in flight)",
		"pending":     "skip: restore-side handoff to ContinueKernels, never live at snapshot time",
		"corruptKind": "skip: test-only arming, never live in production snapshots",
	}
	launchManifest = map[string]string{
		"kernels":     "encoded (batch size only; kernels are workload artifacts, rebound by Restore)",
		"maxCycles":   "encoded",
		"deadline":    "encoded (absolute cycle, so the resumed run faults at the identical point)",
		"nextBlock":   "encoded",
		"specs":       "skip: materialized-spec cache, rebuilt deterministically from nextBlock",
		"gidOffset":   "skip: recomputed from the rebound kernel batch",
		"totalLeft":   "skip: recomputed from nextBlock",
		"totalBlocks": "skip: recomputed from the rebound kernel batch",
		"kPtr":        "encoded",
		"smPtr":       "encoded",
		"startCycles": "encoded",
		"startInstr":  "encoded",
		"err":         "skip: faulted launches never reach a snapshot boundary",
	}
	devMetricsManifest = map[string]string{
		"cycles":    "skip: telemetry handle",
		"instrs":    "skip: telemetry handle",
		"kernels":   "skip: telemetry handle",
		"lastCycle": "skip: watermark, re-anchored on restore",
		"lastInstr": "skip: watermark, re-anchored on restore",
	}
)

// SetSnapshotHook attaches fn to the run loop's heartbeat: every
// monitorPeriod cycles the hook may call WriteSnapshot on the quiescent
// device (between cycles, every conservation law intact). A hook error
// faults the run. Pass nil to detach. The harness uses this for periodic
// mid-kernel snapshots (cycle-interval and wall-clock policies live in
// the hook, not here).
func (g *GPU) SetSnapshotHook(fn func(*GPU) error) { g.snapFn = fn }

// Cycle returns the device's current simulation cycle.
func (g *GPU) Cycle() int64 { return g.cycle }

// WriteSnapshot serializes the device's complete mutable state — clock,
// statistics, thread-block scheduler position, every SM (warps,
// scoreboards, collectors, execution-port timing, LSU), and the memory
// hierarchy — as one versioned, checksummed frame. Valid between cycles:
// from the snapshot hook (mid-kernel) or between RunKernel calls. The
// frame is deterministic: equal states serialize to equal bytes.
func (g *GPU) WriteSnapshot(w io.Writer) error {
	e := snapshot.NewEncoder()
	e.Section("gpu")
	cfgJSON, err := json.Marshal(g.cfg)
	if err != nil {
		return fmt.Errorf("gpu: snapshot config: %w", err)
	}
	e.Bytes(cfgJSON)
	e.Varint(g.cycle)
	e.Varint(g.ffCycles)
	e.Bool(g.traceReads)
	e.Int(g.issueBucket)
	if g.issueBucket > 0 {
		e.Int(g.issueFill)
		for _, v := range g.issuePrev {
			e.Varint(v)
		}
		for _, v := range g.issueAccum {
			e.Uvarint(uint64(v))
		}
	}
	runJSON, err := json.Marshal(g.run)
	if err != nil {
		return fmt.Errorf("gpu: snapshot stats: %w", err)
	}
	e.Bytes(runJSON)
	if ls := g.curLaunch; ls != nil {
		e.Bool(true)
		e.Section("launch")
		e.Uvarint(uint64(len(ls.kernels)))
		e.Varint(ls.maxCycles)
		e.Varint(ls.deadline)
		e.Varint(ls.startCycles)
		e.Varint(ls.startInstr)
		e.Int(ls.kPtr)
		e.Int(ls.smPtr)
		for _, nb := range ls.nextBlock {
			e.Int(nb)
		}
	} else {
		e.Bool(false)
	}
	g.hier.EncodeState(e)
	for _, sm := range g.sms {
		sm.EncodeState(e)
	}
	return e.Finish(w)
}

// Restore loads a snapshot into a freshly built device of the identical
// configuration. ks is the application's full kernel sequence — the same
// workload the snapshot was taken under; mid-kernel snapshots rebind
// their warps' instruction streams through it (programs are
// deterministic workload artifacts, rebuilt rather than serialized, and
// any mismatch fails loudly). After a successful Restore, run
// ContinueKernels(ks, ...) to resume the simulation.
func (g *GPU) Restore(r io.Reader, ks []*Kernel) error {
	d, err := snapshot.NewDecoder(r)
	if err != nil {
		return err
	}
	d.Section("gpu")
	wantCfg, err := json.Marshal(g.cfg)
	if err != nil {
		return fmt.Errorf("gpu: restore config: %w", err)
	}
	gotCfg := d.Bytes()
	if err := d.Err(); err != nil {
		return err
	}
	if string(gotCfg) != string(wantCfg) {
		return fmt.Errorf("gpu: snapshot was taken on a different configuration (%s, this device is %s)",
			jsonName(gotCfg), g.cfg.Name)
	}
	g.cycle = d.Varint()
	g.ffCycles = d.Varint()
	if tr := d.Bool(); tr != g.traceReads {
		return fmt.Errorf("gpu: snapshot register-read tracing %v, this device %v — arm TraceReads identically before Restore", tr, g.traceReads)
	}
	if ib := d.Int(); ib != g.issueBucket {
		return fmt.Errorf("gpu: snapshot issue tracing bucket %d, this device %d — arm TraceIssue identically before Restore", ib, g.issueBucket)
	}
	if g.issueBucket > 0 {
		g.issueFill = d.Int()
		for i := range g.issuePrev {
			g.issuePrev[i] = d.Varint()
		}
		for i := range g.issueAccum {
			g.issueAccum[i] = uint32(d.Uvarint())
		}
	}
	if err := g.restoreRun(d.Bytes()); err != nil {
		return err
	}
	if err := d.Err(); err != nil {
		return err
	}
	g.pending = nil
	progFor := smcore.ProgramResolver(func(gid int64) (*program.Program, error) {
		return nil, fmt.Errorf("gpu: snapshot holds resident warp %d but no kernel was in flight", gid)
	})
	if d.Bool() {
		ls, err := g.decodeLaunch(d, ks)
		if err != nil {
			return err
		}
		g.pending = &resumedLaunch{ls: ls, next: len(g.run.Kernels) + len(ls.kernels)}
		progFor = resolverFor(ls)
	}
	if err := g.hier.RestoreState(d); err != nil {
		return err
	}
	for _, sm := range g.sms {
		if err := sm.RestoreState(d, progFor); err != nil {
			return err
		}
	}
	if err := d.Finish(); err != nil {
		return err
	}
	// Telemetry deltas restart from the restored state: the process that
	// wrote the snapshot already published everything before it.
	if g.met != nil {
		g.met.lastCycle, g.met.lastInstr = g.cycle, g.run.Instructions
	}
	g.auditNext = 0
	return nil
}

// restoreRun decodes the statistics JSON element-wise into the existing
// stats.Run: the SMs hold pointers into run.SMs[i] and its SubCores
// slice, so those arrays must keep their identity while every counter is
// overwritten.
func (g *GPU) restoreRun(runJSON []byte) error {
	var tmp stats.Run
	if err := json.Unmarshal(runJSON, &tmp); err != nil {
		return fmt.Errorf("gpu: restore stats: %w", err)
	}
	if len(tmp.SMs) != len(g.run.SMs) {
		return fmt.Errorf("gpu: snapshot stats cover %d SMs, this device has %d", len(tmp.SMs), len(g.run.SMs))
	}
	for i := range tmp.SMs {
		if len(tmp.SMs[i].SubCores) != len(g.run.SMs[i].SubCores) {
			return fmt.Errorf("gpu: snapshot stats SM %d covers %d sub-cores, this device has %d",
				i, len(tmp.SMs[i].SubCores), len(g.run.SMs[i].SubCores))
		}
		sub := g.run.SMs[i].SubCores
		copy(sub, tmp.SMs[i].SubCores)
		tmp.SMs[i].SubCores = sub
	}
	subs := g.run.SMs
	copy(subs, tmp.SMs)
	tmp.SMs = subs
	*g.run = tmp
	return nil
}

// decodeLaunch rebuilds the in-flight launch from the snapshot plus the
// caller's kernel sequence: completed launches are counted off the
// restored stats, the next len-of-batch kernels are the in-flight batch.
func (g *GPU) decodeLaunch(d *snapshot.Decoder, ks []*Kernel) (*launch, error) {
	d.Section("launch")
	nk := int(d.Uvarint())
	maxCycles := d.Varint()
	deadline := d.Varint()
	startCycles := d.Varint()
	startInstr := d.Varint()
	kPtr := d.Int()
	smPtr := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	done := len(g.run.Kernels)
	if done+nk > len(ks) {
		return nil, fmt.Errorf("gpu: snapshot is mid-launch %d..%d of the application, but only %d kernels were supplied",
			done, done+nk, len(ks))
	}
	batch := ks[done : done+nk]
	if err := g.validateLaunch(batch); err != nil {
		return nil, err
	}
	ls := g.newLaunch(batch, maxCycles)
	ls.deadline = deadline
	ls.startCycles = startCycles
	ls.startInstr = startInstr
	if kPtr < 0 || kPtr >= nk || smPtr < 0 || smPtr >= len(g.sms) {
		return nil, fmt.Errorf("gpu: snapshot scheduler cursors (kernel %d, SM %d) out of range", kPtr, smPtr)
	}
	ls.kPtr, ls.smPtr = kPtr, smPtr
	ls.totalLeft = 0
	for i, k := range batch {
		nb := d.Int()
		if nb < 0 || nb > k.Blocks {
			return nil, fmt.Errorf("gpu: snapshot places %d blocks of kernel %s, grid has %d", nb, k.Name, k.Blocks)
		}
		ls.nextBlock[i] = nb
		ls.totalLeft += k.Blocks - nb
	}
	return ls, d.Err()
}

// resolverFor maps kernel-wide warp GIDs back to instruction streams
// through the launch's GID-offset table.
func resolverFor(ls *launch) smcore.ProgramResolver {
	return func(gid int64) (*program.Program, error) {
		for i := len(ls.kernels) - 1; i >= 0; i-- {
			if gid < ls.gidOffset[i] {
				continue
			}
			k := ls.kernels[i]
			local := gid - ls.gidOffset[i]
			b := local / int64(k.WarpsPerBlock)
			if b >= int64(k.Blocks) {
				break
			}
			return k.WarpProgram(int(b), int(local%int64(k.WarpsPerBlock))), nil
		}
		return nil, fmt.Errorf("gpu: snapshot warp GID %d maps to no in-flight kernel", gid)
	}
}

// ContinueKernels resumes a restored device: it drives the restored
// mid-kernel launch (if any) to completion without re-running the
// per-kernel resets — the restored scheduler state must survive — and
// then runs the remaining kernels of the sequence normally. ks must be
// the same kernel sequence passed to Restore. The combined
// pre-snapshot + resumed execution is byte-identical to an uninterrupted
// run of the same application (TestSnapshotResumeInert).
func (g *GPU) ContinueKernels(ks []*Kernel, maxCycles int64) error {
	// done counts kernels consumed so far. Between launches it equals the
	// stats entries (the RunKernels contract: one kernel per launch); a
	// resumed mid-flight batch knows its own end index, so concurrent
	// batches resume correctly too.
	done := len(g.run.Kernels)
	if p := g.pending; p != nil {
		g.pending = nil
		if err := g.runLaunch(p.ls); err != nil {
			return err
		}
		done = p.next
	}
	if done > len(ks) {
		return fmt.Errorf("gpu: device has completed %d kernels, the sequence holds %d", done, len(ks))
	}
	return g.RunKernels(ks[done:], maxCycles)
}

// resumedLaunch carries a restored mid-kernel launch from Restore to
// ContinueKernels: the launch itself plus the index of the first
// not-yet-started kernel in the application sequence.
type resumedLaunch struct {
	ls   *launch
	next int
}

// jsonName extracts the Name field from a config JSON fingerprint for
// error messages; the raw fingerprint would drown the message.
func jsonName(cfgJSON []byte) string {
	var v struct {
		Name string
	}
	if err := json.Unmarshal(cfgJSON, &v); err != nil || v.Name == "" {
		return "unknown"
	}
	return v.Name
}
