package gpu

import (
	"fmt"
	"sync/atomic"
)

// monitorPeriod is how often (in cycles) the simulation loop publishes a
// heartbeat and polls for cancellation. A power of two so the check
// compiles to a mask; at typical simulation speeds (~1M cycles/sec) this
// bounds cancellation latency to well under a millisecond while keeping
// the per-cycle cost of supervision to one predictable branch.
const monitorPeriod = 1024

// Monitor is the concurrency-safe channel between a running device and
// an external supervisor (a watchdog, a timeout timer, a context). The
// simulation loop publishes its cycle count as a heartbeat every
// monitorPeriod cycles and polls the cancel flag at the same points;
// supervisors read the heartbeat to detect lost forward progress and set
// the flag to stop the run. All methods are safe for concurrent use and
// all are no-ops on a nil receiver, so an unsupervised run pays nothing.
type Monitor struct {
	cycle    atomic.Int64
	canceled atomic.Bool
	reason   atomic.Pointer[string]
}

// Cycle returns the most recently published simulation cycle.
func (m *Monitor) Cycle() int64 {
	if m == nil {
		return 0
	}
	return m.cycle.Load()
}

// Cancel requests the supervised run stop; the first reason wins. The
// simulation loop observes the flag within monitorPeriod cycles and
// returns a *CancelError.
func (m *Monitor) Cancel(reason string) {
	if m == nil {
		return
	}
	if m.canceled.CompareAndSwap(false, true) {
		m.reason.Store(&reason)
	}
}

// Canceled reports whether Cancel has been called.
func (m *Monitor) Canceled() bool { return m != nil && m.canceled.Load() }

// Reason returns the first Cancel reason, or "".
func (m *Monitor) Reason() string {
	if m == nil {
		return ""
	}
	if p := m.reason.Load(); p != nil {
		return *p
	}
	return ""
}

// beat publishes the heartbeat and reports whether the run should stop.
func (m *Monitor) beat(cycle int64) bool {
	if m == nil {
		return false
	}
	m.cycle.Store(cycle)
	return m.canceled.Load()
}

// SetMonitor attaches a supervision monitor to the device; pass nil to
// detach. Call before RunKernel.
func (g *GPU) SetMonitor(m *Monitor) { g.mon = m }

// Monitor returns the attached monitor, or nil.
func (g *GPU) Monitor() *Monitor { return g.mon }

// CycleLimitError reports a kernel batch that hit its cycle cap — the
// deadlock/livelock backstop of RunKernel's maxCycles argument. Callers
// can detect it with errors.As and retry at a raised cap.
type CycleLimitError struct {
	// Kernel is the first kernel of the batch.
	Kernel string
	// MaxCycles is the cap the batch exceeded.
	MaxCycles int64
	// BlocksLaunched / BlocksTotal locate how far the launch got.
	BlocksLaunched, BlocksTotal int
}

func (e *CycleLimitError) Error() string {
	return fmt.Sprintf("gpu: kernel batch (%s...) exceeded %d cycles (%d/%d blocks launched)",
		e.Kernel, e.MaxCycles, e.BlocksLaunched, e.BlocksTotal)
}

// CancelError reports a run stopped by its Monitor (watchdog, timeout,
// or context cancellation) with the supervisor's reason.
type CancelError struct {
	// Kernel is the first kernel of the interrupted batch.
	Kernel string
	// Cycle is the simulation cycle the cancellation was observed at.
	Cycle int64
	// Reason is the supervisor's Cancel reason.
	Reason string
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("gpu: kernel %s canceled at cycle %d: %s", e.Kernel, e.Cycle, e.Reason)
}
