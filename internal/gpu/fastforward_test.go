package gpu

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/program"
)

// memLatencyProgram: dependent divergent global loads — long DRAM
// round-trips with nothing issuable in between, the idle-span shape the
// fast-forward path exists for.
func memLatencyProgram(n int) *program.Program {
	b := program.NewBuilder()
	b.Loop(int64(n), func(lb *program.Builder) {
		lb.LDG(4, 1, isa.MemTrait{Pattern: isa.PatRandom, Footprint: 1 << 26, Divergence: 4})
		lb.FMA(5, 4, 4, 5) // consumes the load: serializes on memory
	})
	return b.MustBuild()
}

// ffDiffRun runs the same kernel on cfg with fast-forward enabled and
// disabled, with every per-cycle side channel turned on (register-read
// trace, issue timeline), and returns both devices and errors.
func ffDiffRun(t *testing.T, cfg config.GPU, mk func() *Kernel, maxCycles int64) (fast, slow *GPU, fastErr, slowErr error) {
	t.Helper()
	run := func(c config.GPU) (*GPU, error) {
		g, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		g.TraceReads(true)
		g.TraceIssue(100)
		return g, g.RunKernel(mk(), maxCycles)
	}
	fast, fastErr = run(cfg)
	slow, slowErr = run(cfg.WithNoFastForward())
	return fast, slow, fastErr, slowErr
}

// TestFastForwardByteIdentity: the tentpole invariant. On a memory-bound
// kernel under every warp scheduler, the complete statistics object —
// cycles, CPI stacks, occupancy, bank counters, read trace, issue
// timeline — must be deeply identical with fast-forward on and off, and
// the fast path must actually have skipped cycles.
func TestFastForwardByteIdentity(t *testing.T) {
	base := config.VoltaV100()
	base.NumSMs = 2
	cfgs := []struct {
		name string
		cfg  config.GPU
	}{
		{"gto", base},
		{"lrr", base.WithScheduler(config.SchedLRR)},
		{"rba", base.WithScheduler(config.SchedRBA)},
	}
	p := memLatencyProgram(64)
	mk := func() *Kernel {
		return &Kernel{Name: "mem-idle", Blocks: 3, WarpsPerBlock: 4, RegsPerThread: 16,
			WarpProgram: func(b, w int) *program.Program { return p }}
	}
	for _, tc := range cfgs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			fast, slow, fe, se := ffDiffRun(t, tc.cfg, mk, 0)
			if fe != nil || se != nil {
				t.Fatalf("run errors: ff=%v off=%v", fe, se)
			}
			if fast.FastForwardedCycles() == 0 {
				t.Fatal("fast-forward never engaged on a memory-bound kernel")
			}
			if slow.FastForwardedCycles() != 0 {
				t.Fatal("NoFastForward device still skipped cycles")
			}
			if !reflect.DeepEqual(fast.Run(), slow.Run()) {
				t.Errorf("stats diverge:\n ff:  %+v\n off: %+v", fast.Run(), slow.Run())
			}
			if err := fast.Run().CheckCPI(); err != nil {
				t.Errorf("CPI stack broken after fast-forward: %v", err)
			}
		})
	}
}

// TestFastForwardConcurrentIdentity: heterogeneous concurrent kernels
// keep the thread-block scheduler's pending queue live across idle
// spans; skipped placement attempts must be no-ops (failed rounds leave
// no trace) for the runs to match.
func TestFastForwardConcurrentIdentity(t *testing.T) {
	big := memLatencyProgram(48)
	small := memLatencyProgram(12)
	mks := func() []*Kernel {
		return []*Kernel{
			{Name: "big", Blocks: 4, WarpsPerBlock: 24, RegsPerThread: 16,
				WarpProgram: func(b, w int) *program.Program { return big }},
			{Name: "small", Blocks: 6, WarpsPerBlock: 8, RegsPerThread: 16,
				WarpProgram: func(b, w int) *program.Program { return small }},
		}
	}
	run := func(c config.GPU) *GPU {
		g, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.RunConcurrent(mks(), 0); err != nil {
			t.Fatal(err)
		}
		return g
	}
	fast := run(tinyCfg())
	slow := run(tinyCfg().WithNoFastForward())
	if fast.FastForwardedCycles() == 0 {
		t.Fatal("fast-forward never engaged")
	}
	if !reflect.DeepEqual(fast.Run(), slow.Run()) {
		t.Errorf("concurrent stats diverge:\n ff:  %+v\n off: %+v", fast.Run(), slow.Run())
	}
}

// TestFastForwardMonitorHeartbeat: skips are capped at heartbeat
// boundaries, so a monitored run must publish the same heartbeat
// trajectory endpoint and identical stats whether or not the loop
// fast-forwards across multiple monitorPeriod boundaries.
func TestFastForwardMonitorHeartbeat(t *testing.T) {
	p := memLatencyProgram(256)
	mk := func() *Kernel {
		return &Kernel{Name: "beat-ff", Blocks: 1, WarpsPerBlock: 2, RegsPerThread: 8,
			WarpProgram: func(b, w int) *program.Program { return p }}
	}
	run := func(c config.GPU) (*GPU, *Monitor) {
		g, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		mon := new(Monitor)
		g.SetMonitor(mon)
		if err := g.RunKernel(mk(), 0); err != nil {
			t.Fatal(err)
		}
		return g, mon
	}
	fast, fmon := run(tinyCfg())
	slow, smon := run(tinyCfg().WithNoFastForward())
	if fast.Run().Cycles <= 2*monitorPeriod {
		t.Fatalf("run too short (%d cycles) to cross heartbeat boundaries", fast.Run().Cycles)
	}
	if fast.FastForwardedCycles() == 0 {
		t.Fatal("fast-forward never engaged")
	}
	if fmon.Cycle() == 0 {
		t.Error("heartbeat never advanced under fast-forward")
	}
	if fmon.Cycle() != smon.Cycle() {
		t.Errorf("final heartbeat %d (ff) != %d (off)", fmon.Cycle(), smon.Cycle())
	}
	if !reflect.DeepEqual(fast.Run(), slow.Run()) {
		t.Errorf("stats diverge across heartbeat boundaries")
	}
}

// TestFastForwardDeadlineIdentity: a skip must never jump past the cycle
// limit — CycleLimitError fires at the identical cycle, with identical
// launch progress, either way.
func TestFastForwardDeadlineIdentity(t *testing.T) {
	p := memLatencyProgram(1 << 12)
	mk := func() *Kernel {
		return &Kernel{Name: "deadline", Blocks: 2, WarpsPerBlock: 4, RegsPerThread: 8,
			WarpProgram: func(b, w int) *program.Program { return p }}
	}
	const limit = 3000
	fast, slow, fe, se := ffDiffRun(t, tinyCfg(), mk, limit)
	var fcle, scle *CycleLimitError
	if !errors.As(fe, &fcle) || !errors.As(se, &scle) {
		t.Fatalf("expected CycleLimitError from both runs, got ff=%v off=%v", fe, se)
	}
	if fast.FastForwardedCycles() == 0 {
		t.Fatal("fast-forward never engaged before the deadline")
	}
	if !reflect.DeepEqual(fcle, scle) {
		t.Errorf("CycleLimitError diverges:\n ff:  %+v\n off: %+v", fcle, scle)
	}
	if fast.Run().Cycles != slow.Run().Cycles || fast.Run().Cycles != limit {
		t.Errorf("cycles at deadline: ff=%d off=%d want %d",
			fast.Run().Cycles, slow.Run().Cycles, limit)
	}
	if !reflect.DeepEqual(fast.Run(), slow.Run()) {
		t.Errorf("stats diverge at the deadline")
	}
}

// TestFastForwardArmedCancelIdentity: a cancellation armed before launch
// is observed at the first heartbeat boundary — the skip cap guarantees
// the loop stops at the same cycle the ticked loop would.
func TestFastForwardArmedCancelIdentity(t *testing.T) {
	p := memLatencyProgram(1 << 12)
	mk := func() *Kernel {
		return &Kernel{Name: "armed", Blocks: 1, WarpsPerBlock: 2, RegsPerThread: 8,
			WarpProgram: func(b, w int) *program.Program { return p }}
	}
	run := func(c config.GPU) *CancelError {
		g, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		mon := new(Monitor)
		mon.Cancel("armed before launch")
		g.SetMonitor(mon)
		err = g.RunKernel(mk(), 0)
		var ce *CancelError
		if !errors.As(err, &ce) {
			t.Fatalf("expected CancelError, got %v", err)
		}
		return ce
	}
	fce := run(tinyCfg())
	sce := run(tinyCfg().WithNoFastForward())
	if fce.Cycle != monitorPeriod {
		t.Errorf("armed cancel observed at cycle %d, want first boundary %d", fce.Cycle, monitorPeriod)
	}
	if !reflect.DeepEqual(fce, sce) {
		t.Errorf("CancelError diverges:\n ff:  %+v\n off: %+v", fce, sce)
	}
}

// TestOccupancyAveragesAllSMs: occupancy is sampled on every SM, not
// just SM 0. One 8-warp block on a 4-SM device occupies a single SM, so
// the device-wide mean must be at most 8/4 = 2 — the old SM-0-only
// sampling reported ~8.
func TestOccupancyAveragesAllSMs(t *testing.T) {
	cfg := config.VoltaV100()
	cfg.NumSMs = 4
	p := fmaProgram(256, 2)
	k := &Kernel{Name: "occ", Blocks: 1, WarpsPerBlock: 8, RegsPerThread: 8,
		WarpProgram: func(b, w int) *program.Program { return p }}
	g := mustRun(t, cfg, k)
	r := g.Run()
	if r.OccupancySamples != r.Cycles*int64(cfg.NumSMs) {
		t.Fatalf("OccupancySamples = %d, want cycles x SMs = %d",
			r.OccupancySamples, r.Cycles*int64(cfg.NumSMs))
	}
	m := r.MeanOccupancy()
	if m <= 0 || m > 2.01 {
		t.Errorf("MeanOccupancy = %.2f, want (0, 2] for 8 warps on 1 of 4 SMs", m)
	}
}

// TestConcurrentNoHeadOfLineBlocking: a concurrent kernel whose next
// block fits nowhere must not starve co-scheduled kernels with smaller
// blocks. Kernel big's second 48-warp block can never place while its
// first is resident (12 of 16 slots per sub-core); all 8 of small's
// 8-warp blocks must still launch around it.
func TestConcurrentNoHeadOfLineBlocking(t *testing.T) {
	// big must be long-running but memory-bound: under GTO the older
	// resident warps get issue priority, and compute-bound ones would
	// starve the small kernel's warps at issue (a scheduler property,
	// not a placement one). Memory stalls leave issue slots for small's
	// warps to finish and free their blocks.
	longP := memLatencyProgram(1 << 14)
	shortP := fmaProgram(64, 2)
	big := &Kernel{Name: "big", Blocks: 2, WarpsPerBlock: 48, RegsPerThread: 8,
		WarpProgram: func(b, w int) *program.Program { return longP }}
	small := &Kernel{Name: "small", Blocks: 8, WarpsPerBlock: 8, RegsPerThread: 8,
		WarpProgram: func(b, w int) *program.Program { return shortP }}
	g, err := New(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	err = g.RunConcurrent([]*Kernel{big, small}, 200_000)
	var cle *CycleLimitError
	if !errors.As(err, &cle) {
		t.Fatalf("expected CycleLimitError (big never finishes), got %v", err)
	}
	if cle.BlocksTotal != 10 {
		t.Fatalf("BlocksTotal = %d, want 10", cle.BlocksTotal)
	}
	// big block 0 + all 8 small blocks; big block 1 stays unplaceable.
	if cle.BlocksLaunched < 9 {
		t.Errorf("BlocksLaunched = %d, want >= 9: small kernel starved behind big's unplaceable block",
			cle.BlocksLaunched)
	}
}

// BenchmarkFastForward measures the wall-clock effect of the idle-cycle
// fast-forward on the regime it targets: a low-occupancy latency-bound
// kernel (dependent divergent loads, 2 blocks x 4 warps on 2 SMs) whose
// device spends >90% of its cycles with nothing issuable anywhere. The
// "off" sub-benchmark ticks every cycle; "on" skips quiescent spans.
// Both simulate the identical cycle count (TestFastForwardByteIdentity
// proves the statistics bit-equal) — only host time differs.
func BenchmarkFastForward(b *testing.B) {
	base := config.VoltaV100()
	base.NumSMs = 2
	p := memLatencyProgram(4096)
	mk := func() *Kernel {
		return &Kernel{Name: "mem-idle", Blocks: 2, WarpsPerBlock: 4, RegsPerThread: 16,
			WarpProgram: func(blk, w int) *program.Program { return p }}
	}
	for _, bc := range []struct {
		name string
		cfg  config.GPU
	}{{"on", base}, {"off", base.WithNoFastForward()}} {
		b.Run(bc.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				g, err := New(bc.cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := g.RunKernel(mk(), 0); err != nil {
					b.Fatal(err)
				}
				cycles = g.Run().Cycles
			}
			b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}
