package gpu

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/snapshot"
)

func TestSnapshotCoverage(t *testing.T) {
	cases := []struct {
		typ      reflect.Type
		manifest map[string]string
	}{
		{reflect.TypeOf(GPU{}), gpuManifest},
		{reflect.TypeOf(launch{}), launchManifest},
		{reflect.TypeOf(devMetrics{}), devMetricsManifest},
	}
	for _, c := range cases {
		if err := snapshot.Coverage(c.typ, c.manifest); err != nil {
			t.Errorf("%s: %v", c.typ.Name(), err)
		}
	}
}

// snapApp is a three-kernel application exercising every state family a
// snapshot must carry: global/shared/const memory in flight, barriers,
// FMA chains, multiple blocks per SM.
func snapApp() []*Kernel {
	memB := program.NewBuilder()
	memB.Loop(48, func(lb *program.Builder) {
		lb.LDG(4, 1, isa.MemTrait{Pattern: isa.PatCoalesced, Footprint: 1 << 20, StrideBytes: 4})
		lb.FMA(5, 4, 4, 5)
		lb.LDS(6, 5, isa.MemTrait{Footprint: 1 << 12, StrideBytes: 4})
		lb.FMA(7, 6, 6, 7)
	})
	memP := memB.MustBuild()
	barP := fmaThenBarProgram(64, 2)
	fmaP := fmaProgram(128, 2)
	return []*Kernel{
		{Name: "mem", Blocks: 4, WarpsPerBlock: 8, RegsPerThread: 16,
			WarpProgram: func(b, w int) *program.Program { return memP }},
		{Name: "bar", Blocks: 2, WarpsPerBlock: 16, RegsPerThread: 16, SharedMemPerBlock: 4096,
			WarpProgram: func(b, w int) *program.Program { return barP }},
		{Name: "fma", Blocks: 3, WarpsPerBlock: 8, RegsPerThread: 8,
			WarpProgram: func(b, w int) *program.Program { return fmaP }},
	}
}

// runJSON canonicalizes a run's statistics for byte-equality checks.
func runJSON(t *testing.T, g *GPU) []byte {
	t.Helper()
	j, err := json.Marshal(g.Run())
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// captureAt arms a snapshot hook that serializes the device at the first
// heartbeat at or past the target cycle.
func captureAt(g *GPU, target int64) *[]byte {
	var snap []byte
	g.SetSnapshotHook(func(g *GPU) error {
		if snap != nil || g.Cycle() < target {
			return nil
		}
		var buf bytes.Buffer
		if err := g.WriteSnapshot(&buf); err != nil {
			return err
		}
		snap = buf.Bytes()
		return nil
	})
	return &snap
}

// resumeInert proves restore-then-run is byte-identical to the
// uninterrupted run for the given configuration and snapshot cycle.
func resumeInert(t *testing.T, cfg config.GPU, snapCycle int64) {
	t.Helper()
	ks := snapApp()

	golden, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.RunKernels(ks, 0); err != nil {
		t.Fatal(err)
	}
	want := runJSON(t, golden)

	interrupted, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := captureAt(interrupted, snapCycle)
	if err := interrupted.RunKernels(ks, 0); err != nil {
		t.Fatal(err)
	}
	if *snap == nil {
		t.Fatalf("no heartbeat at or past cycle %d; app finished at %d", snapCycle, interrupted.Cycle())
	}
	// The interrupted run, left to finish, must itself be unperturbed by
	// the snapshot hook.
	if got := runJSON(t, interrupted); !bytes.Equal(got, want) {
		t.Fatal("taking a snapshot perturbed the run")
	}

	resumed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(bytes.NewReader(*snap), ks); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if vs := resumed.AuditCheck(); len(vs) != 0 {
		t.Fatalf("audit violations on the restored device: %v", vs)
	}
	if err := resumed.ContinueKernels(ks, 0); err != nil {
		t.Fatalf("ContinueKernels: %v", err)
	}
	if got := runJSON(t, resumed); !bytes.Equal(got, want) {
		t.Fatalf("resumed run diverged from uninterrupted run\nwant %s\ngot  %s", want, got)
	}
}

func TestSnapshotResumeInert(t *testing.T) {
	base := config.VoltaV100()
	base.NumSMs = 2
	rba := base.WithScheduler(config.SchedRBA).WithBankStealing()
	for _, tc := range []struct {
		name string
		cfg  config.GPU
	}{
		{"gto", base},
		{"rba-stealing", rba},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, at := range []int64{1, 5_000} {
				resumeInert(t, tc.cfg, at)
			}
		})
	}
}

func TestSnapshotResumeConcurrentBatch(t *testing.T) {
	cfg := config.VoltaV100()
	cfg.NumSMs = 2
	ks := snapApp()

	golden, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.RunConcurrent(ks, 0); err != nil {
		t.Fatal(err)
	}
	want := runJSON(t, golden)

	interrupted, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := captureAt(interrupted, 1)
	if err := interrupted.RunConcurrent(ks, 0); err != nil {
		t.Fatal(err)
	}
	if *snap == nil {
		t.Fatal("no snapshot captured")
	}

	resumed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(bytes.NewReader(*snap), ks); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if err := resumed.ContinueKernels(ks, 0); err != nil {
		t.Fatalf("ContinueKernels: %v", err)
	}
	if got := runJSON(t, resumed); !bytes.Equal(got, want) {
		t.Fatal("resumed concurrent batch diverged from uninterrupted run")
	}
}

func TestSnapshotRejectsConfigMismatch(t *testing.T) {
	cfg := config.VoltaV100()
	cfg.NumSMs = 2
	ks := snapApp()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := captureAt(g, 1)
	if err := g.RunKernels(ks, 0); err != nil {
		t.Fatal(err)
	}

	other := cfg.WithSMs(4)
	h, err := New(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Restore(bytes.NewReader(*snap), ks); err == nil {
		t.Fatal("restore into a different configuration succeeded")
	}
}

func TestSnapshotRejectsWorkloadMismatch(t *testing.T) {
	cfg := config.VoltaV100()
	cfg.NumSMs = 2
	ks := snapApp()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := captureAt(g, 1)
	if err := g.RunKernels(ks, 0); err != nil {
		t.Fatal(err)
	}

	// Same config, different instruction streams: cursor rebinding must
	// detect the drift rather than resume into the wrong program.
	wrong := snapApp()
	p := fmaProgram(16, 1)
	wrong[0].WarpProgram = func(b, w int) *program.Program { return p }
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Restore(bytes.NewReader(*snap), wrong); err == nil {
		t.Fatal("restore against a different workload succeeded")
	}
}

func TestAuditedRunIsCleanAndUnperturbed(t *testing.T) {
	cfg := config.VoltaV100()
	cfg.NumSMs = 2
	ks := snapApp()

	plain, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.RunKernels(ks, 0); err != nil {
		t.Fatal(err)
	}

	audited, err := New(cfg.WithAudit(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := audited.RunKernels(ks, 0); err != nil {
		t.Fatalf("audited run faulted: %v", err)
	}
	if !bytes.Equal(runJSON(t, plain), runJSON(t, audited)) {
		t.Fatal("arming the auditor changed the simulation results")
	}
}

func TestAuditCatchesArmedCorruption(t *testing.T) {
	for _, tc := range []struct{ kind, rule string }{
		{"scoreboard", "scoreboard"},
		{"lease", "lease"},
		{"mshr", "mshr"},
	} {
		t.Run(tc.kind, func(t *testing.T) {
			cfg := config.VoltaV100()
			cfg.NumSMs = 1
			g, err := New(cfg.WithAudit(1))
			if err != nil {
				t.Fatal(err)
			}
			g.ArmCorruptionForTest(tc.kind)
			err = g.RunKernels(snapApp(), 0)
			var ae *AuditError
			if !errors.As(err, &ae) {
				t.Fatalf("corrupted run returned %v, want *AuditError", err)
			}
			found := false
			for _, v := range ae.Violations {
				if v.Rule == tc.rule {
					found = true
				}
			}
			if !found {
				t.Fatalf("no %q violation in %v", tc.rule, ae.Violations)
			}
			if ae.Cycle == 0 || ae.Error() == "" {
				t.Fatalf("fault lost context: %v", ae)
			}
		})
	}
}

// BenchmarkAuditOverhead quantifies the auditor's cost: disabled it is
// one comparison per heartbeat; enabled it re-derives every conservation
// law each audit period. docs/ROBUSTNESS.md records the measured ratio.
func BenchmarkAuditOverhead(b *testing.B) {
	for _, tc := range []struct {
		name  string
		every int64
	}{
		{"disabled", 0},
		{"enabled-4k", 4096},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := config.VoltaV100()
			cfg.NumSMs = 1
			cfg.AuditEvery = tc.every
			p := fmaProgram(256, 2)
			for i := 0; i < b.N; i++ {
				g, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				k := &Kernel{Name: "bench", Blocks: 4, WarpsPerBlock: 16, RegsPerThread: 8,
					WarpProgram: func(bk, w int) *program.Program { return p }}
				if err := g.RunKernel(k, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
