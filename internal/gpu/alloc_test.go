package gpu

import (
	"errors"
	"testing"

	"repro/internal/config"
	"repro/internal/program"
)

// The zero-alloc gate: the cycle loop must not allocate in steady
// state. One stray allocation per tick dominates paper-scale sweep wall
// time, and the simlint hotpath analyzer can only see allocation sites
// within hotChainDepth calls of a hot root — this is the dynamic
// backstop that covers the whole device loop, heartbeat audits
// included.
//
// Measurement: two identical runs capped at different cycle counts.
// Construction and launch allocate a fixed amount, so any difference
// between the runs is allocation attributable to the extra simulated
// cycles alone. The comparison tolerates allocGateSlack one-off
// allocations (a GC cycle landing inside the longer run shows up as a
// count or two of runtime-internal mallocs); a genuine per-cycle
// allocation measures as the full 60k-cycle difference.

// steadyAllocs returns the average allocation count of a full capped
// run: construction, launch, and maxCycles simulated cycles of a
// long dependent-FMA kernel that cannot finish under the cap.
func steadyAllocs(tb testing.TB, cfg config.GPU, p *program.Program, maxCycles int64) float64 {
	tb.Helper()
	return testing.AllocsPerRun(3, func() {
		g, err := New(cfg)
		if err != nil {
			tb.Fatal(err)
		}
		k := &Kernel{Name: "steady", Blocks: 2, WarpsPerBlock: 8, RegsPerThread: 16,
			WarpProgram: func(b, w int) *program.Program { return p }}
		err = g.RunKernel(k, maxCycles)
		var cle *CycleLimitError
		if !errors.As(err, &cle) {
			tb.Fatalf("run should hit the %d-cycle cap, got %v", maxCycles, err)
		}
	})
}

// allocGateConfigs are the scheduler variants the gate covers: the GTO
// baseline and RBA, whose per-cycle bank-aware scoring is the likeliest
// place for a scratch allocation to creep in.
func allocGateConfigs() []struct {
	name string
	cfg  config.GPU
} {
	return []struct {
		name string
		cfg  config.GPU
	}{
		{"gto", tinyCfg()},
		{"rba", tinyCfg().WithScheduler(config.SchedRBA)},
	}
}

const (
	allocGateShort = 20_000
	allocGateLong  = 80_000
	allocGateSlack = 2
)

// TestCycleLoopZeroAlloc is the tier-1 half of the gate, on by default
// in go test ./... — 60k extra cycles (heartbeat audits included) must
// add zero allocations.
func TestCycleLoopZeroAlloc(t *testing.T) {
	p := fmaProgram(1<<20, 1)
	for _, tc := range allocGateConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			aShort := steadyAllocs(t, tc.cfg, p, allocGateShort)
			aLong := steadyAllocs(t, tc.cfg, p, allocGateLong)
			if aLong > aShort+allocGateSlack {
				t.Errorf("%s: %.1f allocs at %d cycles vs %.1f at %d — the cycle loop allocates in steady state (%.5f allocs/cycle)",
					tc.name, aLong, int64(allocGateLong), aShort, int64(allocGateShort),
					(aLong-aShort)/float64(allocGateLong-allocGateShort))
			}
		})
	}
}

// BenchmarkCycleAllocs is the CI gate form: it asserts the same
// zero-allocs/op steady-state property, reports allocs/cycle as a
// metric, and then times full capped runs for the perf baselines.
func BenchmarkCycleAllocs(b *testing.B) {
	p := fmaProgram(1<<20, 1)
	for _, bc := range allocGateConfigs() {
		b.Run(bc.name, func(b *testing.B) {
			aShort := steadyAllocs(b, bc.cfg, p, allocGateShort)
			aLong := steadyAllocs(b, bc.cfg, p, allocGateLong)
			if aLong > aShort+allocGateSlack {
				b.Fatalf("%s: steady-state cycle loop allocates (%.1f allocs at %d cycles vs %.1f at %d)",
					bc.name, aLong, int64(allocGateLong), aShort, int64(allocGateShort))
			}
			b.ReportMetric((aLong-aShort)/float64(allocGateLong-allocGateShort), "allocs/cycle")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := New(bc.cfg)
				if err != nil {
					b.Fatal(err)
				}
				k := &Kernel{Name: "steady", Blocks: 2, WarpsPerBlock: 8, RegsPerThread: 16,
					WarpProgram: func(blk, w int) *program.Program { return p }}
				var cle *CycleLimitError
				if err := g.RunKernel(k, allocGateLong); !errors.As(err, &cle) {
					b.Fatal(err)
				}
			}
		})
	}
}
