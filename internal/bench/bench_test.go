package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func testApp(name string, iters int) workloads.App {
	p := workloads.Profile{
		Name: name, Blocks: 2, WarpsPerBlock: 4, RegsPerThread: 8,
		Iters: iters, ILP: 2, FMAs: 4,
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return workloads.App{Name: name, Suite: "test", Kernels: []*gpu.Kernel{p.Kernel()}}
}

func testCfg(name string) config.GPU {
	g := config.VoltaV100()
	g.NumSMs = 1
	g.Name = name
	return g
}

func sweep(t *testing.T) (*Baseline, []workloads.App, []string) {
	t.Helper()
	cfgs := []config.GPU{testCfg("cfgA"), testCfg("cfgB")}
	names := []string{"cfgA", "cfgB"}
	apps := []workloads.App{testApp("app0", 300), testApp("app1", 500)}
	res, err := harness.Run(context.Background(), cfgs, names, apps, harness.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatal("sweep faulted")
	}
	return FromResult(res, apps, names, "2026-01-01T00:00:00Z"), apps, names
}

// TestRoundTrip: Write then Read reproduces the baseline, and the schema
// tag is enforced.
func TestRoundTrip(t *testing.T) {
	b, _, _ := sweep(t)
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(b.Cells) || got.Created != b.Created {
		t.Fatalf("round trip lost data: %d cells vs %d", len(got.Cells), len(b.Cells))
	}
	for i := range got.Cells {
		// Cells hold a map; compare key fields directly.
		if got.Cells[i].App != b.Cells[i].App || got.Cells[i].Config != b.Cells[i].Config ||
			got.Cells[i].IPC != b.Cells[i].IPC || got.Cells[i].Cycles != b.Cells[i].Cycles ||
			len(got.Cells[i].CPIShares) != len(b.Cells[i].CPIShares) {
			t.Fatalf("cell %d differs: %+v vs %+v", i, got.Cells[i], b.Cells[i])
		}
	}
	if _, err := Read(strings.NewReader(`{"schema":"bogus/9","cells":[]}`)); err == nil {
		t.Fatal("bogus schema accepted")
	}
}

// TestBaselineDeterminism: two identical sweeps yield byte-identical
// baseline files after Strip (which removes only Created and the
// wall-clock throughput — the documented nondeterministic fields).
func TestBaselineDeterminism(t *testing.T) {
	encode := func() string {
		b, _, _ := sweep(t)
		b.Strip()
		var buf bytes.Buffer
		if err := b.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	b1, b2 := encode(), encode()
	if b1 != b2 {
		t.Errorf("baselines differ:\n--- run1 ---\n%s\n--- run2 ---\n%s", b1, b2)
	}
	if !strings.Contains(b1, `"cpi_shares"`) {
		t.Error("baseline lost the CPI shares")
	}
}

// TestCellShape: each cell carries a full CPI-share map that sums to 1.
func TestCellShape(t *testing.T) {
	b, apps, names := sweep(t)
	if len(b.Cells) != len(apps)*len(names) {
		t.Fatalf("got %d cells, want %d", len(b.Cells), len(apps)*len(names))
	}
	for _, c := range b.Cells {
		if c.Cycles <= 0 || c.IPC <= 0 {
			t.Errorf("cell %s/%s: empty measurements: %+v", c.App, c.Config, c)
		}
		if len(c.CPIShares) != int(stats.NumCPIComponents) {
			t.Errorf("cell %s/%s: %d CPI shares, want %d", c.App, c.Config, len(c.CPIShares), stats.NumCPIComponents)
		}
		var sum float64
		for _, s := range c.CPIShares {
			sum += s
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("cell %s/%s: CPI shares sum to %v", c.App, c.Config, sum)
		}
	}
}

// TestCompareRegression: an injected >= 2% IPC drop gates; a smaller one
// does not; improved IPC never gates.
func TestCompareRegression(t *testing.T) {
	mk := func(ipcs map[string]float64) *Baseline {
		b := New("")
		for app, ipc := range ipcs {
			b.Cells = append(b.Cells, Cell{App: app, Config: "gto", Cycles: 100, Instructions: 100, IPC: ipc,
				CPIShares: map[string]float64{"issue": 1}})
		}
		return b
	}
	old := mk(map[string]float64{"a": 1.0, "b": 2.0})

	d := Compare(old, mk(map[string]float64{"a": 0.95, "b": 1.90})) // 5% drop everywhere
	if !d.Regression(0.02) {
		t.Errorf("5%% drop not gated: geomean %v", d.Geomean)
	}
	d = Compare(old, mk(map[string]float64{"a": 0.995, "b": 1.99})) // 0.5% drop
	if d.Regression(0.02) {
		t.Errorf("0.5%% drop gated: geomean %v", d.Geomean)
	}
	d = Compare(old, mk(map[string]float64{"a": 1.1, "b": 2.2}))
	if d.Regression(0.02) {
		t.Errorf("speedup gated: geomean %v", d.Geomean)
	}
	// No matched cells is never a regression.
	d = Compare(old, mk(map[string]float64{"zzz": 1.0}))
	if d.Regression(0.02) {
		t.Error("disjoint baselines gated")
	}
	if len(d.OnlyOld) != 2 || len(d.OnlyNew) != 1 {
		t.Errorf("coverage drift: onlyOld=%v onlyNew=%v", d.OnlyOld, d.OnlyNew)
	}
}

// TestCompareIgnoresWallClock: wall-clock throughput differences never
// affect the diff.
func TestCompareIgnoresWallClock(t *testing.T) {
	b1 := New("")
	b1.Cells = append(b1.Cells, Cell{App: "a", Config: "gto", IPC: 1, WallCyclesPerSec: 1e6})
	b2 := New("")
	b2.Cells = append(b2.Cells, Cell{App: "a", Config: "gto", IPC: 1, WallCyclesPerSec: 5})
	d := Compare(b1, b2)
	if d.Geomean != 1 || d.Regression(0.0) {
		t.Errorf("wall-clock leaked into comparison: %+v", d)
	}
}

// TestRender smoke-tests the human-readable report.
func TestRender(t *testing.T) {
	old := New("")
	old.Cells = append(old.Cells, Cell{App: "a", Config: "gto", IPC: 1,
		CPIShares: map[string]float64{"issue": 0.8, "memory": 0.1, "idle": 0.1}})
	cur := New("")
	cur.Cells = append(cur.Cells, Cell{App: "a", Config: "gto", IPC: 0.9,
		CPIShares: map[string]float64{"issue": 0.7, "memory": 0.3, "idle": 0}})
	d := Compare(old, cur)
	var buf bytes.Buffer
	d.Render(&buf, 0.02)
	out := buf.String()
	if !strings.Contains(out, "geomean") || !strings.Contains(out, "!") {
		t.Errorf("render missing verdict or regression marker:\n%s", out)
	}
	if !strings.Contains(out, "cpi[memory] drift") {
		t.Errorf("render missing CPI drift note:\n%s", out)
	}
}

// TestWriteReadFile covers the file round trip.
func TestWriteReadFile(t *testing.T) {
	b, _, _ := sweep(t)
	path := t.TempDir() + "/BENCH_test.json"
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(b.Cells) {
		t.Fatalf("file round trip lost cells: %d vs %d", len(got.Cells), len(b.Cells))
	}
	if _, err := ReadFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}
