// Package bench defines the cross-run performance baseline format
// (BENCH_<date>.json) and its regression comparator. A baseline records
// each sweep cell's deterministic results — cycles, instructions, IPC,
// CPI-stack shares — plus informational wall-clock throughput, so CI
// can diff a fresh sweep against a committed baseline and fail on a
// geomean IPC regression instead of a human rereading result tables.
//
// Determinism contract: everything in a baseline except the Created
// timestamp and the wall-clock throughput fields is bit-deterministic.
// Two identical runs produce byte-identical files modulo those fields
// (Strip removes them for comparison), and Compare never reads them.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/harness"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Schema identifies the baseline format version.
const Schema = "subcoresim-bench/1"

// Cell is one (application, configuration) measurement.
type Cell struct {
	App    string `json:"app"`
	Config string `json:"config"`
	// Cycles, Instructions, IPC are deterministic simulation outputs.
	Cycles       int64   `json:"cycles"`
	Instructions int64   `json:"instructions"`
	IPC          float64 `json:"ipc"`
	// CPIShares maps each CPI-stack component to its share of total
	// attributed cycles (deterministic; keys sort in the JSON encoding).
	CPIShares map[string]float64 `json:"cpi_shares"`
	// WallCyclesPerSec is simulated cycles per wall-clock second — a
	// timestamp-derived, machine-dependent field. Informational only:
	// excluded from Compare and from Strip'd determinism checks. Zero
	// when the cell was restored from a checkpoint.
	WallCyclesPerSec float64 `json:"wall_cycles_per_sec,omitempty"`
}

// Baseline is one recorded sweep.
type Baseline struct {
	Schema string `json:"schema"`
	// Created is the RFC3339 write timestamp (timestamp field, excluded
	// from comparison).
	Created string `json:"created,omitempty"`
	Cells   []Cell `json:"cells"`
}

// New returns an empty baseline stamped with created (RFC3339, may be
// empty for deterministic output).
func New(created string) *Baseline {
	return &Baseline{Schema: Schema, Created: created}
}

// AddRun appends one cell from a completed run. wallSeconds is the
// cell's wall-clock simulation time (0 = unknown, e.g. resumed cells).
func (b *Baseline) AddRun(app, cfgName string, r *stats.Run, wallSeconds float64) {
	c := Cell{
		App:          app,
		Config:       cfgName,
		Cycles:       r.Cycles,
		Instructions: r.Instructions,
		IPC:          r.IPC(),
		CPIShares:    map[string]float64{},
	}
	st := r.CPIStack()
	shares := st.Shares()
	for i, s := range shares {
		c.CPIShares[stats.CPIComponent(i).String()] = s
	}
	if wallSeconds > 0 {
		c.WallCyclesPerSec = float64(r.Cycles) / wallSeconds
	}
	b.Cells = append(b.Cells, c)
}

// FromResult builds a baseline from a sweep result, skipping faulted
// cells. apps and names index the result matrix exactly as they were
// passed to harness.Run.
func FromResult(res *harness.Result, apps []workloads.App, names []string, created string) *Baseline {
	b := New(created)
	for i := range apps {
		for j := range names {
			r := res.Runs[i][j]
			if r == nil {
				continue
			}
			var wall float64
			if res.Wall != nil {
				wall = res.Wall[i][j]
			}
			b.AddRun(apps[i].Name, names[j], r, wall)
		}
	}
	return b
}

// sortCells orders cells by (app, config) so encoding is deterministic
// regardless of sweep worker scheduling.
func (b *Baseline) sortCells() {
	sort.Slice(b.Cells, func(i, j int) bool {
		if b.Cells[i].App != b.Cells[j].App {
			return b.Cells[i].App < b.Cells[j].App
		}
		return b.Cells[i].Config < b.Cells[j].Config
	})
}

// Strip zeroes the timestamp-derived fields (Created, per-cell
// wall-clock throughput), leaving only the deterministic payload —
// what the byte-identity tests compare.
func (b *Baseline) Strip() {
	b.Created = ""
	for i := range b.Cells {
		b.Cells[i].WallCyclesPerSec = 0
	}
}

// Write encodes the baseline as indented JSON, cells sorted.
func (b *Baseline) Write(w io.Writer) error {
	b.sortCells()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// WriteFile writes the baseline to path.
func (b *Baseline) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	werr := b.Write(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("bench: encode %s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("bench: close %s: %w", path, cerr)
	}
	return nil
}

// Read decodes a baseline and validates its schema tag.
func Read(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("bench: decode: %w", err)
	}
	if b.Schema != Schema {
		return nil, fmt.Errorf("bench: unsupported schema %q (want %q)", b.Schema, Schema)
	}
	return &b, nil
}

// ReadFile reads a baseline from path.
func ReadFile(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	defer f.Close()
	b, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return b, nil
}

// CellDelta is one matched cell's old-vs-new comparison.
type CellDelta struct {
	App, Config string
	OldIPC      float64
	NewIPC      float64
	// Ratio is NewIPC / OldIPC (> 1 = speedup, < 1 = regression).
	Ratio float64
	// ShareDrift is the largest absolute CPI-share change across
	// components; DriftComponent names it.
	ShareDrift     float64
	DriftComponent string
}

// Diff is the comparison of two baselines over their matched cells.
type Diff struct {
	// Geomean is the geometric mean of the per-cell IPC ratios
	// (new/old) — the regression gate's single number.
	Geomean float64
	Cells   []CellDelta
	// OnlyOld/OnlyNew list cell keys present in one baseline only
	// (coverage drift, reported but never gating).
	OnlyOld, OnlyNew []string
}

func cellKey(c *Cell) string { return c.App + " on " + c.Config }

// Compare matches cells by (app, config) and computes per-cell IPC
// ratios, CPI-share drifts, and the geomean. Wall-clock fields are
// never consulted.
func Compare(old, cur *Baseline) *Diff {
	d := &Diff{}
	oldBy := make(map[string]*Cell, len(old.Cells))
	for i := range old.Cells {
		oldBy[cellKey(&old.Cells[i])] = &old.Cells[i]
	}
	seen := make(map[string]bool, len(cur.Cells))
	cur.sortCells()
	var ratios []float64
	for i := range cur.Cells {
		nc := &cur.Cells[i]
		key := cellKey(nc)
		seen[key] = true
		oc, ok := oldBy[key]
		if !ok {
			d.OnlyNew = append(d.OnlyNew, key)
			continue
		}
		cd := CellDelta{App: nc.App, Config: nc.Config, OldIPC: oc.IPC, NewIPC: nc.IPC}
		if oc.IPC > 0 {
			cd.Ratio = nc.IPC / oc.IPC
			ratios = append(ratios, cd.Ratio)
		}
		for _, comp := range sortedKeys(oc.CPIShares, nc.CPIShares) {
			drift := math.Abs(nc.CPIShares[comp] - oc.CPIShares[comp])
			if drift > cd.ShareDrift {
				cd.ShareDrift, cd.DriftComponent = drift, comp
			}
		}
		d.Cells = append(d.Cells, cd)
	}
	// Deterministic order for OnlyOld regardless of map iteration.
	for i := range old.Cells {
		if key := cellKey(&old.Cells[i]); !seen[key] {
			d.OnlyOld = append(d.OnlyOld, key)
		}
	}
	sort.Strings(d.OnlyOld)
	sort.Strings(d.OnlyNew)
	d.Geomean = stats.GeoMean(ratios)
	return d
}

// sortedKeys returns the union of both maps' keys, sorted.
func sortedKeys(a, b map[string]float64) []string {
	set := make(map[string]bool, len(a)+len(b))
	for k := range a {
		set[k] = true
	}
	for k := range b {
		set[k] = true
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Regression reports whether the diff's geomean IPC ratio falls below
// 1 - threshold (e.g. threshold 0.02 gates a >= 2% geomean slowdown).
// No matched cells is never a regression.
func (d *Diff) Regression(threshold float64) bool {
	return len(d.Cells) > 0 && d.Geomean > 0 && d.Geomean < 1-threshold
}

// Render writes a human-readable comparison: the geomean verdict, the
// per-cell table, and coverage drift.
func (d *Diff) Render(w io.Writer, threshold float64) {
	if len(d.Cells) == 0 {
		fmt.Fprintln(w, "benchdiff: no matched cells")
	} else {
		fmt.Fprintf(w, "benchdiff: geomean IPC ratio %.4f over %d cells (gate: < %.4f fails)\n",
			d.Geomean, len(d.Cells), 1-threshold)
	}
	for _, c := range d.Cells {
		mark := " "
		if c.Ratio > 0 && c.Ratio < 1-threshold {
			mark = "!"
		}
		fmt.Fprintf(w, "%s %-12s %-14s ipc %8.4f -> %8.4f  (x%.4f)", mark, c.App, c.Config, c.OldIPC, c.NewIPC, c.Ratio)
		if c.ShareDrift > 0.01 {
			fmt.Fprintf(w, "  cpi[%s] drift %+.1f%%", c.DriftComponent, c.ShareDrift*100)
		}
		fmt.Fprintln(w)
	}
	for _, k := range d.OnlyOld {
		fmt.Fprintf(w, "  only in old baseline: %s\n", k)
	}
	for _, k := range d.OnlyNew {
		fmt.Fprintf(w, "  only in new baseline: %s\n", k)
	}
}
