package power

import "testing"

// TestFig13Calibration pins the model to the paper's synthesis results:
// 4 CUs per sub-core costs ~+27% area and ~+60% power over the 2-CU
// baseline; the RBA additions cost ~1% of each.
func TestFig13Calibration(t *testing.T) {
	area4, power4 := Relative(Design{CUs: 4, Banks: 2})
	if area4 < 1.20 || area4 > 1.34 {
		t.Errorf("4-CU area ratio = %.3f, want ~1.27", area4)
	}
	if power4 < 1.50 || power4 > 1.70 {
		t.Errorf("4-CU power ratio = %.3f, want ~1.60", power4)
	}
	areaR, powerR := Relative(Design{CUs: 2, Banks: 2, RBA: true})
	if areaR > 1.02 || areaR < 1.0 {
		t.Errorf("RBA area ratio = %.3f, want ~1.01", areaR)
	}
	if powerR > 1.02 || powerR < 1.0 {
		t.Errorf("RBA power ratio = %.3f, want ~1.01", powerR)
	}
}

func TestScalingMonotonic(t *testing.T) {
	prevA, prevP := 0.0, 0.0
	for _, cus := range []int{1, 2, 4, 8, 16} {
		a, p := Relative(Design{CUs: cus, Banks: 2})
		if a <= prevA || p <= prevP {
			t.Errorf("%d CUs: ratios (%.3f, %.3f) not increasing", cus, a, p)
		}
		prevA, prevP = a, p
	}
}

func TestCrossbarSuperlinear(t *testing.T) {
	// Doubling CUs must grow the crossbar by more than 1.5x (the
	// super-linear port scaling that makes CU scaling expensive).
	x2 := Area(Design{CUs: 2, Banks: 2}).Crossbar
	x4 := Area(Design{CUs: 4, Banks: 2}).Crossbar
	if x4 < 1.5*x2 {
		t.Errorf("crossbar 2->4 CUs grew only %.2fx", x4/x2)
	}
}

func TestBankScalingCosts(t *testing.T) {
	a2, p2 := Relative(Design{CUs: 2, Banks: 2})
	a4, p4 := Relative(Design{CUs: 2, Banks: 4})
	if a4 <= a2 || p4 <= p2 {
		t.Error("doubling banks must cost area and power")
	}
}

func TestBreakdownConsistency(t *testing.T) {
	d := Design{CUs: 4, Banks: 2, RBA: true}
	e := Area(d)
	sum := e.RegFile + e.Collector + e.Crossbar + e.Scheduler + e.RBAExtras
	if e.Total() != sum {
		t.Error("Total does not equal component sum")
	}
	if e.RBAExtras <= 0 {
		t.Error("RBA design must show RBA extras")
	}
	plain := Area(Design{CUs: 4, Banks: 2})
	if plain.RBAExtras != 0 {
		t.Error("non-RBA design must not show RBA extras")
	}
}

func TestRBAIsCheaperThanCUScaling(t *testing.T) {
	// The paper's headline cost claim: RBA delivers its speedup at a
	// fraction of the cost of doubling CUs.
	aRBA, pRBA := Relative(Design{CUs: 2, Banks: 2, RBA: true})
	aCU, pCU := Relative(Design{CUs: 4, Banks: 2})
	if aRBA >= aCU || pRBA >= pCU {
		t.Error("RBA must be cheaper than CU doubling")
	}
}
