// Package power estimates the area and power of the structures Fig. 13
// compares: the warp issue scheduler, the operand collector, and the
// sub-core's register-file banks.
//
// Substitution note (see DESIGN.md): the paper synthesized RTL in Cadence
// Genus on a 45 nm PDK with OpenRAM-generated SRAMs. We replace the flow
// with an analytical component model whose constants are calibrated to
// the paper's reported results — doubling CUs from 2 to 4 costs +27% area
// and +60% power, while RBA costs ~1% of each — and whose scaling laws
// follow the structures: collector-unit storage grows linearly with CU
// count (each CU stages 3 operands x 32 lanes x 32 bits), the
// bank-to-collector crossbar grows super-linearly with its port count,
// and RBA adds only a 16-entry x 5-bit score table, a 5-bit-wider
// comparator network, and the score adders.
package power

import "math"

// Design identifies a Fig. 13 configuration.
type Design struct {
	// CUs is the collector-unit count per sub-core.
	CUs int
	// Banks is the register bank count per sub-core.
	Banks int
	// RBA marks the register-bank-aware scheduler additions.
	RBA bool
}

// Estimate is a component breakdown in normalized units (the absolute
// scale is arbitrary; figures report ratios to the baseline design).
type Estimate struct {
	RegFile   float64
	Collector float64
	Crossbar  float64
	Scheduler float64
	RBAExtras float64
}

// Total sums the components.
func (e Estimate) Total() float64 {
	return e.RegFile + e.Collector + e.Crossbar + e.Scheduler + e.RBAExtras
}

// Calibrated constants (normalized units). See package comment.
const (
	areaRegFilePerBank = 60.0 // 32 KB SRAM bank
	areaPerCU          = 16.0 // 3 x 32 x 32-bit operand staging + control
	areaXbarCoeff      = 2.0  // per (CU*banks)^0.75 port complexity
	areaScheduler      = 10.0 // 16-entry warp PC table + GTO comparators
	areaRBAScoreTable  = 1.0  // 16 x 5-bit scores
	areaRBAComparator  = 0.5  // widening the comparator tree by 5 bits
	areaRBAScoring     = 0.4  // queue-length adders

	powerRegFilePerBank = 20.0
	powerPerCU          = 25.0
	powerXbarCoeff      = 4.0
	powerScheduler      = 8.0
	powerRBAScoreTable  = 0.5
	powerRBAComparator  = 0.4
	powerRBAScoring     = 0.3
)

func xbar(cus, banks int, coeff float64) float64 {
	ports := float64(cus * banks)
	return coeff * math.Pow(ports, 0.75) * 2
}

// Area returns the area breakdown of a design.
func Area(d Design) Estimate {
	e := Estimate{
		RegFile:   areaRegFilePerBank * float64(d.Banks),
		Collector: areaPerCU * float64(d.CUs),
		Crossbar:  xbar(d.CUs, d.Banks, areaXbarCoeff),
		Scheduler: areaScheduler,
	}
	if d.RBA {
		e.RBAExtras = areaRBAScoreTable + areaRBAComparator + areaRBAScoring
	}
	return e
}

// Power returns the power breakdown of a design.
func Power(d Design) Estimate {
	e := Estimate{
		RegFile:   powerRegFilePerBank * float64(d.Banks),
		Collector: powerPerCU * float64(d.CUs),
		Crossbar:  xbar(d.CUs, d.Banks, powerXbarCoeff),
		Scheduler: powerScheduler,
	}
	if d.RBA {
		e.RBAExtras = powerRBAScoreTable + powerRBAComparator + powerRBAScoring
	}
	return e
}

// Baseline is the Table II sub-core: 2 CUs, 2 banks, GTO scheduler.
func Baseline() Design { return Design{CUs: 2, Banks: 2} }

// Relative returns (area, power) of d normalized to the baseline design —
// the quantities Fig. 13 plots.
func Relative(d Design) (area, power float64) {
	base := Baseline()
	return Area(d).Total() / Area(base).Total(),
		Power(d).Total() / Power(base).Total()
}
