package exp

import "testing"

// TestSec1EffectsShape checks the Section I effect decomposition: bank
// conflicts and issue imbalance dominate (large FC gains, recovered by
// the cheap mitigations); EU diversity is visible; register capacity is
// second-order under balanced placement.
func TestSec1EffectsShape(t *testing.T) {
	tbl, err := Sec1Effects()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	byLabel := map[string]Row{}
	for _, r := range tbl.Rows {
		byLabel[r.Label] = r
	}
	// Effect 1: bank conflicts — FC helps, RBA recovers at least as much.
	e1 := byLabel["1:bank-conflicts"]
	if e1.Values[0] < 1.15 {
		t.Errorf("bank-conflict FC speedup = %.2f, want >= 1.15", e1.Values[0])
	}
	if e1.Values[1] < 1.15 {
		t.Errorf("bank-conflict RBA speedup = %.2f, want >= 1.15", e1.Values[1])
	}
	// Effect 2: issue imbalance — the dominant effect, ~4x.
	e2 := byLabel["2:issue-imbalance"]
	if e2.Values[0] < 2.5 || e2.Values[1] < 2.5 {
		t.Errorf("issue-imbalance FC/SRR = %.2f/%.2f, want >= 2.5", e2.Values[0], e2.Values[1])
	}
	// Effect 3: EU diversity — visible, SRR recovers much of it.
	e3 := byLabel["3:eu-diversity"]
	if e3.Values[0] < 1.3 {
		t.Errorf("eu-diversity FC speedup = %.2f, want >= 1.3", e3.Values[0])
	}
	if e3.Values[1] < 1.2 {
		t.Errorf("eu-diversity SRR speedup = %.2f, want >= 1.2", e3.Values[1])
	}
	// Effect 4: register capacity — second-order (paper agrees).
	e4 := byLabel["4:register-capacity"]
	if e4.Values[0] < 0.85 || e4.Values[0] > 1.2 {
		t.Errorf("register-capacity FC speedup = %.2f, want ~1 (second-order)", e4.Values[0])
	}
}
