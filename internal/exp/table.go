package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/stats"
)

// Row is one labeled row of an experiment table.
type Row struct {
	// Label names the row (application, design point, query...).
	Label string
	// Values align with the table's Columns.
	Values []float64
}

// Table is one reproduced figure or table.
type Table struct {
	// ID is the experiment identifier, e.g. "fig9".
	ID string
	// Title describes the artifact.
	Title string
	// Columns name the value columns.
	Columns []string
	// Rows hold the data.
	Rows []Row
	// Notes carry comparisons to the paper's reported numbers.
	Notes []string
}

// AddRow appends a row.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Note appends a note line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Column returns the values of one column across all rows.
func (t *Table) Column(name string) ([]float64, error) {
	idx := -1
	for i, c := range t.Columns {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("exp: table %s has no column %q", t.ID, name)
	}
	out := make([]float64, 0, len(t.Rows))
	for _, r := range t.Rows {
		if idx < len(r.Values) {
			out = append(out, r.Values[idx])
		}
	}
	return out, nil
}

// GeoMeanRow appends a geometric-mean summary row across all current rows.
func (t *Table) GeoMeanRow(label string) {
	vals := make([]float64, len(t.Columns))
	for c := range t.Columns {
		col := make([]float64, 0, len(t.Rows))
		for _, r := range t.Rows {
			if c < len(r.Values) {
				col = append(col, r.Values[c])
			}
		}
		vals[c] = stats.GeoMean(col)
	}
	t.AddRow(label, vals...)
}

// MeanRow appends an arithmetic-mean summary row.
func (t *Table) MeanRow(label string) {
	vals := make([]float64, len(t.Columns))
	for c := range t.Columns {
		col := make([]float64, 0, len(t.Rows))
		for _, r := range t.Rows {
			if c < len(r.Values) {
				col = append(col, r.Values[c])
			}
		}
		vals[c] = stats.Mean(col)
	}
	t.AddRow(label, vals...)
}

// Render writes the table in aligned text form.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "name")
	for _, c := range t.Columns {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw)
	for _, r := range t.Rows {
		fmt.Fprint(tw, r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(tw, "\t%.3f", v)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
