package exp

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/workloads"
)

// Sec1Effects quantifies the four orthogonal partitioning effects of
// Section I with targeted microbenchmarks, reporting the fully-connected
// SM's speedup over the partitioned baseline for each, plus the cheap
// mitigation the paper proposes where one exists. The paper's finding:
// effects 1 (bank conflicts) and 2 (issue imbalance) dominate in
// practice; 3 (EU diversity) and 4 (register capacity) are real but
// second-order for most workloads.
func Sec1Effects() (*Table, error) {
	t := &Table{
		ID:      "sec1effects",
		Title:   "The four partitioning effects: fully-connected speedup and proposed mitigation",
		Columns: []string{"fully-connected", "mitigation"},
	}

	runOne := func(cfg config.GPU, ks ...*gpu.Kernel) (int64, error) {
		g, err := gpu.New(cfg)
		if err != nil {
			return 0, err
		}
		if err := g.RunConcurrent(ks, 0); err != nil {
			return 0, err
		}
		return g.Run().Cycles, nil
	}

	type effect struct {
		label      string
		kernels    func() []*gpu.Kernel
		mitigation config.GPU
	}
	fatThin := func() []*gpu.Kernel {
		fat, thin := workloads.RegCapacityPair()
		return []*gpu.Kernel{fat, thin}
	}
	effects := []effect{
		{
			label:      "1:bank-conflicts",
			kernels:    func() []*gpu.Kernel { return []*gpu.Kernel{workloads.BankConflictMicro()} },
			mitigation: Base().WithScheduler(config.SchedRBA),
		},
		{
			label:      "2:issue-imbalance",
			kernels:    func() []*gpu.Kernel { return []*gpu.Kernel{workloads.FMAMicro(workloads.FMAUnbalanced, 1024)} },
			mitigation: Base().WithAssign(config.AssignSRR),
		},
		{
			label:      "3:eu-diversity",
			kernels:    func() []*gpu.Kernel { return []*gpu.Kernel{workloads.EUDiverseMicro()} },
			mitigation: Base().WithAssign(config.AssignSRR),
		},
		{
			label:      "4:register-capacity",
			kernels:    fatThin,
			mitigation: Base(), // no cheap mitigation proposed; column repeats baseline
		},
	}
	for _, e := range effects {
		base, err := runOne(Base(), e.kernels()...)
		if err != nil {
			return nil, fmt.Errorf("%s base: %w", e.label, err)
		}
		fc, err := runOne(FC(), e.kernels()...)
		if err != nil {
			return nil, fmt.Errorf("%s fc: %w", e.label, err)
		}
		mit, err := runOne(e.mitigation, e.kernels()...)
		if err != nil {
			return nil, fmt.Errorf("%s mitigation: %w", e.label, err)
		}
		t.AddRow(e.label, Speedup(base, fc), Speedup(base, mit))
	}
	t.Note("mitigations: RBA for effect 1, SRR for effects 2-3; effect 4 has no cheap fix (column = 1.0)")
	t.Note("paper: effects 1 and 2 account for the majority of sub-core performance loss in practice")
	t.Note("effect 4 measures ~1.0 here: round-robin placement keeps per-sub-core occupancy balanced, so")
	t.Note("fragmentation rarely strands capacity — matching the paper's finding that effects 3-4 are second-order")
	return t, nil
}
