package exp

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"repro/internal/config"
	"repro/internal/workloads"
)

// Sweep profiler: measures the *simulator's* performance — wall-clock,
// simulated cycles and instructions per second, and heap allocations —
// per (application, configuration) cell. cmd/sweep emits the report as
// JSON so performance PRs have a machine-readable baseline to diff
// against.

// ProfileEntry is one (application, configuration) measurement.
type ProfileEntry struct {
	App    string `json:"app"`
	Config string `json:"config"`
	// Cycles and Instructions are the simulated totals of the run.
	Cycles       int64 `json:"cycles"`
	Instructions int64 `json:"instructions"`
	// WallSeconds is the run's host wall-clock time.
	WallSeconds float64 `json:"wall_seconds"`
	// SimCyclesPerSec and SimInstrPerSec are the simulator's throughput.
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
	SimInstrPerSec  float64 `json:"sim_instr_per_sec"`
	// Allocs and AllocBytes are the heap allocations the run performed
	// (runtime.MemStats deltas; runs execute serially so deltas are
	// attributable).
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
}

// ProfileReport is the full profiler output.
type ProfileReport struct {
	GoOS    string         `json:"goos"`
	GoArch  string         `json:"goarch"`
	NumCPU  int            `json:"num_cpu"`
	Entries []ProfileEntry `json:"entries"`
	Totals  ProfileTotals  `json:"totals"`
}

// ProfileTotals aggregates the report.
type ProfileTotals struct {
	Runs            int     `json:"runs"`
	WallSeconds     float64 `json:"wall_seconds"`
	Cycles          int64   `json:"cycles"`
	Instructions    int64   `json:"instructions"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
	SimInstrPerSec  float64 `json:"sim_instr_per_sec"`
	Allocs          uint64  `json:"allocs"`
	AllocBytes      uint64  `json:"alloc_bytes"`
}

// Profile runs every app on every configuration serially (so wall-clock
// and allocation deltas are attributable to one run) and returns the
// measurements. names labels the configurations in the report; it must
// match cfgs in length (nil falls back to cfg.Name).
func Profile(cfgs []config.GPU, names []string, apps []workloads.App) (*ProfileReport, error) {
	rep := &ProfileReport{
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
	}
	var ms0, ms1 runtime.MemStats
	for _, app := range apps {
		for ci, cfg := range cfgs {
			name := cfg.Name
			if names != nil {
				name = names[ci]
			}
			runtime.ReadMemStats(&ms0)
			start := time.Now() //simlint:allow determinism -- wall-clock measurement is this profiler's purpose; it never feeds simulation state
			r, err := RunApp(cfg, app)
			if err != nil {
				return nil, err
			}
			wall := time.Since(start).Seconds() //simlint:allow determinism -- wall-clock measurement is this profiler's purpose; it never feeds simulation state
			runtime.ReadMemStats(&ms1)
			e := ProfileEntry{
				App:          app.Name,
				Config:       name,
				Cycles:       r.Cycles,
				Instructions: r.Instructions,
				WallSeconds:  wall,
				Allocs:       ms1.Mallocs - ms0.Mallocs,
				AllocBytes:   ms1.TotalAlloc - ms0.TotalAlloc,
			}
			if wall > 0 {
				e.SimCyclesPerSec = float64(r.Cycles) / wall
				e.SimInstrPerSec = float64(r.Instructions) / wall
			}
			rep.Entries = append(rep.Entries, e)
		}
	}
	t := &rep.Totals
	for _, e := range rep.Entries {
		t.Runs++
		t.WallSeconds += e.WallSeconds
		t.Cycles += e.Cycles
		t.Instructions += e.Instructions
		t.Allocs += e.Allocs
		t.AllocBytes += e.AllocBytes
	}
	if t.WallSeconds > 0 {
		t.SimCyclesPerSec = float64(t.Cycles) / t.WallSeconds
		t.SimInstrPerSec = float64(t.Instructions) / t.WallSeconds
	}
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r *ProfileReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
