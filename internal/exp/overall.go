package exp

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig1 reproduces Figure 1: speedup of a hypothetical fully-connected SM
// over the 4-way partitioned Volta baseline across all 112 applications.
// Paper: 13.2% average speedup, showing the cost of partitioning.
func Fig1() (*Table, error) {
	apps, err := workloads.All()
	if err != nil {
		return nil, err
	}
	cfgs := []config.GPU{Base(), FC()}
	cyc, err := Sweep(cfgs, apps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig1",
		Title:   "Fully-connected SM speedup over 4-way partitioned V100 (112 apps)",
		Columns: []string{"fully-connected"},
	}
	for i, a := range apps {
		t.AddRow(a.Name, Speedup(cyc[i][0], cyc[i][1]))
	}
	t.GeoMeanRow("geomean")
	t.Note("paper: 13.2%% average speedup for the fully-connected SM")
	return t, nil
}

// Fig9 reproduces Figure 9: speedup of the combined designs over the
// GTO + round-robin baseline on all applications. Paper: Shuffle+RBA
// averages 10.6%, 2.6%% below the fully-connected SM's 13.2%.
func Fig9() (*Table, error) {
	apps, err := workloads.All()
	if err != nil {
		return nil, err
	}
	cfgs := []config.GPU{
		Base(),
		Base().WithScheduler(config.SchedRBA).WithAssign(config.AssignShuffle),
		Base().WithScheduler(config.SchedRBA).WithAssign(config.AssignSRR),
		FC(),
	}
	cyc, err := Sweep(cfgs, apps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig9",
		Title:   "Design speedup on all 112 applications vs GTO+RR",
		Columns: []string{"shuffle+rba", "srr+rba", "fully-connected"},
	}
	for i, a := range apps {
		t.AddRow(a.Name,
			Speedup(cyc[i][0], cyc[i][1]),
			Speedup(cyc[i][0], cyc[i][2]),
			Speedup(cyc[i][0], cyc[i][3]))
	}
	t.GeoMeanRow("geomean")
	t.Note("paper: Shuffle+RBA 10.6%% vs fully-connected 13.2%% average")
	return t, nil
}

// Fig10 reproduces Figure 10: design summary on the partitioning-
// sensitive subset (Table III), including register bank stealing [36] and
// doubled collector units. Paper: RBA 11.1%% average (19.3%% with SRR on
// the sensitive set), CU doubling 4.1%%, bank stealing <1%%.
func Fig10() (*Table, error) {
	apps, err := workloads.Sensitive()
	if err != nil {
		return nil, err
	}
	cfgs := []config.GPU{
		Base(),
		Base().WithScheduler(config.SchedRBA),
		Base().WithAssign(config.AssignShuffle),
		Base().WithAssign(config.AssignSRR),
		Base().WithScheduler(config.SchedRBA).WithAssign(config.AssignShuffle),
		Base().WithCUs(4),
		Base().WithBankStealing(),
		FC(),
	}
	cyc, err := Sweep(cfgs, apps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig10",
		Title:   "Design speedup on partitioning-sensitive applications vs GTO+RR",
		Columns: []string{"rba", "shuffle", "srr", "shuffle+rba", "4cu", "bank-steal", "fully-connected"},
	}
	for i, a := range apps {
		row := make([]float64, len(cfgs)-1)
		for c := 1; c < len(cfgs); c++ {
			row[c-1] = Speedup(cyc[i][0], cyc[i][c])
		}
		t.AddRow(a.Name, row...)
	}
	t.GeoMeanRow("geomean")
	t.Note("paper: RBA 11.1%%, CU doubling 4.1%%, bank stealing <1%% average")
	return t, nil
}

// Fig17 reproduces Figure 17: coefficient of variation of per-sub-core
// issued instructions on the uncompressed TPC-H queries. Paper: SRR cuts
// the mean CoV from 0.80 to 0.11; q8 has the largest baseline CoV (1.01).
func Fig17() (*Table, error) {
	apps, err := workloads.BySuite("tpch-u")
	if err != nil {
		return nil, err
	}
	cfgs := []config.GPU{
		Base(),
		Base().WithAssign(config.AssignSRR),
		Base().WithAssign(config.AssignShuffle),
	}
	runs, cellErrs, err := SweepRuns(cfgs, apps)
	if err == nil {
		err = cellErrs.Err()
	}
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig17",
		Title:   "CoV of per-sub-core issued instructions, uncompressed TPC-H",
		Columns: []string{"rr", "srr", "shuffle"},
	}
	for i, a := range apps {
		t.AddRow(a.Name, runs[i][0].IssueCoV(), runs[i][1].IssueCoV(), runs[i][2].IssueCoV())
	}
	t.MeanRow("mean")
	t.Note("paper: SRR reduces mean CoV from 0.80 to 0.11")
	return t, nil
}

// tpchFig runs the Fig 15/16 design sweep over one TPC-H suite.
func tpchFig(id, suite string, paperNote string) (*Table, error) {
	apps, err := workloads.BySuite(suite)
	if err != nil {
		return nil, err
	}
	cfgs := []config.GPU{
		Base(),
		Base().WithScheduler(config.SchedRBA),
		Base().WithAssign(config.AssignShuffle),
		Base().WithAssign(config.AssignSRR),
		FC(),
	}
	cyc, err := Sweep(cfgs, apps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      id,
		Title:   "TPC-H (" + suite + ") design speedup vs GTO+RR",
		Columns: []string{"rba", "shuffle", "srr", "fully-connected"},
	}
	for i, a := range apps {
		t.AddRow(a.Name,
			Speedup(cyc[i][0], cyc[i][1]),
			Speedup(cyc[i][0], cyc[i][2]),
			Speedup(cyc[i][0], cyc[i][3]),
			Speedup(cyc[i][0], cyc[i][4]))
	}
	t.MeanRow("mean")
	t.Note("%s", paperNote)
	return t, nil
}

// Fig15 reproduces Figure 15 (compressed TPC-H). Paper: SRR 33.1%%,
// Shuffle 27.4%% average speedup.
func Fig15() (*Table, error) {
	return tpchFig("fig15", "tpch-c", "paper: SRR +33.1%, Shuffle +27.4% average (compressed)")
}

// Fig16 reproduces Figure 16 (uncompressed TPC-H). Paper: SRR 17.5%%,
// Shuffle 13.9%% average speedup.
func Fig16() (*Table, error) {
	return tpchFig("fig16", "tpch-u", "paper: SRR +17.5%, Shuffle +13.9% average (uncompressed)")
}

// Fig18 reproduces Figure 18: how many partitioned SMs match a
// fully-connected device on compute-bound applications. The paper finds
// 100 partitioned SMs ≈ 80 fully-connected, dropping to 84 with the
// proposed techniques. Scaled to our 4-SM device, the equivalent points
// are 5 and ~4.2 SMs; we sweep partitioned SM counts and interpolate.
func Fig18() (*Table, error) {
	rf, err := workloads.RFSensitive()
	if err != nil {
		return nil, err
	}
	var apps []workloads.App
	for _, a := range rf {
		if a.Suite != "cugraph" { // compute-bound, SM-scalable subset
			apps = append(apps, a)
		}
	}
	smCounts := []int{4, 5, 6, 7}
	var cfgs []config.GPU
	for _, n := range smCounts {
		cfgs = append(cfgs, Base().WithSMs(n)) // total memory bandwidth held constant
	}
	for _, n := range smCounts {
		cfgs = append(cfgs, Base().WithScheduler(config.SchedRBA).WithAssign(config.AssignShuffle).WithSMs(n))
	}
	cfgs = append(cfgs, FC())
	cyc, err := Sweep(cfgs, apps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig18",
		Title:   "SM-count sensitivity: partitioned SMs needed to match 4 fully-connected SMs",
		Columns: []string{"partitioned", "partitioned+ours", "fully-connected@4"},
	}
	fcIdx := len(cfgs) - 1
	for si, n := range smCounts {
		var part, ours, fc []float64
		for i := range apps {
			base := cyc[i][0] // partitioned @ 4 SMs
			part = append(part, Speedup(base, cyc[i][si]))
			ours = append(ours, Speedup(base, cyc[i][len(smCounts)+si]))
			fc = append(fc, Speedup(base, cyc[i][fcIdx]))
		}
		t.AddRow(
			rowLabel("SMs", n),
			stats.GeoMean(part), stats.GeoMean(ours), stats.GeoMean(fc))
	}
	t.Note("paper: 100 partitioned SMs ≈ 80 fully-connected; 84 with the proposed techniques")
	t.Note("read: the SM count where a column crosses fully-connected@4 is the equivalence point")
	return t, nil
}

func rowLabel(prefix string, n int) string {
	return fmt.Sprintf("%s=%d", prefix, n)
}
