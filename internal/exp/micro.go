package exp

import (
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/workloads"
)

// Fig3 reproduces Figure 3: the FMA microbenchmark's slowdown under the
// three Fig. 4 thread-block layouts, on a partitioned (Volta/Ampere-like)
// and a monolithic (Kepler-like) SM. Each value is execution time
// normalized to the baseline layout on the same device. Paper: the
// unbalanced layout runs 3.9x slower on the A100 and ~1x on Kepler.
func Fig3() (*Table, error) {
	const fmas = 1024
	devices := []struct {
		label string
		cfg   config.GPU
	}{
		{"partitioned(volta/ampere)", Base()},
		{"monolithic(kepler)", scale(config.KeplerLike())},
	}
	t := &Table{
		ID:      "fig3",
		Title:   "FMA microbenchmark: execution time normalized to the baseline layout",
		Columns: []string{"baseline", "balanced", "unbalanced"},
	}
	for _, d := range devices {
		var times [3]float64
		for li, layout := range []workloads.FMALayout{workloads.FMABaseline, workloads.FMABalanced, workloads.FMAUnbalanced} {
			r, err := RunKernelOn(d.cfg, workloads.FMAMicro(layout, fmas))
			if err != nil {
				return nil, err
			}
			times[li] = float64(r.Cycles)
		}
		t.AddRow(d.label, 1.0, times[1]/times[0], times[2]/times[0])
	}
	t.Note("paper: unbalanced is 3.9x on A100, ~3.5x on V100, ~1x on Kepler; balanced ~1x everywhere")
	return t, nil
}

// Fig8 reproduces Figure 8: performance of the unbalanced FMA kernel as
// the imbalance magnitude scales, for each sub-core assignment design
// (speedup over round robin at the same scale). Paper: SRR balances the
// 1-in-4 pattern perfectly; Shuffle's randomization is increasingly
// suboptimal as imbalance grows but still far ahead of round robin.
func Fig8() (*Table, error) {
	scales := []int{1, 2, 4, 8}
	cfgs := []config.GPU{
		Base(),
		Base().WithAssign(config.AssignSRR),
		Base().WithAssign(config.AssignShuffle),
	}
	t := &Table{
		ID:      "fig8",
		Title:   "Unbalanced FMA as imbalance scales: speedup vs round robin",
		Columns: []string{"srr", "shuffle"},
	}
	for _, sc := range scales {
		k := workloads.FMAImbalanceScaled(sc)
		var cycles [3]int64
		for ci, cfg := range cfgs {
			r, err := RunKernelOn(cfg, k)
			if err != nil {
				return nil, err
			}
			cycles[ci] = r.Cycles
		}
		t.AddRow(rowLabel("scale", sc),
			Speedup(cycles[0], cycles[1]),
			Speedup(cycles[0], cycles[2]))
	}
	t.Note("paper: SRR stays optimal for the 1-in-4 pattern; Shuffle trails SRR and the gap grows with imbalance")
	return t, nil
}

// referenceCycles is the stand-in for the paper's in-silicon V100
// measurements of the seven RF-stress microbenchmarks (Section V). It is
// an analytic steady-state model, derived without reference to the
// simulator: per sub-core, throughput is the tightest of the FP32
// initiation limit, the issue-port limit, and the bank-bandwidth limit,
// plus a pipeline ramp.
func referenceCycles(variant int, cfg config.GPU) float64 {
	k := workloads.RFStressMicro(variant)
	// Dynamic instructions per sub-core: warps divide evenly; each block
	// has identical warps.
	totalInstr := float64(k.Instructions())
	perSubCore := totalInstr / float64(cfg.NumSMs*cfg.SubCoresPerSM)

	// Average register reads per instruction across the program.
	prog := k.WarpProgram(0, 0)
	cur := prog.Cursor()
	var reads, instrs float64
	for {
		in, ok := cur.Next()
		if !ok {
			break
		}
		instrs++
		reads += float64(in.NumSrcs())
	}
	avgReads := reads / instrs

	fp32 := 1.0 / float64(isa.InitiationInterval(cfg.FP32LanesPerSubCore))
	if cfg.FP32LanesPerSubCore > 16 {
		fp32 = float64(cfg.FP32LanesPerSubCore/16) / 2
	}
	issue := float64(cfg.SchedulersPerSubCore)
	bank := float64(cfg.BanksPerSubCore) / avgReads
	tp := math.Min(fp32, math.Min(issue, bank))
	const ramp = 300 // fill/drain and block-scheduling overhead
	return perSubCore/tp + ramp
}

// Sec5CU reproduces the Section V collector-unit validation: cycle counts
// of the seven RF-stress microbenchmarks simulated with 1-4 CUs per
// sub-core, scored by mean absolute error against the silicon stand-in.
// Paper: 2 CUs/sub-core minimizes MAE at 16.2%; the worst configuration
// errs by 43%.
func Sec5CU() (*Table, error) {
	cus := []int{1, 2, 3, 4}
	t := &Table{
		ID:      "sec5cu",
		Title:   "RF-stress microbenchmarks: simulated/reference cycle ratio per CU count",
		Columns: []string{"1cu", "2cu", "3cu", "4cu"},
	}
	errs := make([][]float64, len(cus))
	for v := 0; v < workloads.NumRFStressMicros; v++ {
		row := make([]float64, len(cus))
		for ci, n := range cus {
			cfg := Base().WithCUs(n)
			r, err := RunKernelOn(cfg, workloads.RFStressMicro(v))
			if err != nil {
				return nil, err
			}
			ref := referenceCycles(v, cfg)
			ratio := float64(r.Cycles) / ref
			row[ci] = ratio
			errs[ci] = append(errs[ci], math.Abs(ratio-1))
		}
		t.AddRow(fmt.Sprintf("rfstress-%d", v), row...)
	}
	mae := make([]float64, len(cus))
	for ci := range cus {
		var s float64
		for _, e := range errs[ci] {
			s += e
		}
		mae[ci] = s / float64(len(errs[ci]))
	}
	t.AddRow("MAE", mae...)
	t.Note("paper: 2 CUs/sub-core gives the lowest MAE (16.2%%) against silicon; worst config 43%%")
	return t, nil
}

// All runs every experiment and returns the tables in paper order.
func All() ([]*Table, error) {
	type fn struct {
		name string
		f    func() (*Table, error)
	}
	fns := []fn{
		{"sec1effects", Sec1Effects},
		{"fig1", Fig1}, {"fig3", Fig3}, {"fig8", Fig8}, {"fig9", Fig9},
		{"fig10", Fig10}, {"fig11", Fig11}, {"fig12", Fig12},
		{"fig13", Fig13}, {"fig14", Fig14}, {"fig15", Fig15},
		{"fig16", Fig16}, {"fig17", Fig17}, {"fig18", Fig18},
		{"sec5cu", Sec5CU}, {"sec6b4", Sec6B4}, {"sec6b5", Sec6B5},
		{"abl-sched", AblSched}, {"abl-table", AblTableSize},
		{"abl-swizzle", AblSwizzle}, {"abl-partition", AblPartition},
	}
	var out []*Table
	for _, e := range fns {
		tbl, err := e.f()
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.name, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}

// ByID runs one experiment by identifier.
func ByID(id string) (*Table, error) {
	m := map[string]func() (*Table, error){
		"sec1effects": Sec1Effects,
		"fig1":        Fig1, "fig3": Fig3, "fig8": Fig8, "fig9": Fig9,
		"fig10": Fig10, "fig11": Fig11, "fig12": Fig12, "fig13": Fig13,
		"fig14": Fig14, "fig15": Fig15, "fig16": Fig16, "fig17": Fig17,
		"fig18": Fig18, "sec5cu": Sec5CU, "sec6b4": Sec6B4, "sec6b5": Sec6B5,
		"abl-sched": AblSched, "abl-table": AblTableSize,
		"abl-swizzle": AblSwizzle, "abl-partition": AblPartition,
	}
	f, ok := m[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q", id)
	}
	return f()
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	return []string{
		"sec1effects",
		"fig1", "fig3", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig18", "sec5cu", "sec6b4", "sec6b5",
		"abl-sched", "abl-table", "abl-swizzle", "abl-partition",
	}
}
