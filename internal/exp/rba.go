package exp

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig11 reproduces Figure 11: applying RBA *on top of* the
// fully-connected SM in register-file-sensitive applications. Paper: the
// fully-connected SM's geomean gain rises from 6.1% to 19.6% with RBA in
// the apps where RBA beats fully-connected.
func Fig11() (*Table, error) {
	apps, err := workloads.RFSensitive()
	if err != nil {
		return nil, err
	}
	cfgs := []config.GPU{
		Base(),
		FC(),
		FC().WithScheduler(config.SchedRBA),
		Base().WithScheduler(config.SchedRBA),
	}
	cyc, err := Sweep(cfgs, apps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig11",
		Title:   "RBA on a fully-connected SM, RF-sensitive apps (speedup vs partitioned GTO+RR)",
		Columns: []string{"fully-connected", "fc+rba", "rba(partitioned)"},
	}
	var fcWins, fcRbaWins []float64
	for i, a := range apps {
		fc := Speedup(cyc[i][0], cyc[i][1])
		fcRba := Speedup(cyc[i][0], cyc[i][2])
		rba := Speedup(cyc[i][0], cyc[i][3])
		t.AddRow(a.Name, fc, fcRba, rba)
		if rba > fc { // the paper's selection: apps where RBA outperforms FC
			fcWins = append(fcWins, fc)
			fcRbaWins = append(fcRbaWins, fcRba)
		}
	}
	t.GeoMeanRow("geomean")
	t.Note("apps where RBA beats FC: FC geomean %.3f -> FC+RBA %.3f (paper: 1.061 -> 1.196)",
		stats.GeoMean(fcWins), stats.GeoMean(fcRbaWins))
	return t, nil
}

// Fig12 reproduces Figure 12: collector-unit scaling versus RBA on the
// sensitive subset, normalized to 2 CUs per sub-core. Paper: +4.1%,
// +7.1%, +9.6% for 4/8/16 CUs; RBA lands between 4 and 8 CUs outside
// cuGraph and above fully-connected within cuGraph.
func Fig12() (*Table, error) {
	apps, err := workloads.Sensitive()
	if err != nil {
		return nil, err
	}
	cus := []int{1, 2, 4, 8, 16}
	var cfgs []config.GPU
	for _, n := range cus {
		cfgs = append(cfgs, Base().WithCUs(n))
	}
	cfgs = append(cfgs, Base().WithScheduler(config.SchedRBA), FC())
	cyc, err := Sweep(cfgs, apps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig12",
		Title:   "CU scaling speedup (normalized to 2 CUs/sub-core) vs RBA and fully-connected",
		Columns: []string{"1cu", "4cu", "8cu", "16cu", "rba", "fully-connected"},
	}
	baseIdx := 1 // 2 CUs
	for i, a := range apps {
		base := cyc[i][baseIdx]
		t.AddRow(a.Name,
			Speedup(base, cyc[i][0]),
			Speedup(base, cyc[i][2]),
			Speedup(base, cyc[i][3]),
			Speedup(base, cyc[i][4]),
			Speedup(base, cyc[i][5]),
			Speedup(base, cyc[i][6]))
	}
	t.GeoMeanRow("geomean")
	t.Note("paper: CU scaling +4.1%%/+7.1%%/+9.6%% for 4/8/16 CUs; diminishing beyond 8")
	return t, nil
}

// Fig13 reproduces Figure 13: normalized area and power of CU scaling
// versus the RBA additions (analytical model standing in for the paper's
// 45nm synthesis — see internal/power). Paper: 4 CUs cost +27% area and
// +60% power; RBA costs ~1% of each.
func Fig13() (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "Area and power vs baseline (2 CUs + 2 banks + scheduler)",
		Columns: []string{"area", "power"},
	}
	designs := []struct {
		label string
		d     power.Design
	}{
		{"2cu(base)", power.Design{CUs: 2, Banks: 2}},
		{"4cu", power.Design{CUs: 4, Banks: 2}},
		{"8cu", power.Design{CUs: 8, Banks: 2}},
		{"16cu", power.Design{CUs: 16, Banks: 2}},
		{"rba", power.Design{CUs: 2, Banks: 2, RBA: true}},
	}
	for _, d := range designs {
		a, p := power.Relative(d.d)
		t.AddRow(d.label, a, p)
	}
	t.Note("paper: 4 CUs => 1.27x area, 1.60x power; RBA => ~1.01x both")
	return t, nil
}

// Fig14 reproduces Figure 14: per-cycle register-file read utilization of
// pb-mriq and rod-srad under GTO, RBA, and fully-connected. The paper
// plots full timelines; we report the summary statistics that carry its
// conclusions — mean reads/cycle (the red line) and the fraction of
// low-utilization cycles (<= 85 reads).
func Fig14() (*Table, error) {
	t := &Table{
		ID:      "fig14",
		Title:   "Register-file reads per cycle on SM0 (mean / %cycles<=85 / p95)",
		Columns: []string{"mean", "low-frac", "p95"},
	}
	for _, name := range []string{"pb-mriq", "rod-srad"} {
		app, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, c := range []config.GPU{
			Base(),
			Base().WithScheduler(config.SchedRBA),
			FC(),
		} {
			g, err := newTracedGPU(c)
			if err != nil {
				return nil, err
			}
			if err := g.RunKernels(app.Kernels, 0); err != nil {
				return nil, err
			}
			r := g.Run()
			// Trim the idle head/tail (SM0 waiting on other SMs to
			// finish) so the mean reflects the application region, as the
			// paper's single-SM timelines do.
			trace := r.ReadsPerCycle
			for len(trace) > 0 && trace[0] == 0 {
				trace = trace[1:]
			}
			for len(trace) > 0 && trace[len(trace)-1] == 0 {
				trace = trace[:len(trace)-1]
			}
			low := 0
			vals := make([]float64, len(trace))
			var sum float64
			for i, v := range trace {
				vals[i] = float64(v)
				sum += float64(v)
				if v <= 85 {
					low++
				}
			}
			mean, frac := 0.0, 0.0
			if len(vals) > 0 {
				mean = sum / float64(len(vals))
				frac = float64(low) / float64(len(vals))
			}
			t.AddRow(fmt.Sprintf("%s/%s", name, c.Name), mean, frac, stats.Percentile(vals, 95))
		}
	}
	t.Note("paper: RBA raises rod-srad mean reads/cycle from 22.2 to 27.1, above fully-connected's 23.4")
	return t, nil
}

// Sec6B4 reproduces the RBA score-update latency study (Section VI-B4):
// sweeping the delay on the arbiter queue-length tap from 0 to 20 cycles.
// Paper: <0.1% average performance loss; only ply-2Dcon exceeds 1%.
func Sec6B4() (*Table, error) {
	apps, err := workloads.RFSensitive()
	if err != nil {
		return nil, err
	}
	lats := []int{0, 5, 10, 20}
	var cfgs []config.GPU
	cfgs = append(cfgs, Base())
	for _, l := range lats {
		c := Base().WithScheduler(config.SchedRBA)
		c.RBAScoreLatency = l
		c.Name = fmt.Sprintf("%s-lat%d", c.Name, l)
		cfgs = append(cfgs, c)
	}
	cyc, err := Sweep(cfgs, apps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "sec6b4",
		Title:   "RBA speedup vs GTO as the score-update latency grows",
		Columns: []string{"lat0", "lat5", "lat10", "lat20"},
	}
	for i, a := range apps {
		row := make([]float64, len(lats))
		for c := range lats {
			row[c] = Speedup(cyc[i][0], cyc[i][c+1])
		}
		t.AddRow(a.Name, row...)
	}
	t.GeoMeanRow("geomean")
	t.Note("paper: <0.1%% average degradation from 0 to 20 cycles of staleness")
	t.Note("here: synthetic workloads have more volatile bank pressure than SASS traces, so staleness")
	t.Note("costs several points of RBA's gain — but stale RBA stays at or above GTO (partial reproduction)")
	return t, nil
}

// Sec6B5 reproduces the bank-scaling sensitivity study (Section VI-B5):
// RBA's benefit with 2 versus 4 banks per sub-core. Paper: the average
// RBA gain on sensitive apps drops from 19.3% to 15.4% with 4 banks.
func Sec6B5() (*Table, error) {
	apps, err := workloads.Sensitive()
	if err != nil {
		return nil, err
	}
	cfgs := []config.GPU{
		Base(),
		Base().WithScheduler(config.SchedRBA),
		Base().WithBanks(4),
		Base().WithBanks(4).WithScheduler(config.SchedRBA),
	}
	cyc, err := Sweep(cfgs, apps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "sec6b5",
		Title:   "RBA benefit at 2 vs 4 banks per sub-core (speedup over same-bank GTO)",
		Columns: []string{"rba@2banks", "rba@4banks"},
	}
	for i, a := range apps {
		t.AddRow(a.Name,
			Speedup(cyc[i][0], cyc[i][1]),
			Speedup(cyc[i][2], cyc[i][3]))
	}
	t.GeoMeanRow("geomean")
	t.Note("paper: RBA's average gain shrinks from 19.3%% to 15.4%% when banks double")
	return t, nil
}
