package exp

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/workloads"
)

// AblSched compares all three warp schedulers on the sensitive subset.
// LRR is the classic alternative baseline; the paper's Table II baseline
// is GTO. The ablation shows RBA's gain is not an artifact of a weak
// baseline: GTO beats LRR, and RBA beats GTO.
func AblSched() (*Table, error) {
	apps, err := workloads.Sensitive()
	if err != nil {
		return nil, err
	}
	cfgs := []config.GPU{
		Base(),
		Base().WithScheduler(config.SchedLRR),
		Base().WithScheduler(config.SchedRBA),
	}
	cyc, err := Sweep(cfgs, apps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-sched",
		Title:   "Warp scheduler ablation (speedup vs GTO)",
		Columns: []string{"lrr", "rba"},
	}
	for i, a := range apps {
		t.AddRow(a.Name, Speedup(cyc[i][0], cyc[i][1]), Speedup(cyc[i][0], cyc[i][2]))
	}
	t.GeoMeanRow("geomean")
	t.Note("GTO is the stronger baseline; RBA's gain is on top of it")
	return t, nil
}

// AblTableSize compares the 4-entry and 16-entry Shuffle hash tables on
// the TPC-H suites. Paper (Section IV-B3): the full 64-warp table is
// within 2%% of the 4-entry table, so the cheap table suffices.
func AblTableSize() (*Table, error) {
	uncompressed, err := workloads.BySuite("tpch-u")
	if err != nil {
		return nil, err
	}
	compressed, err := workloads.BySuite("tpch-c")
	if err != nil {
		return nil, err
	}
	apps := append(uncompressed, compressed...)
	small := Base().WithAssign(config.AssignShuffle)
	big := Base().WithAssign(config.AssignShuffle)
	big.HashTableEntries = 16
	big.Name += "+16entry"
	cfgs := []config.GPU{Base(), small, big}
	cyc, err := Sweep(cfgs, apps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-table",
		Title:   "Shuffle hash-table size: 4 vs 16 entries (speedup vs RR)",
		Columns: []string{"4-entry", "16-entry"},
	}
	for i, a := range apps {
		t.AddRow(a.Name, Speedup(cyc[i][0], cyc[i][1]), Speedup(cyc[i][0], cyc[i][2]))
	}
	t.MeanRow("mean")
	t.Note("paper: 16-entry within 2%% of 4-entry across all suites")
	return t, nil
}

// AblSwizzle evaluates the register-to-bank mapping choice this
// implementation exposes: Volta's plain reg-mod-banks mapping versus a
// per-warp-slot scrambled mapping, for both GTO and RBA. A hardware
// swizzle de-correlates co-resident warps' bank pressure, attacking the
// same problem as RBA from the mapping side.
func AblSwizzle() (*Table, error) {
	apps, err := workloads.RFSensitive()
	if err != nil {
		return nil, err
	}
	mk := func(swizzle bool, sched config.WarpSched, tag string) config.GPU {
		c := Base().WithScheduler(sched)
		c.BankSwizzle = swizzle
		c.Name += tag
		return c
	}
	cfgs := []config.GPU{
		mk(true, config.SchedGTO, ""),           // baseline (swizzled, default)
		mk(false, config.SchedGTO, "+plainmap"), // silicon mapping
		mk(true, config.SchedRBA, ""),
		mk(false, config.SchedRBA, "+plainmap"),
	}
	cyc, err := Sweep(cfgs, apps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-swizzle",
		Title:   "Bank-mapping ablation (speedup vs swizzled GTO)",
		Columns: []string{"plain-gto", "swizzled-rba", "plain-rba"},
	}
	for i, a := range apps {
		t.AddRow(a.Name,
			Speedup(cyc[i][0], cyc[i][1]),
			Speedup(cyc[i][0], cyc[i][2]),
			Speedup(cyc[i][0], cyc[i][3]))
	}
	t.GeoMeanRow("geomean")
	t.Note("the scrambled mapping is itself worth performance; RBA adds scheduling on top")
	return t, nil
}

// AblPartition sweeps the partitioning degree at constant total SM
// capacity: 1 (monolithic), 2 (Maxwell/Pascal-style), 4 (Volta/Ampere).
// More partitions cost more performance but save area/power — the trend
// that motivated sub-cores in the first place (Section II-A).
func AblPartition() (*Table, error) {
	apps, err := workloads.Sensitive()
	if err != nil {
		return nil, err
	}
	mk := func(d int) config.GPU {
		g := Base()
		g.Name = fmt.Sprintf("partition-%d", d)
		g.SubCoresPerSM = d
		g.SchedulersPerSubCore = 4 / d
		g.BanksPerSubCore = 8 / d
		g.CollectorUnitsPerSubCore = 8 / d
		g.DispatchPortsPerSubCore = 8 / d
		g.RegFileKBPerSubCore = 256 / d
		g.FP32LanesPerSubCore = 64 / d
		g.IntLanesPerSubCore = 64 / d
		g.SFULanesPerSubCore = 16 / d
		g.TensorPerSubCore = 4 / d
		return g
	}
	cfgs := []config.GPU{mk(4), mk(2), mk(1)}
	cyc, err := Sweep(cfgs, apps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-partition",
		Title:   "Partitioning degree at constant capacity (speedup vs 4 sub-cores)",
		Columns: []string{"2-subcores", "monolithic"},
	}
	for i, a := range apps {
		t.AddRow(a.Name, Speedup(cyc[i][0], cyc[i][1]), Speedup(cyc[i][0], cyc[i][2]))
	}
	t.GeoMeanRow("geomean")
	t.Note("halving the partitioning recovers part of the monolithic SM's advantage")
	return t, nil
}
