package exp

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func exportFixture() *Table {
	t := &Table{ID: "fx", Title: "fixture", Columns: []string{"a", "b"}}
	t.AddRow("r1", 1.5, 2.25)
	t.AddRow("r2", 3, 4)
	t.Note("a note")
	return t
}

func TestRenderCSV(t *testing.T) {
	var sb strings.Builder
	if err := exportFixture().RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	if recs[0][0] != "name" || recs[0][2] != "b" {
		t.Errorf("header = %v", recs[0])
	}
	if recs[1][0] != "r1" || recs[1][1] != "1.500000" {
		t.Errorf("row = %v", recs[1])
	}
}

func TestRenderJSON(t *testing.T) {
	var sb strings.Builder
	if err := exportFixture().RenderJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var got struct {
		ID      string   `json:"id"`
		Columns []string `json:"columns"`
		Rows    []struct {
			Name   string    `json:"name"`
			Values []float64 `json:"values"`
		} `json:"rows"`
		Notes []string `json:"notes"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != "fx" || len(got.Rows) != 2 || got.Rows[1].Values[1] != 4 {
		t.Errorf("decoded = %+v", got)
	}
	if len(got.Notes) != 1 {
		t.Error("notes missing")
	}
}

func TestRenderAs(t *testing.T) {
	var sb strings.Builder
	for _, f := range []string{"", "text", "csv", "json"} {
		sb.Reset()
		if err := exportFixture().RenderAs(&sb, f); err != nil {
			t.Errorf("format %q: %v", f, err)
		}
		if sb.Len() == 0 {
			t.Errorf("format %q rendered nothing", f)
		}
	}
	if err := exportFixture().RenderAs(&sb, "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRenderMarkdown(t *testing.T) {
	var sb strings.Builder
	if err := exportFixture().RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"### fx: fixture", "| name | a | b |", "| r1 | 1.500 | 2.250 |", "> a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q in:\n%s", want, out)
		}
	}
}
