package exp

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/workloads"
)

func TestScaledConfigsValidate(t *testing.T) {
	for _, c := range []config.GPU{Base(), FC(), scale(config.KeplerLike())} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if c.NumSMs != ScaledSMs {
			t.Errorf("%s: NumSMs = %d, want %d", c.Name, c.NumSMs, ScaledSMs)
		}
	}
}

func TestDeviceForBoostsTPCH(t *testing.T) {
	base := Base()
	tp := DeviceFor(base, workloads.App{Suite: "tpch-u"})
	if tp.DRAMBytesPerCycle != base.DRAMBytesPerCycle*4 {
		t.Error("TPC-H device must get 4x the per-SM bandwidth share")
	}
	same := DeviceFor(base, workloads.App{Suite: "rodinia"})
	if same.DRAMBytesPerCycle != base.DRAMBytesPerCycle {
		t.Error("non-TPC-H suites must keep the scaled bandwidth")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(200, 100) != 2.0 {
		t.Error("Speedup wrong")
	}
	if Speedup(100, 0) != 0 {
		t.Error("zero-variant Speedup must be 0")
	}
}

func TestTableOps(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Columns: []string{"a", "b"}}
	tb.AddRow("r1", 2, 8)
	tb.AddRow("r2", 8, 2)
	tb.GeoMeanRow("gm")
	last := tb.Rows[len(tb.Rows)-1]
	if last.Values[0] != 4 || last.Values[1] != 4 {
		t.Errorf("geomean row = %v, want [4 4]", last.Values)
	}
	tb.MeanRow("mean")
	col, err := tb.Column("a")
	if err != nil || len(col) != 4 || col[0] != 2 {
		t.Errorf("Column = %v, %v", col, err)
	}
	if _, err := tb.Column("zzz"); err == nil {
		t.Error("unknown column must error")
	}
	var sb strings.Builder
	tb.Note("hello %d", 7)
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== x: t ==", "r1", "hello 7", "4.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestByIDAndIDs(t *testing.T) {
	if _, err := ByID("not-an-experiment"); err == nil {
		t.Error("unknown id must error")
	}
	ids := IDs()
	if len(ids) != 21 {
		t.Errorf("IDs = %d entries, want 21", len(ids))
	}
	// fig13 is pure arithmetic: run it through ByID.
	tbl, err := ByID("fig13")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "fig13" || len(tbl.Rows) != 5 {
		t.Errorf("fig13 table malformed: %+v", tbl)
	}
}

// TestFig3Shape verifies the central hardware observation end-to-end:
// unbalanced >= 2.5x on the partitioned device, ~1x on the monolithic
// device, balanced ~1x on both.
func TestFig3Shape(t *testing.T) {
	tbl, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("fig3 rows = %d", len(tbl.Rows))
	}
	part, mono := tbl.Rows[0], tbl.Rows[1]
	if part.Values[2] < 2.5 {
		t.Errorf("partitioned unbalanced = %.2fx, want >= 2.5 (paper 3.5-3.9x)", part.Values[2])
	}
	if part.Values[1] > 1.25 {
		t.Errorf("partitioned balanced = %.2fx, want ~1", part.Values[1])
	}
	if mono.Values[2] > 1.3 {
		t.Errorf("monolithic unbalanced = %.2fx, want ~1", mono.Values[2])
	}
}

// TestFig8Shape: SRR >= Shuffle > 1 on the scaled imbalance sweep, and
// the SRR-Shuffle gap does not shrink as imbalance grows.
func TestFig8Shape(t *testing.T) {
	tbl, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	firstGap := tbl.Rows[0].Values[0] - tbl.Rows[0].Values[1]
	lastGap := tbl.Rows[len(tbl.Rows)-1].Values[0] - tbl.Rows[len(tbl.Rows)-1].Values[1]
	for _, r := range tbl.Rows {
		srr, shuf := r.Values[0], r.Values[1]
		if srr < 1.2 {
			t.Errorf("%s: SRR speedup %.2f, want >= 1.2", r.Label, srr)
		}
		if shuf < 1.0 {
			t.Errorf("%s: Shuffle speedup %.2f, want >= 1.0", r.Label, shuf)
		}
		if srr+0.02 < shuf {
			t.Errorf("%s: SRR (%.2f) must not trail Shuffle (%.2f)", r.Label, srr, shuf)
		}
	}
	if lastGap < firstGap-0.05 {
		t.Errorf("SRR-Shuffle gap shrank with imbalance: %.3f -> %.3f", firstGap, lastGap)
	}
}

// TestSec5CUShape: 1 CU must be the worst fit against the silicon
// stand-in, and 2 CUs must be at or near the best.
func TestSec5CUShape(t *testing.T) {
	tbl, err := Sec5CU()
	if err != nil {
		t.Fatal(err)
	}
	mae := tbl.Rows[len(tbl.Rows)-1]
	if mae.Label != "MAE" {
		t.Fatal("last row must be MAE")
	}
	one, two := mae.Values[0], mae.Values[1]
	if one <= two {
		t.Errorf("MAE(1cu)=%.3f should exceed MAE(2cu)=%.3f", one, two)
	}
	best := mae.Values[0]
	for _, v := range mae.Values {
		if v < best {
			best = v
		}
	}
	if two > best+0.08 {
		t.Errorf("MAE(2cu)=%.3f not near best %.3f", two, best)
	}
}

// TestFig14Shape: RBA must raise rod-srad's mean reads/cycle over GTO.
func TestFig14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	tbl, err := Fig14()
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]Row{}
	for _, r := range tbl.Rows {
		byLabel[r.Label] = r
	}
	gto := byLabel["rod-srad/V100-scaled"]
	rba := byLabel["rod-srad/V100-scaled+RBA"]
	if gto.Label == "" || rba.Label == "" {
		t.Fatalf("missing rows; have %v", tbl.Rows)
	}
	if rba.Values[0] <= gto.Values[0] {
		t.Errorf("RBA mean reads/cycle %.1f not above GTO %.1f", rba.Values[0], gto.Values[0])
	}
}

// TestFig17Shape: SRR and Shuffle must collapse the issue CoV.
func TestFig17Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full TPC-H sweep")
	}
	tbl, err := Fig17()
	if err != nil {
		t.Fatal(err)
	}
	mean := tbl.Rows[len(tbl.Rows)-1]
	rr, srr, shuf := mean.Values[0], mean.Values[1], mean.Values[2]
	if rr < 0.5 {
		t.Errorf("baseline mean CoV = %.2f, want >= 0.5 (paper 0.80)", rr)
	}
	if srr > 0.2 {
		t.Errorf("SRR mean CoV = %.2f, want <= 0.2 (paper 0.11)", srr)
	}
	// Shuffle's 4-entry hash table repeats its pattern every 16 warps
	// (once per block here), so some per-SM issue variation survives; it
	// must still cut the baseline CoV roughly in half.
	if shuf > rr*0.6 {
		t.Errorf("Shuffle mean CoV = %.2f, want <= 60%% of baseline %.2f", shuf, rr)
	}
}

// TestSec6B4Shape: RBA must tolerate stale scores.
func TestSec6B4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config sweep")
	}
	tbl, err := Sec6B4()
	if err != nil {
		t.Fatal(err)
	}
	gm := tbl.Rows[len(tbl.Rows)-1]
	lat0, lat20 := gm.Values[0], gm.Values[3]
	// Our synthetic workloads have more volatile bank pressure than real
	// SASS traces, so staleness costs more than the paper's <0.1% — but
	// stale RBA must retain part of its benefit and never lose to GTO
	// (see EXPERIMENTS.md).
	if lat0-lat20 > 0.08 {
		t.Errorf("RBA loses %.1f%% from 20-cycle staleness, want < 8%%", (lat0-lat20)*100)
	}
	if lat20 < 0.99 {
		t.Errorf("stale RBA geomean %.3f fell below GTO", lat20)
	}
}
