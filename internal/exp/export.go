package exp

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/stats"
)

// RenderCSV writes the table as CSV: a header of "name" plus the value
// columns, one record per row. Notes are omitted (CSV is for machines).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"name"}, t.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := make([]string, 0, len(r.Values)+1)
		rec = append(rec, r.Label)
		for _, v := range r.Values {
			rec = append(rec, strconv.FormatFloat(v, 'f', 6, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonTable is the stable JSON shape of a Table.
type jsonTable struct {
	ID      string    `json:"id"`
	Title   string    `json:"title"`
	Columns []string  `json:"columns"`
	Rows    []jsonRow `json:"rows"`
	Notes   []string  `json:"notes,omitempty"`
}

type jsonRow struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// RenderJSON writes the table as a JSON document.
func (t *Table) RenderJSON(w io.Writer) error {
	jt := jsonTable{ID: t.ID, Title: t.Title, Columns: t.Columns, Notes: t.Notes}
	for _, r := range t.Rows {
		jt.Rows = append(jt.Rows, jsonRow{Name: r.Label, Values: r.Values})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table
// with the notes as a trailing list.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s: %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	fmt.Fprint(w, "| name |")
	for _, c := range t.Columns {
		fmt.Fprintf(w, " %s |", c)
	}
	fmt.Fprint(w, "\n|---|")
	for range t.Columns {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "| %s |", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(w, " %.3f |", v)
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n> %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RunJSON is the stable JSON shape of one simulated run: identification,
// the derived headline metrics, and the full per-SM statistics.
type RunJSON struct {
	App    string `json:"app"`
	Config string `json:"config"`
	// Derived headline metrics.
	IPC           float64 `json:"ipc"`
	IssueCoV      float64 `json:"issue_cov"`
	BankConflicts int64   `json:"bank_conflicts"`
	RegReads      int64   `json:"reg_reads"`
	MeanOccupancy float64 `json:"mean_occupancy"`
	// Stalls maps each stall reason's name to its summed sub-core cycles.
	Stalls map[string]int64 `json:"stalls"`
	// Run embeds the complete statistics (cycles, instructions, per-SM
	// and per-sub-core counters, kernel breakdown, traced series).
	Run *stats.Run `json:"run"`
}

// NewRunJSON assembles the export shape for one run.
func NewRunJSON(appName, cfgName string, r *stats.Run) *RunJSON {
	stalls := make(map[string]int64, int(stats.NumStallReasons)-1)
	for reason := stats.StallReason(1); reason < stats.NumStallReasons; reason++ {
		stalls[reason.String()] = r.TotalStalls(reason)
	}
	return &RunJSON{
		App:           appName,
		Config:        cfgName,
		IPC:           r.IPC(),
		IssueCoV:      r.IssueCoV(),
		BankConflicts: r.TotalBankConflicts(),
		RegReads:      r.TotalRegReads(),
		MeanOccupancy: r.MeanOccupancy(),
		Stalls:        stalls,
		Run:           r,
	}
}

// WriteRunJSON writes one run's full statistics as indented JSON — the
// machinery behind `subcoresim -json`.
func WriteRunJSON(w io.Writer, appName, cfgName string, r *stats.Run) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(NewRunJSON(appName, cfgName, r))
}

// RenderAs dispatches on format: "text" (default), "csv", "json", or
// "md" (markdown).
func (t *Table) RenderAs(w io.Writer, format string) error {
	switch format {
	case "", "text":
		return t.Render(w)
	case "csv":
		return t.RenderCSV(w)
	case "json":
		return t.RenderJSON(w)
	case "md", "markdown":
		return t.RenderMarkdown(w)
	default:
		return fmt.Errorf("exp: unknown format %q (want text, csv, json, or md)", format)
	}
}
