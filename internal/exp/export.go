package exp

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// RenderCSV writes the table as CSV: a header of "name" plus the value
// columns, one record per row. Notes are omitted (CSV is for machines).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"name"}, t.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := make([]string, 0, len(r.Values)+1)
		rec = append(rec, r.Label)
		for _, v := range r.Values {
			rec = append(rec, strconv.FormatFloat(v, 'f', 6, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonTable is the stable JSON shape of a Table.
type jsonTable struct {
	ID      string    `json:"id"`
	Title   string    `json:"title"`
	Columns []string  `json:"columns"`
	Rows    []jsonRow `json:"rows"`
	Notes   []string  `json:"notes,omitempty"`
}

type jsonRow struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// RenderJSON writes the table as a JSON document.
func (t *Table) RenderJSON(w io.Writer) error {
	jt := jsonTable{ID: t.ID, Title: t.Title, Columns: t.Columns, Notes: t.Notes}
	for _, r := range t.Rows {
		jt.Rows = append(jt.Rows, jsonRow{Name: r.Label, Values: r.Values})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table
// with the notes as a trailing list.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s: %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	fmt.Fprint(w, "| name |")
	for _, c := range t.Columns {
		fmt.Fprintf(w, " %s |", c)
	}
	fmt.Fprint(w, "\n|---|")
	for range t.Columns {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "| %s |", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(w, " %.3f |", v)
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n> %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderAs dispatches on format: "text" (default), "csv", "json", or
// "md" (markdown).
func (t *Table) RenderAs(w io.Writer, format string) error {
	switch format {
	case "", "text":
		return t.Render(w)
	case "csv":
		return t.RenderCSV(w)
	case "json":
		return t.RenderJSON(w)
	case "md", "markdown":
		return t.RenderMarkdown(w)
	default:
		return fmt.Errorf("exp: unknown format %q (want text, csv, json, or md)", format)
	}
}
