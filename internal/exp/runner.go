// Package exp reproduces every table and figure of the paper's evaluation
// (Section VI). Each Fig*/Sec* function runs the required configurations
// over the required workloads and returns a Table whose rows mirror the
// published artifact. EXPERIMENTS.md records paper-vs-measured values.
//
// Experiments run on a scaled-down device (4 SMs instead of 80, with
// DRAM/L2 bandwidth scaled proportionally) so that full 112-application
// sweeps complete in seconds. The studied effects are per-SM, so the
// scaling preserves every result shape; the SM-count study (Fig. 18)
// sweeps the SM count explicitly.
package exp

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// ScaledSMs is the SM count experiments run with.
const ScaledSMs = 4

// Base returns the scaled-down Table II baseline (GTO + RR).
func Base() config.GPU {
	g := config.VoltaV100()
	return scale(g)
}

// FC returns the scaled-down fully-connected SM.
func FC() config.GPU {
	g := config.FullyConnected()
	return scale(g)
}

func scale(g config.GPU) config.GPU {
	factor := g.NumSMs / ScaledSMs
	g.NumSMs = ScaledSMs
	g.DRAMBytesPerCycle /= factor
	g.L2BytesPerCycle /= factor
	g.L2KB /= factor
	if g.L2KB < 64 {
		g.L2KB = 64
	}
	g.Name = g.Name + "-scaled"
	return g
}

// DeviceFor adapts a scaled configuration to an application's suite:
// TPC-H runs with the paper's 20-SM memory-bandwidth share (Table II — the
// full device memory system behind a quarter of the SMs, i.e. 4x the
// per-SM bandwidth of the 80-SM configuration).
func DeviceFor(cfg config.GPU, app workloads.App) config.GPU {
	if app.Suite == "tpch-u" || app.Suite == "tpch-c" {
		cfg.DRAMBytesPerCycle *= 4
		cfg.L2BytesPerCycle *= 4
	}
	return cfg
}

// RunApp simulates one application on one configuration (adapted per
// suite, see DeviceFor) and returns its statistics.
func RunApp(cfg config.GPU, app workloads.App) (*stats.Run, error) {
	cfg = DeviceFor(cfg, app)
	return runAppRaw(cfg, app)
}

func runAppRaw(cfg config.GPU, app workloads.App) (*stats.Run, error) {
	g, err := gpu.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := g.RunKernels(app.Kernels, 0); err != nil {
		return nil, fmt.Errorf("%s on %s: %w", app.Name, cfg.Name, err)
	}
	return g.Run(), nil
}

// newTracedGPU builds a device with the Fig. 14 per-cycle register-read
// trace armed on SM 0.
func newTracedGPU(cfg config.GPU) (*gpu.GPU, error) {
	g, err := gpu.New(cfg)
	if err != nil {
		return nil, err
	}
	g.TraceReads(true)
	return g, nil
}

// RunKernelOn simulates a single standalone kernel (microbenchmarks).
func RunKernelOn(cfg config.GPU, k *gpu.Kernel) (*stats.Run, error) {
	g, err := gpu.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := g.RunKernel(k, 0); err != nil {
		return nil, err
	}
	return g.Run(), nil
}

// SweepOpts is the harness configuration Sweep/SweepRuns execute under.
// The zero value runs unsupervised (no timeout, default cycle cap);
// binaries set it once at startup from their flags (-timeout,
// -max-cycles) before running experiments.
var SweepOpts harness.Options

// Sweep simulates every app on every configuration in parallel and
// returns cycles[app][cfg]. The paper's figures need every cell, so any
// faulted cell aborts with an aggregated error.
func Sweep(cfgs []config.GPU, apps []workloads.App) ([][]int64, error) {
	runs, cellErrs, err := SweepRuns(cfgs, apps)
	if err == nil {
		err = cellErrs.Err()
	}
	if err != nil {
		return nil, err
	}
	cycles := make([][]int64, len(apps))
	for i := range apps {
		cycles[i] = make([]int64, len(cfgs))
		for j := range cfgs {
			cycles[i][j] = runs[i][j].Cycles
		}
	}
	return cycles, nil
}

// SweepRuns is Sweep keeping the full per-run statistics. It executes
// the matrix on the fault-tolerant harness (internal/harness): a cell
// that panics, livelocks, or errors is reported in the returned
// CellErrors — and left nil in the matrix — instead of crashing the
// sweep or aborting the remaining cells. Callers must check the error
// map (or harness.CellErrors.Err) before dereferencing cells.
func SweepRuns(cfgs []config.GPU, apps []workloads.App) ([][]*stats.Run, harness.CellErrors, error) {
	opt := SweepOpts
	opt.Adapt = DeviceFor
	res, err := harness.Run(context.Background(), cfgs, nil, apps, opt)
	if err != nil {
		return nil, nil, err
	}
	return res.Runs, res.Errs, nil
}

// Speedup converts (baseline, variant) cycle counts to a speedup factor.
func Speedup(base, variant int64) float64 {
	if variant == 0 {
		return 0
	}
	return float64(base) / float64(variant)
}
