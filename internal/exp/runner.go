// Package exp reproduces every table and figure of the paper's evaluation
// (Section VI). Each Fig*/Sec* function runs the required configurations
// over the required workloads and returns a Table whose rows mirror the
// published artifact. EXPERIMENTS.md records paper-vs-measured values.
//
// Experiments run on a scaled-down device (4 SMs instead of 80, with
// DRAM/L2 bandwidth scaled proportionally) so that full 112-application
// sweeps complete in seconds. The studied effects are per-SM, so the
// scaling preserves every result shape; the SM-count study (Fig. 18)
// sweeps the SM count explicitly.
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// ScaledSMs is the SM count experiments run with.
const ScaledSMs = 4

// Base returns the scaled-down Table II baseline (GTO + RR).
func Base() config.GPU {
	g := config.VoltaV100()
	return scale(g)
}

// FC returns the scaled-down fully-connected SM.
func FC() config.GPU {
	g := config.FullyConnected()
	return scale(g)
}

func scale(g config.GPU) config.GPU {
	factor := g.NumSMs / ScaledSMs
	g.NumSMs = ScaledSMs
	g.DRAMBytesPerCycle /= factor
	g.L2BytesPerCycle /= factor
	g.L2KB /= factor
	if g.L2KB < 64 {
		g.L2KB = 64
	}
	g.Name = g.Name + "-scaled"
	return g
}

// DeviceFor adapts a scaled configuration to an application's suite:
// TPC-H runs with the paper's 20-SM memory-bandwidth share (Table II — the
// full device memory system behind a quarter of the SMs, i.e. 4x the
// per-SM bandwidth of the 80-SM configuration).
func DeviceFor(cfg config.GPU, app workloads.App) config.GPU {
	if app.Suite == "tpch-u" || app.Suite == "tpch-c" {
		cfg.DRAMBytesPerCycle *= 4
		cfg.L2BytesPerCycle *= 4
	}
	return cfg
}

// RunApp simulates one application on one configuration (adapted per
// suite, see DeviceFor) and returns its statistics.
func RunApp(cfg config.GPU, app workloads.App) (*stats.Run, error) {
	cfg = DeviceFor(cfg, app)
	return runAppRaw(cfg, app)
}

func runAppRaw(cfg config.GPU, app workloads.App) (*stats.Run, error) {
	g, err := gpu.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := g.RunKernels(app.Kernels, 0); err != nil {
		return nil, fmt.Errorf("%s on %s: %w", app.Name, cfg.Name, err)
	}
	return g.Run(), nil
}

// newTracedGPU builds a device with the Fig. 14 per-cycle register-read
// trace armed on SM 0.
func newTracedGPU(cfg config.GPU) (*gpu.GPU, error) {
	g, err := gpu.New(cfg)
	if err != nil {
		return nil, err
	}
	g.TraceReads(true)
	return g, nil
}

// RunKernelOn simulates a single standalone kernel (microbenchmarks).
func RunKernelOn(cfg config.GPU, k *gpu.Kernel) (*stats.Run, error) {
	g, err := gpu.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := g.RunKernel(k, 0); err != nil {
		return nil, err
	}
	return g.Run(), nil
}

// job is one (application, configuration) cell of a sweep.
type job struct {
	app int
	cfg int
}

// Sweep simulates every app on every configuration in parallel and
// returns cycles[app][cfg]. Any failure aborts with its error.
func Sweep(cfgs []config.GPU, apps []workloads.App) ([][]int64, error) {
	cycles := make([][]int64, len(apps))
	for i := range cycles {
		cycles[i] = make([]int64, len(cfgs))
	}
	runs, err := SweepRuns(cfgs, apps)
	if err != nil {
		return nil, err
	}
	for i := range apps {
		for j := range cfgs {
			cycles[i][j] = runs[i][j].Cycles
		}
	}
	return cycles, nil
}

// SweepRuns is Sweep keeping the full per-run statistics.
func SweepRuns(cfgs []config.GPU, apps []workloads.App) ([][]*stats.Run, error) {
	out := make([][]*stats.Run, len(apps))
	for i := range out {
		out[i] = make([]*stats.Run, len(cfgs))
	}
	jobs := make(chan job)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(apps)*len(cfgs) {
		workers = len(apps) * len(cfgs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				r, err := RunApp(cfgs[j.cfg], apps[j.app])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				out[j.app][j.cfg] = r
			}
		}()
	}
	for a := range apps {
		for c := range cfgs {
			jobs <- job{app: a, cfg: c}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Speedup converts (baseline, variant) cycle counts to a speedup factor.
func Speedup(base, variant int64) float64 {
	if variant == 0 {
		return 0
	}
	return float64(base) / float64(variant)
}
