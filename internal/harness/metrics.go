package harness

import (
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// sweepMetrics bundles the harness's registered telemetry handles. A
// nil *sweepMetrics is the disabled state; every use site guards on it
// (the same nil-guard contract simlint's traceguard analyzer enforces
// for trace emission).
type sweepMetrics struct {
	reg *metrics.Registry

	cellsTotal   *metrics.Gauge
	cellsDone    *metrics.Counter
	cellsResumed *metrics.Counter
	retries      *metrics.Counter
	ckptWrites   *metrics.Counter
	snapWrites   *metrics.Counter
	snapResumes  *metrics.Counter
	faults       [numFaultKinds]*metrics.Counter
	cpi          [stats.NumCPIComponents]*metrics.Counter
	cellIPC      *metrics.Histogram
}

// newSweepMetrics registers the harness metric families on reg; nil reg
// yields nil (telemetry off).
func newSweepMetrics(reg *metrics.Registry) *sweepMetrics {
	if reg == nil {
		return nil
	}
	m := &sweepMetrics{reg: reg}
	m.cellsTotal = reg.Gauge("sweep_cells_total",
		"cells (application x configuration) in the sweep matrix")
	m.cellsDone = reg.Counter("sweep_cells_completed_total",
		"cells simulated to completion this run")
	m.cellsResumed = reg.Counter("sweep_cells_resumed_total",
		"cells restored from the checkpoint instead of re-simulated")
	m.retries = reg.Counter("sweep_retries_total",
		"deadline-killed cells re-run once at a raised cycle cap")
	m.ckptWrites = reg.Counter("sweep_checkpoint_writes_total",
		"cells appended to the JSONL checkpoint")
	m.snapWrites = reg.Counter("sweep_snapshot_writes_total",
		"mid-kernel device snapshot frames persisted")
	m.snapResumes = reg.Counter("sweep_snapshot_resumes_total",
		"cells resumed mid-kernel from a snapshot frame")
	for k := FaultKind(0); k < numFaultKinds; k++ {
		m.faults[k] = reg.Counter("sweep_faults_total",
			"faulted cells by fault kind", metrics.L("kind", k.String()))
	}
	for c := stats.CPIComponent(0); c < stats.NumCPIComponents; c++ {
		m.cpi[c] = reg.Counter("sim_cpi_cycles_total",
			"top-down CPI stack: sub-core cycles attributed to each cause, summed over completed cells",
			metrics.L("component", c.String()))
	}
	m.cellIPC = reg.Histogram("sweep_cell_ipc",
		"distribution of per-cell device IPC over completed cells",
		[]float64{0.25, 0.5, 1, 2, 4, 8, 16})
	return m
}

// watchCell registers (or re-points, on retry) the cell's live-progress
// gauge at its monitor: the gauge reads the last heartbeat cycle at
// scrape time, so a hung cell is visible as a stalled value.
func (m *sweepMetrics) watchCell(app, cfgName string, mon *gpu.Monitor) {
	if m == nil {
		return
	}
	m.reg.GaugeFunc("sweep_cell_heartbeat_cycle",
		"last monitor heartbeat cycle per live cell (stalled value = hung cell)",
		func() float64 { return float64(mon.Cycle()) },
		metrics.L("app", app), metrics.L("config", cfgName))
}

// cellDone accounts one successfully completed cell: the completion
// counter, its IPC observation, and its CPI stack folded into the
// device-wide attribution totals.
func (m *sweepMetrics) cellDone(run *stats.Run) {
	if m == nil {
		return
	}
	m.cellsDone.Inc()
	m.cellIPC.Observe(run.IPC())
	st := run.CPIStack()
	for c, v := range st {
		m.cpi[c].Add(v)
	}
}

// cellFaulted accounts one terminally faulted cell by kind.
func (m *sweepMetrics) cellFaulted(k FaultKind) {
	if m == nil {
		return
	}
	m.faults[k].Inc()
}

// retried accounts one bounded deadline retry.
func (m *sweepMetrics) retried() {
	if m == nil {
		return
	}
	m.retries.Inc()
}

// checkpointWrote accounts one checkpoint append.
func (m *sweepMetrics) checkpointWrote() {
	if m == nil {
		return
	}
	m.ckptWrites.Inc()
}

// snapshotWrote accounts one persisted snapshot frame.
func (m *sweepMetrics) snapshotWrote() {
	if m == nil {
		return
	}
	m.snapWrites.Inc()
}

// snapshotResumed accounts one cell continued from a snapshot frame.
func (m *sweepMetrics) snapshotResumed() {
	if m == nil {
		return
	}
	m.snapResumes.Inc()
}

// sweepShape publishes the matrix size and resumed-cell count.
func (m *sweepMetrics) sweepShape(total, resumed int) {
	if m == nil {
		return
	}
	m.cellsTotal.Set(float64(total))
	m.cellsResumed.Add(int64(resumed))
}
