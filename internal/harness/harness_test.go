package harness

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/workloads"
)

// testApp builds a small deterministic FMA workload (milliseconds on the
// one-SM test config).
func testApp(name string, iters int) workloads.App {
	p := workloads.Profile{
		Name: name, Blocks: 2, WarpsPerBlock: 4, RegsPerThread: 8,
		Iters: iters, ILP: 2, FMAs: 4,
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return workloads.App{Name: name, Suite: "test", Kernels: []*gpu.Kernel{p.Kernel()}}
}

func testCfg(name string) config.GPU {
	g := config.VoltaV100()
	g.NumSMs = 1
	g.Name = name
	return g
}

func TestRunOneSuccess(t *testing.T) {
	run, fault := RunOne(context.Background(), testCfg("base"), testApp("ok", 200), Options{
		Timeout:          time.Minute,
		WatchdogInterval: time.Second,
	})
	if fault != nil {
		t.Fatalf("unexpected fault: %v", fault)
	}
	if run == nil || run.Cycles == 0 {
		t.Fatalf("run = %+v, want non-empty statistics", run)
	}
}

func TestRunArgValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, nil, nil, []workloads.App{testApp("a", 10)}, Options{}); err == nil {
		t.Error("empty config list must error")
	}
	if _, err := Run(ctx, []config.GPU{testCfg("c")}, []string{"a", "b"}, []workloads.App{testApp("a", 10)}, Options{}); err == nil {
		t.Error("mismatched names length must error")
	}
}

// The wall-clock timeout kills a cell that simulates too long, and the
// fault records the kind and the budget.
func TestTimeoutKill(t *testing.T) {
	run, fault := RunOne(context.Background(), testCfg("base"), testApp("slow", 2_000_000), Options{
		Timeout: 5 * time.Millisecond,
	})
	if run != nil || fault == nil {
		t.Fatalf("run=%v fault=%v, want a timeout fault", run, fault)
	}
	if fault.Kind != FaultTimeout {
		t.Fatalf("fault kind = %v, want timeout (%v)", fault.Kind, fault)
	}
	if fault.Cycle == 0 {
		t.Error("timeout fault lost the last heartbeat cycle")
	}
	if !strings.Contains(fault.Error(), "wall clock") {
		t.Errorf("fault text %q does not explain the wall-clock kill", fault.Error())
	}
}

// The watchdog kills a cell whose heartbeat stops advancing (injected
// hang), classifying it separately from a timeout.
func TestWatchdogKill(t *testing.T) {
	cfg, app := testCfg("base"), testApp("hung", 100)
	run, fault := RunOne(context.Background(), cfg, app, Options{
		WatchdogInterval: 20 * time.Millisecond,
		Injector:         InjectFault(map[string]Injection{"hung/base": InjectHang}),
	})
	if run != nil || fault == nil {
		t.Fatalf("run=%v fault=%v, want a watchdog fault", run, fault)
	}
	if fault.Kind != FaultWatchdog {
		t.Fatalf("fault kind = %v, want watchdog (%v)", fault.Kind, fault)
	}
	if !strings.Contains(fault.Error(), "no forward progress") {
		t.Errorf("fault text %q does not explain the stall", fault.Error())
	}
}

// A canceled context stops the cell and classifies the fault as
// cancellation, not an error of the cell's own.
func TestContextCancelKill(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	run, fault := RunOne(ctx, testCfg("base"), testApp("canceled", 500_000), Options{})
	if run != nil || fault == nil {
		t.Fatalf("run=%v fault=%v, want a cancel fault", run, fault)
	}
	if fault.Kind != FaultCanceled {
		t.Fatalf("fault kind = %v (%v), want canceled", fault.Kind, fault)
	}
}

// A deadline-killed cell is retried once at a raised cap; if the raise is
// enough, the sweep sees a clean run.
func TestDeadlineRetrySucceeds(t *testing.T) {
	cfg, app := testCfg("base"), testApp("capped", 200)
	ref, fault := RunOne(context.Background(), cfg, app, Options{})
	if fault != nil {
		t.Fatal(fault)
	}
	var logs []string
	run, fault := RunOne(context.Background(), cfg, app, Options{
		MaxCycles: ref.Cycles / 2, // first attempt must die on the cap
		Logf:      func(f string, args ...any) { logs = append(logs, fmt.Sprintf(f, args...)) },
	})
	if fault != nil {
		t.Fatalf("retry at %dx cap should have completed the cell: %v", DefaultRetryFactor, fault)
	}
	if run.Cycles != ref.Cycles {
		t.Errorf("retried run = %d cycles, want %d (same simulation)", run.Cycles, ref.Cycles)
	}
	if len(logs) == 0 || !strings.Contains(strings.Join(logs, "\n"), "retrying once") {
		t.Errorf("retry was not logged: %q", logs)
	}
}

// With the retry disabled (RetryFactor < 0) the deadline fault surfaces
// directly; with a too-small factor the fault is marked Retried.
func TestDeadlineRetryBounds(t *testing.T) {
	cfg, app := testCfg("base"), testApp("capped", 2000)

	_, fault := RunOne(context.Background(), cfg, app, Options{MaxCycles: 64, RetryFactor: -1})
	if fault == nil || fault.Kind != FaultDeadline || fault.Retried {
		t.Fatalf("fault = %v, want un-retried deadline", fault)
	}
	var cle *gpu.CycleLimitError
	if !errors.As(fault, &cle) {
		t.Fatalf("deadline fault must unwrap to *gpu.CycleLimitError, got %v", fault)
	}

	_, fault = RunOne(context.Background(), cfg, app, Options{MaxCycles: 64, RetryFactor: 2})
	if fault == nil || fault.Kind != FaultDeadline || !fault.Retried {
		t.Fatalf("fault = %v, want deadline marked Retried", fault)
	}
}

func TestGuard(t *testing.T) {
	if err := Guard("ok", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("boom")
	if err := Guard("err", func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("Guard rewrote an ordinary error: %v", err)
	}
	err := Guard("panics", func() error { panic("invariant violated") })
	var f *SimFault
	if !errors.As(err, &f) {
		t.Fatalf("want *SimFault, got %T (%v)", err, err)
	}
	if f.Kind != FaultPanic || f.App != "panics" || len(f.Stack) == 0 {
		t.Errorf("fault = %+v, want a named panic fault with a stack", f)
	}
}

func TestCellErrorsErr(t *testing.T) {
	if err := (CellErrors{}).Err(); err != nil {
		t.Fatalf("empty CellErrors must aggregate to nil, got %v", err)
	}
	e := CellErrors{}
	for i := 0; i < 5; i++ {
		e[Cell{App: i, Cfg: 0}] = fmt.Errorf("fault %d", i)
	}
	msg := e.Err().Error()
	if !strings.Contains(msg, "5 sweep cell(s)") || !strings.Contains(msg, "and 2 more") {
		t.Errorf("aggregate message %q missing count or truncation note", msg)
	}
	if !strings.Contains(msg, "fault 0") {
		t.Errorf("aggregate message %q lost the first fault", msg)
	}
}

// TestChaosSweep is the end-to-end proof of all four pillars: a sweep
// with one injected panic, one injected hang, and one injected error
// completes, reports exactly those three cells as structured faults with
// the right classifications and diagnostics, and a re-run against the
// same checkpoint re-executes only the three faulted cells.
func TestChaosSweep(t *testing.T) {
	cfgs := []config.GPU{testCfg("cfgA"), testCfg("cfgB")}
	apps := []workloads.App{testApp("app0", 300), testApp("app1", 300), testApp("app2", 300)}
	dir := t.TempDir()
	opt := Options{
		Workers:          4,
		WatchdogInterval: 50 * time.Millisecond,
		CheckpointPath:   filepath.Join(dir, "chaos.ckpt"),
		DiagDir:          filepath.Join(dir, "diag"),
		Injector: InjectFault(map[string]Injection{
			"app0/cfgA": InjectPanic,
			"app1/cfgB": InjectHang,
			"app2/cfgA": InjectError,
		}),
		Logf: t.Logf,
	}

	res, err := Run(context.Background(), cfgs, nil, apps, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 6 || res.Resumed != 0 {
		t.Fatalf("executed %d, resumed %d; want 6, 0", res.Executed, res.Resumed)
	}
	if len(res.Faults) != 3 || res.Complete() {
		t.Fatalf("got %d faults (complete=%v), want exactly the 3 injected", len(res.Faults), res.Complete())
	}
	want := map[string]FaultKind{
		"app0/cfgA": FaultPanic,
		"app1/cfgB": FaultWatchdog,
		"app2/cfgA": FaultError,
	}
	for _, f := range res.Faults {
		key := f.App + "/" + f.Config
		kind, ok := want[key]
		if !ok {
			t.Errorf("unexpected faulted cell %s: %v", key, f)
			continue
		}
		delete(want, key)
		if f.Kind != kind {
			t.Errorf("%s fault kind = %v, want %v", key, f.Kind, kind)
		}
	}
	for key := range want {
		t.Errorf("injected fault in %s was not reported", key)
	}
	// Faulted cells are nil in the matrix and recorded in Errs; healthy
	// cells have runs.
	for i, app := range apps {
		for j, cfg := range cfgs {
			_, inErrs := res.Errs[Cell{App: i, Cfg: j}]
			if (res.Runs[i][j] == nil) != inErrs {
				t.Errorf("cell %s/%s: run nil=%v but errs recorded=%v",
					app.Name, cfg.Name, res.Runs[i][j] == nil, inErrs)
			}
		}
	}
	// The panic and watchdog cells wrote flight-recorder diagnostics.
	for _, f := range res.Faults {
		if f.Kind == FaultError {
			continue // injected before the cell starts; nothing to record
		}
		if f.DumpPath == "" {
			t.Errorf("%s on %s: no diagnostics dump", f.App, f.Config)
			continue
		}
		if _, err := os.Stat(f.DumpPath); err != nil {
			t.Errorf("dump %s: %v", f.DumpPath, err)
		}
	}

	// Resume: the same injector instance has already fired, so the three
	// faulted cells now run clean — and only they run.
	res2, err := Run(context.Background(), cfgs, nil, apps, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != 3 || res2.Executed != 3 {
		t.Fatalf("resume: resumed %d, executed %d; want 3, 3", res2.Resumed, res2.Executed)
	}
	if !res2.Complete() {
		t.Fatalf("resume left faults: %v", res2.Errs.Err())
	}

	// A third run restores everything from the checkpoint and simulates
	// nothing.
	res3, err := Run(context.Background(), cfgs, nil, apps, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Resumed != 6 || res3.Executed != 0 || !res3.Complete() {
		t.Fatalf("full resume: resumed %d, executed %d, complete %v; want 6, 0, true",
			res3.Resumed, res3.Executed, res3.Complete())
	}
}

// The two benchmarks quantify the harness tax on an un-faulted cell
// (supervisor goroutine + monitor heartbeat). The acceptance bar is <2%
// over the direct loop.
func BenchmarkCellDirect(b *testing.B) {
	cfg, app := testCfg("bench"), testApp("bench", 2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := gpu.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := g.RunKernels(app.Kernels, 0); err != nil {
			b.Fatal(err)
		}
		g.Run()
	}
}

func BenchmarkCellHarness(b *testing.B) {
	cfg, app := testCfg("bench"), testApp("bench", 2000)
	opt := Options{Timeout: time.Minute, WatchdogInterval: time.Second}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if run, fault := RunOne(ctx, cfg, app, opt); fault != nil || run == nil {
			b.Fatal(fault)
		}
	}
}
