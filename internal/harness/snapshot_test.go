package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

func runStatsJSON(t *testing.T, r any) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// A canceled cell writes a final snapshot frame on its last heartbeat,
// and a restarted run with ResumeSnapshots continues mid-kernel to the
// exact statistics an uninterrupted run produces. This is the SIGTERM
// drain path end to end: signal → context cancel → final frame →
// restart → resume.
func TestCanceledCellResumesFromFinalSnapshot(t *testing.T) {
	cfg, app := testCfg("base"), testApp("snap", 500_000)
	dir := t.TempDir()

	golden, fault := RunOne(context.Background(), cfg, app, Options{})
	if fault != nil {
		t.Fatal(fault)
	}
	want := runStatsJSON(t, golden)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reg := metrics.New()
	run, fault := RunOne(ctx, cfg, app, Options{
		SnapshotDir: dir,
		Metrics:     reg,
		Logf:        t.Logf,
	})
	if run != nil || fault == nil || fault.Kind != FaultCanceled {
		t.Fatalf("run=%v fault=%v, want a canceled fault", run, fault)
	}
	snapFile := snapPath(dir, app.Name, cfg.Name)
	if _, err := os.Stat(snapFile); err != nil {
		t.Fatalf("canceled cell left no final snapshot frame: %v", err)
	}

	run, fault = RunOne(context.Background(), cfg, app, Options{
		SnapshotDir:     dir,
		ResumeSnapshots: true,
		Metrics:         reg,
		Logf:            t.Logf,
	})
	if fault != nil {
		t.Fatalf("resumed cell faulted: %v", fault)
	}
	if got := runStatsJSON(t, run); got != want {
		t.Fatalf("resumed run diverged from uninterrupted run\nwant %s\ngot  %s", want, got)
	}
	m := newSweepMetrics(reg)
	if got := m.snapResumes.Value(); got != 1 {
		t.Errorf("sweep_snapshot_resumes_total = %d, want 1", got)
	}
	if m.snapWrites.Value() == 0 {
		t.Error("sweep_snapshot_writes_total = 0 after a final frame was written")
	}
	if _, err := os.Stat(snapFile); !os.IsNotExist(err) {
		t.Errorf("completed cell did not discard its snapshot frame: %v", err)
	}
}

// Periodic cycle-interval snapshots are written during a healthy run and
// discarded on completion, leaving the snapshot directory empty.
func TestPeriodicSnapshotsWrittenAndDiscarded(t *testing.T) {
	cfg, app := testCfg("base"), testApp("periodic", 20_000)
	dir := t.TempDir()
	reg := metrics.New()
	run, fault := RunOne(context.Background(), cfg, app, Options{
		SnapshotDir:      dir,
		SnapshotInterval: 2048,
		Metrics:          reg,
	})
	if fault != nil || run == nil {
		t.Fatalf("run=%v fault=%v", run, fault)
	}
	m := newSweepMetrics(reg)
	if m.snapWrites.Value() == 0 {
		t.Error("no periodic snapshot frames written")
	}
	left, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("snapshot dir not cleaned after success: %v", left)
	}
}

// An unreadable snapshot frame must not wedge the cell: the harness
// discards it, logs the fallback, and re-simulates from cycle zero with
// identical results.
func TestCorruptSnapshotFallsBackFresh(t *testing.T) {
	cfg, app := testCfg("base"), testApp("fallback", 5_000)
	dir := t.TempDir()

	golden, fault := RunOne(context.Background(), cfg, app, Options{})
	if fault != nil {
		t.Fatal(fault)
	}

	if err := os.WriteFile(snapPath(dir, app.Name, cfg.Name), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	var logs []string
	run, fault := RunOne(context.Background(), cfg, app, Options{
		SnapshotDir:     dir,
		ResumeSnapshots: true,
		Logf:            func(f string, args ...any) { logs = append(logs, fmt.Sprintf(f, args...)) },
	})
	if fault != nil {
		t.Fatalf("fresh fallback faulted: %v", fault)
	}
	if got, want := runStatsJSON(t, run), runStatsJSON(t, golden); got != want {
		t.Fatal("fresh fallback diverged from a plain run")
	}
	if !strings.Contains(strings.Join(logs, "\n"), "snapshot unusable") {
		t.Errorf("fallback was not logged: %q", logs)
	}
}

// An injected mid-kernel corruption surfaces as a structured FaultAudit
// carrying the *gpu.AuditError, not as silent bad statistics.
func TestInjectCorruptBecomesAuditFault(t *testing.T) {
	cfg, app := testCfg("base"), testApp("corrupt", 20_000)
	reg := metrics.New()
	run, fault := RunOne(context.Background(), cfg, app, Options{
		Metrics:  reg,
		Injector: InjectFault(map[string]Injection{"corrupt/base": InjectCorrupt}),
		Logf:     t.Logf,
	})
	if run != nil || fault == nil {
		t.Fatalf("run=%v fault=%v, want an audit fault", run, fault)
	}
	if fault.Kind != FaultAudit {
		t.Fatalf("fault kind = %v, want audit (%v)", fault.Kind, fault)
	}
	var ae *gpu.AuditError
	if !errors.As(fault, &ae) {
		t.Fatalf("audit fault must unwrap to *gpu.AuditError, got %v", fault)
	}
	if len(ae.Violations) == 0 || ae.Cycle == 0 {
		t.Fatalf("audit error lost its evidence: %+v", ae)
	}
	if fault.Cycle != ae.Cycle {
		t.Errorf("fault cycle %d != audit cycle %d", fault.Cycle, ae.Cycle)
	}
	m := newSweepMetrics(reg)
	if got := m.faults[FaultAudit].Value(); got != 1 {
		t.Errorf("sweep_faults_total{kind=audit} = %d, want 1", got)
	}
}

// A sweep with snapshots armed behaves identically to one without: the
// chaos injections (including state corruption) classify correctly, the
// healthy cells complete, and the injector's one-shot semantics mean a
// re-run with ResumeSnapshots heals every fault — resuming the corrupt
// cell's clean frame where one was left, or restarting fresh.
func TestChaosSweepWithSnapshots(t *testing.T) {
	cfgs := []config.GPU{testCfg("cfgA"), testCfg("cfgB")}
	apps := []workloads.App{testApp("app0", 20_000), testApp("app1", 20_000)}
	dir := t.TempDir()
	// These cells run long enough (20k cycles each, 4 workers) that on a
	// small or loaded machine the race detector's slowdown can starve a
	// healthy cell past a tight forward-progress deadline; widen it so
	// only the injected hang ever trips the watchdog.
	wd := 50 * time.Millisecond
	if raceEnabled {
		wd = time.Second
	}
	opt := Options{
		Workers:          4,
		WatchdogInterval: wd,
		SnapshotDir:      filepath.Join(dir, "snaps"),
		SnapshotInterval: 2048,
		ResumeSnapshots:  true,
		CheckpointPath:   filepath.Join(dir, "chaos.ckpt"),
		Injector: InjectFault(map[string]Injection{
			"app0/cfgA": InjectCorrupt,
			"app1/cfgB": InjectHang,
		}),
		Logf: t.Logf,
	}

	res, err := Run(context.Background(), cfgs, nil, apps, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) != 2 {
		t.Fatalf("got %d faults, want the 2 injected: %v", len(res.Faults), res.Faults)
	}
	kinds := map[string]FaultKind{}
	for _, f := range res.Faults {
		kinds[f.App+"/"+f.Config] = f.Kind
	}
	if kinds["app0/cfgA"] != FaultAudit {
		t.Errorf("corrupt cell fault = %v, want audit", kinds["app0/cfgA"])
	}
	if kinds["app1/cfgB"] != FaultWatchdog {
		t.Errorf("hung cell fault = %v, want watchdog", kinds["app1/cfgB"])
	}

	// Second pass: injections are spent, so the faulted cells run clean
	// and the whole matrix completes.
	res2, err := Run(context.Background(), cfgs, nil, apps, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Complete() {
		t.Fatalf("resume left faults: %v", res2.Errs.Err())
	}
	if res2.Resumed != 2 || res2.Executed != 2 {
		t.Errorf("resume: resumed %d, executed %d; want 2, 2", res2.Resumed, res2.Executed)
	}
	// Completed cells discard their frames; nothing lingers.
	left, err := filepath.Glob(filepath.Join(dir, "snaps", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("snapshot frames left after a complete sweep: %v", left)
	}
}
