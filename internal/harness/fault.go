package harness

import (
	"fmt"
	"sort"
	"strings"
)

// FaultKind classifies how a sweep cell failed.
type FaultKind uint8

const (
	// FaultPanic: the simulator panicked (an invariant violation in the
	// model, e.g. regfile/subcore/sm consistency checks).
	FaultPanic FaultKind = iota
	// FaultError: the cell returned an ordinary error (bad kernel,
	// invalid configuration, injected error).
	FaultError
	// FaultDeadline: the cell hit its simulated-cycle cap, including the
	// bounded retry at a raised cap.
	FaultDeadline
	// FaultWatchdog: the forward-progress watchdog observed a stalled
	// heartbeat (livelocked or hung cell) and killed it.
	FaultWatchdog
	// FaultTimeout: the cell exceeded its wall-clock budget.
	FaultTimeout
	// FaultCanceled: the surrounding context was canceled (shutdown).
	FaultCanceled
	// FaultAudit: the runtime invariant auditor (config.AuditEvery) found
	// broken conservation laws — the simulation state is corrupt and its
	// statistics cannot be trusted (*gpu.AuditError carries the
	// violations).
	FaultAudit

	numFaultKinds
)

var faultKindNames = [numFaultKinds]string{
	"panic", "error", "deadline", "watchdog", "timeout", "canceled", "audit",
}

// String names the fault kind.
func (k FaultKind) String() string {
	if int(k) < len(faultKindNames) {
		return faultKindNames[k]
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// SimFault is the structured record of one failed sweep cell. It
// implements error so it can travel through ordinary error returns while
// keeping the cell identity, fault class, simulation progress, panic
// stack, and the flight-recorder dump location.
type SimFault struct {
	// App and Config identify the sweep cell.
	App, Config string
	// Kind classifies the failure.
	Kind FaultKind
	// Cycle is the last simulation cycle the cell reported (its final
	// heartbeat; 0 if it never started simulating).
	Cycle int64
	// Err is the underlying error for non-panic faults.
	Err error
	// PanicValue and Stack capture a recovered panic.
	PanicValue any
	Stack      []byte
	// DumpPath is the flight-recorder diagnostics file written for this
	// fault ("" when diagnostics were not armed).
	DumpPath string
	// Retried reports the cell was re-run once at a raised cycle cap
	// before being declared faulted.
	Retried bool
}

// Error implements error.
func (f *SimFault) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "harness: %s on %s: %s fault at cycle %d", f.App, f.Config, f.Kind, f.Cycle)
	switch {
	case f.Kind == FaultPanic:
		fmt.Fprintf(&b, ": panic: %v", f.PanicValue)
	case f.Err != nil:
		fmt.Fprintf(&b, ": %v", f.Err)
	}
	if f.Retried {
		b.WriteString(" (after retry at raised cycle cap)")
	}
	if f.DumpPath != "" {
		fmt.Fprintf(&b, " [diagnostics: %s]", f.DumpPath)
	}
	return b.String()
}

// Unwrap exposes the underlying error to errors.Is/As chains.
func (f *SimFault) Unwrap() error { return f.Err }

// Cell identifies one (application, configuration) cell of a sweep by
// index.
type Cell struct {
	App, Cfg int
}

// CellErrors maps faulted cells to their faults. Callers that need every
// cell must check it before dereferencing the result matrix; a cell
// absent from the map has a non-nil run.
type CellErrors map[Cell]error

// Err aggregates the per-cell errors into one summary error, nil when
// the map is empty.
func (e CellErrors) Err() error {
	if len(e) == 0 {
		return nil
	}
	cells := make([]Cell, 0, len(e))
	//simlint:allow determinism -- keys are collected then sorted before any ordered use
	for c := range e {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].App != cells[j].App {
			return cells[i].App < cells[j].App
		}
		return cells[i].Cfg < cells[j].Cfg
	})
	var b strings.Builder
	fmt.Fprintf(&b, "harness: %d sweep cell(s) faulted:", len(e))
	for i, c := range cells {
		if i == 3 {
			fmt.Fprintf(&b, " (and %d more)", len(cells)-i)
			break
		}
		fmt.Fprintf(&b, "\n  %v", e[c])
	}
	return fmt.Errorf("%s", b.String())
}
