package harness

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

// TestChaosSweepMetrics re-runs the chaos scenario with telemetry
// attached and asserts the harness's counters: faults by kind, completed
// cells, checkpoint writes, and resumed cells across a resume cycle.
// Registration is idempotent, so a second newSweepMetrics on the same
// registry hands back the same series to read from.
func TestChaosSweepMetrics(t *testing.T) {
	cfgs := []config.GPU{testCfg("cfgA"), testCfg("cfgB")}
	apps := []workloads.App{testApp("app0", 300), testApp("app1", 300), testApp("app2", 300)}
	reg := metrics.New()
	opt := Options{
		Workers:          4,
		WatchdogInterval: 50 * time.Millisecond,
		CheckpointPath:   filepath.Join(t.TempDir(), "chaos.ckpt"),
		Metrics:          reg,
		Injector: InjectFault(map[string]Injection{
			"app0/cfgA": InjectPanic,
			"app1/cfgB": InjectHang,
			"app2/cfgA": InjectError,
		}),
		Logf: t.Logf,
	}

	res, err := Run(context.Background(), cfgs, nil, apps, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) != 3 {
		t.Fatalf("got %d faults, want 3", len(res.Faults))
	}
	m := newSweepMetrics(reg)
	if got := m.cellsTotal.Value(); got != 6 {
		t.Errorf("sweep_cells_total = %v, want 6", got)
	}
	if got := m.cellsDone.Value(); got != 3 {
		t.Errorf("sweep_cells_completed_total = %d, want 3", got)
	}
	wantFaults := map[FaultKind]int64{FaultPanic: 1, FaultWatchdog: 1, FaultError: 1}
	for k := FaultKind(0); k < numFaultKinds; k++ {
		if got := m.faults[k].Value(); got != wantFaults[k] {
			t.Errorf("sweep_faults_total{kind=%q} = %d, want %d", k, got, wantFaults[k])
		}
	}
	if got := m.ckptWrites.Value(); got != 3 {
		t.Errorf("sweep_checkpoint_writes_total = %d, want 3", got)
	}
	if got := m.cellsResumed.Value(); got != 0 {
		t.Errorf("sweep_cells_resumed_total = %d, want 0", got)
	}
	if got := m.cellIPC.Count(); got != 3 {
		t.Errorf("sweep_cell_ipc count = %d, want 3", got)
	}
	// Completed cells folded their CPI stacks into the device totals;
	// every completed cell attributed at least its issue cycles.
	var cpiTotal int64
	for _, c := range m.cpi {
		cpiTotal += c.Value()
	}
	if cpiTotal == 0 || m.cpi[0].Value() == 0 {
		t.Errorf("sim_cpi_cycles_total empty after 3 completed cells (total %d)", cpiTotal)
	}

	// Resume: the injector already fired, so the 3 faulted cells run
	// clean. Counters accumulate on the same registry.
	res2, err := Run(context.Background(), cfgs, nil, apps, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Complete() || res2.Resumed != 3 {
		t.Fatalf("resume: complete=%v resumed=%d", res2.Complete(), res2.Resumed)
	}
	if got := m.cellsDone.Value(); got != 6 {
		t.Errorf("after resume: completed = %d, want 6", got)
	}
	if got := m.cellsResumed.Value(); got != 3 {
		t.Errorf("after resume: resumed = %d, want 3", got)
	}
}

// TestRetryMetric: a deadline-killed-then-retried cell increments
// sweep_retries_total exactly once.
func TestRetryMetric(t *testing.T) {
	cfg, app := testCfg("base"), testApp("capped", 200)
	ref, fault := RunOne(context.Background(), cfg, app, Options{})
	if fault != nil {
		t.Fatal(fault)
	}
	reg := metrics.New()
	if _, fault := RunOne(context.Background(), cfg, app, Options{
		MaxCycles: ref.Cycles / 2,
		Metrics:   reg,
	}); fault != nil {
		t.Fatal(fault)
	}
	m := newSweepMetrics(reg)
	if got := m.retries.Value(); got != 1 {
		t.Errorf("sweep_retries_total = %d, want 1", got)
	}
	if got := m.cellsDone.Value(); got != 1 {
		t.Errorf("sweep_cells_completed_total = %d, want 1", got)
	}
}

// TestSweepMetricsDeterminism: two identical sweeps on fresh registries
// must produce byte-identical /metrics and /debug/vars scrapes — the
// contract that keeps telemetry out of the determinism suite's way.
// Wall-clock values never enter the registry (they live on Result.Wall).
func TestSweepMetricsDeterminism(t *testing.T) {
	scrape := func() (string, string) {
		reg := metrics.New()
		cfgs := []config.GPU{testCfg("cfgA"), testCfg("cfgB")}
		apps := []workloads.App{testApp("app0", 300), testApp("app1", 500)}
		res, err := Run(context.Background(), cfgs, nil, apps, Options{
			Workers: 4,
			Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete() {
			t.Fatal("sweep faulted")
		}
		var prom, vars bytes.Buffer
		if err := reg.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		if err := reg.WriteJSON(&vars); err != nil {
			t.Fatal(err)
		}
		return prom.String(), vars.String()
	}
	p1, v1 := scrape()
	p2, v2 := scrape()
	if p1 != p2 {
		t.Errorf("Prometheus scrapes differ:\n--- run1 ---\n%s\n--- run2 ---\n%s", p1, p2)
	}
	if v1 != v2 {
		t.Errorf("JSON scrapes differ:\n--- run1 ---\n%s\n--- run2 ---\n%s", v1, v2)
	}
	if p1 == "" || v1 == "" {
		t.Error("scrapes are empty")
	}
}
