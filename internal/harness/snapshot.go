package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/gpu"
)

// Cell snapshotting (docs/ROBUSTNESS.md): when Options.SnapshotDir is
// set, each cell periodically persists its full mid-kernel device state
// (gpu.WriteSnapshot) to <dir>/<app>__<config>.snap, and writes a final
// frame on the heartbeat that observes a cancellation — so a SIGTERM'd,
// watchdog-killed, or timed-out sweep can be restarted with
// Options.ResumeSnapshots and each interrupted cell continues from its
// last frame instead of re-simulating from cycle zero. Snapshot resume
// is exact: the restored run's statistics are byte-identical to an
// uninterrupted run (gpu's TestSnapshotResumeInert), so resuming never
// perturbs a study's numbers.
//
// Frames are written atomically (temp file + rename), so a kill -9 in
// the middle of a snapshot write leaves the previous intact frame, never
// a torn one. A cell that completes deletes its frame; a frame whose
// restore fails (version/config/workload drift, truncation) is deleted
// and the cell restarts fresh — a stale snapshot can slow a resume down
// but can never wedge or corrupt it.

// snapPath names a cell's snapshot file.
func snapPath(dir, app, cfgName string) string {
	return filepath.Join(dir, sanitize(app)+"__"+sanitize(cfgName)+".snap")
}

// cellSnapshotter is one cell's snapshot policy, driven from the gpu
// heartbeat hook. Not safe for concurrent use; each supervised attempt
// owns its instance.
type cellSnapshotter struct {
	path     string
	interval int64         // simulated-cycle period, 0 = no cycle policy
	wall     time.Duration // wall-clock period, 0 = no wall policy
	mon      *gpu.Monitor  // canceled monitor => write a final frame
	sm       *sweepMetrics
	logf     func(format string, args ...any)

	nextCycle int64
	lastWall  time.Time
	disabled  bool // set after a write failure; snapshots stop, the run continues
}

// newCellSnapshotter builds the attempt's snapshotter, nil when
// snapshotting is off.
func newCellSnapshotter(opt Options, app, cfgName string, mon *gpu.Monitor) *cellSnapshotter {
	if opt.SnapshotDir == "" {
		return nil
	}
	return &cellSnapshotter{
		path:     snapPath(opt.SnapshotDir, app, cfgName),
		interval: opt.SnapshotInterval,
		wall:     opt.SnapshotWall,
		mon:      mon,
		sm:       opt.sm,
		logf:     opt.logf,
		//simlint:allow determinism -- wall-interval snapshot pacing is deliberately wall-clock (kill-9 resilience); frame contents stay cycle-deterministic
		lastWall: time.Now(),
	}
}

// hook is the gpu heartbeat snapshot hook: write a frame when the cycle
// interval or wall-clock period has elapsed, and always when the cell is
// being canceled (the final frame a restart resumes from). Write
// failures disable further snapshots instead of killing a healthy
// simulation — losing resumability is strictly better than losing the
// cell.
func (c *cellSnapshotter) hook(g *gpu.GPU) error {
	if c.disabled {
		return nil
	}
	due := c.mon.Canceled()
	if !due && c.interval > 0 && g.Cycle() >= c.nextCycle {
		due = true
	}
	//simlint:allow determinism -- wall-interval snapshot pacing is deliberately wall-clock (kill-9 resilience); frame contents stay cycle-deterministic
	if !due && c.wall > 0 && time.Since(c.lastWall) >= c.wall {
		due = true
	}
	if !due {
		return nil
	}
	if err := c.write(g); err != nil {
		c.disabled = true
		c.logf("harness: snapshot %s failed at cycle %d (snapshots disabled for this cell): %v",
			c.path, g.Cycle(), err)
		return nil
	}
	c.nextCycle = g.Cycle() + c.interval
	//simlint:allow determinism -- wall-interval snapshot pacing is deliberately wall-clock (kill-9 resilience); frame contents stay cycle-deterministic
	c.lastWall = time.Now()
	c.sm.snapshotWrote()
	return nil
}

// write persists one frame atomically: the new frame replaces the old
// only after it is fully on disk.
func (c *cellSnapshotter) write(g *gpu.GPU) error {
	tmp := c.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := g.WriteSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, c.path)
}

// tryResume restores the device from the cell's snapshot file. Returns
// (false, nil) when no frame exists, (true, nil) on success, and an
// error when a frame exists but cannot be restored — the caller must
// then discard both the frame and the half-restored device.
func (c *cellSnapshotter) tryResume(g *gpu.GPU, ks []*gpu.Kernel) (bool, error) {
	f, err := os.Open(c.path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	defer f.Close()
	if err := g.Restore(f, ks); err != nil {
		return false, fmt.Errorf("restore %s: %w", c.path, err)
	}
	return true, nil
}

// discard removes the cell's frame (after success, or before a retry
// whose cycle cap differs from the one baked into the frame's deadline).
func (c *cellSnapshotter) discard() {
	if c == nil {
		return
	}
	os.Remove(c.path)
	os.Remove(c.path + ".tmp")
}
