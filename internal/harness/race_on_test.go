//go:build race

package harness

// raceEnabled lets timing-sensitive tests widen wall-clock deadlines:
// race instrumentation slows the simulation an order of magnitude, and
// a starved-but-healthy cell must not read as hung.
const raceEnabled = true
