//go:build !race

package harness

// raceEnabled lets timing-sensitive tests widen wall-clock deadlines;
// see race_on_test.go.
const raceEnabled = false
