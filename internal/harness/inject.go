package harness

import (
	"errors"
	"sync"
)

// Injection selects a fault to inject into a sweep cell — the chaos-test
// hook proving the harness contains each failure mode.
type Injection uint8

const (
	// InjectNone runs the cell normally.
	InjectNone Injection = iota
	// InjectPanic panics inside the cell, exercising panic isolation.
	InjectPanic
	// InjectHang blocks the cell without forward progress until a
	// supervisor kills it, exercising the watchdog.
	InjectHang
	// InjectError returns ErrInjected from the cell.
	InjectError
	// InjectCorrupt arms a mid-kernel scoreboard corruption inside the
	// cell's device (gpu.ArmCorruptionForTest) and forces the invariant
	// auditor on, exercising the corruption → FaultAudit path end to end.
	InjectCorrupt
)

// ErrInjected is the error an InjectError cell fails with.
var ErrInjected = errors.New("harness: injected fault")

// InjectorFunc decides, per (application, configuration) cell, whether
// to inject a fault. Test-only: production sweeps leave Options.Injector
// nil, which compiles the hook down to one nil check per cell.
type InjectorFunc func(app, config string) Injection

// InjectFault builds a concurrency-safe InjectorFunc that fires once per
// listed cell. Keys are "app/config" strings; repeated runs of the same
// cell (e.g. after a checkpoint resume) run clean, which is what the
// chaos test's resume pass relies on.
func InjectFault(cells map[string]Injection) InjectorFunc {
	var mu sync.Mutex
	armed := make(map[string]Injection, len(cells))
	for k, v := range cells {
		armed[k] = v
	}
	return func(app, config string) Injection {
		mu.Lock()
		defer mu.Unlock()
		key := app + "/" + config
		inj, ok := armed[key]
		if !ok {
			return InjectNone
		}
		delete(armed, key)
		return inj
	}
}
