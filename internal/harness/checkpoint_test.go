package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stats"
)

func ckptPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "sweep.ckpt")
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := ckptPath(t)
	w, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write("appA", "gto", &stats.Run{Cycles: 100, Instructions: 400}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write("appB", "rba", &stats.Run{Cycles: 200}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	done, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatalf("loaded %d cells, want 2", len(done))
	}
	a := done[ckptKey("appA", "gto")]
	if a == nil || a.Cycles != 100 || a.Instructions != 400 {
		t.Errorf("appA/gto = %+v, want Cycles=100 Instructions=400", a)
	}
	if b := done[ckptKey("appB", "rba")]; b == nil || b.Cycles != 200 {
		t.Errorf("appB/rba = %+v, want Cycles=200", b)
	}
}

func TestCheckpointMissingFile(t *testing.T) {
	done, err := loadCheckpoint(filepath.Join(t.TempDir(), "never-written.ckpt"))
	if err != nil {
		t.Fatalf("missing checkpoint must read as empty, got %v", err)
	}
	if len(done) != 0 {
		t.Fatalf("missing checkpoint loaded %d cells", len(done))
	}
}

// A crash mid-append leaves a torn final line; the loader must keep every
// record before it.
func TestCheckpointTornFinalLine(t *testing.T) {
	path := ckptPath(t)
	w, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write("appA", "gto", &stats.Run{Cycles: 100}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"app":"appB","config":"rba","run":{"Cyc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	done, err := loadCheckpoint(path)
	if err != nil {
		t.Fatalf("torn final line must be tolerated, got %v", err)
	}
	if len(done) != 1 || done[ckptKey("appA", "gto")] == nil {
		t.Fatalf("loaded %d cells, want just appA/gto", len(done))
	}
}

// A malformed line with records after it means the file is not an
// append-truncated checkpoint: refuse it rather than silently re-running
// cells.
func TestCheckpointCorruptMiddleLine(t *testing.T) {
	path := ckptPath(t)
	content := "not json at all\n" +
		`{"v":1,"app":"appA","config":"gto","run":{"Cycles":1}}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(path); err == nil {
		t.Fatal("corrupt non-final line must be an error")
	}
}

func TestCheckpointVersionMismatch(t *testing.T) {
	path := ckptPath(t)
	content := `{"v":99,"app":"appA","config":"gto","run":{"Cycles":1}}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := loadCheckpoint(path)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}

// A cell re-run after a fault appends a second record; resume must take
// the newest.
func TestCheckpointLastRecordWins(t *testing.T) {
	path := ckptPath(t)
	w, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write("appA", "gto", &stats.Run{Cycles: 100}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-open, as a resumed sweep would, and overwrite the cell.
	w, err = openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write("appA", "gto", &stats.Run{Cycles: 300}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	done, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := done[ckptKey("appA", "gto")]; got == nil || got.Cycles != 300 {
		t.Fatalf("resumed cell = %+v, want the newer record (Cycles=300)", got)
	}
}
