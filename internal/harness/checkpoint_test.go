package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stats"
)

func ckptPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "sweep.ckpt")
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := ckptPath(t)
	w, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write("appA", "gto", &stats.Run{Cycles: 100, Instructions: 400}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write("appB", "rba", &stats.Run{Cycles: 200}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	done, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatalf("loaded %d cells, want 2", len(done))
	}
	a := done[ckptKey("appA", "gto")]
	if a == nil || a.Cycles != 100 || a.Instructions != 400 {
		t.Errorf("appA/gto = %+v, want Cycles=100 Instructions=400", a)
	}
	if b := done[ckptKey("appB", "rba")]; b == nil || b.Cycles != 200 {
		t.Errorf("appB/rba = %+v, want Cycles=200", b)
	}
}

func TestCheckpointMissingFile(t *testing.T) {
	done, err := loadCheckpoint(filepath.Join(t.TempDir(), "never-written.ckpt"))
	if err != nil {
		t.Fatalf("missing checkpoint must read as empty, got %v", err)
	}
	if len(done) != 0 {
		t.Fatalf("missing checkpoint loaded %d cells", len(done))
	}
}

// A crash mid-append leaves a torn final line; the loader must keep every
// record before it.
func TestCheckpointTornFinalLine(t *testing.T) {
	path := ckptPath(t)
	w, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write("appA", "gto", &stats.Run{Cycles: 100}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"app":"appB","config":"rba","run":{"Cyc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	done, err := loadCheckpoint(path)
	if err != nil {
		t.Fatalf("torn final line must be tolerated, got %v", err)
	}
	if len(done) != 1 || done[ckptKey("appA", "gto")] == nil {
		t.Fatalf("loaded %d cells, want just appA/gto", len(done))
	}
}

// A malformed line with records after it means the file is not an
// append-truncated checkpoint: refuse it rather than silently re-running
// cells.
func TestCheckpointCorruptMiddleLine(t *testing.T) {
	path := ckptPath(t)
	content := "not json at all\n" +
		`{"v":1,"app":"appA","config":"gto","run":{"Cycles":1}}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(path); err == nil {
		t.Fatal("corrupt non-final line must be an error")
	}
}

func TestCheckpointVersionMismatch(t *testing.T) {
	path := ckptPath(t)
	content := `{"v":99,"app":"appA","config":"gto","run":{"Cycles":1}}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := loadCheckpoint(path)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}

// A crash mid-append leaves a torn final line; a later sweep that opens
// the same checkpoint and appends must not concatenate its first record
// onto the torn tail — that would corrupt both records and make the
// loader reject the whole file.
func TestCheckpointAppendAfterTornTail(t *testing.T) {
	path := ckptPath(t)
	w, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write("appA", "gto", &stats.Run{Cycles: 100}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: a partial record with no trailing newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"app":"appB","config":"rba","run":{"Cyc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The resumed sweep repairs the tail on open, then appends cleanly.
	w, err = openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write("appB", "rba", &stats.Run{Cycles: 200}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	done, err := loadCheckpoint(path)
	if err != nil {
		t.Fatalf("checkpoint unreadable after append-past-torn-tail: %v", err)
	}
	if len(done) != 2 {
		t.Fatalf("loaded %d cells, want 2", len(done))
	}
	if a := done[ckptKey("appA", "gto")]; a == nil || a.Cycles != 100 {
		t.Errorf("appA/gto = %+v, want Cycles=100", a)
	}
	if b := done[ckptKey("appB", "rba")]; b == nil || b.Cycles != 200 {
		t.Errorf("appB/rba = %+v, want Cycles=200 (the re-appended record)", b)
	}
}

// Degenerate torn tails: a file that is nothing but a partial record
// truncates to empty; a healthy file is untouched byte for byte.
func TestCheckpointRepairTailEdgeCases(t *testing.T) {
	path := ckptPath(t)
	if err := os.WriteFile(path, []byte(`{"v":1,"app":"a"`), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if b, err := os.ReadFile(path); err != nil || len(b) != 0 {
		t.Fatalf("newline-free file should repair to empty, got %q (%v)", b, err)
	}

	healthy := `{"v":1,"app":"appA","config":"gto","run":{"Cycles":1}}` + "\n"
	if err := os.WriteFile(path, []byte(healthy), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err = openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if b, err := os.ReadFile(path); err != nil || string(b) != healthy {
		t.Fatalf("healthy file modified by repair: %q (%v)", b, err)
	}
}

// A cell re-run after a fault appends a second record; resume must take
// the newest.
func TestCheckpointLastRecordWins(t *testing.T) {
	path := ckptPath(t)
	w, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write("appA", "gto", &stats.Run{Cycles: 100}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-open, as a resumed sweep would, and overwrite the cell.
	w, err = openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write("appA", "gto", &stats.Run{Cycles: 300}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	done, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := done[ckptKey("appA", "gto")]; got == nil || got.Cycles != 300 {
		t.Fatalf("resumed cell = %+v, want the newer record (Cycles=300)", got)
	}
}
