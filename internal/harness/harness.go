// Package harness is the fault-tolerant execution layer for simulation
// sweeps: the paper's evaluation is a 112-application × multi-config
// matrix, and at that scale one simulator invariant panic, livelocked
// cell, or runaway kernel must not cost the whole campaign.
//
// Four pillars:
//
//  1. Panic isolation — every (application, configuration) cell runs
//     under recover(); a simulator panic becomes a structured *SimFault
//     carrying the cell identity, fault class, last heartbeat cycle and
//     stack, plus an optional flight-recorder dump (internal/trace) in
//     the diagnostics directory. The sweep reports faulted cells and
//     keeps going.
//  2. Cancellation and watchdog — a context plus per-cell wall-clock
//     timeout and a forward-progress watchdog reading the gpu.Monitor
//     heartbeat, so hung or livelocked cells die in wall-clock time
//     instead of burning out a cycle cap. Cells killed by the simulated
//     cycle cap get one bounded retry at a raised cap.
//  3. Checkpoint/resume — completed cells stream to an append-only JSONL
//     checkpoint; a resumed sweep skips them and re-runs only the
//     faulted/killed/missing cells (checkpoint.go).
//  4. Snapshot/resume — interrupted cells themselves resume mid-kernel:
//     periodic and cancellation-time device snapshots (snapshot.go,
//     internal/snapshot, docs/ROBUSTNESS.md) let a restarted sweep
//     continue a half-finished cell with byte-identical final results.
//     The runtime invariant auditor (config.AuditEvery) surfaces state
//     corruption as a structured FaultAudit instead of silent bad data.
//  5. Fault injection — a test-only Injector hook (inject.go) makes
//     chosen cells panic, hang, error, or corrupt their own state, so
//     chaos tests can prove all of the above end to end.
package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Options configures a sweep execution.
type Options struct {
	// Workers is the worker-pool size (0 = GOMAXPROCS, capped at the
	// cell count).
	Workers int
	// Timeout is the per-cell wall-clock budget (0 = unlimited).
	Timeout time.Duration
	// MaxCycles caps each kernel's simulated cycles
	// (0 = gpu.DefaultMaxCycles).
	MaxCycles int64
	// RetryFactor raises the cycle cap for the single retry of a
	// deadline-killed cell (0 = DefaultRetryFactor; negative disables
	// the retry).
	RetryFactor int64
	// WatchdogInterval is the forward-progress sampling period: a cell
	// whose heartbeat does not advance for two consecutive intervals is
	// killed (0 disables the watchdog).
	WatchdogInterval time.Duration
	// CheckpointPath streams completed cells to an append-only JSONL
	// file and, when the file already exists, resumes from it ("" =
	// no checkpointing).
	CheckpointPath string
	// DiagDir arms a per-cell flight recorder (internal/trace, SM 0) and
	// writes each fault's dump there ("" = no diagnostics; faulted cells
	// then carry stack and heartbeat only).
	DiagDir string
	// SnapshotDir arms mid-kernel state snapshots (snapshot.go): each
	// cell persists its full device state to <dir>/<app>__<config>.snap
	// on the cadences below, plus a final frame when the cell is canceled
	// (SIGTERM, watchdog, timeout) — so an interrupted sweep restarted
	// with ResumeSnapshots continues each cell mid-kernel with
	// byte-identical final statistics ("" = no snapshots).
	SnapshotDir string
	// SnapshotInterval is the simulated-cycle period between periodic
	// snapshots (rounded up to the device heartbeat; 0 = no cycle-driven
	// snapshots). With both intervals zero, only the final
	// cancellation frame is written.
	SnapshotInterval int64
	// SnapshotWall is the wall-clock period between periodic snapshots
	// (0 = no wall-driven snapshots). Useful when cells' cycle rates
	// vary wildly: it bounds re-simulation time lost to a kill -9, which
	// skips the cancellation frame.
	SnapshotWall time.Duration
	// ResumeSnapshots resumes each cell from its SnapshotDir frame when
	// one exists. A frame that fails to restore (version, config, or
	// workload drift) is discarded and the cell restarts fresh.
	ResumeSnapshots bool
	// Adapt, when non-nil, derives the cell's device configuration from
	// the sweep configuration and the application (exp.DeviceFor's
	// per-suite memory scaling).
	Adapt func(cfg config.GPU, app workloads.App) config.GPU
	// Tracer attaches an externally owned tracer to single-cell runs
	// (RunOne); sweeps ignore it.
	Tracer *trace.Tracer
	// Injector is the test-only fault-injection hook.
	Injector InjectorFunc
	// Logf, when non-nil, receives one line per fault and per resume
	// summary (a sweep is otherwise silent).
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives live sweep telemetry: per-cell
	// heartbeat gauges (a hung cell shows as a stalled
	// sweep_cell_heartbeat_cycle), completion/fault/retry/checkpoint
	// counters, aggregated CPI-stack cycles, and the devices' cycle and
	// instruction totals (nil = no telemetry, the guarded fast path).
	Metrics *metrics.Registry

	// sm carries the registered handles; built once per Run/RunOne from
	// Metrics, nil when telemetry is off.
	sm *sweepMetrics
}

// DefaultRetryFactor multiplies the cycle cap for the bounded retry of a
// deadline-killed cell.
const DefaultRetryFactor = 4

// watchdogStallIntervals is how many consecutive unchanged heartbeat
// samples the watchdog tolerates before killing a cell: two, so a cell
// is never killed on the sampling phase alone — it must hold one full
// interval with zero forward progress.
const watchdogStallIntervals = 2

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Result is the outcome of a sweep: the per-cell statistics, the faults,
// and the bookkeeping a caller needs to trust the matrix.
type Result struct {
	// Runs is the cell matrix, indexed [app][config]. A cell is nil iff
	// Errs records its fault — callers must consult Errs (or Complete)
	// before dereferencing.
	Runs [][]*stats.Run
	// Errs maps each faulted cell to its *SimFault.
	Errs CellErrors
	// Faults lists the faults in deterministic (app, config) order.
	Faults []*SimFault
	// Resumed counts cells restored from the checkpoint; Executed counts
	// cells actually simulated this run.
	Resumed, Executed int
	// Wall is the per-cell wall-clock simulation time in seconds,
	// indexed like Runs. Zero for resumed and faulted cells. Wall time
	// is the one nondeterministic cell datum — the bench baseline
	// (internal/bench) records it as informational throughput and
	// excludes it from regression comparison.
	Wall [][]float64
}

// Complete reports whether every cell has a run.
func (r *Result) Complete() bool { return len(r.Errs) == 0 }

// Run executes the (configs × apps) sweep under the harness. names
// labels the configurations for checkpoints, fault records and
// diagnostics files; nil falls back to each config's Name. The returned
// error covers harness-level failures (bad arguments, unreadable
// checkpoint, canceled context) — simulation failures never abort the
// sweep and are reported per cell in Result.Errs.
func Run(ctx context.Context, cfgs []config.GPU, names []string, apps []workloads.App, opt Options) (*Result, error) {
	if len(cfgs) == 0 || len(apps) == 0 {
		return nil, fmt.Errorf("harness: empty sweep (%d configs, %d apps)", len(cfgs), len(apps))
	}
	if names == nil {
		names = make([]string, len(cfgs))
		for i := range cfgs {
			names[i] = cfgs[i].Name
		}
	}
	if len(names) != len(cfgs) {
		return nil, fmt.Errorf("harness: %d config names for %d configs", len(names), len(cfgs))
	}
	res := &Result{
		Runs: make([][]*stats.Run, len(apps)),
		Wall: make([][]float64, len(apps)),
		Errs: CellErrors{},
	}
	for i := range res.Runs {
		res.Runs[i] = make([]*stats.Run, len(cfgs))
		res.Wall[i] = make([]float64, len(cfgs))
	}
	opt.sm = newSweepMetrics(opt.Metrics)

	// Checkpoint: restore completed cells, then append new ones.
	var ckpt *checkpointWriter
	if opt.CheckpointPath != "" {
		done, err := loadCheckpoint(opt.CheckpointPath)
		if err != nil {
			return nil, err
		}
		for i, app := range apps {
			for j := range cfgs {
				if run, ok := done[ckptKey(app.Name, names[j])]; ok {
					res.Runs[i][j] = run
					res.Resumed++
				}
			}
		}
		if res.Resumed > 0 {
			opt.logf("harness: resumed %d/%d cells from %s", res.Resumed, len(apps)*len(cfgs), opt.CheckpointPath)
		}
		ckpt, err = openCheckpoint(opt.CheckpointPath)
		if err != nil {
			return nil, err
		}
		defer ckpt.Close()
	}
	if opt.DiagDir != "" {
		if err := os.MkdirAll(opt.DiagDir, 0o755); err != nil {
			return nil, fmt.Errorf("harness: diagnostics dir: %w", err)
		}
	}
	if opt.SnapshotDir != "" {
		if err := os.MkdirAll(opt.SnapshotDir, 0o755); err != nil {
			return nil, fmt.Errorf("harness: snapshot dir: %w", err)
		}
	}

	var cells []Cell
	for i := range apps {
		for j := range cfgs {
			if res.Runs[i][j] == nil {
				cells = append(cells, Cell{App: i, Cfg: j})
			}
		}
	}
	opt.sm.sweepShape(len(apps)*len(cfgs), res.Resumed)
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		workers = 1
	}

	jobs := make(chan Cell)
	var mu sync.Mutex // guards res.Errs/Faults/Executed and ckptErr
	var ckptErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				cfg := cfgs[c.Cfg]
				if opt.Adapt != nil {
					cfg = opt.Adapt(cfg, apps[c.App])
				}
				run, wall, fault := runCell(ctx, cfg, apps[c.App], names[c.Cfg], opt)
				mu.Lock()
				res.Executed++
				if fault != nil {
					fault.App, fault.Config = apps[c.App].Name, names[c.Cfg]
					res.Errs[c] = fault
					res.Faults = append(res.Faults, fault)
					opt.logf("harness: FAULT %v", fault)
					mu.Unlock()
					continue
				}
				res.Runs[c.App][c.Cfg] = run
				res.Wall[c.App][c.Cfg] = wall
				mu.Unlock()
				if ckpt != nil {
					if err := ckpt.Write(apps[c.App].Name, names[c.Cfg], run); err != nil {
						mu.Lock()
						if ckptErr == nil {
							ckptErr = err
						}
						mu.Unlock()
					} else {
						opt.sm.checkpointWrote()
					}
				}
			}
		}()
	}
dispatch:
	for _, c := range cells {
		select {
		case jobs <- c:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	sortFaults(res.Faults)
	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("harness: sweep interrupted: %w", err)
	}
	if ckptErr != nil {
		return res, fmt.Errorf("harness: checkpoint write: %w", ckptErr)
	}
	return res, nil
}

// sortFaults orders faults by (app, config) so reports are deterministic
// regardless of worker scheduling.
func sortFaults(fs []*SimFault) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && faultLess(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func faultLess(a, b *SimFault) bool {
	if a.App != b.App {
		return a.App < b.App
	}
	return a.Config < b.Config
}

// RunOne executes a single (configuration, application) cell under the
// harness protections — panic isolation, timeout, watchdog, cycle cap —
// and returns either the run or its fault. Options.Tracer, when set, is
// attached to the device (the caller owns Close/export).
func RunOne(ctx context.Context, cfg config.GPU, app workloads.App, opt Options) (*stats.Run, *SimFault) {
	if opt.Adapt != nil {
		cfg = opt.Adapt(cfg, app)
	}
	if opt.SnapshotDir != "" {
		if err := os.MkdirAll(opt.SnapshotDir, 0o755); err != nil {
			return nil, &SimFault{App: app.Name, Config: cfg.Name, Kind: FaultError,
				Err: fmt.Errorf("harness: snapshot dir: %w", err)}
		}
	}
	opt.sm = newSweepMetrics(opt.Metrics)
	opt.sm.sweepShape(1, 0)
	run, _, fault := runCell(ctx, cfg, app, cfg.Name, opt)
	if fault != nil {
		fault.App, fault.Config = app.Name, cfg.Name
	}
	return run, fault
}

// runCell runs one cell, retrying once at a raised cycle cap if the
// first attempt died on the simulated-cycle deadline. It accounts the
// cell's terminal outcome (completion or fault, plus any retry) to the
// sweep metrics and returns the wall-clock seconds spent simulating.
func runCell(ctx context.Context, cfg config.GPU, app workloads.App, cfgName string, opt Options) (*stats.Run, float64, *SimFault) {
	maxCycles := opt.MaxCycles
	if maxCycles <= 0 {
		maxCycles = gpu.DefaultMaxCycles
	}
	//simlint:allow determinism -- wall-clock telemetry: per-cell runtime feeds the sweep's progress metrics, never simulated state or result tables
	start := time.Now()
	run, fault := runCellOnce(ctx, cfg, app, cfgName, opt, maxCycles, opt.ResumeSnapshots)
	if fault != nil && fault.Kind == FaultDeadline && opt.RetryFactor >= 0 {
		factor := opt.RetryFactor
		if factor == 0 {
			factor = DefaultRetryFactor
		}
		opt.logf("harness: %s on %s hit the %d-cycle cap; retrying once at %d",
			app.Name, cfgName, maxCycles, maxCycles*factor)
		opt.sm.retried()
		// The frame written during the capped attempt carries the old
		// absolute deadline; resuming it would re-fault immediately, so the
		// retry starts fresh.
		if opt.SnapshotDir != "" {
			os.Remove(snapPath(opt.SnapshotDir, app.Name, cfgName))
		}
		run, fault = runCellOnce(ctx, cfg, app, cfgName, opt, maxCycles*factor, false)
		if fault != nil {
			fault.Retried = true
		}
	}
	//simlint:allow determinism -- wall-clock telemetry: per-cell runtime feeds the sweep's progress metrics, never simulated state or result tables
	wall := time.Since(start).Seconds()
	if fault != nil {
		opt.sm.cellFaulted(fault.Kind)
		return run, wall, fault
	}
	opt.sm.cellDone(run)
	return run, wall, nil
}

// runCellOnce is one supervised attempt at a cell. resume allows the
// attempt to continue from an existing snapshot frame (the retry path
// disables it, since a raised cycle cap invalidates the frame's
// deadline).
func runCellOnce(ctx context.Context, cfg config.GPU, app workloads.App, cfgName string, opt Options, maxCycles int64, resume bool) (run *stats.Run, fault *SimFault) {
	mon := &gpu.Monitor{}
	stop := supervise(ctx, mon, opt)
	defer stop()
	// Live progress: the heartbeat gauge reads this attempt's monitor at
	// scrape time (a retry re-points it at the fresh monitor).
	opt.sm.watchCell(app.Name, cfgName, mon)

	// Flight recorder: a small SM-0 ring whose tail is dumped on fault.
	tr := opt.Tracer
	if tr == nil && opt.DiagDir != "" {
		tr = trace.New(trace.Options{
			SMs:      cfg.NumSMs,
			SubCores: cfg.SubCoresPerSM,
			Banks:    cfg.BanksPerSubCore,
			SM:       0,
		})
	}

	// Panic isolation: a simulator invariant violation becomes a
	// structured fault with the cell's last heartbeat and the stack.
	defer func() {
		if v := recover(); v != nil {
			fault = &SimFault{
				Kind:       FaultPanic,
				Cycle:      mon.Cycle(),
				PanicValue: v,
				Stack:      debug.Stack(),
			}
			fault.DumpPath = writeDump(opt, app.Name, cfgName, fault, tr)
			run = nil
		}
	}()

	inj := InjectNone
	if opt.Injector != nil {
		inj = opt.Injector(app.Name, cfgName)
		switch inj {
		case InjectPanic:
			panic("harness: injected panic")
		case InjectError:
			return nil, &SimFault{Kind: FaultError, Err: ErrInjected}
		case InjectHang:
			// Spin without publishing progress until a supervisor kills
			// us — an injectable stand-in for a livelocked simulation.
			for !mon.Canceled() {
				select {
				case <-ctx.Done():
					mon.Cancel(reasonContext + ": " + ctx.Err().Error())
				case <-time.After(time.Millisecond):
				}
			}
			f := &SimFault{Kind: kindForReason(mon.Reason()), Err: errors.New(mon.Reason())}
			f.DumpPath = writeDump(opt, app.Name, cfgName, f, tr)
			return nil, f
		case InjectCorrupt:
			// The corruption is only observable through the auditor; arm it
			// at heartbeat cadence if the configuration left it off.
			if cfg.AuditEvery == 0 {
				cfg.AuditEvery = 1
			}
		}
	}

	g, err := gpu.New(cfg)
	if err != nil {
		return nil, &SimFault{Kind: FaultError, Err: err}
	}
	if inj == InjectCorrupt {
		g.ArmCorruptionForTest("scoreboard")
	}

	// Snapshot resume: a frame left by an interrupted earlier run (final
	// cancellation frame or the last periodic one) continues mid-kernel.
	// A frame that does not restore is discarded — Restore may have
	// half-mutated the device, so the fresh path rebuilds it.
	snap := newCellSnapshotter(opt, app.Name, cfgName, mon)
	resumed := false
	if snap != nil && resume {
		ok, rerr := snap.tryResume(g, app.Kernels)
		if rerr != nil {
			opt.logf("harness: %s on %s: snapshot unusable, restarting fresh: %v", app.Name, cfgName, rerr)
			snap.discard()
			if g, err = gpu.New(cfg); err != nil {
				return nil, &SimFault{Kind: FaultError, Err: err}
			}
			if inj == InjectCorrupt {
				g.ArmCorruptionForTest("scoreboard")
			}
		} else if ok {
			resumed = true
			opt.sm.snapshotResumed()
			opt.logf("harness: %s on %s: resumed from snapshot at cycle %d", app.Name, cfgName, g.Cycle())
		}
	}

	g.SetMonitor(mon)
	g.SetMetrics(opt.Metrics)
	if tr != nil {
		g.SetTracer(tr)
	}
	if snap != nil {
		g.SetSnapshotHook(snap.hook)
	}
	runErr := error(nil)
	if resumed {
		runErr = g.ContinueKernels(app.Kernels, maxCycles)
	} else {
		runErr = g.RunKernels(app.Kernels, maxCycles)
	}
	if runErr != nil {
		f := &SimFault{Cycle: mon.Cycle(), Err: runErr}
		var cle *gpu.CycleLimitError
		var ce *gpu.CancelError
		var ae *gpu.AuditError
		switch {
		case errors.As(runErr, &cle):
			f.Kind = FaultDeadline
		case errors.As(runErr, &ce):
			f.Kind = kindForReason(ce.Reason)
			f.Cycle = ce.Cycle
		case errors.As(runErr, &ae):
			f.Kind = FaultAudit
			f.Cycle = ae.Cycle
		default:
			f.Kind = FaultError
		}
		f.DumpPath = writeDump(opt, app.Name, cfgName, f, tr)
		return nil, f
	}
	snap.discard()
	return g.Run(), nil
}

// Supervisor cancel-reason prefixes, mapped back to fault kinds.
const (
	reasonWatchdog = "watchdog"
	reasonTimeout  = "timeout"
	reasonContext  = "canceled"
)

func kindForReason(reason string) FaultKind {
	switch {
	case strings.HasPrefix(reason, reasonWatchdog):
		return FaultWatchdog
	case strings.HasPrefix(reason, reasonTimeout):
		return FaultTimeout
	default:
		return FaultCanceled
	}
}

// supervise starts the cell's supervisor: context cancellation, the
// wall-clock timeout, and the forward-progress watchdog all converge on
// mon.Cancel, which the simulation loop observes within one heartbeat
// period. The returned stop function must be called when the cell ends.
func supervise(ctx context.Context, mon *gpu.Monitor, opt Options) (stop func()) {
	if ctx.Done() == nil && opt.Timeout <= 0 && opt.WatchdogInterval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		var timeoutC <-chan time.Time
		if opt.Timeout > 0 {
			tm := time.NewTimer(opt.Timeout)
			defer tm.Stop()
			timeoutC = tm.C
		}
		var watchC <-chan time.Time
		if opt.WatchdogInterval > 0 {
			tk := time.NewTicker(opt.WatchdogInterval)
			defer tk.Stop()
			watchC = tk.C
		}
		last, stalls := mon.Cycle(), 0
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				mon.Cancel(reasonContext + ": " + ctx.Err().Error())
				return
			case <-timeoutC:
				mon.Cancel(fmt.Sprintf("%s: cell exceeded %v wall clock at cycle %d",
					reasonTimeout, opt.Timeout, mon.Cycle()))
				return
			case <-watchC:
				cur := mon.Cycle()
				if cur != last {
					last, stalls = cur, 0
					continue
				}
				stalls++
				if stalls >= watchdogStallIntervals {
					mon.Cancel(fmt.Sprintf("%s: no forward progress for %v (heartbeat stuck at cycle %d)",
						reasonWatchdog, time.Duration(stalls)*opt.WatchdogInterval, cur))
					return
				}
			}
		}
	}()
	return func() { close(done) }
}

// Guard runs fn with panic isolation: a panic surfaces as a *SimFault
// error labeled with name instead of crashing the process. Binaries use
// it to contain experiment drivers that do not go through a sweep.
func Guard(name string, fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &SimFault{
				App:        name,
				Kind:       FaultPanic,
				PanicValue: v,
				Stack:      debug.Stack(),
			}
		}
	}()
	return fn()
}

// writeDump writes the fault's diagnostics: a <app>__<config>.fault.json
// with the structured fault record, and — when a flight recorder was
// armed — a Perfetto-loadable <app>__<config>.trace.json holding the
// recorder's tail. Returns the fault file path, "" if diagnostics are
// disabled or unwritable (a dump failure must not mask the fault).
func writeDump(opt Options, app, cfgName string, f *SimFault, tr *trace.Tracer) string {
	if opt.DiagDir == "" {
		return ""
	}
	base := filepath.Join(opt.DiagDir, sanitize(app)+"__"+sanitize(cfgName))
	if tr != nil {
		if tf, err := os.Create(base + ".trace.json"); err == nil {
			werr := trace.WriteChrome(tf, tr)
			cerr := tf.Close()
			if werr != nil || cerr != nil {
				os.Remove(base + ".trace.json")
			}
		}
	}
	path := base + ".fault.json"
	df, err := os.Create(path)
	if err != nil {
		opt.logf("harness: cannot write diagnostics for %s on %s: %v", app, cfgName, err)
		return ""
	}
	defer df.Close()
	rec := struct {
		App        string `json:"app"`
		Config     string `json:"config"`
		Kind       string `json:"kind"`
		Cycle      int64  `json:"cycle"`
		Error      string `json:"error,omitempty"`
		PanicValue string `json:"panic,omitempty"`
		Stack      string `json:"stack,omitempty"`
		Trace      string `json:"trace,omitempty"`
		Retried    bool   `json:"retried,omitempty"`
	}{
		App:     app,
		Config:  cfgName,
		Kind:    f.Kind.String(),
		Cycle:   f.Cycle,
		Retried: f.Retried,
	}
	if f.Err != nil {
		rec.Error = f.Err.Error()
	}
	if f.PanicValue != nil {
		rec.PanicValue = fmt.Sprint(f.PanicValue)
	}
	if len(f.Stack) > 0 {
		rec.Stack = string(f.Stack)
	}
	if tr != nil {
		rec.Trace = base + ".trace.json"
	}
	enc := json.NewEncoder(df)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		opt.logf("harness: cannot encode diagnostics for %s on %s: %v", app, cfgName, err)
		os.Remove(path)
		return ""
	}
	return path
}

// sanitize makes a cell label filesystem-safe.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':', ' ', '*', '?', '"', '<', '>', '|':
			return '-'
		}
		return r
	}, s)
}
