package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/stats"
)

// The checkpoint file is append-only JSON Lines: one self-contained
// record per completed cell, flushed as cells finish. Appending (never
// rewriting) means a crash can lose at most the record being written —
// the loader tolerates a torn final line — and a resumed sweep can keep
// appending to the same file. Only successful cells are recorded, so
// resume re-runs exactly the faulted/killed/missing ones.

// ckptRecord is one checkpoint line.
type ckptRecord struct {
	// V is the record format version.
	V int `json:"v"`
	// App and Config name the cell.
	App    string `json:"app"`
	Config string `json:"config"`
	// Run is the cell's full statistics.
	Run *stats.Run `json:"run"`
}

const ckptVersion = 1

// ckptKey keys completed cells by identity.
func ckptKey(app, config string) string { return app + "\x00" + config }

// checkpointWriter streams completed cells to the checkpoint file.
// Safe for concurrent use by sweep workers.
type checkpointWriter struct {
	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
}

// openCheckpoint opens (creating or appending) the checkpoint file.
// A torn final line left by a crash mid-append is truncated away first:
// appending after a torn tail would concatenate the new record onto the
// partial one, corrupting both — the loader would then reject the file
// outright (a malformed non-final line is fatal) and the whole
// checkpoint, not just one record, would be lost.
func openCheckpoint(path string) (*checkpointWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: open checkpoint: %w", err)
	}
	if err := repairTail(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("harness: repair checkpoint tail: %w", err)
	}
	return &checkpointWriter{f: f, enc: json.NewEncoder(f)}, nil
}

// repairTail truncates f to its last newline-terminated record. A file
// ending in '\n' (or empty) is untouched; a file with no newline at all
// is truncated to empty.
func repairTail(f *os.File) error {
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	if size == 0 {
		return nil
	}
	one := make([]byte, 1)
	if _, err := f.ReadAt(one, size-1); err != nil {
		return err
	}
	if one[0] == '\n' {
		return nil
	}
	// Scan backward in chunks for the last newline before the torn tail.
	const chunk = 64 << 10
	keep, pos := int64(0), size-1
	for pos > 0 {
		n := int64(chunk)
		if n > pos {
			n = pos
		}
		buf := make([]byte, n)
		if _, err := f.ReadAt(buf, pos-n); err != nil {
			return err
		}
		if i := bytes.LastIndexByte(buf, '\n'); i >= 0 {
			keep = pos - n + int64(i) + 1
			break
		}
		pos -= n
	}
	return f.Truncate(keep)
}

// Write appends one completed cell. Encoder output ends with a newline,
// so each call emits exactly one JSONL record.
func (w *checkpointWriter) Write(app, config string, run *stats.Run) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.enc.Encode(ckptRecord{V: ckptVersion, App: app, Config: config, Run: run})
}

// Close closes the underlying file.
func (w *checkpointWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// loadCheckpoint reads a checkpoint file into completed-cell runs keyed
// by ckptKey. A missing file is an empty checkpoint. A torn final line
// (crash mid-append) is skipped; a malformed line elsewhere is an error,
// since it means the file is not a checkpoint at all.
func loadCheckpoint(path string) (map[string]*stats.Run, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[string]*stats.Run{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("harness: open checkpoint: %w", err)
	}
	defer f.Close()
	return readCheckpoint(f)
}

func readCheckpoint(r io.Reader) (map[string]*stats.Run, error) {
	out := map[string]*stats.Run{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	lineNo := 0
	var pendingErr error
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		// A parse failure is only fatal if more lines follow: the final
		// line may be a torn append from a crash.
		if pendingErr != nil {
			return nil, pendingErr
		}
		var rec ckptRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			pendingErr = fmt.Errorf("harness: checkpoint line %d: %w", lineNo, err)
			continue
		}
		if rec.V != ckptVersion {
			return nil, fmt.Errorf("harness: checkpoint line %d: unsupported version %d", lineNo, rec.V)
		}
		if rec.Run == nil {
			pendingErr = fmt.Errorf("harness: checkpoint line %d: record without run", lineNo)
			continue
		}
		// Last record wins: a cell re-run after a fault overwrites the
		// earlier entry.
		out[ckptKey(rec.App, rec.Config)] = rec.Run
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("harness: read checkpoint: %w", err)
	}
	return out, nil
}
