package workloads

import (
	"repro/internal/gpu"
	"repro/internal/program"
)

// This file holds targeted microbenchmarks for the four orthogonal
// partitioning effects the paper identifies in Section I:
//
//  1. register-file bank conflicts   (BankConflictMicro)
//  2. sub-core issue imbalance       (FMAMicro, micro.go)
//  3. diverse execution-unit demands (EUDiverseMicro)
//  4. diverse register-capacity demands under concurrent kernels
//     (RegCapacityPair)

// BankConflictMicro stresses effect 1: every FMA's three operands share a
// bank parity class, so a two-bank sub-core serializes reads while a
// monolithic SM spreads them over eight banks.
func BankConflictMicro() *gpu.Kernel {
	b := program.NewBuilder()
	b.Loop(192, func(lb *program.Builder) {
		lb.FMA(4, 6, 8, 4)
		lb.FMA(10, 6, 8, 10)
		lb.FMA(12, 6, 8, 12)
		lb.FMA(14, 6, 8, 14)
	})
	p := b.MustBuild()
	return &gpu.Kernel{
		Name:          "effect1-bankconflict",
		Blocks:        8,
		WarpsPerBlock: 16,
		RegsPerThread: 24,
		WarpProgram:   func(block, w int) *program.Program { return p },
	}
}

// EUDiverseMicro stresses effect 3: warp-specialized blocks where every
// fourth warp hammers the tensor core and the rest run special-function
// code. Under round-robin assignment all tensor warps share one
// sub-core's single tensor pipe while the other three sub-cores' tensor
// pipes idle; a monolithic SM pools them.
func EUDiverseMicro() *gpu.Kernel {
	tensor := func() *program.Program {
		b := program.NewBuilder()
		b.Loop(256, func(lb *program.Builder) {
			lb.Tensor(4, 1, 2, 4)
			lb.Tensor(5, 1, 2, 5)
		})
		b.Bar()
		return b.MustBuild()
	}()
	sfu := func() *program.Program {
		b := program.NewBuilder()
		b.Loop(64, func(lb *program.Builder) {
			lb.SFU(4, 4)
			lb.SFU(5, 5)
		})
		b.Bar()
		return b.MustBuild()
	}()
	return &gpu.Kernel{
		Name:          "effect3-eudiverse",
		Blocks:        8,
		WarpsPerBlock: 16,
		RegsPerThread: 16,
		WarpProgram: func(block, w int) *program.Program {
			if w%4 == 0 {
				return tensor
			}
			return sfu
		},
	}
}

// RegCapacityPair stresses effect 4: two concurrent kernels with very
// different register footprints. The fat kernel's warps need 8 KB of
// register file each; once thin-kernel warps fragment the per-sub-core
// files, a partitioned SM strands capacity it could not strand if the
// register file were one pool.
func RegCapacityPair() (fat, thin *gpu.Kernel) {
	// Both kernels are latency-bound (serial dependence chains), so
	// throughput tracks resident-warp occupancy — which is exactly what
	// per-sub-core register fragmentation limits.
	fatProg := func() *program.Program {
		b := program.NewBuilder()
		b.Loop(220, func(lb *program.Builder) {
			lb.FMA(4, 1, 2, 4)
			lb.SFU(5, 5)
		})
		return b.MustBuild()
	}()
	thinProg := func() *program.Program {
		b := program.NewBuilder()
		b.Loop(60, func(lb *program.Builder) {
			lb.IADD(4, 1, 4)
			lb.SFU(5, 5)
		})
		return b.MustBuild()
	}()
	fat = &gpu.Kernel{
		Name:          "effect4-fat",
		Blocks:        32,
		WarpsPerBlock: 4,
		RegsPerThread: 128, // 16 KB per warp: a sub-core holds at most 4
		WarpProgram:   func(block, w int) *program.Program { return fatProg },
	}
	thin = &gpu.Kernel{
		Name:          "effect4-thin",
		Blocks:        32,
		WarpsPerBlock: 6,  // odd shape keeps fragmenting the sub-cores
		RegsPerThread: 20, // 2.5 KB per warp strands 16KB-misaligned space
		WarpProgram:   func(block, w int) *program.Program { return thinProg },
	}
	return fat, thin
}
