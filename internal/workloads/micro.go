package workloads

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/program"
)

// FMALayout selects one of the Fig. 4 thread-block layouts.
type FMALayout uint8

const (
	// FMABaseline: 8 compute warps per block, no empty warps.
	FMABaseline FMALayout = iota
	// FMABalanced: 8 compute + 24 empty warps, compute warps spread so
	// round-robin assignment gives each sub-core two.
	FMABalanced
	// FMAUnbalanced: 8 compute + 24 empty warps, compute warps at
	// positions 0,4,8,... so round-robin parks them all on sub-core 0.
	FMAUnbalanced
)

// String names the layout.
func (l FMALayout) String() string {
	switch l {
	case FMABaseline:
		return "baseline"
	case FMABalanced:
		return "balanced"
	case FMAUnbalanced:
		return "unbalanced"
	default:
		return fmt.Sprintf("FMALayout(%d)", uint8(l))
	}
}

// FMAMicro builds the Section III-B microbenchmark: each compute thread
// performs `fmas` register-resident fused multiply-adds and then waits at
// a block-wide barrier; empty threads only hit the barrier. fmas is 4096
// in the paper; scaled-down values preserve the effect.
func FMAMicro(layout FMALayout, fmas int) *gpu.Kernel {
	compute := func() *program.Program {
		b := program.NewBuilder()
		// 4 independent accumulator chains over register-resident data.
		b.Loop(int64(fmas/4), func(lb *program.Builder) {
			lb.FMA(4, 1, 2, 4)
			lb.FMA(5, 1, 3, 5)
			lb.FMA(6, 2, 3, 6)
			lb.FMA(7, 1, 2, 7)
		})
		b.Bar()
		return b.MustBuild()
	}()
	empty := program.NewBuilder().Bar().MustBuild()

	warps := 8
	if layout != FMABaseline {
		warps = 32 // 8 compute + 24 empty (256 + 768 threads)
	}
	return &gpu.Kernel{
		Name:          "fma-" + layout.String(),
		Blocks:        8,
		WarpsPerBlock: warps,
		RegsPerThread: 16,
		WarpProgram: func(block, w int) *program.Program {
			switch layout {
			case FMABaseline:
				return compute
			case FMAUnbalanced:
				if w%4 == 0 {
					return compute
				}
				return empty
			default: // FMABalanced
				if w < 8 {
					return compute
				}
				return empty
			}
		},
	}
}

// FMAImbalanceScaled builds the Fig. 8 experiment: the unbalanced layout
// with the compute warps' work scaled by `scale` relative to a fixed
// budget, so the imbalance magnitude sweeps while total work is constant
// per compute warp.
func FMAImbalanceScaled(scale int) *gpu.Kernel {
	k := FMAMicro(FMAUnbalanced, 256*scale)
	k.Name = fmt.Sprintf("fma-unbalanced-x%d", scale)
	return k
}

// RFStressMicro builds one of the seven register-file bank-conflict
// stress microbenchmarks used in Section V to validate the collector-unit
// count against silicon. Variants differ in operand count, bank
// placement, and instruction-level parallelism, spanning the conflict
// behaviours the operand collector must hide.
func RFStressMicro(variant int) *gpu.Kernel {
	if variant < 0 || variant >= NumRFStressMicros {
		panic(fmt.Sprintf("workloads: RF stress variant %d out of range", variant))
	}
	b := program.NewBuilder()
	const iters = 192
	switch variant {
	case 0: // all three sources in one bank-parity class, serial chain
		b.Loop(iters, func(lb *program.Builder) {
			lb.FMA(4, 6, 8, 4)
		})
	case 1: // conflicting sources, 4 independent chains
		b.Loop(iters/4, func(lb *program.Builder) {
			lb.FMA(4, 6, 8, 4)
			lb.FMA(10, 6, 8, 10)
			lb.FMA(12, 6, 8, 12)
			lb.FMA(14, 6, 8, 14)
		})
	case 2: // spread sources, 4 independent chains (conflict-light)
		b.Loop(iters/4, func(lb *program.Builder) {
			lb.FMA(4, 1, 2, 4)
			lb.FMA(5, 1, 2, 5)
			lb.FMA(6, 3, 2, 6)
			lb.FMA(7, 3, 2, 7)
		})
	case 3: // two-source adds, all same parity
		b.Loop(iters/2, func(lb *program.Builder) {
			lb.FADD(4, 6, 4)
			lb.FADD(8, 6, 8)
		})
	case 4: // mixed FMA + MOV pressure
		b.Loop(iters/3, func(lb *program.Builder) {
			lb.FMA(4, 6, 8, 4)
			lb.MOV(10, 6)
			lb.FMA(12, 10, 8, 12)
		})
	case 5: // wide ILP (8 chains) with conflicting operands
		b.Loop(iters/8, func(lb *program.Builder) {
			for i := 0; i < 8; i++ {
				d := isa.Reg(4 + 2*i)
				lb.FMA(d, 6, 8, d)
			}
		})
	case 6: // alternate parity classes every instruction
		b.Loop(iters/2, func(lb *program.Builder) {
			lb.FMA(4, 6, 8, 4)
			lb.FMA(5, 7, 9, 5)
		})
	}
	p := b.MustBuild()
	return &gpu.Kernel{
		Name:          fmt.Sprintf("rfstress-%d", variant),
		Blocks:        8,
		WarpsPerBlock: 16,
		RegsPerThread: 24,
		WarpProgram:   func(block, w int) *program.Program { return p },
	}
}

// NumRFStressMicros is the validation microbenchmark count (seven, per
// Section V).
const NumRFStressMicros = 7
