package workloads

import (
	"errors"
	"fmt"

	"repro/internal/gpu"
	"repro/internal/isa"
)

// CuGraph builds the seven graph-analytics applications (Table III). The
// suite's defining trait (Section VI-B1): a large proportion of
// register-intensive instructions that access a limited set of registers
// repeatedly — so RBA's scheduling beats even the fully-connected SM's
// extra banks — plus irregular, random-access neighbor reads.
func CuGraph() ([]App, error) {
	b := new(suiteBuilder)
	type g struct {
		name  string
		iters int
		loads int
		fmas  int
		iadds int
	}
	graphs := []g{
		{"cg-lou", 28, 1, 3, 2},   // Louvain: modularity accumulation
		{"cg-bfs", 24, 1, 2, 4},   // BFS: frontier expansion
		{"cg-sssp", 26, 1, 2, 3},  // SSSP: relaxations
		{"cg-pgrnk", 30, 1, 4, 1}, // PageRank: rank accumulation
		{"cg-wcc", 24, 1, 2, 4},   // WCC: label propagation
		{"cg-katz", 28, 1, 4, 1},  // Katz: centrality accumulation
		{"cg-hits", 26, 1, 4, 2},  // HITS: hub/authority updates
	}
	apps := make([]App, 0, len(graphs))
	for _, gr := range graphs {
		p := Profile{
			Name:          gr.name,
			Blocks:        28,
			WarpsPerBlock: 12,
			RegsPerThread: 40,
			Iters:         gr.iters,
			ILP:           4,
			FMAs:          gr.fmas + 3,
			IAdds:         gr.iadds,
			Loads:         gr.loads,
			LoadTrait:     isa.MemTrait{Pattern: isa.PatRandom, Footprint: 96 << 10, Shared: true, Divergence: 4},
			OperandMode:   OperandsNarrow,
		}
		apps = append(apps, App{
			Name: gr.name, Suite: "cugraph",
			Sensitive: true, RFSensitive: true,
			Kernels: b.kernelsOf(&p),
		})
	}
	return apps, b.Err()
}

// Rodinia builds fifteen heterogeneous-computing kernels with the suite's
// broad mix of communication patterns. Table III's sensitive entries are
// lavaMD, bp, srad and htsp.
func Rodinia() ([]App, error) {
	b := new(suiteBuilder)
	mk := func(name string, sensitive, rf bool, p Profile) App {
		p.Name = name
		return App{Name: name, Suite: "rodinia", Sensitive: sensitive, RFSensitive: rf, Kernels: b.kernelsOf(&p)}
	}
	stream := func(kb uint32) isa.MemTrait {
		return isa.MemTrait{Pattern: isa.PatCoalesced, Footprint: kb << 10, Shared: true}
	}
	apps := []App{
		// Particle potential: dense FMA + SFU inner loop over neighbor
		// particles staged in shared memory.
		mk("rod-lavaMD", true, true, Profile{
			Blocks: 24, WarpsPerBlock: 8, RegsPerThread: 48, Iters: 40, ILP: 4,
			FMAs: 4, SFUs: 1, SharedOps: 1, SharedTrait: isa.MemTrait{Pattern: isa.PatCoalesced},
			SharedMemPerBlock: 8 << 10, BarrierEvery: 10, OperandMode: OperandsClustered,
		}),
		// Back propagation: two phases of weight updates, RF-hungry.
		mk("rod-bp", true, true, Profile{
			Blocks: 32, WarpsPerBlock: 8, RegsPerThread: 32, Iters: 36, ILP: 6,
			FMAs: 4, Loads: 1, LoadTrait: stream(512), SharedMemPerBlock: 4 << 10,
			BarrierEvery: 12, OperandMode: OperandsClustered,
		}),
		// Speckle-reducing anisotropic diffusion: stencil with heavy FMA
		// bursts (the Fig. 14 case where RBA beats fully-connected).
		mk("rod-srad", true, true, Profile{
			Blocks: 32, WarpsPerBlock: 8, RegsPerThread: 36, Iters: 40, ILP: 6,
			FMAs: 6, Loads: 1, LoadTrait: stream(96), SFUs: 1,
			OperandMode: OperandsClustered,
		}),
		// Hotspot3D: 3D stencil, memory and compute balanced.
		mk("rod-htsp", true, false, Profile{
			Blocks: 28, WarpsPerBlock: 8, RegsPerThread: 32, Iters: 32, ILP: 3,
			FMAs: 3, Loads: 2, LoadTrait: stream(1024), Stores: 1,
			StoreTrait: stream(1024),
		}),
		mk("rod-bfs", false, false, Profile{
			Blocks: 24, WarpsPerBlock: 8, RegsPerThread: 24, Iters: 24, ILP: 2,
			IAdds: 3, Loads: 2, LoadTrait: isa.MemTrait{Pattern: isa.PatRandom, Footprint: 512 << 10, Shared: true, Divergence: 8},
		}),
		mk("rod-kmeans", false, false, Profile{
			Blocks: 28, WarpsPerBlock: 8, RegsPerThread: 28, Iters: 30, ILP: 3,
			FMAs: 3, Loads: 1, LoadTrait: stream(512),
		}),
		mk("rod-nw", false, false, Profile{
			Blocks: 20, WarpsPerBlock: 4, RegsPerThread: 24, Iters: 28, ILP: 2,
			IAdds: 3, SharedOps: 2, SharedTrait: isa.MemTrait{Pattern: isa.PatStrided, StrideBytes: 8},
			SharedMemPerBlock: 8 << 10, BarrierEvery: 7,
		}),
		mk("rod-hotspot", false, false, Profile{
			Blocks: 28, WarpsPerBlock: 8, RegsPerThread: 28, Iters: 28, ILP: 3,
			FMAs: 3, Loads: 1, LoadTrait: stream(768), SharedMemPerBlock: 4 << 10,
			BarrierEvery: 14,
		}),
		mk("rod-cfd", false, false, Profile{
			Blocks: 24, WarpsPerBlock: 12, RegsPerThread: 44, Iters: 24, ILP: 3,
			FMAs: 4, Loads: 2, LoadTrait: stream(1536), SFUs: 1,
		}),
		mk("rod-gaussian", false, false, Profile{
			Blocks: 24, WarpsPerBlock: 8, RegsPerThread: 20, Iters: 26, ILP: 2,
			FMAs: 2, Loads: 1, LoadTrait: stream(512), Stores: 1, StoreTrait: stream(512),
		}),
		mk("rod-pf", false, false, Profile{
			Blocks: 20, WarpsPerBlock: 8, RegsPerThread: 28, Iters: 30, ILP: 3,
			FMAs: 2, SFUs: 2, Loads: 1, LoadTrait: isa.MemTrait{Pattern: isa.PatRandom, Footprint: 256 << 10, Shared: true, Divergence: 8},
		}),
		mk("rod-strmcl", false, false, Profile{
			Blocks: 24, WarpsPerBlock: 8, RegsPerThread: 28, Iters: 26, ILP: 3,
			FMAs: 3, Loads: 1, LoadTrait: stream(1024),
		}),
		mk("rod-heartwall", false, false, Profile{
			Blocks: 20, WarpsPerBlock: 12, RegsPerThread: 36, Iters: 28, ILP: 3,
			FMAs: 3, Loads: 2, LoadTrait: stream(896), SharedMemPerBlock: 6 << 10,
			BarrierEvery: 14,
		}),
		mk("rod-leuko", false, false, Profile{
			Blocks: 24, WarpsPerBlock: 8, RegsPerThread: 32, Iters: 30, ILP: 3,
			FMAs: 3, SFUs: 1, Loads: 1, LoadTrait: stream(640),
		}),
		mk("rod-myocyte", false, false, Profile{
			Blocks: 16, WarpsPerBlock: 4, RegsPerThread: 52, Iters: 44, ILP: 4,
			FMAs: 4, SFUs: 2,
		}),
	}
	return apps, b.Err()
}

// Parboil builds ten throughput-computing kernels. The Table III entries
// (mriq, mrig, sad, sgemm, cutcp) saturate the read-operand stage.
func Parboil() ([]App, error) {
	b := new(suiteBuilder)
	mk := func(name string, sensitive, rf bool, p Profile) App {
		p.Name = name
		return App{Name: name, Suite: "parboil", Sensitive: sensitive, RFSensitive: rf, Kernels: b.kernelsOf(&p)}
	}
	stream := func(kb uint32) isa.MemTrait {
		return isa.MemTrait{Pattern: isa.PatCoalesced, Footprint: kb << 10, Shared: true}
	}
	apps := []App{
		// MRI-Q: per-sample trig-heavy FMA bursts — the paper's flagship
		// read-operand-limited app (Fig. 14a-c).
		mk("pb-mriq", true, true, Profile{
			Blocks: 32, WarpsPerBlock: 8, RegsPerThread: 40, Iters: 44, ILP: 6,
			FMAs: 5, SFUs: 1, OperandMode: OperandsClustered,
		}),
		// MRI-Gridding: scattered accumulation with dense FMA.
		mk("pb-mrig", true, true, Profile{
			Blocks: 28, WarpsPerBlock: 8, RegsPerThread: 32, Iters: 36, ILP: 6,
			FMAs: 5, Loads: 1, LoadTrait: isa.MemTrait{Pattern: isa.PatRandom, Footprint: 128 << 10, Shared: true, Divergence: 4},
			OperandMode: OperandsClustered,
		}),
		// SAD: sum of absolute differences, INT-heavy with streaming reads.
		mk("pb-sad", true, false, Profile{
			Blocks: 32, WarpsPerBlock: 8, RegsPerThread: 28, Iters: 32, ILP: 4,
			IAdds: 5, Loads: 1, LoadTrait: stream(1024),
		}),
		// SGEMM: register-blocked dense matrix multiply.
		mk("pb-sgemm", true, true, Profile{
			Blocks: 28, WarpsPerBlock: 8, RegsPerThread: 48, Iters: 40, ILP: 6,
			FMAs: 6, SharedOps: 1, SharedTrait: isa.MemTrait{Pattern: isa.PatCoalesced},
			SharedMemPerBlock: 8 << 10, BarrierEvery: 10, OperandMode: OperandsClustered,
		}),
		// CUTCP: distance-cutoff Coulombic potential, FMA + rsqrt.
		mk("pb-cutcp", true, true, Profile{
			Blocks: 28, WarpsPerBlock: 8, RegsPerThread: 36, Iters: 36, ILP: 6,
			FMAs: 4, SFUs: 1, SharedOps: 1, SharedTrait: isa.MemTrait{Pattern: isa.PatCoalesced},
			SharedMemPerBlock: 4 << 10, BarrierEvery: 12, OperandMode: OperandsClustered,
		}),
		mk("pb-spmv", false, false, Profile{
			Blocks: 28, WarpsPerBlock: 8, RegsPerThread: 24, Iters: 26, ILP: 2,
			FMAs: 2, Loads: 2, LoadTrait: isa.MemTrait{Pattern: isa.PatRandom, Footprint: 768 << 10, Shared: true, Divergence: 8},
		}),
		mk("pb-stencil", false, false, Profile{
			Blocks: 32, WarpsPerBlock: 8, RegsPerThread: 28, Iters: 28, ILP: 3,
			FMAs: 3, Loads: 2, LoadTrait: stream(1280), Stores: 1, StoreTrait: stream(1280),
		}),
		mk("pb-lbm", false, false, Profile{
			Blocks: 24, WarpsPerBlock: 8, RegsPerThread: 56, Iters: 24, ILP: 4,
			FMAs: 5, Loads: 2, LoadTrait: stream(2048), Stores: 2, StoreTrait: stream(2048),
		}),
		mk("pb-histo", false, false, Profile{
			Blocks: 24, WarpsPerBlock: 8, RegsPerThread: 20, Iters: 24, ILP: 2,
			IAdds: 3, Loads: 1, LoadTrait: stream(768),
			SharedOps: 1, SharedTrait: isa.MemTrait{Pattern: isa.PatRandom}, SharedMemPerBlock: 4 << 10,
		}),
		mk("pb-tpacf", false, false, Profile{
			Blocks: 24, WarpsPerBlock: 8, RegsPerThread: 32, Iters: 32, ILP: 3,
			FMAs: 3, SFUs: 1, SharedOps: 1, SharedTrait: isa.MemTrait{Pattern: isa.PatCoalesced},
			SharedMemPerBlock: 4 << 10,
		}),
	}
	return apps, b.Err()
}

// Polybench builds eighteen static-control-flow kernels. The Table III
// entries are the 2D and 3D convolutions, which are read-operand-limited.
func Polybench() ([]App, error) {
	b := new(suiteBuilder)
	mk := func(name string, sensitive, rf bool, p Profile) App {
		p.Name = name
		return App{Name: name, Suite: "polybench", Sensitive: sensitive, RFSensitive: rf, Kernels: b.kernelsOf(&p)}
	}
	stream := func(kb uint32) isa.MemTrait {
		return isa.MemTrait{Pattern: isa.PatCoalesced, Footprint: kb << 10, Shared: true}
	}
	conv := func(name string, blocks, iters, fmas int) App {
		// Convolutions read their input tile from shared memory and spend
		// the inner loop in FMA bursts — the read-operand-limited shape
		// the paper reports (+24.2% RBA on ply-2Dcon).
		return mk(name, true, true, Profile{
			Blocks: blocks, WarpsPerBlock: 8, RegsPerThread: 40, Iters: iters, ILP: 6,
			FMAs: fmas + 1, SFUs: 1, SharedOps: 1,
			SharedTrait:       isa.MemTrait{Pattern: isa.PatCoalesced},
			SharedMemPerBlock: 4 << 10,
			OperandMode:       OperandsClustered,
		})
	}
	la := func(name string, iters, fmas, loads int, kb uint32) App {
		return mk(name, false, false, Profile{
			Blocks: 24, WarpsPerBlock: 8, RegsPerThread: 28, Iters: iters, ILP: 3,
			FMAs: fmas, Loads: loads, LoadTrait: stream(kb),
		})
	}
	apps := []App{
		conv("ply-2Dcon", 32, 40, 5),
		conv("ply-3Dcon", 28, 36, 6),
		la("ply-atax", 26, 2, 2, 512),
		la("ply-bicg", 26, 2, 2, 512),
		la("ply-gemm", 34, 4, 1, 768),
		la("ply-gesummv", 24, 2, 2, 640),
		la("ply-gramschm", 28, 3, 1, 512),
		la("ply-mvt", 24, 2, 2, 512),
		la("ply-syr2k", 30, 4, 1, 640),
		la("ply-syrk", 30, 3, 1, 640),
		la("ply-2mm", 32, 4, 1, 768),
		la("ply-3mm", 32, 4, 1, 768),
		la("ply-corr", 26, 3, 2, 512),
		la("ply-covar", 26, 3, 2, 512),
		la("ply-fdtd", 28, 3, 2, 896),
		la("ply-adi", 24, 3, 2, 768),
		la("ply-jac1d", 22, 2, 2, 384),
		la("ply-jac2d", 24, 3, 2, 640),
	}
	return apps, b.Err()
}

// DeepBench builds twelve CNN/RNN training and inference kernels. They
// lean on the tensor pipes, with the train variants carrying larger
// working sets (Table III: db-conv-tr/inf, db-rnn-tr/inf).
func DeepBench() ([]App, error) {
	b := new(suiteBuilder)
	mk := func(name string, sensitive bool, p Profile) App {
		p.Name = name
		return App{Name: name, Suite: "deepbench", Sensitive: sensitive, Kernels: b.kernelsOf(&p)}
	}
	stream := func(kb uint32) isa.MemTrait {
		return isa.MemTrait{Pattern: isa.PatCoalesced, Footprint: kb << 10, Shared: true}
	}
	dims := []struct {
		tag   string
		scale int
	}{{"s", 1}, {"l", 2}}
	var apps []App
	for _, d := range dims {
		apps = append(apps,
			mk(fmt.Sprintf("db-conv-tr-%s", d.tag), d.scale == 2, Profile{
				Blocks: 24 * d.scale, WarpsPerBlock: 8, RegsPerThread: 48, Iters: 24, ILP: 4,
				OperandMode: OperandsClustered,
				Tensors:     2, FMAs: 3, Loads: 1, LoadTrait: stream(uint32(1024 * d.scale)),
				SharedOps: 1, SharedTrait: isa.MemTrait{Pattern: isa.PatCoalesced},
				SharedMemPerBlock: 16 << 10, BarrierEvery: 8,
			}),
			mk(fmt.Sprintf("db-conv-inf-%s", d.tag), d.scale == 2, Profile{
				Blocks: 20 * d.scale, WarpsPerBlock: 8, RegsPerThread: 40, Iters: 20, ILP: 4,
				OperandMode: OperandsClustered,
				Tensors:     2, FMAs: 2, Loads: 1, LoadTrait: stream(uint32(512 * d.scale)),
				SharedMemPerBlock: 8 << 10, BarrierEvery: 10,
			}),
			mk(fmt.Sprintf("db-rnn-tr-%s", d.tag), d.scale == 2, Profile{
				Blocks: 20 * d.scale, WarpsPerBlock: 8, RegsPerThread: 44, Iters: 24, ILP: 4,
				OperandMode: OperandsClustered,
				Tensors:     1, FMAs: 4, SFUs: 1, Loads: 1, LoadTrait: stream(uint32(768 * d.scale)),
			}),
			mk(fmt.Sprintf("db-rnn-inf-%s", d.tag), d.scale == 2, Profile{
				Blocks: 16 * d.scale, WarpsPerBlock: 8, RegsPerThread: 36, Iters: 20, ILP: 4,
				OperandMode: OperandsClustered,
				Tensors:     1, FMAs: 3, SFUs: 1, Loads: 1, LoadTrait: stream(uint32(384 * d.scale)),
			}),
			mk(fmt.Sprintf("db-gemm-tr-%s", d.tag), false, Profile{
				Blocks: 24 * d.scale, WarpsPerBlock: 8, RegsPerThread: 48, Iters: 26, ILP: 4,
				Tensors: 2, FMAs: 1, SharedOps: 1, SharedTrait: isa.MemTrait{Pattern: isa.PatCoalesced},
				SharedMemPerBlock: 16 << 10, BarrierEvery: 13,
			}),
			mk(fmt.Sprintf("db-gemm-inf-%s", d.tag), false, Profile{
				Blocks: 20 * d.scale, WarpsPerBlock: 8, RegsPerThread: 40, Iters: 22, ILP: 4,
				Tensors: 2, Loads: 1, LoadTrait: stream(uint32(512 * d.scale)),
			}),
		)
	}
	return apps, b.Err()
}

// Cutlass builds six tiled matrix-multiply problem sizes. The 4096 case
// is Table III's sensitive entry.
func Cutlass() ([]App, error) {
	b := new(suiteBuilder)
	sizes := []int{256, 512, 1024, 2048, 4096, 8192}
	apps := make([]App, 0, len(sizes))
	for _, n := range sizes {
		blocks := 8 + n/256
		iters := 16 + n/128
		p := Profile{
			Name:              fmt.Sprintf("cutlass-%d", n),
			Blocks:            blocks,
			WarpsPerBlock:     8,
			RegsPerThread:     56,
			Iters:             iters,
			ILP:               6,
			FMAs:              4,
			Tensors:           1,
			SharedOps:         1,
			SharedTrait:       isa.MemTrait{Pattern: isa.PatCoalesced},
			SharedMemPerBlock: 24 << 10,
			BarrierEvery:      8,
			Loads:             1,
			LoadTrait:         isa.MemTrait{Pattern: isa.PatCoalesced, Footprint: uint32(n) << 8, Shared: true},
		}
		apps = append(apps, App{
			Name: p.Name, Suite: "cutlass",
			Sensitive:   n == 4096,
			RFSensitive: n >= 4096,
			Kernels:     b.kernelsOf(&p),
		})
	}
	return apps, b.Err()
}

// suiteBuilder collects profile-validation failures during suite
// construction so a bad profile surfaces as a returned error from the
// suite constructor instead of panicking mid-build.
type suiteBuilder struct {
	errs []error
}

// kernelsOf validates and materializes a single-kernel app, recording
// (and returning nil kernels for) invalid profiles.
func (b *suiteBuilder) kernelsOf(p *Profile) []*gpu.Kernel {
	if err := p.Validate(); err != nil {
		b.errs = append(b.errs, fmt.Errorf("workloads: profile %q: %w", p.Name, err))
		return nil
	}
	return []*gpu.Kernel{p.Kernel()}
}

// Err reports the collected validation failures, if any.
func (b *suiteBuilder) Err() error { return errors.Join(b.errs...) }
