package workloads

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/program"
)

// TestCensus pins the evaluation set composition to Section V: 112
// applications across 8 suites.
func TestCensus(t *testing.T) {
	apps, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 112 {
		t.Fatalf("total applications = %d, want 112", len(apps))
	}
	want := map[string]int{
		"tpch-u": 22, "tpch-c": 22, "cugraph": 7, "rodinia": 15,
		"parboil": 10, "polybench": 18, "deepbench": 12, "cutlass": 6,
	}
	got := map[string]int{}
	for _, a := range apps {
		got[a.Suite]++
	}
	for s, n := range want {
		if got[s] != n {
			t.Errorf("suite %s has %d apps, want %d", s, got[s], n)
		}
	}
	if len(got) != 8 {
		t.Errorf("suites = %d, want 8", len(got))
	}
	suites, err := Suites()
	if err != nil {
		t.Fatal(err)
	}
	if len(suites) != 8 {
		t.Errorf("Suites() = %v, want 8 entries", suites)
	}
}

func TestNamesUniqueAndWellFormed(t *testing.T) {
	seen := map[string]bool{}
	apps, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range apps {
		if seen[a.Name] {
			t.Errorf("duplicate app name %q", a.Name)
		}
		seen[a.Name] = true
		if len(a.Kernels) == 0 {
			t.Errorf("%s has no kernels", a.Name)
		}
		if a.Suite == "" {
			t.Errorf("%s has no suite", a.Name)
		}
	}
}

// TestTableIIIRoster checks the named sensitive applications of Table III
// are present and flagged.
func TestTableIIIRoster(t *testing.T) {
	roster := []string{
		"tpcU-q8", "tpcC-q9", "pb-mriq", "pb-mrig", "pb-sad", "pb-sgemm",
		"pb-cutcp", "cutlass-4096", "rod-lavaMD", "rod-bp", "rod-srad",
		"rod-htsp", "cg-lou", "cg-bfs", "cg-sssp", "cg-pgrnk", "cg-wcc",
		"cg-katz", "cg-hits", "ply-2Dcon", "ply-3Dcon",
	}
	for _, name := range roster {
		a, err := ByName(name)
		if err != nil {
			t.Errorf("Table III app %s missing: %v", name, err)
			continue
		}
		if !a.Sensitive {
			t.Errorf("Table III app %s not flagged sensitive", name)
		}
	}
	// DeepBench Table III entries map to the large variants.
	for _, name := range []string{"db-conv-tr-l", "db-conv-inf-l", "db-rnn-tr-l", "db-rnn-inf-l"} {
		a, err := ByName(name)
		if err != nil || !a.Sensitive {
			t.Errorf("DeepBench sensitive app %s missing or unflagged", name)
		}
	}
}

func TestSubsetsNonEmptyAndConsistent(t *testing.T) {
	sens, err := Sensitive()
	if err != nil {
		t.Fatal(err)
	}
	if len(sens) < 20 {
		t.Errorf("sensitive subset = %d apps, want >= 20", len(sens))
	}
	rf, err := RFSensitive()
	if err != nil {
		t.Fatal(err)
	}
	if len(rf) < 10 {
		t.Errorf("RF-sensitive subset = %d apps, want >= 10", len(rf))
	}
	for _, a := range rf {
		if !a.RFSensitive {
			t.Errorf("%s in RFSensitive() without flag", a.Name)
		}
	}
	if _, err := ByName("no-such-app"); err == nil {
		t.Error("ByName must fail for unknown apps")
	}
	if got, err := BySuite("cugraph"); err != nil || len(got) != 7 {
		t.Errorf("BySuite(cugraph) = %d (err %v), want 7", len(got), err)
	}
}

// TestAllKernelsValidate runs every kernel through gpu.Kernel.Validate
// against the baseline configuration.
func TestAllKernelsValidate(t *testing.T) {
	cfg := config.VoltaV100()
	apps, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range apps {
		for _, k := range a.Kernels {
			if err := k.Validate(&cfg); err != nil {
				t.Errorf("%s: %v", a.Name, err)
			}
		}
	}
}

// TestAppSizesBounded keeps the evaluation tractable: each app's dynamic
// instruction count must be large enough to exercise the pipeline but
// small enough for full-suite sweeps.
func TestAppSizesBounded(t *testing.T) {
	apps, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range apps {
		n := a.Instructions()
		if n < 5_000 {
			t.Errorf("%s: only %d instructions, too small", a.Name, n)
		}
		if n > 2_000_000 {
			t.Errorf("%s: %d instructions, too large for sweeps", a.Name, n)
		}
	}
}

func TestTPCHImbalancePattern(t *testing.T) {
	apps := TPCH(false)
	if len(apps) != 22 {
		t.Fatalf("TPCH = %d queries, want 22", len(apps))
	}
	// Every stage kernel gives warp 0 more work than warp 1 (one long
	// warp in four).
	k := apps[0].Kernels[0]
	p0 := k.WarpProgram(0, 0)
	p1 := k.WarpProgram(0, 1)
	p4 := k.WarpProgram(0, 4)
	if p0.Len() <= p1.Len() {
		t.Errorf("warp0 len %d not > warp1 len %d", p0.Len(), p1.Len())
	}
	if p4.Len() != p0.Len() {
		t.Errorf("warp4 len %d != warp0 len %d (pattern repeats every 4)", p4.Len(), p0.Len())
	}
}

func TestCompressedTPCHHasDecompressKernel(t *testing.T) {
	apps := TPCH(true)
	for _, a := range apps {
		if !strings.Contains(a.Kernels[0].Name, "decomp") {
			t.Errorf("%s does not lead with a decompression kernel", a.Name)
		}
	}
	// The snappy kernel's leader warp carries ~80x the work.
	k := apps[0].Kernels[0]
	lead := k.WarpProgram(0, 0).Len()
	help := k.WarpProgram(0, 1).Len()
	if lead < 20*help {
		t.Errorf("decompress leader/helper = %d/%d, want >= 20x", lead, help)
	}
}

func TestFMAMicroLayouts(t *testing.T) {
	base := FMAMicro(FMABaseline, 256)
	bal := FMAMicro(FMABalanced, 256)
	unb := FMAMicro(FMAUnbalanced, 256)
	if base.WarpsPerBlock != 8 {
		t.Errorf("baseline warps = %d, want 8", base.WarpsPerBlock)
	}
	if bal.WarpsPerBlock != 32 || unb.WarpsPerBlock != 32 {
		t.Error("balanced/unbalanced must have 32 warps (8 compute + 24 empty)")
	}
	countCompute := func(k *gpu.Kernel, pick func(w int) bool) int {
		n := 0
		for w := 0; w < k.WarpsPerBlock; w++ {
			if k.WarpProgram(0, w).Len() > 10 {
				if !pick(w) {
					t.Errorf("%s: warp %d unexpectedly compute", k.Name, w)
				}
				n++
			}
		}
		return n
	}
	if n := countCompute(unb, func(w int) bool { return w%4 == 0 }); n != 8 {
		t.Errorf("unbalanced compute warps = %d, want 8", n)
	}
	if n := countCompute(bal, func(w int) bool { return w < 8 }); n != 8 {
		t.Errorf("balanced compute warps = %d, want 8", n)
	}
	if FMABaseline.String() != "baseline" || FMAUnbalanced.String() != "unbalanced" {
		t.Error("layout names wrong")
	}
}

func TestRFStressMicros(t *testing.T) {
	cfg := config.VoltaV100()
	for v := 0; v < NumRFStressMicros; v++ {
		k := RFStressMicro(v)
		if err := k.Validate(&cfg); err != nil {
			t.Errorf("rfstress-%d: %v", v, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range variant must panic")
		}
	}()
	RFStressMicro(99)
}

func TestProfileValidate(t *testing.T) {
	ok := Profile{Name: "x", Blocks: 1, WarpsPerBlock: 1, RegsPerThread: 8, Iters: 1, FMAs: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
	bads := []Profile{
		{Blocks: 1, WarpsPerBlock: 1, RegsPerThread: 8, Iters: 1, FMAs: 1},
		{Name: "x", WarpsPerBlock: 1, RegsPerThread: 8, Iters: 1, FMAs: 1},
		{Name: "x", Blocks: 1, WarpsPerBlock: 1, RegsPerThread: 8, FMAs: 1},
		{Name: "x", Blocks: 1, WarpsPerBlock: 1, Iters: 1, FMAs: 1},
		{Name: "x", Blocks: 1, WarpsPerBlock: 1, RegsPerThread: 8, Iters: 1},
		{Name: "x", Blocks: 1, WarpsPerBlock: 1, RegsPerThread: 8, Iters: 4, FMAs: 1,
			BarrierEvery: 2, WarpWork: func(int) float64 { return 2 }},
	}
	for i, b := range bads {
		if err := b.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestProfileBarrierExpansion(t *testing.T) {
	p := Profile{Name: "b", Blocks: 1, WarpsPerBlock: 2, RegsPerThread: 8,
		Iters: 10, FMAs: 1, BarrierEvery: 3, EndBarrier: true}
	k := p.Kernel()
	prog := k.WarpProgram(0, 0)
	bars := 0
	c := prog.Cursor()
	for {
		in, ok := c.Next()
		if !ok {
			break
		}
		if in.Op == isa.OpBAR {
			bars++
		}
	}
	// 10 iters, barrier cadence 3 rounds up to one unrolled group (4
	// iters): 2 in-loop barriers + 1 end barrier.
	if bars != 3 {
		t.Errorf("barriers = %d, want 3", bars)
	}
}

func TestProfileProgramsMemoized(t *testing.T) {
	p := Profile{Name: "m", Blocks: 4, WarpsPerBlock: 8, RegsPerThread: 8,
		Iters: 10, FMAs: 1,
		WarpWork: func(w int) float64 {
			if w%4 == 0 {
				return 4
			}
			return 1
		}}
	k := p.Kernel()
	if k.WarpProgram(0, 1) != k.WarpProgram(3, 2) {
		t.Error("same-multiplier warps must share one program")
	}
	if k.WarpProgram(0, 0) == k.WarpProgram(0, 1) {
		t.Error("different multipliers must get different programs")
	}
}

var sinkProg *program.Program

func BenchmarkBuildAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		apps, err := All()
		if err != nil {
			b.Fatal(err)
		}
		sinkProg = apps[0].Kernels[0].WarpProgram(0, 0)
	}
}
