package workloads

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/gpu"
)

// App is one benchmark application: a named sequence of kernels plus the
// classification flags the experiments select on.
type App struct {
	// Name is the figure abbreviation (Table III style), e.g. "tpcU-q8".
	Name string
	// Suite is the benchmark suite, e.g. "tpch-u", "cugraph".
	Suite string
	// Sensitive marks the Fig. 10 subset: applications limited by the
	// read-operand stage or by sub-core issue imbalance.
	Sensitive bool
	// RFSensitive marks the register-file-throughput-limited subset used
	// by Figs. 11/12/14.
	RFSensitive bool
	// Kernels run sequentially.
	Kernels []*gpu.Kernel
}

// Instructions returns the app's total dynamic instruction count.
func (a *App) Instructions() int64 {
	var t int64
	for _, k := range a.Kernels {
		t += k.Instructions()
	}
	return t
}

// The full application set is immutable after construction, so it is
// built once and memoized; a profile-validation failure in any suite
// constructor is memoized too and surfaced by every accessor.
var (
	allOnce sync.Once
	allApps []App
	allErr  error
)

func buildAll() ([]App, error) {
	var apps []App
	apps = append(apps, TPCH(false)...)
	apps = append(apps, TPCH(true)...)
	for _, build := range []func() ([]App, error){
		CuGraph, Rodinia, Parboil, Polybench, DeepBench, Cutlass,
	} {
		suite, err := build()
		if err != nil {
			return nil, err
		}
		apps = append(apps, suite...)
	}
	sort.Slice(apps, func(i, j int) bool {
		if apps[i].Suite != apps[j].Suite {
			return apps[i].Suite < apps[j].Suite
		}
		return apps[i].Name < apps[j].Name
	})
	return apps, nil
}

// All returns the full 112-application evaluation set, sorted by suite
// then name. The composition matches Section V: TPC-H compressed and
// uncompressed (22 queries each), cuGraph (7), Rodinia (15), Parboil
// (10), Polybench (18), DeepBench (12), and Cutlass (6). A suite whose
// profiles fail validation surfaces here as an error.
func All() ([]App, error) {
	allOnce.Do(func() { allApps, allErr = buildAll() })
	if allErr != nil {
		return nil, allErr
	}
	// Fresh slice header: callers may sort or truncate their copy.
	return append([]App(nil), allApps...), nil
}

// Sensitive returns the Fig. 10 subset of All.
func Sensitive() ([]App, error) {
	return filtered(func(a *App) bool { return a.Sensitive })
}

// RFSensitive returns the register-file-limited subset (Figs. 11/12/14).
func RFSensitive() ([]App, error) {
	return filtered(func(a *App) bool { return a.RFSensitive })
}

func filtered(keep func(*App) bool) ([]App, error) {
	all, err := All()
	if err != nil {
		return nil, err
	}
	var out []App
	for _, a := range all {
		if keep(&a) {
			out = append(out, a)
		}
	}
	return out, nil
}

// ByName finds an application in All.
func ByName(name string) (App, error) {
	all, err := All()
	if err != nil {
		return App{}, err
	}
	for _, a := range all {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("workloads: unknown application %q", name)
}

// Suites lists the suite identifiers in All.
func Suites() ([]string, error) {
	all, err := All()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	for _, a := range all {
		if !seen[a.Suite] {
			seen[a.Suite] = true
			out = append(out, a.Suite)
		}
	}
	sort.Strings(out)
	return out, nil
}

// BySuite returns the apps of one suite.
func BySuite(suite string) ([]App, error) {
	return filtered(func(a *App) bool { return a.Suite == suite })
}
