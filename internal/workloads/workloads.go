package workloads

import (
	"fmt"
	"sort"

	"repro/internal/gpu"
)

// App is one benchmark application: a named sequence of kernels plus the
// classification flags the experiments select on.
type App struct {
	// Name is the figure abbreviation (Table III style), e.g. "tpcU-q8".
	Name string
	// Suite is the benchmark suite, e.g. "tpch-u", "cugraph".
	Suite string
	// Sensitive marks the Fig. 10 subset: applications limited by the
	// read-operand stage or by sub-core issue imbalance.
	Sensitive bool
	// RFSensitive marks the register-file-throughput-limited subset used
	// by Figs. 11/12/14.
	RFSensitive bool
	// Kernels run sequentially.
	Kernels []*gpu.Kernel
}

// Instructions returns the app's total dynamic instruction count.
func (a *App) Instructions() int64 {
	var t int64
	for _, k := range a.Kernels {
		t += k.Instructions()
	}
	return t
}

// All returns the full 112-application evaluation set, sorted by suite
// then name. The composition matches Section V: TPC-H compressed and
// uncompressed (22 queries each), cuGraph (7), Rodinia (15), Parboil
// (10), Polybench (18), DeepBench (12), and Cutlass (6).
func All() []App {
	var apps []App
	apps = append(apps, TPCH(false)...)
	apps = append(apps, TPCH(true)...)
	apps = append(apps, CuGraph()...)
	apps = append(apps, Rodinia()...)
	apps = append(apps, Parboil()...)
	apps = append(apps, Polybench()...)
	apps = append(apps, DeepBench()...)
	apps = append(apps, Cutlass()...)
	sort.Slice(apps, func(i, j int) bool {
		if apps[i].Suite != apps[j].Suite {
			return apps[i].Suite < apps[j].Suite
		}
		return apps[i].Name < apps[j].Name
	})
	return apps
}

// Sensitive returns the Fig. 10 subset of All.
func Sensitive() []App {
	var out []App
	for _, a := range All() {
		if a.Sensitive {
			out = append(out, a)
		}
	}
	return out
}

// RFSensitive returns the register-file-limited subset (Figs. 11/12/14).
func RFSensitive() []App {
	var out []App
	for _, a := range All() {
		if a.RFSensitive {
			out = append(out, a)
		}
	}
	return out
}

// ByName finds an application in All.
func ByName(name string) (App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("workloads: unknown application %q", name)
}

// Suites lists the suite identifiers in All.
func Suites() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range All() {
		if !seen[a.Suite] {
			seen[a.Suite] = true
			out = append(out, a.Suite)
		}
	}
	sort.Strings(out)
	return out
}

// BySuite returns the apps of one suite.
func BySuite(suite string) []App {
	var out []App
	for _, a := range All() {
		if a.Suite == suite {
			out = append(out, a)
		}
	}
	return out
}
