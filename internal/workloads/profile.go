// Package workloads synthesizes the paper's evaluation workloads: 112
// applications across 8 benchmark suites (Section V, Table III), the FMA
// imbalance microbenchmarks of Figures 3/4/8, and the seven register-file
// stress microbenchmarks used to validate the collector-unit count.
//
// Substitution note (see DESIGN.md): the paper drives Accel-Sim with SASS
// traces of the real applications. Traces are unavailable here, so each
// application is generated from a Profile capturing the properties the
// paper's two effects depend on: instruction mix and operand shapes
// (register-bank pressure), instruction-level parallelism, memory access
// patterns and footprints (LSU/cache pressure), barrier cadence, and —
// critically — the distribution of per-warp work within a thread block
// (inter-warp divergence). Suite parameters are set from the paper's
// descriptions: TPC-H's warp-specialized one-long-warp-in-four pattern
// with ~100x imbalance in snappy decompression kernels, cuGraph's
// register-intensive repeated-operand behaviour, Parboil/Polybench's
// read-operand-stage saturation, DeepBench/Cutlass's tensor-pipe use.
package workloads

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/program"
)

// Profile parameterizes one synthetic kernel.
type Profile struct {
	// Name labels the kernel.
	Name string
	// Blocks and WarpsPerBlock shape the grid.
	Blocks        int
	WarpsPerBlock int
	// RegsPerThread is the occupancy-limiting register footprint.
	RegsPerThread int
	// SharedMemPerBlock is the scratchpad reservation in bytes.
	SharedMemPerBlock int

	// Iters is the main loop trip count for a baseline (1.0x) warp.
	Iters int
	// ILP is the number of independent accumulator chains.
	ILP int

	// Per-iteration operation mix.
	FMAs    int
	IAdds   int
	SFUs    int
	Tensors int
	// Loads/Stores are global accesses per iteration with their traits.
	Loads      int
	LoadTrait  isa.MemTrait
	Stores     int
	StoreTrait isa.MemTrait
	// SharedOps are scratchpad accesses per iteration.
	SharedOps   int
	SharedTrait isa.MemTrait

	// OperandMode selects how FMA source registers are laid out.
	OperandMode OperandMode

	// BarrierEvery inserts a block-wide barrier every n iterations
	// (0 = none); EndBarrier adds one before exit.
	BarrierEvery int
	EndBarrier   bool

	// WarpWork scales a warp's Iters by position in its block (the
	// inter-warp-divergence knob). nil means uniform 1.0.
	WarpWork func(warpInBlock int) float64
}

// OperandMode selects FMA register layouts with different bank behaviour.
type OperandMode uint8

const (
	// OperandsSpread walks many distinct registers with mixed bank
	// parities — kernels whose compiler found a conflict-free layout.
	OperandsSpread OperandMode = iota
	// OperandsNarrow reuses a small set of same-parity source registers
	// (cuGraph's behaviour: extra banks do not help, scheduling does).
	OperandsNarrow
	// OperandsClustered places each instruction's sources in one bank
	// parity class, alternating classes between instructions — the
	// real-SASS pattern that makes the read-operand stage the bottleneck
	// on two-bank sub-cores: whichever warp issues, its three reads pile
	// onto one bank queue, and the scheduler's choice of *which* warp
	// (hence which parity, after the per-slot swizzle) decides whether
	// bank load stays balanced. This is the layout RBA exploits.
	OperandsClustered
	// OperandsConflicting pins all sources to a single parity class
	// permanently (the RF-stress microbenchmarks' worst case).
	OperandsConflicting
)

// Kernel materializes the profile into a runnable kernel. Per-warp
// programs are memoized by (work multiplier, parity flip), so grids of
// any size stay cheap to build.
//
// Clustered-operand kernels flip their bank parity class per thread
// block: different launches of the same code end up with different
// register assignments in real compilations, and block churn is what
// gives register-bank pressure its slow (hundreds of cycles) drift — the
// stability that lets RBA tolerate stale scores (Section VI-B4).
func (p *Profile) Kernel() *gpu.Kernel {
	type key struct {
		iters int64
		flip  bool
	}
	cache := make(map[key]*program.Program)
	base := func(mult float64, flip bool) *program.Program {
		iters := int64(float64(p.Iters)*mult + 0.5)
		if iters < 1 {
			iters = 1
		}
		k := key{iters, flip}
		if prog, ok := cache[k]; ok {
			return prog
		}
		prog := p.build(iters, flip)
		cache[k] = prog
		return prog
	}
	return &gpu.Kernel{
		Name:              p.Name,
		Blocks:            p.Blocks,
		WarpsPerBlock:     p.WarpsPerBlock,
		RegsPerThread:     p.RegsPerThread,
		SharedMemPerBlock: p.SharedMemPerBlock,
		WarpProgram: func(block, warp int) *program.Program {
			mult := 1.0
			if p.WarpWork != nil {
				mult = p.WarpWork(warp)
			}
			flip := p.OperandMode == OperandsClustered && block&1 == 1
			return base(mult, flip)
		},
	}
}

// build emits the program for one warp with the given trip count;
// flip inverts the clustered bank parity class (per-block variation).
func (p *Profile) build(iters int64, flip bool) *program.Program {
	b := program.NewBuilder()
	ilp := p.ILP
	if ilp < 1 {
		ilp = 1
	}
	// Register plan: R1-R3 constants, accumulators from R4, a rotated
	// load-target window after them, then scratch. In clustered mode the
	// accumulator tracks the source-operand parity phase so all three
	// operands of an FMA share a bank class.
	fpar := 0
	if flip {
		fpar = 1
	}
	acc := func(i int) isa.Reg { return isa.Reg(4 + i%ilp) }

	// The loop body is unrolled by a factor of `unroll` with the memory
	// target registers rotated across phases — the software pipelining
	// every production compiler applies, without which each iteration's
	// load would WAW-serialize on its predecessor at full memory latency.
	const unroll = 4
	memRegs := p.Loads + p.SharedOps
	if memRegs < 1 {
		memRegs = 1
	}
	ldBase := 4 + ilp + (ilp & 1) + 16 // past the scratch window fmaSources uses
	ldT := func(phase, i int) isa.Reg {
		return isa.Reg(ldBase + (phase*memRegs+i)%(unroll*memRegs))
	}

	// A little setup prologue (kernel argument reads, address setup).
	b.LDC(1)
	b.LDC(2)
	b.IADD(3, 1, 2)

	emit := func(lb *program.Builder, phase int) {
		for i := 0; i < p.Loads; i++ {
			lb.LDG(ldT(phase, i), 3, p.LoadTrait)
		}
		for i := 0; i < p.SharedOps; i++ {
			lb.LDS(ldT(phase, p.Loads+i), 3, p.SharedTrait)
		}
		for i := 0; i < p.FMAs; i++ {
			d := acc(phase*p.FMAs + i)
			a, c := p.fmaSources(phase*p.FMAs+i, ilp, fpar)
			// The first FMA folds the *previous* phase's loaded value in,
			// so loads feed compute one unroll phase later (pipelined).
			if p.Loads > 0 && i == 0 {
				a = ldT(phase+unroll-1, 0)
			}
			lb.FMA(d, a, c, d)
		}
		for i := 0; i < p.IAdds; i++ {
			lb.IADD(acc(phase*p.IAdds+i), 3, acc(phase*p.IAdds+i))
		}
		for i := 0; i < p.SFUs; i++ {
			lb.SFU(acc(phase+i), acc(phase+i))
		}
		for i := 0; i < p.Tensors; i++ {
			d := acc(phase*p.Tensors + i)
			lb.Tensor(d, 1, 2, d)
		}
		for i := 0; i < p.Stores; i++ {
			lb.STG(3, acc(phase+i), p.StoreTrait)
		}
	}
	body := func(lb *program.Builder) {
		for ph := 0; ph < unroll; ph++ {
			emit(lb, ph)
		}
	}
	tail := func(n int64) {
		if n <= 0 {
			return
		}
		b.Loop(n, func(lb *program.Builder) { emit(lb, 0) })
	}

	// Barriers inside the loop are only legal when every warp runs the
	// same trip count (WarpWork == nil); Validate enforces this. The
	// barrier cadence rounds to whole unrolled groups.
	if p.BarrierEvery > 0 && int64(p.BarrierEvery) < iters {
		groupsPerRound := int64(p.BarrierEvery) / unroll
		if groupsPerRound < 1 {
			groupsPerRound = 1
		}
		perRound := groupsPerRound * unroll
		rounds := iters / perRound
		rem := iters - rounds*perRound
		if rounds > 0 {
			b.Loop(rounds, func(lb *program.Builder) {
				lb.Loop(groupsPerRound, body)
				lb.Bar()
			})
		}
		tail(rem)
	} else {
		groups := iters / unroll
		if groups > 0 {
			b.Loop(groups, body)
		}
		tail(iters - groups*unroll)
	}
	if p.EndBarrier {
		b.Bar()
	}
	return b.MustBuild()
}

// clusterPhaseShift sets how long (in instructions, log2) a clustered
// kernel keeps its operands in one bank parity class.
const clusterPhaseShift = 5

// fmaSources picks the two non-accumulator sources per OperandMode;
// fpar inverts the clustered parity class.
func (p *Profile) fmaSources(i, ilp, fpar int) (isa.Reg, isa.Reg) {
	base := 4 + ilp
	base += base & 1 // even-aligned scratch window
	switch p.OperandMode {
	case OperandsNarrow:
		return isa.Reg(base), isa.Reg(base + 2)
	case OperandsClustered:
		// Parity phases persist for 2^clusterPhaseShift instructions:
		// real kernels keep their operand pressure on one bank class for
		// whole expression trees, which is why stale RBA scores remain
		// useful (Section VI-B4). Which bank a warp pressures is set by
		// its slot swizzle, so co-resident warps differ.
		par := ((i >> clusterPhaseShift) & 1) ^ fpar
		return isa.Reg(base + 2*(i%5) + par), isa.Reg(base + 2*((i*3+1)%5) + par)
	case OperandsConflicting:
		return isa.Reg(base + 2*(i%3)), isa.Reg(base + 2*((i+1)%3))
	default:
		return isa.Reg(base + i%7), isa.Reg(base + 7 + (i*3)%11)
	}
}

// Validate sanity-checks the profile.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workloads: profile without name")
	case p.Blocks < 1 || p.WarpsPerBlock < 1:
		return fmt.Errorf("workloads: %s has empty grid", p.Name)
	case p.Iters < 1:
		return fmt.Errorf("workloads: %s has no iterations", p.Name)
	case p.RegsPerThread < 1:
		return fmt.Errorf("workloads: %s has no registers", p.Name)
	case p.FMAs+p.IAdds+p.SFUs+p.Tensors+p.Loads+p.Stores+p.SharedOps == 0:
		return fmt.Errorf("workloads: %s has an empty body", p.Name)
	case p.BarrierEvery > 0 && p.WarpWork != nil:
		return fmt.Errorf("workloads: %s mixes in-loop barriers with divergent warp work (would deadlock)", p.Name)
	}
	return nil
}
