package workloads

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
)

func TestBankConflictMicroShape(t *testing.T) {
	k := BankConflictMicro()
	cfg := config.VoltaV100()
	if err := k.Validate(&cfg); err != nil {
		t.Fatal(err)
	}
	// Every FMA's three source registers share one parity class (even).
	prog := k.WarpProgram(0, 0)
	c := prog.Cursor()
	for {
		in, ok := c.Next()
		if !ok {
			break
		}
		if in.Op != isa.OpFMA {
			continue
		}
		for _, s := range in.Srcs {
			if s.Valid() && s%2 != 0 {
				t.Fatalf("operand R%d breaks the parity clustering", s)
			}
		}
	}
}

func TestEUDiverseMicroLayout(t *testing.T) {
	k := EUDiverseMicro()
	cfg := config.VoltaV100()
	if err := k.Validate(&cfg); err != nil {
		t.Fatal(err)
	}
	countClass := func(w int, class isa.Class) int {
		n := 0
		c := k.WarpProgram(0, w).Cursor()
		for {
			in, ok := c.Next()
			if !ok {
				return n
			}
			if in.Op.UnitOf() == class {
				n++
			}
		}
	}
	// Warp 0: tensor-heavy; warp 1: SFU-heavy.
	if countClass(0, isa.ClassTensor) == 0 || countClass(0, isa.ClassSFU) != 0 {
		t.Error("warp 0 must be tensor-specialized")
	}
	if countClass(1, isa.ClassSFU) == 0 || countClass(1, isa.ClassTensor) != 0 {
		t.Error("warp 1 must be SFU-specialized")
	}
	// One tensor warp in four.
	tensorWarps := 0
	for w := 0; w < k.WarpsPerBlock; w++ {
		if countClass(w, isa.ClassTensor) > 0 {
			tensorWarps++
		}
	}
	if tensorWarps != k.WarpsPerBlock/4 {
		t.Errorf("tensor warps = %d, want %d", tensorWarps, k.WarpsPerBlock/4)
	}
}

func TestRegCapacityPairShapes(t *testing.T) {
	fat, thin := RegCapacityPair()
	cfg := config.VoltaV100()
	if err := fat.Validate(&cfg); err != nil {
		t.Fatal(err)
	}
	if err := thin.Validate(&cfg); err != nil {
		t.Fatal(err)
	}
	// The fat kernel's per-warp register footprint must be a large
	// fraction of one sub-core's file.
	fatBytes := fat.RegsPerThread * 32 * 4
	if fatBytes*4 < cfg.RegFileKBPerSubCore*1024 {
		t.Errorf("fat warp footprint %dB too small to stress capacity", fatBytes)
	}
	if thin.RegsPerThread >= fat.RegsPerThread/2 {
		t.Error("thin kernel not meaningfully thinner")
	}
	// The fat warp runs much longer than the thin warp.
	if fat.WarpProgram(0, 0).Len() < 3*thin.WarpProgram(0, 0).Len() {
		t.Error("fat warps should dominate runtime")
	}
}
