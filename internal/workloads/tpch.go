package workloads

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/isa"
)

// tpchQuery captures the per-query character of the 22 TPC-H queries as
// executed by spark-rapids (Section V): how many GPU kernels the plan
// lowers to, how memory-heavy the scans are, and how skewed the warp work
// is. The paper's key observation is structural: these kernels are
// warp-specialized with roughly one long-running warp in every four
// (Section IV-B2), so round-robin sub-core assignment parks every long
// warp on the same sub-core.
type tpchQuery struct {
	// kernels is the number of stages (scan/filter/join/aggregate).
	kernels int
	// skew is the long-warp work multiplier (uncompressed database).
	skew float64
	// footprintKB sizes the scan/probe working set.
	footprintKB int
	// joins marks a join-heavy plan (random-access probe stage).
	joins bool
}

// The per-query plan shapes. Skews are set so the baseline coefficient of
// variation of per-sub-core issue lands near the paper's Fig. 17 (~0.8 on
// average, ~1.0 for query 8) and the plan sizes loosely track the
// published query complexities (q1 = heavy aggregation, q9/q8 = largest
// multi-join plans, q6 = cheap selective scan...).
var tpchQueries = [22]tpchQuery{
	{kernels: 2, skew: 6, footprintKB: 512, joins: false}, // q1
	{kernels: 3, skew: 4, footprintKB: 256, joins: true},  // q2
	{kernels: 3, skew: 5, footprintKB: 384, joins: true},  // q3
	{kernels: 2, skew: 4, footprintKB: 256, joins: true},  // q4
	{kernels: 4, skew: 6, footprintKB: 384, joins: true},  // q5
	{kernels: 1, skew: 4, footprintKB: 256, joins: false}, // q6
	{kernels: 4, skew: 6, footprintKB: 384, joins: true},  // q7
	{kernels: 4, skew: 9, footprintKB: 512, joins: true},  // q8 (largest CoV)
	{kernels: 5, skew: 7, footprintKB: 640, joins: true},  // q9
	{kernels: 3, skew: 5, footprintKB: 384, joins: true},  // q10
	{kernels: 2, skew: 4, footprintKB: 192, joins: true},  // q11
	{kernels: 2, skew: 5, footprintKB: 256, joins: true},  // q12
	{kernels: 2, skew: 6, footprintKB: 320, joins: true},  // q13
	{kernels: 2, skew: 4, footprintKB: 256, joins: true},  // q14
	{kernels: 3, skew: 5, footprintKB: 256, joins: true},  // q15
	{kernels: 3, skew: 6, footprintKB: 256, joins: true},  // q16
	{kernels: 2, skew: 7, footprintKB: 320, joins: true},  // q17
	{kernels: 3, skew: 8, footprintKB: 512, joins: true},  // q18
	{kernels: 2, skew: 6, footprintKB: 320, joins: true},  // q19
	{kernels: 3, skew: 5, footprintKB: 256, joins: true},  // q20
	{kernels: 4, skew: 7, footprintKB: 384, joins: true},  // q21
	{kernels: 2, skew: 4, footprintKB: 192, joins: false}, // q22
}

// oneInFour is the TPC-H warp-work distribution: one long warp in every
// four (the pattern SRR was designed for).
func oneInFour(skew float64) func(int) float64 {
	return func(w int) float64 {
		if w%4 == 0 {
			return skew
		}
		return 1
	}
}

// snappyDecompress models the warp-specialized snappy decompression
// kernel that leads the compressed benchmarks: within each block one
// leader warp does ~100x the work of the helpers (Section VI: "average
// issue imbalance on the order of 100x").
func snappyDecompress(q int) *gpu.Kernel {
	p := Profile{
		Name:          fmt.Sprintf("tpcC-q%d.decomp", q+1),
		Blocks:        12,
		WarpsPerBlock: 8,
		RegsPerThread: 32,
		Iters:         5,
		ILP:           6,
		FMAs:          1,
		IAdds:         6,
		Loads:         1,
		LoadTrait:     isa.MemTrait{Pattern: isa.PatCoalesced, Footprint: 256 << 10, Shared: true},
		Stores:        1,
		StoreTrait:    isa.MemTrait{Pattern: isa.PatCoalesced, Footprint: 64 << 10},
		WarpWork: func(w int) float64 {
			if w == 0 {
				return 36
			}
			return 1
		},
	}
	return p.Kernel()
}

// tpchStage builds one query-plan stage kernel.
func tpchStage(name string, q tpchQuery, stage int, compressed bool) *gpu.Kernel {
	skew := q.skew
	if compressed {
		// Decompression pressure shifts some skew into the scan stages
		// as well.
		skew *= 1.3
	}
	p := Profile{
		Name:          name,
		Blocks:        18,
		WarpsPerBlock: 16,
		RegsPerThread: 32,
		Iters:         12,
		ILP:           6,
		IAdds:         4,
		FMAs:          2,
		Loads:         1,
		LoadTrait:     isa.MemTrait{Pattern: isa.PatCoalesced, Footprint: uint32(q.footprintKB) << 10, Shared: true},
		WarpWork:      oneInFour(skew),
	}
	switch {
	case stage == 0:
		// Scan/filter: streaming reads, predicate arithmetic, selective
		// output.
		p.Stores = 1
		p.StoreTrait = isa.MemTrait{Pattern: isa.PatCoalesced, Footprint: 64 << 10}
	case q.joins && stage%2 == 1:
		// Join probe: hash arithmetic plus partially-coalesced gathers.
		p.LoadTrait = isa.MemTrait{Pattern: isa.PatRandom, Footprint: uint32(q.footprintKB) << 10, Shared: true, Divergence: 4}
		p.IAdds = 6
	default:
		// Aggregation: compute plus shared-memory reductions.
		p.SharedOps = 1
		p.SharedTrait = isa.MemTrait{Pattern: isa.PatCoalesced}
		p.SharedMemPerBlock = 4096
		p.FMAs = 3
		p.IAdds = 5
	}
	return p.Kernel()
}

// TPCH builds the 22-query suite; compressed selects the snappy-
// compressed database variant with its decompression kernels.
func TPCH(compressed bool) []App {
	suite, prefix := "tpch-u", "tpcU"
	if compressed {
		suite, prefix = "tpch-c", "tpcC"
	}
	apps := make([]App, 0, 22)
	for qi, q := range tpchQueries {
		name := fmt.Sprintf("%s-q%d", prefix, qi+1)
		var kernels []*gpu.Kernel
		if compressed {
			kernels = append(kernels, snappyDecompress(qi))
		}
		for s := 0; s < q.kernels; s++ {
			kernels = append(kernels, tpchStage(fmt.Sprintf("%s.s%d", name, s), q, s, compressed))
		}
		// Table III picks q8 (uncompressed) and q9 (compressed) as the
		// representative partitioning-sensitive queries.
		sensitive := (!compressed && qi == 7) || (compressed && qi == 8)
		apps = append(apps, App{
			Name:      name,
			Suite:     suite,
			Sensitive: sensitive,
			Kernels:   kernels,
		})
	}
	return apps
}
