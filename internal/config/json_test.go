package config

import (
	"strings"
	"testing"
)

func TestFromJSONOverrides(t *testing.T) {
	g, err := FromJSON(strings.NewReader(`{"NumSMs": 8, "BanksPerSubCore": 4, "WarpScheduler": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSMs != 8 || g.BanksPerSubCore != 4 || g.WarpScheduler != SchedRBA {
		t.Errorf("overrides not applied: %+v", g)
	}
	// Unspecified fields keep Table II defaults.
	if g.MaxWarpsPerSM != 64 || g.CollectorUnitsPerSubCore != 2 {
		t.Error("defaults lost")
	}
}

func TestFromJSONRejectsInvalid(t *testing.T) {
	if _, err := FromJSON(strings.NewReader(`{"NumSMs": 0}`)); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := FromJSON(strings.NewReader(`{"NoSuchField": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := FromJSON(strings.NewReader(`{bad json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}
