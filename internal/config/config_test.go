package config

import (
	"strings"
	"testing"
)

// TestVoltaV100MatchesTableII pins the baseline preset to the paper's
// Table II values (experiment id: tab2).
func TestVoltaV100MatchesTableII(t *testing.T) {
	g := VoltaV100()
	cases := []struct {
		name string
		got  int
		want int
	}{
		{"NumSMs", g.NumSMs, 80},
		{"SubCoresPerSM", g.SubCoresPerSM, 4},
		{"MaxWarpsPerSM", g.MaxWarpsPerSM, 64},
		{"SharedMemBanks", g.SharedMemBanks, 32},
		{"RegFileKBPerSubCore", g.RegFileKBPerSubCore, 64},
		{"BanksPerSubCore", g.BanksPerSubCore, 2},
		{"CollectorUnitsPerSubCore", g.CollectorUnitsPerSubCore, 2},
		{"L1KBPerSM", g.L1KBPerSM, 128},
		{"L2KB", g.L2KB, 6 * 1024},
		{"L2Assoc", g.L2Assoc, 24},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if g.WarpScheduler != SchedGTO {
		t.Errorf("scheduler = %v, want GTO", g.WarpScheduler)
	}
	if g.SubCoreAssign != AssignRR {
		t.Errorf("assign = %v, want RR", g.SubCoreAssign)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("baseline does not validate: %v", err)
	}
}

func TestTPCHVariant(t *testing.T) {
	g := TPCH(VoltaV100())
	if g.NumSMs != 20 {
		t.Errorf("TPC-H NumSMs = %d, want 20", g.NumSMs)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("TPC-H variant does not validate: %v", err)
	}
}

func TestFullyConnectedCapacityParity(t *testing.T) {
	v, fc := VoltaV100(), FullyConnected()
	if fc.SubCoresPerSM != 1 {
		t.Fatalf("FC SubCoresPerSM = %d, want 1", fc.SubCoresPerSM)
	}
	// Same total capacity in every dimension.
	if fc.BanksPerSubCore != v.BanksPerSubCore*v.SubCoresPerSM {
		t.Errorf("FC banks = %d, want %d", fc.BanksPerSubCore, v.BanksPerSubCore*v.SubCoresPerSM)
	}
	if fc.CollectorUnitsPerSubCore != v.CollectorUnitsPerSubCore*v.SubCoresPerSM {
		t.Errorf("FC CUs = %d, want %d", fc.CollectorUnitsPerSubCore, v.CollectorUnitsPerSubCore*v.SubCoresPerSM)
	}
	if fc.SchedulersPerSubCore != v.SchedulersPerSubCore*v.SubCoresPerSM {
		t.Errorf("FC schedulers = %d, want %d", fc.SchedulersPerSubCore, v.SchedulersPerSubCore*v.SubCoresPerSM)
	}
	if fc.FP32LanesPerSubCore != v.FP32LanesPerSubCore*v.SubCoresPerSM {
		t.Errorf("FC FP32 lanes = %d, want %d", fc.FP32LanesPerSubCore, v.FP32LanesPerSubCore*v.SubCoresPerSM)
	}
	if err := fc.Validate(); err != nil {
		t.Errorf("FC does not validate: %v", err)
	}
}

func TestWithHelpers(t *testing.T) {
	g := VoltaV100().WithScheduler(SchedRBA).WithAssign(AssignShuffle).WithCUs(4).WithBanks(4).WithSMs(20)
	if g.WarpScheduler != SchedRBA || g.SubCoreAssign != AssignShuffle {
		t.Error("With helpers did not apply policies")
	}
	if g.CollectorUnitsPerSubCore != 4 || g.BanksPerSubCore != 4 || g.NumSMs != 20 {
		t.Error("With helpers did not apply counts")
	}
	for _, frag := range []string{"RBA", "Shuffle", "4CU", "4bank", "20SM"} {
		if !strings.Contains(g.Name, frag) {
			t.Errorf("name %q missing %q", g.Name, frag)
		}
	}
	if !VoltaV100().WithBankStealing().BankStealing {
		t.Error("WithBankStealing did not enable stealing")
	}
}

func TestDerived(t *testing.T) {
	g := VoltaV100()
	if got := g.WarpsPerSubCore(); got != 16 {
		t.Errorf("WarpsPerSubCore = %d, want 16", got)
	}
	// 64 KB / 4 B = 16384 registers per sub-core; 16 warps x 32 lanes
	// => 32 architectural registers per warp at full occupancy.
	if got := g.RegsPerSubCore(); got != 16384 {
		t.Errorf("RegsPerSubCore = %d, want 16384", got)
	}
	if got := g.RegSlotsPerWarp(); got != 32 {
		t.Errorf("RegSlotsPerWarp = %d, want 32", got)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	mut := []func(*GPU){
		func(g *GPU) { g.NumSMs = 0 },
		func(g *GPU) { g.SubCoresPerSM = 0 },
		func(g *GPU) { g.SchedulersPerSubCore = 0 },
		func(g *GPU) { g.MaxWarpsPerSM = 3 },
		func(g *GPU) { g.MaxWarpsPerSM = 65 },
		func(g *GPU) { g.WarpSize = 64 },
		func(g *GPU) { g.BanksPerSubCore = 0 },
		func(g *GPU) { g.CollectorUnitsPerSubCore = 0 },
		func(g *GPU) { g.LineBytes = 100 },
		func(g *GPU) { g.HashTableEntries = 5 },
		func(g *GPU) { g.RBAScoreLatency = -1 },
	}
	for i, m := range mut {
		g := VoltaV100()
		m(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("mutation %d passed validation", i)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	if SchedGTO.String() != "GTO" || SchedLRR.String() != "LRR" || SchedRBA.String() != "RBA" {
		t.Error("WarpSched String wrong")
	}
	if AssignRR.String() != "RR" || AssignSRR.String() != "SRR" || AssignShuffle.String() != "Shuffle" {
		t.Error("Assign String wrong")
	}
	if !strings.Contains(WarpSched(9).String(), "9") || !strings.Contains(Assign(9).String(), "9") {
		t.Error("unknown policy String wrong")
	}
}
