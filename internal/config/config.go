// Package config defines the simulated GPU's structural and policy
// parameters. The defaults reproduce Table II of the paper (the Accel-Sim
// Volta V100 configuration with 4 sub-cores per SM, 2 register-file banks
// and 2 collector units per sub-core).
package config

import (
	"encoding/json"
	"fmt"
	"io"
)

// WarpSched selects the per-sub-core warp scheduling policy.
type WarpSched uint8

const (
	// SchedGTO is greedy-then-oldest, the paper's baseline.
	SchedGTO WarpSched = iota
	// SchedLRR is loose round-robin.
	SchedLRR
	// SchedRBA is the paper's register-bank-aware scheduler: lowest
	// {RBA score, age-complement} wins.
	SchedRBA
)

// String returns the policy name used in figures.
func (w WarpSched) String() string {
	switch w {
	case SchedGTO:
		return "GTO"
	case SchedLRR:
		return "LRR"
	case SchedRBA:
		return "RBA"
	default:
		return fmt.Sprintf("WarpSched(%d)", uint8(w))
	}
}

// Assign selects the warp-to-sub-core assignment policy applied when a
// thread block is allocated onto an SM.
type Assign uint8

const (
	// AssignRR is the round-robin assignment contemporary hardware uses
	// (established by the paper's microbenchmarking), the baseline.
	AssignRR Assign = iota
	// AssignSRR is the paper's skewed round robin hash:
	// subcore = (W + floor(W/N)) mod N.
	AssignSRR
	// AssignShuffle is the paper's random shuffle hash: a random
	// permutation per group of N warps, balanced to within one warp.
	AssignShuffle
)

// String returns the policy name used in figures.
func (a Assign) String() string {
	switch a {
	case AssignRR:
		return "RR"
	case AssignSRR:
		return "SRR"
	case AssignShuffle:
		return "Shuffle"
	default:
		return fmt.Sprintf("Assign(%d)", uint8(a))
	}
}

// GPU holds every structural and policy parameter of a simulated GPU.
// Construct presets with VoltaV100 and derive variants with the With*
// helpers; Validate before use.
type GPU struct {
	// Name labels the configuration in reports.
	Name string

	// NumSMs is the number of streaming multiprocessors.
	NumSMs int
	// SubCoresPerSM is the partitioning degree (1 = monolithic/fully
	// connected, 4 = Volta/Ampere).
	SubCoresPerSM int
	// SchedulersPerSubCore is the number of warp instructions a sub-core
	// may issue per cycle. Partitioned sub-cores have 1; the hypothetical
	// fully-connected SM is modeled as 1 sub-core with 4 schedulers.
	SchedulersPerSubCore int
	// MaxWarpsPerSM caps resident warps (64 on Volta).
	MaxWarpsPerSM int
	// MaxBlocksPerSM caps resident thread blocks (32 on Volta).
	MaxBlocksPerSM int
	// WarpSize is threads per warp (32).
	WarpSize int

	// RegFileKBPerSubCore is register-file capacity per sub-core (64 KB).
	RegFileKBPerSubCore int
	// BanksPerSubCore is the number of register-file banks a sub-core's
	// warps can place operands in (2 on Volta/Ampere; 8 fully connected).
	BanksPerSubCore int
	// CollectorUnitsPerSubCore is the operand-collector capacity (2 on
	// Volta; the CU-scaling study sweeps this).
	CollectorUnitsPerSubCore int
	// DispatchPortsPerSubCore caps how many collected instructions may
	// leave the operand collector for execution units per cycle (the
	// sub-core's result-bus width). CU scaling adds staging capacity but
	// not dispatch bandwidth, which is what bounds its returns.
	DispatchPortsPerSubCore int

	// FP32LanesPerSubCore, IntLanesPerSubCore, SFULanesPerSubCore size the
	// SIMD pipes (16/16/4 per Volta sub-core).
	FP32LanesPerSubCore int
	IntLanesPerSubCore  int
	SFULanesPerSubCore  int
	// TensorPerSubCore is the number of tensor-core issue ports.
	TensorPerSubCore int

	// SharedMemKBPerSM is scratchpad capacity (part of the 128 KB unified
	// L1/shared on Volta; we expose 96 KB as scratchpad).
	SharedMemKBPerSM int
	// SharedMemBanks is the scratchpad bank count (32).
	SharedMemBanks int
	// LSUWidthPerSM is memory instructions the SM-shared LSU accepts per
	// cycle.
	LSUWidthPerSM int
	// LSUQueue is the LSU input queue depth per SM.
	LSUQueue int

	// L1KBPerSM is L1 data cache capacity (remainder of the 128 KB
	// unified array).
	L1KBPerSM int
	// L1Assoc and LineBytes shape the caches.
	L1Assoc   int
	LineBytes int
	// L2KB and L2Assoc shape the shared L2 (6 MB, 24-way on V100).
	L2KB    int
	L2Assoc int
	// L2Latency is the round-trip from an SM to an L2 hit.
	L2Latency int
	// DRAMLatency is added on an L2 miss.
	DRAMLatency int
	// DRAMBytesPerCycle is aggregate DRAM bandwidth (HBM2 ~900 GB/s at
	// 1.4 GHz core clock ≈ 640 B/cycle).
	DRAMBytesPerCycle int
	// L2BytesPerCycle is aggregate L2 bandwidth.
	L2BytesPerCycle int

	// WarpScheduler is the per-sub-core issue policy.
	WarpScheduler WarpSched
	// SubCoreAssign is the warp→sub-core placement policy.
	SubCoreAssign Assign
	// RBAScoreLatency delays the bank-queue-length tap feeding RBA scores
	// by this many cycles (Section VI-B4 sweeps 0–20).
	RBAScoreLatency int
	// BankStealing enables the register bank stealing comparator [36]:
	// free collector units are pre-filled and read operands using only
	// otherwise-idle bank cycles.
	BankStealing bool
	// BankSwizzle selects a per-warp-slot scrambled register-to-bank
	// mapping instead of Volta's plain reg-mod-banks mapping.
	BankSwizzle bool
	// HashTableEntries sizes the hash-function table for Shuffle (each
	// entry encodes 4 warp assignments; 4 entries ⇒ the pattern repeats
	// every 16 warps, 16 ⇒ unique assignment for all 64 warps).
	HashTableEntries int

	// TraceSamplePeriod is the observability layer's counter-sampling
	// period in cycles (register-file read rate, per-bank arbiter queue
	// depth, per-sub-core occupancy/issue rate, LSU queue depth). 0
	// disables counter sampling.
	TraceSamplePeriod int
	// TraceRingCap is the per-SM capacity of the structured-event ring
	// buffers, in events (0 selects the trace package default). Without a
	// sink attached the ring is a flight recorder holding the last
	// TraceRingCap events.
	TraceRingCap int

	// AuditEvery arms the runtime invariant auditor (internal/audit): the
	// run loop re-derives the device's conservation laws — scoreboard vs
	// in-flight writers, collector leases vs bank reservations, MSHR
	// bookkeeping, occupancy and register/scratchpad budgets, the CPI
	// stack — at least every AuditEvery cycles, surfacing any violation as
	// a structured *gpu.AuditError instead of silent state corruption.
	// Audits run at heartbeat boundaries, so the effective cadence is
	// AuditEvery rounded up to the next heartbeat (1024 cycles). 0
	// disables auditing (the production fast path). Auditing never mutates
	// state: results are byte-identical on or off.
	AuditEvery int64

	// NoFastForward disables the run loop's idle-cycle fast-forward: the
	// event-driven skip over cycles in which no SM could issue, decode,
	// dispatch, or write back. Fast-forward is provably inert — results
	// are byte-identical either way (TestFastForwardDifferential) — so
	// the flag exists only as a debugging escape hatch and for
	// differential testing; leave it false for speed.
	NoFastForward bool

	// Seed drives every stochastic choice (shuffle permutations, random
	// memory patterns) so runs are reproducible.
	Seed int64
}

// FromJSON reads a configuration as JSON, starting from the VoltaV100
// defaults so files only need to name the fields they change, e.g.
//
//	{"NumSMs": 8, "WarpScheduler": 2, "BanksPerSubCore": 4}
//
// The result is validated.
func FromJSON(r io.Reader) (GPU, error) {
	g := VoltaV100()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return GPU{}, fmt.Errorf("config: %w", err)
	}
	if err := g.Validate(); err != nil {
		return GPU{}, err
	}
	return g, nil
}

// VoltaV100 returns the paper's Table II baseline configuration.
func VoltaV100() GPU {
	return GPU{
		Name:                     "V100",
		NumSMs:                   80,
		SubCoresPerSM:            4,
		SchedulersPerSubCore:     1,
		MaxWarpsPerSM:            64,
		MaxBlocksPerSM:           32,
		WarpSize:                 32,
		RegFileKBPerSubCore:      64,
		BanksPerSubCore:          2,
		CollectorUnitsPerSubCore: 2,
		DispatchPortsPerSubCore:  2,
		FP32LanesPerSubCore:      16,
		IntLanesPerSubCore:       16,
		SFULanesPerSubCore:       4,
		TensorPerSubCore:         1,
		SharedMemKBPerSM:         96,
		SharedMemBanks:           32,
		LSUWidthPerSM:            1,
		LSUQueue:                 64,
		L1KBPerSM:                128,
		L1Assoc:                  4,
		LineBytes:                128,
		L2KB:                     6 * 1024,
		L2Assoc:                  24,
		L2Latency:                190,
		DRAMLatency:              220,
		DRAMBytesPerCycle:        640,
		L2BytesPerCycle:          1280,
		WarpScheduler:            SchedGTO,
		SubCoreAssign:            AssignRR,
		RBAScoreLatency:          0,
		BankStealing:             false,
		BankSwizzle:              true,
		HashTableEntries:         4,
		Seed:                     1,
	}
}

// FullyConnected returns the hypothetical monolithic SM of Figure 1: the
// same total thread, bank, collector-unit, and SIMD capacity as VoltaV100,
// but with no sub-core partitioning — every warp may use any of the SM's 8
// banks, 8 collector units, and all execution lanes, and 4 instructions
// issue per cycle.
func FullyConnected() GPU {
	g := VoltaV100()
	g.Name = "FullyConnected"
	g.SubCoresPerSM = 1
	g.SchedulersPerSubCore = 4
	g.RegFileKBPerSubCore = 4 * 64
	g.BanksPerSubCore = 8
	g.CollectorUnitsPerSubCore = 8
	g.DispatchPortsPerSubCore = 8
	g.FP32LanesPerSubCore = 64
	g.IntLanesPerSubCore = 64
	g.SFULanesPerSubCore = 16
	g.TensorPerSubCore = 4
	return g
}

// RDNALike returns a stand-in for AMD's dual compute unit (Section
// II-A): two partitions sharing the L1/scratchpad, each with half the
// monolithic capacity. Useful for studying the 2-way partitioning point
// between Volta's 4-way split and a monolithic core.
func RDNALike() GPU {
	g := VoltaV100()
	g.Name = "RDNALike"
	g.SubCoresPerSM = 2
	g.SchedulersPerSubCore = 2
	g.RegFileKBPerSubCore = 128
	g.BanksPerSubCore = 4
	g.CollectorUnitsPerSubCore = 4
	g.DispatchPortsPerSubCore = 4
	g.FP32LanesPerSubCore = 32
	g.IntLanesPerSubCore = 32
	g.SFULanesPerSubCore = 8
	g.TensorPerSubCore = 2
	return g
}

// KeplerLike returns a monolithic SM stand-in for the pre-Maxwell
// generations of Figure 3 (no partitioning; four banks visible to every
// warp, as in pre-partitioning designs [34]).
func KeplerLike() GPU {
	g := FullyConnected()
	g.Name = "KeplerLike"
	return g
}

// TPCH returns the TPC-H evaluation variant of Table II: 20 SMs (with the
// full device memory system) to model the per-SM load of scale factors
// beyond the simulated 100 GB — each SM sees 4x the bandwidth share of
// the 80-SM configuration.
func TPCH(base GPU) GPU {
	base.Name = base.Name + "-tpch"
	base.NumSMs = 20
	return base
}

// WithScheduler returns a copy with the warp scheduler replaced.
func (g GPU) WithScheduler(s WarpSched) GPU {
	g.WarpScheduler = s
	g.Name = g.Name + "+" + s.String()
	return g
}

// WithAssign returns a copy with the sub-core assignment policy replaced.
func (g GPU) WithAssign(a Assign) GPU {
	g.SubCoreAssign = a
	g.Name = g.Name + "+" + a.String()
	return g
}

// WithCUs returns a copy with the collector-unit count per sub-core set.
func (g GPU) WithCUs(n int) GPU {
	g.CollectorUnitsPerSubCore = n
	g.Name = fmt.Sprintf("%s+%dCU", g.Name, n)
	return g
}

// WithBanks returns a copy with the register bank count per sub-core set.
func (g GPU) WithBanks(n int) GPU {
	g.BanksPerSubCore = n
	g.Name = fmt.Sprintf("%s+%dbank", g.Name, n)
	return g
}

// WithSMs returns a copy with the SM count set.
func (g GPU) WithSMs(n int) GPU {
	g.NumSMs = n
	g.Name = fmt.Sprintf("%s+%dSM", g.Name, n)
	return g
}

// WithBankStealing returns a copy with bank stealing enabled.
func (g GPU) WithBankStealing() GPU {
	g.BankStealing = true
	g.Name = g.Name + "+steal"
	return g
}

// WithNoFastForward returns a copy with idle-cycle fast-forward disabled
// (the differential-testing escape hatch; results are byte-identical,
// only wall-clock changes). The Name is deliberately untouched: the
// configuration simulates the same machine.
func (g GPU) WithNoFastForward() GPU {
	g.NoFastForward = true
	return g
}

// WithAudit returns a copy with the runtime invariant auditor armed at
// the given cycle cadence (rounded up to heartbeat granularity at run
// time). The Name is deliberately untouched: auditing observes the same
// machine without perturbing it.
func (g GPU) WithAudit(everyCycles int64) GPU {
	g.AuditEvery = everyCycles
	return g
}

// WarpsPerSubCore returns the resident-warp capacity of one sub-core.
func (g GPU) WarpsPerSubCore() int {
	n := g.MaxWarpsPerSM / g.SubCoresPerSM
	if n < 1 {
		n = 1
	}
	return n
}

// RegsPerSubCore returns the 32-bit register count one sub-core's file
// holds across all lanes (capacity / 4 bytes).
func (g GPU) RegsPerSubCore() int { return g.RegFileKBPerSubCore * 1024 / 4 }

// RegSlotsPerWarp returns how many per-warp architectural registers the
// sub-core file can hold if all its warp slots are occupied.
func (g GPU) RegSlotsPerWarp() int {
	return g.RegsPerSubCore() / (g.WarpSize * g.WarpsPerSubCore())
}

// Validate checks structural invariants and returns a descriptive error
// for the first violation.
func (g GPU) Validate() error {
	checks := []struct {
		ok  bool
		msg string
	}{
		{g.NumSMs >= 1, "NumSMs must be >= 1"},
		{g.SubCoresPerSM >= 1, "SubCoresPerSM must be >= 1"},
		{g.SchedulersPerSubCore >= 1, "SchedulersPerSubCore must be >= 1"},
		{g.MaxWarpsPerSM >= g.SubCoresPerSM, "MaxWarpsPerSM must cover every sub-core"},
		{g.SubCoresPerSM < 1 || g.MaxWarpsPerSM%g.SubCoresPerSM == 0, "MaxWarpsPerSM must divide evenly among sub-cores"},
		{g.WarpSize == 32, "WarpSize must be 32"},
		{g.BanksPerSubCore >= 1, "BanksPerSubCore must be >= 1"},
		{g.CollectorUnitsPerSubCore >= 1, "CollectorUnitsPerSubCore must be >= 1"},
		{g.DispatchPortsPerSubCore >= 1, "DispatchPortsPerSubCore must be >= 1"},
		{g.FP32LanesPerSubCore >= 1, "FP32LanesPerSubCore must be >= 1"},
		{g.LSUWidthPerSM >= 1, "LSUWidthPerSM must be >= 1"},
		{g.LineBytes > 0 && g.LineBytes&(g.LineBytes-1) == 0, "LineBytes must be a power of two"},
		{g.L1KBPerSM >= 1, "L1KBPerSM must be >= 1"},
		{g.L2KB >= 1, "L2KB must be >= 1"},
		{g.HashTableEntries == 4 || g.HashTableEntries == 16, "HashTableEntries must be 4 or 16"},
		{g.RBAScoreLatency >= 0, "RBAScoreLatency must be >= 0"},
		{g.MaxBlocksPerSM >= 1, "MaxBlocksPerSM must be >= 1"},
		{g.SharedMemKBPerSM >= 0, "SharedMemKBPerSM must be >= 0"},
		{g.TraceSamplePeriod >= 0, "TraceSamplePeriod must be >= 0"},
		{g.TraceRingCap >= 0, "TraceRingCap must be >= 0"},
		{g.AuditEvery >= 0, "AuditEvery must be >= 0"},
	}
	for _, c := range checks {
		if !c.ok {
			return fmt.Errorf("config %q: %s", g.Name, c.msg)
		}
	}
	return nil
}
