// Package mem models the GPU memory system below the sub-cores: per-SM L1
// data caches, the shared L2, and DRAM with finite bandwidth. The paper's
// mechanisms live in the SM front-end, but a credible memory system is
// required for the workloads' relative behaviour — TPC-H is memory-bound
// (so RBA barely helps it), the SM-scaling study (Fig. 18) needs a shared
// bandwidth ceiling, and cache hit rates shape how often the LSU blocks.
package mem

// Cache is a set-associative, write-through, no-write-allocate cache with
// LRU replacement, tracking only tags (the simulator carries no data).
//
//snapshot:state
type Cache struct {
	sets      int
	assoc     int
	lineShift uint
	//simlint:allow nexteventguard -- cache state mutates only while an access resolves; a quiescent span (no issuable warp, no pending fill) generates no accesses
	tags []uint64 // sets*assoc entries; 0 = invalid (tag+1 stored)
	//simlint:allow nexteventguard -- LRU state mutates only on access (see tags)
	use []int64 // LRU timestamps
	//simlint:allow nexteventguard -- advances only on access (see tags)
	clock int64

	// Hits and Misses count read lookups.
	//simlint:allow nexteventguard -- hit/miss counters advance only on access (see tags)
	Hits, Misses int64
}

// NewCache builds a cache of capacityKB with the given associativity and
// line size. Degenerate shapes are clamped to at least one set.
func NewCache(capacityKB, assoc, lineBytes int) *Cache {
	if assoc < 1 {
		assoc = 1
	}
	lines := capacityKB * 1024 / lineBytes
	sets := lines / assoc
	if sets < 1 {
		sets = 1
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	return &Cache{
		sets:      sets,
		assoc:     assoc,
		lineShift: shift,
		tags:      make([]uint64, sets*assoc),
		use:       make([]int64, sets*assoc),
	}
}

// LineOf returns the line address (byte address >> lineShift).
func (c *Cache) LineOf(addr uint64) uint64 { return addr >> c.lineShift }

// Access looks up the line containing addr, allocating it on a miss
// (reads) and returns whether it hit. Writes update LRU on hit and bypass
// allocation (no-write-allocate).
func (c *Cache) Access(addr uint64, write bool) bool {
	line := c.LineOf(addr)
	set := int(line % uint64(c.sets))
	base := set * c.assoc
	c.clock++
	stored := line + 1
	victim := base
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == stored {
			c.use[i] = c.clock
			if !write {
				c.Hits++
			}
			return true
		}
		if c.use[i] < c.use[victim] {
			victim = i
		}
	}
	if !write {
		c.Misses++
		c.tags[victim] = stored
		c.use[victim] = c.clock
	}
	return false
}

// Flush invalidates every line and clears counters.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.use[i] = 0
	}
	c.clock = 0
	c.Hits = 0
	c.Misses = 0
}

// HitRate returns read hits / lookups, 0 when idle.
func (c *Cache) HitRate() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Hits) / float64(t)
}
