package mem

import (
	"fmt"

	"repro/internal/audit"
)

// Audit re-derives the memory system's conservation laws and reports every
// breach (docs/ROBUSTNESS.md). It is read-only: in particular it inspects
// MSHR pending maps directly rather than through nextEvent, which prunes.
func (h *Hierarchy) Audit() []audit.Violation {
	var vs []audit.Violation
	for i, m := range h.l1m {
		vs = m.auditInto(vs, fmt.Sprintf("l1m[%d]", i))
	}
	vs = h.l2m.auditInto(vs, "l2m")
	vs = h.l2ch.auditInto(vs, "l2ch")
	vs = h.drch.auditInto(vs, "drch")
	for i, c := range h.l1 {
		vs = c.auditInto(vs, fmt.Sprintf("l1[%d]", i))
	}
	return h.l2.auditInto(vs, "l2")
}

// auditInto checks the MSHR's fast-forward bound: minDone is allowed to go
// stale-low (lazy deletes), never stale-high — a high bound would let the
// fast-forward skip past a fill completion. The min over the map is
// order-independent, so the direct iteration stays deterministic.
func (m *mshr) auditInto(vs []audit.Violation, where string) []audit.Violation {
	if len(m.pending) == 0 {
		return vs
	}
	min := NeverCycle
	//simlint:allow determinism -- min over the map is order-independent
	for _, done := range m.pending {
		if done < min {
			min = done
		}
	}
	if m.minDone > min {
		vs = append(vs, audit.Violationf("mshr", where,
			"minDone bound %d exceeds earliest pending fill %d across %d entries — fast-forward could overshoot a completion",
			m.minDone, min, len(m.pending)))
	}
	return vs
}

func (c *Cache) auditInto(vs []audit.Violation, where string) []audit.Violation {
	for i, tag := range c.tags {
		if tag == 0 {
			continue
		}
		set := i / c.assoc
		if int((tag-1)%uint64(c.sets)) != set {
			vs = append(vs, audit.Violationf("cache", where,
				"way %d holds line %d, which maps to set %d not set %d — tag array corrupt",
				i, tag-1, (tag-1)%uint64(c.sets), set))
		}
	}
	for i, u := range c.use {
		if u > c.clock {
			vs = append(vs, audit.Violationf("cache", where,
				"way %d LRU stamp %d is ahead of the cache clock %d", i, u, c.clock))
		}
	}
	if c.Hits < 0 || c.Misses < 0 {
		vs = append(vs, audit.Violationf("cache", where,
			"negative lookup counters hits=%d misses=%d", c.Hits, c.Misses))
	}
	return vs
}

func (ch *bwChannel) auditInto(vs []audit.Violation, where string) []audit.Violation {
	switch {
	case ch.fracPending < 0:
		vs = append(vs, audit.Violationf("channel", where, "negative fractional backlog %d", ch.fracPending))
	case ch.cycPerLine > 0 && ch.fracPending != 0:
		vs = append(vs, audit.Violationf("channel", where,
			"integral channel carries fractional backlog %d", ch.fracPending))
	case ch.fracDen > 0 && ch.fracPending >= ch.fracDen:
		vs = append(vs, audit.Violationf("channel", where,
			"fractional backlog %d not reduced below denominator %d", ch.fracPending, ch.fracDen))
	}
	return vs
}

// CorruptMSHRForTest seeds a guaranteed-detectable MSHR inconsistency (a
// pending fill whose completion lies below the cached minDone bound) for
// the auditor's injected-corruption tests. Never call outside tests.
func (h *Hierarchy) CorruptMSHRForTest(now int64) {
	m := h.l1m[0]
	m.pending[^uint64(0)] = now + 1000
	m.minDone = now + 2000
}
