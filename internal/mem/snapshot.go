package mem

import (
	"fmt"
	"sort"

	"repro/internal/snapshot"
)

// Snapshot field manifests (checked by TestSnapshotCoverage against the
// real structs via snapshot.Coverage): every field is either encoded below
// or carries an explicit reason it need not be. Adding a field without
// updating a manifest fails the completeness test; changing what is
// encoded requires a snapshot.Version bump.
var (
	hierarchyManifest = map[string]string{
		"cfg":          "skip: restore target is built from the same validated config",
		"l1":           "encoded",
		"l1m":          "encoded",
		"l2":           "encoded",
		"l2m":          "encoded",
		"l2ch":         "encoded",
		"drch":         "encoded",
		"L1HitLatency": "encoded",
	}
	cacheManifest = map[string]string{
		"sets":      "skip: derived from config at construction",
		"assoc":     "skip: derived from config at construction",
		"lineShift": "skip: derived from config at construction",
		"tags":      "encoded",
		"use":       "encoded",
		"clock":     "encoded",
		"Hits":      "encoded",
		"Misses":    "encoded",
	}
	mshrManifest = map[string]string{
		"pending": "encoded (sorted by line for byte-determinism)",
		"minDone": "encoded",
	}
	bwChannelManifest = map[string]string{
		"nextFree":    "encoded",
		"cycPerLine":  "skip: derived from config at construction",
		"fracNum":     "skip: derived from config at construction",
		"fracDen":     "skip: derived from config at construction",
		"fracPending": "encoded",
	}
)

// EncodeState serializes the memory system's mutable state: cache tag
// arrays and LRU clocks, outstanding MSHR fills, and bandwidth-channel
// occupancy. Structural shape (set counts, channel rates) is derived from
// the configuration and re-created on restore.
func (h *Hierarchy) EncodeState(e *snapshot.Encoder) {
	e.Section("mem")
	e.Varint(h.L1HitLatency)
	e.Uvarint(uint64(len(h.l1)))
	for _, c := range h.l1 {
		c.encodeState(e)
	}
	for _, m := range h.l1m {
		m.encodeState(e)
	}
	h.l2.encodeState(e)
	h.l2m.encodeState(e)
	h.l2ch.encodeState(e)
	h.drch.encodeState(e)
}

// RestoreState decodes into a hierarchy freshly built from the same
// configuration, validating shape so a snapshot from a different machine
// fails loudly.
func (h *Hierarchy) RestoreState(d *snapshot.Decoder) error {
	d.Section("mem")
	h.L1HitLatency = d.Varint()
	n := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if int(n) != len(h.l1) {
		return fmt.Errorf("mem: snapshot has %d L1 caches, this config has %d", n, len(h.l1))
	}
	for _, c := range h.l1 {
		if err := c.restoreState(d); err != nil {
			return err
		}
	}
	for _, m := range h.l1m {
		if err := m.restoreState(d); err != nil {
			return err
		}
	}
	if err := h.l2.restoreState(d); err != nil {
		return err
	}
	if err := h.l2m.restoreState(d); err != nil {
		return err
	}
	if err := h.l2ch.restoreState(d); err != nil {
		return err
	}
	return h.drch.restoreState(d)
}

func (c *Cache) encodeState(e *snapshot.Encoder) {
	e.Section("cache")
	e.Uvarint(uint64(len(c.tags)))
	for _, t := range c.tags {
		e.Uvarint(t)
	}
	for _, u := range c.use {
		e.Varint(u)
	}
	e.Varint(c.clock)
	e.Varint(c.Hits)
	e.Varint(c.Misses)
}

func (c *Cache) restoreState(d *snapshot.Decoder) error {
	d.Section("cache")
	n := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if int(n) != len(c.tags) {
		return fmt.Errorf("mem: snapshot cache has %d ways, this config has %d", n, len(c.tags))
	}
	for i := range c.tags {
		c.tags[i] = d.Uvarint()
	}
	for i := range c.use {
		c.use[i] = d.Varint()
	}
	c.clock = d.Varint()
	c.Hits = d.Varint()
	c.Misses = d.Varint()
	return d.Err()
}

func (m *mshr) encodeState(e *snapshot.Encoder) {
	e.Section("mshr")
	lines := make([]uint64, 0, len(m.pending))
	//simlint:allow determinism -- keys are collected then sorted before encoding
	for line := range m.pending {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	e.Uvarint(uint64(len(lines)))
	for _, line := range lines {
		e.Uvarint(line)
		e.Varint(m.pending[line])
	}
	e.Varint(m.minDone)
}

func (m *mshr) restoreState(d *snapshot.Decoder) error {
	d.Section("mshr")
	n := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	m.pending = make(map[uint64]int64, n)
	for i := uint64(0); i < n; i++ {
		line := d.Uvarint()
		m.pending[line] = d.Varint()
	}
	m.minDone = d.Varint()
	return d.Err()
}

func (ch *bwChannel) encodeState(e *snapshot.Encoder) {
	e.Section("bwch")
	e.Varint(ch.nextFree)
	e.Varint(ch.fracPending)
}

func (ch *bwChannel) restoreState(d *snapshot.Decoder) error {
	d.Section("bwch")
	ch.nextFree = d.Varint()
	ch.fracPending = d.Varint()
	if err := d.Err(); err != nil {
		return err
	}
	if ch.fracPending < 0 || (ch.fracDen > 0 && ch.fracPending >= ch.fracDen) ||
		(ch.cycPerLine > 0 && ch.fracPending != 0) {
		return fmt.Errorf("mem: snapshot channel fracPending %d out of range for this config", ch.fracPending)
	}
	return nil
}
