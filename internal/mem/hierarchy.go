package mem

import (
	"math"

	"repro/internal/config"
	"repro/internal/isa"
)

// bwChannel models a bandwidth-limited service point (the L2 crossbar or
// the DRAM channels) as a single queue: each transaction occupies the
// channel for lineBytes/bytesPerCycle cycles and waits behind earlier
// traffic.
//
//snapshot:state
type bwChannel struct {
	nextFree   int64
	cycPerLine int64
	fracNum    int64 // fractional accumulation when bytes/cycle > line
	fracDen    int64
	//simlint:allow nexteventguard -- accumulates only when an access is admitted; quiescent spans admit none
	fracPending int64
}

func newBWChannel(bytesPerCycle, lineBytes int) *bwChannel {
	ch := &bwChannel{}
	if bytesPerCycle <= 0 {
		bytesPerCycle = 1
	}
	if lineBytes >= bytesPerCycle {
		ch.cycPerLine = int64(lineBytes / bytesPerCycle)
		if lineBytes%bytesPerCycle != 0 {
			ch.cycPerLine++
		}
	} else {
		// Several lines fit in one cycle: accumulate fractional service.
		ch.cycPerLine = 0
		ch.fracNum = int64(lineBytes)
		ch.fracDen = int64(bytesPerCycle)
	}
	return ch
}

// serve books one line transaction at time now and returns the cycle the
// transaction completes service (excluding fixed latency).
func (ch *bwChannel) serve(now int64) int64 {
	if ch.nextFree < now {
		ch.nextFree = now
		ch.fracPending = 0
	}
	if ch.cycPerLine > 0 {
		ch.nextFree += ch.cycPerLine
		return ch.nextFree
	}
	ch.fracPending += ch.fracNum
	for ch.fracPending >= ch.fracDen {
		ch.fracPending -= ch.fracDen
		ch.nextFree++
	}
	// Completion contract (matching the integral path, which returns the
	// cycle the line finishes draining): a line ending exactly on a cycle
	// boundary (fracPending == 0) completes at nextFree; a line ending
	// mid-cycle drains during cycle nextFree+1. The historical
	// unconditional nextFree+1 over-charged every boundary-aligned
	// fractional transaction by one cycle.
	if ch.fracPending == 0 {
		return ch.nextFree
	}
	return ch.nextFree + 1
}

// queueDelay reports how many cycles a new request at time now would wait
// before service begins.
func (ch *bwChannel) queueDelay(now int64) int64 {
	if ch.nextFree <= now {
		return 0
	}
	return ch.nextFree - now
}

// mshr tracks outstanding line fills so that misses to an in-flight line
// merge instead of consuming bandwidth twice.
//
//snapshot:state
type mshr struct {
	pending map[uint64]int64 // line -> completion cycle
	// minDone is a lower bound on the earliest pending completion. Inserts
	// keep it exact downward; lazy deletes leave it stale-low, and
	// nextEvent restores it with an amortized rescan. Keeping the bound
	// makes the fast-forward probe O(1) per idle cycle instead of a full
	// map walk.
	minDone int64
}

func newMSHR() *mshr {
	return &mshr{pending: make(map[uint64]int64), minDone: NeverCycle}
}

// nextEvent returns the earliest pending completion strictly after now,
// or NeverCycle. When the cached bound has gone stale (its entry
// completed and was lazily deleted), it rescans once — pruning every
// completed entry on the way, so each insert is scanned O(1) times over
// its lifetime and the map cannot accumulate dead lines.
func (m *mshr) nextEvent(now int64) int64 {
	if len(m.pending) == 0 {
		return NeverCycle
	}
	if m.minDone > now {
		return m.minDone
	}
	min := NeverCycle
	//simlint:allow determinism -- min and per-entry pruning are order-independent
	for line, done := range m.pending {
		if done <= now {
			delete(m.pending, line)
			continue
		}
		if done < min {
			min = done
		}
	}
	m.minDone = min
	return min
}

func (m *mshr) lookup(line uint64, now int64) (int64, bool) {
	done, ok := m.pending[line]
	if !ok {
		return 0, false
	}
	if done <= now {
		delete(m.pending, line)
		return 0, false
	}
	return done, true
}

func (m *mshr) insert(line uint64, done int64) {
	m.pending[line] = done
	if done < m.minDone {
		m.minDone = done
	}
}

// Hierarchy is the full memory system: one L1 per SM, a shared L2, and
// DRAM. It is deliberately latency/bandwidth-analytic rather than
// event-driven: each access returns its completion cycle immediately, with
// queueing delays derived from channel occupancy. This keeps 112-app
// sweeps fast while preserving the relative pressure the paper's
// workloads exert.
//
//snapshot:state
type Hierarchy struct {
	cfg config.GPU
	l1  []*Cache
	l1m []*mshr
	//simlint:allow nexteventguard -- sub-component pointer; the cache mutates only via accesses from non-quiescent SMs
	l2   *Cache
	l2m  *mshr
	l2ch *bwChannel
	drch *bwChannel

	// L1HitLatency is the load-use latency on an L1 hit (Volta ~28).
	L1HitLatency int64
}

// NewHierarchy builds the memory system for a configuration.
func NewHierarchy(cfg config.GPU) *Hierarchy {
	h := &Hierarchy{
		cfg:          cfg,
		l2:           NewCache(cfg.L2KB, cfg.L2Assoc, cfg.LineBytes),
		l2m:          newMSHR(),
		l2ch:         newBWChannel(cfg.L2BytesPerCycle, cfg.LineBytes),
		drch:         newBWChannel(cfg.DRAMBytesPerCycle, cfg.LineBytes),
		L1HitLatency: 28,
	}
	for i := 0; i < cfg.NumSMs; i++ {
		h.l1 = append(h.l1, NewCache(cfg.L1KBPerSM, cfg.L1Assoc, cfg.LineBytes))
		h.l1m = append(h.l1m, newMSHR())
	}
	return h
}

// L1 returns SM sm's L1 cache (for stats).
func (h *Hierarchy) L1(sm int) *Cache { return h.l1[sm] }

// L2Cache returns the shared L2 (for stats).
func (h *Hierarchy) L2Cache() *Cache { return h.l2 }

// AccessGlobal performs one 128-byte-line global access for SM sm at the
// given cycle and returns the cycle the data is available to the warp.
// Stores return the cycle the store is accepted (fire-and-forget).
func (h *Hierarchy) AccessGlobal(sm int, addr uint64, write bool, now int64) int64 {
	l1 := h.l1[sm]
	line := l1.LineOf(addr)
	if write {
		// Write-through: consume L2 bandwidth; the warp does not wait.
		h.l2.Access(addr, true)
		h.l2ch.serve(now)
		return now + 1
	}
	// A line with an in-flight fill reads as present in the tag array
	// (allocate-on-miss) but its data arrives with the fill: merge first.
	if done, ok := h.l1m[sm].lookup(line, now); ok {
		l1.Access(addr, false) // touch LRU; counts as a hit-under-miss
		return done
	}
	if l1.Access(addr, false) {
		return now + h.L1HitLatency
	}
	done := h.accessL2(addr, now+h.L1HitLatency)
	h.l1m[sm].insert(line, done)
	return done
}

func (h *Hierarchy) accessL2(addr uint64, now int64) int64 {
	line := h.l2.LineOf(addr)
	serveDone := h.l2ch.serve(now)
	if h.l2.Access(addr, false) {
		return serveDone + int64(h.cfg.L2Latency)
	}
	if done, ok := h.l2m.lookup(line, now); ok {
		return done
	}
	dramDone := h.drch.serve(serveDone + int64(h.cfg.L2Latency))
	done := dramDone + int64(h.cfg.DRAMLatency)
	h.l2m.insert(line, done)
	return done
}

// NeverCycle is the NextEvent sentinel for "no intrinsic future event":
// any real event cycle compares smaller.
const NeverCycle = int64(math.MaxInt64)

// NextEvent returns the earliest cycle strictly after now at which the
// memory system's time-indexed state changes: a bandwidth channel
// freeing, or an outstanding MSHR fill completing. It returns NeverCycle
// when nothing is in flight. The hierarchy is analytic (accesses resolve
// to completion cycles immediately), so these events never *initiate*
// work by themselves — the device loop takes the min with the SM events
// only to bound fast-forward skips conservatively.
//
//simlint:hotpath
func (h *Hierarchy) NextEvent(now int64) int64 {
	next := NeverCycle
	if h.l2ch.nextFree > now && h.l2ch.nextFree < next {
		next = h.l2ch.nextFree
	}
	if h.drch.nextFree > now && h.drch.nextFree < next {
		next = h.drch.nextFree
	}
	// MSHR rescans iterate their maps in arbitrary order; the min is
	// order-independent, so the result stays deterministic.
	if e := h.l2m.nextEvent(now); e < next {
		next = e
	}
	for _, m := range h.l1m {
		if e := m.nextEvent(now); e < next {
			next = e
		}
	}
	return next
}

// CongestionDelay estimates current memory-system backpressure for the
// LSU's admission decision.
func (h *Hierarchy) CongestionDelay(now int64) int64 {
	d := h.l2ch.queueDelay(now)
	if dd := h.drch.queueDelay(now); dd > d {
		d = dd
	}
	return d
}

// Transactions returns how many 128-byte line transactions a warp-wide
// access with the given trait generates — the coalescing model.
func Transactions(t isa.MemTrait, lineBytes int) int {
	switch t.Pattern {
	case isa.PatBroadcast:
		return 1
	case isa.PatCoalesced:
		// 32 threads x 4 bytes = 128 bytes = one line (or two if the line
		// is smaller).
		n := isa.WarpSize * 4 / lineBytes
		if n < 1 {
			n = 1
		}
		return n
	case isa.PatStrided:
		stride := int(t.StrideBytes)
		if stride < 4 {
			stride = 4
		}
		span := stride * isa.WarpSize
		n := span / lineBytes
		if span%lineBytes != 0 {
			n++
		}
		if n > isa.WarpSize {
			n = isa.WarpSize
		}
		if n < 1 {
			n = 1
		}
		return n
	case isa.PatRandom:
		// Each thread touches an unrelated line, bounded by the access's
		// divergence degree and the footprint.
		n := isa.WarpSize
		if t.Divergence > 0 && int(t.Divergence) < n {
			n = int(t.Divergence)
		}
		if t.Footprint > 0 {
			lines := int(t.Footprint) / lineBytes
			if lines < 1 {
				lines = 1
			}
			if lines < n {
				n = lines
			}
		}
		return n
	default:
		return 1
	}
}
