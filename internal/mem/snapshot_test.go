package mem

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/snapshot"
)

// TestSnapshotCoverage fails when a state struct gains a field the
// snapshot code does not mention — the dynamic side of the snapshotguard
// analyzer's contract.
func TestSnapshotCoverage(t *testing.T) {
	cases := []struct {
		typ      reflect.Type
		manifest map[string]string
	}{
		{reflect.TypeOf(Hierarchy{}), hierarchyManifest},
		{reflect.TypeOf(Cache{}), cacheManifest},
		{reflect.TypeOf(mshr{}), mshrManifest},
		{reflect.TypeOf(bwChannel{}), bwChannelManifest},
	}
	for _, c := range cases {
		if err := snapshot.Coverage(c.typ, c.manifest); err != nil {
			t.Errorf("%s: %v", c.typ.Name(), err)
		}
	}
}

// exercise drives a small deterministic access mix so every piece of
// hierarchy state (tags, LRU, MSHRs, both channels) is non-trivial.
func exercise(h *Hierarchy, from, to int64) {
	sms := len(h.l1)
	for now := from; now < to; now++ {
		addr := uint64(now*128) % (1 << 22)
		h.AccessGlobal(int(now)%sms, addr, now%7 == 0, now)
		if now%3 == 0 {
			h.AccessGlobal(0, addr^0x5000, false, now)
		}
	}
}

func TestHierarchyRoundTrip(t *testing.T) {
	cfg := config.VoltaV100()
	cfg.NumSMs = 2
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	a := NewHierarchy(cfg)
	exercise(a, 0, 500)

	e := snapshot.NewEncoder()
	a.EncodeState(e)
	var buf bytes.Buffer
	if err := e.Finish(&buf); err != nil {
		t.Fatal(err)
	}

	b := NewHierarchy(cfg)
	d, err := snapshot.NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreState(d); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("decoder Finish: %v", err)
	}

	// The restored hierarchy must behave identically: same completion
	// cycles, same hit counters, same next events.
	exercise(a, 500, 900)
	exercise(b, 500, 900)
	for now := int64(900); now < 950; now++ {
		ca := a.AccessGlobal(0, uint64(now*64), false, now)
		cb := b.AccessGlobal(0, uint64(now*64), false, now)
		if ca != cb {
			t.Fatalf("cycle %d: completion %d vs %d after restore", now, ca, cb)
		}
		if ea, eb := a.NextEvent(now), b.NextEvent(now); ea != eb {
			t.Fatalf("cycle %d: NextEvent %d vs %d after restore", now, ea, eb)
		}
	}
	if a.l2.Hits != b.l2.Hits || a.l2.Misses != b.l2.Misses {
		t.Fatalf("L2 counters diverged: %d/%d vs %d/%d", a.l2.Hits, a.l2.Misses, b.l2.Hits, b.l2.Misses)
	}
	if len(a.Audit()) != 0 || len(b.Audit()) != 0 {
		t.Fatalf("audit violations on healthy hierarchies: %v / %v", a.Audit(), b.Audit())
	}
}

func TestHierarchyRestoreShapeMismatch(t *testing.T) {
	cfg := config.VoltaV100()
	cfg.NumSMs = 2
	a := NewHierarchy(cfg)
	e := snapshot.NewEncoder()
	a.EncodeState(e)
	var buf bytes.Buffer
	if err := e.Finish(&buf); err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.NumSMs = 4
	b := NewHierarchy(other)
	d, err := snapshot.NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreState(d); err == nil {
		t.Fatal("restore into a 4-SM hierarchy from a 2-SM snapshot succeeded")
	}
}

func TestAuditCatchesSeededMSHRCorruption(t *testing.T) {
	cfg := config.VoltaV100()
	cfg.NumSMs = 1
	h := NewHierarchy(cfg)
	exercise(h, 0, 100)
	if vs := h.Audit(); len(vs) != 0 {
		t.Fatalf("healthy hierarchy reported %v", vs)
	}
	h.CorruptMSHRForTest(100)
	vs := h.Audit()
	if len(vs) == 0 {
		t.Fatal("seeded MSHR inconsistency not detected")
	}
	if vs[0].Rule != "mshr" {
		t.Fatalf("violation rule = %q, want mshr (%v)", vs[0].Rule, vs[0])
	}
}

func TestAuditCatchesChannelCorruption(t *testing.T) {
	cfg := config.VoltaV100()
	cfg.NumSMs = 1
	h := NewHierarchy(cfg)
	h.drch.fracPending = -3
	vs := h.Audit()
	found := false
	for _, v := range vs {
		if v.Rule == "channel" {
			found = true
		}
	}
	if !found {
		t.Fatalf("negative fractional backlog not detected: %v", vs)
	}
}
