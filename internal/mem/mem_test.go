package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/isa"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(1, 2, 128) // 8 lines, 4 sets x 2 ways
	if c.Access(0, false) {
		t.Error("cold access hit")
	}
	if !c.Access(0, false) {
		t.Error("second access missed")
	}
	if !c.Access(64, false) {
		t.Error("same-line access missed")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", c.Hits, c.Misses)
	}
	if got := c.HitRate(); got < 0.66 || got > 0.67 {
		t.Errorf("HitRate = %v", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(1, 2, 128) // 4 sets, 2 ways; set = line % 4
	// Three lines mapping to set 0: lines 0, 4, 8 (addresses 0, 512, 1024).
	c.Access(0, false)
	c.Access(512, false)
	c.Access(0, false)    // touch line 0 -> line 4 is LRU
	c.Access(1024, false) // evicts line 4
	if !c.Access(0, false) {
		t.Error("line 0 should have survived (MRU)")
	}
	if c.Access(512, false) {
		t.Error("line 4 should have been evicted")
	}
}

func TestCacheWriteNoAllocate(t *testing.T) {
	c := NewCache(1, 2, 128)
	if c.Access(0, true) {
		t.Error("write to cold line reported hit")
	}
	if c.Access(0, false) {
		t.Error("write must not allocate")
	}
	if c.Hits+c.Misses != 1 {
		t.Error("writes must not count in read hit/miss stats")
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(1, 2, 128)
	c.Access(0, false)
	c.Flush()
	if c.Access(0, false) {
		t.Error("flush did not invalidate")
	}
	if c.Misses != 1 {
		t.Error("flush did not clear counters")
	}
}

func TestCacheDegenerateShapes(t *testing.T) {
	c := NewCache(0, 0, 128) // clamps to 1 set, 1 way
	c.Access(0, false)
	if !c.Access(0, false) {
		t.Error("1-entry cache must still hit")
	}
}

func smallCfg() config.GPU {
	g := config.VoltaV100()
	g.NumSMs = 2
	return g
}

func TestHierarchyL1HitLatency(t *testing.T) {
	h := NewHierarchy(smallCfg())
	first := h.AccessGlobal(0, 0, false, 0)
	if first <= h.L1HitLatency {
		t.Errorf("cold access done at %d, want beyond L1 latency", first)
	}
	hit := h.AccessGlobal(0, 0, false, first)
	if hit != first+h.L1HitLatency {
		t.Errorf("hit done at %d, want %d", hit, first+h.L1HitLatency)
	}
}

func TestHierarchyMSHRMerge(t *testing.T) {
	h := NewHierarchy(smallCfg())
	a := h.AccessGlobal(0, 4096, false, 0)
	b := h.AccessGlobal(0, 4096+64, false, 1) // same 128B line, outstanding
	if b != a {
		t.Errorf("merged miss done at %d, want %d", b, a)
	}
}

func TestHierarchyL2SharedAcrossSMs(t *testing.T) {
	h := NewHierarchy(smallCfg())
	done0 := h.AccessGlobal(0, 8192, false, 0)
	// SM 1 misses its own L1 but should hit the now-filled L2.
	done1 := h.AccessGlobal(1, 8192, false, done0)
	coldRef := h.AccessGlobal(0, 1<<20, false, done0)
	if done1-done0 >= coldRef-done0 {
		t.Errorf("L2 hit (%d cycles) not faster than DRAM path (%d cycles)", done1-done0, coldRef-done0)
	}
}

func TestHierarchyStoresDoNotBlock(t *testing.T) {
	h := NewHierarchy(smallCfg())
	if done := h.AccessGlobal(0, 0, true, 10); done != 11 {
		t.Errorf("store completed at %d, want 11", done)
	}
}

func TestDRAMBandwidthQueueing(t *testing.T) {
	g := smallCfg()
	g.DRAMBytesPerCycle = 16 // 8 cycles per 128B line
	g.L2BytesPerCycle = 1 << 20
	h := NewHierarchy(g)
	// Saturate: many distinct-line misses at the same cycle must finish at
	// increasing times.
	var prev int64
	for i := 0; i < 8; i++ {
		done := h.AccessGlobal(0, uint64(i)<<20, false, 0)
		if i > 0 && done <= prev {
			t.Fatalf("request %d done at %d, not after previous %d", i, done, prev)
		}
		prev = done
	}
	if h.CongestionDelay(0) == 0 {
		t.Error("saturated DRAM should report congestion")
	}
}

// TestBWChannelServeContract pins serve's completion contract on both
// paths: the returned cycle is when the line finishes draining. On the
// fractional path (bytes/cycle > line) a transaction ending exactly on a
// cycle boundary completes at nextFree — the historical unconditional
// +1 over-charged every boundary-aligned transaction.
func TestBWChannelServeContract(t *testing.T) {
	cases := []struct {
		name          string
		bytesPerCycle int
		want          []int64 // serve results for back-to-back calls at now=0
	}{
		// Integral path: 128/16 = 8 cycles per line.
		{"integral-8cyc", 16, []int64{8, 16, 24}},
		// Integral with remainder: ceil(128/100) = 2 cycles per line.
		{"integral-roundup", 100, []int64{2, 4}},
		// Fractional, 4 lines/cycle: the 4th line lands exactly on the
		// cycle-1 boundary and completes there, not at 2.
		{"fractional-4-per-cycle", 512, []int64{1, 1, 1, 1, 2, 2, 2, 2}},
		// Fractional, 3 lines/cycle.
		{"fractional-3-per-cycle", 384, []int64{1, 1, 1, 2}},
		// The V100 L2 shape: 1280 B/cycle, 10 lines per cycle.
		{"fractional-v100-l2", 1280, []int64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ch := newBWChannel(tc.bytesPerCycle, 128)
			var prev int64
			for i, want := range tc.want {
				got := ch.serve(0)
				if got != want {
					t.Errorf("serve #%d = %d, want %d", i, got, want)
				}
				if got < prev {
					t.Errorf("serve #%d = %d went backwards from %d", i, got, prev)
				}
				prev = got
			}
		})
	}
}

// An idle gap resets fractional accumulation: a channel that has fully
// drained must not carry partial-cycle credit into later traffic.
func TestBWChannelIdleResetsFraction(t *testing.T) {
	ch := newBWChannel(512, 128)
	if got := ch.serve(0); got != 1 {
		t.Fatalf("first line done at %d, want 1", got)
	}
	// Long idle gap; a fresh line at cycle 10 drains during cycle 11 and
	// must not complete early on the stale fracPending from cycle 0.
	if got := ch.serve(10); got != 11 {
		t.Errorf("post-idle line done at %d, want 11", got)
	}
}

func TestBWChannelFractional(t *testing.T) {
	// 512 B/cycle channel with 128 B lines: 4 lines per cycle.
	ch := newBWChannel(512, 128)
	var last int64
	for i := 0; i < 8; i++ {
		last = ch.serve(0)
	}
	// 8 lines at 4/cycle -> drains within ~2 cycles.
	if last > 3 {
		t.Errorf("8 lines drained at %d, want <= 3", last)
	}
}

func TestTransactions(t *testing.T) {
	const line = 128
	cases := []struct {
		name string
		t    isa.MemTrait
		want int
	}{
		{"coalesced", isa.MemTrait{Pattern: isa.PatCoalesced}, 1},
		{"broadcast", isa.MemTrait{Pattern: isa.PatBroadcast}, 1},
		{"stride8", isa.MemTrait{Pattern: isa.PatStrided, StrideBytes: 8}, 2},
		{"stride128", isa.MemTrait{Pattern: isa.PatStrided, StrideBytes: 128}, 32},
		{"stride-large", isa.MemTrait{Pattern: isa.PatStrided, StrideBytes: 4096}, 32},
		{"random", isa.MemTrait{Pattern: isa.PatRandom, Footprint: 1 << 20}, 32},
		{"random-small", isa.MemTrait{Pattern: isa.PatRandom, Footprint: 512}, 4},
		{"none", isa.MemTrait{}, 1},
	}
	for _, c := range cases {
		if got := Transactions(c.t, line); got != c.want {
			t.Errorf("%s: Transactions = %d, want %d", c.name, got, c.want)
		}
	}
}

// Property: transactions are always within [1, 32] for any trait.
func TestTransactionsBoundsProperty(t *testing.T) {
	f := func(pat uint8, foot uint32, stride uint32) bool {
		tr := isa.MemTrait{Pattern: isa.Pattern(pat % 5), Footprint: foot, StrideBytes: stride}
		n := Transactions(tr, 128)
		return n >= 1 && n <= 32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: completion time is never before request time and is
// monotonically consistent for back-to-back same-SM accesses.
func TestHierarchyCausalityProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		h := NewHierarchy(smallCfg())
		now := int64(0)
		for _, a := range addrs {
			done := h.AccessGlobal(0, uint64(a), false, now)
			if done <= now {
				return false
			}
			now++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
