package snapshot

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Section("hdr")
	e.Uvarint(0)
	e.Uvarint(1<<63 + 12345)
	e.Varint(-1)
	e.Varint(1 << 40)
	e.Int(-987654321)
	e.Bool(true)
	e.Bool(false)
	e.Bytes([]byte{})
	e.Bytes([]byte{0, 255, 7})
	e.String("warp state")
	in := isa.MakeLoad(isa.OpLDG, 4, 2, isa.MemTrait{
		Pattern: isa.PatStrided, Footprint: 1 << 20, StrideBytes: 64,
		Shared: true, Divergence: 9,
	})
	e.Instr(&in)
	e.Section("tail")

	var buf bytes.Buffer
	if err := e.Finish(&buf); err != nil {
		t.Fatalf("Finish: %v", err)
	}

	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	d.Section("hdr")
	if got := d.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d, want 0", got)
	}
	if got := d.Uvarint(); got != 1<<63+12345 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := d.Varint(); got != -1 {
		t.Errorf("Varint = %d, want -1", got)
	}
	if got := d.Varint(); got != 1<<40 {
		t.Errorf("Varint = %d", got)
	}
	if got := d.Int(); got != -987654321 {
		t.Errorf("Int = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Errorf("Bool round-trip failed")
	}
	if got := d.Bytes(); len(got) != 0 {
		t.Errorf("empty Bytes = %v", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{0, 255, 7}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := d.String(); got != "warp state" {
		t.Errorf("String = %q", got)
	}
	if got := d.Instr(); got != in {
		t.Errorf("Instr = %+v, want %+v", got, in)
	}
	d.Section("tail")
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func encodeSample(t *testing.T) []byte {
	t.Helper()
	e := NewEncoder()
	e.Section("s")
	e.Varint(42)
	var buf bytes.Buffer
	if err := e.Finish(&buf); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return buf.Bytes()
}

func TestDecoderRejectsCorruption(t *testing.T) {
	good := encodeSample(t)

	t.Run("flipped byte", func(t *testing.T) {
		for i := range good {
			bad := append([]byte(nil), good...)
			bad[i] ^= 0x40
			if _, err := NewDecoder(bytes.NewReader(bad)); err == nil {
				t.Errorf("byte %d flipped: decoder accepted corrupt frame", i)
			}
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for i := 0; i < len(good); i++ {
			if _, err := NewDecoder(bytes.NewReader(good[:i])); err == nil {
				t.Errorf("truncated to %d bytes: decoder accepted", i)
			}
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := NewDecoder(bytes.NewReader(nil)); err == nil {
			t.Error("decoder accepted empty stream")
		}
	})
}

func TestDecoderRejectsVersionSkew(t *testing.T) {
	good := encodeSample(t)
	// Rebuild the frame with a bumped version varint (one byte at offset
	// 8 while Version < 128) and a recomputed checksum, so only the
	// version check can reject it.
	framed := append([]byte(nil), good[:len(good)-4]...)
	framed[8] = Version + 1
	framed = appendCRC(framed)
	_, err := NewDecoder(bytes.NewReader(framed))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version-skew decode error = %v, want version mismatch", err)
	}
}

func TestSectionMismatch(t *testing.T) {
	d, err := NewDecoder(bytes.NewReader(encodeSample(t)))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	d.Section("wrong")
	if d.Err() == nil || !strings.Contains(d.Err().Error(), "layout drift") {
		t.Fatalf("Err = %v, want section mismatch", d.Err())
	}
	// Sticky: further reads keep the first error.
	d.Varint()
	if err := d.Finish(); err == nil || !strings.Contains(err.Error(), "section") {
		t.Fatalf("Finish = %v, want sticky section error", err)
	}
}

func TestTrailingPayloadFails(t *testing.T) {
	d, err := NewDecoder(bytes.NewReader(encodeSample(t)))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	d.Section("s")
	// Varint deliberately unread.
	if err := d.Finish(); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("Finish = %v, want trailing-bytes error", err)
	}
}

func TestCoverage(t *testing.T) {
	type state struct {
		A int
		b string //nolint:unused // exists to exercise unexported coverage
	}
	typ := reflect.TypeOf(state{})

	if err := Coverage(typ, map[string]string{"A": "encoded", "b": "skip: scratch"}); err != nil {
		t.Errorf("complete manifest rejected: %v", err)
	}
	if err := Coverage(typ, map[string]string{"A": "encoded"}); err == nil || !strings.Contains(err.Error(), "state.b") {
		t.Errorf("missing field not caught: %v", err)
	}
	if err := Coverage(typ, map[string]string{"A": "encoded", "b": "skip", "Gone": "encoded"}); err == nil || !strings.Contains(err.Error(), "Gone") {
		t.Errorf("stale entry not caught: %v", err)
	}
	if err := Coverage(reflect.TypeOf(42), nil); err == nil {
		t.Error("non-struct type accepted")
	}
}

// appendCRC mirrors Finish's trailer for tests that hand-build frames.
func appendCRC(frame []byte) []byte {
	return binary.LittleEndian.AppendUint32(frame, crc32.Checksum(frame, castagnoli))
}
