package snapshot

import (
	"bytes"
	"testing"
)

// FuzzSnapshotRoundTrip drives both halves of the codec contract from
// fuzzed inputs. The structured half encodes the fuzzer's values
// through every primitive, decodes them back, and requires exact
// equality plus a clean Finish. The adversarial half then treats the
// same fuzz data as a hostile snapshot file: NewDecoder may reject it,
// but must never panic, and an accepted frame must still decode without
// panicking — the harness feeds real files from crashed runs straight
// into this path, so "garbage in, error out" is a safety property, not
// a nicety.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint64(0), int64(0), false, "", []byte(nil))
	f.Add(uint64(1<<63+12345), int64(-1), true, "warp state", []byte{0, 255, 7})
	f.Add(uint64(42), int64(1<<40), true, "§ unicode §", bytes.Repeat([]byte{0xA5}, 300))

	f.Fuzz(func(t *testing.T, u uint64, v int64, b bool, s string, raw []byte) {
		e := NewEncoder()
		e.Section("fuzz")
		e.Uvarint(u)
		e.Varint(v)
		e.Bool(b)
		e.String(s)
		e.Bytes(raw)
		e.Section("tail")
		var buf bytes.Buffer
		if err := e.Finish(&buf); err != nil {
			t.Fatalf("Finish: %v", err)
		}

		d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("NewDecoder rejected its own encoder's frame: %v", err)
		}
		d.Section("fuzz")
		if got := d.Uvarint(); got != u {
			t.Errorf("Uvarint = %d, want %d", got, u)
		}
		if got := d.Varint(); got != v {
			t.Errorf("Varint = %d, want %d", got, v)
		}
		if got := d.Bool(); got != b {
			t.Errorf("Bool = %v, want %v", got, b)
		}
		if got := d.String(); got != s {
			t.Errorf("String = %q, want %q", got, s)
		}
		if got := d.Bytes(); !bytes.Equal(got, raw) {
			t.Errorf("Bytes = %v, want %v", got, raw)
		}
		d.Section("tail")
		if err := d.Finish(); err != nil {
			t.Fatalf("decode Finish: %v", err)
		}

		// A single corrupted byte is a burst error CRC-32C always catches;
		// the frame must be refused outright.
		if len(buf.Bytes()) > 0 {
			bad := append([]byte(nil), buf.Bytes()...)
			bad[int(u%uint64(len(bad)))] ^= 0x40
			if _, err := NewDecoder(bytes.NewReader(bad)); err == nil {
				t.Error("decoder accepted a frame with a flipped byte")
			}
		}

		// Hostile input: the raw fuzz bytes as a snapshot file. Errors are
		// expected; panics and unchecked reads are not.
		if d, err := NewDecoder(bytes.NewReader(raw)); err == nil {
			d.Section("fuzz")
			d.Uvarint()
			d.Varint()
			d.Bool()
			d.Bytes()
			_ = d.String()
			_ = d.Finish()
		}
	})
}
