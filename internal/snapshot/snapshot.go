// Package snapshot implements the versioned, checksummed binary format
// that serializes the simulator's full machine state mid-kernel
// (docs/ROBUSTNESS.md).
//
// The format is deliberately dumb: a fixed magic, a format version, a
// varint-encoded payload, and a CRC-32C trailer. There is no schema in the
// stream — encoder and decoder must agree field-for-field, which is why
// every encode site is mirrored by a Section tag (cheap self-description
// that turns a drifted decoder into a loud error instead of silently
// misaligned state), why each state-holding package keeps a field manifest
// checked by Coverage, and why the snapshotguard analyzer
// (docs/STATIC_ANALYSIS.md) refuses new struct fields that no snapshot
// code mentions. Any change to what is encoded must bump Version; old
// snapshots are rejected, never migrated — a snapshot is a crash-recovery
// artifact with the lifetime of one sweep, not an archival format.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"reflect"
	"sort"

	"repro/internal/isa"
)

// Version is the snapshot format version. Bump it whenever the set or
// order of encoded fields changes anywhere in the machine state; decoding
// rejects every other version.
const Version = 1

// magic identifies a snapshot stream; the trailing byte leaves room to
// change the container (not the payload schema) without colliding.
var magic = [8]byte{'S', 'U', 'B', 'C', 'S', 'N', 'P', 1}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encoder accumulates a snapshot payload in memory; Finish frames it with
// the magic, version, length, and CRC-32C trailer and writes it out.
// Encoders are single-use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty Encoder.
func NewEncoder() *Encoder { return &Encoder{buf: make([]byte, 0, 4096)} }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a zigzag-encoded signed varint.
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Int appends an int as a signed varint.
func (e *Encoder) Int(v int) { e.Varint(int64(v)) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Bytes appends a length-prefixed byte slice.
func (e *Encoder) Bytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Section appends a named section marker. Decoders verify the tag, so a
// drifted field layout fails at the next section boundary with both names
// in the error instead of decoding garbage.
func (e *Encoder) Section(tag string) { e.String(tag) }

// Instr appends a full instruction descriptor.
func (e *Encoder) Instr(in *isa.Instr) {
	e.Uvarint(uint64(in.Op))
	e.Uvarint(uint64(in.Dst))
	for _, s := range in.Srcs {
		e.Uvarint(uint64(s))
	}
	e.Uvarint(uint64(in.Mem.Pattern))
	e.Uvarint(uint64(in.Mem.Footprint))
	e.Uvarint(uint64(in.Mem.StrideBytes))
	e.Bool(in.Mem.Shared)
	e.Uvarint(uint64(in.Mem.Divergence))
}

// Len returns the current payload size in bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Finish frames the payload and writes the complete snapshot to w:
// magic | uvarint version | uvarint payload-length | payload | crc32c(LE),
// with the checksum covering everything before it.
func (e *Encoder) Finish(w io.Writer) error {
	framed := make([]byte, 0, len(e.buf)+24)
	framed = append(framed, magic[:]...)
	framed = binary.AppendUvarint(framed, Version)
	framed = binary.AppendUvarint(framed, uint64(len(e.buf)))
	framed = append(framed, e.buf...)
	framed = binary.LittleEndian.AppendUint32(framed, crc32.Checksum(framed, castagnoli))
	_, err := w.Write(framed)
	return err
}

// Decoder reads back a snapshot produced by Encoder.Finish. NewDecoder
// verifies the frame (magic, version, length, checksum) up front; the
// field readers then never fail individually — the first structural
// mismatch sets a sticky error, subsequent reads return zero values, and
// Finish reports the error plus any unconsumed payload. Callers therefore
// decode straight-line and check once at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder reads the entire stream from r and verifies the frame.
func NewDecoder(r io.Reader) (*Decoder, error) {
	all, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read: %w", err)
	}
	if len(all) < len(magic)+2+4 {
		return nil, fmt.Errorf("snapshot: truncated frame (%d bytes)", len(all))
	}
	body, tail := all[:len(all)-4], all[len(all)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.Checksum(body, castagnoli); got != want {
		return nil, fmt.Errorf("snapshot: checksum mismatch (stored %08x, computed %08x) — file corrupt or torn", got, want)
	}
	if string(body[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("snapshot: bad magic — not a snapshot file")
	}
	rest := body[len(magic):]
	ver, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("snapshot: malformed version field")
	}
	if ver != Version {
		return nil, fmt.Errorf("snapshot: format version %d, this build reads only %d — re-run from scratch", ver, Version)
	}
	rest = rest[n:]
	plen, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("snapshot: malformed length field")
	}
	rest = rest[n:]
	if uint64(len(rest)) != plen {
		return nil, fmt.Errorf("snapshot: payload length %d, header promises %d", len(rest), plen)
	}
	return &Decoder{buf: rest}, nil
}

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: offset %d: %s", d.off, fmt.Sprintf(format, args...))
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

// Int reads an int.
func (d *Decoder) Int() int { return int(d.Varint()) }

// Bool reads a bool.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("bool past end of payload")
		return false
	}
	b := d.buf[d.off]
	d.off++
	if b > 1 {
		d.fail("bool byte %d", b)
		return false
	}
	return b == 1
}

// Bytes reads a length-prefixed byte slice (a copy).
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.buf)-d.off) < n {
		d.fail("byte run of %d past end of payload", n)
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += int(n)
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes()) }

// Section reads a section marker and verifies it matches tag.
func (d *Decoder) Section(tag string) {
	got := d.String()
	if d.err == nil && got != tag {
		d.fail("section %q, want %q — snapshot layout drift", got, tag)
	}
}

// Instr reads an instruction descriptor.
func (d *Decoder) Instr() isa.Instr {
	var in isa.Instr
	in.Op = isa.Op(d.Uvarint())
	in.Dst = isa.Reg(d.Uvarint())
	for i := range in.Srcs {
		in.Srcs[i] = isa.Reg(d.Uvarint())
	}
	in.Mem.Pattern = isa.Pattern(d.Uvarint())
	in.Mem.Footprint = uint32(d.Uvarint())
	in.Mem.StrideBytes = uint32(d.Uvarint())
	in.Mem.Shared = d.Bool()
	in.Mem.Divergence = uint8(d.Uvarint())
	return in
}

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Finish verifies the whole payload decoded cleanly and completely.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("snapshot: %d trailing payload bytes — snapshot layout drift", len(d.buf)-d.off)
	}
	return nil
}

// Coverage checks a package's snapshot field manifest against the real
// struct: every field of typ (exported or not) must appear as a manifest
// key, and every manifest key must name a live field. The value is
// free-text documentation — "encoded", or "skip: <why the field need not
// be serialized>". Each state-holding package keeps its manifests next to
// its encode/decode code and asserts them in a completeness test, so
// adding a struct field without deciding its snapshot fate fails the
// build's test run (and the snapshotguard analyzer fails the lint run).
func Coverage(typ reflect.Type, manifest map[string]string) error {
	if typ.Kind() != reflect.Struct {
		return fmt.Errorf("snapshot: Coverage wants a struct type, got %s", typ.Kind())
	}
	live := make(map[string]bool, typ.NumField())
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		live[name] = true
		if _, ok := manifest[name]; !ok {
			return fmt.Errorf("snapshot: %s.%s is not in the snapshot manifest — encode it and bump snapshot.Version, or record an explicit \"skip: ...\" entry", typ.Name(), name)
		}
	}
	keys := make([]string, 0, len(manifest))
	for k := range manifest {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !live[k] {
			return fmt.Errorf("snapshot: manifest entry %s.%s names no field — remove the stale entry", typ.Name(), k)
		}
	}
	return nil
}
