// Package isa defines the SASS-like instruction set executed by the
// sub-core simulator.
//
// The simulator is not a functional emulator: instructions carry no data,
// only the structural information the paper's studied effects depend on —
// which execution-unit class an instruction occupies, how long it occupies
// it, which architectural registers it reads and writes (and therefore
// which register-file banks it touches), and how memory instructions
// exercise the cache hierarchy.
package isa

import "fmt"

// Reg identifies an architectural register within a warp. Registers are
// vector registers: one 32-bit lane per thread in the warp.
type Reg uint16

// NoReg marks an unused operand slot (the SASS "RZ" reads as a constant
// zero and touches no bank; we fold both cases into NoReg).
const NoReg Reg = 0xFFFF

// Valid reports whether r names a real register.
func (r Reg) Valid() bool { return r != NoReg }

// Op enumerates the instruction opcodes the simulator models. The set is a
// condensed SASS: one opcode per distinct (unit class, operand shape,
// latency) behaviour the paper's workloads exercise.
type Op uint8

const (
	// OpNOP occupies an issue slot and nothing else.
	OpNOP Op = iota
	// OpFMA is a fused multiply-add: d = a*b+c. Three source operands —
	// the worst case for a two-bank register file and the instruction the
	// paper's microbenchmarks are built from.
	OpFMA
	// OpFADD is a two-source FP32 add.
	OpFADD
	// OpFMUL is a two-source FP32 multiply.
	OpFMUL
	// OpIADD is a two-source integer add (address arithmetic, counters).
	OpIADD
	// OpIMAD is a three-source integer multiply-add.
	OpIMAD
	// OpISETP is a two-source integer compare writing a predicate; we model
	// the predicate as a regular destination register.
	OpISETP
	// OpMOV copies one register.
	OpMOV
	// OpSFU covers the special-function unit ops (rsqrt, sin, exp...).
	OpSFU
	// OpTensor is an HMMA-style tensor-core op (three sources).
	OpTensor
	// OpLDG loads from global memory.
	OpLDG
	// OpSTG stores to global memory.
	OpSTG
	// OpLDS loads from the shared-memory scratchpad.
	OpLDS
	// OpSTS stores to the shared-memory scratchpad.
	OpSTS
	// OpLDC loads from constant memory (kernel arguments); always hits the
	// constant cache in our model.
	OpLDC
	// OpBAR is a thread-block-wide barrier (bar.sync).
	OpBAR
	// OpBRA is a branch; control flow is pre-resolved by the program
	// representation, so BRA only costs an issue slot and INT-unit time.
	OpBRA
	// OpEXIT terminates the warp.
	OpEXIT

	numOps
)

var opNames = [numOps]string{
	OpNOP: "NOP", OpFMA: "FMA", OpFADD: "FADD", OpFMUL: "FMUL",
	OpIADD: "IADD", OpIMAD: "IMAD", OpISETP: "ISETP", OpMOV: "MOV",
	OpSFU: "SFU", OpTensor: "HMMA", OpLDG: "LDG", OpSTG: "STG",
	OpLDS: "LDS", OpSTS: "STS", OpLDC: "LDC", OpBAR: "BAR",
	OpBRA: "BRA", OpEXIT: "EXIT",
}

// String returns the SASS-style mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Class identifies the execution-unit a dispatched instruction occupies.
type Class uint8

const (
	// ClassNone is for instructions that finish at issue (NOP, BAR, EXIT).
	ClassNone Class = iota
	// ClassFP32 is the FP32/FMA SIMD pipeline (16 lanes per Volta sub-core).
	ClassFP32
	// ClassINT is the integer SIMD pipeline (16 lanes per Volta sub-core).
	ClassINT
	// ClassSFU is the special-function pipeline (4 lanes per sub-core).
	ClassSFU
	// ClassTensor is the tensor core (one per sub-core).
	ClassTensor
	// ClassMEM routes through the SM-shared load/store unit.
	ClassMEM

	NumClasses
)

var classNames = [NumClasses]string{
	ClassNone: "none", ClassFP32: "fp32", ClassINT: "int",
	ClassSFU: "sfu", ClassTensor: "tensor", ClassMEM: "mem",
}

// String returns the unit name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// UnitOf returns the execution-unit class an opcode dispatches to.
func (o Op) UnitOf() Class {
	switch o {
	case OpFMA, OpFADD, OpFMUL:
		return ClassFP32
	case OpIADD, OpIMAD, OpISETP, OpMOV, OpBRA:
		return ClassINT
	case OpSFU:
		return ClassSFU
	case OpTensor:
		return ClassTensor
	case OpLDG, OpSTG, OpLDS, OpSTS, OpLDC:
		return ClassMEM
	default:
		return ClassNone
	}
}

// IsMemory reports whether the op accesses a memory space.
func (o Op) IsMemory() bool { return o.UnitOf() == ClassMEM }

// IsBarrier reports whether the op is a block-wide barrier.
func (o Op) IsBarrier() bool { return o == OpBAR }

// IsExit reports whether the op terminates the warp.
func (o Op) IsExit() bool { return o == OpEXIT }

// Space enumerates memory spaces for memory instructions.
type Space uint8

const (
	// SpaceNone is for non-memory instructions.
	SpaceNone Space = iota
	// SpaceGlobal is device memory through L1/L2/DRAM.
	SpaceGlobal
	// SpaceShared is the per-SM scratchpad with 32 banks.
	SpaceShared
	// SpaceConst is the constant cache (always hits in our model).
	SpaceConst
)

// SpaceOf returns the memory space an opcode accesses.
func (o Op) SpaceOf() Space {
	switch o {
	case OpLDG, OpSTG:
		return SpaceGlobal
	case OpLDS, OpSTS:
		return SpaceShared
	case OpLDC:
		return SpaceConst
	default:
		return SpaceNone
	}
}

// Pattern describes how the 32 threads of a warp spread a memory access.
// It determines coalescing behaviour and therefore L1 pressure.
type Pattern uint8

const (
	// PatNone is for non-memory instructions.
	PatNone Pattern = iota
	// PatCoalesced: consecutive 4-byte words; one 128-byte transaction.
	PatCoalesced
	// PatStrided: fixed stride between threads; several transactions.
	PatStrided
	// PatRandom: each thread touches an unrelated line; up to 32
	// transactions within the instruction's footprint.
	PatRandom
	// PatBroadcast: all threads read the same word; one transaction.
	PatBroadcast
)

// MemTrait parameterizes a memory instruction's address behaviour. Address
// streams are synthesized by the LSU from these traits, the warp's global
// ID, and a per-warp access counter, so no traces need to be stored.
type MemTrait struct {
	// Pattern selects the intra-warp address spread.
	Pattern Pattern
	// Footprint is the size in bytes of the region this instruction
	// wanders over (per warp for PatRandom/PatStrided; shared across the
	// kernel for streaming re-use when Shared is true).
	Footprint uint32
	// StrideBytes is the inter-thread stride for PatStrided.
	StrideBytes uint32
	// Shared marks the footprint as kernel-global (re-used across warps,
	// cache-friendly) rather than per-warp private.
	Shared bool
	// Divergence caps the distinct cache lines a PatRandom access touches
	// (gathers are rarely fully divergent); 0 means fully divergent (32).
	Divergence uint8
}

// Instr is a decoded instruction descriptor. Instr is a value type; warp
// programs are slices of Instr and cursors copy them freely.
type Instr struct {
	// Op is the opcode.
	Op Op
	// Dst is the destination register, or NoReg.
	Dst Reg
	// Srcs are the source registers; unused slots hold NoReg.
	Srcs [3]Reg
	// Mem carries address-behaviour for memory ops; zero otherwise.
	Mem MemTrait
}

// NumSrcs returns the number of valid source operands.
func (in *Instr) NumSrcs() int {
	n := 0
	for _, s := range in.Srcs {
		if s.Valid() {
			n++
		}
	}
	return n
}

// HasSrc reports whether the instruction reads any register.
func (in *Instr) HasSrc() bool { return in.Srcs[0].Valid() || in.Srcs[1].Valid() || in.Srcs[2].Valid() }

// String formats the instruction SASS-style, e.g. "FMA R4, R1, R2, R3".
func (in Instr) String() string {
	s := in.Op.String()
	if in.Dst.Valid() {
		s += fmt.Sprintf(" R%d", in.Dst)
	}
	for _, r := range in.Srcs {
		if r.Valid() {
			s += fmt.Sprintf(", R%d", r)
		}
	}
	return s
}

// MakeFMA builds d = a*b+c.
func MakeFMA(d, a, b, c Reg) Instr { return Instr{Op: OpFMA, Dst: d, Srcs: [3]Reg{a, b, c}} }

// Make2 builds a generic two-source instruction.
func Make2(op Op, d, a, b Reg) Instr { return Instr{Op: op, Dst: d, Srcs: [3]Reg{a, b, NoReg}} }

// Make1 builds a one-source instruction.
func Make1(op Op, d, a Reg) Instr { return Instr{Op: op, Dst: d, Srcs: [3]Reg{a, NoReg, NoReg}} }

// MakeBar builds a block-wide barrier.
func MakeBar() Instr { return Instr{Op: OpBAR, Dst: NoReg, Srcs: [3]Reg{NoReg, NoReg, NoReg}} }

// MakeExit builds a warp-exit.
func MakeExit() Instr { return Instr{Op: OpEXIT, Dst: NoReg, Srcs: [3]Reg{NoReg, NoReg, NoReg}} }

// MakeLoad builds a load (global or shared by op) with addressing trait t,
// address register a and destination d.
func MakeLoad(op Op, d, a Reg, t MemTrait) Instr {
	return Instr{Op: op, Dst: d, Srcs: [3]Reg{a, NoReg, NoReg}, Mem: t}
}

// MakeStore builds a store with address register a and data register v.
func MakeStore(op Op, a, v Reg, t MemTrait) Instr {
	return Instr{Op: op, Dst: NoReg, Srcs: [3]Reg{a, v, NoReg}, Mem: t}
}
