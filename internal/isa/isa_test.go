package isa

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpFMA: "FMA", OpLDG: "LDG", OpBAR: "BAR", OpEXIT: "EXIT", OpSFU: "SFU",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); got != "Op(200)" {
		t.Errorf("unknown op String() = %q", got)
	}
}

func TestUnitOf(t *testing.T) {
	cases := map[Op]Class{
		OpFMA: ClassFP32, OpFADD: ClassFP32, OpFMUL: ClassFP32,
		OpIADD: ClassINT, OpIMAD: ClassINT, OpMOV: ClassINT, OpBRA: ClassINT,
		OpSFU: ClassSFU, OpTensor: ClassTensor,
		OpLDG: ClassMEM, OpSTG: ClassMEM, OpLDS: ClassMEM, OpSTS: ClassMEM, OpLDC: ClassMEM,
		OpBAR: ClassNone, OpEXIT: ClassNone, OpNOP: ClassNone,
	}
	for op, want := range cases {
		if got := op.UnitOf(); got != want {
			t.Errorf("%v.UnitOf() = %v, want %v", op, got, want)
		}
	}
}

func TestSpaceOf(t *testing.T) {
	cases := map[Op]Space{
		OpLDG: SpaceGlobal, OpSTG: SpaceGlobal,
		OpLDS: SpaceShared, OpSTS: SpaceShared,
		OpLDC: SpaceConst, OpFMA: SpaceNone,
	}
	for op, want := range cases {
		if got := op.SpaceOf(); got != want {
			t.Errorf("%v.SpaceOf() = %v, want %v", op, got, want)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !OpLDG.IsMemory() || OpFMA.IsMemory() {
		t.Error("IsMemory misclassifies")
	}
	if !OpBAR.IsBarrier() || OpEXIT.IsBarrier() {
		t.Error("IsBarrier misclassifies")
	}
	if !OpEXIT.IsExit() || OpBAR.IsExit() {
		t.Error("IsExit misclassifies")
	}
}

func TestNumSrcs(t *testing.T) {
	fma := MakeFMA(4, 1, 2, 3)
	if n := fma.NumSrcs(); n != 3 {
		t.Errorf("FMA NumSrcs = %d, want 3", n)
	}
	add := Make2(OpFADD, 3, 1, 2)
	if n := add.NumSrcs(); n != 2 {
		t.Errorf("FADD NumSrcs = %d, want 2", n)
	}
	bar := MakeBar()
	if n := bar.NumSrcs(); n != 0 {
		t.Errorf("BAR NumSrcs = %d, want 0", n)
	}
	if bar.HasSrc() {
		t.Error("BAR HasSrc = true, want false")
	}
	if !fma.HasSrc() {
		t.Error("FMA HasSrc = false, want true")
	}
}

func TestInstrString(t *testing.T) {
	in := MakeFMA(4, 1, 2, 3)
	if got, want := in.String(), "FMA R4, R1, R2, R3"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	bar := MakeBar()
	if got, want := bar.String(), "BAR"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestMakeHelpers(t *testing.T) {
	ld := MakeLoad(OpLDG, 5, 2, MemTrait{Pattern: PatCoalesced, Footprint: 1024})
	if ld.Dst != 5 || ld.Srcs[0] != 2 || ld.Mem.Pattern != PatCoalesced {
		t.Errorf("MakeLoad produced %+v", ld)
	}
	st := MakeStore(OpSTG, 2, 7, MemTrait{Pattern: PatCoalesced})
	if st.Dst.Valid() {
		t.Error("store must not write a register")
	}
	if st.Srcs[0] != 2 || st.Srcs[1] != 7 {
		t.Errorf("MakeStore sources = %v", st.Srcs)
	}
	mv := Make1(OpMOV, 1, 2)
	if mv.NumSrcs() != 1 {
		t.Errorf("Make1 NumSrcs = %d", mv.NumSrcs())
	}
}

func TestLatencyPositive(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if op.Latency() < 1 {
			t.Errorf("%v.Latency() = %d, want >= 1", op, op.Latency())
		}
	}
}

func TestInitiationInterval(t *testing.T) {
	cases := []struct{ lanes, want int }{
		{32, 1}, {16, 2}, {8, 4}, {4, 8}, {64, 1}, {0, 32}, {-1, 32}, {3, 11},
	}
	for _, c := range cases {
		if got := InitiationInterval(c.lanes); got != c.want {
			t.Errorf("InitiationInterval(%d) = %d, want %d", c.lanes, got, c.want)
		}
	}
}

func TestInitiationIntervalProperty(t *testing.T) {
	// Property: lanes * II >= WarpSize, and (lanes)*(II-1) < WarpSize for
	// all positive lane counts — the interval is the exact ceiling.
	f := func(lanes uint8) bool {
		l := int(lanes%64) + 1
		ii := InitiationInterval(l)
		return l*ii >= WarpSize && l*(ii-1) < WarpSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegValid(t *testing.T) {
	if NoReg.Valid() {
		t.Error("NoReg must be invalid")
	}
	if !Reg(0).Valid() {
		t.Error("R0 must be valid")
	}
}
