package isa

// Timing constants approximate the Volta V100 pipeline the paper's Accel-Sim
// configuration models. Latencies are dependent-issue latencies: the number
// of cycles after dispatch before the destination register is written back
// (and a dependent instruction may issue). Memory latencies are *not* here:
// the LSU and cache hierarchy determine those dynamically.

// Latency returns the execution latency in cycles for a non-memory opcode.
// Memory opcodes return the LSU pipeline depth only; queueing and cache
// time are added by the memory system.
func (o Op) Latency() int {
	switch o.UnitOf() {
	case ClassFP32:
		return 4
	case ClassINT:
		return 4
	case ClassSFU:
		return 16
	case ClassTensor:
		return 16
	case ClassMEM:
		return 4 // address-generation pipeline before the LSU queue
	default:
		return 1
	}
}

// WarpSize is the number of threads that execute an instruction in
// lock-step. Fixed at 32 across every architecture the paper studies.
const WarpSize = 32

// InitiationInterval returns how many cycles an execution unit with the
// given number of SIMD lanes is occupied by one warp instruction. A Volta
// sub-core has 16 FP32 lanes, so a 32-thread warp occupies the FP32 pipe
// for 2 cycles.
func InitiationInterval(lanes int) int {
	if lanes <= 0 {
		return WarpSize
	}
	ii := WarpSize / lanes
	if WarpSize%lanes != 0 {
		ii++
	}
	if ii < 1 {
		ii = 1
	}
	return ii
}
