package metrics

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
)

// famSnap/serSnap are point-in-time copies of the registry structure.
// The snapshot is taken under the registry mutex; values and gauge
// functions are read afterwards so a slow GaugeFunc never holds the
// registration lock.
type serSnap struct {
	key string
	c   *Counter
	g   *Gauge
	h   *Histogram
	fn  func() float64
}

type famSnap struct {
	name   string
	help   string
	typ    metricType
	bounds []float64
	series []serSnap
}

// snapshot copies the registry skeleton in deterministic (sorted) order.
func (r *Registry) snapshot() []famSnap {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]famSnap, 0, len(r.fams))
	for _, f := range r.fams {
		fs := famSnap{name: f.name, help: f.help, typ: f.typ, bounds: f.bounds}
		for _, s := range f.series {
			fs.series = append(fs.series, serSnap{key: s.key, c: s.c, g: s.g, h: s.h, fn: s.fn})
		}
		sort.Slice(fs.series, func(i, j int) bool { return fs.series[i].key < fs.series[j].key })
		out = append(out, fs)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// value resolves a scalar series to its current value.
func (s *serSnap) value() float64 {
	switch {
	case s.fn != nil:
		return s.fn()
	case s.c != nil:
		return float64(s.c.Value())
	case s.g != nil:
		return s.g.Value()
	}
	return 0
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), families and series in sorted order so
// identical runs scrape byte-identically. Safe on a nil registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshot() {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ.String())
		bw.WriteByte('\n')
		for i := range f.series {
			s := &f.series[i]
			if f.typ == typeHistogram {
				writeHistogram(bw, f.name, s)
				continue
			}
			bw.WriteString(f.name)
			bw.WriteString(s.key)
			bw.WriteByte(' ')
			if s.c != nil && s.fn == nil {
				bw.WriteString(strconv.FormatInt(s.c.Value(), 10))
			} else {
				bw.WriteString(formatFloat(s.value()))
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative _bucket lines
// plus _sum and _count.
func writeHistogram(bw *bufio.Writer, name string, s *serSnap) {
	var cum int64
	for i := 0; i <= len(s.h.bounds); i++ {
		le := "+Inf"
		if i < len(s.h.bounds) {
			le = formatFloat(s.h.bounds[i])
		}
		cum += s.h.buckets[i].Load()
		bw.WriteString(name)
		bw.WriteString("_bucket")
		bw.WriteString(withLabel(s.key, "le", le))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(cum, 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(name)
	bw.WriteString("_sum")
	bw.WriteString(s.key)
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(s.h.Sum()))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count")
	bw.WriteString(s.key)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(s.h.Count(), 10))
	bw.WriteByte('\n')
}

// withLabel appends one label to a rendered label key.
func withLabel(key, name, value string) string {
	extra := name + `="` + escapeLabel(value) + `"`
	if key == "" {
		return "{" + extra + "}"
	}
	return key[:len(key)-1] + "," + extra + "}"
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, with infinities spelled +Inf/-Inf.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a help string per the text exposition format.
func escapeHelp(h string) string {
	out := make([]byte, 0, len(h))
	for i := 0; i < len(h); i++ {
		switch h[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, h[i])
		}
	}
	return string(out)
}

// WriteJSON renders the registry as /debug/vars-style JSON: an object
// keyed by family name (sorted), each carrying type, help, and its
// series with parsed label maps. Rendered by hand so output stays
// byte-deterministic without an intermediate map.
func (r *Registry) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteByte('{')
	for fi, f := range r.snapshot() {
		if fi > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(strconv.Quote(f.name))
		bw.WriteString(`:{"type":`)
		bw.WriteString(strconv.Quote(f.typ.String()))
		bw.WriteString(`,"help":`)
		bw.WriteString(strconv.Quote(f.help))
		bw.WriteString(`,"series":[`)
		for si := range f.series {
			if si > 0 {
				bw.WriteByte(',')
			}
			s := &f.series[si]
			bw.WriteString(`{"labels":`)
			bw.WriteString(strconv.Quote(s.key))
			if f.typ == typeHistogram {
				bw.WriteString(`,"count":`)
				bw.WriteString(strconv.FormatInt(s.h.Count(), 10))
				bw.WriteString(`,"sum":`)
				writeJSONFloat(bw, s.h.Sum())
				bw.WriteString(`,"buckets":[`)
				var cum int64
				for i := 0; i <= len(s.h.bounds); i++ {
					if i > 0 {
						bw.WriteByte(',')
					}
					cum += s.h.buckets[i].Load()
					bw.WriteString(strconv.FormatInt(cum, 10))
				}
				bw.WriteByte(']')
			} else {
				bw.WriteString(`,"value":`)
				writeJSONFloat(bw, s.value())
			}
			bw.WriteByte('}')
		}
		bw.WriteString(`]}`)
	}
	bw.WriteString("}\n")
	return bw.Flush()
}

// writeJSONFloat writes a float as a JSON number; non-finite values
// (not representable in JSON) render as strings.
func writeJSONFloat(bw *bufio.Writer, v float64) {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		bw.WriteString(strconv.Quote(formatFloat(v)))
		return
	}
	bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
}
