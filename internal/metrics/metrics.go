// Package metrics is the simulator's live telemetry registry: counters,
// gauges, and fixed-bucket histograms exposed over HTTP in Prometheus
// text exposition and /debug/vars-style JSON (expose.go, http.go).
//
// The package is stdlib-only and built around the same cost contract as
// internal/trace:
//
//  1. Disabled must be near-free. Every registration method is safe on a
//     nil *Registry and returns a nil handle; call sites guard the
//     handle (`if c != nil { c.Inc() }`) so a run without -metrics-addr
//     pays exactly one predictable branch per site. simlint's traceguard
//     analyzer enforces the guard statically, and
//     BenchmarkMetricsOverhead certifies the cost dynamically.
//  2. The hot path is atomic, not locked. Handle updates (Counter.Add,
//     Gauge.Set, Histogram.Observe) are single atomic operations safe
//     for concurrent sweep workers; the registry mutex is only taken at
//     registration and scrape time.
//  3. Scrapes are deterministic. Families and series render in sorted
//     order, so two identical runs produce byte-identical scrapes — the
//     property that lets CI diff telemetry like any other output.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value dimension of a series.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing value. The zero value is ready;
// handles obtained from a nil Registry are nil and must be guarded at
// the call site (the disabled fast path).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (callers keep counters monotone; deltas must be >= 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets
// (Prometheus `le` semantics: bucket i counts observations <= bound i,
// with an implicit +Inf bucket).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value. NaN observations are dropped (they would
// poison the sum).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metricType discriminates family kinds in the registry and exposition.
type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (family, label set) time series.
type series struct {
	labels []Label // sorted by name
	key    string  // rendered `{a="x",...}` or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // gauge-func, evaluated at scrape time
}

// family is one metric name with its type, help, and series.
type family struct {
	name   string
	help   string
	typ    metricType
	bounds []float64 // histogram families only
	series map[string]*series
}

// Registry holds metric families. The zero value via New is ready; a
// nil Registry is the disabled state — every registration method
// no-ops and returns a nil handle.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// Counter registers (or finds) a counter series and returns its handle;
// nil when the registry is nil.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeCounter, nil, labels).c
}

// Gauge registers (or finds) a gauge series and returns its handle; nil
// when the registry is nil.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeGauge, nil, labels).g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time. Re-registering the same (name, labels) replaces fn — a retried
// sweep cell re-points its progress gauge at the fresh monitor. fn must
// be safe to call concurrently with the measured code.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	s := r.lookup(name, help, typeGauge, nil, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram registers (or finds) a histogram series over the given
// cumulative upper bounds (sorted ascending; +Inf is implicit) and
// returns its handle; nil when the registry is nil.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %s bounds not strictly ascending", name))
		}
	}
	return r.lookup(name, help, typeHistogram, bounds, labels).h
}

// lookup finds or creates the (family, series) pair. Type mismatches on
// an existing name are programmer errors and panic.
func (r *Registry) lookup(name, help string, typ metricType, bounds []float64, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, l := range sorted {
		if !validName(l.Name) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l.Name, name))
		}
	}
	key := labelKey(sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, bounds: bounds, series: map[string]*series{}}
		r.fams[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	s := f.series[key]
	if s != nil {
		return s
	}
	s = &series{labels: sorted, key: key}
	switch typ {
	case typeCounter:
		s.c = &Counter{}
	case typeGauge:
		s.g = &Gauge{}
	case typeHistogram:
		h := &Histogram{bounds: f.bounds}
		h.buckets = make([]atomic.Int64, len(f.bounds)+1)
		s.h = h
	}
	f.series[key] = s
	return s
}

// labelKey renders sorted labels as the Prometheus series suffix.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// validName checks a metric or label name against the Prometheus
// identifier grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
