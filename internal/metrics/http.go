package metrics

import (
	"fmt"
	"net"
	"net/http"
)

// Handler returns the telemetry endpoint multiplexer:
//
//	/metrics     Prometheus text exposition format
//	/debug/vars  the same registry as JSON
//	/            a one-line index
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "simulator telemetry: /metrics (Prometheus text), /debug/vars (JSON)")
	})
	return mux
}

// Server is a running telemetry HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server for the registry on addr (e.g.
// "127.0.0.1:9090"; ":0" picks a free port — read it back via Addr).
// The server runs until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: r.Handler()}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }
