package metrics

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestNilRegistry: every registration method is a no-op on a nil
// registry and returns a nil handle — the disabled fast path.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	if c := r.Counter("a_total", "h"); c != nil {
		t.Fatal("nil registry returned a counter")
	}
	if g := r.Gauge("b", "h"); g != nil {
		t.Fatal("nil registry returned a gauge")
	}
	if h := r.Histogram("c", "h", []float64{1}); h != nil {
		t.Fatal("nil registry returned a histogram")
	}
	r.GaugeFunc("d", "h", func() float64 { return 1 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus on nil registry: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry scrape not empty: %q", buf.String())
	}
}

// TestRegistrationIdempotent: same (name, labels) yields the same
// handle; same name with a different type panics.
func TestRegistrationIdempotent(t *testing.T) {
	r := New()
	c1 := r.Counter("x_total", "h", L("k", "v"))
	c2 := r.Counter("x_total", "h", L("k", "v"))
	if c1 != c2 {
		t.Fatal("re-registration returned a different handle")
	}
	c1.Add(3)
	if c2.Value() != 3 {
		t.Fatal("handles not aliased")
	}
	if c3 := r.Counter("x_total", "h", L("k", "w")); c3 == c1 {
		t.Fatal("distinct label values shared a series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	r := New()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid name did not panic")
		}
	}()
	r.Counter("bad name", "h")
}

// TestHistogramBuckets checks le-bucket assignment and the cumulative
// rendering.
func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %v, want 106", h.Sum())
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 2`, // 0.5, 1 (le is inclusive)
		`lat_bucket{le="2"} 3`, // +1.5
		`lat_bucket{le="4"} 4`, // +3
		`lat_bucket{le="+Inf"} 5`,
		`lat_sum 106`,
		`lat_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}

// TestScrapeDeterministic: two registries fed identically (in different
// orders) scrape byte-identically, in both formats.
func TestScrapeDeterministic(t *testing.T) {
	build := func(order []int) *Registry {
		r := New()
		for _, i := range order {
			switch i {
			case 0:
				r.Counter("zz_total", "last name first").Add(7)
			case 1:
				r.Gauge("aa", "first name last", L("b", "2"), L("a", "1")).Set(3.5)
			case 2:
				r.Histogram("mm", "middle", []float64{1, 10}).Observe(4)
			case 3:
				r.GaugeFunc("fn", "computed", func() float64 { return 42 })
			}
		}
		return r
	}
	a, b := build([]int{0, 1, 2, 3}), build([]int{3, 2, 1, 0})
	var pa, pb, ja, jb bytes.Buffer
	a.WritePrometheus(&pa)
	b.WritePrometheus(&pb)
	a.WriteJSON(&ja)
	b.WriteJSON(&jb)
	if pa.String() != pb.String() {
		t.Errorf("Prometheus scrapes differ:\n%s\n---\n%s", pa.String(), pb.String())
	}
	if ja.String() != jb.String() {
		t.Errorf("JSON scrapes differ:\n%s\n---\n%s", ja.String(), jb.String())
	}
	if !json.Valid(ja.Bytes()) {
		t.Errorf("WriteJSON produced invalid JSON:\n%s", ja.String())
	}
	// Label sets render sorted by name regardless of call order.
	if !strings.Contains(pa.String(), `aa{a="1",b="2"} 3.5`) {
		t.Errorf("labels not sorted:\n%s", pa.String())
	}
}

// TestConcurrentUpdates: handle methods are atomic under concurrency.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	c := r.Counter("n_total", "h")
	h := r.Histogram("v", "h", []float64{10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 || h.Sum() != 8000 {
		t.Fatalf("histogram count=%d sum=%v, want 8000/8000", h.Count(), h.Sum())
	}
}

// TestHTTPEndpoints drives the live server end to end.
func TestHTTPEndpoints(t *testing.T) {
	r := New()
	r.Counter("hits_total", "h", L("app", `q"x`)).Add(2)
	r.GaugeFunc("live", "h", func() float64 { return 9 })
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, `hits_total{app="q\"x"} 2`) {
		t.Errorf("/metrics missing escaped counter:\n%s", body)
	}
	if !strings.Contains(body, "live 9") {
		t.Errorf("/metrics missing gauge-func:\n%s", body)
	}

	body, ct = get("/debug/vars")
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/debug/vars content type = %q", ct)
	}
	if !json.Valid([]byte(body)) {
		t.Errorf("/debug/vars not valid JSON:\n%s", body)
	}
}
