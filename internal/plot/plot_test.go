package plot

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSparklineBasics(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("width = %d, want 8", utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("scaling wrong: %q", s)
	}
	if Sparkline(nil, 10) != "" {
		t.Error("empty input must render empty")
	}
	if Sparkline([]float64{1}, 0) != "" {
		t.Error("zero width must render empty")
	}
}

func TestSparklineDownsamples(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	s := Sparkline(vals, 20)
	if utf8.RuneCountInString(s) != 20 {
		t.Fatalf("width = %d, want 20", utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Fatalf("monotone ramp rendered non-monotonically: %q", s)
		}
	}
}

func TestSparklineWidthClamp(t *testing.T) {
	s := Sparkline([]float64{1, 2}, 50)
	if utf8.RuneCountInString(s) != 2 {
		t.Errorf("width should clamp to len(vals): %q", s)
	}
}

func TestSparklineAllZero(t *testing.T) {
	s := Sparkline([]float64{0, 0, 0}, 3)
	if s != "▁▁▁" {
		t.Errorf("all-zero series = %q", s)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram([]float64{1, 1, 1, 9}, 2, 10, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	if !strings.Contains(lines[0], "██████████ 3") {
		t.Errorf("first bin wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], " 1") {
		t.Errorf("second bin wrong: %q", lines[1])
	}
	if Histogram(nil, 4, 1, 10) != "" {
		t.Error("empty input must render empty")
	}
	// Auto max.
	if Histogram([]float64{5, 10}, 2, 0, 4) == "" {
		t.Error("auto-max failed")
	}
}

func TestSparklineSingleValue(t *testing.T) {
	s := Sparkline([]float64{3.5}, 10)
	if utf8.RuneCountInString(s) != 1 {
		t.Fatalf("single-value width = %d, want 1", utf8.RuneCountInString(s))
	}
}

func TestSparklineNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := [][]float64{
		{nan, nan, nan},
		{inf, inf},
		{math.Inf(-1), 0, 1},
		{1, nan, 3, inf, 5},
		{nan},
	}
	for _, vals := range cases {
		s := Sparkline(vals, 8) // must not panic
		if utf8.RuneCountInString(s) == 0 {
			t.Errorf("Sparkline(%v) rendered empty", vals)
		}
		for _, r := range s {
			if !strings.ContainsRune(string(sparks), r) {
				t.Errorf("Sparkline(%v) produced non-spark rune %q", vals, r)
			}
		}
	}
}

func TestHistogramNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	for _, vals := range [][]float64{
		{nan, 1, 2},
		{inf, 1, 2},
		{nan, inf, math.Inf(-1)},
	} {
		out := Histogram(vals, 4, 0, 10) // auto-max path; must not panic
		if out == "" {
			t.Errorf("Histogram(%v) rendered empty", vals)
		}
	}
	// Non-finite explicit max must fall back to auto-max, not poison bins.
	if out := Histogram([]float64{1, 2}, 2, nan, 10); out == "" {
		t.Error("Histogram with NaN max rendered empty")
	}
}

func TestSeriesNonFinite(t *testing.T) {
	s := Series("t", []float64{math.NaN(), 1, math.Inf(1)}, 10) // must not panic
	if strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
		t.Errorf("Series leaked non-finite stats: %q", s)
	}
	if s := Series("one", []float64{42}, 10); !strings.Contains(s, "min 42") ||
		!strings.Contains(s, "max 42") {
		t.Errorf("single-value Series = %q", s)
	}
}

func TestSeries(t *testing.T) {
	s := Series("trace", []float64{1, 2, 3}, 3)
	for _, want := range []string{"trace", "min 1", "mean 2.0", "max 3"} {
		if !strings.Contains(s, want) {
			t.Errorf("Series missing %q: %q", want, s)
		}
	}
	if !strings.Contains(Series("x", nil, 3), "empty") {
		t.Error("empty series must say so")
	}
}
