// Package plot renders small terminal visualizations — sparklines,
// histograms and density strips — used by the CLI tools to show Fig. 14
// style per-cycle traces without leaving the terminal.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// finite sanitizes one sample: NaN and ±Inf render as the baseline (0)
// rather than producing an out-of-range glyph index or a poisoned scale.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// sparks are the eight vertical-resolution levels of a sparkline.
var sparks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as a width-character sparkline, bucketing by
// mean within each bucket and scaling to the series maximum.
func Sparkline(vals []float64, width int) string {
	if len(vals) == 0 || width < 1 {
		return ""
	}
	if width > len(vals) {
		width = len(vals)
	}
	buckets := bucketMeans(vals, width)
	max := 0.0
	for _, b := range buckets {
		if b > max {
			max = b
		}
	}
	var sb strings.Builder
	for _, b := range buckets {
		idx := 0
		if max > 0 {
			idx = int(b / max * float64(len(sparks)-1))
		}
		if idx >= len(sparks) {
			idx = len(sparks) - 1
		}
		if idx < 0 {
			idx = 0
		}
		sb.WriteRune(sparks[idx])
	}
	return sb.String()
}

// bucketMeans downsamples vals into n equal-width buckets by mean.
func bucketMeans(vals []float64, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * len(vals) / n
		hi := (i + 1) * len(vals) / n
		if hi <= lo {
			hi = lo + 1
		}
		var s float64
		for _, v := range vals[lo:hi] {
			s += finite(v)
		}
		out[i] = s / float64(hi-lo)
	}
	return out
}

// Histogram renders a horizontal-bar histogram of vals over nbins bins in
// [0, max], one line per bin, bars scaled to barWidth characters.
func Histogram(vals []float64, nbins int, max float64, barWidth int) string {
	if nbins < 1 || len(vals) == 0 {
		return ""
	}
	if max <= 0 || math.IsNaN(max) || math.IsInf(max, 0) {
		max = 0
		for _, v := range vals {
			if v := finite(v); v > max {
				max = v
			}
		}
		if max <= 0 {
			max = 1
		}
	}
	counts := make([]int, nbins)
	for _, v := range vals {
		b := int(finite(v) / max * float64(nbins))
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	var sb strings.Builder
	for i, c := range counts {
		lo := max * float64(i) / float64(nbins)
		hi := max * float64(i+1) / float64(nbins)
		bar := 0
		if peak > 0 {
			bar = c * barWidth / peak
		}
		fmt.Fprintf(&sb, "%8.0f-%-8.0f |%s %d\n", lo, hi, strings.Repeat("█", bar), c)
	}
	return sb.String()
}

// Series renders a labeled sparkline with its min/mean/max.
func Series(label string, vals []float64, width int) string {
	if len(vals) == 0 {
		return fmt.Sprintf("%-24s (empty)", label)
	}
	min, max, sum := finite(vals[0]), finite(vals[0]), 0.0
	for _, v := range vals {
		v = finite(v)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	return fmt.Sprintf("%-24s %s  min %.0f  mean %.1f  max %.0f",
		label, Sparkline(vals, width), min, sum/float64(len(vals)), max)
}
