package regfile

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/isa"
	"repro/internal/snapshot"
)

func TestSnapshotCoverage(t *testing.T) {
	cases := []struct {
		typ      reflect.Type
		manifest map[string]string
	}{
		{reflect.TypeOf(Collector{}), collectorManifest},
		{reflect.TypeOf(CollectorUnit{}), collectorUnitManifest},
		{reflect.TypeOf(readReq{}), readReqManifest},
		{reflect.TypeOf(WriteReq{}), writeReqManifest},
	}
	for _, c := range cases {
		if err := snapshot.Coverage(c.typ, c.manifest); err != nil {
			t.Errorf("%s: %v", c.typ.Name(), err)
		}
	}
}

// loadCollector stages a deterministic mix of instructions, writes, and
// partial grants so every piece of collector state is non-trivial.
func loadCollector(c *Collector, ticks int) []string {
	var grants []string
	denyMem := func(u *CollectorUnit) bool { return u.Instr.Op.UnitOf() != isa.ClassMEM }
	next := 0
	for i := 0; i < ticks; i++ {
		if cu := c.FreeCU(); cu >= 0 && i%2 == 0 {
			in := isa.MakeFMA(isa.Reg(next), isa.Reg(next+1), isa.Reg(next+2), isa.Reg(next+3))
			if next%3 == 0 {
				in = isa.MakeLoad(isa.OpLDG, isa.Reg(next), isa.Reg(next+1), isa.MemTrait{Pattern: isa.PatCoalesced})
			}
			c.Allocate(cu, int32(next), int32(next%4), in, next%2, false)
			next++
		}
		if i%3 == 0 {
			c.EnqueueWrite(WriteReq{WarpIdx: int32(i), Reg: isa.Reg(i % 8), Bank: int8(i % c.banks)})
		}
		c.Tick(denyMem)
		for _, w := range c.GrantedWrites() {
			grants = append(grants, fmt.Sprintf("%d:%d/%d", i, w.WarpIdx, w.Reg))
		}
	}
	return grants
}

func TestCollectorRoundTrip(t *testing.T) {
	a := NewCollector(2, 2, 5, nil)
	loadCollector(a, 11)

	e := snapshot.NewEncoder()
	a.EncodeState(e)
	var buf bytes.Buffer
	if err := e.Finish(&buf); err != nil {
		t.Fatal(err)
	}

	b := NewCollector(2, 2, 5, nil)
	d, err := snapshot.NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreState(d); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}

	// Internal state must match bit-exactly (modulo wiring pointers).
	if !reflect.DeepEqual(a.cus, b.cus) {
		t.Errorf("cus diverge:\n%+v\n%+v", a.cus, b.cus)
	}
	// %v folds nil and drained-empty queues together — equivalent states.
	if fmt.Sprintf("%v%v", a.queues, a.writes) != fmt.Sprintf("%v%v", b.queues, b.writes) {
		t.Errorf("queues diverge:\n%v %v\n%v %v", a.queues, a.writes, b.queues, b.writes)
	}
	if !reflect.DeepEqual(a.qlenHist, b.qlenHist) || a.histPos != b.histPos || a.cycle != b.cycle {
		t.Errorf("history ring diverges: pos %d/%d cycle %d/%d", a.histPos, b.histPos, a.cycle, b.cycle)
	}

	// And continued execution must be observationally identical,
	// including the delayed RBA tap.
	ga := loadCollector(a, 9)
	gb := loadCollector(b, 9)
	if !reflect.DeepEqual(ga, gb) {
		t.Fatalf("post-restore grant streams diverge:\n%v\n%v", ga, gb)
	}
	for bank := 0; bank < a.banks; bank++ {
		for delay := 0; delay <= 5; delay++ {
			if x, y := a.DelayedQueueLen(bank, delay), b.DelayedQueueLen(bank, delay); x != y {
				t.Errorf("DelayedQueueLen(%d,%d) = %d vs %d", bank, delay, x, y)
			}
		}
	}
}

func TestCollectorRestoreShapeMismatch(t *testing.T) {
	a := NewCollector(2, 2, 5, nil)
	e := snapshot.NewEncoder()
	a.EncodeState(e)
	var buf bytes.Buffer
	if err := e.Finish(&buf); err != nil {
		t.Fatal(err)
	}
	for _, shape := range []struct{ cus, banks, delay int }{{4, 2, 5}, {2, 4, 5}, {2, 2, 1}} {
		b := NewCollector(shape.cus, shape.banks, shape.delay, nil)
		d, err := snapshot.NewDecoder(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if err := b.RestoreState(d); err == nil {
			t.Errorf("restore into %+v collector from 2CU/2bank/5delay snapshot succeeded", shape)
		}
	}
}

func TestAuditCatchesSeededLeaseCorruption(t *testing.T) {
	c := NewCollector(2, 2, 0, nil)
	loadCollector(c, 7)
	if vs := c.Audit("t"); len(vs) != 0 {
		t.Fatalf("healthy collector reported %v", vs)
	}
	c.CorruptLeaseForTest()
	vs := c.Audit("t")
	if len(vs) == 0 {
		t.Fatal("seeded lease inconsistency not detected")
	}
	if vs[0].Rule != "lease" {
		t.Fatalf("violation rule = %q, want lease (%v)", vs[0].Rule, vs[0])
	}
}
