// Package regfile models the banked register file, its arbitration unit,
// and the operand collector of one GPU sub-core (Fig. 2 and Fig. 6 of the
// paper).
//
// Each sub-core owns a small number of banks (2 on Volta/Ampere) and
// collector units (2 on Volta). A warp instruction issued by the scheduler
// is staged in a collector unit; one read request per source operand is
// queued at the operand's bank; the arbiter grants at most one access per
// bank per cycle (writebacks take priority over reads, as in GPGPU-Sim);
// when all operands are collected the instruction dispatches to its
// execution unit and the collector unit frees.
//
// The arbiter exposes its per-bank queue lengths — optionally through a
// delay line — which is the single piece of information the paper's RBA
// scheduler adds to the baseline design.
package regfile

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/trace"
)

// warpSwizzle scrambles a warp slot into a per-warp bank offset for the
// optional swizzled mapping (see BankOf). The scramble keeps the low bit
// (so 2-bank sub-cores stay balanced across slots) and permutes the next
// three bits.
var warpSwizzle = [8]int{0, 5, 3, 6, 1, 4, 7, 2}

// BankOf maps an architectural register of a warp to a bank.
//
// The default (swizzle = false) is the mapping microbenchmarked out of
// Volta silicon [Jia et al.]: bank = register index mod banks, identical
// for every warp. Under it, co-resident warps running the same code press
// the same banks, so whole-program register-usage asymmetries turn into
// persistent bank-queue imbalance — the pressure RBA schedules around,
// and the reason slightly stale RBA scores remain useful (Section VI-B4).
//
// The swizzled variant adds a scrambled per-slot offset, modeling a
// hypothetical hardware remapping that decorrelates co-resident warps.
func BankOf(warpSlot int, reg isa.Reg, banks int, swizzle bool) int {
	return BankWithOffset(SlotOffset(warpSlot, swizzle), reg, banks)
}

// SlotOffset returns a warp slot's bank offset under the chosen mapping;
// precompute it once per warp and use BankWithOffset in hot paths.
func SlotOffset(warpSlot int, swizzle bool) int {
	if !swizzle {
		return 0
	}
	return warpSwizzle[(warpSlot>>1)&7]<<1 | (warpSlot & 1)
}

// BankWithOffset maps a register to a bank given a precomputed slot
// offset.
func BankWithOffset(off int, reg isa.Reg, banks int) int {
	if banks <= 1 {
		return 0
	}
	return (int(reg) + off) % banks
}

// readReq is a pending source-operand read queued at a bank.
//
//snapshot:state
type readReq struct {
	cu     int8
	stolen bool
}

// WriteReq is a pending destination-register writeback. The sub-core
// enqueues one per completed instruction and learns of the grant via
// GrantedWrites, at which point the scoreboard entry clears.
//
//snapshot:state
type WriteReq struct {
	// WarpIdx identifies the warp within the SM (opaque to this package).
	WarpIdx int32
	// Reg is the destination register being written.
	Reg isa.Reg
	// Bank is the destination bank, precomputed by the caller.
	Bank int8
}

// CollectorUnit stages one warp instruction while its operands are read.
//
//snapshot:state
type CollectorUnit struct {
	// Valid marks the CU occupied.
	Valid bool
	// WarpIdx identifies the issuing warp within the SM.
	WarpIdx int32
	// SchedSlot is the warp's slot in its scheduler, used for stats.
	SchedSlot int32
	// Instr is the staged instruction.
	//simlint:allow nexteventguard -- meaningful only while Valid is set; any valid CU makes NextEvent report an event
	Instr isa.Instr
	// Pending counts source operands not yet granted.
	//simlint:allow nexteventguard -- drains only as queued bank reads are granted; any valid CU or non-empty queue makes NextEvent report an event
	Pending int8
	// Stolen marks a bank-stealing pre-allocation: its reads only use
	// otherwise-idle bank cycles and it never blocks normal traffic.
	Stolen bool
	// AllocCycle records when the CU was filled (for stats/debug).
	AllocCycle int64

	// tried marks the CU as having attempted dispatch this cycle.
	//simlint:allow nexteventguard -- per-Tick dispatch scratch; meaningful only while a valid CU exists, which NextEvent reports
	tried bool
}

// Ready reports whether all operands are collected and the instruction
// can dispatch.
func (c *CollectorUnit) Ready() bool { return c.Valid && c.Pending == 0 }

// Collector is the operand collector + arbitration unit of one sub-core.
//
//snapshot:state
type Collector struct {
	cus   []CollectorUnit
	banks int

	// queues[b] holds read requests waiting on bank b, FIFO.
	queues [][]readReq
	// writes[b] holds writeback requests for bank b, FIFO, priority.
	writes [][]WriteReq

	// granted writes this cycle, exposed to the sub-core.
	//simlint:allow nexteventguard -- within-cycle hand-off buffer, empty between cycles; filled only when a write queue is non-empty, which NextEvent reports
	grantedW []WriteReq

	// qlenHist is a ring of per-bank normal-read queue lengths, one entry
	// per cycle, supporting the RBA score-update delay study (VI-B4).
	qlenHist [][]int16
	//simlint:allow nexteventguard -- queue-length ring cursor; FastForward replays its advance bit-exactly across a skip
	histPos int

	//simlint:allow nexteventguard -- collector clock; FastForward replays its advance bit-exactly across a skip
	cycle int64
	st    *stats.SubCore

	// auditRefs is Audit's reusable per-CU reference-count scratch: the
	// periodic invariant sweep must not allocate per visit.
	auditRefs []int

	// tr emits bank-grant trace events when the SM is traced (nil
	// otherwise — the disabled fast path); trSub is the owning sub-core.
	//simlint:allow nexteventguard -- trace wiring: emission is output-only and idle cycles emit no events
	tr    *trace.SMT
	trSub int8
}

// NewCollector builds a collector with numCUs units over numBanks banks.
// scoreDelay is the maximum queue-length tap delay that will be requested
// (the history ring is sized for it).
func NewCollector(numCUs, numBanks, scoreDelay int, st *stats.SubCore) *Collector {
	if numCUs < 1 || numBanks < 1 {
		panic(fmt.Sprintf("regfile: invalid collector shape %d CUs, %d banks", numCUs, numBanks))
	}
	c := &Collector{
		cus:    make([]CollectorUnit, numCUs),
		banks:  numBanks,
		queues: make([][]readReq, numBanks),
		writes: make([][]WriteReq, numBanks),
		st:     st,
	}
	c.qlenHist = make([][]int16, scoreDelay+1)
	for i := range c.qlenHist {
		c.qlenHist[i] = make([]int16, numBanks)
	}
	return c
}

// SetTracer attaches (or with nil detaches) the observability handle of
// the SM owning this collector; sub identifies the sub-core in events.
func (c *Collector) SetTracer(h *trace.SMT, sub int8) {
	c.tr = h
	c.trSub = sub
}

// Banks returns the bank count.
func (c *Collector) Banks() int { return c.banks }

// NumCUs returns the collector-unit count.
func (c *Collector) NumCUs() int { return len(c.cus) }

// CU returns the i-th collector unit for inspection.
func (c *Collector) CU(i int) *CollectorUnit { return &c.cus[i] }

// FreeCU returns the index of a free collector unit, or -1.
func (c *Collector) FreeCU() int {
	for i := range c.cus {
		if !c.cus[i].Valid {
			return i
		}
	}
	return -1
}

// FreeCUCount returns how many collector units are free.
func (c *Collector) FreeCUCount() int {
	n := 0
	for i := range c.cus {
		if !c.cus[i].Valid {
			n++
		}
	}
	return n
}

// Allocate fills collector unit cu with an instruction from warpIdx whose
// registers map to banks with the warp's precomputed bank offset (see
// SlotOffset). One read request per valid source operand is queued at its
// bank. Allocate panics if the CU is occupied — the issue stage must
// check FreeCU first.
func (c *Collector) Allocate(cu int, warpIdx, schedSlot int32, in isa.Instr, bankOff int, stolen bool) {
	u := &c.cus[cu]
	if u.Valid {
		panic("regfile: allocating an occupied collector unit")
	}
	*u = CollectorUnit{
		Valid:      true,
		WarpIdx:    warpIdx,
		SchedSlot:  schedSlot,
		Instr:      in,
		Stolen:     stolen,
		AllocCycle: c.cycle,
	}
	for _, s := range in.Srcs {
		if !s.Valid() {
			continue
		}
		b := BankWithOffset(bankOff, s, c.banks)
		u.Pending++
		c.queues[b] = append(c.queues[b], readReq{cu: int8(cu), stolen: stolen})
	}
}

// EnqueueWrite queues a writeback. Writebacks have priority over reads at
// their bank; the caller clears the scoreboard entry when the write shows
// up in GrantedWrites.
//
//simlint:hotpath
func (c *Collector) EnqueueWrite(w WriteReq) {
	if int(w.Bank) < 0 || int(w.Bank) >= c.banks {
		panic(fmt.Sprintf("regfile: write to bank %d of %d", w.Bank, c.banks))
	}
	c.writes[w.Bank] = append(c.writes[w.Bank], w)
}

// GrantedWrites returns the writebacks granted by the last Tick. The
// slice is reused; callers must consume it before the next Tick.
func (c *Collector) GrantedWrites() []WriteReq { return c.grantedW }

// QueueLen returns the current number of *normal* (non-stolen) read
// requests waiting at bank b — the quantity summed into RBA scores.
func (c *Collector) QueueLen(b int) int {
	n := 0
	for _, r := range c.queues[b] {
		if !r.stolen {
			n++
		}
	}
	return n
}

// Backlogged reports whether any bank has a queued normal (non-stolen)
// read — the signature the issue stage uses to attribute a
// no-free-collector-unit stall to bank conflicts rather than plain CU
// exhaustion (the CPI stack's bank-conflict component).
func (c *Collector) Backlogged() bool {
	for b := range c.queues {
		for i := range c.queues[b] {
			if !c.queues[b][i].stolen {
				return true
			}
		}
	}
	return false
}

// BlockedOnMem reports whether a fully collected, non-stolen collector
// unit is staged with a memory-class instruction — its operands are
// read but the LSU would not accept it, so CU exhaustion with quiet
// banks is memory backpressure (the CPI stack's memory component).
func (c *Collector) BlockedOnMem() bool {
	for i := range c.cus {
		u := &c.cus[i]
		if u.Valid && u.Pending == 0 && !u.Stolen && u.Instr.Op.UnitOf() == isa.ClassMEM {
			return true
		}
	}
	return false
}

// DelayedQueueLen returns the bank-b queue length as observed delay
// cycles ago (0 = current). Requests older than the ring's capacity
// saturate to the oldest recorded value.
func (c *Collector) DelayedQueueLen(b, delay int) int {
	if delay <= 0 {
		return c.QueueLen(b)
	}
	// The snapshot at histPos was recorded during the current cycle's
	// Tick (before the issue stage reads it), so delay d maps to ring
	// offset d-1. Delays beyond the ring saturate.
	if delay > len(c.qlenHist)-1 {
		delay = len(c.qlenHist) - 1
	}
	idx := c.histPos - (delay - 1)
	for idx < 0 {
		idx += len(c.qlenHist)
	}
	return int(c.qlenHist[idx][b])
}

// Tick advances the collector one cycle:
//
//  1. Each bank's write port drains one writeback and its read port
//     grants one read (banks are 1R+1W dual-ported, as on Volta): the
//     oldest normal read first; stolen reads only when the read port
//     would otherwise idle.
//  2. Ready collector units attempt dispatch through the dispatch
//     callback (true = the execution unit accepted); dispatched CUs free.
//  3. The per-bank queue-length snapshot is recorded for delayed taps.
//
// Requests left waiting behind a granted access on the same port are
// counted as bank conflicts.
func (c *Collector) Tick(dispatch func(*CollectorUnit) bool) {
	c.grantedW = c.grantedW[:0]
	for b := 0; b < c.banks; b++ {
		// Write port.
		if len(c.writes[b]) > 0 {
			w := c.writes[b][0]
			c.grantedW = append(c.grantedW, w)
			copy(c.writes[b], c.writes[b][1:])
			c.writes[b] = c.writes[b][:len(c.writes[b])-1]
			if c.st != nil {
				c.st.RegWrites++
				c.st.BankConflicts += int64(len(c.writes[b]))
			}
			if c.tr != nil {
				c.tr.Emit(trace.KBankWrite, c.trSub, w.WarpIdx, int32(b), 0)
			}
		}
		// Read port: oldest normal read first; stolen reads only when the
		// port would otherwise idle.
		gi := -1
		for i, r := range c.queues[b] {
			if !r.stolen {
				gi = i
				break
			}
		}
		if gi == -1 && len(c.queues[b]) > 0 {
			gi = 0 // only stolen requests present: port is idle, steal it
		}
		if gi >= 0 {
			r := c.queues[b][gi]
			c.queues[b] = append(c.queues[b][:gi], c.queues[b][gi+1:]...)
			u := &c.cus[r.cu]
			u.Pending--
			if u.Pending < 0 {
				panic("regfile: operand granted for an empty collector unit")
			}
			if c.st != nil {
				c.st.RegReads++
				for _, rr := range c.queues[b] {
					if !rr.stolen {
						c.st.BankConflicts++
					}
				}
			}
			if c.tr != nil {
				c.tr.Emit(trace.KBankRead, c.trSub, u.WarpIdx, int32(b), int32(r.cu))
			}
		}
	}

	// Dispatch ready CUs, oldest allocation first (the priority logic of
	// the baseline design). A CU whose execution unit cannot accept this
	// cycle stays staged; younger CUs bound for other units still get
	// their own dispatch ports.
	for remaining := len(c.cus); remaining > 0; remaining-- {
		best := -1
		for i := range c.cus {
			if c.cus[i].Ready() && !c.cus[i].tried &&
				(best == -1 || c.cus[i].AllocCycle < c.cus[best].AllocCycle) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		c.cus[best].tried = true
		if dispatch(&c.cus[best]) {
			c.cus[best].Valid = false
		}
	}
	for i := range c.cus {
		c.cus[i].tried = false
	}

	// Record queue lengths for delayed RBA taps.
	c.histPos++
	if c.histPos == len(c.qlenHist) {
		c.histPos = 0
	}
	snap := c.qlenHist[c.histPos]
	for b := 0; b < c.banks; b++ {
		snap[b] = int16(c.QueueLen(b))
	}
	c.cycle++
}

// neverCycle is the NextEvent sentinel for "no intrinsic future event".
const neverCycle = int64(math.MaxInt64)

// NextEvent returns the earliest cycle at which a Tick would mutate
// collector state: now when any bank has a queued read or writeback
// (grants fire every cycle) or a non-stolen collector unit is staged
// (it dispatches, or blocks attributably, every cycle), and neverCycle
// otherwise. A *stolen* pre-allocation with all operands collected is
// inert: it converts only at formal issue, which requires an issuable
// warp — the sub-core's own quiescence check covers that. This is the
// contract the run loop's idle-cycle fast-forward relies on: when every
// collector reports no event, skipped Ticks would have been no-ops
// (grant-less, dispatch-less) except for the clock and queue-length
// ring, which FastForward replays exactly.
//
//simlint:hotpath
func (c *Collector) NextEvent(now int64) int64 {
	for b := 0; b < c.banks; b++ {
		if len(c.queues[b]) > 0 || len(c.writes[b]) > 0 {
			return now
		}
	}
	for i := range c.cus {
		u := &c.cus[i]
		if u.Valid && !u.Stolen {
			return now
		}
	}
	return neverCycle
}

// FastForward advances the collector's clock by n quiescent cycles,
// replaying exactly what n Ticks would have done given NextEvent
// reported no event: no grants, no dispatches, only the cycle counter
// and the queue-length history ring advancing (the ring feeds RBA's
// delayed score tap, so it must stay bit-exact across a skip).
func (c *Collector) FastForward(n int64) {
	ring := int64(len(c.qlenHist))
	steps := n
	if steps > ring {
		steps = ring // older slots would be overwritten anyway
	}
	for i := int64(0); i < steps; i++ {
		c.histPos++
		if c.histPos == len(c.qlenHist) {
			c.histPos = 0
		}
		snap := c.qlenHist[c.histPos]
		for b := 0; b < c.banks; b++ {
			snap[b] = int16(c.QueueLen(b))
		}
	}
	if n > ring {
		// All slots now hold the current snapshot; land histPos where n
		// single-cycle advances would have left it.
		c.histPos = int((int64(c.histPos) + n - steps) % ring)
	}
	c.cycle += n
}

// Drained reports whether no collector unit is occupied and no request is
// queued — used by tests and by the sub-core's completion check.
func (c *Collector) Drained() bool {
	for i := range c.cus {
		if c.cus[i].Valid {
			return false
		}
	}
	for b := 0; b < c.banks; b++ {
		if len(c.queues[b]) > 0 || len(c.writes[b]) > 0 {
			return false
		}
	}
	return true
}
