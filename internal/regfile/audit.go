package regfile

import "repro/internal/audit"

// Audit re-derives the collector's lease conservation law: every occupied
// collector unit's Pending count must equal the number of queued bank
// reads that reference it, and no queued read may reference a free unit.
// where prefixes violation locations (e.g. "sm0/sub1").
func (c *Collector) Audit(where string) []audit.Violation {
	var vs []audit.Violation
	// Reusable scratch: the audit runs periodically from the device
	// heartbeat and must not allocate per sweep.
	if cap(c.auditRefs) < len(c.cus) {
		c.auditRefs = make([]int, len(c.cus))
	}
	refs := c.auditRefs[:len(c.cus)]
	for i := range refs {
		refs[i] = 0
	}
	for b := 0; b < c.banks; b++ {
		for _, r := range c.queues[b] {
			if int(r.cu) < 0 || int(r.cu) >= len(c.cus) {
				vs = append(vs, audit.Violationf("lease", where,
					"bank %d read references collector unit %d of %d", b, r.cu, len(c.cus)))
				continue
			}
			refs[r.cu]++
		}
	}
	for i := range c.cus {
		u := &c.cus[i]
		switch {
		case !u.Valid && refs[i] > 0:
			vs = append(vs, audit.Violationf("lease", where,
				"cu%d is free but %d bank reads still reference it", i, refs[i]))
		case u.Valid && int(u.Pending) != refs[i]:
			vs = append(vs, audit.Violationf("lease", where,
				"cu%d (warp %d, %s) pending=%d but %d bank reads reference it",
				i, u.WarpIdx, u.Instr.Op, u.Pending, refs[i]))
		case u.Valid && u.Pending < 0:
			vs = append(vs, audit.Violationf("lease", where,
				"cu%d pending count %d negative", i, u.Pending))
		}
	}
	return vs
}

// ForEachQueuedWrite calls fn for every queued (not yet granted)
// writeback, in deterministic bank-then-FIFO order. The SM-level audit
// uses this to rebuild each warp's expected scoreboard.
func (c *Collector) ForEachQueuedWrite(fn func(WriteReq)) {
	for b := 0; b < c.banks; b++ {
		for _, w := range c.writes[b] {
			fn(w)
		}
	}
}

// CorruptLeaseForTest seeds a guaranteed-detectable lease inconsistency
// for the auditor's injected-corruption tests: a phantom bank read. If the
// referenced unit is occupied, its reference count exceeds Pending; if it
// is free, the read dangles — either way the audit fires. Never call
// outside tests.
func (c *Collector) CorruptLeaseForTest() {
	c.queues[0] = append(c.queues[0], readReq{cu: 0})
}
