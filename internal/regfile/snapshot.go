package regfile

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/snapshot"
)

// Snapshot field manifests, checked by TestSnapshotCoverage via
// snapshot.Coverage. Every struct field is either encoded below or carries
// the reason it need not be; changing the encoded set requires a
// snapshot.Version bump.
var (
	collectorManifest = map[string]string{
		"cus":       "encoded",
		"banks":     "skip: derived from config at construction",
		"queues":    "encoded",
		"writes":    "encoded",
		"grantedW":  "skip: consumed by the sub-core within the same cycle; snapshots are taken between cycles, restored empty",
		"qlenHist":  "encoded (feeds RBA's delayed score tap; must be bit-exact)",
		"histPos":   "encoded",
		"cycle":     "encoded",
		"st":        "skip: stats pointer rewired by the owning sub-core",
		"tr":        "skip: tracer wiring, reattached via SetTracer",
		"trSub":     "skip: tracer wiring, reattached via SetTracer",
		"auditRefs": "skip: Audit scratch, rewritten before every use",
	}
	collectorUnitManifest = map[string]string{
		"Valid":      "encoded",
		"WarpIdx":    "encoded",
		"SchedSlot":  "encoded",
		"Instr":      "encoded",
		"Pending":    "encoded",
		"Stolen":     "encoded",
		"AllocCycle": "encoded",
		"tried":      "skip: per-Tick scratch, false between cycles",
	}
	readReqManifest = map[string]string{
		"cu":     "encoded",
		"stolen": "encoded",
	}
	writeReqManifest = map[string]string{
		"WarpIdx": "encoded",
		"Reg":     "encoded",
		"Bank":    "skip: equals the owning queue index, rebuilt on restore",
	}
)

// EncodeState serializes the collector's full mutable state: every staged
// collector unit, the per-bank read and write queues, and the
// queue-length history ring that feeds RBA's delayed score tap.
func (c *Collector) EncodeState(e *snapshot.Encoder) {
	e.Section("coll")
	e.Uvarint(uint64(len(c.cus)))
	for i := range c.cus {
		u := &c.cus[i]
		e.Bool(u.Valid)
		e.Varint(int64(u.WarpIdx))
		e.Varint(int64(u.SchedSlot))
		e.Instr(&u.Instr)
		e.Varint(int64(u.Pending))
		e.Bool(u.Stolen)
		e.Varint(u.AllocCycle)
	}
	e.Uvarint(uint64(c.banks))
	for b := 0; b < c.banks; b++ {
		e.Uvarint(uint64(len(c.queues[b])))
		for _, r := range c.queues[b] {
			e.Varint(int64(r.cu))
			e.Bool(r.stolen)
		}
		e.Uvarint(uint64(len(c.writes[b])))
		for _, w := range c.writes[b] {
			e.Varint(int64(w.WarpIdx))
			e.Uvarint(uint64(w.Reg))
		}
	}
	e.Uvarint(uint64(len(c.qlenHist)))
	for _, row := range c.qlenHist {
		for _, v := range row {
			e.Varint(int64(v))
		}
	}
	e.Int(c.histPos)
	e.Varint(c.cycle)
}

// RestoreState decodes into a collector freshly built with the same shape
// (CU count, banks, score-delay ring), validating that shape first.
func (c *Collector) RestoreState(d *snapshot.Decoder) error {
	d.Section("coll")
	nCU := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if int(nCU) != len(c.cus) {
		return fmt.Errorf("regfile: snapshot has %d CUs, this config has %d", nCU, len(c.cus))
	}
	for i := range c.cus {
		u := &c.cus[i]
		u.Valid = d.Bool()
		u.WarpIdx = int32(d.Varint())
		u.SchedSlot = int32(d.Varint())
		u.Instr = d.Instr()
		u.Pending = int8(d.Varint())
		u.Stolen = d.Bool()
		u.AllocCycle = d.Varint()
		u.tried = false
	}
	nBank := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if int(nBank) != c.banks {
		return fmt.Errorf("regfile: snapshot has %d banks, this config has %d", nBank, c.banks)
	}
	for b := 0; b < c.banks; b++ {
		nr := int(d.Uvarint())
		if err := d.Err(); err != nil {
			return err
		}
		c.queues[b] = c.queues[b][:0]
		for i := 0; i < nr; i++ {
			c.queues[b] = append(c.queues[b], readReq{cu: int8(d.Varint()), stolen: d.Bool()})
		}
		nw := int(d.Uvarint())
		if err := d.Err(); err != nil {
			return err
		}
		c.writes[b] = c.writes[b][:0]
		for i := 0; i < nw; i++ {
			c.writes[b] = append(c.writes[b], WriteReq{
				WarpIdx: int32(d.Varint()),
				Reg:     isa.Reg(d.Uvarint()),
				Bank:    int8(b),
			})
		}
	}
	nh := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if int(nh) != len(c.qlenHist) {
		return fmt.Errorf("regfile: snapshot history ring holds %d rows, this config %d", nh, len(c.qlenHist))
	}
	for _, row := range c.qlenHist {
		for b := range row {
			row[b] = int16(d.Varint())
		}
	}
	c.histPos = d.Int()
	c.cycle = d.Varint()
	if err := d.Err(); err != nil {
		return err
	}
	if c.histPos < 0 || c.histPos >= len(c.qlenHist) {
		return fmt.Errorf("regfile: snapshot histPos %d out of ring [0,%d)", c.histPos, len(c.qlenHist))
	}
	c.grantedW = c.grantedW[:0]
	return nil
}
