package regfile

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/stats"
)

// offOf returns the swizzled bank offset for a slot (test helper).
func offOf(slot int) int { return SlotOffset(slot, true) }

func TestBankOfPlain(t *testing.T) {
	// Volta's silicon mapping: bank = reg mod banks, slot-independent.
	if BankOf(0, 0, 2, false) != 0 || BankOf(0, 1, 2, false) != 1 || BankOf(0, 2, 2, false) != 0 {
		t.Error("register interleaving wrong")
	}
	for slot := 0; slot < 16; slot++ {
		if BankOf(slot, 5, 2, false) != 1 {
			t.Error("plain mapping must ignore the warp slot")
		}
	}
	if BankOf(5, 9, 1, false) != 0 || BankOf(5, 9, 1, true) != 0 {
		t.Error("single bank must map everything to 0")
	}
	if BankOf(0, 7, 8, false) != 7 {
		t.Error("8-bank plain mapping wrong")
	}
}

func TestBankOfSwizzled(t *testing.T) {
	// Swizzled mapping keeps the low bit so 2-bank sub-cores stay
	// balanced: adjacent slots flip parity.
	if BankOf(0, 0, 2, true) != 0 || BankOf(1, 0, 2, true) != 1 {
		t.Error("slot parity must flip the 2-bank mapping")
	}
	// Registers still alternate banks within a slot.
	if BankOf(0, 0, 2, true) == BankOf(0, 1, 2, true) {
		t.Error("adjacent registers must alternate banks")
	}
	// Stride-4 slots must not share one bank class on 8 banks (the
	// degenerate pattern a plain (reg+slot) offset would produce).
	seen := map[int]bool{}
	for _, slot := range []int{0, 4, 8, 12} {
		seen[BankOf(slot, 4, 8, true)] = true
	}
	if len(seen) < 3 {
		t.Errorf("stride-4 slots cover only %d banks", len(seen))
	}
}

func TestAllocateAndCollect(t *testing.T) {
	st := &stats.SubCore{}
	c := NewCollector(2, 2, 0, st)
	if c.FreeCU() != 0 || c.FreeCUCount() != 2 {
		t.Fatal("fresh collector must have all CUs free")
	}
	// FMA R4 <- R1,R2,R3 at slot 0 with 2 banks: R1->b1, R2->b0, R3->b1.
	in := isa.MakeFMA(4, 1, 2, 3)
	c.Allocate(0, 7, 0, in, offOf(0), false)
	if c.FreeCUCount() != 1 {
		t.Error("CU not marked occupied")
	}
	if c.QueueLen(0) != 1 || c.QueueLen(1) != 2 {
		t.Errorf("queue lengths = %d,%d want 1,2", c.QueueLen(0), c.QueueLen(1))
	}
	dispatched := 0
	dispatch := func(cu *CollectorUnit) bool { dispatched++; return true }
	// Cycle 1: bank0 grants R2, bank1 grants R1 (or R3) -> pending 1.
	c.Tick(dispatch)
	if got := c.CU(0).Pending; got != 1 {
		t.Fatalf("pending after tick1 = %d, want 1", got)
	}
	if dispatched != 0 {
		t.Fatal("dispatched before operands ready")
	}
	// Cycle 2: bank1 grants the last operand; CU ready and dispatches.
	c.Tick(dispatch)
	if dispatched != 1 {
		t.Fatalf("dispatched = %d, want 1", dispatched)
	}
	if !c.Drained() {
		t.Error("collector should be drained")
	}
	if st.RegReads != 3 {
		t.Errorf("RegReads = %d, want 3", st.RegReads)
	}
	// The R3 request waited one cycle behind R1 at bank 1.
	if st.BankConflicts != 1 {
		t.Errorf("BankConflicts = %d, want 1", st.BankConflicts)
	}
}

func TestZeroSourceAllocationIsImmediatelyReady(t *testing.T) {
	c := NewCollector(1, 2, 0, nil)
	c.Allocate(0, 0, 0, isa.Make1(isa.OpMOV, 1, isa.NoReg), offOf(0), false)
	if !c.CU(0).Ready() {
		t.Error("zero-source CU must be ready at allocation")
	}
	n := 0
	c.Tick(func(cu *CollectorUnit) bool { n++; return true })
	if n != 1 || !c.Drained() {
		t.Error("zero-source CU failed to dispatch")
	}
}

func TestDualPortedBanks(t *testing.T) {
	// Banks have one read and one write port (Volta-style): a read and a
	// writeback to the same bank proceed in the same cycle, but two
	// writebacks serialize.
	st := &stats.SubCore{}
	c := NewCollector(1, 2, 0, st)
	c.Allocate(0, 0, 0, isa.Make1(isa.OpMOV, 2, 0), offOf(0), false) // R0 -> bank0
	c.EnqueueWrite(WriteReq{WarpIdx: 3, Reg: 4, Bank: 0})
	c.EnqueueWrite(WriteReq{WarpIdx: 5, Reg: 6, Bank: 0})
	c.Tick(func(cu *CollectorUnit) bool { return true })
	if got := len(c.GrantedWrites()); got != 1 {
		t.Fatalf("granted writes = %d, want 1 (write port serializes)", got)
	}
	if c.GrantedWrites()[0].WarpIdx != 3 {
		t.Error("wrong write granted")
	}
	if c.CU(0).Valid {
		t.Error("read port should have served the lone read in parallel")
	}
	if st.RegReads != 1 || st.RegWrites != 1 {
		t.Errorf("reads/writes = %d/%d, want 1/1", st.RegReads, st.RegWrites)
	}
	if st.BankConflicts != 1 {
		t.Errorf("BankConflicts = %d, want 1 (second write waited)", st.BankConflicts)
	}
	c.Tick(func(cu *CollectorUnit) bool { return true })
	if !c.Drained() {
		t.Error("second write should drain on the next cycle")
	}
}

func TestStolenReadsOnlyUseIdleBanks(t *testing.T) {
	c := NewCollector(2, 1, 0, nil)
	// Normal CU with 2 operands on the single bank; stolen CU with 1.
	c.Allocate(0, 0, 0, isa.Make2(isa.OpFADD, 4, 0, 1), 0, false)
	c.Allocate(1, 1, 1, isa.Make1(isa.OpMOV, 5, 0), 0, true)
	noDispatch := func(cu *CollectorUnit) bool { return true }
	c.Tick(noDispatch) // normal op 1 granted
	c.Tick(noDispatch) // normal op 2 granted; normal CU dispatches
	if c.CU(1).Pending != 1 {
		t.Fatalf("stolen read granted while normal traffic pending (pending=%d)", c.CU(1).Pending)
	}
	c.Tick(noDispatch) // bank idle: stolen read granted
	if c.CU(1).Valid {
		t.Error("stolen CU should have collected and dispatched")
	}
}

func TestDispatchSkipsBlockedUnit(t *testing.T) {
	c := NewCollector(2, 8, 0, nil)
	// Two CUs, both single-source on different banks, both ready after
	// one tick. The older targets a "busy" unit; the younger must still
	// dispatch.
	c.Allocate(0, 0, 0, isa.Make1(isa.OpSFU, 4, 0), offOf(0), false)
	c.Allocate(1, 1, 1, isa.Make1(isa.OpMOV, 5, 1), offOf(0), false)
	var dispatched []isa.Op
	c.Tick(func(cu *CollectorUnit) bool {
		if cu.Instr.Op == isa.OpSFU {
			return false // SFU busy
		}
		dispatched = append(dispatched, cu.Instr.Op)
		return true
	})
	if len(dispatched) != 1 || dispatched[0] != isa.OpMOV {
		t.Errorf("dispatched = %v, want [MOV]", dispatched)
	}
	if !c.CU(0).Valid {
		t.Error("blocked CU must stay staged")
	}
}

func TestQueueLenExcludesStolen(t *testing.T) {
	c := NewCollector(2, 1, 0, nil)
	c.Allocate(0, 0, 0, isa.Make1(isa.OpMOV, 4, 0), 0, false)
	c.Allocate(1, 1, 1, isa.Make1(isa.OpMOV, 5, 0), 0, true)
	if got := c.QueueLen(0); got != 1 {
		t.Errorf("QueueLen = %d, want 1 (stolen excluded)", got)
	}
}

func TestDelayedQueueLen(t *testing.T) {
	c := NewCollector(4, 1, 3, nil)
	nop := func(cu *CollectorUnit) bool { return true }
	// Build up a queue of 3 normal reads, then observe history.
	for i := 0; i < 3; i++ {
		c.Allocate(i, int32(i), int32(i), isa.Make1(isa.OpMOV, 4, 0), 0, false)
	}
	c.Tick(nop) // after: 2 left, snapshot[now] = 2
	c.Tick(nop) // after: 1 left, snapshot[now] = 1
	if got := c.DelayedQueueLen(0, 0); got != 1 {
		t.Errorf("delay0 = %d, want 1", got)
	}
	if got := c.DelayedQueueLen(0, 1); got != 1 {
		t.Errorf("delay1 = %d, want 1 (snapshot at end of last tick)", got)
	}
	if got := c.DelayedQueueLen(0, 2); got != 2 {
		t.Errorf("delay2 = %d, want 2", got)
	}
	// Delay beyond history saturates to oldest.
	if c.DelayedQueueLen(0, 50) != c.DelayedQueueLen(0, 3) {
		t.Error("over-delay must saturate to ring capacity")
	}
}

func TestAllocatePanicsOnOccupiedCU(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c := NewCollector(1, 1, 0, nil)
	c.Allocate(0, 0, 0, isa.MakeBar(), offOf(0), false)
	c.Allocate(0, 1, 1, isa.MakeBar(), offOf(0), false)
}

func TestEnqueueWritePanicsOnBadBank(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c := NewCollector(1, 2, 0, nil)
	c.EnqueueWrite(WriteReq{Bank: 5})
}

// Property: for any sequence of single-source allocations, total grants
// equal total operands and the collector always drains.
func TestCollectorAlwaysDrainsProperty(t *testing.T) {
	f := func(regs []uint8) bool {
		if len(regs) > 24 {
			regs = regs[:24]
		}
		st := &stats.SubCore{}
		c := NewCollector(2, 2, 0, st)
		i := 0
		var want int64
		for cycles := 0; cycles < 1000; cycles++ {
			if cu := c.FreeCU(); cu != -1 && i < len(regs) {
				in := isa.MakeFMA(4, isa.Reg(regs[i]%8), isa.Reg(regs[i]%3), isa.Reg(regs[i]%5))
				want += 3
				c.Allocate(cu, int32(i), int32(i%16), in, offOf(i%16), false)
				i++
			}
			c.Tick(func(cu *CollectorUnit) bool { return true })
			if i == len(regs) && c.Drained() {
				break
			}
		}
		return c.Drained() && st.RegReads == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: each bank port grants at most one access per cycle — per
// Tick, reads <= banks and writes <= banks (1R+1W dual-ported banks).
func TestOneGrantPerPortProperty(t *testing.T) {
	st := &stats.SubCore{}
	c := NewCollector(4, 2, 0, st)
	var prevReads, prevWrites int64
	for cyc := 0; cyc < 200; cyc++ {
		if cu := c.FreeCU(); cu != -1 {
			c.Allocate(cu, int32(cyc), int32(cyc%16), isa.MakeFMA(4, 1, 2, 3), offOf(cyc%16), false)
		}
		if cyc%3 == 0 {
			c.EnqueueWrite(WriteReq{WarpIdx: int32(cyc), Reg: 1, Bank: int8(cyc % 2)})
		}
		c.Tick(func(cu *CollectorUnit) bool { return true })
		reads := st.RegReads - prevReads
		writes := st.RegWrites - prevWrites
		if reads > 2 {
			t.Fatalf("cycle %d granted %d reads on 2 banks", cyc, reads)
		}
		if writes > 2 {
			t.Fatalf("cycle %d granted %d writes on 2 banks", cyc, writes)
		}
		prevReads, prevWrites = st.RegReads, st.RegWrites
	}
}
