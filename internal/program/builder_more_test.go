package program

import (
	"testing"

	"repro/internal/isa"
)

func opsOf(p *Program) []isa.Op {
	var out []isa.Op
	c := p.Cursor()
	for {
		in, ok := c.Next()
		if !ok {
			return out
		}
		out = append(out, in.Op)
	}
}

func TestBuilderEveryEmitter(t *testing.T) {
	trait := isa.MemTrait{Pattern: isa.PatCoalesced, Footprint: 4096}
	p := NewBuilder().
		Emit(isa.Make1(isa.OpMOV, 9, 1)).
		FMA(4, 1, 2, 3).
		FADD(5, 1, 2).
		FMUL(6, 1, 2).
		IADD(7, 1, 2).
		IMAD(8, 1, 2, 3).
		ISETP(10, 1, 2).
		MOV(11, 1).
		SFU(12, 1).
		Tensor(13, 1, 2, 3).
		LDG(14, 1, trait).
		STG(1, 14, trait).
		LDS(15, 1, isa.MemTrait{}).
		STS(1, 15, isa.MemTrait{}).
		LDC(16).
		Bar().
		MustBuild()
	want := []isa.Op{
		isa.OpMOV, isa.OpFMA, isa.OpFADD, isa.OpFMUL, isa.OpIADD, isa.OpIMAD,
		isa.OpISETP, isa.OpMOV, isa.OpSFU, isa.OpTensor, isa.OpLDG, isa.OpSTG,
		isa.OpLDS, isa.OpSTS, isa.OpLDC, isa.OpBAR, isa.OpEXIT,
	}
	got := opsOf(p)
	if len(got) != len(want) {
		t.Fatalf("ops = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("op[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBuilderLDSDefaultsPattern(t *testing.T) {
	p := NewBuilder().LDS(4, 1, isa.MemTrait{}).MustBuild()
	c := p.Cursor()
	in, _ := c.Next()
	if in.Mem.Pattern != isa.PatCoalesced {
		t.Errorf("LDS pattern = %v, want coalesced default", in.Mem.Pattern)
	}
}

func TestBuilderErrorPropagatesThroughChaining(t *testing.T) {
	b := NewBuilder().Loop(0, func(lb *Builder) { lb.Bar() })
	// Further calls must not panic and Build must fail.
	b.FMA(4, 1, 2, 3).Loop(2, func(lb *Builder) { lb.Bar() })
	if _, err := b.Build(); err == nil {
		t.Error("error did not propagate")
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBuilder().Loop(0, func(lb *Builder) { lb.Bar() }).MustBuild()
}

func TestBuilderLoopNestedError(t *testing.T) {
	if _, err := NewBuilder().Loop(2, func(lb *Builder) {
		lb.Loop(0, func(lb2 *Builder) { lb2.Bar() })
	}).Build(); err == nil {
		t.Error("nested loop error not propagated")
	}
}

func TestBuilderMaxRegTracksLoopBody(t *testing.T) {
	b := NewBuilder().Loop(2, func(lb *Builder) { lb.FMA(42, 1, 2, 3) })
	if b.MaxReg() != 42 {
		t.Errorf("MaxReg = %d, want 42", b.MaxReg())
	}
}
