package program

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestNewRejectsBadSegments(t *testing.T) {
	if _, err := New(Segment{Body: nil, Trips: 1}); err == nil {
		t.Error("empty body accepted")
	}
	if _, err := New(Segment{Body: []isa.Instr{isa.MakeBar()}, Trips: 0}); err == nil {
		t.Error("zero trips accepted")
	}
}

func TestCursorWalksExpandedStream(t *testing.T) {
	p := MustNew(
		Segment{Body: []isa.Instr{isa.MakeFMA(1, 2, 3, 4), isa.Make2(isa.OpFADD, 5, 1, 1)}, Trips: 3},
		Segment{Body: []isa.Instr{isa.MakeExit()}, Trips: 1},
	)
	if p.Len() != 7 {
		t.Fatalf("Len = %d, want 7", p.Len())
	}
	c := p.Cursor()
	var ops []isa.Op
	for {
		in, ok := c.Next()
		if !ok {
			break
		}
		ops = append(ops, in.Op)
	}
	want := []isa.Op{isa.OpFMA, isa.OpFADD, isa.OpFMA, isa.OpFADD, isa.OpFMA, isa.OpFADD, isa.OpEXIT}
	if len(ops) != len(want) {
		t.Fatalf("got %d ops, want %d", len(ops), len(want))
	}
	for i := range ops {
		if ops[i] != want[i] {
			t.Errorf("op[%d] = %v, want %v", i, ops[i], want[i])
		}
	}
	if !c.Done() {
		t.Error("cursor should be done")
	}
	if c.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", c.Remaining())
	}
}

func TestCursorPeekDoesNotAdvance(t *testing.T) {
	p := MustNew(Segment{Body: []isa.Instr{isa.MakeFMA(1, 2, 3, 4), isa.MakeExit()}, Trips: 1})
	c := p.Cursor()
	in1, ok := c.Peek()
	if !ok || in1.Op != isa.OpFMA {
		t.Fatalf("Peek = %v, %v", in1, ok)
	}
	in2, _ := c.Peek()
	if in2.Op != isa.OpFMA {
		t.Error("second Peek advanced the cursor")
	}
	if c.Fetched() != 0 {
		t.Errorf("Fetched = %d after Peek, want 0", c.Fetched())
	}
}

func TestZeroCursorIsExhausted(t *testing.T) {
	var c Cursor
	if !c.Done() {
		t.Error("zero cursor must be done")
	}
	if _, ok := c.Next(); ok {
		t.Error("zero cursor returned an instruction")
	}
	if c.Remaining() != 0 {
		t.Error("zero cursor has remaining instructions")
	}
}

func TestBuilderStraightLine(t *testing.T) {
	p := NewBuilder().
		FMA(4, 1, 2, 3).
		FADD(5, 4, 4).
		Exit().
		MustBuild()
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
}

func TestBuilderAppendsExit(t *testing.T) {
	p := NewBuilder().FMA(4, 1, 2, 3).MustBuild()
	c := p.Cursor()
	var last isa.Instr
	for {
		in, ok := c.Next()
		if !ok {
			break
		}
		last = in
	}
	if last.Op != isa.OpEXIT {
		t.Errorf("last op = %v, want EXIT", last.Op)
	}
}

func TestBuilderLoop(t *testing.T) {
	p := NewBuilder().
		MOV(1, 0).
		Loop(100, func(b *Builder) {
			b.FMA(2, 1, 1, 2)
		}).
		Exit().
		MustBuild()
	// 1 MOV + 100 FMA + 1 EXIT
	if p.Len() != 102 {
		t.Fatalf("Len = %d, want 102", p.Len())
	}
	if len(p.Segments()) != 3 {
		t.Fatalf("segments = %d, want 3", len(p.Segments()))
	}
}

func TestBuilderNestedLoopExpands(t *testing.T) {
	p := NewBuilder().
		Loop(3, func(b *Builder) {
			b.IADD(1, 1, 2)
			b.Loop(5, func(b2 *Builder) { b2.FMA(3, 1, 1, 3) })
		}).
		MustBuild()
	// 3 * (1 IADD + 5 FMA) + EXIT = 18 + 1
	if p.Len() != 19 {
		t.Fatalf("Len = %d, want 19", p.Len())
	}
}

func TestBuilderLoopErrors(t *testing.T) {
	if _, err := NewBuilder().Loop(0, func(b *Builder) { b.Bar() }).Build(); err == nil {
		t.Error("zero-trip loop accepted")
	}
	if _, err := NewBuilder().Loop(2, func(b *Builder) {}).Build(); err == nil {
		t.Error("empty loop body accepted")
	}
}

func TestBuilderMaxReg(t *testing.T) {
	b := NewBuilder().FMA(9, 1, 2, 3)
	if b.MaxReg() != 9 {
		t.Errorf("MaxReg = %d, want 9", b.MaxReg())
	}
	b.LDG(40, 2, isa.MemTrait{Pattern: isa.PatCoalesced})
	if b.MaxReg() != 40 {
		t.Errorf("MaxReg = %d, want 40", b.MaxReg())
	}
}

// Property: for any random segment structure, the cursor yields exactly
// Len() instructions and Fetched/Remaining stay consistent at every step.
func TestCursorCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nseg := 1 + r.Intn(5)
		segs := make([]Segment, 0, nseg)
		for i := 0; i < nseg; i++ {
			bodyLen := 1 + r.Intn(4)
			body := make([]isa.Instr, bodyLen)
			for j := range body {
				body[j] = isa.MakeFMA(isa.Reg(r.Intn(16)), 1, 2, 3)
			}
			segs = append(segs, Segment{Body: body, Trips: int64(1 + r.Intn(7))})
		}
		p := MustNew(segs...)
		c := p.Cursor()
		var n int64
		for {
			if c.Fetched() != n || c.Remaining() != p.Len()-n {
				return false
			}
			if _, ok := c.Next(); !ok {
				break
			}
			n++
		}
		return n == p.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
