// Package program represents per-warp instruction streams compactly.
//
// The paper's evaluation is trace-driven (SASS traces fed to Accel-Sim).
// Storing full traces for 112 applications is impractical here, and
// unnecessary: control flow in the studied workloads is resolved before the
// back-end pipeline the paper modifies. A Program is therefore a sequence
// of Segments — straight-line instruction runs with a trip count — and a
// Cursor walks the expanded stream lazily, one instruction at a time.
package program

import (
	"fmt"

	"repro/internal/isa"
)

// Segment is a straight-line run of instructions repeated Trips times
// (a fully unrolled counted loop).
type Segment struct {
	// Body is the instruction run.
	Body []isa.Instr
	// Trips is how many times Body executes; must be >= 1.
	Trips int64
}

// Program is a warp's complete instruction stream.
type Program struct {
	segs []Segment
	n    int64 // total dynamic instruction count, cached
}

// New builds a program from segments. Segments with Trips < 1 or empty
// bodies are rejected.
func New(segs ...Segment) (*Program, error) {
	p := &Program{}
	for i, s := range segs {
		if len(s.Body) == 0 {
			return nil, fmt.Errorf("program: segment %d has empty body", i)
		}
		if s.Trips < 1 {
			return nil, fmt.Errorf("program: segment %d has trips %d, want >= 1", i, s.Trips)
		}
		p.segs = append(p.segs, s)
		p.n += int64(len(s.Body)) * s.Trips
	}
	return p, nil
}

// MustNew is New, panicking on error. For use by workload generators whose
// inputs are static.
func MustNew(segs ...Segment) *Program {
	p, err := New(segs...)
	if err != nil {
		panic(err)
	}
	return p
}

// Len returns the total dynamic instruction count.
func (p *Program) Len() int64 { return p.n }

// Segments returns the program's segments (shared, do not mutate).
func (p *Program) Segments() []Segment { return p.segs }

// Cursor returns an iterator positioned at the first instruction.
func (p *Program) Cursor() Cursor { return Cursor{prog: p} }

// Cursor walks a Program one dynamic instruction at a time. The zero
// Cursor is exhausted; obtain one from Program.Cursor. Cursor is a small
// value and is embedded by-value in each simulated warp.
type Cursor struct {
	prog    *Program
	seg     int
	idx     int
	trip    int64
	fetched int64
}

// Next returns the next instruction and advances. ok is false once the
// stream is exhausted.
func (c *Cursor) Next() (in isa.Instr, ok bool) {
	if c.prog == nil || c.seg >= len(c.prog.segs) {
		return isa.Instr{}, false
	}
	s := &c.prog.segs[c.seg]
	in = s.Body[c.idx]
	c.fetched++
	c.idx++
	if c.idx == len(s.Body) {
		c.idx = 0
		c.trip++
		if c.trip == s.Trips {
			c.trip = 0
			c.seg++
		}
	}
	return in, true
}

// Peek returns the next instruction without advancing.
func (c *Cursor) Peek() (isa.Instr, bool) {
	cp := *c
	return cp.Next()
}

// Done reports whether the stream is exhausted.
func (c *Cursor) Done() bool {
	return c.prog == nil || c.seg >= len(c.prog.segs)
}

// Fetched returns the number of instructions consumed so far.
func (c *Cursor) Fetched() int64 { return c.fetched }

// Remaining returns the number of instructions left in the stream.
func (c *Cursor) Remaining() int64 {
	if c.prog == nil {
		return 0
	}
	return c.prog.n - c.fetched
}
