package program

import "fmt"

// Pos is an explicit, serializable cursor position. Programs themselves
// are deterministic functions of the workload generator and are rebuilt on
// restore, so a snapshot records only where each warp's cursor stands.
type Pos struct {
	// Seg is the current segment index (== segment count when exhausted).
	Seg int
	// Idx is the instruction index within the segment body.
	Idx int
	// Trip is the completed-trip count of the current segment.
	Trip int64
	// Fetched is the total dynamic instructions consumed so far.
	Fetched int64
}

// Pos captures the cursor's position for serialization.
func (c *Cursor) Pos() Pos {
	return Pos{Seg: c.seg, Idx: c.idx, Trip: c.trip, Fetched: c.fetched}
}

// CursorAt rebuilds a cursor over p at a previously captured position,
// validating the position against this program's shape so a snapshot
// restored against the wrong workload fails loudly instead of walking out
// of bounds.
func (p *Program) CursorAt(pos Pos) (Cursor, error) {
	if pos.Seg < 0 || pos.Idx < 0 || pos.Trip < 0 || pos.Fetched < 0 {
		return Cursor{}, fmt.Errorf("program: negative cursor position %+v", pos)
	}
	if pos.Seg > len(p.segs) {
		return Cursor{}, fmt.Errorf("program: cursor segment %d beyond %d segments", pos.Seg, len(p.segs))
	}
	if pos.Seg == len(p.segs) {
		// Exhausted stream: the only valid in-segment coordinates are zero
		// and the fetch count must equal the program length.
		if pos.Idx != 0 || pos.Trip != 0 || pos.Fetched != p.n {
			return Cursor{}, fmt.Errorf("program: exhausted cursor with inconsistent position %+v (len %d)", pos, p.n)
		}
		return Cursor{prog: p, seg: pos.Seg, fetched: pos.Fetched}, nil
	}
	s := &p.segs[pos.Seg]
	if pos.Idx >= len(s.Body) {
		return Cursor{}, fmt.Errorf("program: cursor index %d beyond segment body %d", pos.Idx, len(s.Body))
	}
	if pos.Trip >= s.Trips {
		return Cursor{}, fmt.Errorf("program: cursor trip %d beyond %d trips", pos.Trip, s.Trips)
	}
	want := int64(0)
	for i := 0; i < pos.Seg; i++ {
		want += int64(len(p.segs[i].Body)) * p.segs[i].Trips
	}
	want += pos.Trip*int64(len(s.Body)) + int64(pos.Idx)
	if pos.Fetched != want {
		return Cursor{}, fmt.Errorf("program: cursor fetch count %d inconsistent with position (want %d) — snapshot does not match this workload", pos.Fetched, want)
	}
	return Cursor{prog: p, seg: pos.Seg, idx: pos.Idx, trip: pos.Trip, fetched: pos.Fetched}, nil
}
