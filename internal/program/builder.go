package program

import (
	"fmt"

	"repro/internal/isa"
)

// Builder assembles a Program imperatively. Instructions appended between
// Loop calls accumulate into straight-line segments; Loop wraps a body in a
// counted segment. Builder methods return the builder for chaining. Errors
// (registers out of range, bad trip counts) are deferred to Build.
type Builder struct {
	segs    []Segment
	pending []isa.Instr
	maxReg  isa.Reg
	err     error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

func (b *Builder) track(in isa.Instr) {
	if in.Dst.Valid() && in.Dst > b.maxReg {
		b.maxReg = in.Dst
	}
	for _, s := range in.Srcs {
		if s.Valid() && s > b.maxReg {
			b.maxReg = s
		}
	}
	b.pending = append(b.pending, in)
}

// Emit appends an arbitrary instruction.
func (b *Builder) Emit(in isa.Instr) *Builder { b.track(in); return b }

// FMA appends d = a*b+c.
func (b *Builder) FMA(d, a, c, e isa.Reg) *Builder { b.track(isa.MakeFMA(d, a, c, e)); return b }

// FADD appends d = a+c.
func (b *Builder) FADD(d, a, c isa.Reg) *Builder { b.track(isa.Make2(isa.OpFADD, d, a, c)); return b }

// FMUL appends d = a*c.
func (b *Builder) FMUL(d, a, c isa.Reg) *Builder { b.track(isa.Make2(isa.OpFMUL, d, a, c)); return b }

// IADD appends d = a+c on the INT pipe.
func (b *Builder) IADD(d, a, c isa.Reg) *Builder { b.track(isa.Make2(isa.OpIADD, d, a, c)); return b }

// IMAD appends d = a*c+e on the INT pipe.
func (b *Builder) IMAD(d, a, c, e isa.Reg) *Builder {
	b.track(isa.Instr{Op: isa.OpIMAD, Dst: d, Srcs: [3]isa.Reg{a, c, e}})
	return b
}

// ISETP appends a compare writing predicate-as-register d.
func (b *Builder) ISETP(d, a, c isa.Reg) *Builder {
	b.track(isa.Make2(isa.OpISETP, d, a, c))
	return b
}

// MOV appends d = a.
func (b *Builder) MOV(d, a isa.Reg) *Builder { b.track(isa.Make1(isa.OpMOV, d, a)); return b }

// SFU appends a special-function op d = f(a).
func (b *Builder) SFU(d, a isa.Reg) *Builder { b.track(isa.Make1(isa.OpSFU, d, a)); return b }

// Tensor appends an HMMA-style op d = a*c+e on the tensor core.
func (b *Builder) Tensor(d, a, c, e isa.Reg) *Builder {
	b.track(isa.Instr{Op: isa.OpTensor, Dst: d, Srcs: [3]isa.Reg{a, c, e}})
	return b
}

// LDG appends a global load into d with address register a and trait t.
func (b *Builder) LDG(d, a isa.Reg, t isa.MemTrait) *Builder {
	b.track(isa.MakeLoad(isa.OpLDG, d, a, t))
	return b
}

// STG appends a global store of v at address register a.
func (b *Builder) STG(a, v isa.Reg, t isa.MemTrait) *Builder {
	b.track(isa.MakeStore(isa.OpSTG, a, v, t))
	return b
}

// LDS appends a shared-memory load.
func (b *Builder) LDS(d, a isa.Reg, t isa.MemTrait) *Builder {
	t.Pattern = nonZeroPattern(t.Pattern)
	b.track(isa.MakeLoad(isa.OpLDS, d, a, t))
	return b
}

// STS appends a shared-memory store.
func (b *Builder) STS(a, v isa.Reg, t isa.MemTrait) *Builder {
	t.Pattern = nonZeroPattern(t.Pattern)
	b.track(isa.MakeStore(isa.OpSTS, a, v, t))
	return b
}

// LDC appends a constant-memory load (kernel argument read).
func (b *Builder) LDC(d isa.Reg) *Builder {
	b.track(isa.MakeLoad(isa.OpLDC, d, isa.NoReg, isa.MemTrait{Pattern: isa.PatBroadcast}))
	return b
}

// Bar appends a block-wide barrier.
func (b *Builder) Bar() *Builder { b.track(isa.MakeBar()); return b }

// Exit appends the warp-terminating instruction.
func (b *Builder) Exit() *Builder { b.track(isa.MakeExit()); return b }

func nonZeroPattern(p isa.Pattern) isa.Pattern {
	if p == isa.PatNone {
		return isa.PatCoalesced
	}
	return p
}

func (b *Builder) flush() {
	if len(b.pending) > 0 {
		body := make([]isa.Instr, len(b.pending))
		copy(body, b.pending)
		b.segs = append(b.segs, Segment{Body: body, Trips: 1})
		b.pending = b.pending[:0]
	}
}

// Loop emits trips repetitions of the body built by fn. The body must be
// non-empty and must not itself call Loop on a different builder level —
// nested loops are expressed by multiplying trip counts or by emitting the
// inner body multiple times.
func (b *Builder) Loop(trips int64, fn func(*Builder)) *Builder {
	if b.err != nil {
		return b
	}
	if trips < 1 {
		b.err = fmt.Errorf("program: loop trips %d, want >= 1", trips)
		return b
	}
	b.flush()
	inner := NewBuilder()
	fn(inner)
	inner.flush()
	if inner.err != nil {
		b.err = inner.err
		return b
	}
	if len(inner.segs) == 0 {
		b.err = fmt.Errorf("program: empty loop body")
		return b
	}
	if inner.maxReg > b.maxReg {
		b.maxReg = inner.maxReg
	}
	if len(inner.segs) == 1 {
		s := inner.segs[0]
		s.Trips *= trips
		b.segs = append(b.segs, s)
		return b
	}
	// Multi-segment body (the inner fn used Loop): expand by repeating the
	// segment list. Trip counts in workloads are small when bodies are
	// compound, so the expansion stays compact.
	for i := int64(0); i < trips; i++ {
		b.segs = append(b.segs, inner.segs...)
	}
	return b
}

// MaxReg returns the highest register index referenced so far.
func (b *Builder) MaxReg() isa.Reg { return b.maxReg }

// Build finalizes the program. An Exit is appended if the program does not
// already end with one, so every warp stream terminates.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	b.flush()
	if n := len(b.segs); n == 0 || !endsWithExit(b.segs[n-1]) {
		b.segs = append(b.segs, Segment{Body: []isa.Instr{isa.MakeExit()}, Trips: 1})
	}
	return New(b.segs...)
}

// MustBuild is Build, panicking on error.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func endsWithExit(s Segment) bool {
	return s.Trips == 1 && s.Body[len(s.Body)-1].Op == isa.OpEXIT
}
