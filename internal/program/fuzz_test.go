package program

import (
	"testing"

	"repro/internal/isa"
)

// FuzzCursor decodes arbitrary bytes into a segment structure and checks
// the cursor invariants: exactly Len() instructions yielded, Fetched and
// Remaining consistent at every step, Peek never advancing.
func FuzzCursor(f *testing.F) {
	f.Add([]byte{3, 1, 2, 2, 4})
	f.Add([]byte{1, 1})
	f.Add([]byte{7, 3, 1, 1, 9, 2, 5, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		var segs []Segment
		for i := 0; i+1 < len(data) && len(segs) < 8; i += 2 {
			bodyLen := int(data[i]%5) + 1
			trips := int64(data[i+1]%9) + 1
			body := make([]isa.Instr, bodyLen)
			for j := range body {
				body[j] = isa.MakeFMA(isa.Reg(j), 1, 2, 3)
			}
			segs = append(segs, Segment{Body: body, Trips: trips})
		}
		p, err := New(segs...)
		if err != nil {
			t.Fatalf("valid segments rejected: %v", err)
		}
		c := p.Cursor()
		var n int64
		for {
			if c.Fetched() != n {
				t.Fatalf("Fetched = %d, want %d", c.Fetched(), n)
			}
			if c.Remaining() != p.Len()-n {
				t.Fatalf("Remaining = %d, want %d", c.Remaining(), p.Len()-n)
			}
			peeked, pok := c.Peek()
			in, ok := c.Next()
			if pok != ok || (ok && peeked != in) {
				t.Fatal("Peek disagreed with Next")
			}
			if !ok {
				break
			}
			n++
		}
		if n != p.Len() {
			t.Fatalf("yielded %d instructions, want %d", n, p.Len())
		}
	})
}
