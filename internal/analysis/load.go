package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, parsed, type-checked package — the unit every
// analyzer runs over.
type Package struct {
	// Path is the import path ("repro/internal/gpu"), or a synthetic
	// "fixture/<name>" path for testdata packages.
	Path string
	// Dir is the package's source directory.
	Dir string
	// Fset positions the package's syntax.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, comments included.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info
	// Fixture marks a testdata package: analyzers with a package scope
	// treat fixtures as in scope so golden tests exercise them.
	Fixture bool
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
}

// goList runs `go list` in dir (module root resolution is the go
// command's) and decodes its JSON package stream.
func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter builds a go/types importer that resolves every import
// from compiler export data produced by `go list -export`.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		p, ok := exports[path]
		if !ok || p == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(p)
	})
}

// Load resolves the package patterns with the go command, then parses
// and type-checks each matched package from source, with all imports
// (stdlib and module siblings alike) satisfied from `go list -export`
// compiler export data — a go/packages-equivalent loader on the
// standard library only, so simlint works offline.
func Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList("", append([]string{"-export", "-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	var roots []listPkg
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			roots = append(roots, p)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	out := make([]*Package, 0, len(roots))
	for _, r := range roots {
		files := make([]string, len(r.GoFiles))
		for i, f := range r.GoFiles {
			files[i] = filepath.Join(r.Dir, f)
		}
		pkg, err := typeCheck(fset, imp, r.ImportPath, r.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadFixture loads a testdata fixture tree — the root directory plus
// every subdirectory containing Go files, each as its own package —
// which the go tool ignores by design. Sub-packages get synthetic
// import paths "fixture/<root>/<subdir>" and may import each other by
// those paths; everything else a fixture imports (including this
// module's own internal packages) resolves via `go list -export`. The
// root package is first in the returned slice.
func LoadFixture(dir string) ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, p)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: fixture %s: %w", dir, err)
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("analysis: fixture %s: no Go files", dir)
	}
	sort.Strings(dirs) // root first (shortest path), subdirs in name order

	fset := token.NewFileSet()
	root := "fixture/" + filepath.Base(dir)
	byPath := map[string]*fixtureDir{}
	paths := make([]string, 0, len(dirs))
	importSet := map[string]bool{}
	for _, d := range dirs {
		rel, err := filepath.Rel(dir, d)
		if err != nil {
			return nil, fmt.Errorf("analysis: fixture %s: %w", d, err)
		}
		path := root
		if rel != "." {
			path = root + "/" + filepath.ToSlash(rel)
		}
		fd := &fixtureDir{dir: d, path: path}
		entries, err := os.ReadDir(d)
		if err != nil {
			return nil, fmt.Errorf("analysis: fixture %s: %w", d, err)
		}
		var files []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				files = append(files, filepath.Join(d, e.Name()))
			}
		}
		sort.Strings(files)
		for _, f := range files {
			af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parse fixture: %w", err)
			}
			fd.asts = append(fd.asts, af)
			for _, spec := range af.Imports {
				p, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					return nil, fmt.Errorf("analysis: fixture import %s: %w", spec.Path.Value, err)
				}
				if p != "unsafe" && !strings.HasPrefix(p, "fixture/") {
					importSet[p] = true
				}
			}
		}
		byPath[path] = fd
		paths = append(paths, path)
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		imports := make([]string, 0, len(importSet))
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		// Resolve from the fixture's directory: it lives inside the
		// module, so module-internal import paths resolve too.
		deps, err := goList(dir, append([]string{"-export", "-deps"}, imports...)...)
		if err != nil {
			return nil, err
		}
		for _, p := range deps {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := &fixtureImporter{
		fset:     fset,
		byPath:   byPath,
		fallback: exportImporter(fset, exports),
	}
	// Check sibling-importable sub-packages on demand via the importer,
	// then every remaining package; root ends up first.
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := imp.check(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// fixtureDir is one directory of a fixture tree during loading.
type fixtureDir struct {
	dir, path string
	asts      []*ast.File
	pkg       *Package
	checking  bool
}

// fixtureImporter resolves "fixture/..." imports to sibling fixture
// packages (type-checking them on demand) and everything else via
// export data.
type fixtureImporter struct {
	fset     *token.FileSet
	byPath   map[string]*fixtureDir
	fallback types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if fd := fi.byPath[path]; fd != nil {
		pkg, err := fi.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return fi.fallback.Import(path)
}

func (fi *fixtureImporter) check(path string) (*Package, error) {
	fd := fi.byPath[path]
	if fd.pkg != nil {
		return fd.pkg, nil
	}
	if fd.checking {
		return nil, fmt.Errorf("analysis: fixture import cycle through %s", path)
	}
	fd.checking = true
	pkg, err := typeCheckFiles(fi.fset, fi, fd.path, fd.dir, fd.asts)
	fd.checking = false
	if err != nil {
		return nil, err
	}
	pkg.Fixture = true
	fd.pkg = pkg
	return pkg, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, path, dir string, files []string) (*Package, error) {
	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse: %w", err)
		}
		asts = append(asts, af)
	}
	return typeCheckFiles(fset, imp, path, dir, asts)
}

func typeCheckFiles(fset *token.FileSet, imp types.Importer, path, dir string, asts []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: asts, Types: tpkg, Info: info}, nil
}
