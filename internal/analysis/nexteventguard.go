package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Nexteventguard is the static half of the idle-cycle fast-forward
// contract (docs/ARCHITECTURE.md): skipping from cycle c to
// NextEvent(c) is sound only if ticking every skipped cycle would have
// been a no-op, which in turn requires NextEvent to consult every piece
// of mutable state the Tick path's behavior depends on. The dynamic
// side — the fast-forward equivalence tests and the invariant auditor —
// catches violations a workload happens to drive; this analyzer pins
// the contract for every field.
//
// Concretely: for every type with both a Tick and a NextEvent method,
// the analyzer computes the call-graph reachability of each side. A
// field of a //snapshot:state struct that the Tick side both reads and
// mutates, but that no NextEvent-side code ever reads, is a fast-
// forward soundness hole: the field evolves during ticking, influences
// Tick's behavior, and is invisible to the quiescence decision.
//
// Soundness bound: fields the Tick path reads but never writes are not
// flagged — they are constant across any quiescent span, so their
// influence is subsumed by the mutable fields NextEvent does consult.
// (Writes through composite literals and whole-struct assignment are
// not attributed to individual fields; the write detector sees selector
// assignments, compound assignments, ++/--, pointer-receiver method
// calls on a field, and &field escapes.) Justified exemptions use
// //simlint:allow nexteventguard on the field's declaration line, with
// the soundness argument as the reason.
var Nexteventguard = &Analyzer{
	Name: "nexteventguard",
	Doc: "flag //snapshot:state struct fields that Tick-reachable code " +
		"reads and mutates but that no NextEvent-reachable code consults " +
		"— state invisible to the fast-forward quiescence contract",
	RunProgram: runNexteventguard,
}

// stateField identifies one field of a //snapshot:state struct by
// name, across package views.
type stateField struct {
	owner string // pkgPath + "." + structName
	field string
}

// stateFieldDecl locates one declared field of a //snapshot:state
// struct.
type stateFieldDecl struct {
	pkg   *Package
	pos   token.Pos
	owner string // display name: the struct's name
}

// collectStateFields gathers every field of every //snapshot:state
// struct across the program, in declaration order. Shared by
// nexteventguard (fast-forward consultation) and clocktaint (snapshot
// fields as taint sinks).
//
//simlint:cold -- runs once per lint invocation; "collect" here is not the per-cycle pipeline stage
func collectStateFields(prog *Program) (map[stateField]*stateFieldDecl, []stateField) {
	fields := map[stateField]*stateFieldDecl{}
	var order []stateField
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok || !(hasStateMarker(gd.Doc) || hasStateMarker(ts.Doc)) {
						continue
					}
					for _, fld := range st.Fields.List {
						for _, id := range fld.Names {
							sf := stateField{owner: pkg.Path + "." + ts.Name.Name, field: id.Name}
							fields[sf] = &stateFieldDecl{pkg: pkg, pos: id.Pos(), owner: ts.Name.Name}
							order = append(order, sf)
						}
					}
				}
			}
		}
	}
	return fields, order
}

func runNexteventguard(pp *ProgramPass) error {
	g := pp.Prog.CallGraph()

	// Tick roots: Tick methods of types that also have NextEvent.
	// NextEvent roots: every NextEvent method (types like mem.Hierarchy
	// have no Tick — they are analytic — but their NextEvent still
	// counts as consultation).
	methods := map[string]map[string]*CGNode{} // pkgPath.Recv -> method name -> node
	for _, n := range g.Nodes {
		if n.Fn == nil {
			continue
		}
		recv := recvNamed(n.Fn)
		if recv == "" {
			continue
		}
		key := n.Pkg.Path + "." + recv
		if methods[key] == nil {
			methods[key] = map[string]*CGNode{}
		}
		methods[key][n.Fn.Name()] = n
	}
	var tickRoots, neRoots []*CGNode
	for _, n := range g.Nodes { // iterate Nodes for deterministic order
		if n.Fn == nil {
			continue
		}
		recv := recvNamed(n.Fn)
		if recv == "" {
			continue
		}
		byName := methods[n.Pkg.Path+"."+recv]
		switch n.Fn.Name() {
		case "Tick", "tick":
			if byName["NextEvent"] != nil || byName["nextEvent"] != nil {
				tickRoots = append(tickRoots, n)
			}
		case "NextEvent", "nextEvent":
			neRoots = append(neRoots, n)
		}
	}
	if len(tickRoots) == 0 {
		return nil // no Tick/NextEvent pair anywhere: nothing to guard
	}

	// Snapshot-state structs and their fields, program-wide.
	fields, order := collectStateFields(pp.Prog)
	if len(fields) == 0 {
		return nil
	}

	tickReach := g.Reach(tickRoots, ReachOpts{})
	neReach := g.Reach(neRoots, ReachOpts{})

	tickRead := map[stateField]bool{}
	tickWrite := map[stateField]bool{}
	neRead := map[stateField]bool{}
	for _, n := range g.Nodes {
		inTick := tickReach[n] != nil
		inNE := neReach[n] != nil
		if !inTick && !inNE {
			continue
		}
		scanFieldAccesses(n, func(sf stateField, write bool) {
			if _, tracked := fields[sf]; !tracked {
				return
			}
			if inTick {
				if write {
					tickWrite[sf] = true
				} else {
					tickRead[sf] = true
				}
			}
			if inNE && !write {
				neRead[sf] = true
			}
		})
	}

	for _, sf := range order {
		if tickRead[sf] && tickWrite[sf] && !neRead[sf] {
			fi := fields[sf]
			pp.Reportf(fi.pkg, fi.pos, "field %s.%s is read and mutated on the Tick path but never consulted by any NextEvent — fast-forward may skip a cycle whose behavior depends on it; consult it (or a quiescence helper that reads it) from a NextEvent, or justify with //simlint:allow nexteventguard", fi.owner, sf.field)
		}
	}
	return nil
}

// scanFieldAccesses walks one node's body and reports every
// //snapshot:state-relevant field selection as a read and/or write.
// A compound assignment or ++/-- is both; plain `=` is a write only;
// &field and a pointer-receiver method call on the field are
// conservatively both.
func scanFieldAccesses(n *CGNode, emit func(sf stateField, write bool)) {
	info := n.Pkg.Info
	body := n.Body()
	if body == nil {
		return
	}
	var stack []ast.Node
	ast.Inspect(body, func(x ast.Node) bool {
		if x == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, x)
		if fl, ok := x.(*ast.FuncLit); ok && ast.Node(fl) != body {
			// Nested literals are their own nodes with their own reach entry.
			stack = stack[:len(stack)-1]
			return false
		}
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		sf, ok := stateFieldOf(info, sel)
		if !ok {
			return true
		}
		read, write := classifyAccess(info, stack, sel)
		if read {
			emit(sf, false)
		}
		if write {
			emit(sf, true)
		}
		return true
	})
}

// stateFieldOf resolves a selector to (owner struct, field) when it is
// a struct field selection on a named type.
func stateFieldOf(info *types.Info, sel *ast.SelectorExpr) (stateField, bool) {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return stateField{}, false
	}
	recv := s.Recv()
	if p, ok := recv.Underlying().(*types.Pointer); ok {
		recv = p.Elem()
	}
	// Deep selections (a.b.c) attribute the field to the type that
	// actually declares it.
	if len(s.Index()) > 1 {
		// Walk the embedding chain: Recv -> field path. Only the final
		// field matters; its direct owner is the struct containing it.
		t := recv
		idx := s.Index()
		for _, i := range idx[:len(idx)-1] {
			st, ok := t.Underlying().(*types.Struct)
			if !ok {
				return stateField{}, false
			}
			ft := st.Field(i).Type()
			if p, ok := ft.Underlying().(*types.Pointer); ok {
				ft = p.Elem()
			}
			t = ft
		}
		recv = t
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return stateField{}, false
	}
	return stateField{
		owner: named.Obj().Pkg().Path() + "." + named.Obj().Name(),
		field: sel.Sel.Name,
	}, true
}

// classifyAccess decides whether the selector (stack top) is read,
// written, or both, from its ancestors.
func classifyAccess(info *types.Info, stack []ast.Node, sel *ast.SelectorExpr) (read, write bool) {
	// Climb through wrappers that keep the lvalue the "same place":
	// indexing, parens, and further field selection keep us looking for
	// the assignment/incdec/unary parent of the outermost lvalue
	// expression rooted at sel.
	cur := ast.Node(sel)
	for i := len(stack) - 2; i >= 0; i-- {
		parent := stack[i]
		switch p := parent.(type) {
		case *ast.ParenExpr:
			cur = parent
			continue
		case *ast.IndexExpr:
			if p.X == cur {
				cur = parent
				continue
			}
			return true, false // sel is the index expression: a read
		case *ast.SelectorExpr:
			// sel.X side of a deeper selection: reading the field to reach
			// a subfield or method. A pointer-receiver method call on the
			// field can mutate it; conservatively a write too.
			if p.X == cur {
				if fn, ok := info.Uses[p.Sel].(*types.Func); ok {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
						if _, ptr := sig.Recv().Type().(*types.Pointer); ptr {
							return true, true
						}
					}
				}
				return true, false
			}
			return true, false
		case *ast.UnaryExpr:
			if p.Op == token.AND && p.X == cur {
				return true, true // address escapes: conservatively both
			}
			return true, false
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == cur {
					if p.Tok == token.ASSIGN {
						return false, true
					}
					return true, true // +=, -=, ...
				}
			}
			return true, false
		case *ast.IncDecStmt:
			if p.X == cur {
				return true, true
			}
			return true, false
		default:
			return true, false
		}
	}
	return true, false
}
