package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// allowRe matches the suppression directive. The "-- reason" tail is
// required: a waiver without its justification is itself reported (see
// runAnalyzers). The pattern still matches a reasonless directive so
// the suite can point at it rather than silently ignore it.
var allowRe = regexp.MustCompile(`^//simlint:allow\s+([a-zA-Z0-9_,\s]+?)\s*(?:--\s*(.*))?$`)

// hasDirective reports whether the comment group carries the given
// //simlint:<name> directive (exact word, e.g. "hotpath").
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == "//simlint:"+name || strings.HasPrefix(c.Text, "//simlint:"+name+" ") {
			return true
		}
	}
	return false
}

// allowDirective is one //simlint:allow occurrence for one analyzer
// name. A directive covering several lines (or a whole function) is one
// record shared by every covered line, so "used" means "suppressed at
// least one finding anywhere in its coverage" — the unit -strict-allow
// reports on.
type allowDirective struct {
	pos    token.Position
	name   string
	reason string // text after " -- "; empty means malformed
	used   bool
}

// suppressions indexes every allow directive of the analyzed packages:
// file -> line -> analyzer name -> the directives covering that line.
type suppressions struct {
	byLine     map[string]map[int]map[string][]*allowDirective
	directives []*allowDirective
}

func (s *suppressions) add(file string, line int, d *allowDirective) {
	byLine := s.byLine[file]
	if byLine == nil {
		byLine = map[int]map[string][]*allowDirective{}
		s.byLine[file] = byLine
	}
	byName := byLine[line]
	if byName == nil {
		byName = map[string][]*allowDirective{}
		byLine[line] = byName
	}
	byName[d.name] = append(byName[d.name], d)
}

// suppressed reports whether a finding by the analyzer at pos is
// covered by an //simlint:allow directive, marking every covering
// directive used.
func (s *suppressions) suppressed(analyzer string, pos token.Position) bool {
	byLine := s.byLine[pos.Filename]
	if byLine == nil {
		return false
	}
	ds := byLine[pos.Line][analyzer]
	for _, d := range ds {
		d.used = true
	}
	return len(ds) > 0
}

// parseAllow splits a directive comment into the analyzer names it
// waives and the reason after " -- " (empty when absent).
func parseAllow(text string) (names []string, reason string) {
	m := allowRe.FindStringSubmatch(text)
	if m == nil {
		return nil, ""
	}
	for _, n := range strings.Split(m[1], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, strings.TrimSpace(m[2])
}

// buildSuppressions indexes every //simlint:allow directive of the
// packages. A directive on (or immediately above) a line covers that
// line and the next; a directive in a function's doc comment covers
// the whole declaration.
func buildSuppressions(pkgs []*Package) *suppressions {
	s := &suppressions{byLine: map[string]map[int]map[string][]*allowDirective{}}
	for _, p := range pkgs {
		for _, f := range p.Files {
			filename := p.Fset.Position(f.Pos()).Filename
			// Directives inside function doc comments cover the whole
			// declaration; remember them so the per-line pass below skips
			// them (a doc-comment directive already has its coverage).
			docDirective := map[*ast.Comment]bool{}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					names, reason := parseAllow(c.Text)
					if names == nil {
						continue
					}
					docDirective[c] = true
					start := p.Fset.Position(fd.Pos()).Line
					end := p.Fset.Position(fd.End()).Line
					for _, n := range names {
						ad := &allowDirective{pos: p.Fset.Position(c.Pos()), name: n, reason: reason}
						s.directives = append(s.directives, ad)
						for l := start; l <= end; l++ {
							s.add(filename, l, ad)
						}
					}
				}
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, reason := parseAllow(c.Text)
					if names == nil || docDirective[c] {
						continue
					}
					line := p.Fset.Position(c.Pos()).Line
					for _, n := range names {
						ad := &allowDirective{pos: p.Fset.Position(c.Pos()), name: n, reason: reason}
						s.directives = append(s.directives, ad)
						s.add(filename, line, ad)
						s.add(filename, line+1, ad)
					}
				}
			}
		}
	}
	return s
}
