package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// allowRe matches the suppression directive. The "-- reason" tail is
// conventionally required so every suppression carries its
// justification at the site; the pattern tolerates its absence so the
// analyzer suite never silently ignores a malformed reason.
var allowRe = regexp.MustCompile(`^//simlint:allow\s+([a-zA-Z0-9_,\s]+?)\s*(?:--\s*(.*))?$`)

// hasDirective reports whether the comment group carries the given
// //simlint:<name> directive (exact word, e.g. "hotpath").
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == "//simlint:"+name || strings.HasPrefix(c.Text, "//simlint:"+name+" ") {
			return true
		}
	}
	return false
}

// suppressions maps file -> line -> the analyzer names allowed there.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) add(file string, line int, names []string) {
	byLine := s[file]
	if byLine == nil {
		byLine = map[int]map[string]bool{}
		s[file] = byLine
	}
	set := byLine[line]
	if set == nil {
		set = map[string]bool{}
		byLine[line] = set
	}
	for _, n := range names {
		set[n] = true
	}
}

// suppressed reports whether a finding by the analyzer at pos is
// covered by an //simlint:allow directive.
func (s suppressions) suppressed(analyzer string, pos token.Position) bool {
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[pos.Line][analyzer]
}

func allowNames(text string) []string {
	m := allowRe.FindStringSubmatch(text)
	if m == nil {
		return nil
	}
	var names []string
	for _, n := range strings.Split(m[1], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// buildSuppressions indexes every //simlint:allow directive of the
// package. A directive on (or immediately above) a line covers that
// line and the next; a directive in a function's doc comment covers
// the whole declaration.
func buildSuppressions(p *Package) suppressions {
	s := suppressions{}
	for _, f := range p.Files {
		filename := p.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := allowNames(c.Text)
				if names == nil {
					continue
				}
				line := p.Fset.Position(c.Pos()).Line
				s.add(filename, line, names)
				s.add(filename, line+1, names)
			}
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				names := allowNames(c.Text)
				if names == nil {
					continue
				}
				start := p.Fset.Position(fd.Pos()).Line
				end := p.Fset.Position(fd.End()).Line
				for l := start; l <= end; l++ {
					s.add(filename, l, names)
				}
			}
		}
	}
	return s
}
