package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// This file is simlint v3's value-flow engine: an intraprocedural
// def-use/taint propagator over syntax and type information, composed
// with the v2 call graph (callgraph.go) so taint crosses function
// boundaries through arguments and return values. The call-level
// analyzers (determinism, hotpath) ask "is this function reached?";
// the dataflow analyzers built on this engine (clocktaint,
// configfreeze) ask the finer question "does this *value* reach that
// *place?" — a time.Now result laundered through three locals and a
// helper's return value into a //snapshot:state field is invisible to
// the call-level passes and exactly what this engine tracks.
//
// Like the call graph, the engine is conservative by construction:
// taint over-approximates, it never under-approximates within its
// documented bounds. The transfer rules:
//
//   - An expression is tainted when any sub-expression of it is a
//     source, a use of a tainted variable, a read of a tainted field,
//     or a call whose (loaded) callee may return taint. Conversions,
//     arithmetic, indexing, interface boxing, and calls to *unloaded*
//     callees (stdlib) all launder taint through — `int64(t)`,
//     `fmt.Sprintf("%d", t)`, and `t.UnixNano()` are as tainted as t.
//   - Assignments, short declarations, var specs, and range statements
//     move taint from the right side to every left-side variable.
//     Storing through a pointer, slice, map element, or into a struct
//     field taints the base ("taints everything it touches"): after
//     `m[k] = t`, the whole map m is tainted.
//   - Struct-field stores (selector assignments and composite-literal
//     elements) additionally taint the *field* itself, keyed by
//     (declaring package, struct, field) — field-sensitive but
//     instance-insensitive, so a copy of a struct carries its fields'
//     taint. Every field-tainting store is recorded as a FieldTaint
//     sink event for the analyzers.
//   - At a call whose target body is loaded, tainted arguments taint
//     the callee's parameters (receivers included, variadics folded
//     onto the last parameter); a tainted return expression taints the
//     callee's result at its position, which flows back into the
//     call sites — result-index-sensitively, so a tuple assignment
//     routes result i to lvalue i and a wall-clock duration returned
//     beside a stats struct does not taint the struct. Both directions
//     follow the call graph's statically resolved edges.
//
// Bounds, stated honestly: dispatch through interfaces and
// function-typed values is outside the value-flow model — the call
// graph resolves those sites to every name+signature-compatible
// candidate (right for reachability, ruinous for taint: one tainted
// Stringer receiver would contaminate every .String() in the program),
// so dataflow treats dispatched-only sites like unknown callees and
// applies the pointer-laundering rule instead. Pointer aliasing of
// *fields* is likewise not modeled
// (after p := &s.f, a store *p = t taints p but not the field f —
// take the address of the struct, not the field, or the write escapes
// the engine); taint never dies (no sanitizer kills it), so the
// engine answers reachability, not possibility-on-every-path; and
// function literals are separate call-graph nodes, so taint enters
// them only through captured variables and explicit calls.
//
// Every tainted entity carries a Flow: the source description plus the
// hop-by-hop value chain by which taint arrived, so a diagnostic can
// print `time.Now (pace.go:12) → result of pace.Stamp (clock.go:30) →
// engine.clock` and a reviewer can audit the propagation instead of
// trusting it.

// maxFlowHops caps a Flow's recorded chain. Taint still propagates
// past the cap — only the rendering is truncated, keeping messages
// readable when taint crosses many small helpers.
const maxFlowHops = 24

// maxDataflowPasses bounds the global fixpoint iteration. Taint is
// monotone over a finite entity set, so the loop always terminates on
// its own; the cap is a backstop against a propagation bug turning
// into a hang inside CI's 30-second budget.
const maxDataflowPasses = 64

// FlowHop is one step of a value-flow chain.
type FlowHop struct {
	Pos  token.Pos
	Pkg  *Package
	Desc string
}

// Flow records how taint reached an entity: the originating source and
// the hops (oldest first) the value took.
type Flow struct {
	SrcPos  token.Pos
	SrcPkg  *Package
	SrcDesc string
	Hops    []FlowHop
}

// extend returns a copy of f with one more hop appended.
func (f *Flow) extend(pkg *Package, pos token.Pos, desc string) *Flow {
	nf := &Flow{SrcPos: f.SrcPos, SrcPkg: f.SrcPkg, SrcDesc: f.SrcDesc}
	if len(f.Hops) >= maxFlowHops {
		nf.Hops = f.Hops // truncated: share, don't grow
		return nf
	}
	nf.Hops = make([]FlowHop, len(f.Hops), len(f.Hops)+1)
	copy(nf.Hops, f.Hops)
	nf.Hops = append(nf.Hops, FlowHop{Pos: pos, Pkg: pkg, Desc: desc})
	return nf
}

// Chain renders the flow as "time.Now (pace.go:12) → t (clock.go:30) →
// engine.clock (clock.go:31)" for diagnostics.
func (f *Flow) Chain() string {
	var b strings.Builder
	b.WriteString(f.SrcDesc)
	b.WriteString(" (")
	b.WriteString(shortPos(f.SrcPkg, f.SrcPos))
	b.WriteString(")")
	for _, h := range f.Hops {
		b.WriteString(" → ")
		b.WriteString(h.Desc)
		b.WriteString(" (")
		b.WriteString(shortPos(h.Pkg, h.Pos))
		b.WriteString(")")
	}
	return b.String()
}

// shortPos renders pos as "file.go:12" (base name only).
func shortPos(pkg *Package, pos token.Pos) string {
	p := pkg.Fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}

// TaintSpec configures one engine run.
type TaintSpec struct {
	// Source classifies a node as a taint origin, returning a short
	// description ("time.Now") when it is one.
	Source func(pkg *Package, n ast.Node) (string, bool)
}

// FieldTaint is one program point where a tainted value is stored into
// a struct field — the engine's sink-event stream, in deterministic
// discovery order.
type FieldTaint struct {
	Field stateField
	Pkg   *Package
	Pos   token.Pos
	Flow  *Flow
}

// ReturnTaint is one return statement whose value is tainted.
type ReturnTaint struct {
	Node *CGNode
	Pkg  *Package
	Pos  token.Pos
	Flow *Flow
}

// Dataflow is the engine's result: the taint closure of the program
// under the spec's sources.
type Dataflow struct {
	prog *Program
	g    *CallGraph
	spec TaintSpec

	vars   map[types.Object]*Flow
	fields map[stateField]*Flow
	// results is indexed by result position: returning `run, wall, err`
	// with only wall tainted taints index 1 alone, and a tuple
	// assignment at the call site routes result i to lvalue i. Without
	// the index, one wall-clock duration in a result tuple would taint
	// every value returned beside it.
	results map[*CGNode][]*Flow

	// FieldTaints records every field-tainting store, deduplicated by
	// position, in discovery order.
	FieldTaints []FieldTaint
	// ReturnTaints records every tainted return, deduplicated by
	// position, in discovery order.
	ReturnTaints []ReturnTaint

	fieldSeen map[token.Pos]bool
	retSeen   map[token.Pos]bool

	// siteTargets maps each node's call-site positions to the resolved
	// callee nodes, rebuilt from the call graph's edges.
	siteTargets map[*CGNode]map[token.Pos][]*CGNode

	changed bool
}

// VarFlow returns the taint flow that reached obj, nil when untainted.
func (d *Dataflow) VarFlow(obj types.Object) *Flow { return d.vars[obj] }

// FieldFlow returns the taint flow that reached the field, nil when
// untainted.
func (d *Dataflow) FieldFlow(sf stateField) *Flow { return d.fields[sf] }

// RunDataflow computes the program's taint closure under spec: seeds
// every source, then iterates the transfer rules to a fixpoint.
func RunDataflow(prog *Program, spec TaintSpec) *Dataflow {
	d := &Dataflow{
		prog:        prog,
		g:           prog.CallGraph(),
		spec:        spec,
		vars:        map[types.Object]*Flow{},
		fields:      map[stateField]*Flow{},
		results:     map[*CGNode][]*Flow{},
		fieldSeen:   map[token.Pos]bool{},
		retSeen:     map[token.Pos]bool{},
		siteTargets: map[*CGNode]map[token.Pos][]*CGNode{},
	}
	for _, n := range d.g.Nodes {
		m := map[token.Pos][]*CGNode{}
		for _, e := range n.Out {
			// Dispatched edges (interface / function-value fan-out) stay
			// out of the value-flow model: one tainted receiver would
			// contaminate every name+signature-compatible method in the
			// program. Sites with only dispatched edges degrade to the
			// unknown-callee laundering rule instead.
			if e.Dispatched {
				continue
			}
			m[e.Site] = append(m[e.Site], e.To)
		}
		d.siteTargets[n] = m
	}
	for pass := 0; pass < maxDataflowPasses; pass++ {
		d.changed = false
		for _, n := range d.g.Nodes {
			d.scanNode(n)
		}
		if !d.changed {
			break
		}
	}
	return d
}

// scanNode applies the transfer rules to one function body. Nested
// function literals are their own call-graph nodes and are skipped.
func (d *Dataflow) scanNode(n *CGNode) {
	body := n.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			d.transferAssign(n, x)
		case *ast.ValueSpec:
			d.transferValueSpec(n, x)
		case *ast.RangeStmt:
			d.transferRange(n, x)
		case *ast.ReturnStmt:
			d.transferReturn(n, x)
		case *ast.SendStmt:
			if fl := d.exprTaint(n, x.Value); fl != nil {
				d.assignTo(n, x.Chan, fl)
			}
		case *ast.CallExpr:
			d.transferCall(n, x)
		case *ast.CompositeLit:
			d.transferComposite(n, x)
		}
		return true
	})
}

// transferAssign moves taint across `=`, `:=`, and compound
// assignments.
func (d *Dataflow) transferAssign(n *CGNode, as *ast.AssignStmt) {
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			if fl := d.exprTaint(n, as.Rhs[i]); fl != nil {
				d.assignTo(n, lhs, fl)
			}
		}
		return
	}
	if len(as.Rhs) == 1 { // tuple: a, b := f()
		if d.routeCallTuple(n, as.Rhs[0], func(i int, fl *Flow) {
			if i < len(as.Lhs) {
				d.assignTo(n, as.Lhs[i], fl)
			}
		}) {
			return
		}
		if fl := d.exprTaint(n, as.Rhs[0]); fl != nil {
			for _, lhs := range as.Lhs {
				d.assignTo(n, lhs, fl)
			}
		}
	}
}

// routeCallTuple handles a tuple assignment from a call with resolved
// callees result-index-sensitively: result i reaches lvalue i only, so
// one tainted value in a return tuple does not smear across its
// neighbors. Reports false for anything else (map/type-assert/receive
// two-value forms, unknown callees) — the caller falls back to the
// whole-expression rule.
func (d *Dataflow) routeCallTuple(n *CGNode, rhs ast.Expr, assign func(i int, fl *Flow)) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	targets := d.siteTargets[n][call.Pos()]
	if len(targets) == 0 {
		return false
	}
	for _, t := range targets {
		for i, fl := range d.results[t] {
			if fl != nil {
				assign(i, fl)
			}
		}
	}
	return true
}

// transferValueSpec moves taint across `var x = expr` declarations.
func (d *Dataflow) transferValueSpec(n *CGNode, vs *ast.ValueSpec) {
	if len(vs.Values) == 0 {
		return
	}
	if len(vs.Values) == len(vs.Names) {
		for i, id := range vs.Names {
			if fl := d.exprTaint(n, vs.Values[i]); fl != nil {
				d.taintIdent(n, id, fl)
			}
		}
		return
	}
	// var a, b = f()
	if d.routeCallTuple(n, vs.Values[0], func(i int, fl *Flow) {
		if i < len(vs.Names) {
			d.taintIdent(n, vs.Names[i], fl)
		}
	}) {
		return
	}
	if fl := d.exprTaint(n, vs.Values[0]); fl != nil {
		for _, id := range vs.Names {
			d.taintIdent(n, id, fl)
		}
	}
}

// transferRange taints the iteration variables of a range over a
// tainted collection.
func (d *Dataflow) transferRange(n *CGNode, rs *ast.RangeStmt) {
	fl := d.exprTaint(n, rs.X)
	if fl == nil {
		return
	}
	// The key of a slice/array/string range is a position, not data
	// drawn from the collection, so the elements' taint does not reach
	// it. Map keys, range-over-int bounds, and iterator yields are the
	// data and stay tainted.
	keyIsData := true
	if t := n.Pkg.Info.TypeOf(rs.X); t != nil {
		u := t.Underlying()
		if p, ok := u.(*types.Pointer); ok {
			u = p.Elem().Underlying()
		}
		switch u := u.(type) {
		case *types.Slice, *types.Array:
			keyIsData = false
		case *types.Basic:
			keyIsData = u.Info()&types.IsString == 0
		}
	}
	if rs.Key != nil && keyIsData {
		d.assignTo(n, rs.Key, fl)
	}
	if rs.Value != nil {
		d.assignTo(n, rs.Value, fl)
	}
}

// transferReturn taints the node's result positions whose returned
// values are tainted; bare returns consult the named result variables.
func (d *Dataflow) transferReturn(n *CGNode, rs *ast.ReturnStmt) {
	if len(rs.Results) == 0 {
		for i, obj := range d.namedResults(n) {
			if fl := d.vars[obj]; fl != nil {
				d.taintResult(n, i, rs.Pos(), fl)
			}
		}
		return
	}
	if nres := resultCount(n); len(rs.Results) == 1 && nres > 1 {
		// return f(): a multi-result call forwarded whole. Conservative:
		// every position shares the expression's taint.
		if fl := d.exprTaint(n, rs.Results[0]); fl != nil {
			for i := 0; i < nres; i++ {
				d.taintResult(n, i, rs.Pos(), fl)
			}
		}
		return
	}
	for i, e := range rs.Results {
		if fl := d.exprTaint(n, e); fl != nil {
			d.taintResult(n, i, rs.Pos(), fl)
		}
	}
}

// taintResult marks one of the node's result positions tainted and
// records the tainted return site.
func (d *Dataflow) taintResult(n *CGNode, idx int, pos token.Pos, fl *Flow) {
	ext := fl.extend(n.Pkg, pos, "returned by "+n.Name)
	rs := d.results[n]
	if rs == nil {
		rs = make([]*Flow, resultCount(n))
		d.results[n] = rs
	}
	if idx < len(rs) && rs[idx] == nil {
		rs[idx] = ext
		d.changed = true
	}
	if !d.retSeen[pos] {
		d.retSeen[pos] = true
		d.ReturnTaints = append(d.ReturnTaints, ReturnTaint{Node: n, Pkg: n.Pkg, Pos: pos, Flow: ext})
	}
}

// resultCount is the number of values the node returns.
func resultCount(n *CGNode) int {
	var ft *ast.FuncType
	if n.Decl != nil {
		ft = n.Decl.Type
	} else {
		ft = n.Lit.Type
	}
	if ft.Results == nil {
		return 0
	}
	c := 0
	for _, f := range ft.Results.List {
		if len(f.Names) == 0 {
			c++
		} else {
			c += len(f.Names)
		}
	}
	return c
}

// namedResults returns the node's named result variables, if any.
func (d *Dataflow) namedResults(n *CGNode) []types.Object {
	var ft *ast.FuncType
	if n.Decl != nil {
		ft = n.Decl.Type
	} else {
		ft = n.Lit.Type
	}
	if ft.Results == nil {
		return nil
	}
	var out []types.Object
	for _, f := range ft.Results.List {
		for _, id := range f.Names {
			if obj := n.Pkg.Info.Defs[id]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// transferCall propagates tainted arguments into the parameters of
// every resolved callee whose body is loaded, and applies the
// pointer-laundering rule at calls the graph cannot see into.
func (d *Dataflow) transferCall(n *CGNode, call *ast.CallExpr) {
	targets := d.siteTargets[n][call.Pos()]
	if len(targets) == 0 {
		d.launderThroughUnknown(n, call)
		return
	}
	for _, t := range targets {
		params, variadic := paramObjsOf(t)
		for i, arg := range call.Args {
			fl := d.exprTaint(n, arg)
			if fl == nil {
				continue
			}
			j := i
			if variadic && j >= len(params) {
				j = len(params) - 1
			}
			if j < 0 || j >= len(params) || params[j] == nil {
				continue
			}
			d.taintVar(n, params[j], arg.Pos(),
				"arg "+params[j].Name()+" of "+t.Name, fl)
		}
		// A method call on a tainted receiver taints the receiver
		// parameter inside the callee.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if recv := recvObjOf(t); recv != nil {
				if fl := d.exprTaint(n, sel.X); fl != nil {
					d.taintVar(n, recv, sel.X.Pos(),
						"receiver "+recv.Name()+" of "+t.Name, fl)
				}
			}
		}
	}
}

// launderThroughUnknown handles a call with no loaded callee (stdlib,
// export-data-only dependencies): a tainted argument may be stored by
// the callee through any pointer-like argument, so those arguments'
// bases are tainted too (fmt.Sscanf(tainted, "%d", &x) taints x).
func (d *Dataflow) launderThroughUnknown(n *CGNode, call *ast.CallExpr) {
	var tainted *Flow
	for _, arg := range call.Args {
		if fl := d.exprTaint(n, arg); fl != nil {
			tainted = fl
			break
		}
	}
	if tainted == nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			tainted = d.exprTaint(n, sel.X)
		}
	}
	if tainted == nil {
		return
	}
	info := n.Pkg.Info
	// A tainted argument may be absorbed by the receiver too
	// (buf.WriteString(t) taints buf).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isPkg := info.Uses[selBaseIdent(sel)].(*types.PkgName); !isPkg {
			d.assignTo(n, sel.X, tainted)
		}
	}
	for _, arg := range call.Args {
		a := ast.Unparen(arg)
		if u, ok := a.(*ast.UnaryExpr); ok && u.Op == token.AND {
			d.assignTo(n, u.X, tainted)
			continue
		}
		t := info.TypeOf(a)
		if t == nil {
			continue
		}
		switch t.Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
			d.assignTo(n, a, tainted)
		}
	}
}

// transferComposite taints the struct fields a composite literal
// initializes with tainted values (keyed and positional elements).
// namedStructLit reports whether cl builds a named struct (directly or
// through one pointer), returning its type. These are the composites
// whose taint lives in per-field records rather than in the value.
func namedStructLit(info *types.Info, cl *ast.CompositeLit) (*types.Named, *types.Struct, bool) {
	t := info.TypeOf(cl)
	if t == nil {
		return nil, nil, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, nil, false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil, false
	}
	return named, st, true
}

func (d *Dataflow) transferComposite(n *CGNode, cl *ast.CompositeLit) {
	named, st, ok := namedStructLit(n.Pkg.Info, cl)
	if !ok {
		return
	}
	owner := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	for i, elt := range cl.Elts {
		var fieldName string
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			id, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			fieldName, val = id.Name, kv.Value
		} else if i < st.NumFields() {
			fieldName = st.Field(i).Name()
		}
		if fieldName == "" {
			continue
		}
		if fl := d.exprTaint(n, val); fl != nil {
			d.taintField(n, stateField{owner: owner, field: fieldName},
				val.Pos(), named.Obj().Name()+"."+fieldName+" (composite literal)", fl)
		}
	}
}

// assignTo routes a tainted right-hand side into an lvalue: variables
// are tainted directly, field selections taint the field (and record a
// sink event), and stores through pointers, indexes, and slices taint
// the base expression ("taints everything it touches").
func (d *Dataflow) assignTo(n *CGNode, lhs ast.Expr, fl *Flow) {
	info := n.Pkg.Info
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		d.taintIdent(n, l, fl)
	case *ast.SelectorExpr:
		if sf, ok := stateFieldOf(info, l); ok {
			short := sf.owner[strings.LastIndexByte(sf.owner, '.')+1:]
			d.taintField(n, sf, l.Sel.Pos(), short+"."+sf.field, fl)
			return
		}
		// Qualified package-level variable (pkg.V = t).
		if obj, ok := info.Uses[l.Sel].(*types.Var); ok {
			d.taintVar(n, obj, l.Sel.Pos(), l.Sel.Name, fl)
		}
	case *ast.IndexExpr:
		d.assignTo(n, l.X, fl)
	case *ast.StarExpr:
		d.assignTo(n, l.X, fl)
	case *ast.SliceExpr:
		d.assignTo(n, l.X, fl)
	}
}

// taintIdent taints the variable an identifier denotes.
func (d *Dataflow) taintIdent(n *CGNode, id *ast.Ident, fl *Flow) {
	if id.Name == "_" {
		return
	}
	info := n.Pkg.Info
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if v, ok := obj.(*types.Var); ok {
		d.taintVar(n, v, id.Pos(), id.Name, fl)
	}
}

// taintVar marks one variable tainted (first flow wins).
func (d *Dataflow) taintVar(n *CGNode, obj types.Object, pos token.Pos, desc string, fl *Flow) {
	if obj == nil || d.vars[obj] != nil {
		return
	}
	d.vars[obj] = fl.extend(n.Pkg, pos, desc)
	d.changed = true
}

// taintField marks one struct field tainted and records the sink event.
func (d *Dataflow) taintField(n *CGNode, sf stateField, pos token.Pos, desc string, fl *Flow) {
	ext := fl.extend(n.Pkg, pos, desc)
	if d.fields[sf] == nil {
		d.fields[sf] = ext
		d.changed = true
	}
	if !d.fieldSeen[pos] {
		d.fieldSeen[pos] = true
		d.FieldTaints = append(d.FieldTaints, FieldTaint{Field: sf, Pkg: n.Pkg, Pos: pos, Flow: ext})
	}
}

// exprTaint reports whether any atom of e carries taint — a source
// expression, a tainted variable use, a tainted field read, or a call
// whose loaded callee returns taint — and returns the first such flow
// in traversal order. Function literals are skipped (they are separate
// nodes; creating one does not evaluate its body).
func (d *Dataflow) exprTaint(n *CGNode, e ast.Expr) *Flow {
	if e == nil {
		return nil
	}
	info := n.Pkg.Info
	var found *Flow
	ast.Inspect(e, func(x ast.Node) bool {
		if found != nil {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		// A named-struct composite carries its taint in the per-field
		// records transferComposite writes, not in the value: pruning
		// the subtree here is what keeps one tainted field (a
		// constructor stamping time.Now into a pacing field, say) from
		// wholesale-tainting every value the struct ever touches.
		// Field reads recover the taint through the fields map.
		if cl, ok := x.(*ast.CompositeLit); ok {
			if _, _, isStruct := namedStructLit(info, cl); isStruct {
				return false
			}
		}
		if d.spec.Source != nil && x != nil {
			if desc, ok := d.spec.Source(n.Pkg, x); ok {
				found = &Flow{SrcPos: x.Pos(), SrcPkg: n.Pkg, SrcDesc: desc}
				return false
			}
		}
		switch x := x.(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				if fl := d.vars[obj]; fl != nil {
					found = fl
					return false
				}
			}
		case *ast.SelectorExpr:
			if sf, ok := stateFieldOf(info, x); ok {
				if fl := d.fields[sf]; fl != nil {
					found = fl
					return false
				}
			}
		case *ast.CallExpr:
			for _, t := range d.siteTargets[n][x.Pos()] {
				for _, fl := range d.results[t] {
					if fl != nil {
						found = fl
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// selBaseIdent returns the identifier at the base of a selector chain
// (a for a.b.c), nil when the base is not an identifier.
func selBaseIdent(sel *ast.SelectorExpr) *ast.Ident {
	e := ast.Expr(sel)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

// paramObjsOf returns the callee's parameter objects in declaration
// order (nil placeholders for unnamed parameters) and whether the
// signature is variadic.
func paramObjsOf(t *CGNode) ([]types.Object, bool) {
	var ft *ast.FuncType
	if t.Decl != nil {
		ft = t.Decl.Type
	} else {
		ft = t.Lit.Type
	}
	if ft.Params == nil {
		return nil, false
	}
	variadic := false
	var out []types.Object
	for _, f := range ft.Params.List {
		if _, ok := f.Type.(*ast.Ellipsis); ok {
			variadic = true
		}
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, id := range f.Names {
			out = append(out, t.Pkg.Info.Defs[id])
		}
	}
	return out, variadic
}

// recvObjOf returns the callee's receiver object, nil for functions
// and unnamed receivers.
func recvObjOf(t *CGNode) types.Object {
	if t.Decl == nil || t.Decl.Recv == nil || len(t.Decl.Recv.List) == 0 {
		return nil
	}
	names := t.Decl.Recv.List[0].Names
	if len(names) == 0 {
		return nil
	}
	return t.Pkg.Info.Defs[names[0]]
}
