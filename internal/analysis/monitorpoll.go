package analysis

import (
	"go/ast"
)

// Monitorpoll enforces the hang-supervision contract from PR 2: a cycle
// loop — an unbounded `for` that drives the device by calling a Tick
// method — must poll the gpu.Monitor heartbeat/cancel channel, or the
// watchdog and wall-clock timeout that make 112-app sweeps survivable
// are silently bypassed (a livelocked cell would then burn its full
// cycle cap instead of dying in wall-clock time). Range loops over SMs
// inside a supervised loop are fine; the rule binds the outermost
// free-running loop.
var Monitorpoll = &Analyzer{
	Name: "monitorpoll",
	Doc: "flag unbounded cycle loops that call .Tick but never poll " +
		"gpu.Monitor (heartbeat publish + cancellation check)",
	Run: runMonitorpoll,
}

func runMonitorpoll(p *Pass) error {
	info := p.Info()
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			fs, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			ticks := false
			polls := false
			ast.Inspect(fs.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := funcFor(info, call)
				if fn == nil {
					return true
				}
				if fn.Name() == "Tick" && recvNamed(fn) != "" {
					ticks = true
				}
				if recvNamed(fn) == "Monitor" && fromPkg(fn, "internal/gpu") {
					polls = true
				}
				return true
			})
			if ticks && !polls {
				p.Reportf(fs.Pos(), "cycle loop drives .Tick but never polls gpu.Monitor: without a periodic Monitor heartbeat/cancel check the harness watchdog and timeout cannot stop this loop")
			}
			// Nested loops are visited by the outer Inspect already.
			return true
		})
	}
	return nil
}
