package analysis

import (
	"go/ast"
	"go/types"
)

// pollsMonitor reports whether fn is a gpu.Monitor method.
func pollsMonitor(fn *types.Func) bool {
	return fn != nil && recvNamed(fn) == "Monitor" && fromPkg(fn, "internal/gpu")
}

// Monitorpoll enforces the hang-supervision contract from PR 2: a cycle
// loop — an unbounded `for` that drives the device by calling a Tick
// method — must poll the gpu.Monitor heartbeat/cancel channel, or the
// watchdog and wall-clock timeout that make 112-app sweeps survivable
// are silently bypassed (a livelocked cell would then burn its full
// cycle cap instead of dying in wall-clock time). Range loops over SMs
// inside a supervised loop are fine; the rule binds the outermost
// free-running loop. Polling through one level of same-package helper
// (a heartbeat method whose body does the Monitor call) counts: the
// snapshot/audit work shares the beat, and factoring it out must not
// force a suppression.
var Monitorpoll = &Analyzer{
	Name: "monitorpoll",
	Doc: "flag unbounded cycle loops that call .Tick but never poll " +
		"gpu.Monitor (heartbeat publish + cancellation check), " +
		"directly or via a same-package helper",
	Run: runMonitorpoll,
}

func runMonitorpoll(p *Pass) error {
	info := p.Info()
	// First pass: same-package functions whose own bodies poll the
	// Monitor. A loop calling one of these is supervised transitively.
	pollers := map[*types.Func]bool{}
	for _, f := range p.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ast.Inspect(fd.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := funcFor(info, call); pollsMonitor(callee) {
					pollers[fn] = true
					return false
				}
				return true
			})
		}
	}
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			fs, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			ticks := false
			polls := false
			ast.Inspect(fs.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := funcFor(info, call)
				if fn == nil {
					return true
				}
				if fn.Name() == "Tick" && recvNamed(fn) != "" {
					ticks = true
				}
				if pollsMonitor(fn) || pollers[fn] {
					polls = true
				}
				return true
			})
			if ticks && !polls {
				p.Reportf(fs.Pos(), "cycle loop drives .Tick but never polls gpu.Monitor: without a periodic Monitor heartbeat/cancel check the harness watchdog and timeout cannot stop this loop")
			}
			// Nested loops are visited by the outer Inspect already.
			return true
		})
	}
	return nil
}
