package analysis

import (
	"go/ast"
	"strings"
)

// Clocktaint is the value-level half of the determinism contract. The
// determinism analyzer asks "does deterministic code *call* time.Now
// or the global math/rand?"; this one asks the finer question the
// dataflow engine (dataflow.go) makes answerable: "does a value
// *derived* from those sources reach state the reproduction's numbers
// rest on?" — a //snapshot:state field (the resumed run would diverge
// from the undisturbed one byte-for-byte), a stats-package counter
// (exported tables would stop being bit-deterministic), or a NextEvent
// result (fast-forward would skip to a wall-clock-dependent cycle).
//
// Wall-clock reads outside those sinks are legitimate — the harness
// times cells and paces snapshots with them — which is exactly why the
// call-level pass scopes itself to simulation packages and this pass
// instead follows the values: a time.Since in the harness is fine
// until its result is laundered, through locals, helper returns, and
// arguments, into snapshotted or aggregated state.
//
// Each finding carries the full value-flow chain from the source call
// to the sink store, hop by hop, so the propagation can be audited at
// the report. The engine's conservative bounds apply (see dataflow.go:
// aliasing of locals is out of model, taint never dies).
var Clocktaint = &Analyzer{
	Name: "clocktaint",
	Doc: "flag values derived from time.Now/time.Since or the global " +
		"math/rand stream that reach a //snapshot:state field, a stats " +
		"counter, or a NextEvent result — value-level determinism holes " +
		"the call-level pass cannot see",
	RunProgram: runClocktaint,
}

// clocktaintStatsScope matches the aggregation packages whose struct
// fields count as sinks ("repro/internal/stats" and fixture "stats"
// sub-packages alike).
var clocktaintStatsScope = []string{"stats"}

// clockSource classifies taint origins, mirroring the determinism
// analyzer's primitive set: time.Now/time.Since and the process-global
// math/rand functions. Methods on a seeded *rand.Rand and the
// rand.New/NewSource constructors are the sanctioned alternative and
// are not sources.
func clockSource(pkg *Package, n ast.Node) (string, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn := funcFor(pkg.Info, call)
	if fn == nil {
		return "", false
	}
	switch {
	case fromPkg(fn, "time") && (fn.Name() == "Now" || fn.Name() == "Since"):
		return "time." + fn.Name(), true
	case fromPkg(fn, "math/rand") || fromPkg(fn, "math/rand/v2"):
		if recvNamed(fn) != "" || fn.Name() == "New" || fn.Name() == "NewSource" {
			return "", false
		}
		return "math/rand." + fn.Name(), true
	}
	return "", false
}

func runClocktaint(pp *ProgramPass) error {
	d := RunDataflow(pp.Prog, TaintSpec{Source: clockSource})
	stateFields, _ := collectStateFields(pp.Prog)

	for _, ft := range d.FieldTaints {
		sf := ft.Field
		dot := strings.LastIndexByte(sf.owner, '.')
		ownerPkg, short := sf.owner[:dot], sf.owner[dot+1:]
		switch {
		case stateFields[sf] != nil:
			pp.ReportChainf(ft.Pkg, ft.Pos, ft.Flow.Chain(),
				"wall-clock/rand-derived value stored into //snapshot:state field %s.%s (%s) — snapshotted state must be cycle-derived or a resumed run diverges from the undisturbed one; derive the value from simulated cycles, or justify with //simlint:allow clocktaint",
				short, sf.field, ft.Flow.Chain())
		case pathIn(ownerPkg, clocktaintStatsScope):
			pp.ReportChainf(ft.Pkg, ft.Pos, ft.Flow.Chain(),
				"wall-clock/rand-derived value stored into stats field %s.%s (%s) — aggregated results must be bit-deterministic across identical runs; derive the value from simulated cycles, or justify with //simlint:allow clocktaint",
				short, sf.field, ft.Flow.Chain())
		}
	}

	for _, rt := range d.ReturnTaints {
		if rt.Node.Fn == nil {
			continue
		}
		if name := rt.Node.Fn.Name(); name != "NextEvent" && name != "nextEvent" {
			continue
		}
		pp.ReportChainf(rt.Pkg, rt.Pos, rt.Flow.Chain(),
			"%s returns a wall-clock/rand-derived value (%s) — fast-forward would skip to a cycle that depends on the host clock, breaking run-to-run equivalence; compute the wake-up cycle from simulated state, or justify with //simlint:allow clocktaint",
			rt.Node.Name, rt.Flow.Chain())
	}
	return nil
}
