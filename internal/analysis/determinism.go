package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// determinismScope names the packages whose results feed simulation
// state, stats aggregation, or exported experiment tables — exactly the
// code whose byte-determinism the reproduction's claims depend on
// (TestDeterminism / TestDeterministicTelemetry are the dynamic side of
// this contract).
var determinismScope = []string{
	"internal/gpu",
	"internal/smcore",
	"internal/regfile",
	"internal/core",
	"internal/stats",
	"internal/exp",
}

// determinismInScope decides whether a package's own lines are scanned
// directly. Fixture packages count as in scope so golden tests exercise
// the analyzer — except fixture sub-packages named "helper", which
// model out-of-scope code that scope code calls into (the
// interprocedural propagation path).
func determinismInScope(p *Package) bool {
	if p.Fixture {
		return !strings.HasSuffix(p.Path, "/helper")
	}
	return pathIn(p.Path, determinismScope)
}

// Determinism flags the three classic sources of run-to-run divergence
// in simulation and aggregation code: unordered map iteration, wall
// clock reads, and the process-global math/rand stream (whose sequence
// depends on whatever else consumed it). Seeded *rand.Rand instances
// (rand.New(rand.NewSource(seed))) are the sanctioned alternative.
//
// Since v2 the pass is interprocedural: the same primitives in
// out-of-scope packages are reported too when the function containing
// them is reachable, through the call graph, from any function of a
// scope package — a time.Now wrapped in a helper one package over is
// exactly as nondeterministic as an inline one. The diagnostic carries
// the call chain that reaches the site.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flag map iteration, time.Now/Since, and global math/rand use in " +
		"packages whose output must be bit-deterministic across identical " +
		"runs, and in any code those packages transitively call",
	RunProgram: runDeterminism,
}

// detPrimitive is one nondeterminism source found in a body.
type detPrimitive struct {
	pos token.Pos
	// what the site is, phrased to splice into both the direct and the
	// reached-via-chain message forms.
	what string
	fix  string
}

// scanDetPrimitives collects the nondeterminism primitives under root.
// When pruneLits is true, nested function literals are skipped (they
// are separate call-graph nodes scanned on their own).
func scanDetPrimitives(info *types.Info, pkg *Package, root ast.Node, pruneLits bool) []detPrimitive {
	var out []detPrimitive
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if pruneLits && n != root {
				return false
			}
		case *ast.RangeStmt:
			t := info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); ok {
				out = append(out, detPrimitive{
					pos:  n.Pos(),
					what: "range over " + types.TypeString(t, types.RelativeTo(pkg.Types)) + ": map iteration order is nondeterministic",
					fix:  "iterate sorted keys instead",
				})
			}
		case *ast.CallExpr:
			fn := funcFor(info, n)
			if fn == nil {
				return true
			}
			switch {
			case fromPkg(fn, "time") && (fn.Name() == "Now" || fn.Name() == "Since"):
				out = append(out, detPrimitive{
					pos:  n.Pos(),
					what: "time." + fn.Name() + ": wall-clock reads diverge between identical runs",
					fix:  "derive timing from simulated cycles",
				})
			case fromPkg(fn, "math/rand") || fromPkg(fn, "math/rand/v2"):
				if recvNamed(fn) != "" {
					return true // methods on a seeded *rand.Rand are fine
				}
				if fn.Name() == "New" || fn.Name() == "NewSource" {
					return true // constructing a seeded stream
				}
				out = append(out, detPrimitive{
					pos:  n.Pos(),
					what: "global math/rand." + fn.Name() + ": the shared stream's sequence depends on unrelated consumers",
					fix:  "use a seeded rand.New(rand.NewSource(seed))",
				})
			}
		}
		return true
	})
	return out
}

func runDeterminism(pp *ProgramPass) error {
	// Direct scan: every line of every in-scope package, including
	// package-level initializers.
	for _, pkg := range pp.Prog.Pkgs {
		if !determinismInScope(pkg) {
			continue
		}
		for _, f := range pkg.Files {
			for _, prim := range scanDetPrimitives(pkg.Info, pkg, f, false) {
				pp.Reportf(pkg, prim.pos, "%s and this package feeds simulation state or exported results; %s", prim.what, prim.fix)
			}
		}
	}

	// Interprocedural propagation: primitives in out-of-scope functions
	// that scope code transitively calls.
	g := pp.Prog.CallGraph()
	var roots []*CGNode
	for _, n := range g.Nodes {
		if determinismInScope(n.Pkg) {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	reach := g.Reach(roots, ReachOpts{})
	scanned := map[*CGNode]bool{}
	var scanReached func(n *CGNode, chain string)
	scanReached = func(n *CGNode, chain string) {
		if scanned[n] {
			return
		}
		scanned[n] = true
		for _, prim := range scanDetPrimitives(n.Pkg.Info, n.Pkg, n.Body(), true) {
			pp.ReportChainf(n.Pkg, prim.pos, chain,
				"%s, and this code is reached from deterministic simulation code (%s); %s or justify with //simlint:allow determinism",
				prim.what, chain, prim.fix)
		}
		// A literal created in a reached function may run through code the
		// graph cannot see (sort.Slice comparators, stdlib callbacks): treat
		// it as reached unless it has its own reach entry (then it is
		// scanned with its own, more precise chain).
		ast.Inspect(n.Body(), func(x ast.Node) bool {
			fl, ok := x.(*ast.FuncLit)
			if !ok {
				return true
			}
			if lit := g.LitNode(fl); lit != nil && reach[lit] == nil {
				scanReached(lit, chain+" → "+lit.Name)
			}
			// Either way the literal's body is handled by its own node's
			// scan; don't descend.
			return false
		})
	}
	for _, n := range g.Nodes {
		if determinismInScope(n.Pkg) {
			continue // direct scan covered it
		}
		step := reach[n]
		if step == nil || step.Prev == nil {
			continue
		}
		scanReached(n, Chain(reach, n))
	}
	return nil
}
