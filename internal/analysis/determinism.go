package analysis

import (
	"go/ast"
	"go/types"
)

// determinismScope names the packages whose results feed simulation
// state, stats aggregation, or exported experiment tables — exactly the
// code whose byte-determinism the reproduction's claims depend on
// (TestDeterminism / TestDeterministicTelemetry are the dynamic side of
// this contract).
var determinismScope = []string{
	"internal/gpu",
	"internal/smcore",
	"internal/regfile",
	"internal/core",
	"internal/stats",
	"internal/exp",
}

// Determinism flags the three classic sources of run-to-run divergence
// in simulation and aggregation code: unordered map iteration, wall
// clock reads, and the process-global math/rand stream (whose sequence
// depends on whatever else consumed it). Seeded *rand.Rand instances
// (rand.New(rand.NewSource(seed))) are the sanctioned alternative.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flag map iteration, time.Now/Since, and global math/rand use in " +
		"packages whose output must be bit-deterministic across identical runs",
	Run: runDeterminism,
}

func runDeterminism(p *Pass) error {
	if !p.Pkg.Fixture && !pathIn(p.Pkg.Path, determinismScope) {
		return nil
	}
	info := p.Info()
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); ok {
					p.Reportf(n.Pos(), "range over %s: map iteration order is nondeterministic and this package feeds simulation state or exported results; iterate sorted keys instead", types.TypeString(t, types.RelativeTo(p.Pkg.Types)))
				}
			case *ast.CallExpr:
				fn := funcFor(info, n)
				if fn == nil {
					return true
				}
				switch {
				case fromPkg(fn, "time") && (fn.Name() == "Now" || fn.Name() == "Since"):
					p.Reportf(n.Pos(), "time.%s in deterministic simulation code: wall-clock reads diverge between identical runs; derive timing from simulated cycles", fn.Name())
				case fromPkg(fn, "math/rand") || fromPkg(fn, "math/rand/v2"):
					if recvNamed(fn) != "" {
						return true // methods on a seeded *rand.Rand are fine
					}
					if fn.Name() == "New" || fn.Name() == "NewSource" {
						return true // constructing a seeded stream
					}
					p.Reportf(n.Pos(), "global math/rand.%s: the shared stream's sequence depends on unrelated consumers; use a seeded rand.New(rand.NewSource(seed))", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
