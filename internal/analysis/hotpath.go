package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// Hotpath flags per-cycle code that would put allocation or formatting
// on the simulator's critical path: the cycle loop runs tens of
// millions of iterations per sweep cell, so one stray allocation per
// tick dominates a 112-app campaign's wall time (the paper-scale sweeps
// PR 2's harness exists to serve).
//
// A function is "hot" when its name contains one of the per-cycle stage
// words (Tick, Cycle, Issue, Collect, Writeback) as a CamelCase word,
// or when its doc comment carries //simlint:hotpath. Constructor-style
// and reporting-style names (New*, Trace*, Reset*, Set*, With*, Name*,
// String*) are exempt — they run once, not per cycle. Branches that end
// in panic are cold invariant checks and are skipped.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc: "flag defer, fmt calls, make/new/&composite allocations, closure " +
		"literals, and implicit interface boxing inside per-cycle functions",
	Run: runHotpath,
}

var hotWords = map[string]bool{
	"tick": true, "cycle": true, "issue": true, "collect": true, "writeback": true,
}

var coldPrefixWords = map[string]bool{
	"new": true, "trace": true, "reset": true, "set": true,
	"with": true, "name": true, "string": true,
}

// camelWords splits an identifier into CamelCase words: "issueTick" ->
// [issue, Tick], "IssueCoV" -> [Issue, Co, V].
func camelWords(name string) []string {
	var words []string
	start := 0
	runes := []rune(name)
	for i := 1; i < len(runes); i++ {
		prevLower := unicode.IsLower(runes[i-1]) || unicode.IsDigit(runes[i-1])
		if unicode.IsUpper(runes[i]) && (prevLower ||
			(i+1 < len(runes) && unicode.IsLower(runes[i+1]))) {
			words = append(words, string(runes[start:i]))
			start = i
		}
	}
	words = append(words, string(runes[start:]))
	return words
}

// isHotFunc decides whether fd is per-cycle by annotation or name.
func isHotFunc(fd *ast.FuncDecl) bool {
	if hasDirective(fd.Doc, "hotpath") {
		return true
	}
	words := camelWords(fd.Name.Name)
	if len(words) == 0 || coldPrefixWords[strings.ToLower(words[0])] {
		return false
	}
	for _, w := range words {
		if hotWords[strings.ToLower(w)] {
			return true
		}
	}
	return false
}

func runHotpath(p *Pass) error {
	for _, f := range p.Files() {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotFunc(fd) {
				continue
			}
			checkHotBody(p, fd)
		}
	}
	return nil
}

func checkHotBody(p *Pass, fd *ast.FuncDecl) {
	info := p.Info()
	name := fd.Name.Name

	// Branches that terminate in panic are cold invariant checks.
	cold := map[*ast.BlockStmt]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ifs, ok := n.(*ast.IfStmt); ok && endsInPanic(info, ifs.Body) {
			cold[ifs.Body] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BlockStmt); ok && cold[b] {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			p.Reportf(n.Pos(), "defer in hot function %s: deferred calls cost a frame record per invocation; unwind inline", name)
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "closure literal in hot function %s allocates per call when it escapes; hoist it to a field or method built once", name)
			return false // the literal's body is reported once, not re-scanned
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					p.Reportf(n.Pos(), "&composite literal in hot function %s heap-allocates per call; reuse a preallocated value", name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(p, info, name, n)
		}
		return true
	})
}

func checkHotCall(p *Pass, info *types.Info, name string, call *ast.CallExpr) {
	switch {
	case isBuiltin(info, call, "make"):
		p.Reportf(call.Pos(), "make in hot function %s allocates per call; pre-size the buffer at construction and reuse it", name)
		return
	case isBuiltin(info, call, "new"):
		p.Reportf(call.Pos(), "new in hot function %s allocates per call; reuse a preallocated value", name)
		return
	}
	if fn := funcFor(info, call); fn != nil && fromPkg(fn, "fmt") {
		p.Reportf(call.Pos(), "fmt.%s in hot function %s formats and allocates per call; precompute the string or move it off the per-cycle path", fn.Name(), name)
		return
	}
	// Interface conversion: T(x) where T is an interface type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if types.IsInterface(tv.Type) && boxes(info.TypeOf(call.Args[0])) {
			p.Reportf(call.Pos(), "conversion to interface in hot function %s boxes the value (one allocation per call)", name)
		}
		return
	}
	// Implicit boxing at call arguments whose parameter is an interface.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // a slice passed through does not box
			}
			paramT = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			paramT = sig.Params().At(i).Type()
		}
		if paramT == nil || !types.IsInterface(paramT) {
			continue
		}
		if boxes(info.TypeOf(arg)) {
			p.Reportf(arg.Pos(), "argument boxed into %s in hot function %s (one allocation per call); take a concrete parameter or pass a pointer", types.TypeString(paramT, nil), name)
		}
	}
}

// boxes reports whether converting a value of type t to an interface
// allocates: true for concrete non-pointer values (structs, ints, ...),
// false for pointers, interfaces, nil, and reference-shaped types whose
// interface conversion stores the word directly.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return true
}
