package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// Hotpath flags per-cycle code that would put allocation or formatting
// on the simulator's critical path: the cycle loop runs tens of
// millions of iterations per sweep cell, so one stray allocation per
// tick dominates a 112-app campaign's wall time (the paper-scale sweeps
// PR 2's harness exists to serve).
//
// A function is "hot" when its name contains one of the per-cycle stage
// words (Tick, Cycle, Issue, Collect, Writeback) as a CamelCase word,
// or when its doc comment carries //simlint:hotpath. Constructor-style
// and reporting-style names (New*, Trace*, Reset*, Set*, With*, Name*,
// String*) are exempt — they run once, not per cycle. Branches that end
// in panic are cold invariant checks and are skipped.
//
// Since v2 the pass is interprocedural: every function transitively
// reachable from a hot root through the call graph — including
// interface-dispatched methods (a scheduler's Pick) and function
// literals called through stored function values — is held to the same
// rules, with the discovery call chain printed in the diagnostic.
// Traversal prunes at cold-named callees, at functions whose doc
// comment carries //simlint:cold (setup or per-epoch work a hot loop
// invokes off its steady-state path), and at call sites inside
// panic-terminated branches, and is bounded at hotChainDepth calls from
// the root.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc: "flag defer, fmt calls, make/new/&composite allocations, closure " +
		"literals, and implicit interface boxing inside per-cycle functions " +
		"and everything transitively reachable from them",
	RunProgram: runHotpath,
}

// hotChainDepth bounds the interprocedural traversal: findings are
// reported at most this many calls away from a hot root. Deep chains
// past the bound are a documented soundness limit — in practice the
// cycle loop's helpers sit one or two calls down.
const hotChainDepth = 4

var hotWords = map[string]bool{
	"tick": true, "cycle": true, "issue": true, "collect": true, "writeback": true,
}

var coldPrefixWords = map[string]bool{
	"new": true, "trace": true, "reset": true, "set": true,
	"with": true, "name": true, "string": true,
}

// camelWords splits an identifier into CamelCase words: "issueTick" ->
// [issue, Tick], "IssueCoV" -> [Issue, Co, V].
func camelWords(name string) []string {
	var words []string
	start := 0
	runes := []rune(name)
	for i := 1; i < len(runes); i++ {
		prevLower := unicode.IsLower(runes[i-1]) || unicode.IsDigit(runes[i-1])
		if unicode.IsUpper(runes[i]) && (prevLower ||
			(i+1 < len(runes) && unicode.IsLower(runes[i+1]))) {
			words = append(words, string(runes[start:i]))
			start = i
		}
	}
	words = append(words, string(runes[start:]))
	return words
}

// coldNamed reports whether the function name starts with an exempt
// constructor/reporting word.
func coldNamed(name string) bool {
	words := camelWords(name)
	return len(words) > 0 && coldPrefixWords[strings.ToLower(words[0])]
}

// isHotFunc decides whether fd is per-cycle by annotation or name.
func isHotFunc(fd *ast.FuncDecl) bool {
	if hasDirective(fd.Doc, "hotpath") {
		return true
	}
	if coldNamed(fd.Name.Name) || hasDirective(fd.Doc, "cold") {
		return false
	}
	for _, w := range camelWords(fd.Name.Name) {
		if hotWords[strings.ToLower(w)] {
			return true
		}
	}
	return false
}

func runHotpath(pp *ProgramPass) error {
	g := pp.Prog.CallGraph()
	var roots []*CGNode
	for _, n := range g.Nodes {
		if n.Decl != nil && isHotFunc(n.Decl) {
			roots = append(roots, n)
		}
	}
	reach := g.Reach(roots, ReachOpts{
		MaxDepth:      hotChainDepth,
		SkipColdEdges: true,
		Skip: func(t *CGNode) bool {
			if t.Decl == nil {
				return false // literals have no exempting name
			}
			return coldNamed(t.Decl.Name.Name) || hasDirective(t.Decl.Doc, "cold")
		},
	})
	for _, n := range g.Nodes {
		step := reach[n]
		if step == nil {
			continue
		}
		if step.Prev == nil {
			// A hot root: report in the v1 per-function form.
			checkHotBody(pp, n, "hot function "+n.Decl.Name.Name, "")
			continue
		}
		chain := Chain(reach, n)
		checkHotBody(pp, n, n.Name+" (reachable from the hot path: "+chain+")", chain)
	}
	return nil
}

// checkHotBody reports allocation and formatting sites in one node's
// body. where names the function for the message ("hot function
// issueTick", or a reached function with its chain); chain, when
// non-empty, is carried structured on the diagnostics.
func checkHotBody(pp *ProgramPass, n *CGNode, where, chain string) {
	info := n.Pkg.Info
	report := func(pos token.Pos, format string, args ...any) {
		pp.ReportChainf(n.Pkg, pos, chain, format, args...)
	}

	// Branches that terminate in panic are cold invariant checks.
	cold := coldBlocks(info, n.Body())

	ast.Inspect(n.Body(), func(x ast.Node) bool {
		if b, ok := x.(*ast.BlockStmt); ok && cold[b] {
			return false
		}
		switch x := x.(type) {
		case *ast.DeferStmt:
			report(x.Pos(), "defer in %s: deferred calls cost a frame record per invocation; unwind inline", where)
		case *ast.FuncLit:
			report(x.Pos(), "closure literal in %s allocates per call when it escapes; hoist it to a field or method built once", where)
			return false // the literal's body is reported once, not re-scanned
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					report(x.Pos(), "&composite literal in %s heap-allocates per call; reuse a preallocated value", where)
				}
			}
		case *ast.CallExpr:
			// A panic call is the cold unwind path: it runs at most once per
			// process, so its argument (typically a formatted message) is
			// exempt, subtree included.
			if isBuiltin(info, x, "panic") {
				return false
			}
			checkHotCall(report, info, where, x)
		}
		return true
	})
}

func checkHotCall(report func(token.Pos, string, ...any), info *types.Info, where string, call *ast.CallExpr) {
	switch {
	case isBuiltin(info, call, "make"):
		report(call.Pos(), "make in %s allocates per call; pre-size the buffer at construction and reuse it", where)
		return
	case isBuiltin(info, call, "new"):
		report(call.Pos(), "new in %s allocates per call; reuse a preallocated value", where)
		return
	}
	if fn := funcFor(info, call); fn != nil && fromPkg(fn, "fmt") {
		report(call.Pos(), "fmt.%s in %s formats and allocates per call; precompute the string or move it off the per-cycle path", fn.Name(), where)
		return
	}
	// Interface conversion: T(x) where T is an interface type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if types.IsInterface(tv.Type) && boxes(info.TypeOf(call.Args[0])) {
			report(call.Pos(), "conversion to interface in %s boxes the value (one allocation per call)", where)
		}
		return
	}
	// Implicit boxing at call arguments whose parameter is an interface.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // a slice passed through does not box
			}
			paramT = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			paramT = sig.Params().At(i).Type()
		}
		if paramT == nil || !types.IsInterface(paramT) {
			continue
		}
		if boxes(info.TypeOf(arg)) {
			report(arg.Pos(), "argument boxed into %s in %s (one allocation per call); take a concrete parameter or pass a pointer", types.TypeString(paramT, nil), where)
		}
	}
}

// boxes reports whether converting a value of type t to an interface
// allocates: true for concrete non-pointer values (structs, ints, ...),
// false for pointers, interfaces, nil, and reference-shaped types whose
// interface conversion stores the word directly.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return true
}
