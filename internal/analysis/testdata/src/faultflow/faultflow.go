// Package faultflow is the golden-file fixture for the faultflow
// analyzer: harness fault values dropped on the floor, recover() outside
// the harness, and the sanctioned handling patterns.
package faultflow

import "repro/internal/harness"

func runCell() *harness.SimFault { return nil }

func runCells() (int, harness.CellErrors) { return 0, nil }

// dropAll discards the fault entirely: the cell's failure vanishes.
func dropAll() {
	runCell() // want "discards its .harness.SimFault result"
}

// blanks assigns faults to _, single- and multi-value forms.
func blanks() {
	_ = runCell()      // want "harness.SimFault assigned to _"
	n, _ := runCells() // want "harness.CellErrors assigned to _"
	_ = n
}

// handled propagates the fault — the sanctioned pattern.
func handled() error {
	if f := runCell(); f != nil {
		return f
	}
	return nil
}

// badRecover swallows panics before the harness can classify them.
func badRecover() {
	defer func() {
		if r := recover(); r != nil { // want "recover.. outside internal/harness"
			_ = r
		}
	}()
}

// bestEffort is a deliberate, justified suppression.
func bestEffort() {
	runCell() //simlint:allow faultflow -- smoke path; the caller's aggregate check re-detects the fault
}
