// Package determinism is the golden-file fixture for the determinism
// analyzer: map iteration, wall-clock reads, and the global math/rand
// stream in simulation-scope code, next to the sanctioned alternatives.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

type simState struct {
	scoreboard map[int]int64
	rng        *rand.Rand
}

// collectTotals sums in map order — the classic nondeterminism bug when
// float accumulation or tie-breaking depends on visit order.
func (s *simState) collectTotals() int64 {
	var total int64
	for _, v := range s.scoreboard { // want "map iteration order is nondeterministic"
		total += v
	}
	return total
}

// sortedKeys is the sanctioned pattern: the range only collects keys and
// the caller sorts before use, so the site is suppressed with a reason.
func (s *simState) sortedKeys() []int {
	keys := make([]int, 0, len(s.scoreboard))
	for k := range s.scoreboard { //simlint:allow determinism -- keys are sorted before any order-dependent use
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// stamp reads the wall clock twice; both reads diverge between runs.
func (s *simState) stamp() float64 {
	start := time.Now() // want "wall-clock reads diverge between identical runs"
	s.collectTotals()
	return time.Since(start).Seconds() // want "wall-clock reads diverge between identical runs"
}

// jitter consumes the process-global stream, whose sequence depends on
// every other consumer in the binary.
func (s *simState) jitter() int {
	return rand.Intn(4) // want "global math/rand.Intn"
}

// seeded constructs and uses a private stream — both calls are fine.
func (s *simState) seeded(seed int64) int64 {
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(seed))
	}
	return s.rng.Int63()
}
