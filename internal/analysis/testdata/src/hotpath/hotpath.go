// Package hotpath is the golden-file fixture for the hotpath analyzer:
// every allocation shape it flags inside per-cycle functions, plus the
// exemptions (cold names, panic branches, //simlint:allow).
package hotpath

import "fmt"

type event struct{ cycle int64 }

func sink(v any) { _ = v }

type queue struct {
	buf     []event
	scratch []event
}

func (q *queue) flush() {}

// Tick is hot by name; every allocation shape inside it is a finding.
func (q *queue) Tick(cycle int64) {
	defer q.flush()           // want "defer in hot function"
	e := &event{cycle: cycle} // want "composite literal in hot function"
	_ = e
	tmp := make([]event, 8) // want "make in hot function"
	_ = tmp
	p := new(event) // want "new in hot function"
	_ = p
	msg := fmt.Sprintf("cycle %d", cycle) // want "fmt.Sprintf in hot function"
	_ = msg
	fn := func() { q.flush() } // want "closure literal in hot function"
	fn()
	sink(event{cycle: cycle})     // want "argument boxed into"
	v := any(event{cycle: cycle}) // want "conversion to interface in hot function"
	_ = v
}

// issueTick demonstrates the sanctioned grow-once suppression and the
// cold panic-branch exemption.
func (q *queue) issueTick() {
	if q.buf == nil {
		panic(fmt.Sprintf("queue %p not initialized", q)) // cold branch: not flagged
	}
	if cap(q.scratch) == 0 {
		q.scratch = make([]event, 0, 64) //simlint:allow hotpath -- grow-once scratch buffer; amortized to zero per cycle
	}
}

//simlint:hotpath
func (q *queue) drain() {
	q.scratch = make([]event, 0, 64) // want "make in hot function"
}

// newQueue has a cold-prefix name: constructor allocations are fine.
func newQueue() *queue {
	return &queue{buf: make([]event, 0, 64)}
}

// collectSamples has a hot stage word in its name, but the cold
// directive overrides name-based classification: not a root.
//
//simlint:cold -- per-epoch aggregation, not the per-cycle collect stage
func collectSamples() []event {
	return make([]event, 0, 128)
}
