// Package hotpath_ip is the golden-file fixture for the hotpath
// analyzer's interprocedural mode: allocation sites in helpers the
// cycle loop reaches through static calls, interface dispatch, and
// stored function values, next to every pruning rule — cold names,
// //simlint:cold, panic branches, and the depth bound.
package hotpath_ip

// picker is the dispatch point: the call graph resolves Pick to every
// concrete method with this name and signature.
type picker interface {
	Pick(n int) int
}

// greedy is the concrete scheduler behind the interface.
type greedy struct {
	weights []int
}

// Pick allocates on the dispatched path.
func (g *greedy) Pick(n int) int {
	tmp := make([]int, n) // want "make in hotpath_ip.greedy.Pick \\(reachable from the hot path: hotpath_ip.engine.issueTick → hotpath_ip.greedy.Pick\\)"
	return len(tmp) + len(g.weights)
}

// engine drives one sub-core.
type engine struct {
	sched picker
	score func(int) int
	buf   []int
	n     int
}

// newEngine wires the stored function value the dynamic-call resolver
// must follow; cold-named, so never itself on the hot path.
func newEngine() *engine {
	return &engine{sched: &greedy{}, score: weightOf}
}

// weightOf is only ever called through the stored engine.score value.
func weightOf(n int) int {
	box := &counter{} // want "&composite literal in hotpath_ip.weightOf"
	return box.add(n)
}

// counter is scratch state for weightOf.
type counter struct{ v int }

func (c *counter) add(n int) int {
	c.v += n
	return c.v
}

// issueTick is the hot root: its own body is held to the v1 rules and
// everything it reaches to the v2 chain rules.
func (e *engine) issueTick() {
	defer e.flush() // want "defer in hot function issueTick"
	if e.n < 0 {
		panic("negative occupancy") // the cold unwind path: exempt, subtree included
	}
	e.n = e.sched.Pick(e.n)
	e.n += e.score(e.n)
	e.stage()
	e.buf = e.newBuf()
	e.refill()
	e.hop1()
}

// flush is reached but clean.
func (e *engine) flush() {
	e.n = 0
}

// stage allocates one static call below the root.
func (e *engine) stage() {
	e.buf = append(e.buf, make([]int, 4)...) // want "make in hotpath_ip.engine.stage \\(reachable from the hot path: hotpath_ip.engine.issueTick → hotpath_ip.engine.stage\\)"
}

// newBuf is cold-named: constructor-style, pruned from the traversal.
func (e *engine) newBuf() []int {
	return make([]int, 8)
}

// refill runs once per epoch when the queue drains, not per cycle.
//
//simlint:cold
func (e *engine) refill() {
	e.buf = make([]int, 0, 64)
}

// hop1..hop4 are a clean chain exactly hotChainDepth calls long;
// deepAlloc sits one call past the bound and must stay unreported — the
// documented soundness limit of the traversal.
func (e *engine) hop1() { e.hop2() }
func (e *engine) hop2() { e.hop3() }
func (e *engine) hop3() { e.hop4() }
func (e *engine) hop4() { e.deepAlloc() }

func (e *engine) deepAlloc() {
	e.buf = make([]int, 16)
}
