// Package monitorpoll is the golden-file fixture for the monitorpoll
// analyzer: unbounded cycle loops with and without the gpu.Monitor
// heartbeat/cancel poll the sweep watchdog depends on.
package monitorpoll

import "repro/internal/gpu"

type device struct {
	mon  *gpu.Monitor
	done bool
}

func (d *device) Tick() {}

// runUnsupervised free-runs the device: the watchdog cannot stop it.
func runUnsupervised(d *device) {
	for !d.done { // want "never polls gpu.Monitor"
		d.Tick()
	}
}

// runSupervised polls the monitor every iteration — the contract.
func runSupervised(d *device) {
	for !d.done {
		d.Tick()
		if d.mon.Canceled() {
			return
		}
	}
}

// heartbeat bundles the monitor poll with other periodic work, the way
// the real cycle loop factors snapshots and audits into one beat.
func (d *device) heartbeat() bool {
	return d.mon.Canceled()
}

// runViaHeartbeat polls through the helper: one level of same-package
// indirection is supervised, no finding.
func runViaHeartbeat(d *device) {
	for !d.done {
		d.Tick()
		if d.heartbeat() {
			return
		}
	}
}

// drain ranges over a slice: range loops are out of scope by design.
func drain(devs []*device) {
	for _, dev := range devs {
		dev.Tick()
	}
}

// runBounded is a justified suppression: 16 iterations cannot livelock.
func runBounded(d *device) {
	for i := 0; i < 16; i++ { //simlint:allow monitorpoll -- bounded warm-up loop; cannot livelock
		d.Tick()
	}
}
