// Package snapshotguard is the golden-file fixture for the
// snapshotguard analyzer: manifest/struct drift in every direction the
// rule covers, plus a healthy pair and a suppressed site that must stay
// silent.
package snapshotguard

// engine is the healthy case: every field is in the ledger, every key
// names a field, every value says "encoded" or "skip:".
//
//snapshot:state
type engine struct {
	cycle int64
	queue []int
	tmp   int
}

var engineManifest = map[string]string{
	"cycle": "encoded",
	"queue": "encoded (order is architectural)",
	"tmp":   "skip: per-tick scratch, empty between cycles",
}

// widget is marked state but nobody wrote its manifest.
//
//snapshot:state
type widget struct { // want "marked //snapshot:state but no <x>Manifest matches it"
	a int
}

// gadget has a manifest that drifted: a field was added without an
// entry, an entry outlived its field, and one value is free-form prose.
type gadget struct {
	a int
	b int // want "field gadget.b is not in gadgetManifest"
}

var gadgetManifest = map[string]string{
	"a":    "probably fine", // want "neither \"encoded...\" nor \"skip: reason\""
	"gone": "encoded",       // want "entry \"gone\" names no field of gadget"
}

// orphanManifest names no struct in this package at all.
var orphanManifest = map[string]string{ // want "orphanManifest matches no struct"
	"x": "encoded",
}

// sprocket exercises the suppression layer: the missing field is
// acknowledged in place, so the analyzer must stay silent on it.
type sprocket struct {
	a int
	//simlint:allow snapshotguard -- migration in flight, encoder lands next PR
	b int
}

var sprocketManifest = map[string]string{
	"a": "encoded",
}

// Embedded fields take their type name, exactly as reflection (and
// snapshot.Coverage) sees them.
type base struct{ n int }

var baseManifest = map[string]string{"n": "encoded"}

type derived struct {
	base // want "field derived.base is not in derivedManifest"
	m    int
}

var derivedManifest = map[string]string{
	"m": "encoded",
}

func use() (engine, widget, gadget, sprocket, derived) {
	return engine{}, widget{}, gadget{}, sprocket{}, derived{}
}
