// Package attrib models the issue-attribution site one package over
// from the counter declarations (internal/smcore, in the real tree):
// the program-wide mutation scan must reach it.
package attrib

import "fixture/cpiguard"

// Charge bumps counters on another package's SubCore. Cycles is
// ledgered; Orphan is the cross-package drift.
func Charge(s *cpiguard.SubCore) {
	s.Cycles++
	s.Orphan++ // want "SubCore.Orphan is mutated here but has no cpiLedger entry"
}
