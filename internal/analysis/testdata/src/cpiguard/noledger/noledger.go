// Package noledger declares the CPI accounting shape with no ledger at
// all — the bootstrap finding that points at the missing map rather
// than at every field.
package noledger

// SubCore carries counters, but nobody wrote the ledger.
type SubCore struct { // want "this package has no cpiLedger"
	N int64
}

// CPI is empty; the missing ledger is the only finding here.
func (s *SubCore) CPI() {}
