// Package cpiguard is the golden-file fixture for the cpiguard
// analyzer: every way the CPI-stack wiring can drift from the CheckCPI
// identity — a dropped component, an unaccounted stall reason, ledger
// drift in both directions, a malformed classification — next to
// healthy counters and a suppressed site that must stay silent.
package cpiguard

// CPIComponent indexes the per-sub-core CPI stack.
type CPIComponent int

const (
	CPIBase CPIComponent = iota
	CPIMem
	CPIGhost // want "CPI component CPIGhost is never assigned in \\(\\*SubCore\\).CPI"
	NumCPIComponents
)

// StallReason classifies why a cycle issued nothing.
type StallReason int

const (
	StallNone StallReason = iota
	StallMem
	StallLost // want "stall reason StallLost is neither consulted in \\(\\*SubCore\\).CPI"
	NumStallReasons
)

// SubCore is the per-sub-core counter block the ledger classifies.
type SubCore struct {
	Cycles      int64
	MemCycles   int64 // want "classified cycle in cpiLedger but never read in \\(\\*SubCore\\).CPI"
	Issued      int64
	Orphan      int64 // want "counter field SubCore.Orphan has no cpiLedger entry"
	StallCycles [NumStallReasons]int64
}

var cpiLedger = map[string]string{
	"Cycles":      "cycle: the CPIBase slice",
	"MemCycles":   "cycle: the CPIMem slice",
	"Issued":      "event: instruction count, not a cycle bucket",
	"StallCycles": "cycle: per-reason buckets",
	"StallNone":   "event: marks an issued cycle at attribution time",
	"Gone":        "maybe", // want "the ledger is a classification" "names no SubCore field and no StallReason constant"
}

// CPI folds the counters into the component stack. CPIGhost is the
// deliberately dropped term, and MemCycles the ledgered-but-unread
// counter, that the analyzer must catch.
func (s *SubCore) CPI(c *[NumCPIComponents]float64) {
	cycles := float64(s.Cycles)
	c[CPIBase] = cycles
	c[CPIMem] = float64(s.StallCycles[StallMem])
}

// count attributes one issued instruction. Issued is event-ledgered;
// Orphan is the drift the program-wide mutation scan must catch.
func (s *SubCore) count() {
	s.Issued++
	s.Orphan++ // want "SubCore.Orphan is mutated here but has no cpiLedger entry"
}

// reset clears the scratch counter; the suppression acknowledges the
// pending ledger migration in place, so the analyzer must stay silent.
func (s *SubCore) reset() {
	s.Orphan = 0 //simlint:allow cpiguard -- ledger migration in flight, entry lands with the encoder
}
