// Package helper models out-of-scope support code that scope code
// calls into. Fixture sub-packages named "helper" are excluded from
// the direct scan, so every finding here must arrive through the call
// graph — and code nothing in scope reaches must stay silent.
package helper

import (
	"math/rand"
	"sort"
	"time"
)

// Stamp wraps the wall clock one package away from simulation scope.
func Stamp() int64 {
	return time.Now().UnixNano() // want "reached from deterministic simulation code \\(determinism_ip.sim.runCell → helper.Stamp\\)"
}

// Merge folds per-bank tallies in map order.
func Merge(m map[int]int64) int64 {
	var t int64
	for _, v := range m { // want "map iteration order is nondeterministic"
		t += v
	}
	return t
}

// Jitter consumes the process-global stream.
func Jitter() int64 {
	return rand.Int63() // want "global math/rand.Int63"
}

// SortRows hands a comparator to sort.Slice as a value — a call edge
// the graph cannot see — so literals created in reached code count as
// reached themselves.
func SortRows(rows []int64) {
	sort.Slice(rows, func(i, j int) bool {
		d := time.Since(time.Unix(0, rows[i])) // want "reached from deterministic simulation code"
		return d > 0 && rows[i] < rows[j]
	})
}

// Orphan is never called from scope code; the interprocedural pass
// must stay silent on it.
func Orphan() time.Time {
	return time.Now()
}
