// Package determinism_ip is the golden-file fixture for the
// determinism analyzer's interprocedural mode: simulation-scope code
// (this package) calling nondeterminism wrapped in an out-of-scope
// helper package, which must be reported with the discovery chain.
package determinism_ip

import (
	"fixture/determinism_ip/helper"
	"time"
)

// sim is the scope-side state the helpers feed.
type sim struct {
	cycles int64
	rows   []int64
}

// runCell drives every helper the analyzer must follow.
func (s *sim) runCell(m map[int]int64) {
	s.cycles += helper.Stamp()
	s.cycles += helper.Merge(m)
	s.cycles += helper.Jitter()
	helper.SortRows(s.rows)
}

// stampDirect is the v1 case: the primitive sits in scope code itself.
func (s *sim) stampDirect() int64 {
	return time.Now().UnixNano() // want "this package feeds simulation state or exported results"
}
