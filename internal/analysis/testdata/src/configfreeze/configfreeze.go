// Package configfreeze is the golden fixture for the config-
// immutability analyzer: writes into config-package structs are legal
// only through function-local value copies (pre-construction build-up)
// or inside the config package itself; everything live is frozen.
package configfreeze

import "fixture/configfreeze/config"

// device models gpu.GPU: it captures the config by value at
// construction.
type device struct {
	cfg config.GPU
}

// newDevice is a constructor: exempt by role.
func newDevice(cfg config.GPU) *device {
	return &device{cfg: cfg}
}

// build mutates a function-local value before construction — the
// sanctioned idiom, clean.
func build() *device {
	cfg := config.Default().WithAudit(true)
	cfg.NumSMs = 4
	return newDevice(cfg)
}

// tweak writes into the live, embedded config.
func (d *device) tweak() {
	d.cfg.NumSMs = 8 // want "config field GPU.NumSMs written outside a constructor/option func"
}

// mutate writes through a pointer into a live config.
func mutate(p *config.GPU) {
	p.Audit = true // want "config field GPU.Audit written outside a constructor/option func"
}

// alias obtains a pointer into the live config first; the finding
// carries the value-flow chain showing where it came from.
func alias(d *device) {
	p := &d.cfg
	p.NumSMs = 1 // want "config field GPU.NumSMs written outside a constructor/option func.*obtained via"
}

// reseat replaces the whole embedded config.
func reseat(d *device) {
	d.cfg = config.Default() // want "whole config value device.cfg replaced outside a constructor/option func"
}

// reseatPtr replaces the pointee wholesale.
func reseatPtr(p *config.GPU) {
	*p = config.Default() // want "config value replaced through a pointer outside a constructor/option func"
}

// bump increments through the pointer.
func bump(p *config.GPU) {
	p.NumSMs++ // want "config field GPU.NumSMs incremented outside a constructor/option func"
}

// waived demonstrates the suppression hatch.
func waived(p *config.GPU) {
	p.NumSMs = 2 //simlint:allow configfreeze -- fixture: demonstrates suppression
}
