// Package config declares the frozen configuration type. Its own
// declarations — constructors, option methods — may write config
// fields; everyone else gets a value copy that must stay private.
package config

// GPU is the device configuration, captured by value at construction.
type GPU struct {
	NumSMs int
	Audit  bool
}

// Default returns the baseline configuration.
func Default() GPU { return GPU{NumSMs: 2} }

// WithAudit returns a copy with auditing enabled: option methods
// mutate their value receiver, which is construction, not a violation.
func (c GPU) WithAudit(on bool) GPU {
	c.Audit = on
	return c
}
