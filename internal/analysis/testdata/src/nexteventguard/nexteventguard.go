// Package nexteventguard is the golden-file fixture for the
// nexteventguard analyzer: a fast-forward soundness hole (Tick-evolved
// state invisible to NextEvent) next to every healthy consultation
// pattern — direct reads, reads through a quiescence helper, read-only
// and write-only fields — plus a suppressed scratch field and a type
// whose Tick has no NextEvent partner.
package nexteventguard

// engine pairs Tick with NextEvent, so its quiescence contract is
// guarded.
//
//snapshot:state
type engine struct {
	credits  int64 // want "field engine.credits is read and mutated on the Tick path but never consulted by any NextEvent"
	fill     int64
	inflight int64
	drainTo  int64
	log      int64
	//simlint:allow nexteventguard -- per-tick scratch, rebuilt before every use; quiescence never depends on it
	scratch int64
	pad     scratchpad
}

// scratchpad is not snapshot state; its fields are outside the
// contract.
type scratchpad struct {
	n int64
}

// Tick advances one cycle. credits evolves only through the helper —
// the interprocedural path the per-function v1 pass could not see.
func (e *engine) Tick(now int64) {
	e.spend()
	e.fill++
	if e.fill > e.drainTo {
		e.fill = 0
	}
	e.inflight++
	e.log = now
	e.scratch++
	e.pad.n++
}

// spend burns credits one call below Tick.
func (e *engine) spend() {
	if e.credits > 0 {
		e.credits--
	}
}

// quiescent is the consultation helper NextEvent reaches; reading
// inflight here is what keeps that field sound.
func (e *engine) quiescent() bool {
	return e.inflight == 0
}

// NextEvent consults fill directly, drainTo as the horizon, and
// inflight through the helper. credits is the hole.
func (e *engine) NextEvent(now int64) int64 {
	if !e.quiescent() || e.fill > 0 {
		return now + 1
	}
	return now + e.drainTo
}

// ticker has a Tick but no NextEvent: it is never fast-forwarded, so
// its state is out of contract and must stay unflagged.
//
//snapshot:state
type ticker struct {
	n int64
}

// Tick drains the counter; no finding, ticker has no NextEvent.
func (t *ticker) Tick() {
	if t.n > 0 {
		t.n--
	}
}
