// Package goroutineshare is the golden fixture for the static sharing
// analyzer: variables captured by more than one goroutine launch (or
// one launch inside a loop) and written without a lexically visible
// Lock, atomic, or channel hand-off.
package goroutineshare

import "sync"

// fanout launches one goroutine per item: the looped root counts
// double, so the captured counter is shared, and the bare increment is
// the classic lost-update race.
func fanout(n int) int {
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total++ // want "unguarded increment of total"
		}()
	}
	wg.Wait()
	return total
}

// guarded is the same pattern with the mutex held: clean.
func guarded(n int) int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// twoRoots: two distinct goroutines write the same captured map.
func twoRoots() map[string]int {
	m := map[string]int{}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		m["a"] = 1 // want "unguarded write of m"
	}()
	go func() {
		defer wg.Done()
		m["b"] = 2 // want "unguarded write of m"
	}()
	wg.Wait()
	return m
}

// handoff shares a channel, not memory: sends are the sanctioned
// pattern, clean.
func handoff() int {
	results := make(chan int, 2)
	go func() { results <- 1 }()
	go func() { results <- 2 }()
	return <-results + <-results
}

// single launches once, outside any loop: one accessor is not sharing.
func single() int {
	x := 0
	done := make(chan struct{})
	go func() {
		x = 1
		close(done)
	}()
	<-done
	return x
}

type result struct{ n int }

// viaPointer: field stores through a captured pointer are writes to
// the shared entity.
func viaPointer() *result {
	res := &result{}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res.n++ // want "unguarded increment of res"
		}()
	}
	wg.Wait()
	return res
}

// waived demonstrates the suppression hatch.
func waived() int {
	c := 0
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); c++ }() //simlint:allow goroutineshare -- fixture: demonstrates suppression
	go func() { defer wg.Done(); c++ }() //simlint:allow goroutineshare -- fixture: demonstrates suppression
	wg.Wait()
	return c
}
