// metrics.go is the metrics half of the traceguard fixture: handle
// mutations (Counter.Inc/Add, Gauge.Set/Add, Histogram.Observe) with
// and without the nil-guard pattern, including the container-guard
// idiom — `if m == nil { return }` covers every handle m owns, because
// a metrics container populates all its handles at construction.
package traceguard

import "repro/internal/metrics"

type devMet struct {
	cycles *metrics.Counter
	depth  *metrics.Gauge
	lat    *metrics.Histogram
	faults [4]*metrics.Counter
}

type dev struct {
	met *devMet
}

// tickBadMetrics mutates handles without any guard: with telemetry off
// every handle is nil and each call both panics and breaks the
// one-branch disabled fast path.
func (d *dev) tickBadMetrics(k int) {
	d.met.cycles.Inc()     // want "d.met.cycles.Inc is not behind a nil guard"
	d.met.depth.Set(1)     // want "d.met.depth.Set is not behind a nil guard"
	d.met.lat.Observe(2)   // want "d.met.lat.Observe is not behind a nil guard"
	d.met.faults[k].Add(3) // want "faults\\[k\\]\\.Add is not behind a nil guard"
}

// observeBad takes the handle directly; still unguarded.
func observeBad(h *metrics.Histogram) {
	h.Observe(1) // want "h.Observe is not behind a nil guard"
}

// tickContainerGuard is the canonical container-guard idiom: one branch
// on the owning struct covers every handle beneath it.
func (d *dev) tickContainerGuard(k int) {
	if d.met != nil {
		d.met.cycles.Inc()
		d.met.faults[k].Add(1)
	}
}

// tickEarlyReturn uses the early-exit half of the idiom on a local
// rebinding of the container.
func (d *dev) tickEarlyReturn() {
	m := d.met
	if m == nil {
		return
	}
	m.cycles.Add(5)
	m.lat.Observe(1)
	m.depth.Add(-1)
}

// tickExactGuard guards the handle expression itself.
func tickExactGuard(c *metrics.Counter) {
	if c != nil {
		c.Inc()
	}
}

// tickAllowed documents a deliberate suppression.
func (d *dev) tickAllowed() {
	d.met.cycles.Inc() //simlint:allow traceguard -- helper only reachable when telemetry is enabled
}
