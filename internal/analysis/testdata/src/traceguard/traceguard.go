// Package traceguard is the golden-file fixture for the traceguard
// analyzer: trace emission calls with and without the nil-guard pattern
// internal/trace's cost model requires of its callers.
package traceguard

import "repro/internal/trace"

type sm struct {
	tr  *trace.SMT
	tcr *trace.Tracer
}

// tickBad emits without any guard — both a cost-model violation and a
// nil-pointer panic for untraced SMs.
func (s *sm) tickBad() {
	s.tr.Emit(trace.KIssue, 0, 1, 2, 3) // want "s.tr.Emit is not behind"
}

// sampleBad drives the tracer's counter path unguarded.
func (s *sm) sampleBad(cycle int64, src trace.CounterSource) {
	s.tcr.SetNow(cycle)           // want "s.tcr.SetNow is not behind"
	s.tcr.MaybeSample(cycle, src) // want "s.tcr.MaybeSample is not behind"
}

// tickGuarded is the canonical pattern: one predictable branch.
func (s *sm) tickGuarded() {
	if s.tr != nil {
		s.tr.Emit(trace.KIssue, 0, 1, 2, 3)
	}
}

// tickEarlyReturn uses the early-exit half of the idiom.
func (s *sm) tickEarlyReturn(cycle int64) {
	if s.tcr == nil {
		return
	}
	s.tcr.SetNow(cycle)
}

// tickConjunct guards inside a && condition.
func (s *sm) tickConjunct(cycle int64, sampling bool) {
	if sampling && s.tcr != nil {
		s.tcr.SetNow(cycle)
	}
}

// flushFinal is a deliberate suppression: a helper that only ever runs
// with tracing enabled documents that contract in place.
func (s *sm) flushFinal() {
	s.tr.Emit(trace.KIssue, 0, 0, 0, 0) //simlint:allow traceguard -- helper only reachable when tracing is enabled
}
