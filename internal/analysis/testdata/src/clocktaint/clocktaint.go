// Package clocktaint is the golden fixture for the value-level
// determinism analyzer: values derived from time.Now/time.Since or the
// global math/rand stream reaching //snapshot:state fields, stats
// counters, and NextEvent results — directly, laundered through
// locals, and laundered through another package's return value.
package clocktaint

import (
	"math/rand"
	"time"

	"fixture/clocktaint/pace"
	"fixture/clocktaint/stats"
)

//snapshot:state
type engine struct {
	clock  int64
	stalls int64
	cycles int64
}

// stampDirect stores the source straight into snapshot state.
func (e *engine) stampDirect() {
	e.clock = time.Now().UnixNano() // want "snapshot:state field engine.clock"
}

// stampLaundered moves the taint through a helper package's return
// value and two locals before it lands.
func (e *engine) stampLaundered() {
	t := pace.Stamp()
	u := t + 1
	e.clock = u // want "snapshot:state field engine.clock"
}

// jitter taints from the process-global rand stream.
func (e *engine) jitter() {
	r := rand.Int63()
	e.stalls = r // want "snapshot:state field engine.stalls"
}

// snapshotNow taints through a composite literal element.
func snapshotNow() engine {
	return engine{clock: time.Now().UnixNano()} // want "snapshot:state field engine.clock"
}

// tally stores a wall-clock duration into a stats counter.
func tally(t *stats.Totals, start time.Time) {
	t.Cells++
	t.Elapsed = int64(time.Since(start)) // want "stats field Totals.Elapsed"
}

// NextEvent returning a clock-derived wake-up cycle breaks the
// fast-forward equivalence contract.
func (e *engine) NextEvent(now int64) int64 {
	if e.cycles > 0 {
		return now + e.cycles
	}
	return time.Now().UnixNano() // want "NextEvent"
}

// advance is clean: cycle-derived values may flow anywhere.
func (e *engine) advance() {
	c := e.cycles + 1
	e.clock = c
}

// waived demonstrates the suppression hatch.
func (e *engine) waived() {
	e.clock = time.Now().UnixNano() //simlint:allow clocktaint -- fixture: demonstrates suppression
}
