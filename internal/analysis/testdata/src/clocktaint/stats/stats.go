// Package stats models the aggregation sink: clocktaint treats every
// struct field declared in a package named "stats" as a sink, because
// aggregated results must be bit-deterministic across identical runs.
package stats

// Totals aggregates per-cell results.
type Totals struct {
	Cells   int64
	Elapsed int64
}
