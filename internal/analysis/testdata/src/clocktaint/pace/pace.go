// Package pace is the laundering helper: it wraps the wall clock in a
// return value, so callers that never mention "time" still inherit the
// taint through the call graph.
package pace

import "time"

// Stamp returns the wall clock; every caller's result is clock-derived.
func Stamp() int64 { return time.Now().UnixNano() }
