package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden-file harness: each analyzer has a fixture package under
// testdata/src/<name>/ whose offending lines carry `// want "regex"`
// comments (several quoted regexes per line are allowed). The runner
// loads the fixture, runs exactly that analyzer, and requires a perfect
// bipartite match: every diagnostic must satisfy a want on its line, and
// every want must be satisfied. Suppressed sites (//simlint:allow)
// carry no want, so a broken suppression layer fails the test too.

var (
	wantRe  = regexp.MustCompile(`//\s*want\s+(".*)$`)
	quoteRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

type wantExpect struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// collectWants scans the fixture's files for `// want` expectations.
func collectWants(t *testing.T, pkgs []*Package) []*wantExpect {
	t.Helper()
	var wants []*wantExpect
	for _, pkg := range pkgs {
		wants = append(wants, collectPkgWants(t, pkg)...)
	}
	return wants
}

func collectPkgWants(t *testing.T, pkg *Package) []*wantExpect {
	t.Helper()
	var wants []*wantExpect
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("read fixture file: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			quotes := quoteRe.FindAllString(m[1], -1)
			if len(quotes) == 0 {
				t.Fatalf("%s:%d: malformed want comment (no quoted regex)", name, i+1)
			}
			for _, q := range quotes {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: unquote %s: %v", name, i+1, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: compile want regex %q: %v", name, i+1, pat, err)
				}
				wants = append(wants, &wantExpect{file: name, line: i + 1, re: re, raw: pat})
			}
		}
	}
	return wants
}

func TestGolden(t *testing.T) {
	cases := []struct {
		dir      string
		analyzer *Analyzer
	}{
		{"determinism", Determinism},
		{"hotpath", Hotpath},
		{"traceguard", Traceguard},
		{"faultflow", Faultflow},
		{"monitorpoll", Monitorpoll},
		{"snapshotguard", Snapshotguard},
		{"cpiguard", Cpiguard},
		{"nexteventguard", Nexteventguard},
		{"determinism_ip", Determinism},
		{"hotpath_ip", Hotpath},
		{"clocktaint", Clocktaint},
		{"configfreeze", Configfreeze},
		{"goroutineshare", Goroutineshare},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			pkgs, err := LoadFixture(filepath.Join("testdata", "src", tc.dir))
			if err != nil {
				t.Fatalf("LoadFixture: %v", err)
			}
			diags, err := RunAnalyzers(pkgs, []*Analyzer{tc.analyzer})
			if err != nil {
				t.Fatalf("RunAnalyzers: %v", err)
			}
			if len(diags) == 0 {
				t.Fatalf("analyzer %s produced no findings on its fixture", tc.analyzer.Name)
			}
			wants := collectWants(t, pkgs)
			for _, d := range diags {
				matched := false
				for _, w := range wants {
					if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
						continue
					}
					if w.re.MatchString(d.Message) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
				}
			}
		})
	}
}

// TestByName covers the driver's -analyzers selector.
func TestByName(t *testing.T) {
	got, err := ByName("determinism, hotpath")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if len(got) != 2 || got[0] != Determinism || got[1] != Hotpath {
		t.Fatalf("ByName returned %v", got)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
	if _, err := ByName(" ,"); err == nil {
		t.Fatal("ByName accepted an empty selection")
	}
}

// TestCleanTree is the tier-1 half of the contract: the suite must exit
// clean on the repository itself (go run ./cmd/simlint ./... in CI).
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load("repro/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load matched no packages")
	}
	diags, err := RunAnalyzers(pkgs, All)
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("tree is not simlint-clean: %s", d)
	}
}
