package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is simlint v2's interprocedural engine: a conservative
// static call graph over every loaded package, built from syntax and
// type information alone (no SSA, no x/tools). Program-level analyzers
// use it to propagate findings through helpers — a time.Now or a heap
// allocation one call deep no longer hides from the per-function
// passes.
//
// The graph is conservative by construction (edges over-approximate,
// they never under-approximate within its documented bounds):
//
//   - Static calls (func F, pkg.F, recv.M with a concrete receiver)
//     resolve by symbol: package path + receiver type + name. Symbol
//     keys, not go/types object identity, so resolution works across
//     the export-data package views the offline loader produces.
//   - Interface method calls resolve to every concrete method in the
//     loaded packages with the same name and signature — a superset of
//     the true satisfaction set (a type need not implement the full
//     interface to be included), which errs on the side of reachability.
//   - Calls through function-typed values resolve to every
//     address-taken function, method value, and function literal whose
//     signature matches the call site's.
//
// Soundness bounds (documented in docs/STATIC_ANALYSIS.md): bodies in
// packages outside the load set are opaque (whole-module runs are
// authoritative), reflection and unsafe are invisible, and calls inside
// panic-terminated branches are marked cold so per-cycle analyses can
// ignore invariant-violation paths.

// Program is the whole set of loaded packages plus the lazily built
// call graph — the view RunProgram analyzers receive.
type Program struct {
	// Pkgs are the loaded packages, in load order (sorted by path).
	Pkgs []*Package

	cg *CallGraph
}

// NewProgram wraps the loaded packages; the call graph is built on
// first use.
func NewProgram(pkgs []*Package) *Program { return &Program{Pkgs: pkgs} }

// CallGraph returns the program's call graph, building it once.
func (pr *Program) CallGraph() *CallGraph {
	if pr.cg == nil {
		pr.cg = buildCallGraph(pr.Pkgs)
	}
	return pr.cg
}

// CGNode is one function in the call graph: a declared function or
// method (Decl != nil) or a function literal (Lit != nil).
type CGNode struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Fn is the declared function's object in its own package's view;
	// nil for literals.
	Fn *types.Func
	// Name is the display name used in diagnostics: "gpu.GPU.cycleLoop",
	// "smcore.newSubCore$1" for the first literal inside newSubCore.
	Name string
	// Out is the node's call edges, in source order (resolved edges
	// appended after static ones, still deterministically).
	Out []CGEdge
}

// Body returns the node's function body.
func (n *CGNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Pos returns the node's declaration position.
func (n *CGNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// CGEdge is one call site: From's body calls To at Site.
type CGEdge struct {
	To   *CGNode
	Site token.Pos
	// Cold marks a call site inside a panic-terminated branch — a cold
	// invariant check, excluded from hot-path traversal.
	Cold bool
	// Dispatched marks an edge resolved by interface or function-value
	// dispatch: one call site fans out to every name+signature-compatible
	// candidate. Reachability wants that superset; value-flow analyses
	// (dataflow.go) skip dispatched edges, because flowing a tainted
	// receiver into every same-named method in the program drowns real
	// flows in false ones.
	Dispatched bool
}

// CallGraph is the program-wide graph. Nodes is deterministic: package
// load order, then source position.
type CallGraph struct {
	Nodes []*CGNode

	bySym  map[string]*CGNode
	byDecl map[*ast.FuncDecl]*CGNode
	byLit  map[*ast.FuncLit]*CGNode
}

// FuncNode resolves a function object (from any package's view) to its
// node, nil when its body is not in the loaded packages.
func (g *CallGraph) FuncNode(fn *types.Func) *CGNode {
	if fn == nil {
		return nil
	}
	return g.bySym[symKey(fn)]
}

// DeclNode returns the node for a declared function, nil if it has no
// body.
func (g *CallGraph) DeclNode(fd *ast.FuncDecl) *CGNode { return g.byDecl[fd] }

// LitNode returns the node for a function literal.
func (g *CallGraph) LitNode(fl *ast.FuncLit) *CGNode { return g.byLit[fl] }

// symKey names a declared function uniquely across the program:
// "pkgpath|RecvType|Name". Go has no overloading, so this is exact.
func symKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	return pkg + "|" + recvNamed(fn) + "|" + fn.Name()
}

// sigKey renders a signature (receiver dropped, parameter names
// stripped) with full package paths, so structurally identical
// signatures compare equal across package views — and across
// declarations that differ only in parameter naming, like a field
// typed func(int) int holding a function declared func(n int) int.
func sigKey(sig *types.Signature) string {
	q := func(p *types.Package) string {
		if p == nil {
			return ""
		}
		return p.Path()
	}
	strip := func(t *types.Tuple) *types.Tuple {
		if t == nil || t.Len() == 0 {
			return t
		}
		vars := make([]*types.Var, t.Len())
		for i := 0; i < t.Len(); i++ {
			vars[i] = types.NewVar(token.NoPos, nil, "", t.At(i).Type())
		}
		return types.NewTuple(vars...)
	}
	bare := types.NewSignatureType(nil, nil, nil, strip(sig.Params()), strip(sig.Results()), sig.Variadic())
	return types.TypeString(bare, q)
}

// pkgBase is the display prefix for node names.
func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// ifaceSite is an unresolved interface-method call or method-value use.
type ifaceSite struct {
	from *CGNode // nil for a method value taken without a call
	key  string  // method name + "|" + receiver-less sigKey
	site token.Pos
	cold bool
}

// dynSite is an unresolved call through a function-typed value.
type dynSite struct {
	from *CGNode
	key  string // sigKey of the call site
	site token.Pos
	cold bool
}

type cgBuilder struct {
	g          *CallGraph
	ifaceCalls []ifaceSite
	ifaceTaken []string // method name|sig keys whose implementations are address-taken
	dynCalls   []dynSite
	// taken maps sigKey -> address-taken nodes with that (receiver-less)
	// signature, in deterministic discovery order.
	taken     map[string][]*CGNode
	takenSeen map[*CGNode]map[string]bool
}

func buildCallGraph(pkgs []*Package) *CallGraph {
	b := &cgBuilder{
		g: &CallGraph{
			bySym:  map[string]*CGNode{},
			byDecl: map[*ast.FuncDecl]*CGNode{},
			byLit:  map[*ast.FuncLit]*CGNode{},
		},
		taken:     map[string][]*CGNode{},
		takenSeen: map[*CGNode]map[string]bool{},
	}
	for _, pkg := range pkgs {
		b.addNodes(pkg)
	}
	for _, n := range b.g.Nodes {
		b.scanBody(n)
	}
	b.resolve()
	return b.g
}

// addNodes creates a node per function declaration and per function
// literal of the package, in source order.
func (b *cgBuilder) addNodes(pkg *Package) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			name := pkgBase(pkg.Path) + "."
			if r := recvNamed(fn); r != "" {
				name += r + "."
			}
			name += fn.Name()
			n := &CGNode{Pkg: pkg, Decl: fd, Fn: fn, Name: name}
			b.g.Nodes = append(b.g.Nodes, n)
			b.g.bySym[symKey(fn)] = n
			b.g.byDecl[fd] = n
			b.addLits(pkg, fd.Body, name)
		}
		// Literals in package-level variable initializers.
		for _, d := range f.Decls {
			if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				b.addLits(pkg, gd, pkgBase(pkg.Path)+".init")
			}
		}
	}
}

// addLits registers every function literal under root as its own node,
// named parent$1, parent$2, ... in source order (nested literals count
// their own children from $1 again, qualified by the parent literal's
// name).
func (b *cgBuilder) addLits(pkg *Package, root ast.Node, parent string) {
	counts := map[string]int{}
	names := map[*ast.FuncLit]string{}
	var enclosing []*ast.FuncLit
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if fl, ok := n.(*ast.FuncLit); ok {
			// ast.Inspect visits parents before children, so the nearest
			// enclosing literal (if any) is already named.
			p := parent
			for i := len(enclosing) - 1; i >= 0; i-- {
				if enclosing[i].Body.Pos() <= fl.Pos() && fl.End() <= enclosing[i].Body.End() {
					p = names[enclosing[i]]
					break
				}
			}
			counts[p]++
			name := p + "$" + itoa(counts[p])
			names[fl] = name
			node := &CGNode{Pkg: pkg, Lit: fl, Name: name}
			b.g.Nodes = append(b.g.Nodes, node)
			b.g.byLit[fl] = node
			enclosing = append(enclosing, fl)
		}
		return true
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// coldBlocks marks every block that is a panic-terminated if-body —
// calls inside them are invariant checks, not per-cycle work.
func coldBlocks(info *types.Info, body ast.Node) map[*ast.BlockStmt]bool {
	cold := map[*ast.BlockStmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if ifs, ok := n.(*ast.IfStmt); ok && endsInPanic(info, ifs.Body) {
			cold[ifs.Body] = true
		}
		return true
	})
	return cold
}

// scanBody walks one node's body (not descending into nested literals,
// which are their own nodes) collecting call edges, interface call
// sites, dynamic call sites, and address-taken functions.
func (b *cgBuilder) scanBody(n *CGNode) {
	info := n.Pkg.Info
	body := n.Body()
	if body == nil {
		return
	}
	cold := coldBlocks(info, body)
	coldDepth := 0
	directCalled := map[*ast.FuncLit]bool{}
	var stack []ast.Node
	ast.Inspect(body, func(x ast.Node) bool {
		if x == nil {
			last := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if bs, ok := last.(*ast.BlockStmt); ok && cold[bs] {
				coldDepth--
			}
			return true
		}
		stack = append(stack, x)
		if bs, ok := x.(*ast.BlockStmt); ok && cold[bs] {
			coldDepth++
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			// Creating a literal is not a call; the literal's own body is
			// scanned as its own node. Un-called literals are address-taken
			// values dynamically matched by signature.
			if !directCalled[x] {
				if sig, ok := info.TypeOf(x).(*types.Signature); ok {
					b.take(b.g.byLit[x], sigKey(sig))
				}
			}
			// Pruned subtrees get no closing nil from Inspect; pop now.
			stack = stack[:len(stack)-1]
			return false
		case *ast.CallExpr:
			b.scanCall(n, info, x, coldDepth > 0, directCalled)
		case *ast.SelectorExpr:
			b.scanSelector(n, info, x, parentOf(stack))
		case *ast.Ident:
			b.scanIdent(info, x, parentOf(stack))
		}
		return true
	})
}

// parentOf returns the node above the current one (stack top is the
// current node itself).
func parentOf(stack []ast.Node) ast.Node {
	if len(stack) < 2 {
		return nil
	}
	return stack[len(stack)-2]
}

func (b *cgBuilder) scanCall(n *CGNode, info *types.Info, call *ast.CallExpr, isCold bool, directCalled map[*ast.FuncLit]bool) {
	fun := ast.Unparen(call.Fun)
	if fl, ok := fun.(*ast.FuncLit); ok {
		directCalled[fl] = true
		if to := b.g.byLit[fl]; to != nil {
			n.Out = append(n.Out, CGEdge{To: to, Site: call.Pos(), Cold: isCold})
		}
		return
	}
	if fn := funcFor(info, call); fn != nil {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			b.ifaceCalls = append(b.ifaceCalls, ifaceSite{
				from: n, key: fn.Name() + "|" + sigKey(sig), site: call.Pos(), cold: isCold,
			})
			return
		}
		if to := b.g.bySym[symKey(fn)]; to != nil {
			n.Out = append(n.Out, CGEdge{To: to, Site: call.Pos(), Cold: isCold})
		}
		return
	}
	// Not a named callee: builtin, conversion, or a call through a
	// function-typed value.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok {
		b.dynCalls = append(b.dynCalls, dynSite{from: n, key: sigKey(sig), site: call.Pos(), cold: isCold})
	}
}

// scanSelector records method values and package-qualified function
// references that are used as values (address-taken), the feed for
// dynamic-call resolution.
func (b *cgBuilder) scanSelector(n *CGNode, info *types.Info, sel *ast.SelectorExpr, parent ast.Node) {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	if call, ok := parent.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
		return // a call, handled by scanCall
	}
	valSig, ok := info.TypeOf(sel).(*types.Signature)
	if !ok {
		return
	}
	if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
		if mSig, ok := fn.Type().(*types.Signature); ok && mSig.Recv() != nil && types.IsInterface(mSig.Recv().Type()) {
			// iface.M taken as a value: every implementation escapes.
			b.ifaceTaken = append(b.ifaceTaken, fn.Name()+"|"+sigKey(mSig))
			return
		}
	}
	// Concrete method value, method expression, or pkg.F reference: the
	// value's own signature is what a dynamic call site would match.
	if node := b.g.bySym[symKey(fn)]; node != nil {
		b.take(node, sigKey(valSig))
	}
}

// scanIdent records bare function references used as values.
func (b *cgBuilder) scanIdent(info *types.Info, id *ast.Ident, parent ast.Node) {
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	switch p := parent.(type) {
	case *ast.CallExpr:
		if ast.Unparen(p.Fun) == id {
			return
		}
	case *ast.SelectorExpr:
		if p.Sel == id {
			return // handled by scanSelector
		}
	}
	if node := b.g.bySym[symKey(fn)]; node != nil {
		if sig, ok := fn.Type().(*types.Signature); ok {
			b.take(node, sigKey(sig))
		}
	}
}

func (b *cgBuilder) take(n *CGNode, key string) {
	if n == nil {
		return
	}
	seen := b.takenSeen[n]
	if seen == nil {
		seen = map[string]bool{}
		b.takenSeen[n] = seen
	}
	if seen[key] {
		return
	}
	seen[key] = true
	b.taken[key] = append(b.taken[key], n)
}

// resolve turns the collected interface and dynamic call sites into
// edges against name+signature indexes over the whole node set.
func (b *cgBuilder) resolve() {
	// Concrete methods indexed by name + receiver-less signature: the
	// candidate set for interface dispatch.
	implIndex := map[string][]*CGNode{}
	for _, n := range b.g.Nodes {
		if n.Fn == nil {
			continue
		}
		sig, ok := n.Fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || types.IsInterface(sig.Recv().Type()) {
			continue
		}
		key := n.Fn.Name() + "|" + sigKey(sig)
		implIndex[key] = append(implIndex[key], n)
	}
	for _, site := range b.ifaceCalls {
		for _, impl := range implIndex[site.key] {
			site.from.Out = append(site.from.Out, CGEdge{To: impl, Site: site.site, Cold: site.cold, Dispatched: true})
		}
	}
	for _, key := range b.ifaceTaken {
		for _, impl := range implIndex[key] {
			if sig, ok := impl.Fn.Type().(*types.Signature); ok {
				b.take(impl, sigKey(sig))
			}
		}
	}
	for _, site := range b.dynCalls {
		for _, target := range b.taken[site.key] {
			site.from.Out = append(site.from.Out, CGEdge{To: target, Site: site.site, Cold: site.cold, Dispatched: true})
		}
	}
}

// ReachOpts tunes a reachability traversal.
type ReachOpts struct {
	// MaxDepth bounds the traversal (edges from a root); 0 = unbounded.
	MaxDepth int
	// SkipColdEdges ignores call sites inside panic-terminated branches.
	SkipColdEdges bool
	// Skip, when non-nil, prunes edges into nodes for which it returns
	// true (the node is neither reported nor expanded).
	Skip func(*CGNode) bool
}

// ReachStep records how a node was first reached: its BFS predecessor
// and depth. Roots have Prev == nil and Depth == 0.
type ReachStep struct {
	Prev  *CGNode
	Depth int
}

// Reach runs a multi-source BFS from roots and returns the
// first-discovery tree. Deterministic: roots in the given order, edges
// in source/resolution order.
func (g *CallGraph) Reach(roots []*CGNode, opt ReachOpts) map[*CGNode]*ReachStep {
	reach := map[*CGNode]*ReachStep{}
	var queue []*CGNode
	for _, r := range roots {
		if r == nil || reach[r] != nil {
			continue
		}
		reach[r] = &ReachStep{}
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		step := reach[n]
		if opt.MaxDepth > 0 && step.Depth >= opt.MaxDepth {
			continue
		}
		for _, e := range n.Out {
			if e.Cold && opt.SkipColdEdges {
				continue
			}
			if reach[e.To] != nil {
				continue
			}
			if opt.Skip != nil && opt.Skip(e.To) {
				continue
			}
			reach[e.To] = &ReachStep{Prev: n, Depth: step.Depth + 1}
			queue = append(queue, e.To)
		}
	}
	return reach
}

// Chain renders the discovery path to n as "root → a → b → n".
func Chain(reach map[*CGNode]*ReachStep, n *CGNode) string {
	var parts []string
	for cur := n; cur != nil; {
		parts = append(parts, cur.Name)
		step := reach[cur]
		if step == nil {
			break
		}
		cur = step.Prev
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, " → ")
}
