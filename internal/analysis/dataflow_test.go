package analysis

import (
	"go/ast"
	"go/types"
	"strings"
	"testing"
)

// nowSpec marks every call to a function literally named "now" as a
// taint source — an import-free stand-in for time.Now so snippets stay
// self-contained.
var nowSpec = TaintSpec{Source: func(pkg *Package, n ast.Node) (string, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "now" {
		return "now", true
	}
	return "", false
}}

func runSnippetDataflow(t *testing.T, src string) (*Dataflow, []*Package) {
	t.Helper()
	pkgs := writeSnippet(t, "df", src)
	return RunDataflow(NewProgram(pkgs), nowSpec), pkgs
}

// dfVar finds the unique variable object with the given name across the
// loaded packages.
func dfVar(t *testing.T, pkgs []*Package, name string) types.Object {
	t.Helper()
	var found types.Object
	for _, p := range pkgs {
		for _, obj := range p.Info.Defs {
			if obj == nil || obj.Name() != name {
				continue
			}
			if _, ok := obj.(*types.Var); !ok {
				continue
			}
			if found != nil {
				t.Fatalf("multiple variables named %s in snippet", name)
			}
			found = obj
		}
	}
	if found == nil {
		t.Fatalf("no variable named %s in snippet", name)
	}
	return found
}

// wantChainOrder asserts the rendered chain mentions the markers in
// order.
func wantChainOrder(t *testing.T, chain string, markers ...string) {
	t.Helper()
	rest := chain
	for _, m := range markers {
		i := strings.Index(rest, m)
		if i < 0 {
			t.Fatalf("chain %q missing %q (in order %v)", chain, m, markers)
		}
		rest = rest[i+len(m):]
	}
}

// TestDataflowAssignChain: taint moves through a straight-line chain of
// locals, each assignment adding one hop to the flow, and a tainted
// return marks the function's result set.
func TestDataflowAssignChain(t *testing.T) {
	d, pkgs := runSnippetDataflow(t, `package df

func now() int { return 0 }

func use() int {
	t := now()
	u := t
	v := u + 1
	return v
}
`)
	fl := d.VarFlow(dfVar(t, pkgs, "v"))
	if fl == nil {
		t.Fatal("v should be tainted through t → u → v")
	}
	wantChainOrder(t, fl.Chain(), "now (df.go:", "→ t (", "→ u (", "→ v (")
	if len(d.ReturnTaints) != 1 || d.ReturnTaints[0].Node.Name != "df.use" {
		t.Fatalf("ReturnTaints = %+v, want exactly df.use's return", d.ReturnTaints)
	}
}

// TestDataflowFieldSink: a tainted store into a struct field records a
// FieldTaint event keyed by the field's declaring struct.
func TestDataflowFieldSink(t *testing.T) {
	d, _ := runSnippetDataflow(t, `package df

type engine struct{ clock int }

func now() int { return 0 }

func set(e *engine) {
	t := now()
	e.clock = t
}
`)
	if len(d.FieldTaints) != 1 {
		t.Fatalf("FieldTaints = %+v, want exactly one", d.FieldTaints)
	}
	ft := d.FieldTaints[0]
	want := stateField{owner: "fixture/df.engine", field: "clock"}
	if ft.Field != want {
		t.Errorf("tainted field = %+v, want %+v", ft.Field, want)
	}
	if d.FieldFlow(want) == nil {
		t.Error("FieldFlow(engine.clock) should be non-nil")
	}
	wantChainOrder(t, ft.Flow.Chain(), "now (", "→ t (", "→ engine.clock (")
}

// TestDataflowInterprocReturn: taint crosses a call through the
// callee's return value, with the hop recorded in the chain.
func TestDataflowInterprocReturn(t *testing.T) {
	d, _ := runSnippetDataflow(t, `package df

type engine struct{ clock int }

func now() int { return 0 }

func stamp() int { return now() }

func use(e *engine) {
	e.clock = stamp()
}
`)
	if len(d.FieldTaints) != 1 {
		t.Fatalf("FieldTaints = %+v, want the e.clock store", d.FieldTaints)
	}
	wantChainOrder(t, d.FieldTaints[0].Flow.Chain(),
		"now (", "returned by df.stamp", "engine.clock")
}

// TestDataflowInterprocArg: a tainted argument taints the callee's
// parameter, and the callee's own field store becomes the sink.
func TestDataflowInterprocArg(t *testing.T) {
	d, pkgs := runSnippetDataflow(t, `package df

type engine struct{ clock int }

func now() int { return 0 }

func sink(e *engine, v int) {
	e.clock = v
}

func use(e *engine) {
	sink(e, now())
}
`)
	if d.VarFlow(dfVar(t, pkgs, "v")) == nil {
		t.Fatal("sink's parameter v should be tainted by the call site")
	}
	if len(d.FieldTaints) != 1 {
		t.Fatalf("FieldTaints = %+v, want the e.clock store inside sink", d.FieldTaints)
	}
	wantChainOrder(t, d.FieldTaints[0].Flow.Chain(),
		"now (", "arg v of df.sink", "engine.clock")
}

// TestDataflowCollectionLaunder: storing taint into a map element
// taints the whole map ("taints everything it touches"), so reads of
// any element carry it onward.
func TestDataflowCollectionLaunder(t *testing.T) {
	d, pkgs := runSnippetDataflow(t, `package df

func now() int { return 0 }

func use() int {
	m := map[int]int{}
	m[1] = now()
	out := m[2]
	return out
}
`)
	if d.VarFlow(dfVar(t, pkgs, "m")) == nil {
		t.Fatal("m should be tainted by the element store")
	}
	if d.VarFlow(dfVar(t, pkgs, "out")) == nil {
		t.Fatal("out should be tainted by reading from the tainted map")
	}
}

// TestDataflowPointerBound documents the engine's stated aliasing
// bound: a store through a pointer taints the pointer (and flows to
// reads through it), but not the pointee variable itself.
func TestDataflowPointerBound(t *testing.T) {
	d, pkgs := runSnippetDataflow(t, `package df

func now() int { return 0 }

func use() int {
	x := 0
	p := &x
	*p = now()
	y := *p
	return y
}
`)
	if d.VarFlow(dfVar(t, pkgs, "p")) == nil {
		t.Fatal("p should be tainted by the store through it")
	}
	if d.VarFlow(dfVar(t, pkgs, "y")) == nil {
		t.Fatal("y should be tainted by reading through p")
	}
	// The documented bound: x itself is not tainted — aliasing of
	// locals is out of model (dataflow.go's "Bounds" comment).
	if d.VarFlow(dfVar(t, pkgs, "x")) != nil {
		t.Error("x tainted: the aliasing bound changed; update dataflow.go's contract comment")
	}
}

// TestDataflowCompositeAndRange: composite-literal elements taint the
// corresponding fields, and ranging over a tainted collection taints
// the iteration variables.
func TestDataflowCompositeAndRange(t *testing.T) {
	d, pkgs := runSnippetDataflow(t, `package df

type engine struct{ clock int }

func now() int { return 0 }

func mk() engine {
	return engine{clock: now()}
}

func sum() int {
	vals := []int{now()}
	s := 0
	for _, v := range vals {
		s += v
	}
	return s
}
`)
	want := stateField{owner: "fixture/df.engine", field: "clock"}
	if d.FieldFlow(want) == nil {
		t.Error("engine.clock should be tainted by the composite literal")
	}
	if d.VarFlow(dfVar(t, pkgs, "v")) == nil {
		t.Error("range value v should be tainted by the tainted slice")
	}
	if d.VarFlow(dfVar(t, pkgs, "s")) == nil {
		t.Error("s should be tainted through the compound assignment")
	}
}

// TestDataflowUnknownCallee: calls into packages loaded only as export
// data (stdlib) launder taint conservatively — through &-arguments and
// into method receivers — while package-qualified calls never taint
// the package name.
func TestDataflowUnknownCallee(t *testing.T) {
	d, pkgs := runSnippetDataflow(t, `package df

import (
	"fmt"
	"strings"
)

func now() string { return "" }

func scan() int {
	var x int
	fmt.Sscanf(now(), "%d", &x)
	return x
}

func build() string {
	var b strings.Builder
	b.WriteString(now())
	return b.String()
}
`)
	if d.VarFlow(dfVar(t, pkgs, "x")) == nil {
		t.Fatal("x should be tainted: Sscanf may store the tainted input through &x")
	}
	if d.VarFlow(dfVar(t, pkgs, "b")) == nil {
		t.Fatal("b should be tainted: WriteString absorbs the tainted argument")
	}
	// Both functions return tainted values.
	if len(d.ReturnTaints) != 2 {
		t.Errorf("ReturnTaints = %+v, want scan's and build's returns", d.ReturnTaints)
	}
}

// TestDataflowClean: a program with no sources yields no taint at all.
func TestDataflowClean(t *testing.T) {
	d, _ := runSnippetDataflow(t, `package df

type engine struct{ clock int }

func set(e *engine) {
	x := 2
	e.clock = x
}
`)
	if len(d.FieldTaints) != 0 || len(d.ReturnTaints) != 0 {
		t.Errorf("clean program produced taints: fields=%+v returns=%+v",
			d.FieldTaints, d.ReturnTaints)
	}
}
