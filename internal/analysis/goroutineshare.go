package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Goroutineshare is the static complement to `go test -race`: the race
// detector proves the schedules a test run happens to drive, this pass
// conservatively flags the *pattern* — a variable captured by more
// than one goroutine (or by one goroutine launched in a loop) and
// written without any visible synchronization. The concurrent packages
// (harness workers, the gpu monitor, the metrics registry) are exactly
// where the reproduction's fault-tolerance and telemetry claims live,
// and a data race there corrupts results silently on the machines the
// race detector never visits.
//
// The model, and its stated bounds:
//
//   - Roots are `go func(){...}(...)` statements in scope packages. A
//     root inside a for/range loop counts as two roots (it spawns many
//     goroutines). Named-function roots (`go s.srv.Serve(ln)`) share
//     state only through their arguments, which the race detector
//     covers; they are not modeled here.
//   - An entity is a variable captured by the literal (declared
//     outside it), excluding sync primitives themselves (sync.Mutex,
//     WaitGroup, sync/atomic types — they exist to be shared).
//   - A write is a direct assignment, compound assignment, or ++/--
//     whose base resolves to a shared entity, including element and
//     field stores through it (m[k]=v, res.N++, *p=v). Channel sends
//     are the sanctioned hand-off and never count; mutation via method
//     calls is the callee's contract (metrics counters are atomic
//     inside).
//   - A write is considered guarded when a sync.Mutex/RWMutex .Lock()
//     call (not RLock — readers don't license writers) appears
//     lexically before it inside the same goroutine body. This is
//     lexical, not path-sensitive: a Lock in a dead branch satisfies
//     it. The CI race job is the dynamic backstop for what this
//     under-approximates; the point here is catching the unguarded
//     pattern at review time, on every platform, without needing a
//     schedule to hit it.
//
// Findings carry the capture chain — where the variable was declared,
// which go statements capture it, where the unguarded write is — via
// the dataflow engine's Flow rendering.
var Goroutineshare = &Analyzer{
	Name: "goroutineshare",
	Doc: "flag variables captured by multiple goroutine roots (or a " +
		"looped one) in harness/gpu/metrics and written without a " +
		"lexically visible Lock, atomic, or channel hand-off",
	RunProgram: runGoroutineshare,
}

// gsScope: the deliberately concurrent packages.
var gsScope = []string{"internal/harness", "internal/gpu", "internal/metrics"}

func gsInScope(p *Package) bool {
	if p.Fixture {
		return !strings.HasSuffix(p.Path, "/helper")
	}
	return pathIn(p.Path, gsScope)
}

// gsRoot is one `go func(){...}()` launch site.
type gsRoot struct {
	pkg    *Package
	lit    *ast.FuncLit
	pos    token.Pos
	weight int // 2 when launched inside a loop
}

// gsSyncPrimitive reports whether the variable's type (pointer-deref'd)
// is a sync or sync/atomic type — shared by design.
func gsSyncPrimitive(v *types.Var) bool {
	t := v.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == "sync" || path == "sync/atomic"
}

// gsCaptured collects the variables the literal captures: objects used
// inside it but declared outside its extent.
func gsCaptured(pkg *Package, lit *ast.FuncLit) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || gsSyncPrimitive(v) {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			out[v] = true
		}
		return true
	})
	return out
}

// gsBaseVar resolves an lvalue's base variable: x, x.f, x[i], *x, and
// parenthesized combinations all write through x.
func gsBaseVar(pkg *Package, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := pkg.Info.Uses[x].(*types.Var); ok {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// gsLockPositions collects the positions of sync.Mutex/RWMutex Lock()
// calls in the body, for the lexical write-guard test.
func gsLockPositions(pkg *Package, body ast.Node) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Lock" {
			return true
		}
		t := pkg.Info.TypeOf(sel.X)
		if t == nil {
			return true
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil &&
			n.Obj().Pkg().Path() == "sync" &&
			(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex") {
			out = append(out, call.Pos())
		}
		return true
	})
	return out
}

func runGoroutineshare(pp *ProgramPass) error {
	// Pass 1: roots and the capture multiplicity of every variable.
	type shared struct {
		weight int
		roots  []token.Pos
	}
	var roots []gsRoot
	sharing := map[*types.Var]*shared{}
	for _, pkg := range pp.Prog.Pkgs {
		if !gsInScope(pkg) {
			continue
		}
		for _, f := range pkg.Files {
			var stack []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				stack = append(stack, n)
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
				if !ok {
					return true // named-function root: out of model (see Doc)
				}
				weight := 1
				for _, anc := range stack {
					switch anc.(type) {
					case *ast.ForStmt, *ast.RangeStmt:
						weight = 2
					}
				}
				roots = append(roots, gsRoot{pkg: pkg, lit: lit, pos: gs.Pos(), weight: weight})
				for v := range gsCaptured(pkg, lit) {
					s := sharing[v]
					if s == nil {
						s = &shared{}
						sharing[v] = s
					}
					s.weight += weight
					s.roots = append(s.roots, gs.Pos())
				}
				return true
			})
		}
	}

	// Pass 2: unguarded writes to multiply-captured variables.
	for _, r := range roots {
		locks := gsLockPositions(r.pkg, r.lit.Body)
		guarded := func(pos token.Pos) bool {
			for _, lp := range locks {
				if lp < pos {
					return true
				}
			}
			return false
		}
		flag := func(lhs ast.Expr, pos token.Pos, what string) {
			v := gsBaseVar(r.pkg, lhs)
			if v == nil {
				return
			}
			s := sharing[v]
			if s == nil || s.weight < 2 {
				return
			}
			if guarded(pos) {
				return
			}
			fl := &Flow{SrcPos: v.Pos(), SrcPkg: r.pkg, SrcDesc: "shared variable " + v.Name()}
			for _, rp := range s.roots {
				fl = fl.extend(r.pkg, rp, "captured by go statement")
			}
			fl = fl.extend(r.pkg, pos, "unguarded "+what)
			pp.ReportChainf(r.pkg, pos, fl.Chain(),
				"unguarded %s of %s, which concurrent goroutine launches share (%s) — no Lock precedes it in this goroutine body; guard it with the shared mutex, use sync/atomic, or hand the value off over a channel, or justify with //simlint:allow goroutineshare",
				what, v.Name(), fl.Chain())
		}
		ast.Inspect(r.lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					// := on a plain ident declares a goroutine-local; writes
					// through selectors/indexes mutate the base even under :=.
					if n.Tok == token.DEFINE {
						if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
							continue
						}
					}
					flag(lhs, lhs.Pos(), "write")
				}
			case *ast.IncDecStmt:
				flag(n.X, n.Pos(), "increment")
			}
			return true
		})
	}
	return nil
}
