package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Configfreeze pins the configuration-immutability contract snapshot
// identity rests on: a snapshot frame is only resumable into a GPU
// built from the *same* config (gpu.WriteSnapshot embeds it; Restore
// rejects mismatches), and the auditor, fast-forward, and CPI
// accounting all assume the config a component captured at
// construction never changes underneath it. So config values may be
// built up freely *before* construction — `cfg := config.VoltaV100();
// cfg.NumSMs = 4` in a main, a With* option method mutating its value
// receiver — but once a pointer into a live config exists, every write
// through it is a frozen-state violation.
//
// The rule, statically: a write to a field of a config-package struct
// (any named struct declared in a package whose base name is "config")
// is allowed only when it goes directly through a function-local,
// non-pointer config value — Go's value semantics make such writes
// invisible to everyone else. Flagged forms:
//
//   - writes through a *config.GPU pointer (p.NumSMs = 4): the pointee
//     is shared state — smcore holds &g.cfg for the simulation's
//     lifetime;
//   - writes into a config embedded in another struct (g.cfg.Audit =
//     true): that is the live copy components read;
//   - writes to package-level config values: shared by definition;
//   - whole-struct replacement of an embedded or pointed-to config
//     (d.cfg = other, *p = other).
//
// Functions declared in config packages themselves and constructors
// (New*/new*) are exempt — they run before the config is live. When
// the engine's taint pass can show where the offending pointer was
// obtained (&cfg escaping into a struct field, an alias chain of
// pointer copies), the finding carries that value-flow chain.
var Configfreeze = &Analyzer{
	Name: "configfreeze",
	Doc: "flag writes into config-package structs after construction — " +
		"through pointers, into configs embedded in live state, or to " +
		"package-level config values; config is frozen once gpu.New " +
		"copies it, and snapshot/resume identity depends on that",
	RunProgram: runConfigfreeze,
}

// configNamed returns the named config-package struct type behind t
// (derefencing one pointer level), nil when t is not one.
func configNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return nil
	}
	if _, ok := n.Underlying().(*types.Struct); !ok {
		return nil
	}
	path := n.Obj().Pkg().Path()
	if path == "config" || strings.HasSuffix(path, "/config") {
		return n
	}
	return nil
}

// configPkg reports whether the package's base name is "config" — its
// own declarations (constructors, option methods, Validate) may write
// config fields.
func configPkg(path string) bool {
	return path == "config" || strings.HasSuffix(path, "/config")
}

// configExemptFunc reports whether writes inside the declaration are
// construction-time by role: constructors build the config before it
// is live.
func configExemptFunc(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}

// cfreeze lazily runs the dataflow engine with "&<config value>" as
// the source, so violation reports can show where the pointer being
// written through was obtained. Lazy because a clean tree (the normal
// case) then never pays for the taint pass.
type cfreeze struct {
	prog *Program
	d    *Dataflow
}

func (c *cfreeze) dataflow() *Dataflow {
	if c.d == nil {
		c.d = RunDataflow(c.prog, TaintSpec{Source: func(pkg *Package, n ast.Node) (string, bool) {
			u, ok := n.(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				return "", false
			}
			if named := configNamed(pkg.Info.TypeOf(u.X)); named != nil {
				return "&" + named.Obj().Name() + " (config address taken)", true
			}
			return "", false
		}})
	}
	return c.d
}

// chainFor renders the value-flow chain that delivered the written-
// through base expression, "" when the engine has none.
func (c *cfreeze) chainFor(pkg *Package, base ast.Expr) string {
	switch b := ast.Unparen(base).(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[b]; obj != nil {
			if fl := c.dataflow().VarFlow(obj); fl != nil {
				return fl.Chain()
			}
		}
	case *ast.SelectorExpr:
		if sf, ok := stateFieldOf(pkg.Info, b); ok {
			if fl := c.dataflow().FieldFlow(sf); fl != nil {
				return fl.Chain()
			}
		}
	case *ast.StarExpr:
		return c.chainFor(pkg, b.X)
	}
	return ""
}

// localConfigValue reports whether e is a plain identifier denoting a
// function-local (or parameter/receiver), non-field variable holding a
// config struct *by value* — the one write target Go's value
// semantics make private.
func localConfigValue(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if _, isPtr := v.Type().(*types.Pointer); isPtr {
		return false
	}
	if configNamed(v.Type()) == nil {
		return false
	}
	// Package-level variables have the package scope as parent.
	return v.Pkg() == nil || v.Parent() != v.Pkg().Scope()
}

func runConfigfreeze(pp *ProgramPass) error {
	c := &cfreeze{prog: pp.Prog}
	report := func(pkg *Package, pos token.Pos, base ast.Expr, format string, args ...any) {
		if chain := c.chainFor(pkg, base); chain != "" {
			pp.ReportChainf(pkg, pos, chain, format+"; the written-through config was obtained via %s", append(args, chain)...)
			return
		}
		pp.Reportf(pkg, pos, format, args...)
	}
	checkFieldWrite := func(pkg *Package, sel *ast.SelectorExpr, verb string) {
		sf, ok := stateFieldOf(pkg.Info, sel)
		if !ok || !configPkg(sf.owner[:strings.LastIndexByte(sf.owner, '.')]) {
			return
		}
		if localConfigValue(pkg.Info, sel.X) {
			return // building a private value copy: pre-construction idiom
		}
		short := sf.owner[strings.LastIndexByte(sf.owner, '.')+1:]
		report(pkg, sel.Sel.Pos(), sel.X,
			"config field %s.%s %s outside a constructor/option func — config is frozen after construction (snapshot/resume identity and every component's captured view depend on it); build the value before gpu.New or add an option method in the config package, or justify with //simlint:allow configfreeze",
			short, sf.field, verb)
	}
	for _, pkg := range pp.Prog.Pkgs {
		if configPkg(pkg.Path) {
			continue // the type's own package: constructors and options live here
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || configExemptFunc(fd) {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.AssignStmt:
						if n.Tok == token.DEFINE {
							return true // := declares fresh locals, never writes shared state
						}
						for _, lhs := range n.Lhs {
							l := ast.Unparen(lhs)
							if sel, ok := l.(*ast.SelectorExpr); ok {
								checkFieldWrite(pkg, sel, "written")
								// Whole-struct replacement of an embedded config
								// (d.cfg = other) — the field's owner is not a
								// config struct, so checkFieldWrite won't see it.
								if sf, ok := stateFieldOf(pkg.Info, sel); ok &&
									!configPkg(sf.owner[:strings.LastIndexByte(sf.owner, '.')]) &&
									configNamed(pkg.Info.TypeOf(sel)) != nil {
									report(pkg, sel.Sel.Pos(), sel.X,
										"whole config value %s.%s replaced outside a constructor/option func — every component captured the original at construction and snapshot/resume identity depends on it; construct a new GPU instead, or justify with //simlint:allow configfreeze",
										sf.owner[strings.LastIndexByte(sf.owner, '.')+1:], sf.field)
								}
								continue
							}
							if st, ok := l.(*ast.StarExpr); ok && configNamed(pkg.Info.TypeOf(st.X)) != nil {
								report(pkg, st.Pos(), st.X,
									"config value replaced through a pointer outside a constructor/option func — the pointee is the live, frozen config; construct a new GPU instead, or justify with //simlint:allow configfreeze")
								continue
							}
							// Package-level config value reassigned wholesale.
							if id, ok := l.(*ast.Ident); ok && configNamed(pkg.Info.TypeOf(id)) != nil && !localConfigValue(pkg.Info, id) {
								report(pkg, id.Pos(), id,
									"package-level config value %s replaced outside a constructor/option func — it is shared by everything that captured it; build configs as function-local values, or justify with //simlint:allow configfreeze", id.Name)
							}
						}
					case *ast.IncDecStmt:
						if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
							checkFieldWrite(pkg, sel, "incremented")
						}
					}
					return true
				})
			}
		}
	}
	return nil
}
