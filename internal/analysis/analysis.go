// Package analysis is simlint's self-contained static-analysis
// framework: a small go/ast + go/types pass runner in the style of
// golang.org/x/tools/go/analysis, implemented on the standard library
// only so the linter builds offline with zero dependencies.
//
// The suite enforces the invariants the reproduction's headline numbers
// rest on — bit-deterministic sweeps, an allocation-free cycle loop,
// nil-guarded trace emission, structured fault propagation,
// hang-supervision polling, and snapshot-manifest coverage — at the
// source level, where review and dynamic tests alone cannot keep up
// with the tree. Each analyzer's rationale is documented in
// docs/STATIC_ANALYSIS.md.
//
// Three comment directives tune the suite:
//
//	//snapshot:state
//	    on a struct's doc comment declares it mutable device state,
//	    requiring a <x>Manifest coverage ledger (snapshotguard).
//
//	//simlint:hotpath
//	    on a function's doc comment marks it per-cycle, opting it into
//	    the hotpath analyzer even when its name does not match the
//	    hot-name pattern.
//
//	//simlint:allow <analyzer>[,<analyzer>...] -- <reason>
//	    suppresses findings. On its own line (or trailing the offending
//	    line) it covers that line and the next; inside a function's doc
//	    comment it covers the whole function. The "-- reason" tail is
//	    required by convention so every suppression is justified in
//	    place.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named pass, either per-package (Run) or whole-program
// (RunProgram, which sees every loaded package plus the call graph).
type Analyzer struct {
	// Name is the analyzer's identifier, used in reports and in
	// //simlint:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports findings on the pass's package via Pass.Reportf.
	Run func(*Pass) error
	// RunProgram, when set, runs once over the whole loaded program
	// instead of once per package; Run is ignored. Interprocedural
	// analyzers live here: ProgramPass.Prog.CallGraph() is the shared,
	// lazily built call graph.
	RunProgram func(*ProgramPass) error
}

// All is the registry of simlint's analyzers, in report order.
var All = []*Analyzer{Determinism, Hotpath, Traceguard, Faultflow, Monitorpoll, Snapshotguard, Cpiguard, Nexteventguard, Clocktaint, Configfreeze, Goroutineshare}

// ByName resolves a subset of All from comma-separated names.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: no analyzers selected")
	}
	return out, nil
}

// Diagnostic is one finding, positioned for file:line:col reporting.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Chain is the call chain an interprocedural finding was discovered
	// through ("issueTick → tryIssue → helper"); empty for direct
	// findings. The chain is already part of Message for human output —
	// this field carries it structured for -json consumers.
	Chain string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    []Diagnostic
}

// Fset returns the package's file set.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the package's parsed files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// Info returns the package's type information.
func (p *Pass) Info() *types.Info { return p.Pkg.Info }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// WithStack walks every file of the pass's package, calling fn with each
// node and the stack of its ancestors (stack[0] is the *ast.File,
// stack[len-1] is n itself). Returning false prunes the subtree.
func (p *Pass) WithStack(fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !fn(n, stack) {
				// Pruned subtrees get no closing nil from Inspect; pop now.
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		})
	}
}

// ProgramPass is one program-level analyzer's view of every loaded
// package plus the shared call graph.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program
	diags    []Diagnostic
}

// Reportf records a finding at pos, which must belong to pkg's file set.
func (pp *ProgramPass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	pp.diags = append(pp.diags, Diagnostic{
		Pos:      pkg.Fset.Position(pos),
		Analyzer: pp.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportChainf records an interprocedural finding with its discovery
// chain (the chain should also appear in the formatted message; this
// keeps it structured for -json output).
func (pp *ProgramPass) ReportChainf(pkg *Package, pos token.Pos, chain, format string, args ...any) {
	pp.diags = append(pp.diags, Diagnostic{
		Pos:      pkg.Fset.Position(pos),
		Analyzer: pp.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// RunAnalyzers runs the analyzers over the packages, drops suppressed
// findings (//simlint:allow), and returns the rest sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runAnalyzers(pkgs, analyzers, false)
}

// RunAnalyzersStrict additionally reports, as findings of the pseudo-
// analyzer "allow", every //simlint:allow directive that suppressed
// nothing — a stale suppression is a waived rule nobody is breaking,
// and deleting it restores coverage. Only meaningful when the named
// analyzers actually run: directives for analyzers outside the
// selection are never reported stale.
func RunAnalyzersStrict(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runAnalyzers(pkgs, analyzers, true)
}

func runAnalyzers(pkgs []*Package, analyzers []*Analyzer, strict bool) ([]Diagnostic, error) {
	sup := buildSuppressions(pkgs)
	prog := NewProgram(pkgs)
	ran := map[string]bool{}
	var out []Diagnostic
	keep := func(diags []Diagnostic) {
		for _, d := range diags {
			if !sup.suppressed(d.Analyzer, d.Pos) {
				out = append(out, d)
			}
		}
	}
	for _, a := range analyzers {
		ran[a.Name] = true
		if a.RunProgram != nil {
			pp := &ProgramPass{Analyzer: a, Prog: prog}
			if err := a.RunProgram(pp); err != nil {
				return nil, fmt.Errorf("analysis: %s: %w", a.Name, err)
			}
			keep(pp.diags)
			continue
		}
		for _, pkg := range pkgs {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
			keep(pass.diags)
		}
	}
	// A waiver without its justification is rejected outright (not just
	// under -strict-allow): the "-- reason" tail is the audit trail the
	// whole suppression scheme exists for. One report per comment, even
	// when it names several analyzers.
	reasonless := map[token.Position]bool{}
	for _, d := range sup.directives {
		if ran[d.name] && d.reason == "" && !reasonless[d.pos] {
			reasonless[d.pos] = true
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Analyzer: "allow",
				Message:  `//simlint:allow without a reason: append " -- <why>" so the waiver carries its justification`,
			})
		}
	}
	if strict {
		for _, d := range sup.directives {
			if ran[d.name] && !d.used {
				out = append(out, Diagnostic{
					Pos:      d.pos,
					Analyzer: "allow",
					Message: fmt.Sprintf("stale //simlint:allow %s: no %s finding fires here any more; delete the suppression",
						d.name, d.name),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// pathIn reports whether pkgPath matches one of the scope suffixes
// ("internal/gpu" matches both "repro/internal/gpu" and a fixture that
// re-creates it).
func pathIn(pkgPath string, scope []string) bool {
	for _, s := range scope {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// funcFor resolves a call expression's callee as a *types.Func, nil for
// builtins, conversions, and calls through function-typed values.
func funcFor(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isBuiltin reports whether the call is to the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// recvNamed returns the name of a method's receiver type (dereferenced),
// "" for non-methods.
func recvNamed(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// fromPkg reports whether f is declared in a package whose import path
// is pkgPath or ends in "/"+pkgPath.
func fromPkg(f *types.Func, pkgPath string) bool {
	return f != nil && f.Pkg() != nil &&
		(f.Pkg().Path() == pkgPath || strings.HasSuffix(f.Pkg().Path(), "/"+pkgPath))
}

// endsInPanic reports whether the block's last statement is a call to
// the panic builtin — the marker of a cold invariant-violation branch.
func endsInPanic(info *types.Info, b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	es, ok := b.List[len(b.List)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	return ok && isBuiltin(info, call, "panic")
}
