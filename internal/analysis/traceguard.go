package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Traceguard enforces the nil-guard emission pattern the observability
// layer's cost model rests on (internal/trace design constraint 1):
// every per-cycle trace call in the simulator must be behind an
// `if h != nil` check so an untraced run pays exactly one predictable
// branch per site — the property BenchmarkTracingOverhead certifies
// dynamically and this analyzer pins at the source level. An unguarded
// call is also a latent nil-pointer panic, since (*Tracer).ForSM
// returns nil for untraced SMs by design.
var Traceguard = &Analyzer{
	Name: "traceguard",
	Doc: "flag internal/trace hot-path emission calls (SMT.Emit, " +
		"Tracer.SetNow, Tracer.MaybeSample) not behind the nil-guard pattern",
	Run: runTraceguard,
}

// guardedTraceMethods are the per-cycle emission entry points, keyed by
// receiver type name.
var guardedTraceMethods = map[string]map[string]bool{
	"SMT":    {"Emit": true},
	"Tracer": {"SetNow": true, "MaybeSample": true},
}

func runTraceguard(p *Pass) error {
	// The trace package's own internals (and its tests) manipulate rings
	// directly; the guard contract binds its *callers*.
	if !p.Pkg.Fixture && strings.HasSuffix(p.Pkg.Path, "internal/trace") {
		return nil
	}
	info := p.Info()
	p.WithStack(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := funcFor(info, call)
		if fn == nil || !fromPkg(fn, "internal/trace") {
			return true
		}
		methods := guardedTraceMethods[recvNamed(fn)]
		if methods == nil || !methods[fn.Name()] {
			return true
		}
		key := types.ExprString(sel.X)
		if nilGuarded(info, stack, key) {
			return true
		}
		p.Reportf(call.Pos(), "%s.%s is not behind an `if %s != nil` guard: trace emission must keep the untraced fast path to one branch (and %s is nil for untraced SMs)", key, fn.Name(), key, key)
		return true
	})
	return nil
}

// nilGuarded reports whether the innermost node of stack is dominated
// by a check that the expression rendering to key is non-nil: either an
// enclosing `if key != nil { ... }` body, or an earlier
// `if key == nil { return }` statement in an enclosing block.
func nilGuarded(info *types.Info, stack []ast.Node, key string) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		child := stack[i+1]
		switch anc := stack[i].(type) {
		case *ast.IfStmt:
			if anc.Body == child && condAssertsNonNil(anc.Cond, key) {
				return true
			}
		case *ast.BlockStmt:
			stmt, ok := child.(ast.Stmt)
			if !ok {
				continue
			}
			for _, s := range anc.List {
				if s == stmt {
					break
				}
				ifs, ok := s.(*ast.IfStmt)
				if !ok {
					continue
				}
				if condIsNilCheck(ifs.Cond, key) && blockDiverts(info, ifs.Body) {
					return true
				}
			}
		}
	}
	return false
}

// condAssertsNonNil reports whether cond (or a conjunct of it) is
// `key != nil`.
func condAssertsNonNil(cond ast.Expr, key string) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			return condAssertsNonNil(c.X, key) || condAssertsNonNil(c.Y, key)
		case token.NEQ:
			return nilComparison(c, key)
		}
	}
	return false
}

// condIsNilCheck reports whether cond is `key == nil`.
func condIsNilCheck(cond ast.Expr, key string) bool {
	c, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	return ok && c.Op == token.EQL && nilComparison(c, key)
}

// nilComparison reports whether one side of the comparison is the nil
// identifier and the other renders to key.
func nilComparison(c *ast.BinaryExpr, key string) bool {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	switch {
	case isNil(c.Y):
		return types.ExprString(c.X) == key
	case isNil(c.X):
		return types.ExprString(c.Y) == key
	}
	return false
}

// blockDiverts reports whether the block unconditionally leaves the
// enclosing function or loop iteration (return, panic, continue, break)
// — the early-exit half of the guard idiom.
func blockDiverts(info *types.Info, b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		return ok && isBuiltin(info, call, "panic")
	}
	return false
}
