package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Traceguard enforces the nil-guard emission pattern the observability
// layer's cost model rests on (internal/trace design constraint 1, and
// the identical contract internal/metrics states for its handles):
// every per-cycle trace or metrics call in the simulator must be behind
// an `if h != nil` check so an untraced/unmetered run pays exactly one
// predictable branch per site — the property BenchmarkTracingOverhead
// and BenchmarkMetricsOverhead certify dynamically and this analyzer
// pins at the source level. An unguarded call is also a latent
// nil-pointer panic, since (*Tracer).ForSM and every metrics
// registration on a nil *Registry return nil handles by design.
//
// A guard on an owning prefix counts: `if m == nil { return }` covers
// `m.cells.Inc()` and `m.faults[k].Inc()`, because a metrics container
// populates all its handles at construction — non-nil container implies
// non-nil handles.
var Traceguard = &Analyzer{
	Name: "traceguard",
	Doc: "flag internal/trace hot-path emission calls (SMT.Emit, " +
		"Tracer.SetNow, Tracer.MaybeSample) and internal/metrics " +
		"hot-path updates (Counter.Inc/Add, Gauge.Set/Add, " +
		"Histogram.Observe) not behind the nil-guard pattern",
	Run: runTraceguard,
}

// guardedTraceMethods are the per-cycle emission entry points, keyed by
// receiver type name.
var guardedTraceMethods = map[string]map[string]bool{
	"SMT":    {"Emit": true},
	"Tracer": {"SetNow": true, "MaybeSample": true},
}

// guardedMetricsMethods are the metrics handle mutations that may sit on
// simulator hot paths, keyed by receiver type name. Registration methods
// are already nil-safe on a nil *Registry and need no guard.
var guardedMetricsMethods = map[string]map[string]bool{
	"Counter":   {"Inc": true, "Add": true},
	"Gauge":     {"Set": true, "Add": true},
	"Histogram": {"Observe": true},
}

func runTraceguard(p *Pass) error {
	// The trace and metrics packages' own internals (and their tests)
	// manipulate handles directly; the guard contract binds their
	// *callers*.
	if !p.Pkg.Fixture && (strings.HasSuffix(p.Pkg.Path, "internal/trace") ||
		strings.HasSuffix(p.Pkg.Path, "internal/metrics")) {
		return nil
	}
	info := p.Info()
	p.WithStack(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := funcFor(info, call)
		if fn == nil {
			return true
		}
		var isMetrics bool
		switch {
		case fromPkg(fn, "internal/trace") && guardedTraceMethods[recvNamed(fn)][fn.Name()]:
		case fromPkg(fn, "internal/metrics") && guardedMetricsMethods[recvNamed(fn)][fn.Name()]:
			isMetrics = true
		default:
			return true
		}
		key := types.ExprString(sel.X)
		if nilGuarded(info, stack, key) {
			return true
		}
		if isMetrics {
			p.Reportf(call.Pos(), "%s.%s is not behind a nil guard: metrics updates must keep the disabled fast path to one branch — guard %s (or the container that owns it) against nil", key, fn.Name(), key)
		} else {
			p.Reportf(call.Pos(), "%s.%s is not behind an `if %s != nil` guard: trace emission must keep the untraced fast path to one branch (and %s is nil for untraced SMs)", key, fn.Name(), key, key)
		}
		return true
	})
	return nil
}

// nilGuarded reports whether the innermost node of stack is dominated
// by a check that the expression rendering to key — or an owning prefix
// of it — is non-nil: either an enclosing `if key != nil { ... }` body,
// or an earlier `if key == nil { return }` statement in an enclosing
// block.
func nilGuarded(info *types.Info, stack []ast.Node, key string) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		child := stack[i+1]
		switch anc := stack[i].(type) {
		case *ast.IfStmt:
			if anc.Body == child && condAssertsNonNil(anc.Cond, key) {
				return true
			}
		case *ast.BlockStmt:
			stmt, ok := child.(ast.Stmt)
			if !ok {
				continue
			}
			for _, s := range anc.List {
				if s == stmt {
					break
				}
				ifs, ok := s.(*ast.IfStmt)
				if !ok {
					continue
				}
				if condIsNilCheck(ifs.Cond, key) && blockDiverts(info, ifs.Body) {
					return true
				}
			}
		}
	}
	return false
}

// condAssertsNonNil reports whether cond (or a conjunct of it) is
// `key != nil`.
func condAssertsNonNil(cond ast.Expr, key string) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			return condAssertsNonNil(c.X, key) || condAssertsNonNil(c.Y, key)
		case token.NEQ:
			return nilComparison(c, key)
		}
	}
	return false
}

// condIsNilCheck reports whether cond is `key == nil`.
func condIsNilCheck(cond ast.Expr, key string) bool {
	c, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	return ok && c.Op == token.EQL && nilComparison(c, key)
}

// nilComparison reports whether one side of the comparison is the nil
// identifier and the other renders to key or to an owning prefix of it.
func nilComparison(c *ast.BinaryExpr, key string) bool {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	switch {
	case isNil(c.Y):
		return guardCovers(types.ExprString(c.X), key)
	case isNil(c.X):
		return guardCovers(types.ExprString(c.Y), key)
	}
	return false
}

// guardCovers reports whether a nil check on the expression rendering to
// guard establishes that key is non-nil: either the same expression, or
// an owning prefix of it (`m` covers `m.cells` and `m.faults[k]`) — the
// container-guard idiom, valid because the observability containers
// populate every handle at construction.
func guardCovers(guard, key string) bool {
	if guard == key {
		return true
	}
	return strings.HasPrefix(key, guard) && len(key) > len(guard) &&
		(key[len(guard)] == '.' || key[len(guard)] == '[')
}

// blockDiverts reports whether the block unconditionally leaves the
// enclosing function or loop iteration (return, panic, continue, break)
// — the early-exit half of the guard idiom.
func blockDiverts(info *types.Info, b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		return ok && isBuiltin(info, call, "panic")
	}
	return false
}
