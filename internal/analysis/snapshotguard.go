package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Snapshotguard is the static half of the snapshot-coverage contract
// from docs/ROBUSTNESS.md. The dynamic half — snapshot.Coverage in each
// package's TestSnapshotCoverage — proves at run time that every field
// of a snapshotted struct is either encoded or carries an explicit
// "skip:" justification. This analyzer enforces the same ledger at the
// source level, where it also catches what reflection cannot: a
// manifest orphaned by a struct rename, a state struct that never got a
// manifest at all, and an entry whose value is neither "encoded" nor a
// "skip: reason".
//
// The convention it binds: a package-level
//
//	var <x>Manifest = map[string]string{...}
//
// documents the struct whose name matches <x> case-insensitively
// (smManifest → SM, launchManifest → launch). Every field of that
// struct must appear as a key; every key must name a field; every value
// must begin with "encoded" or "skip:". Structs whose doc comment
// carries a //snapshot:state line must have a manifest — that marker is
// how a new mutable-state struct is pulled into the contract before
// anyone remembers to write its encoder.
var Snapshotguard = &Analyzer{
	Name: "snapshotguard",
	Doc: "flag snapshot-manifest drift: state-struct fields missing from " +
		"their <x>Manifest ledger, stale manifest keys, orphaned " +
		"manifests, malformed entries, and //snapshot:state structs " +
		"with no manifest at all",
	Run: runSnapshotguard,
}

// manifestDecl is one `var <x>Manifest = map[string]string{...}`.
type manifestDecl struct {
	name string    // full var name, e.g. "smManifest"
	base string    // name minus the Manifest suffix, e.g. "sm"
	pos  token.Pos // the var name
	keys []manifestKey
}

type manifestKey struct {
	key      string
	pos      token.Pos // the key literal
	valuePos token.Pos // the value literal
	value    string
	valueLit bool // value was a plain string literal we could read
}

// structDecl is one package-level struct type.
type structDecl struct {
	name   string
	pos    token.Pos
	fields []fieldDecl
	marked bool // doc comment carries //snapshot:state
}

type fieldDecl struct {
	name string
	pos  token.Pos
}

func runSnapshotguard(p *Pass) error {
	var manifests []manifestDecl
	structs := map[string]*structDecl{}
	var order []string // deterministic report order for marked structs

	for _, f := range p.Files() {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.VAR:
				for _, spec := range gd.Specs {
					collectManifests(spec, &manifests)
				}
			case token.TYPE:
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					sd := &structDecl{
						name:   ts.Name.Name,
						pos:    ts.Pos(),
						marked: hasStateMarker(gd.Doc) || hasStateMarker(ts.Doc),
					}
					for _, fld := range st.Fields.List {
						if len(fld.Names) == 0 {
							// Embedded field: reflection names it after its type,
							// and so does snapshot.Coverage.
							if name := embeddedName(fld.Type); name != "" {
								sd.fields = append(sd.fields, fieldDecl{name: name, pos: fld.Pos()})
							}
							continue
						}
						for _, id := range fld.Names {
							sd.fields = append(sd.fields, fieldDecl{name: id.Name, pos: id.Pos()})
						}
					}
					structs[sd.name] = sd
					order = append(order, sd.name)
				}
			}
		}
	}
	if len(manifests) == 0 && len(order) == 0 {
		return nil
	}

	hasManifest := map[string]bool{} // struct name → a manifest covers it
	for _, m := range manifests {
		sd := matchStruct(structs, m.base)
		if sd == nil {
			p.Reportf(m.pos, "%s matches no struct in this package (no type named %q, case-insensitively) — it documents nothing; rename it to <struct>Manifest or delete it", m.name, m.base)
			continue
		}
		hasManifest[sd.name] = true
		covered := map[string]token.Pos{}
		for _, k := range m.keys {
			covered[k.key] = k.pos
			if k.valueLit && !strings.HasPrefix(k.value, "encoded") && !strings.HasPrefix(k.value, "skip:") {
				p.Reportf(k.valuePos, "%s[%q] = %q is neither \"encoded...\" nor \"skip: reason\" — the manifest is a ledger, every entry states which", m.name, k.key, k.value)
			}
		}
		fieldSet := map[string]bool{}
		for _, fd := range sd.fields {
			fieldSet[fd.name] = true
			if _, ok := covered[fd.name]; !ok {
				p.Reportf(fd.pos, "field %s.%s is not in %s — encode it and bump snapshot.Version, or record an explicit \"skip: ...\" entry", sd.name, fd.name, m.name)
			}
		}
		for _, k := range m.keys {
			if !fieldSet[k.key] {
				p.Reportf(k.pos, "%s entry %q names no field of %s — remove the stale entry", m.name, k.key, sd.name)
			}
		}
	}

	for _, name := range order {
		sd := structs[name]
		if sd.marked && !hasManifest[sd.name] {
			p.Reportf(sd.pos, "struct %s is marked //snapshot:state but no <x>Manifest matches it — its mutable state would silently fall out of snapshots; add the manifest (and encoder) or drop the marker", sd.name)
		}
	}
	return nil
}

// collectManifests appends spec to out if it is a
// `<x>Manifest = map[string]string{...}` value spec.
func collectManifests(spec ast.Spec, out *[]manifestDecl) {
	vs, ok := spec.(*ast.ValueSpec)
	if !ok {
		return
	}
	for i, id := range vs.Names {
		if !strings.HasSuffix(id.Name, "Manifest") || i >= len(vs.Values) {
			continue
		}
		cl, ok := vs.Values[i].(*ast.CompositeLit)
		if !ok || !isMapStringString(cl.Type) {
			continue
		}
		m := manifestDecl{
			name: id.Name,
			base: strings.TrimSuffix(id.Name, "Manifest"),
			pos:  id.Pos(),
		}
		for _, elt := range cl.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := stringLit(kv.Key)
			if !ok {
				continue
			}
			mk := manifestKey{key: key, pos: kv.Key.Pos(), valuePos: kv.Value.Pos()}
			mk.value, mk.valueLit = stringLit(kv.Value)
			m.keys = append(m.keys, mk)
		}
		*out = append(*out, m)
	}
}

// matchStruct resolves a manifest base name to its struct: an exact
// name match wins, then a unique case-insensitive one.
func matchStruct(structs map[string]*structDecl, base string) *structDecl {
	if sd, ok := structs[base]; ok {
		return sd
	}
	var found *structDecl
	for name, sd := range structs {
		if strings.EqualFold(name, base) {
			if found != nil {
				return nil // ambiguous; treat as unmatched
			}
			found = sd
		}
	}
	return found
}

// hasStateMarker reports whether the comment group contains a
// //snapshot:state directive line.
func hasStateMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), "//snapshot:state") {
			return true
		}
	}
	return false
}

// embeddedName returns the field name reflection gives an embedded
// field: the bare type name, through pointers and package qualifiers.
func embeddedName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return embeddedName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return embeddedName(e.X)
	case *ast.IndexListExpr:
		return embeddedName(e.X)
	}
	return ""
}

// stringLit unquotes a basic string literal expression.
func stringLit(expr ast.Expr) (string, bool) {
	bl, ok := ast.Unparen(expr).(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING || len(bl.Value) < 2 {
		return "", false
	}
	// Manifest keys and values are plain double-quoted literals without
	// escapes in practice; a strconv.Unquote failure just skips the entry.
	if bl.Value[0] == '`' {
		return strings.Trim(bl.Value, "`"), true
	}
	s := bl.Value[1 : len(bl.Value)-1]
	if strings.ContainsRune(s, '\\') {
		return "", false
	}
	return s, true
}

// isMapStringString matches the ast of `map[string]string`.
func isMapStringString(expr ast.Expr) bool {
	mt, ok := expr.(*ast.MapType)
	if !ok {
		return false
	}
	k, ok := mt.Key.(*ast.Ident)
	if !ok || k.Name != "string" {
		return false
	}
	v, ok := mt.Value.(*ast.Ident)
	return ok && v.Name == "string"
}
