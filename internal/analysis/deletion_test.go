package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// These tests demonstrate the guards' sensitivity the way a regression
// would arrive: a minimal, fully wired package is clean, and deleting
// exactly one load-bearing line — a term of the CPI sum, a NextEvent
// consultation — makes the corresponding analyzer fire.

func snippetDiags(t *testing.T, name, src string, az *Analyzer) []Diagnostic {
	t.Helper()
	diags, err := RunAnalyzers(writeSnippet(t, name, src), []*Analyzer{az})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	return diags
}

func wantClean(t *testing.T, diags []Diagnostic) {
	t.Helper()
	for _, d := range diags {
		t.Errorf("intact variant should be clean, got: %s", d)
	}
}

func wantFinding(t *testing.T, diags []Diagnostic, substr string) {
	t.Helper()
	for _, d := range diags {
		if strings.Contains(d.Message, substr) {
			return
		}
	}
	t.Errorf("no diagnostic contains %q; got %d diagnostics: %v", substr, len(diags), diags)
}

const cpiDemoSrc = `package cpidemo

type CPIComponent int

const (
	CPIBase CPIComponent = iota
	CPIMem
	NumCPIComponents
)

type StallReason int

const (
	StallNone StallReason = iota
	StallMem
	NumStallReasons
)

type SubCore struct {
	Cycles      int64
	StallCycles [NumStallReasons]int64
}

var cpiLedger = map[string]string{
	"Cycles":      "cycle: the CPIBase slice",
	"StallCycles": "cycle: per-reason buckets",
	"StallNone":   "event: marks an issued cycle at attribution time",
}

func (s *SubCore) CPI(c *[NumCPIComponents]float64) {
	c[CPIBase] = float64(s.Cycles)
	c[CPIMem] = float64(s.StallCycles[StallMem])
}
`

func TestCpiguardCatchesDeletedSumTerm(t *testing.T) {
	wantClean(t, snippetDiags(t, "cpidemo", cpiDemoSrc, Cpiguard))

	// Delete the CPIMem term of the sum: the component goes unassigned,
	// the stall reason unconsulted, and the counter unread — all three
	// statically visible consequences of the one-line regression.
	term := "\tc[CPIMem] = float64(s.StallCycles[StallMem])\n"
	if !strings.Contains(cpiDemoSrc, term) {
		t.Fatal("demo source drifted: sum term not found")
	}
	diags := snippetDiags(t, "cpidemo", strings.Replace(cpiDemoSrc, term, "", 1), Cpiguard)
	wantFinding(t, diags, "CPI component CPIMem is never assigned")
	wantFinding(t, diags, "stall reason StallMem is neither consulted")
	wantFinding(t, diags, "SubCore.StallCycles is classified cycle in cpiLedger but never read")
}

const neDemoSrc = `package nedemo

//snapshot:state
type engine struct {
	fill int64
}

func (e *engine) Tick() {
	e.fill++
	if e.fill > 8 {
		e.fill = 0
	}
}

func (e *engine) NextEvent(now int64) int64 {
	if e.fill > 0 {
		return now + 1
	}
	return now + 8
}
`

// writeFixtureTree materializes a multi-package fixture (relative path
// → source) under a temp dir and loads it the fixture way; sub-packages
// import each other as "fixture/<name>/<subdir>".
func writeFixtureTree(t *testing.T, name string, files map[string]string) []*Package {
	t.Helper()
	dir := filepath.Join(t.TempDir(), name)
	for rel, src := range files {
		p := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := LoadFixture(dir)
	if err != nil {
		t.Fatalf("LoadFixture: %v", err)
	}
	return pkgs
}

const ctDemoSrc = `package ctdemo

import "time"

//snapshot:state
type engine struct {
	clock int64
}

// stamp records the cycle the engine reached; the wall-clock duration
// stays in the caller's (unsnapshotted) report.
func (e *engine) stamp(cycle int64, start time.Time) time.Duration {
	wall := time.Since(start)
	e.clock = cycle
	return wall
}
`

func TestClocktaintCatchesReroutedClock(t *testing.T) {
	wantClean(t, snippetDiags(t, "ctdemo", ctDemoSrc, Clocktaint))

	// Route the wall-clock value into the snapshotted field instead of
	// the simulated cycle: the resumed run would now disagree with the
	// undisturbed one byte-for-byte.
	store := "e.clock = cycle"
	if !strings.Contains(ctDemoSrc, store) {
		t.Fatal("demo source drifted: cycle store not found")
	}
	diags := snippetDiags(t, "ctdemo", strings.Replace(ctDemoSrc, store, "e.clock = int64(wall)", 1), Clocktaint)
	wantFinding(t, diags, "snapshot:state field engine.clock")
}

var cfDemoFiles = map[string]string{
	"config/config.go": `package config

type GPU struct{ NumSMs int }

func Default() GPU { return GPU{NumSMs: 2} }
`,
	"cfdemo.go": `package cfdemo

import "fixture/cfdemo/config"

type device struct{ cfg config.GPU }

func newDevice(cfg config.GPU) *device { return &device{cfg: cfg} }

func build(sms int) *device {
	cfg := config.Default()
	cfg.NumSMs = sms
	return newDevice(cfg)
}
`,
}

func TestConfigfreezeCatchesUnfrozenWrite(t *testing.T) {
	diags, err := RunAnalyzers(writeFixtureTree(t, "cfdemo", cfDemoFiles), []*Analyzer{Configfreeze})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	wantClean(t, diags)

	// Move the same field write to after construction: the config is
	// live and frozen, and the write must fire the guard.
	pre := "cfg.NumSMs = sms\n\treturn newDevice(cfg)"
	if !strings.Contains(cfDemoFiles["cfdemo.go"], pre) {
		t.Fatal("demo source drifted: pre-construction write not found")
	}
	mutated := map[string]string{
		"config/config.go": cfDemoFiles["config/config.go"],
		"cfdemo.go": strings.Replace(cfDemoFiles["cfdemo.go"], pre,
			"d := newDevice(cfg)\n\td.cfg.NumSMs = sms\n\treturn d", 1),
	}
	diags, err = RunAnalyzers(writeFixtureTree(t, "cfdemo", mutated), []*Analyzer{Configfreeze})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	wantFinding(t, diags, "config field GPU.NumSMs written outside a constructor/option func")
}

const gsDemoSrc = `package gsdemo

import "sync"

func sweep(n int) int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}
`

func TestGoroutineshareCatchesDeletedLock(t *testing.T) {
	wantClean(t, snippetDiags(t, "gsdemo", gsDemoSrc, Goroutineshare))

	// Delete the Lock: the looped worker's increment is now the classic
	// lost-update race and the guard must fire.
	lock := "\t\t\tmu.Lock()\n"
	if !strings.Contains(gsDemoSrc, lock) {
		t.Fatal("demo source drifted: Lock not found")
	}
	diags := snippetDiags(t, "gsdemo", strings.Replace(gsDemoSrc, lock, "", 1), Goroutineshare)
	wantFinding(t, diags, "unguarded increment of total")
}

func TestNexteventguardCatchesDeletedConsultation(t *testing.T) {
	wantClean(t, snippetDiags(t, "nedemo", neDemoSrc, Nexteventguard))

	// Replace the quiescence consultation with a fill-blind condition:
	// the field still evolves on the Tick path but NextEvent can no
	// longer see it, so fast-forward would skip cycles it must not.
	consult := "if e.fill > 0 {"
	if !strings.Contains(neDemoSrc, consult) {
		t.Fatal("demo source drifted: consultation not found")
	}
	diags := snippetDiags(t, "nedemo", strings.Replace(neDemoSrc, consult, "if now%2 == 0 {", 1), Nexteventguard)
	wantFinding(t, diags, "field engine.fill is read and mutated on the Tick path but never consulted by any NextEvent")
}
