package analysis

import (
	"strings"
	"testing"
)

// These tests demonstrate the guards' sensitivity the way a regression
// would arrive: a minimal, fully wired package is clean, and deleting
// exactly one load-bearing line — a term of the CPI sum, a NextEvent
// consultation — makes the corresponding analyzer fire.

func snippetDiags(t *testing.T, name, src string, az *Analyzer) []Diagnostic {
	t.Helper()
	diags, err := RunAnalyzers(writeSnippet(t, name, src), []*Analyzer{az})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	return diags
}

func wantClean(t *testing.T, diags []Diagnostic) {
	t.Helper()
	for _, d := range diags {
		t.Errorf("intact variant should be clean, got: %s", d)
	}
}

func wantFinding(t *testing.T, diags []Diagnostic, substr string) {
	t.Helper()
	for _, d := range diags {
		if strings.Contains(d.Message, substr) {
			return
		}
	}
	t.Errorf("no diagnostic contains %q; got %d diagnostics: %v", substr, len(diags), diags)
}

const cpiDemoSrc = `package cpidemo

type CPIComponent int

const (
	CPIBase CPIComponent = iota
	CPIMem
	NumCPIComponents
)

type StallReason int

const (
	StallNone StallReason = iota
	StallMem
	NumStallReasons
)

type SubCore struct {
	Cycles      int64
	StallCycles [NumStallReasons]int64
}

var cpiLedger = map[string]string{
	"Cycles":      "cycle: the CPIBase slice",
	"StallCycles": "cycle: per-reason buckets",
	"StallNone":   "event: marks an issued cycle at attribution time",
}

func (s *SubCore) CPI(c *[NumCPIComponents]float64) {
	c[CPIBase] = float64(s.Cycles)
	c[CPIMem] = float64(s.StallCycles[StallMem])
}
`

func TestCpiguardCatchesDeletedSumTerm(t *testing.T) {
	wantClean(t, snippetDiags(t, "cpidemo", cpiDemoSrc, Cpiguard))

	// Delete the CPIMem term of the sum: the component goes unassigned,
	// the stall reason unconsulted, and the counter unread — all three
	// statically visible consequences of the one-line regression.
	term := "\tc[CPIMem] = float64(s.StallCycles[StallMem])\n"
	if !strings.Contains(cpiDemoSrc, term) {
		t.Fatal("demo source drifted: sum term not found")
	}
	diags := snippetDiags(t, "cpidemo", strings.Replace(cpiDemoSrc, term, "", 1), Cpiguard)
	wantFinding(t, diags, "CPI component CPIMem is never assigned")
	wantFinding(t, diags, "stall reason StallMem is neither consulted")
	wantFinding(t, diags, "SubCore.StallCycles is classified cycle in cpiLedger but never read")
}

const neDemoSrc = `package nedemo

//snapshot:state
type engine struct {
	fill int64
}

func (e *engine) Tick() {
	e.fill++
	if e.fill > 8 {
		e.fill = 0
	}
}

func (e *engine) NextEvent(now int64) int64 {
	if e.fill > 0 {
		return now + 1
	}
	return now + 8
}
`

func TestNexteventguardCatchesDeletedConsultation(t *testing.T) {
	wantClean(t, snippetDiags(t, "nedemo", neDemoSrc, Nexteventguard))

	// Replace the quiescence consultation with a fill-blind condition:
	// the field still evolves on the Tick path but NextEvent can no
	// longer see it, so fast-forward would skip cycles it must not.
	consult := "if e.fill > 0 {"
	if !strings.Contains(neDemoSrc, consult) {
		t.Fatal("demo source drifted: consultation not found")
	}
	diags := snippetDiags(t, "nedemo", strings.Replace(neDemoSrc, consult, "if now%2 == 0 {", 1), Nexteventguard)
	wantFinding(t, diags, "field engine.fill is read and mutated on the Tick path but never consulted by any NextEvent")
}
