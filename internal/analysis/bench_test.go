package analysis

import "testing"

// BenchmarkSimlint measures a whole-module analysis pass — load,
// type-check, all five analyzers — the same work `go run ./cmd/simlint
// ./...` performs. CI runs it once as a smoke with a wall-clock budget
// (see .github/workflows/ci.yml); the point is to keep the linter cheap
// enough to sit in the tier-1 gate.
func BenchmarkSimlint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pkgs, err := Load("repro/...")
		if err != nil {
			b.Fatalf("Load: %v", err)
		}
		diags, err := RunAnalyzers(pkgs, All)
		if err != nil {
			b.Fatalf("RunAnalyzers: %v", err)
		}
		if len(diags) != 0 {
			b.Fatalf("tree is not simlint-clean: %v", diags[0])
		}
	}
}
