package analysis

import (
	"testing"
	"time"
)

// BenchmarkSimlint measures a whole-module analysis pass — load,
// type-check, all eleven analyzers — the same work `go run ./cmd/simlint
// ./...` performs. CI runs it once as a smoke with a wall-clock budget
// (see .github/workflows/ci.yml); the point is to keep the linter cheap
// enough to sit in the tier-1 gate.
func BenchmarkSimlint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pkgs, err := Load("repro/...")
		if err != nil {
			b.Fatalf("Load: %v", err)
		}
		diags, err := RunAnalyzers(pkgs, All)
		if err != nil {
			b.Fatalf("RunAnalyzers: %v", err)
		}
		if len(diags) != 0 {
			b.Fatalf("tree is not simlint-clean: %v", diags[0])
		}
	}
}

// BenchmarkDataflow isolates the value-flow engine: one whole-module
// taint closure under the clock-source spec, loader cost excluded. This
// is the part of the v3 suite that scales with program size (fixpoint
// passes over every function body), so it gets its own number.
func BenchmarkDataflow(b *testing.B) {
	pkgs, err := Load("repro/...")
	if err != nil {
		b.Fatalf("Load: %v", err)
	}
	prog := NewProgram(pkgs)
	prog.CallGraph() // build outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := RunDataflow(prog, TaintSpec{Source: clockSource})
		if d == nil {
			b.Fatal("RunDataflow returned nil")
		}
	}
}

// simlintBudget is the CI wall-clock ceiling for one whole-module pass
// of the full suite. The budget is generous on purpose: the gate exists
// to catch an accidental fixpoint blow-up (a dataflow pass going
// superlinear), not to tune constants.
const simlintBudget = 30 * time.Second

// TestSimlintBudget asserts the whole-module eleven-analyzer pass fits
// the CI budget, and logs the measured time so regressions are visible
// in test output before they ever trip the ceiling.
func TestSimlintBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	start := time.Now()
	pkgs, err := Load("repro/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	loaded := time.Now()
	if _, err := RunAnalyzers(pkgs, All); err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	analyzed := time.Now()
	t.Logf("whole-module simlint pass: load %v, analyze %v, total %v (budget %v)",
		loaded.Sub(start).Round(time.Millisecond),
		analyzed.Sub(loaded).Round(time.Millisecond),
		analyzed.Sub(start).Round(time.Millisecond), simlintBudget)
	if total := analyzed.Sub(start); total > simlintBudget {
		t.Fatalf("whole-module simlint pass took %v, over the %v CI budget", total, simlintBudget)
	}
}
