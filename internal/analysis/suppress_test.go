package analysis

import (
	"strings"
	"testing"
)

// Edge cases of the suppression layer: directive placement (same line
// vs the line above vs the doc comment), several analyzers waived by
// one directive, several directives on one line, and the reasonless
// rejection. The snippet is designed so the hotpath analyzer fires on
// every `tick*` function unless a directive covers the allocation.

func suppressDiags(t *testing.T, src string, strict bool) []Diagnostic {
	t.Helper()
	run := RunAnalyzers
	if strict {
		run = RunAnalyzersStrict
	}
	diags, err := run(writeSnippet(t, "supdemo", src), []*Analyzer{Hotpath, Determinism})
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	return diags
}

func countByAnalyzer(diags []Diagnostic, name string) int {
	c := 0
	for _, d := range diags {
		if d.Analyzer == name {
			c++
		}
	}
	return c
}

func TestAllowSameLineAndLineAbove(t *testing.T) {
	diags := suppressDiags(t, `package supdemo

func tickSame() []int {
	return make([]int, 8) //simlint:allow hotpath -- fixture: same-line placement
}

func tickAbove() []int {
	//simlint:allow hotpath -- fixture: line-above placement
	return make([]int, 8)
}

func tickUncovered() []int {
	//simlint:allow hotpath -- fixture: two lines above, out of coverage

	return make([]int, 8)
}
`, false)
	if n := countByAnalyzer(diags, "hotpath"); n != 1 {
		t.Errorf("want exactly the uncovered allocation flagged, got %d: %v", n, diags)
	}
	for _, d := range diags {
		if d.Analyzer == "hotpath" && d.Pos.Line != 15 {
			t.Errorf("finding at line %d, want the uncovered site at 15: %s", d.Pos.Line, d)
		}
	}
}

func TestAllowDocCommentCoversWholeFunc(t *testing.T) {
	diags := suppressDiags(t, `package supdemo

// tick allocates twice; the doc-comment directive covers both.
//
//simlint:allow hotpath -- fixture: whole-declaration coverage
func tick() ([]int, []int) {
	a := make([]int, 8)
	b := make([]int, 8)
	return a, b
}
`, false)
	if len(diags) != 0 {
		t.Errorf("doc-comment directive should cover the whole body, got: %v", diags)
	}
}

func TestAllowMultipleNamesOneDirective(t *testing.T) {
	// One directive waives two analyzers on the same line: a hot-path
	// allocation whose size comes from a determinism violation.
	diags := suppressDiags(t, `package supdemo

import "time"

func tick() []int {
	return make([]int, time.Now().Second()) //simlint:allow hotpath, determinism -- fixture: one directive, two analyzers
}
`, false)
	if len(diags) != 0 {
		t.Errorf("multi-name directive should waive both analyzers, got: %v", diags)
	}
}

func TestAllowMultipleDirectivesPerLine(t *testing.T) {
	// Stacked single-name directives above the site compose the same
	// coverage as one multi-name directive on it.
	diags := suppressDiags(t, `package supdemo

import "time"

func tick() []int {
	//simlint:allow hotpath -- fixture: stacked directive one
	//simlint:allow determinism -- fixture: stacked directive two
	return make([]int, time.Now().Second())
}
`, false)
	// The hotpath directive sits two lines above the site — out of its
	// line+next coverage — so exactly the hotpath finding survives.
	if n := countByAnalyzer(diags, "hotpath"); n != 1 {
		t.Errorf("want 1 hotpath finding (directive out of range), got %d: %v", n, diags)
	}
	if n := countByAnalyzer(diags, "determinism"); n != 0 {
		t.Errorf("determinism directive is in range, got %d findings: %v", n, diags)
	}
}

func TestAllowEmptyReasonRejected(t *testing.T) {
	diags := suppressDiags(t, `package supdemo

func tickBare() []int {
	return make([]int, 8) //simlint:allow hotpath
}

func tickDashes() []int {
	return make([]int, 8) //simlint:allow hotpath --
}

func tickReasoned() []int {
	return make([]int, 8) //simlint:allow hotpath -- fixture: a proper reason
}
`, false)
	// The reasonless directives still suppress their findings (one
	// problem at a time) but are themselves reported.
	if n := countByAnalyzer(diags, "hotpath"); n != 0 {
		t.Errorf("suppression should still apply, got %d hotpath findings: %v", n, diags)
	}
	if n := countByAnalyzer(diags, "allow"); n != 2 {
		t.Errorf("want both reasonless directives reported, got %d: %v", n, diags)
	}
	for _, d := range diags {
		if d.Analyzer == "allow" && !strings.Contains(d.Message, "without a reason") {
			t.Errorf("unexpected allow-analyzer message: %s", d)
		}
	}
}

func TestAllowEmptyReasonReportedOncePerComment(t *testing.T) {
	diags := suppressDiags(t, `package supdemo

import "time"

func tick() []int {
	return make([]int, time.Now().Second()) //simlint:allow hotpath, determinism
}
`, false)
	if n := countByAnalyzer(diags, "allow"); n != 1 {
		t.Errorf("one comment, one report — got %d: %v", n, diags)
	}
}

func TestAllowEmptyReasonOutsideSelectionIgnored(t *testing.T) {
	// The directive waives an analyzer that is not running; like the
	// stale-allow rule, the reasonless rule only speaks for analyzers
	// whose findings it could actually be suppressing.
	diags := suppressDiags(t, `package supdemo

func tick() []int {
	return make([]int, 8) //simlint:allow hotpath -- fixture: reasoned
}

func setup() {
	_ = 0 //simlint:allow goroutineshare
}
`, false)
	if len(diags) != 0 {
		t.Errorf("goroutineshare is not in the selection, got: %v", diags)
	}
}

func TestStrictAllowStillReportsStale(t *testing.T) {
	// Regression guard for the interaction: a reasoned but stale
	// directive is silent normally and reported under strict.
	src := `package supdemo

func setup() []int {
	return make([]int, 8) //simlint:allow hotpath -- fixture: nothing fires in a cold func
}
`
	if diags := suppressDiags(t, src, false); len(diags) != 0 {
		t.Errorf("non-strict run should be clean, got: %v", diags)
	}
	diags := suppressDiags(t, src, true)
	if n := countByAnalyzer(diags, "allow"); n != 1 {
		t.Errorf("strict run should report the stale directive, got %d: %v", n, diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "stale") {
			t.Errorf("unexpected strict finding: %s", d)
		}
	}
}
