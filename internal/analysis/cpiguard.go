package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Cpiguard is the static half of the top-down CPI-stack identity
// (docs/METHODOLOGY.md): per SM × sub-core, the CPI components must sum
// bit-exactly to elapsed cycles, which CheckCPI verifies dynamically at
// the end of every run. The identity only holds while three wiring
// invariants do, and each has historically silent failure modes this
// analyzer pins at the source level:
//
//   - every CPIComponent constant must be assigned in (*SubCore).CPI —
//     an unassigned component is a term silently dropped from the sum;
//   - every StallReason constant must either be consulted in CPI
//     (s.StallCycles[Reason]) or carry an "event:" entry in the
//     cpiLedger explaining why its cycles are charged elsewhere;
//   - every field of the SubCore counter struct must be classified in a
//     package-level cpiLedger map — "cycle..." for counters that feed
//     the stack (and must therefore be read in CPI), "event: <reason>"
//     for occurrence counters outside the cycle identity. Program-wide,
//     any site that mutates an unclassified SubCore field is flagged:
//     a counter bumped at an issue-attribution site in internal/smcore
//     but absent from the ledger is exactly how the stack drifts out of
//     the cycles identity between dynamic checks.
//
// The analyzer activates in any package declaring a SubCore struct with
// a CPI method (internal/stats, and its golden fixture); elsewhere it
// is inert.
var Cpiguard = &Analyzer{
	Name: "cpiguard",
	Doc: "flag CPI-stack wiring drift: CPIComponent constants never " +
		"assigned in (*SubCore).CPI, StallReason constants neither " +
		"consulted nor event-ledgered, SubCore counter fields missing " +
		"from the cpiLedger, and mutations of unclassified counters " +
		"anywhere in the program",
	RunProgram: runCpiguard,
}

// cpiTarget is one package that declares the CPI accounting shape.
type cpiTarget struct {
	pkg    *Package
	ledger map[string]string // field or reason name -> classification
}

func runCpiguard(pp *ProgramPass) error {
	var targets []*cpiTarget
	for _, pkg := range pp.Prog.Pkgs {
		if t := checkCPIPackage(pp, pkg); t != nil {
			targets = append(targets, t)
		}
	}
	for _, t := range targets {
		checkCPIMutations(pp, t)
	}
	return nil
}

// checkCPIPackage runs the ledger checks if pkg declares SubCore with a
// CPI method, returning the target for the program-wide mutation scan.
func checkCPIPackage(pp *ProgramPass, pkg *Package) *cpiTarget {
	var subCore *ast.StructType
	var subCorePos token.Pos
	var cpiDecl *ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || ts.Name.Name != "SubCore" {
						continue
					}
					if st, ok := ts.Type.(*ast.StructType); ok {
						subCore, subCorePos = st, ts.Pos()
					}
				}
			case *ast.FuncDecl:
				if d.Name.Name != "CPI" || d.Recv == nil || d.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok && recvNamed(fn) == "SubCore" {
					cpiDecl = d
				}
			}
		}
	}
	if subCore == nil || cpiDecl == nil {
		return nil
	}

	// What CPI() actually wires in.
	assigned := map[string]bool{}  // CPIComponent constants written as c[X]
	consulted := map[string]bool{} // StallReason constants read as .StallCycles[R]
	readFields := map[string]bool{}
	ast.Inspect(cpiDecl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if name, ok := constOf(pkg.Info, ix.Index, "CPIComponent"); ok {
						assigned[name] = true
					}
				}
			}
		case *ast.IndexExpr:
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok && sel.Sel.Name == "StallCycles" {
				if name, ok := constOf(pkg.Info, n.Index, "StallReason"); ok {
					consulted[name] = true
				}
			}
		case *ast.SelectorExpr:
			if fieldOfStruct(pkg.Info, n, pkg.Path, "SubCore") != "" {
				readFields[n.Sel.Name] = true
			}
		}
		return true
	})

	// The ledger.
	ledger := map[string]string{}
	ledgerEntryPos := map[string]token.Pos{}
	var haveLedger bool
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name != "cpiLedger" || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok || !isMapStringString(cl.Type) {
						continue
					}
					haveLedger = true
					for _, elt := range cl.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := stringLit(kv.Key)
						if !ok {
							continue
						}
						val, valLit := stringLit(kv.Value)
						ledger[key] = val
						ledgerEntryPos[key] = kv.Key.Pos()
						if valLit && !strings.HasPrefix(val, "cycle") && !strings.HasPrefix(val, "event:") {
							pp.Reportf(pkg, kv.Value.Pos(), "cpiLedger[%q] = %q is neither \"cycle...\" nor \"event: <reason>\" — the ledger is a classification, every entry states which", key, val)
						}
					}
				}
			}
		}
	}
	if !haveLedger {
		pp.Reportf(pkg, subCorePos, "type SubCore carries CPI accounting but this package has no cpiLedger — add a package-level cpiLedger map[string]string classifying every counter field as \"cycle...\" (must feed (*SubCore).CPI) or \"event: <reason>\"")
	}

	// Fields: every one classified; cycle-classified ones read in CPI.
	fieldSet := map[string]bool{}
	for _, fld := range subCore.Fields.List {
		for _, id := range fld.Names {
			fieldSet[id.Name] = true
			cls, ok := ledger[id.Name]
			if !ok {
				if haveLedger {
					pp.Reportf(pkg, id.Pos(), "counter field SubCore.%s has no cpiLedger entry — classify it \"cycle...\" (it must then feed (*SubCore).CPI) or \"event: <reason>\"", id.Name)
				}
				continue
			}
			if strings.HasPrefix(cls, "cycle") && !readFields[id.Name] {
				pp.Reportf(pkg, id.Pos(), "counter field SubCore.%s is classified cycle in cpiLedger but never read in (*SubCore).CPI — the stack silently stops accounting for it and the CheckCPI cycles identity can break", id.Name)
			}
		}
	}

	// Constants: components all assigned, reasons consulted or ledgered.
	reasonSet := map[string]bool{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					c, ok := pkg.Info.Defs[id].(*types.Const)
					if !ok {
						continue
					}
					switch namedTypeName(c.Type()) {
					case "CPIComponent":
						if strings.HasPrefix(id.Name, "Num") {
							continue // the array-length sentinel
						}
						if !assigned[id.Name] {
							pp.Reportf(pkg, id.Pos(), "CPI component %s is never assigned in (*SubCore).CPI — a component missing from the stack is a term silently dropped from the CheckCPI sum", id.Name)
						}
					case "StallReason":
						reasonSet[id.Name] = true
						if strings.HasPrefix(id.Name, "Num") {
							continue
						}
						if consulted[id.Name] {
							continue
						}
						if cls, ok := ledger[id.Name]; ok && strings.HasPrefix(cls, "event:") {
							continue
						}
						pp.Reportf(pkg, id.Pos(), "stall reason %s is neither consulted in (*SubCore).CPI (StallCycles[%s]) nor classified \"event:\" in cpiLedger — cycles attributed to it would vanish from the stack", id.Name, id.Name)
					}
				}
			}
		}
	}

	// Stale ledger keys.
	for key, pos := range ledgerEntryPos {
		if !fieldSet[key] && !reasonSet[key] {
			pp.Reportf(pkg, pos, "cpiLedger entry %q names no SubCore field and no StallReason constant — remove the stale entry", key)
		}
	}

	return &cpiTarget{pkg: pkg, ledger: ledger}
}

// checkCPIMutations scans every loaded package for mutations of
// unclassified SubCore fields — the issue-attribution sites in
// internal/smcore are the real audience.
func checkCPIMutations(pp *ProgramPass, t *cpiTarget) {
	for _, pkg := range pp.Prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var lhs []ast.Expr
				switch n := n.(type) {
				case *ast.AssignStmt:
					lhs = n.Lhs
				case *ast.IncDecStmt:
					lhs = []ast.Expr{n.X}
				default:
					return true
				}
				for _, e := range lhs {
					sel := baseSelector(e)
					if sel == nil {
						continue
					}
					name := fieldOfStruct(pkg.Info, sel, t.pkg.Path, "SubCore")
					if name == "" {
						continue
					}
					if _, ok := t.ledger[name]; !ok {
						pp.Reportf(pkg, sel.Sel.Pos(), "SubCore.%s is mutated here but has no cpiLedger entry — a counter outside the ledger can drift out of the CPI == cycles identity; classify it \"cycle...\" (and wire it into (*SubCore).CPI) or \"event: <reason>\"", name)
					}
				}
				return true
			})
		}
	}
}

// constOf resolves an expression to a constant of the given named type,
// returning its name.
func constOf(info *types.Info, e ast.Expr, typeName string) (string, bool) {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	}
	c, ok := obj.(*types.Const)
	if !ok || namedTypeName(c.Type()) != typeName {
		return "", false
	}
	return c.Name(), true
}

// namedTypeName returns the bare name of a (possibly pointer-wrapped)
// named type, "" otherwise.
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// fieldOfStruct returns the field name when sel selects a struct field
// of the named type declared in the package whose path is (or has the
// suffix of) ownerPath; "" otherwise. Matching is by name + path, not
// object identity, so it works across export-data package views.
func fieldOfStruct(info *types.Info, sel *ast.SelectorExpr, ownerPath, typeName string) string {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return ""
	}
	recv := s.Recv()
	if p, ok := recv.Underlying().(*types.Pointer); ok {
		recv = p.Elem()
	}
	n, ok := recv.(*types.Named)
	if !ok || n.Obj().Name() != typeName || n.Obj().Pkg() == nil {
		return ""
	}
	p := n.Obj().Pkg().Path()
	if p != ownerPath && !strings.HasSuffix(p, "/"+ownerPath) && !strings.HasSuffix(ownerPath, "/"+p) {
		return ""
	}
	return sel.Sel.Name
}

// baseSelector unwraps index/star/paren expressions to the selector at
// the base of an lvalue: `s.StallCycles[r]` -> `s.StallCycles`.
func baseSelector(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
