package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Faultflow enforces the harness's structured-fault contract (PR 2):
// *harness.SimFault and harness.CellErrors carry the cell identity,
// fault class, heartbeat cycle, and diagnostics pointers a paper-scale
// sweep needs to be trustworthy — a caller that discards one silently
// converts a classified failure back into a missing result. Likewise,
// recover() anywhere but inside the harness bypasses the panic-to-fault
// machinery (stack capture, flight-recorder dump, checkpoint exclusion)
// and hides invariant violations the sweep should report.
var Faultflow = &Analyzer{
	Name: "faultflow",
	Doc: "flag dropped harness.SimFault/CellErrors values and recover() " +
		"outside internal/harness",
	Run: runFaultflow,
}

func runFaultflow(p *Pass) error {
	inHarness := !p.Pkg.Fixture && strings.HasSuffix(p.Pkg.Path, "internal/harness")
	info := p.Info()
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok || inHarness {
					return true
				}
				if name, ok := faultResult(info, call); ok {
					p.Reportf(n.Pos(), "call discards its %s result: faulted cells must be reported or aggregated, not dropped", name)
				}
			case *ast.AssignStmt:
				if inHarness {
					return true
				}
				checkBlankFault(p, info, n)
			case *ast.CallExpr:
				if inHarness {
					return true
				}
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "recover" {
					if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
						p.Reportf(n.Pos(), "recover() outside internal/harness: panics must flow through the harness so they become structured SimFault records with stack and diagnostics")
					}
				}
			}
			return true
		})
	}
	return nil
}

// faultResult reports whether any result of the call carries a
// harness fault type, returning its display name.
func faultResult(info *types.Info, call *ast.CallExpr) (string, bool) {
	t := info.TypeOf(call)
	if t == nil {
		return "", false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if name, ok := faultType(tup.At(i).Type()); ok {
				return name, true
			}
		}
		return "", false
	}
	return faultType(t)
}

// checkBlankFault flags fault-typed values assigned to the blank
// identifier.
func checkBlankFault(p *Pass, info *types.Info, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		var t types.Type
		if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
			// Multi-value call: pick the tuple element.
			if tup, ok := info.TypeOf(as.Rhs[0]).(*types.Tuple); ok && i < tup.Len() {
				t = tup.At(i).Type()
			}
		} else if i < len(as.Rhs) {
			t = info.TypeOf(as.Rhs[i])
		}
		if t == nil {
			continue
		}
		if name, ok := faultType(t); ok {
			p.Reportf(id.Pos(), "%s assigned to _: faulted cells must be reported or aggregated, not dropped", name)
		}
	}
}

// faultType reports whether t is *harness.SimFault or harness.CellErrors.
func faultType(t types.Type) (string, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", false
	}
	if !strings.HasSuffix(n.Obj().Pkg().Path(), "internal/harness") {
		return "", false
	}
	switch n.Obj().Name() {
	case "SimFault":
		return "*harness.SimFault", true
	case "CellErrors":
		return "harness.CellErrors", true
	}
	return "", false
}
