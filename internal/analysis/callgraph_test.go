package analysis

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// writeSnippet materializes src as a single-file package under a temp
// dir and loads it the fixture way. Import-free snippets load without
// shelling out to the go command; stdlib imports work too, resolved
// via `go list -export` like any fixture.
func writeSnippet(t *testing.T, name, src string) []*Package {
	t.Helper()
	dir := filepath.Join(t.TempDir(), name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadFixture(dir)
	if err != nil {
		t.Fatalf("LoadFixture: %v", err)
	}
	return pkgs
}

func loadSnippetGraph(t *testing.T, name, src string) *CallGraph {
	t.Helper()
	return NewProgram(writeSnippet(t, name, src)).CallGraph()
}

func nodeByName(t *testing.T, g *CallGraph, name string) *CGNode {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("no call-graph node named %s", name)
	return nil
}

// calleeNames returns the node's outgoing edge targets, deduplicated
// and sorted.
func calleeNames(n *CGNode) []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range n.Out {
		if !seen[e.To.Name] {
			seen[e.To.Name] = true
			out = append(out, e.To.Name)
		}
	}
	sort.Strings(out)
	return out
}

func wantCallees(t *testing.T, n *CGNode, want ...string) {
	t.Helper()
	got := calleeNames(n)
	sort.Strings(want)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("%s callees = %v, want %v", n.Name, got, want)
	}
}

// TestCallGraphInterfaceDispatch: an interface method call resolves to
// every concrete method with the same name and (receiver-less,
// name-insensitive) signature, and to nothing else; an interface
// method value marks every implementation address-taken.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	g := loadSnippetGraph(t, "cg", `package cg

type actor interface {
	act(n int) int
}

type a1 struct{}

func (a1) act(n int) int { return n }

type a2 struct{}

func (*a2) act(m int) int { return m + 1 }

type a3 struct{}

func (a3) act(n, m int) int { return n + m }

func drive(x actor) int { return x.act(1) }

func handler(x actor) func(int) int { return x.act }

func invoke(f func(int) int) int { return f(3) }
`)
	// a2.act declares its parameter m, the call site's interface says n:
	// resolution must not depend on parameter names. a3.act differs in
	// arity and must be excluded.
	wantCallees(t, nodeByName(t, g, "cg.drive"), "cg.a1.act", "cg.a2.act")
	// handler takes x.act as a value, so both implementations escape and
	// the dynamic call in invoke reaches them.
	wantCallees(t, nodeByName(t, g, "cg.invoke"), "cg.a1.act", "cg.a2.act")
}

// TestCallGraphMethodValue: a concrete method value and a bare function
// reference stored as values are matched to call sites through function-
// typed values by signature.
func TestCallGraphMethodValue(t *testing.T) {
	g := loadSnippetGraph(t, "cg", `package cg

type a2 struct{}

func (*a2) act(n int) int { return n + 1 }

func free(n int) int { return n }

func pick(which bool) func(int) int {
	var g a2
	if which {
		return g.act
	}
	return free
}

func use(f func(int) int) int { return f(2) }
`)
	wantCallees(t, nodeByName(t, g, "cg.use"), "cg.a2.act", "cg.free")
	// Taking the values is not calling them.
	wantCallees(t, nodeByName(t, g, "cg.pick"))
}

// TestCallGraphRecursion: self- and mutual recursion build finite
// graphs, Reach terminates on the cycles, and Chain renders the
// first-discovery path.
func TestCallGraphRecursion(t *testing.T) {
	g := loadSnippetGraph(t, "cg", `package cg

func fib(n int) int {
	if n < 2 {
		return n
	}
	return fib(n-1) + fib(n-2)
}

func ping(n int) {
	if n > 0 {
		pong(n - 1)
	}
}

func pong(n int) { ping(n) }
`)
	fib := nodeByName(t, g, "cg.fib")
	if len(fib.Out) != 2 || fib.Out[0].To != fib || fib.Out[1].To != fib {
		t.Errorf("fib should carry two self-edges, got %v", calleeNames(fib))
	}
	reach := g.Reach([]*CGNode{fib}, ReachOpts{})
	if len(reach) != 1 || reach[fib] == nil {
		t.Errorf("Reach(fib) = %d nodes, want exactly fib itself", len(reach))
	}

	ping := nodeByName(t, g, "cg.ping")
	pong := nodeByName(t, g, "cg.pong")
	reach = g.Reach([]*CGNode{ping}, ReachOpts{})
	if reach[ping] == nil || reach[pong] == nil || len(reach) != 2 {
		t.Errorf("Reach(ping) should hold the ping/pong cycle, got %d nodes", len(reach))
	}
	if got := Chain(reach, pong); got != "cg.ping → cg.pong" {
		t.Errorf("Chain(pong) = %q", got)
	}
	if step := reach[pong]; step == nil || step.Depth != 1 || step.Prev != ping {
		t.Errorf("pong's reach step = %+v, want depth 1 from ping", reach[pong])
	}
}

// TestCallGraphDepthBound: MaxDepth stops expansion, matching the
// hotpath analyzer's bounded traversal.
func TestCallGraphDepthBound(t *testing.T) {
	g := loadSnippetGraph(t, "cg", `package cg

func a() { b() }
func b() { c() }
func c() {}
`)
	a := nodeByName(t, g, "cg.a")
	reach := g.Reach([]*CGNode{a}, ReachOpts{MaxDepth: 1})
	if reach[nodeByName(t, g, "cg.b")] == nil {
		t.Error("b at depth 1 should be reached with MaxDepth 1")
	}
	if reach[nodeByName(t, g, "cg.c")] != nil {
		t.Error("c at depth 2 should be beyond MaxDepth 1")
	}
}
