// Package core implements the paper's two proposed mechanisms — the
// Register-Bank-Aware (RBA) warp scheduler (Section IV-A) and hashed
// sub-core warp assignment (Section IV-B) — together with the baseline
// policies they are evaluated against (GTO and LRR warp scheduling,
// round-robin sub-core assignment).
package core

import (
	"math/rand"

	"repro/internal/config"
	"repro/internal/isa"
)

// Candidate is a ready warp instruction presented to the warp scheduler:
// decoded, free of scoreboard hazards, and not parked at a barrier.
type Candidate struct {
	// Slot is the warp's slot in this scheduler's warp PC table.
	Slot int
	// Age orders warps by allocation time (smaller = older). GTO and RBA
	// break ties oldest-first.
	Age int64
	// Score is the RBA score — the summed (possibly delayed) arbiter
	// queue lengths of the banks holding the instruction's source
	// operands, saturated to 5 bits. Ignored by GTO and LRR.
	Score int
}

// WarpScheduler selects which ready warp issues each cycle. Implementations
// hold only per-scheduler state (one instance per sub-core scheduler).
type WarpScheduler interface {
	// Name returns the figure label for the policy.
	Name() string
	// Pick returns the index into cands of the warp to issue, or -1 if
	// cands is empty. Pick must not retain cands.
	Pick(cands []Candidate) int
	// NotifyIssued records that the warp in the given scheduler slot
	// issued, for policies with issue history (GTO's greedy slot, LRR's
	// rotation pointer).
	NotifyIssued(slot int)
	// Reset clears issue history (new kernel).
	Reset()
	// State packs the policy's issue history into one word for snapshots;
	// SetState restores it. Stateless policies return 0 and ignore
	// SetState. The word layouts are policy-private — a snapshot is only
	// ever restored into the same policy (the config is checked first).
	State() uint64
	SetState(uint64)
}

// NewWarpScheduler builds the scheduler for a policy.
func NewWarpScheduler(p config.WarpSched) WarpScheduler {
	switch p {
	case config.SchedLRR:
		return &LRR{}
	case config.SchedRBA:
		return &RBA{}
	default:
		return &GTO{}
	}
}

// GTO is greedy-then-oldest: keep issuing the last warp while it stays
// ready; otherwise fall back to the oldest ready warp. This is the
// baseline warp scheduler in Table II.
type GTO struct {
	last     int
	haveLast bool
}

// Name implements WarpScheduler.
func (g *GTO) Name() string { return "GTO" }

// Pick implements WarpScheduler.
func (g *GTO) Pick(cands []Candidate) int {
	if len(cands) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(cands); i++ {
		if g.haveLast && cands[i].Slot == g.last {
			return i
		}
		if cands[i].Age < cands[best].Age {
			best = i
		}
	}
	if g.haveLast && cands[0].Slot == g.last {
		return 0
	}
	return best
}

// NotifyIssued implements WarpScheduler.
func (g *GTO) NotifyIssued(slot int) { g.last, g.haveLast = slot, true }

// Reset implements WarpScheduler.
func (g *GTO) Reset() { g.haveLast = false }

// State implements WarpScheduler: bit 0 is haveLast, the rest hold the
// greedy slot.
func (g *GTO) State() uint64 {
	if !g.haveLast {
		return 0
	}
	return 1 | uint64(g.last)<<1
}

// SetState implements WarpScheduler.
func (g *GTO) SetState(s uint64) {
	g.haveLast = s&1 != 0
	g.last = int(s >> 1)
}

// LRR is loose round-robin: rotate priority one past the last issued slot.
type LRR struct {
	next int
}

// Name implements WarpScheduler.
func (l *LRR) Name() string { return "LRR" }

// Pick implements WarpScheduler.
func (l *LRR) Pick(cands []Candidate) int {
	if len(cands) == 0 {
		return -1
	}
	best := -1
	bestKey := 1 << 30
	for i, c := range cands {
		// Distance from the rotation pointer, wrapping at a generous slot
		// bound; candidates are sparse so we rank by modular distance.
		d := c.Slot - l.next
		if d < 0 {
			d += 1 << 16
		}
		if d < bestKey {
			bestKey, best = d, i
		}
	}
	return best
}

// NotifyIssued implements WarpScheduler.
func (l *LRR) NotifyIssued(slot int) { l.next = slot + 1 }

// Reset implements WarpScheduler.
func (l *LRR) Reset() { l.next = 0 }

// State implements WarpScheduler: the rotation pointer.
func (l *LRR) State() uint64 { return uint64(l.next) }

// SetState implements WarpScheduler.
func (l *LRR) SetState(s uint64) { l.next = int(s) }

// RBA is the paper's register-bank-aware scheduler. The warp selection
// logic compares candidates on the concatenated field {RBA score, ~age}:
// the lowest score wins and ties go to the oldest warp — replacing GTO's
// greedy-then-oldest ordering (Section IV-A, Fig. 6).
type RBA struct{}

// ScoreBits is the width of the stored RBA score; scores saturate at
// (1<<ScoreBits)-1 = 31. With 2 CUs and 3 operands per CU the maximum
// queue length is 6, so 5 bits never saturates in the baseline shape.
const ScoreBits = 5

// MaxScore is the saturation value of the RBA score.
const MaxScore = 1<<ScoreBits - 1

// Name implements WarpScheduler.
func (r *RBA) Name() string { return "RBA" }

// Pick implements WarpScheduler.
func (r *RBA) Pick(cands []Candidate) int {
	if len(cands) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].Score < cands[best].Score ||
			(cands[i].Score == cands[best].Score && cands[i].Age < cands[best].Age) {
			best = i
		}
	}
	return best
}

// NotifyIssued implements WarpScheduler.
func (r *RBA) NotifyIssued(int) {}

// Reset implements WarpScheduler.
func (r *RBA) Reset() {}

// State implements WarpScheduler; RBA keeps no issue history.
func (r *RBA) State() uint64 { return 0 }

// SetState implements WarpScheduler.
func (r *RBA) SetState(uint64) {}

// Score computes an instruction's RBA score: for each source operand, add
// the length of the request queue of the bank the operand resides in
// (an instruction with two operands in the same bank counts that queue
// twice). queueLen is the arbiter tap, possibly delayed per the
// score-update-latency study. The result saturates to 5 bits.
func Score(in *isa.Instr, bankOf func(isa.Reg) int, queueLen func(bank int) int) int {
	s := 0
	for _, src := range in.Srcs {
		if !src.Valid() {
			continue
		}
		s += queueLen(bankOf(src))
		if s >= MaxScore {
			return MaxScore
		}
	}
	return s
}

// rngFor derives a deterministic per-SM random stream.
func rngFor(seed int64, smID int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1000003 + int64(smID)*7919 + 12345))
}
