package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
)

func TestNewWarpScheduler(t *testing.T) {
	if NewWarpScheduler(config.SchedGTO).Name() != "GTO" {
		t.Error("GTO factory wrong")
	}
	if NewWarpScheduler(config.SchedLRR).Name() != "LRR" {
		t.Error("LRR factory wrong")
	}
	if NewWarpScheduler(config.SchedRBA).Name() != "RBA" {
		t.Error("RBA factory wrong")
	}
}

func TestGTOGreedyThenOldest(t *testing.T) {
	g := &GTO{}
	cands := []Candidate{{Slot: 3, Age: 30}, {Slot: 1, Age: 10}, {Slot: 2, Age: 20}}
	// No history: oldest (age 10, slot 1).
	if i := g.Pick(cands); cands[i].Slot != 1 {
		t.Fatalf("picked slot %d, want 1 (oldest)", cands[i].Slot)
	}
	g.NotifyIssued(2)
	// Greedy: slot 2 is ready, keep issuing it despite being younger.
	if i := g.Pick(cands); cands[i].Slot != 2 {
		t.Fatalf("picked slot %d, want 2 (greedy)", cands[i].Slot)
	}
	// Greedy warp gone: back to oldest.
	cands2 := []Candidate{{Slot: 3, Age: 30}, {Slot: 1, Age: 10}}
	if i := g.Pick(cands2); cands2[i].Slot != 1 {
		t.Fatalf("picked slot %d, want 1", cands2[i].Slot)
	}
	g.Reset()
	g2 := []Candidate{{Slot: 2, Age: 20}, {Slot: 5, Age: 5}}
	if i := g.Pick(g2); g2[i].Slot != 5 {
		t.Fatal("Reset did not clear greedy history")
	}
	if g.Pick(nil) != -1 {
		t.Error("empty candidates must return -1")
	}
}

func TestGTOGreedyCandidateFirstPosition(t *testing.T) {
	g := &GTO{}
	g.NotifyIssued(7)
	cands := []Candidate{{Slot: 7, Age: 99}, {Slot: 1, Age: 1}}
	if i := g.Pick(cands); cands[i].Slot != 7 {
		t.Error("greedy slot at index 0 not honored")
	}
}

func TestLRRRotation(t *testing.T) {
	l := &LRR{}
	cands := []Candidate{{Slot: 0}, {Slot: 1}, {Slot: 2}}
	order := []int{}
	for i := 0; i < 6; i++ {
		p := l.Pick(cands)
		order = append(order, cands[p].Slot)
		l.NotifyIssued(cands[p].Slot)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", order, want)
		}
	}
	// Pointer past all slots wraps to the lowest.
	l.NotifyIssued(2)
	if p := l.Pick(cands); cands[p].Slot != 0 {
		t.Error("LRR did not wrap")
	}
	if l.Pick(nil) != -1 {
		t.Error("empty candidates must return -1")
	}
	l.Reset()
	if p := l.Pick(cands); cands[p].Slot != 0 {
		t.Error("Reset did not rewind pointer")
	}
}

func TestRBALowestScoreThenOldest(t *testing.T) {
	r := &RBA{}
	cands := []Candidate{
		{Slot: 0, Age: 5, Score: 4},
		{Slot: 1, Age: 9, Score: 2},
		{Slot: 2, Age: 1, Score: 2},
		{Slot: 3, Age: 0, Score: 7},
	}
	// Lowest score 2 shared by slots 1 and 2; older (age 1) wins.
	if i := r.Pick(cands); cands[i].Slot != 2 {
		t.Fatalf("picked slot %d, want 2", cands[i].Slot)
	}
	if r.Pick(nil) != -1 {
		t.Error("empty candidates must return -1")
	}
	r.NotifyIssued(0) // no-op, must not panic
	r.Reset()
}

func TestScore(t *testing.T) {
	qlens := []int{3, 1}
	queueLen := func(b int) int { return qlens[b] }
	bankOf := func(r isa.Reg) int { return int(r) % 2 }
	// FMA R4 <- R1(b1), R2(b0), R3(b1): 1 + 3 + 1 = 5.
	in := isa.MakeFMA(4, 1, 2, 3)
	if got := Score(&in, bankOf, queueLen); got != 5 {
		t.Errorf("Score = %d, want 5", got)
	}
	// Two operands in the same bank count the queue twice (paper's
	// example: score = 2*len(q0) + len(q1)).
	in2 := isa.MakeFMA(4, 0, 2, 1) // b0, b0, b1
	if got := Score(&in2, bankOf, queueLen); got != 7 {
		t.Errorf("Score = %d, want 7", got)
	}
	// Zero-source instructions score 0.
	bar := isa.MakeBar()
	if got := Score(&bar, bankOf, queueLen); got != 0 {
		t.Errorf("BAR Score = %d, want 0", got)
	}
}

func TestScoreSaturates(t *testing.T) {
	queueLen := func(int) int { return 100 }
	bankOf := func(isa.Reg) int { return 0 }
	in := isa.MakeFMA(4, 1, 2, 3)
	if got := Score(&in, bankOf, queueLen); got != MaxScore {
		t.Errorf("Score = %d, want saturation at %d", got, MaxScore)
	}
	if MaxScore != 31 {
		t.Errorf("MaxScore = %d, want 31 (5-bit field)", MaxScore)
	}
}

func TestRBAPrefersIdleBanks(t *testing.T) {
	// Scenario from Section IV-A: two ready warps, one whose operands sit
	// in congested banks, one whose operands sit in idle banks. RBA must
	// pick the idle-bank warp even though the other is older.
	r := &RBA{}
	congested := Candidate{Slot: 0, Age: 0, Score: 6}
	idle := Candidate{Slot: 1, Age: 100, Score: 0}
	if i := r.Pick([]Candidate{congested, idle}); i != 1 {
		t.Error("RBA picked the congested warp")
	}
	// GTO, blind to scores, picks the older congested warp.
	g := &GTO{}
	if i := g.Pick([]Candidate{congested, idle}); i != 0 {
		t.Error("GTO should pick by age")
	}
}
