package core

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
)

func take(a Assigner, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = a.Next()
	}
	return out
}

func counts(seq []int, n int) []int {
	c := make([]int, n)
	for _, s := range seq {
		c[s]++
	}
	return c
}

func TestNewAssignerFactory(t *testing.T) {
	if NewAssigner(config.AssignRR, 4, 4, 1, 0).Name() != "RR" {
		t.Error("RR factory wrong")
	}
	if NewAssigner(config.AssignSRR, 4, 4, 1, 0).Name() != "SRR" {
		t.Error("SRR factory wrong")
	}
	if NewAssigner(config.AssignShuffle, 4, 4, 1, 0).Name() != "Shuffle" {
		t.Error("Shuffle factory wrong")
	}
}

func TestNewAssignerPanicsOnZeroSubCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewAssigner(config.AssignRR, 0, 4, 1, 0)
}

func TestRoundRobinSequence(t *testing.T) {
	a := NewAssigner(config.AssignRR, 4, 4, 1, 0)
	got := take(a, 8)
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RR sequence = %v, want %v", got, want)
		}
	}
	a.Reset()
	if a.Next() != 0 {
		t.Error("Reset did not rewind RR")
	}
}

// TestSRRMatchesEquation1 pins SRR to the paper's Equation (1):
// subcoreID = (W + floor(W/N)) mod N.
func TestSRRMatchesEquation1(t *testing.T) {
	const n = 4
	a := NewAssigner(config.AssignSRR, n, 4, 1, 0)
	for w := 0; w < 64; w++ {
		want := (w + w/n) % n
		if got := a.Next(); got != want {
			t.Fatalf("SRR(W=%d) = %d, want %d", w, got, want)
		}
	}
}

// TestSRRSpreadsEveryFourthWarp verifies the design goal: with one long
// warp every 4 warps (warpID % 4 == 0, the TPC-H pattern), RR sends every
// long warp to sub-core 0 while SRR spreads them evenly.
func TestSRRSpreadsEveryFourthWarp(t *testing.T) {
	const n, warps = 4, 64
	rr := NewAssigner(config.AssignRR, n, 4, 1, 0)
	srr := NewAssigner(config.AssignSRR, n, 4, 1, 0)
	rrLong := make([]int, n)
	srrLong := make([]int, n)
	for w := 0; w < warps; w++ {
		r, s := rr.Next(), srr.Next()
		if w%4 == 0 {
			rrLong[r]++
			srrLong[s]++
		}
	}
	if rrLong[0] != warps/4 {
		t.Errorf("RR long-warp placement = %v, want all on sub-core 0", rrLong)
	}
	for sc, c := range srrLong {
		if c != warps/4/n {
			t.Errorf("SRR long-warp placement = %v, want even %d each (sub-core %d)", srrLong, warps/4/n, sc)
		}
	}
}

func TestSRRBalanced(t *testing.T) {
	a := NewAssigner(config.AssignSRR, 4, 4, 1, 0)
	c := counts(take(a, 64), 4)
	for sc, n := range c {
		if n != 16 {
			t.Errorf("SRR count[%d] = %d, want 16", sc, n)
		}
	}
}

func TestShuffleBalancedWithinOne(t *testing.T) {
	a := NewAssigner(config.AssignShuffle, 4, 4, 99, 3)
	seq := take(a, 64)
	// Any prefix must be balanced within +/-1 (the paper's guarantee).
	for p := 1; p <= len(seq); p++ {
		c := counts(seq[:p], 4)
		lo, hi := c[0], c[0]
		for _, v := range c {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo > 1 {
			t.Fatalf("prefix %d unbalanced: %v", p, c)
		}
	}
}

func TestShuffleTableWraps(t *testing.T) {
	// 4-entry table encodes 16 assignments; warp 17 reuses entry 0's
	// pattern (Section IV-B1).
	a := NewShuffle(4, 4, 7, 0)
	first := take(a, 16)
	second := take(a, 16)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("4-entry table did not wrap at warp 16: %v vs %v", first, second)
		}
	}
	// 16-entry table holds 64 unique assignments: the first 16 need not
	// repeat at warp 16.
	b := NewShuffle(4, 16, 7, 0)
	if len(b.Table()) != 64 {
		t.Errorf("16-entry table holds %d assignments, want 64", len(b.Table()))
	}
}

func TestShuffleDeterministicPerSeed(t *testing.T) {
	a := NewShuffle(4, 4, 42, 1)
	b := NewShuffle(4, 4, 42, 1)
	c := NewShuffle(4, 4, 42, 2)
	sa, sb, sc := take(a, 16), take(b, 16), take(c, 16)
	diff := false
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same (seed, SM) produced different tables")
		}
		if sa[i] != sc[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different SMs should (almost surely) shuffle differently")
	}
}

func TestShuffleResetRestartsSequence(t *testing.T) {
	a := NewShuffle(4, 4, 5, 0)
	first := take(a, 5)
	a.Reset()
	again := take(a, 5)
	for i := range first {
		if first[i] != again[i] {
			t.Fatal("Reset did not restart the shuffle sequence")
		}
	}
}

func TestEncodeDecodeEntryRoundTrip(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		in := [4]uint8{a % 4, b % 4, c % 4, d % 4}
		return DecodeEntry(EncodeEntry(in)) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeEntryBitLayout(t *testing.T) {
	// Fig 7: upper 4 bits drive select line 0 (high bit of each sub-core
	// id), lower 4 bits drive select line 1 (low bit), one bit per warp
	// in order.
	b := EncodeEntry([4]uint8{3, 0, 2, 1})
	// sel0 bits: 1,0,1,0 -> 1010; sel1 bits: 1,0,0,1 -> 1001.
	if b != 0b1010_1001 {
		t.Errorf("EncodeEntry = %08b, want 10101001", b)
	}
}

func TestEncodeEntryPanicsOnBigSubCore(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	EncodeEntry([4]uint8{4, 0, 0, 0})
}

func TestEncodeTable(t *testing.T) {
	s := NewShuffle(4, 4, 11, 0)
	enc, err := EncodeTable(s.Table())
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 4 {
		t.Fatalf("encoded table = %d bytes, want 4 (the paper's 4-byte table)", len(enc))
	}
	for i, e := range enc {
		dec := DecodeEntry(e)
		for j := 0; j < 4; j++ {
			if dec[j] != s.Table()[i*4+j] {
				t.Fatal("encoded table does not round-trip")
			}
		}
	}
	if _, err := EncodeTable([]uint8{0, 1, 2}); err == nil {
		t.Error("non-multiple-of-4 table accepted")
	}
}

// Property: every assigner keeps counts within +/-1 on any prefix for
// N = 4 (the paper's balance guarantee holds for RR, SRR and Shuffle).
func TestAllPoliciesBalancedProperty(t *testing.T) {
	f := func(seed int64, prefix uint8) bool {
		p := int(prefix)%64 + 1
		for _, pol := range []config.Assign{config.AssignRR, config.AssignSRR, config.AssignShuffle} {
			a := NewAssigner(pol, 4, 4, seed, 0)
			c := counts(take(a, p), 4)
			lo, hi := c[0], c[0]
			for _, v := range c {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if hi-lo > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
