package core

import (
	"fmt"

	"repro/internal/config"
)

// Assigner decides which sub-core each warp lands on as thread blocks are
// allocated to an SM (Section IV-B). One Assigner instance exists per SM;
// assignment happens once per warp lifetime and is never revisited — the
// property that makes pathological imbalance possible under round robin.
type Assigner interface {
	// Name returns the figure label for the policy.
	Name() string
	// Next returns the sub-core index for the next warp allocated on this
	// SM and advances the internal warp counter W.
	Next() int
	// Reset restarts the sequence (new kernel).
	Reset()
	// State returns the internal warp counter W for snapshots; SetState
	// restores it. The Shuffle table is derived from (seed, smID) at
	// construction and is not part of the state word.
	State() uint64
	SetState(uint64)
}

// NewAssigner builds the assigner for an SM. subCores is the partitioning
// degree N; tableEntries sizes the Shuffle hash table (4 or 16, each entry
// encoding 4 assignments); seed+smID derandomizes Shuffle per SM.
func NewAssigner(p config.Assign, subCores, tableEntries int, seed int64, smID int) Assigner {
	if subCores < 1 {
		panic(fmt.Sprintf("core: assigner needs >= 1 sub-core, got %d", subCores))
	}
	switch p {
	case config.AssignSRR:
		return &SRR{n: subCores}
	case config.AssignShuffle:
		return NewShuffle(subCores, tableEntries, seed, smID)
	default:
		return &RoundRobin{n: subCores}
	}
}

// RoundRobin is the baseline hardware policy (established by the paper's
// microbenchmarking of Volta and Ampere): warp W goes to sub-core W mod N.
// Implemented in hardware as a 4:1 multiplexer driven by a 2-bit
// up-counter.
type RoundRobin struct {
	n int
	w int
}

// Name implements Assigner.
func (r *RoundRobin) Name() string { return "RR" }

// Next implements Assigner.
func (r *RoundRobin) Next() int {
	sc := r.w % r.n
	r.w++
	return sc
}

// Reset implements Assigner.
func (r *RoundRobin) Reset() { r.w = 0 }

// State implements Assigner.
func (r *RoundRobin) State() uint64 { return uint64(r.w) }

// SetState implements Assigner.
func (r *RoundRobin) SetState(s uint64) { r.w = int(s) }

// SRR is the paper's skewed round robin hash (Equation 1):
//
//	subcoreID = (W + floor(W/N)) mod N
//
// keeping per-sub-core warp counts even while rotating the phase by one
// every N warps, so a "long warp every N warps" pattern (TPC-H) spreads
// across sub-cores instead of landing on one.
type SRR struct {
	n int
	w int
}

// Name implements Assigner.
func (s *SRR) Name() string { return "SRR" }

// Next implements Assigner.
func (s *SRR) Next() int {
	sc := (s.w + s.w/s.n) % s.n
	s.w++
	return sc
}

// Reset implements Assigner.
func (s *SRR) Reset() { s.w = 0 }

// State implements Assigner.
func (s *SRR) State() uint64 { return uint64(s.w) }

// SetState implements Assigner.
func (s *SRR) SetState(st uint64) { s.w = int(st) }

// Shuffle randomly permutes each group of N consecutive warps across the N
// sub-cores, guaranteeing per-sub-core counts never differ by more than
// one, while decorrelating sub-core choice from warpID. The hardware holds
// the permutations in a small hash-function table whose entries each
// encode 4 assignments; a 4-entry table repeats its pattern every 16
// warps, a 16-entry table every 64 (Section IV-B3).
type Shuffle struct {
	n     int
	table []uint8 // tableEntries*4 assignments, precomputed
	w     int
}

// NewShuffle builds a Shuffle assigner with a tableEntries-entry hash
// table, filled with random balanced permutations derived from (seed,
// smID).
func NewShuffle(subCores, tableEntries int, seed int64, smID int) *Shuffle {
	if tableEntries < 1 {
		tableEntries = 4
	}
	s := &Shuffle{n: subCores}
	rng := rngFor(seed, smID)
	slots := tableEntries * 4
	for len(s.table) < slots {
		perm := rng.Perm(subCores)
		for _, p := range perm {
			s.table = append(s.table, uint8(p))
		}
	}
	// When N divides the table size (all shipping shapes: N in {1,2,4},
	// table sizes 16/64) the table is a whole number of permutations and
	// any prefix of the wrapped sequence stays balanced to +/-1. A
	// truncated trailing group (N=3 etc.) keeps the prefix-of-permutation
	// property, which is still within +/-1 per group.
	s.table = s.table[:slots]
	return s
}

// Name implements Assigner.
func (s *Shuffle) Name() string { return "Shuffle" }

// Next implements Assigner.
func (s *Shuffle) Next() int {
	sc := int(s.table[s.w%len(s.table)])
	s.w++
	return sc
}

// Reset implements Assigner.
func (s *Shuffle) Reset() { s.w = 0 }

// State implements Assigner.
func (s *Shuffle) State() uint64 { return uint64(s.w) }

// SetState implements Assigner.
func (s *Shuffle) SetState(st uint64) { s.w = int(st) }

// Table exposes the assignment table for tests and for EncodeEntry.
func (s *Shuffle) Table() []uint8 { return s.table }

// EncodeEntry packs the assignments of 4 consecutive warps into the 1-byte
// hash-function-table entry format of Fig. 7: the upper 4 bits drive
// select line 0 of the sub-core multiplexer and the lower 4 bits drive
// select line 1. Only meaningful for N = 4 sub-cores (2 select bits).
func EncodeEntry(assign [4]uint8) uint8 {
	var b uint8
	for i, a := range assign {
		if a > 3 {
			panic(fmt.Sprintf("core: sub-core %d does not fit a 2-bit select", a))
		}
		sel0 := (a >> 1) & 1 // high select bit
		sel1 := a & 1        // low select bit
		b |= sel0 << (7 - i)
		b |= sel1 << (3 - i)
	}
	return b
}

// DecodeEntry unpacks a 1-byte hash-function-table entry into the 4 warp
// assignments it encodes.
func DecodeEntry(b uint8) [4]uint8 {
	var out [4]uint8
	for i := 0; i < 4; i++ {
		sel0 := (b >> (7 - i)) & 1
		sel1 := (b >> (3 - i)) & 1
		out[i] = sel0<<1 | sel1
	}
	return out
}

// EncodeTable renders a Shuffle table (N=4) as hardware bytes; the table
// length must be a multiple of 4.
func EncodeTable(table []uint8) ([]uint8, error) {
	if len(table)%4 != 0 {
		return nil, fmt.Errorf("core: table length %d is not a multiple of 4", len(table))
	}
	out := make([]uint8, 0, len(table)/4)
	for i := 0; i < len(table); i += 4 {
		out = append(out, EncodeEntry([4]uint8{table[i], table[i+1], table[i+2], table[i+3]}))
	}
	return out, nil
}
