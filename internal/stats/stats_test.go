package stats

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCoV(t *testing.T) {
	if got := CoV([]float64{5, 5, 5, 5}); !almost(got, 0) {
		t.Errorf("CoV uniform = %v, want 0", got)
	}
	// mean 2, deviations {-2,2,... } => stddev 2 => cov 1
	if got := CoV([]float64{0, 4, 0, 4}); !almost(got, 1) {
		t.Errorf("CoV = %v, want 1", got)
	}
	if got := CoV(nil); got != 0 {
		t.Errorf("CoV(nil) = %v", got)
	}
	if got := CoV([]float64{0, 0}); got != 0 {
		t.Errorf("CoV zero-mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almost(got, 2) {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 0, -1}); !almost(got, 2) {
		t.Errorf("GeoMean skipping nonpositive = %v, want 2", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
}

func TestMeanAndPercentile(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !almost(got, 2) {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	vals := []float64{9, 1, 5, 3, 7}
	if got := Percentile(vals, 0); !almost(got, 1) {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(vals, 100); !almost(got, 9) {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(vals, 50); !almost(got, 5) {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
	// Percentile must not mutate its input.
	if vals[0] != 9 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestRunAggregates(t *testing.T) {
	r := NewRun(2, 4)
	if len(r.SMs) != 2 || len(r.SMs[0].SubCores) != 4 {
		t.Fatal("NewRun mis-sized")
	}
	for i := range r.SMs {
		for j := range r.SMs[i].SubCores {
			r.SMs[i].SubCores[j].Issued = int64(100 * (j + 1))
			r.SMs[i].SubCores[j].BankConflicts = 3
			r.SMs[i].SubCores[j].RegReads = 7
			r.SMs[i].SubCores[j].StallCycles[StallNoCU] = 2
		}
	}
	r.Cycles = 1000
	r.Instructions = 2000
	if !almost(r.IPC(), 2) {
		t.Errorf("IPC = %v", r.IPC())
	}
	if got := r.TotalBankConflicts(); got != 24 {
		t.Errorf("TotalBankConflicts = %d, want 24", got)
	}
	if got := r.TotalRegReads(); got != 56 {
		t.Errorf("TotalRegReads = %d, want 56", got)
	}
	if got := r.TotalStalls(StallNoCU); got != 16 {
		t.Errorf("TotalStalls = %d, want 16", got)
	}
	issue := r.IssuePerSubCore()
	if len(issue) != 8 || issue[0] != 100 || issue[7] != 400 {
		t.Errorf("IssuePerSubCore = %v", issue)
	}
	// Per-SM issue {100,200,300,400}: mean 250, stddev sqrt(12500)
	wantCov := math.Sqrt(12500) / 250
	if got := r.IssueCoV(); !almost(got, wantCov) {
		t.Errorf("IssueCoV = %v, want %v", got, wantCov)
	}
}

func TestIssueCoVSkipsIdleSMs(t *testing.T) {
	r := NewRun(2, 2)
	r.SMs[0].SubCores[0].Issued = 10
	r.SMs[0].SubCores[1].Issued = 10
	// SM 1 issued nothing; must not drag CoV.
	if got := r.IssueCoV(); !almost(got, 0) {
		t.Errorf("IssueCoV = %v, want 0", got)
	}
	empty := NewRun(1, 2)
	if got := empty.IssueCoV(); got != 0 {
		t.Errorf("IssueCoV all-idle = %v", got)
	}
}

func TestZeroCycleIPC(t *testing.T) {
	var r Run
	if r.IPC() != 0 {
		t.Error("IPC of empty run must be 0")
	}
}

func TestReadsPerCycleStats(t *testing.T) {
	r := &Run{ReadsPerCycle: []uint16{0, 10, 20, 30}}
	if got := r.MeanReadsPerCycle(); !almost(got, 15) {
		t.Errorf("MeanReadsPerCycle = %v", got)
	}
	var empty Run
	if empty.MeanReadsPerCycle() != 0 {
		t.Error("empty trace mean must be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]uint16{0, 1, 2, 3, 255, 128}, 4, 255)
	var total int64
	for _, c := range h {
		total += c
	}
	if total != 6 {
		t.Errorf("histogram total = %d, want 6", total)
	}
	if h[0] != 4 {
		t.Errorf("bin0 = %d, want 4", h[0])
	}
	if h[3] != 1 {
		t.Errorf("bin3 = %d, want 1", h[3])
	}
	if got := Histogram(nil, 0, 0); len(got) != 1 {
		t.Errorf("degenerate histogram len = %d", len(got))
	}
}

func TestStallReasonString(t *testing.T) {
	if StallNoCU.String() != "no-cu" || StallBarrier.String() != "barrier" {
		t.Error("stall names wrong")
	}
	// Every in-range reason must have a non-empty, distinct name — this
	// catches a new enum value added without a matching table entry.
	seen := make(map[string]StallReason, NumStallReasons)
	for r := StallReason(0); r < NumStallReasons; r++ {
		name := r.String()
		if name == "" {
			t.Errorf("StallReason(%d) has empty name", r)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("StallReason(%d) and StallReason(%d) share name %q", prev, r, name)
		}
		seen[name] = r
	}
	// Out-of-range values must stringify via the numeric fallback, never
	// panic or return an in-table name.
	for _, r := range []StallReason{NumStallReasons, 99, 255} {
		got := r.String()
		want := "stall(" + strconv.Itoa(int(r)) + ")"
		if got != want {
			t.Errorf("StallReason(%d).String() = %q, want %q", r, got, want)
		}
	}
}

// Property: CoV is scale-invariant (CoV(k*x) == CoV(x) for k > 0).
func TestCoVScaleInvariantProperty(t *testing.T) {
	f := func(a, b, c uint8, k uint8) bool {
		vals := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		scale := float64(k%9) + 1
		scaled := []float64{vals[0] * scale, vals[1] * scale, vals[2] * scale}
		return math.Abs(CoV(vals)-CoV(scaled)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: GeoMean lies between min and max of positive inputs.
func TestGeoMeanBoundsProperty(t *testing.T) {
	f := func(a, b, c uint16) bool {
		vals := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		g := GeoMean(vals)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
