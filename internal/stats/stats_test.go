package stats

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCoV(t *testing.T) {
	if got := CoV([]float64{5, 5, 5, 5}); !almost(got, 0) {
		t.Errorf("CoV uniform = %v, want 0", got)
	}
	// mean 2, deviations {-2,2,... } => stddev 2 => cov 1
	if got := CoV([]float64{0, 4, 0, 4}); !almost(got, 1) {
		t.Errorf("CoV = %v, want 1", got)
	}
	if got := CoV(nil); got != 0 {
		t.Errorf("CoV(nil) = %v", got)
	}
	if got := CoV([]float64{0, 0}); got != 0 {
		t.Errorf("CoV zero-mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almost(got, 2) {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 0, -1}); !almost(got, 2) {
		t.Errorf("GeoMean skipping nonpositive = %v, want 2", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
}

func TestMeanAndPercentile(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !almost(got, 2) {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	vals := []float64{9, 1, 5, 3, 7}
	if got := Percentile(vals, 0); !almost(got, 1) {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(vals, 100); !almost(got, 9) {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(vals, 50); !almost(got, 5) {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
	// Percentile must not mutate its input.
	if vals[0] != 9 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestRunAggregates(t *testing.T) {
	r := NewRun(2, 4)
	if len(r.SMs) != 2 || len(r.SMs[0].SubCores) != 4 {
		t.Fatal("NewRun mis-sized")
	}
	for i := range r.SMs {
		for j := range r.SMs[i].SubCores {
			r.SMs[i].SubCores[j].Issued = int64(100 * (j + 1))
			r.SMs[i].SubCores[j].BankConflicts = 3
			r.SMs[i].SubCores[j].RegReads = 7
			r.SMs[i].SubCores[j].StallCycles[StallNoCU] = 2
		}
	}
	r.Cycles = 1000
	r.Instructions = 2000
	if !almost(r.IPC(), 2) {
		t.Errorf("IPC = %v", r.IPC())
	}
	if got := r.TotalBankConflicts(); got != 24 {
		t.Errorf("TotalBankConflicts = %d, want 24", got)
	}
	if got := r.TotalRegReads(); got != 56 {
		t.Errorf("TotalRegReads = %d, want 56", got)
	}
	if got := r.TotalStalls(StallNoCU); got != 16 {
		t.Errorf("TotalStalls = %d, want 16", got)
	}
	issue := r.IssuePerSubCore()
	if len(issue) != 8 || issue[0] != 100 || issue[7] != 400 {
		t.Errorf("IssuePerSubCore = %v", issue)
	}
	// Per-SM issue {100,200,300,400}: mean 250, stddev sqrt(12500)
	wantCov := math.Sqrt(12500) / 250
	if got := r.IssueCoV(); !almost(got, wantCov) {
		t.Errorf("IssueCoV = %v, want %v", got, wantCov)
	}
}

func TestIssueCoVSkipsIdleSMs(t *testing.T) {
	r := NewRun(2, 2)
	r.SMs[0].SubCores[0].Issued = 10
	r.SMs[0].SubCores[1].Issued = 10
	// SM 1 issued nothing; must not drag CoV.
	if got := r.IssueCoV(); !almost(got, 0) {
		t.Errorf("IssueCoV = %v, want 0", got)
	}
	empty := NewRun(1, 2)
	if got := empty.IssueCoV(); got != 0 {
		t.Errorf("IssueCoV all-idle = %v", got)
	}
}

func TestZeroCycleIPC(t *testing.T) {
	var r Run
	if r.IPC() != 0 {
		t.Error("IPC of empty run must be 0")
	}
}

func TestReadsPerCycleStats(t *testing.T) {
	r := &Run{ReadsPerCycle: []uint16{0, 10, 20, 30}}
	if got := r.MeanReadsPerCycle(); !almost(got, 15) {
		t.Errorf("MeanReadsPerCycle = %v", got)
	}
	var empty Run
	if empty.MeanReadsPerCycle() != 0 {
		t.Error("empty trace mean must be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]uint16{0, 1, 2, 3, 255, 128}, 4, 255)
	var total int64
	for _, c := range h {
		total += c
	}
	if total != 6 {
		t.Errorf("histogram total = %d, want 6", total)
	}
	if h[0] != 4 {
		t.Errorf("bin0 = %d, want 4", h[0])
	}
	if h[3] != 1 {
		t.Errorf("bin3 = %d, want 1", h[3])
	}
	if got := Histogram(nil, 0, 0); len(got) != 1 {
		t.Errorf("degenerate histogram len = %d", len(got))
	}
}

func TestStallReasonString(t *testing.T) {
	if StallNoCU.String() != "no-cu" || StallBarrier.String() != "barrier" {
		t.Error("stall names wrong")
	}
	// Every in-range reason must have a non-empty, distinct name — this
	// catches a new enum value added without a matching table entry.
	seen := make(map[string]StallReason, NumStallReasons)
	for r := StallReason(0); r < NumStallReasons; r++ {
		name := r.String()
		if name == "" {
			t.Errorf("StallReason(%d) has empty name", r)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("StallReason(%d) and StallReason(%d) share name %q", prev, r, name)
		}
		seen[name] = r
	}
	// Out-of-range values must stringify via the numeric fallback, never
	// panic or return an in-table name.
	for _, r := range []StallReason{NumStallReasons, 99, 255} {
		got := r.String()
		want := "stall(" + strconv.Itoa(int(r)) + ")"
		if got != want {
			t.Errorf("StallReason(%d).String() = %q, want %q", r, got, want)
		}
	}
}

// TestPercentileEdgeCases pins the contract on degenerate input: NaN
// values are dropped before ranking, NaN/negative p clamps to the
// minimum, p >= 100 to the maximum, and an empty (or all-NaN) sample
// yields 0.
func TestPercentileEdgeCases(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		vals []float64
		p    float64
		want float64
	}{
		{"empty", nil, 50, 0},
		{"all-nan", []float64{nan, nan}, 50, 0},
		{"nan-dropped", []float64{nan, 3, nan, 1}, 100, 3},
		{"nan-dropped-min", []float64{nan, 3, 1}, 0, 1},
		{"negative-p", []float64{5, 1, 9}, -10, 1},
		{"nan-p", []float64{5, 1, 9}, nan, 1},
		{"over-100", []float64{5, 1, 9}, 150, 9},
		{"single", []float64{7}, 50, 7},
		{"inf-kept", []float64{1, math.Inf(1)}, 100, math.Inf(1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Percentile(tc.vals, tc.p); got != tc.want && !almost(got, tc.want) {
				t.Errorf("Percentile(%v, %v) = %v, want %v", tc.vals, tc.p, got, tc.want)
			}
		})
	}
}

// TestHistogramEdgeCases pins the guards on degenerate bin shapes.
func TestHistogramEdgeCases(t *testing.T) {
	cases := []struct {
		name         string
		vals         []uint16
		nbins, maxV  int
		wantLen      int
		wantLastBin  int64
		wantFirstBin int64
	}{
		{"empty", nil, 4, 100, 4, 0, 0},
		{"zero-bins-clamped", []uint16{1, 2}, 0, 100, 1, 2, 2},
		{"negative-bins-clamped", []uint16{1}, -3, 100, 1, 1, 1},
		{"zero-max-clamped", []uint16{0, 1, 9}, 2, 0, 2, 2, 1},
		{"overflow-clamps-to-top", []uint16{500}, 4, 100, 4, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := Histogram(tc.vals, tc.nbins, tc.maxV)
			if len(h) != tc.wantLen {
				t.Fatalf("len = %d, want %d", len(h), tc.wantLen)
			}
			if h[len(h)-1] != tc.wantLastBin {
				t.Errorf("last bin = %d, want %d", h[len(h)-1], tc.wantLastBin)
			}
			if h[0] != tc.wantFirstBin && tc.wantLen > 1 {
				t.Errorf("first bin = %d, want %d", h[0], tc.wantFirstBin)
			}
			var total int64
			for _, c := range h {
				total += c
			}
			if total != int64(len(tc.vals)) {
				t.Errorf("total = %d, want %d (no value may be dropped)", total, len(tc.vals))
			}
		})
	}
}

// TestCoVNonFinite pins that NaN/±Inf samples are excluded from both
// passes instead of poisoning the mean, and all-zero input yields 0.
func TestCoVNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		vals []float64
		want float64
	}{
		{"all-zero", []float64{0, 0, 0}, 0},
		{"nan-skipped", []float64{5, nan, 5}, 0},
		{"inf-skipped", []float64{0, 4, inf, 0, 4, math.Inf(-1)}, 1},
		{"all-non-finite", []float64{nan, inf}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := CoV(tc.vals)
			if math.IsNaN(got) || !almost(got, tc.want) {
				t.Errorf("CoV(%v) = %v, want %v", tc.vals, got, tc.want)
			}
		})
	}
}

// TestGeoMeanNonFinite pins that NaN/±Inf are skipped like nonpositive
// values.
func TestGeoMeanNonFinite(t *testing.T) {
	got := GeoMean([]float64{2, math.NaN(), 8, math.Inf(1), -3})
	if !almost(got, 4) {
		t.Errorf("GeoMean = %v, want 4", got)
	}
	if got := GeoMean([]float64{math.NaN(), math.Inf(-1)}); got != 0 {
		t.Errorf("GeoMean all-non-finite = %v, want 0", got)
	}
}

// Property: CoV is scale-invariant (CoV(k*x) == CoV(x) for k > 0).
func TestCoVScaleInvariantProperty(t *testing.T) {
	f := func(a, b, c uint8, k uint8) bool {
		vals := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		scale := float64(k%9) + 1
		scaled := []float64{vals[0] * scale, vals[1] * scale, vals[2] * scale}
		return math.Abs(CoV(vals)-CoV(scaled)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: GeoMean lies between min and max of positive inputs.
func TestGeoMeanBoundsProperty(t *testing.T) {
	f := func(a, b, c uint16) bool {
		vals := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		g := GeoMean(vals)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
