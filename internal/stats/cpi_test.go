package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// subCoreFromCounters builds a SubCore whose refined counters are valid
// subsets of their StallCycles buckets, from arbitrary fuzz bytes.
func subCoreFromCounters(issue, noWarp, sb, noCU, euBusy, bar, confl, memNoCU, memEU, smIdle uint8) SubCore {
	var s SubCore
	s.IssueCycles = int64(issue)
	s.StallCycles[StallNoWarp] = int64(noWarp)
	s.StallCycles[StallScoreboard] = int64(sb)
	s.StallCycles[StallNoCU] = int64(noCU)
	s.StallCycles[StallEUBusy] = int64(euBusy)
	s.StallCycles[StallBarrier] = int64(bar)
	// Clamp refinements into their parent buckets (the simulator
	// guarantees this by charging both at the same attribution site).
	s.ConflictNoCU = min64(int64(confl), s.StallCycles[StallNoCU])
	s.MemNoCU = min64(int64(memNoCU), s.StallCycles[StallNoCU]-s.ConflictNoCU)
	s.MemEUBusy = min64(int64(memEU), s.StallCycles[StallEUBusy])
	s.SMIdleCycles = min64(int64(smIdle), s.StallCycles[StallNoWarp])
	return s
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Property: for any counter set respecting the subset contract, the CPI
// stack is non-negative and totals IssueCycles + all stall cycles.
func TestCPISubsetProperty(t *testing.T) {
	f := func(issue, noWarp, sb, noCU, euBusy, bar, confl, memNoCU, memEU, smIdle uint8) bool {
		s := subCoreFromCounters(issue, noWarp, sb, noCU, euBusy, bar, confl, memNoCU, memEU, smIdle)
		st := s.CPI()
		var stalls int64
		for r := StallReason(1); r < NumStallReasons; r++ {
			stalls += s.StallCycles[r]
		}
		if st.Total() != s.IssueCycles+stalls {
			return false
		}
		for _, v := range st {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCPIMapping(t *testing.T) {
	var s SubCore
	s.IssueCycles = 10
	s.StallCycles[StallNoCU] = 7
	s.ConflictNoCU = 4
	s.MemNoCU = 2
	s.StallCycles[StallEUBusy] = 5
	s.MemEUBusy = 3
	s.StallCycles[StallScoreboard] = 6
	s.StallCycles[StallBarrier] = 1
	s.StallCycles[StallNoWarp] = 9
	s.SMIdleCycles = 8
	st := s.CPI()
	want := CPIStack{}
	want[CPIIssue] = 10
	want[CPIBankConflict] = 4
	want[CPIMemory] = 2 + 3
	want[CPICUFull] = (7 - 4 - 2) + (5 - 3)
	want[CPIScoreboard] = 6
	want[CPIBarrier] = 1
	want[CPIImbalance] = 9 - 8
	want[CPIIdle] = 8
	if st != want {
		t.Errorf("CPI() = %v, want %v", st, want)
	}
	if st.Total() != 38 {
		t.Errorf("Total = %d, want 38", st.Total())
	}
}

func TestCPIStackHelpers(t *testing.T) {
	a := CPIStack{1, 2, 3}
	b := CPIStack{10, 0, 0}
	a.AddTo(&b)
	if b[0] != 11 || b[1] != 2 || b[2] != 3 {
		t.Errorf("AddTo = %v", b)
	}
	sh := b.Shares()
	var sum float64
	for _, v := range sh {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("Shares sum = %v, want 1", sum)
	}
	var empty CPIStack
	if s := empty.Shares(); s != [NumCPIComponents]float64{} {
		t.Errorf("empty Shares = %v, want zeros", s)
	}
}

func TestCPIComponentString(t *testing.T) {
	seen := make(map[string]bool, NumCPIComponents)
	for c := CPIComponent(0); c < NumCPIComponents; c++ {
		name := c.String()
		if name == "" || seen[name] {
			t.Errorf("CPIComponent(%d) name %q empty or duplicate", c, name)
		}
		seen[name] = true
	}
	if got := CPIComponent(200).String(); got != "cpi(200)" {
		t.Errorf("out-of-range = %q", got)
	}
}

func TestCheckCPI(t *testing.T) {
	r := NewRun(1, 2)
	r.Cycles = 100
	for j := range r.SMs[0].SubCores {
		sc := &r.SMs[0].SubCores[j]
		sc.IssueCycles = 60
		sc.StallCycles[StallNoCU] = 30
		sc.ConflictNoCU = 20
		sc.StallCycles[StallNoWarp] = 10
		sc.SMIdleCycles = 4
	}
	if err := r.CheckCPI(); err != nil {
		t.Fatalf("valid run: %v", err)
	}
	// A missing cycle must be caught.
	r.SMs[0].SubCores[1].IssueCycles = 59
	err := r.CheckCPI()
	if err == nil || !strings.Contains(err.Error(), "sub-core 1") {
		t.Fatalf("short stack not caught: %v", err)
	}
	// A refinement exceeding its parent bucket must be caught as a
	// negative residual.
	r.SMs[0].SubCores[1].IssueCycles = 60
	r.SMs[0].SubCores[0].ConflictNoCU = 31
	err = r.CheckCPI()
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative component not caught: %v", err)
	}
}
