package stats

import "fmt"

// CPIComponent is one slice of the top-down CPI stack: the taxonomy
// that attributes every sub-core cycle to exactly one cause. It is the
// Accel-Sim-style validation view of the paper's Fig. 1 decomposition —
// bank conflicts and issue imbalance become directly readable shares of
// total cycles instead of raw stall counters.
type CPIComponent uint8

const (
	// CPIIssue: at least one instruction issued this cycle.
	CPIIssue CPIComponent = iota
	// CPIBankConflict: no free collector unit while a bank read queue
	// was backlogged — the CUs are hostage to register-bank conflicts.
	CPIBankConflict
	// CPICUFull: structural back-end saturation with quiet banks: no
	// free collector unit, or every candidate's execution port busy.
	CPICUFull
	// CPIScoreboard: every candidate warp had a register hazard.
	CPIScoreboard
	// CPIMemory: blocked on the memory path — the LSU queue refused a
	// direct issue, or a collected memory instruction could not dispatch.
	CPIMemory
	// CPIBarrier: all candidate warps parked at a barrier while siblings
	// on other sub-cores still run.
	CPIBarrier
	// CPIImbalance: this sub-core had no issuable warp while the SM
	// still held work — the empty-sub-core cost of static partitioning
	// (the paper's second effect).
	CPIImbalance
	// CPIIdle: the whole SM held no resident warps.
	CPIIdle

	NumCPIComponents
)

var cpiNames = [NumCPIComponents]string{
	"issue", "bank-conflict", "cu-full", "scoreboard", "memory",
	"barrier", "imbalance", "idle",
}

// String names the component.
func (c CPIComponent) String() string {
	if int(c) < len(cpiNames) {
		return cpiNames[c]
	}
	return fmt.Sprintf("cpi(%d)", uint8(c))
}

// CPIStack is a per-component cycle attribution, indexed by
// CPIComponent. Total() equals the elapsed cycles of whatever it was
// accumulated over — exactly, by construction: the issue stage charges
// each cycle to precisely one bucket.
type CPIStack [NumCPIComponents]int64

// Total sums the stack.
func (s *CPIStack) Total() int64 {
	var t int64
	for _, v := range s {
		t += v
	}
	return t
}

// AddTo accumulates this stack into dst.
func (s *CPIStack) AddTo(dst *CPIStack) {
	for i, v := range s {
		dst[i] += v
	}
}

// Shares returns each component's fraction of the total (zeros for an
// empty stack).
func (s *CPIStack) Shares() [NumCPIComponents]float64 {
	var out [NumCPIComponents]float64
	t := s.Total()
	if t == 0 {
		return out
	}
	for i, v := range s {
		out[i] = float64(v) / float64(t)
	}
	return out
}

// cpiLedger classifies every SubCore counter and every StallReason for
// the cpiguard analyzer (docs/STATIC_ANALYSIS.md): "cycle..." entries
// are terms of the CPI == cycles identity and must be read in
// (*SubCore).CPI; "event: <reason>" entries are occurrence counters
// whose cycle cost is attributed elsewhere (the reason says where).
// Adding a SubCore field or a StallReason without classifying it here
// is a simlint finding — exactly the silent drift CheckCPI can only
// catch when a workload happens to drive the new counter.
var cpiLedger = map[string]string{
	// Stack terms: read in CPI(), summed by CheckCPI against Run.Cycles.
	"IssueCycles":  "cycle: the CPIIssue slice",
	"ConflictNoCU": "cycle: the CPIBankConflict slice, carved from StallNoCU",
	"MemNoCU":      "cycle: CPIMemory term, the LSU-backpressure subset of StallNoCU",
	"MemEUBusy":    "cycle: CPIMemory term, the memory-port subset of StallEUBusy",
	"SMIdleCycles": "cycle: the CPIIdle slice, carved from StallNoWarp",
	"StallCycles":  "cycle: per-reason buckets; every non-issued cycle lands in exactly one",

	// Occurrence counters: outside the cycles identity by design.
	"Issued":          "event: instruction count (Fig 17's CoV numerator), not a cycle bucket",
	"Cycles":          "event: active-cycle tally cross-checked against Run.Cycles by the auditor, not a stack term",
	"BankConflicts":   "event: delayed-read occurrences; their cycle cost is attributed via ConflictNoCU",
	"RegReads":        "event: granted 32-wide reads (Fig 14 utilization), not a cycle bucket",
	"RegWrites":       "event: writeback count, not a cycle bucket",
	"IdleAllFinished": "event: diagnostic subset of StallNoWarp cycles (Section III-B pathology); its cycles are already in CPIImbalance/CPIIdle",

	// Stall reasons CPI never indexes directly.
	"StallNone": "event: marks an issued cycle at attribution time; those cycles enter the stack as IssueCycles",
}

// CPI derives the sub-core's CPI stack from its counters. The refined
// counters (ConflictNoCU, MemNoCU, MemEUBusy, SMIdleCycles) are strict
// subsets of their StallCycles buckets, so the residuals are never
// negative and the stack total equals the cycles this sub-core's issue
// stage ran.
func (s *SubCore) CPI() CPIStack {
	var c CPIStack
	c[CPIIssue] = s.IssueCycles
	c[CPIBankConflict] = s.ConflictNoCU
	c[CPIMemory] = s.MemNoCU + s.MemEUBusy
	c[CPICUFull] = s.StallCycles[StallNoCU] - s.ConflictNoCU - s.MemNoCU +
		s.StallCycles[StallEUBusy] - s.MemEUBusy
	c[CPIScoreboard] = s.StallCycles[StallScoreboard]
	c[CPIBarrier] = s.StallCycles[StallBarrier]
	c[CPIImbalance] = s.StallCycles[StallNoWarp] - s.SMIdleCycles
	c[CPIIdle] = s.SMIdleCycles
	return c
}

// CPIStack sums the CPI stacks of every sub-core in the run. Its total
// is Cycles × (number of sub-cores across the device).
func (r *Run) CPIStack() CPIStack {
	var out CPIStack
	for i := range r.SMs {
		for j := range r.SMs[i].SubCores {
			st := r.SMs[i].SubCores[j].CPI()
			st.AddTo(&out)
		}
	}
	return out
}

// CheckCPI verifies the stack invariant for every SM × sub-core: the
// attributed cycles sum exactly to the run's total cycles, and no
// component is negative. It returns the first violation found, nil when
// the invariant holds. Tests and the determinism suite call this after
// every run.
func (r *Run) CheckCPI() error {
	for i := range r.SMs {
		for j := range r.SMs[i].SubCores {
			st := r.SMs[i].SubCores[j].CPI()
			for c, v := range st {
				if v < 0 {
					return fmt.Errorf("stats: SM %d sub-core %d: negative %s cycles %d",
						i, j, CPIComponent(c), v)
				}
			}
			if t := st.Total(); t != r.Cycles {
				return fmt.Errorf("stats: SM %d sub-core %d: CPI stack sums to %d, run has %d cycles",
					i, j, t, r.Cycles)
			}
		}
	}
	return nil
}
