// Package stats collects the measurements the paper's figures are built
// from: per-sub-core issue counts (Fig 17's coefficient of variation),
// register-file reads per cycle (Fig 14's utilization traces), bank
// conflict and stall breakdowns, and whole-run cycle/instruction totals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// StallReason classifies why a sub-core scheduler failed to issue in a
// cycle. The breakdown identifies which of the paper's four sub-division
// effects dominates an application.
type StallReason uint8

const (
	// StallNone: an instruction issued.
	StallNone StallReason = iota
	// StallNoWarp: no resident warp had a decoded instruction (empty,
	// finished, or waiting at a barrier). Sub-core issue imbalance shows
	// up here.
	StallNoWarp
	// StallScoreboard: every candidate had a register hazard.
	StallScoreboard
	// StallNoCU: no free collector unit — the read-operand stage is
	// backed up (bank conflicts).
	StallNoCU
	// StallEUBusy: the target execution unit could not accept.
	StallEUBusy
	// StallBarrier: all candidate warps were parked at a barrier while
	// siblings on other sub-cores still run (inter-warp divergence).
	StallBarrier

	NumStallReasons
)

var stallNames = [NumStallReasons]string{
	"issued", "no-warp", "scoreboard", "no-cu", "eu-busy", "barrier",
}

// String names the reason.
func (s StallReason) String() string {
	if int(s) < len(stallNames) {
		return stallNames[s]
	}
	return fmt.Sprintf("stall(%d)", uint8(s))
}

// SubCore holds per-sub-core counters within one SM.
type SubCore struct {
	// Issued is the number of instructions issued by this sub-core's
	// scheduler(s) — the quantity Fig 17 computes CoV over.
	Issued int64
	// Cycles this sub-core was active (SM active cycles).
	Cycles int64
	// StallCycles[r] counts cycles lost to each reason.
	StallCycles [NumStallReasons]int64
	// BankConflicts counts read requests that waited >= 1 extra cycle in
	// a bank queue.
	BankConflicts int64
	// RegReads counts 32-wide register reads granted.
	RegReads int64
	// RegWrites counts writebacks.
	RegWrites int64
	// IdleAllFinished counts cycles where every resident warp had exited
	// but the block had not yet been released (the static-assignment
	// pathology of Section III-B).
	IdleAllFinished int64

	// The remaining counters refine the stall taxonomy into the top-down
	// CPI stack (cpi.go). Each is a strict subset of one StallCycles
	// bucket, carved out at attribution time by the issue stage, so the
	// stack's components always sum exactly to total cycles.

	// IssueCycles counts cycles in which this sub-core issued at least
	// one instruction (the complement of all StallCycles buckets).
	IssueCycles int64
	// ConflictNoCU is the subset of StallCycles[StallNoCU] where a bank
	// read queue was backlogged — collector units held hostage by bank
	// conflicts, the paper's first partitioning effect.
	ConflictNoCU int64
	// MemNoCU is the subset of StallCycles[StallNoCU] where the banks
	// were quiet but a collected memory instruction could not dispatch —
	// LSU backpressure surfacing as CU exhaustion.
	MemNoCU int64
	// MemEUBusy is the subset of StallCycles[StallEUBusy] where the
	// blocked port was the memory path (direct issue into a full LSU).
	MemEUBusy int64
	// SMIdleCycles is the subset of StallCycles[StallNoWarp] where the
	// whole SM held no resident warps — true idleness, as opposed to
	// this sub-core sitting empty while siblings still run (imbalance).
	SMIdleCycles int64
}

// SM aggregates an SM's sub-cores plus SM-level memory counters.
type SM struct {
	SubCores []SubCore
	// BlocksCompleted counts thread blocks retired by this SM.
	BlocksCompleted int64
	// L1Hits, L1Misses count data-cache outcomes.
	L1Hits, L1Misses int64
	// SharedConflicts counts extra scratchpad cycles from bank conflicts.
	SharedConflicts int64
	// AssignFallbacks counts warps whose designated sub-core was full so
	// placement fell back to the least-loaded sub-core.
	AssignFallbacks int64
}

// KernelStats records one kernel launch within a run.
type KernelStats struct {
	// Name is the kernel label.
	Name string
	// Cycles the launch took (wall cycles, not summed over SMs).
	Cycles int64
	// Instructions issued during the launch.
	Instructions int64
}

// Run is the result of simulating one application on one configuration.
type Run struct {
	// Cycles is total GPU cycles to completion.
	Cycles int64
	// Instructions is total warp instructions issued.
	Instructions int64
	SMs          []SM
	// Kernels breaks the run down per kernel launch.
	Kernels []KernelStats
	// OccupancySamples/OccupancySum track mean resident warps per SM,
	// sampled every cycle on every SM (one sample per SM per cycle).
	OccupancySum     int64
	OccupancySamples int64
	// ReadsPerCycle, when tracing was enabled, holds the aggregate
	// 4-byte register reads each cycle on SM 0 (Fig 14).
	ReadsPerCycle []uint16
	// IssueTimeline, when issue tracing was enabled, holds per-sub-core
	// instructions issued on SM 0 per bucket of IssueBucket cycles —
	// the raw material for visualizing sub-core imbalance over time.
	IssueTimeline [][]uint32
	IssueBucket   int
}

// MeanOccupancy returns the average resident warps per SM, over all SMs
// and all cycles.
func (r *Run) MeanOccupancy() float64 {
	if r.OccupancySamples == 0 {
		return 0
	}
	return float64(r.OccupancySum) / float64(r.OccupancySamples)
}

// NewRun sizes a Run for an SM/sub-core topology.
func NewRun(numSMs, subCoresPerSM int) *Run {
	r := &Run{SMs: make([]SM, numSMs)}
	for i := range r.SMs {
		r.SMs[i].SubCores = make([]SubCore, subCoresPerSM)
	}
	return r
}

// IPC returns instructions per cycle for the whole GPU.
func (r *Run) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// IssuePerSubCore returns the per-sub-core issued-instruction totals
// across all SMs, concatenated SM-major.
func (r *Run) IssuePerSubCore() []int64 {
	var out []int64
	for i := range r.SMs {
		for j := range r.SMs[i].SubCores {
			out = append(out, r.SMs[i].SubCores[j].Issued)
		}
	}
	return out
}

// IssueCoV returns the mean over SMs of the coefficient of variation of
// instructions issued per sub-core — Fig 17's metric. SMs that issued
// nothing are skipped.
func (r *Run) IssueCoV() float64 {
	var sum float64
	var n int
	for i := range r.SMs {
		subs := r.SMs[i].SubCores
		if len(subs) == 0 {
			continue
		}
		// Streaming CoV (population stddev / mean), equivalent to CoV()
		// over the per-sub-core counts but without building a slice —
		// this accessor rides report loops over full sweep matrices.
		var total int64
		for j := range subs {
			total += subs[j].Issued
		}
		if total == 0 {
			continue
		}
		mean := float64(total) / float64(len(subs))
		var ss float64
		for j := range subs {
			d := float64(subs[j].Issued) - mean
			ss += d * d
		}
		sum += math.Sqrt(ss/float64(len(subs))) / mean
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TotalStalls sums a stall reason across every sub-core.
func (r *Run) TotalStalls(reason StallReason) int64 {
	var t int64
	for i := range r.SMs {
		for j := range r.SMs[i].SubCores {
			t += r.SMs[i].SubCores[j].StallCycles[reason]
		}
	}
	return t
}

// TotalBankConflicts sums register bank conflicts across the GPU.
func (r *Run) TotalBankConflicts() int64 {
	var t int64
	for i := range r.SMs {
		for j := range r.SMs[i].SubCores {
			t += r.SMs[i].SubCores[j].BankConflicts
		}
	}
	return t
}

// TotalRegReads sums granted register reads across the GPU.
func (r *Run) TotalRegReads() int64 {
	var t int64
	for i := range r.SMs {
		for j := range r.SMs[i].SubCores {
			t += r.SMs[i].SubCores[j].RegReads
		}
	}
	return t
}

// MeanReadsPerCycle returns the average over the traced reads-per-cycle
// series, in 4-byte-read units (the red line in Fig 14).
func (r *Run) MeanReadsPerCycle() float64 {
	if len(r.ReadsPerCycle) == 0 {
		return 0
	}
	var s int64
	for _, v := range r.ReadsPerCycle {
		s += int64(v)
	}
	return float64(s) / float64(len(r.ReadsPerCycle))
}

// CoV returns the coefficient of variation (population stddev / mean)
// of vals; 0 when the mean is 0, on empty input, and on an all-zero
// vector. Non-finite values (NaN, ±Inf) are skipped — one poisoned
// sample must not turn a whole report column into NaN.
func CoV(vals []float64) float64 {
	var mean float64
	var n int
	for _, v := range vals {
		if isFinite(v) {
			mean += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	mean /= float64(n)
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, v := range vals {
		if isFinite(v) {
			d := v - mean
			ss += d * d
		}
	}
	return math.Sqrt(ss/float64(n)) / mean
}

// GeoMean returns the geometric mean of positive finite values; values
// <= 0, NaN, and ±Inf are skipped (speedup tables never contain them).
func GeoMean(vals []float64) float64 {
	var s float64
	var n int
	for _, v := range vals {
		if v > 0 && isFinite(v) {
			s += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// isFinite reports v is neither NaN nor ±Inf.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// Percentile returns the p-th percentile (0..100) by nearest-rank on a
// copy of vals. NaN values are dropped before ranking (sort.Float64s
// leaves them in unspecified positions, which would make the rank
// nondeterministic); 0 on empty input or when every value is NaN. A NaN
// p is treated as 0 (the minimum).
func Percentile(vals []float64, p float64) float64 {
	cp := make([]float64, 0, len(vals))
	for _, v := range vals {
		if !math.IsNaN(v) {
			cp = append(cp, v)
		}
	}
	if len(cp) == 0 {
		return 0
	}
	sort.Float64s(cp)
	if p <= 0 || math.IsNaN(p) {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(cp)))) - 1
	if rank < 0 {
		rank = 0
	}
	return cp[rank]
}

// Histogram buckets vals into n equal-width bins over [min, max] and
// returns the counts. Used to summarize Fig 14's read distribution.
func Histogram(vals []uint16, nbins int, maxVal int) []int64 {
	if nbins < 1 {
		nbins = 1
	}
	bins := make([]int64, nbins)
	if maxVal < 1 {
		maxVal = 1
	}
	for _, v := range vals {
		b := int(v) * nbins / (maxVal + 1)
		if b >= nbins {
			b = nbins - 1
		}
		bins[b]++
	}
	return bins
}
