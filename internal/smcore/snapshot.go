package smcore

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/snapshot"
)

// Snapshot field manifests, checked by TestSnapshotCoverage via
// snapshot.Coverage: every field of the SM's state structs is either
// encoded here or carries the reason it need not be. Changing the encoded
// set requires a snapshot.Version bump.
var (
	smManifest = map[string]string{
		"id":             "skip: identity, fixed at construction",
		"cfg":            "skip: restore target is built from the same validated config",
		"warps":          "encoded",
		"blocks":         "encoded",
		"subcores":       "encoded",
		"assigner":       "encoded (policy state word)",
		"lsu":            "encoded",
		"hier":           "skip: serialized once at device level by gpu",
		"st":             "skip: stats pointer; stats.Run is serialized by gpu",
		"run":            "skip: stats pointer; stats.Run is serialized by gpu",
		"wb":             "encoded (heap layout preserved verbatim)",
		"freeShmem":      "encoded",
		"ageCounter":     "encoded",
		"rooms":          "skip: CanAccept scratch, rebuilt each probe",
		"auditSB":        "skip: Audit scratch, rewritten before every use",
		"residentWarps":  "encoded",
		"residentBlocks": "encoded",
		"liveWarps":      "encoded",
		"traceReads":     "skip: rewired by gpu.New from the run shape",
		"lastRegRead":    "encoded",
		"tr":             "skip: tracer wiring, reattached via SetTracer",
	}
	warpManifest = map[string]string{
		"State":      "encoded",
		"GID":        "encoded",
		"BlockSlot":  "encoded",
		"SubCore":    "encoded",
		"SchedSlot":  "encoded",
		"BankOff":    "encoded",
		"Age":        "encoded",
		"Cursor":     "encoded (as program.Pos; the program is rebuilt from the workload and rebound by GID)",
		"IBuf":       "encoded (first IBufN entries; the rest is dead)",
		"IBufN":      "encoded",
		"sb":         "encoded",
		"sbCount":    "encoded",
		"StolenCU":   "encoded",
		"MemCounter": "encoded",
		"rng":        "encoded",
	}
	blockManifest = map[string]string{
		"active":         "encoded",
		"kernelBlockID":  "encoded",
		"warpsTotal":     "encoded",
		"warpsExited":    "encoded",
		"barrierWaiting": "encoded",
		"warpIdxs":       "encoded",
		"regsPerThread":  "encoded",
		"sharedBytes":    "encoded",
	}
	wbEventManifest = map[string]string{
		"cycle":   "encoded",
		"warpIdx": "encoded",
		"reg":     "encoded",
		"bank":    "encoded",
		"subCore": "encoded",
	}
	subCoreManifest = map[string]string{
		"id":           "skip: identity, fixed at construction",
		"cfg":          "skip: restore target is built from the same validated config",
		"sm":           "skip: parent wiring",
		"slots":        "encoded",
		"used":         "encoded",
		"sched":        "encoded (policy state word)",
		"coll":         "encoded",
		"eu":           "encoded (per-pipe next-free cycles; widths derived from config)",
		"freeRegBytes": "encoded",
		"st":           "skip: stats pointer; stats.Run is serialized by gpu",
		"tr":           "skip: tracer wiring, reattached via SetTracer",
		"cands":        "skip: per-cycle scratch",
		"qlenBuf":      "skip: per-cycle scratch",
		"dispatchFn":   "skip: closure built at construction",
		"dispNow":      "skip: per-cycle scratch consumed within collectorTick",
		"dispPorts":    "skip: per-cycle scratch consumed within collectorTick",
	}
	execUnitManifest = map[string]string{
		"ii":    "skip: derived from config at construction",
		"ports": "encoded",
	}
	lsuManifest = map[string]string{
		"sm":       "skip: parent wiring",
		"queue":    "encoded",
		"capacity": "skip: derived from config at construction",
		"portFree": "encoded",
		"tr":       "skip: tracer wiring, reattached via SetTracer",
		"lat":      "skip: constants set by the constructor",
	}
	lsuEntryManifest = map[string]string{
		"warpIdx": "encoded",
		"subCore": "encoded",
		"in":      "encoded",
	}
)

// ProgramResolver maps a kernel-wide warp GID back to its instruction
// stream when a snapshot is restored. The gpu layer implements it from the
// in-flight kernels' block specs (programs are deterministic workload
// artifacts and are rebuilt, not serialized).
type ProgramResolver func(gid int64) (*program.Program, error)

// EncodeState serializes the SM's full mutable state: every warp context
// (lifecycle, scoreboard, instruction buffer, cursor position, RNG),
// resident-block bookkeeping, the writeback heap, the LSU queue, and each
// sub-core (scheduler state, occupancy, execution-port timing, operand
// collector).
func (sm *SM) EncodeState(e *snapshot.Encoder) {
	e.Section("sm")
	e.Varint(sm.ageCounter)
	e.Int(sm.freeShmem)
	e.Int(sm.residentWarps)
	e.Int(sm.residentBlocks)
	e.Int(sm.liveWarps)
	e.Varint(sm.lastRegRead)
	e.Uvarint(sm.assigner.State())
	e.Uvarint(uint64(len(sm.warps)))
	for i := range sm.warps {
		encodeWarp(e, &sm.warps[i])
	}
	e.Uvarint(uint64(len(sm.blocks)))
	for i := range sm.blocks {
		encodeBlock(e, &sm.blocks[i])
	}
	e.Uvarint(uint64(len(sm.wb)))
	for _, ev := range sm.wb {
		e.Varint(ev.cycle)
		e.Varint(int64(ev.warpIdx))
		e.Uvarint(uint64(ev.reg))
		e.Varint(int64(ev.bank))
		e.Varint(int64(ev.subCore))
	}
	e.Varint(sm.lsu.portFree)
	e.Uvarint(uint64(len(sm.lsu.queue)))
	for i := range sm.lsu.queue {
		en := &sm.lsu.queue[i]
		e.Varint(int64(en.warpIdx))
		e.Varint(int64(en.subCore))
		e.Instr(&en.in)
	}
	e.Uvarint(uint64(len(sm.subcores)))
	for _, sc := range sm.subcores {
		sc.encodeState(e)
	}
}

// RestoreState decodes into an SM freshly built from the same config,
// rebinding each warp's program cursor through progFor. It does NOT run
// ResetForKernel — the restored scheduler and assigner state must survive.
func (sm *SM) RestoreState(d *snapshot.Decoder, progFor ProgramResolver) error {
	d.Section("sm")
	sm.ageCounter = d.Varint()
	sm.freeShmem = d.Int()
	sm.residentWarps = d.Int()
	sm.residentBlocks = d.Int()
	sm.liveWarps = d.Int()
	sm.lastRegRead = d.Varint()
	sm.assigner.SetState(d.Uvarint())
	nw := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if int(nw) != len(sm.warps) {
		return fmt.Errorf("smcore: snapshot has %d warp slots, this config has %d", nw, len(sm.warps))
	}
	for i := range sm.warps {
		if err := decodeWarp(d, &sm.warps[i], progFor); err != nil {
			return fmt.Errorf("smcore: sm%d warp %d: %w", sm.id, i, err)
		}
	}
	nb := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if int(nb) != len(sm.blocks) {
		return fmt.Errorf("smcore: snapshot has %d block slots, this config has %d", nb, len(sm.blocks))
	}
	for i := range sm.blocks {
		decodeBlock(d, &sm.blocks[i])
	}
	nwb := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return err
	}
	sm.wb = sm.wb[:0]
	for i := 0; i < nwb; i++ {
		sm.wb = append(sm.wb, wbEvent{
			cycle:   d.Varint(),
			warpIdx: int32(d.Varint()),
			reg:     isa.Reg(d.Uvarint()),
			bank:    int8(d.Varint()),
			subCore: int8(d.Varint()),
		})
	}
	sm.lsu.portFree = d.Varint()
	nq := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return err
	}
	if nq > sm.lsu.capacity {
		return fmt.Errorf("smcore: snapshot LSU queue holds %d entries, capacity is %d", nq, sm.lsu.capacity)
	}
	sm.lsu.queue = sm.lsu.queue[:0]
	for i := 0; i < nq; i++ {
		sm.lsu.queue = append(sm.lsu.queue, lsuEntry{
			warpIdx: int32(d.Varint()),
			subCore: int8(d.Varint()),
			in:      d.Instr(),
		})
	}
	ns := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if int(ns) != len(sm.subcores) {
		return fmt.Errorf("smcore: snapshot has %d sub-cores, this config has %d", ns, len(sm.subcores))
	}
	for _, sc := range sm.subcores {
		if err := sc.restoreState(d); err != nil {
			return err
		}
	}
	return d.Err()
}

func encodeWarp(e *snapshot.Encoder, w *Warp) {
	e.Uvarint(uint64(w.State))
	if w.State == WarpEmpty {
		// Empty slots carry only dead residue from their last occupant;
		// encoding the state byte alone keeps snapshots canonical.
		return
	}
	e.Varint(w.GID)
	e.Varint(int64(w.BlockSlot))
	e.Varint(int64(w.SubCore))
	e.Varint(int64(w.SchedSlot))
	e.Varint(int64(w.BankOff))
	e.Varint(w.Age)
	pos := w.Cursor.Pos()
	e.Int(pos.Seg)
	e.Int(pos.Idx)
	e.Varint(pos.Trip)
	e.Varint(pos.Fetched)
	e.Varint(int64(w.IBufN))
	for i := 0; i < int(w.IBufN); i++ {
		e.Instr(&w.IBuf[i])
	}
	for _, word := range w.sb {
		e.Uvarint(word)
	}
	e.Varint(int64(w.sbCount))
	e.Varint(int64(w.StolenCU))
	e.Varint(w.MemCounter)
	e.Uvarint(w.rng)
}

func decodeWarp(d *snapshot.Decoder, w *Warp, progFor ProgramResolver) error {
	st := WarpState(d.Uvarint())
	if err := d.Err(); err != nil {
		return err
	}
	if st > WarpFinished {
		return fmt.Errorf("invalid warp state %d", st)
	}
	if st == WarpEmpty {
		*w = Warp{}
		return nil
	}
	*w = Warp{State: st}
	w.GID = d.Varint()
	w.BlockSlot = int32(d.Varint())
	w.SubCore = int8(d.Varint())
	w.SchedSlot = int16(d.Varint())
	w.BankOff = int16(d.Varint())
	w.Age = d.Varint()
	var pos program.Pos
	pos.Seg = d.Int()
	pos.Idx = d.Int()
	pos.Trip = d.Varint()
	pos.Fetched = d.Varint()
	w.IBufN = int8(d.Varint())
	if err := d.Err(); err != nil {
		return err
	}
	if w.IBufN < 0 || int(w.IBufN) > len(w.IBuf) {
		return fmt.Errorf("instruction buffer fill %d out of [0,%d]", w.IBufN, len(w.IBuf))
	}
	for i := 0; i < int(w.IBufN); i++ {
		w.IBuf[i] = d.Instr()
	}
	for i := range w.sb {
		w.sb[i] = d.Uvarint()
	}
	w.sbCount = int16(d.Varint())
	w.StolenCU = int8(d.Varint())
	w.MemCounter = d.Varint()
	w.rng = d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	prog, err := progFor(w.GID)
	if err != nil {
		return err
	}
	cur, err := prog.CursorAt(pos)
	if err != nil {
		return err
	}
	w.Cursor = cur
	return nil
}

func encodeBlock(e *snapshot.Encoder, b *block) {
	e.Bool(b.active)
	if !b.active {
		return
	}
	e.Int(b.kernelBlockID)
	e.Int(b.warpsTotal)
	e.Int(b.warpsExited)
	e.Int(b.barrierWaiting)
	e.Uvarint(uint64(len(b.warpIdxs)))
	for _, wi := range b.warpIdxs {
		e.Varint(int64(wi))
	}
	e.Int(b.regsPerThread)
	e.Int(b.sharedBytes)
}

func decodeBlock(d *snapshot.Decoder, b *block) {
	if !d.Bool() {
		*b = block{}
		return
	}
	*b = block{active: true}
	b.kernelBlockID = d.Int()
	b.warpsTotal = d.Int()
	b.warpsExited = d.Int()
	b.barrierWaiting = d.Int()
	n := int(d.Uvarint())
	if d.Err() != nil {
		return
	}
	b.warpIdxs = make([]int32, 0, n)
	for i := 0; i < n; i++ {
		b.warpIdxs = append(b.warpIdxs, int32(d.Varint()))
	}
	b.regsPerThread = d.Int()
	b.sharedBytes = d.Int()
}

func (sc *SubCore) encodeState(e *snapshot.Encoder) {
	e.Section("sub")
	e.Uvarint(sc.sched.State())
	e.Int(sc.used)
	e.Int(sc.freeRegBytes)
	e.Uvarint(uint64(len(sc.slots)))
	for _, s := range sc.slots {
		e.Varint(int64(s))
	}
	for class := range sc.eu {
		ports := sc.eu[class].ports
		e.Uvarint(uint64(len(ports)))
		for _, p := range ports {
			e.Varint(p)
		}
	}
	sc.coll.EncodeState(e)
}

func (sc *SubCore) restoreState(d *snapshot.Decoder) error {
	d.Section("sub")
	sc.sched.SetState(d.Uvarint())
	sc.used = d.Int()
	sc.freeRegBytes = d.Int()
	ns := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if int(ns) != len(sc.slots) {
		return fmt.Errorf("smcore: snapshot sub-core has %d slots, this config has %d", ns, len(sc.slots))
	}
	for i := range sc.slots {
		sc.slots[i] = int32(d.Varint())
	}
	for class := range sc.eu {
		np := d.Uvarint()
		if err := d.Err(); err != nil {
			return err
		}
		ports := sc.eu[class].ports
		if int(np) != len(ports) {
			return fmt.Errorf("smcore: snapshot class-%d unit has %d ports, this config has %d", class, np, len(ports))
		}
		for i := range ports {
			ports[i] = d.Varint()
		}
	}
	return sc.coll.RestoreState(d)
}
