package smcore

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/program"
)

// TestLDCDirectIssue exercises the zero-source direct-dispatch path (LDC
// bypasses the operand collector but still owes a writeback).
func TestLDCDirectIssue(t *testing.T) {
	sm, _ := testSM(t, nil)
	b := program.NewBuilder()
	b.LDC(4)
	b.FMA(5, 4, 4, 5) // depends on the constant load
	p := b.MustBuild()
	if err := sm.Allocate(specOf([]*program.Program{p}, 8, 0)); err != nil {
		t.Fatal(err)
	}
	done := runToDrain(t, sm, 10000)
	if done < 8 {
		t.Errorf("drained at %d, before the constant-cache latency", done)
	}
}

// TestSFUAndTensorPipes exercises the SFU and tensor execution classes.
func TestSFUAndTensorPipes(t *testing.T) {
	sm, run := testSM(t, nil)
	b := program.NewBuilder()
	b.Loop(16, func(lb *program.Builder) {
		lb.SFU(4, 1)
		lb.Tensor(6, 1, 2, 6)
	})
	p := b.MustBuild()
	if err := sm.Allocate(specOf([]*program.Program{p, p}, 16, 0)); err != nil {
		t.Fatal(err)
	}
	runToDrain(t, sm, 50000)
	var issued int64
	for i := range run.SMs[0].SubCores {
		issued += run.SMs[0].SubCores[i].Issued
	}
	if issued != 2*p.Len() {
		t.Errorf("issued = %d, want %d", issued, 2*p.Len())
	}
}

// TestBankStealingPreAllocation drives the stealTick path: a second ready
// warp's instruction is staged into the free CU and converted to a normal
// issue later, with identical committed work.
func TestBankStealingPreAllocation(t *testing.T) {
	mk := func(stealing bool) int64 {
		sm, run := testSM(t, func(g *config.GPU) { g.BankStealing = stealing })
		b := program.NewBuilder()
		b.Loop(64, func(lb *program.Builder) {
			lb.FMA(4, 6, 8, 4) // conflicting operands: slow collection
		})
		p := b.MustBuild()
		progs := make([]*program.Program, 8)
		for i := range progs {
			progs[i] = p
		}
		if err := sm.Allocate(specOf(progs, 16, 0)); err != nil {
			t.Fatal(err)
		}
		runToDrain(t, sm, 100000)
		var issued int64
		for i := range run.SMs[0].SubCores {
			issued += run.SMs[0].SubCores[i].Issued
		}
		if issued != 8*p.Len() {
			t.Fatalf("issued = %d, want %d (stealing=%v)", issued, 8*p.Len(), stealing)
		}
		return issued
	}
	if mk(false) != mk(true) {
		t.Error("bank stealing changed committed work")
	}
}

// TestResetForKernel clears scheduler and assigner state between kernels.
func TestResetForKernel(t *testing.T) {
	sm, _ := testSM(t, nil)
	p := fmaProg(4)
	if err := sm.Allocate(specOf([]*program.Program{p, p, p, p}, 8, 0)); err != nil {
		t.Fatal(err)
	}
	runToDrain(t, sm, 10000)
	sm.ResetForKernel()
	// After reset, the assigner restarts: the next block's warp 0 must
	// land on sub-core 0 again.
	if err := sm.Allocate(specOf([]*program.Program{p}, 8, 0)); err != nil {
		t.Fatal(err)
	}
	if got := sm.warps[sm.blocks[0].warpIdxs[0]].SubCore; got != 0 {
		t.Errorf("first warp after reset on sub-core %d, want 0", got)
	}
	runToDrain(t, sm, 10000)
}

// TestAssignFallback forces the designated sub-core to be register-full
// so placement falls back to the least-loaded sub-core with space.
func TestAssignFallback(t *testing.T) {
	sm, run := testSM(t, nil)
	p := fmaProg(2)
	// Exhaust sub-core 0's register file directly; the next block's warp
	// 0 (round robin designates sub-core 0) must fall back.
	sm.subcores[0].freeRegBytes = 0
	if err := sm.Allocate(specOf([]*program.Program{p, p, p, p}, 8, 0)); err != nil {
		t.Fatal(err)
	}
	if run.SMs[0].AssignFallbacks == 0 {
		t.Error("no fallback recorded despite a full designated sub-core")
	}
	if sm.warps[0].SubCore == 0 {
		t.Error("warp 0 placed on the register-full sub-core")
	}
	runToDrain(t, sm, 50000)
}

// TestCanAcceptPerSubCoreFragmentation: a block can be refused even when
// the SM's total free register space suffices, because registers are
// partitioned per sub-core (the paper's fourth effect).
func TestCanAcceptPerSubCoreFragmentation(t *testing.T) {
	sm, _ := testSM(t, nil)
	p := fmaProg(2)
	// Leave each sub-core 4KB short of a fat warp's 8KB footprint:
	// 20KB free per sub-core minus... set directly: 7KB free each.
	for _, sc := range sm.subcores {
		sc.freeRegBytes = 7 * 1024
	}
	// One warp at 64 regs/thread needs 8KB on a single sub-core. The SM
	// has 28KB free in total but no sub-core has 8KB.
	if sm.CanAccept(specOf([]*program.Program{p}, 64, 0)) {
		t.Error("fragmented SM accepted a block no sub-core can host")
	}
	// A 32-reg warp (4KB) fits.
	if !sm.CanAccept(specOf([]*program.Program{p}, 32, 0)) {
		t.Error("4KB warp refused despite 7KB free per sub-core")
	}
}

// TestWarpStatesAndSchedSlots checks resident bookkeeping fields.
func TestWarpStatesAndSchedSlots(t *testing.T) {
	sm, _ := testSM(t, nil)
	p := fmaProg(2)
	progs := []*program.Program{p, p, p, p, p, p, p, p}
	if err := sm.Allocate(specOf(progs, 8, 0)); err != nil {
		t.Fatal(err)
	}
	// Two warps per sub-core: sched slots 0 and 1.
	for i := 0; i < 8; i++ {
		w := &sm.warps[i]
		if int(w.SchedSlot) != i/4 {
			t.Errorf("warp %d sched slot %d, want %d", i, w.SchedSlot, i/4)
		}
		if w.State != WarpActive {
			t.Errorf("warp %d not active", i)
		}
	}
}

// TestStridedGlobalLoadsUseMultipleTransactions: strided loads occupy the
// LSU coalescer port longer than coalesced ones.
func TestStridedGlobalLoadsUseMultipleTransactions(t *testing.T) {
	mk := func(trait isa.MemTrait) int64 {
		sm, _ := testSM(t, nil)
		b := program.NewBuilder()
		b.Loop(32, func(lb *program.Builder) {
			lb.LDG(4, 1, trait)
			lb.FMA(5, 4, 4, 5)
		})
		p := b.MustBuild()
		progs := make([]*program.Program, 8)
		for i := range progs {
			progs[i] = p
		}
		if err := sm.Allocate(specOf(progs, 16, 0)); err != nil {
			t.Fatal(err)
		}
		return runToDrain(t, sm, 500000)
	}
	co := mk(isa.MemTrait{Pattern: isa.PatCoalesced, Footprint: 1 << 16, Shared: true})
	st := mk(isa.MemTrait{Pattern: isa.PatStrided, StrideBytes: 128, Footprint: 1 << 16, Shared: true})
	if st <= co {
		t.Errorf("strided (%d cycles) not slower than coalesced (%d)", st, co)
	}
}

// TestPrivateFootprintAddressing: warps with private footprints touch
// disjoint lines (low hit rates across warps), unlike shared footprints.
func TestPrivateFootprintAddressing(t *testing.T) {
	run := func(shared bool) float64 {
		sm, runStats := testSM(t, nil)
		b := program.NewBuilder()
		b.Loop(64, func(lb *program.Builder) {
			lb.LDG(4, 1, isa.MemTrait{Pattern: isa.PatCoalesced, Footprint: 16 << 10, Shared: shared})
			lb.FMA(5, 4, 4, 5)
		})
		p := b.MustBuild()
		progs := make([]*program.Program, 8)
		for i := range progs {
			progs[i] = p
		}
		if err := sm.Allocate(specOf(progs, 16, 0)); err != nil {
			t.Fatal(err)
		}
		runToDrain(t, sm, 500000)
		_ = runStats
		l1 := sm.hier.L1(0)
		return l1.HitRate()
	}
	sharedRate := run(true)
	privateRate := run(false)
	if sharedRate <= privateRate {
		t.Errorf("shared footprint hit rate %.2f not above private %.2f", sharedRate, privateRate)
	}
}
