package smcore

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/snapshot"
	"repro/internal/stats"
)

func TestSMSnapshotCoverage(t *testing.T) {
	cases := []struct {
		typ      reflect.Type
		manifest map[string]string
	}{
		{reflect.TypeOf(SM{}), smManifest},
		{reflect.TypeOf(Warp{}), warpManifest},
		{reflect.TypeOf(block{}), blockManifest},
		{reflect.TypeOf(wbEvent{}), wbEventManifest},
		{reflect.TypeOf(SubCore{}), subCoreManifest},
		{reflect.TypeOf(execUnit{}), execUnitManifest},
		{reflect.TypeOf(LSU{}), lsuManifest},
		{reflect.TypeOf(lsuEntry{}), lsuEntryManifest},
	}
	for _, c := range cases {
		if err := snapshot.Coverage(c.typ, c.manifest); err != nil {
			t.Errorf("%s: %v", c.typ.Name(), err)
		}
	}
}

// memMixProg exercises every in-flight-writer source the audit models:
// global and shared loads (LSU + writeback heap), constant loads, FMA
// chains (collector units + queued writebacks), and a barrier.
func memMixProg(trips int) *program.Program {
	b := program.NewBuilder()
	b.Loop(int64(trips), func(lb *program.Builder) {
		lb.LDG(8, 1, isa.MemTrait{Pattern: isa.PatCoalesced, Footprint: 1 << 18, StrideBytes: 4})
		lb.FMA(4, 8, 2, 3)
		lb.LDS(9, 4, isa.MemTrait{Footprint: 1 << 12, StrideBytes: 4})
		lb.FMA(5, 9, 2, 3)
		lb.LDC(10)
		lb.IMAD(6, 10, 4, 5)
		lb.Bar()
	})
	return b.MustBuild()
}

// snapSMState frames the hierarchy and SM state together, as the gpu
// layer does, so the restored SM sees identical memory timing.
func snapSMState(t *testing.T, sm *SM, hier *mem.Hierarchy) []byte {
	t.Helper()
	e := snapshot.NewEncoder()
	hier.EncodeState(e)
	sm.EncodeState(e)
	var buf bytes.Buffer
	if err := e.Finish(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func restoreSMState(t *testing.T, sm *SM, hier *mem.Hierarchy, frame []byte, progFor ProgramResolver) error {
	t.Helper()
	d, err := snapshot.NewDecoder(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if err := hier.RestoreState(d); err != nil {
		return err
	}
	if err := sm.RestoreState(d, progFor); err != nil {
		return err
	}
	return d.Finish()
}

func smRoundTripAt(t *testing.T, mut func(*config.GPU), snapCycle int64) {
	t.Helper()
	cfg := config.VoltaV100()
	cfg.NumSMs = 1
	if mut != nil {
		mut(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	prog := memMixProg(6)
	progs := make([]*program.Program, 8)
	for i := range progs {
		progs[i] = prog
	}
	progFor := func(gid int64) (*program.Program, error) { return prog, nil }

	runA := stats.NewRun(1, cfg.SubCoresPerSM)
	hierA := mem.NewHierarchy(cfg)
	a := NewSM(0, &cfg, hierA, runA)
	if err := a.Allocate(specOf(progs, 16, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := a.Allocate(&BlockSpec{KernelBlockID: 1, Programs: progs[:4], RegsPerThread: 16, SharedMemBytes: 2048, FirstWarpGID: 8}); err != nil {
		t.Fatal(err)
	}

	for c := int64(0); c < snapCycle; c++ {
		a.Tick(c)
		if c%97 == 0 {
			if vs := a.Audit(); len(vs) != 0 {
				t.Fatalf("cycle %d: audit violations on a healthy SM: %v", c, vs)
			}
		}
	}
	if a.Drained() {
		t.Fatalf("SM drained before cycle %d; snapshot point is not mid-kernel", snapCycle)
	}
	frame := snapSMState(t, a, hierA)

	runB := stats.NewRun(1, cfg.SubCoresPerSM)
	hierB := mem.NewHierarchy(cfg)
	b := NewSM(0, &cfg, hierB, runB)
	if err := restoreSMState(t, b, hierB, frame, progFor); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if vs := b.Audit(); len(vs) != 0 {
		t.Fatalf("audit violations immediately after restore: %v", vs)
	}

	// The restored SM must continue bit-identically: the re-serialized
	// machine state must match at every probe point until drain.
	for c := snapCycle; c < snapCycle+6000; c++ {
		a.Tick(c)
		b.Tick(c)
		if c%251 == 0 || a.Drained() {
			fa := snapSMState(t, a, hierA)
			fb := snapSMState(t, b, hierB)
			if !bytes.Equal(fa, fb) {
				t.Fatalf("cycle %d: machine state diverged after restore", c)
			}
		}
		if a.Drained() != b.Drained() {
			t.Fatalf("cycle %d: drain status diverged", c)
		}
		if a.Drained() {
			return
		}
	}
	t.Fatal("SM did not drain; raise the cycle bound")
}

func TestSMRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*config.GPU)
	}{
		{"gto", nil},
		{"rba-stealing", func(c *config.GPU) {
			c.WarpScheduler = config.SchedRBA
			c.BankStealing = true
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, at := range []int64{3, 40, 230} {
				smRoundTripAt(t, tc.mut, at)
			}
		})
	}
}

func TestSMRestoreShapeMismatch(t *testing.T) {
	cfg := config.VoltaV100()
	cfg.NumSMs = 1
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	hierA := mem.NewHierarchy(cfg)
	a := NewSM(0, &cfg, hierA, stats.NewRun(1, cfg.SubCoresPerSM))
	frame := snapSMState(t, a, hierA)

	other := cfg
	other.MaxWarpsPerSM = 32
	if err := other.Validate(); err != nil {
		t.Fatal(err)
	}
	hierB := mem.NewHierarchy(other)
	b := NewSM(0, &other, hierB, stats.NewRun(1, other.SubCoresPerSM))
	err := restoreSMState(t, b, hierB, frame, func(int64) (*program.Program, error) {
		return fmaProg(1), nil
	})
	if err == nil {
		t.Fatal("restore into a 32-warp-slot SM from a 64-slot snapshot succeeded")
	}
}

func TestSMRestoreWorkloadMismatch(t *testing.T) {
	cfg := config.VoltaV100()
	cfg.NumSMs = 1
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	prog := memMixProg(6)
	progs := []*program.Program{prog, prog}
	hierA := mem.NewHierarchy(cfg)
	a := NewSM(0, &cfg, hierA, stats.NewRun(1, cfg.SubCoresPerSM))
	if err := a.Allocate(specOf(progs, 16, 0)); err != nil {
		t.Fatal(err)
	}
	for c := int64(0); c < 50; c++ {
		a.Tick(c)
	}
	frame := snapSMState(t, a, hierA)

	// Resuming against a different workload must fail loudly, not
	// silently misposition cursors.
	hierB := mem.NewHierarchy(cfg)
	b := NewSM(0, &cfg, hierB, stats.NewRun(1, cfg.SubCoresPerSM))
	err := restoreSMState(t, b, hierB, frame, func(int64) (*program.Program, error) {
		return fmaProg(2), nil
	})
	if err == nil {
		t.Fatal("restore against the wrong workload succeeded")
	}
}

func TestAuditCatchesSeededScoreboardCorruption(t *testing.T) {
	cfg := config.VoltaV100()
	cfg.NumSMs = 1
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	prog := memMixProg(50)
	hier := mem.NewHierarchy(cfg)
	sm := NewSM(0, &cfg, hier, stats.NewRun(1, cfg.SubCoresPerSM))
	if err := sm.Allocate(specOf([]*program.Program{prog, prog}, 16, 0)); err != nil {
		t.Fatal(err)
	}
	for c := int64(0); c < 100; c++ {
		sm.Tick(c)
	}
	if vs := sm.Audit(); len(vs) != 0 {
		t.Fatalf("healthy SM reported %v", vs)
	}
	if !sm.CorruptScoreboardForTest() {
		t.Fatal("no active warp to corrupt")
	}
	vs := sm.Audit()
	if len(vs) == 0 {
		t.Fatal("seeded scoreboard inconsistency not detected")
	}
	for _, v := range vs {
		if v.Rule != "scoreboard" {
			t.Fatalf("violation rule = %q, want scoreboard (%v)", v.Rule, v)
		}
	}
	if s := vs[0].String(); s == "" || s == vs[0].Detail {
		t.Fatalf("violation String() lost context: %q", s)
	}
	_ = fmt.Sprintf("%v", vs)
}
