package smcore

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/isa"
	"repro/internal/regfile"
)

// willWriteBack mirrors LSU.serve's writeback-scheduling decision: whether
// a queued memory instruction will eventually clear a scoreboard bit.
func willWriteBack(in *isa.Instr) bool {
	if !in.Dst.Valid() {
		return false
	}
	switch in.Op.SpaceOf() {
	case isa.SpaceGlobal:
		return in.Op != isa.OpSTG
	case isa.SpaceShared:
		return in.Op == isa.OpLDS
	case isa.SpaceConst:
		return true
	}
	return false
}

// sbMark sets the bit for register r in a reconstructed scoreboard image,
// applying the same ≥256 clamp as Warp.SBSet.
func sbMark(sb *[sbWords]uint64, r isa.Reg) {
	idx, bit := int(r)>>6, uint(r)&63
	if idx >= sbWords {
		idx, bit = sbWords-1, 63
	}
	sb[idx] |= 1 << bit
}

func popcount(sb *[sbWords]uint64) int {
	n := 0
	for _, w := range sb {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Audit re-derives the SM's conservation laws from first principles and
// reports every divergence from the live bookkeeping. It is read-only and
// safe to call between cycles (never mid-Tick). Rules emitted here:
//
//   - scoreboard: each warp's pending-register bitset must equal the union
//     of destinations held by in-flight writers (writeback heap, queued
//     collector writebacks, staged non-stolen collector units, LSU queue
//     entries that will schedule a writeback), and sbCount must equal the
//     bitset's popcount.
//   - lease: collector-unit reference counting (delegated per sub-core to
//     regfile.Collector.Audit), plus stolen-CU back-pointer consistency.
//   - occupancy: sub-core slot tables vs warp back-pointers and used
//     counts; SM-wide resident/live warp and block tallies.
//   - regbudget: per-sub-core free register bytes vs hosted warps' demand.
//   - shmem: SM shared-memory free space vs active blocks' reservations.
//   - lsu: queue bound and entry validity.
//   - residency: per-block warp lifecycle counts (exited, at-barrier).
func (sm *SM) Audit() []audit.Violation {
	var vs []audit.Violation
	where := fmt.Sprintf("sm%d", sm.id)

	// Reconstruct every warp's expected scoreboard from in-flight writers.
	// The scratch lives on the SM: the audit runs periodically from the
	// device heartbeat and must not allocate per sweep.
	if cap(sm.auditSB) < len(sm.warps) {
		sm.auditSB = make([][sbWords]uint64, len(sm.warps))
	}
	expected := sm.auditSB[:len(sm.warps)]
	for i := range expected {
		expected[i] = [sbWords]uint64{}
	}
	mark := func(warpIdx int32, r isa.Reg, src string) {
		if int(warpIdx) < 0 || int(warpIdx) >= len(sm.warps) {
			vs = append(vs, audit.Violationf("scoreboard", where,
				"%s references warp %d of %d", src, warpIdx, len(sm.warps)))
			return
		}
		sbMark(&expected[warpIdx], r)
	}
	for _, ev := range sm.wb {
		mark(ev.warpIdx, ev.reg, "writeback heap entry")
	}
	for i := range sm.lsu.queue {
		en := &sm.lsu.queue[i]
		if willWriteBack(&en.in) {
			mark(en.warpIdx, en.in.Dst, "LSU queue entry")
		}
	}
	for _, sc := range sm.subcores {
		sub := fmt.Sprintf("%s/sub%d", where, sc.id)
		vs = append(vs, sc.coll.Audit(sub)...)
		sc.coll.ForEachQueuedWrite(func(w regfile.WriteReq) {
			mark(w.WarpIdx, w.Reg, "queued collector writeback")
		})
		for i := 0; i < sc.coll.NumCUs(); i++ {
			u := sc.coll.CU(i)
			if !u.Valid {
				continue
			}
			// Stolen CUs pre-allocate before issue: no SBSet yet.
			if !u.Stolen && u.Instr.Dst.Valid() {
				mark(u.WarpIdx, u.Instr.Dst, "staged collector unit")
			}
			if u.Stolen {
				if int(u.WarpIdx) < 0 || int(u.WarpIdx) >= len(sm.warps) {
					vs = append(vs, audit.Violationf("lease", sub,
						"stolen cu%d references warp %d of %d", i, u.WarpIdx, len(sm.warps)))
				} else if int(sm.warps[u.WarpIdx].StolenCU) != i {
					vs = append(vs, audit.Violationf("lease", sub,
						"stolen cu%d held for warp %d, but that warp's StolenCU is %d",
						i, u.WarpIdx, sm.warps[u.WarpIdx].StolenCU))
				}
			}
		}
	}
	for i := range sm.warps {
		w := &sm.warps[i]
		if w.sb != expected[i] {
			vs = append(vs, audit.Violationf("scoreboard", where,
				"warp %d scoreboard %x, but in-flight writers imply %x", i, w.sb, expected[i]))
		}
		if got := popcount(&w.sb); got != int(w.sbCount) {
			vs = append(vs, audit.Violationf("scoreboard", where,
				"warp %d sbCount=%d, bitset holds %d", i, w.sbCount, got))
		}
	}

	// Residency and occupancy tallies.
	resident, live := 0, 0
	for i := range sm.warps {
		w := &sm.warps[i]
		if w.State == WarpEmpty {
			continue
		}
		resident++
		if w.State == WarpActive || w.State == WarpAtBarrier {
			live++
		}
		if int(w.BlockSlot) < 0 || int(w.BlockSlot) >= len(sm.blocks) || !sm.blocks[w.BlockSlot].active {
			vs = append(vs, audit.Violationf("residency", where,
				"warp %d references inactive block slot %d", i, w.BlockSlot))
		}
		sc := sm.subcores[w.SubCore]
		if int(w.SchedSlot) < 0 || int(w.SchedSlot) >= len(sc.slots) || sc.slots[w.SchedSlot] != int32(i) {
			vs = append(vs, audit.Violationf("occupancy", where,
				"warp %d claims sub%d slot %d, slot table disagrees", i, w.SubCore, w.SchedSlot))
		}
	}
	if resident != sm.residentWarps {
		vs = append(vs, audit.Violationf("occupancy", where,
			"residentWarps=%d, warp table holds %d", sm.residentWarps, resident))
	}
	if live != sm.liveWarps {
		vs = append(vs, audit.Violationf("occupancy", where,
			"liveWarps=%d, warp table holds %d", sm.liveWarps, live))
	}

	activeBlocks, shmemUsed := 0, 0
	for bi := range sm.blocks {
		b := &sm.blocks[bi]
		if !b.active {
			continue
		}
		activeBlocks++
		shmemUsed += b.sharedBytes
		if b.warpsTotal != len(b.warpIdxs) {
			vs = append(vs, audit.Violationf("residency", where,
				"block %d warpsTotal=%d but holds %d warp indices", bi, b.warpsTotal, len(b.warpIdxs)))
		}
		exited, atBarrier := 0, 0
		for _, wi := range b.warpIdxs {
			if int(wi) < 0 || int(wi) >= len(sm.warps) {
				vs = append(vs, audit.Violationf("residency", where,
					"block %d references warp %d of %d", bi, wi, len(sm.warps)))
				continue
			}
			switch sm.warps[wi].State {
			case WarpFinished:
				exited++
			case WarpAtBarrier:
				atBarrier++
			}
		}
		if exited != b.warpsExited {
			vs = append(vs, audit.Violationf("residency", where,
				"block %d warpsExited=%d, warp table holds %d", bi, b.warpsExited, exited))
		}
		if atBarrier != b.barrierWaiting {
			vs = append(vs, audit.Violationf("residency", where,
				"block %d barrierWaiting=%d, warp table holds %d", bi, b.barrierWaiting, atBarrier))
		}
	}
	if activeBlocks != sm.residentBlocks {
		vs = append(vs, audit.Violationf("occupancy", where,
			"residentBlocks=%d, block table holds %d", sm.residentBlocks, activeBlocks))
	}
	if want := sm.cfg.SharedMemKBPerSM*1024 - shmemUsed; want != sm.freeShmem {
		vs = append(vs, audit.Violationf("shmem", where,
			"freeShmem=%d, active blocks imply %d", sm.freeShmem, want))
	}

	// Per-sub-core occupancy and register-budget conservation.
	for _, sc := range sm.subcores {
		sub := fmt.Sprintf("%s/sub%d", where, sc.id)
		used, regUsed := 0, 0
		for slot, wi := range sc.slots {
			if wi < 0 {
				continue
			}
			used++
			if int(wi) >= len(sm.warps) || sm.warps[wi].State == WarpEmpty {
				vs = append(vs, audit.Violationf("occupancy", sub,
					"slot %d holds warp %d, which is empty or out of range", slot, wi))
				continue
			}
			w := &sm.warps[wi]
			if int(w.BlockSlot) >= 0 && int(w.BlockSlot) < len(sm.blocks) && sm.blocks[w.BlockSlot].active {
				regUsed += sc.regBytesPerWarp(sm.blocks[w.BlockSlot].regsPerThread)
			}
		}
		if used != sc.used {
			vs = append(vs, audit.Violationf("occupancy", sub,
				"used=%d, slot table holds %d", sc.used, used))
		}
		if want := sm.cfg.RegFileKBPerSubCore*1024 - regUsed; want != sc.freeRegBytes {
			vs = append(vs, audit.Violationf("regbudget", sub,
				"freeRegBytes=%d, hosted warps imply %d", sc.freeRegBytes, want))
		}
	}

	// LSU bounds.
	if len(sm.lsu.queue) > sm.lsu.capacity {
		vs = append(vs, audit.Violationf("lsu", where,
			"queue holds %d entries, capacity %d", len(sm.lsu.queue), sm.lsu.capacity))
	}
	for i := range sm.lsu.queue {
		en := &sm.lsu.queue[i]
		if int(en.warpIdx) < 0 || int(en.warpIdx) >= len(sm.warps) ||
			sm.warps[en.warpIdx].State == WarpEmpty {
			vs = append(vs, audit.Violationf("lsu", where,
				"queue entry %d references warp %d, which is empty or out of range", i, en.warpIdx))
		}
	}
	return vs
}

// CorruptLeaseForTest seeds a collector lease inconsistency in sub-core 0
// (see regfile.Collector.CorruptLeaseForTest). Never call outside tests.
func (sm *SM) CorruptLeaseForTest() {
	sm.subcores[0].coll.CorruptLeaseForTest()
}

// CorruptScoreboardForTest seeds a guaranteed-detectable scoreboard
// inconsistency — a pending bit with no in-flight writer — in the first
// active warp. Returns false when the SM has no active warp to corrupt.
// Never call outside tests.
func (sm *SM) CorruptScoreboardForTest() bool {
	for i := range sm.warps {
		w := &sm.warps[i]
		if w.State != WarpActive {
			continue
		}
		for r := isa.Reg(0); r < 256; r++ {
			if !w.SBPending(r) {
				w.SBSet(r)
				return true
			}
		}
	}
	return false
}
