package smcore

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/stats"
)

// FuzzCPIStack is the property test behind the top-down accounting
// contract (internal/stats/cpi.go): for arbitrary programs, block
// shapes, and both the GTO and RBA schedulers, every sub-core's
// attributed cycles sum bit-exactly to the ticks its issue stage ran —
// no cycle double-charged, none dropped.
func FuzzCPIStack(f *testing.F) {
	f.Add([]byte{4, 8, 1, 2, 3, 0, 1, 2}, uint8(4), uint8(16))
	f.Add([]byte{3, 5, 3, 7, 5, 9}, uint8(9), uint8(24))
	f.Add([]byte{9, 4, 4, 4, 2, 2, 1, 3, 0, 1}, uint8(12), uint8(32))
	f.Fuzz(func(t *testing.T, code []byte, warps, regs uint8) {
		nw := int(warps%16) + 1
		rpt := int(regs%48) + 8
		b := program.NewBuilder()
		emitted := 0
		for i := 0; i+1 < len(code) && emitted < 24; i += 2 {
			op := code[i] % 6
			r := isa.Reg(code[i+1]%16 + 4)
			switch op {
			case 0:
				b.FMA(r, 1, 2, r)
			case 1:
				b.IADD(r, 1, r)
			case 2:
				b.SFU(r, r)
			case 3:
				b.LDG(r, 1, isa.MemTrait{Pattern: isa.PatCoalesced, Footprint: 1 << 14, Shared: true})
			case 4:
				b.Tensor(r, 1, 2, r)
			case 5:
				b.Bar()
			}
			emitted++
		}
		if emitted == 0 {
			return
		}
		p := b.MustBuild()

		for _, sched := range []config.WarpSched{config.SchedGTO, config.SchedRBA} {
			cfg := config.VoltaV100()
			cfg.NumSMs = 1
			cfg.WarpScheduler = sched
			run := stats.NewRun(1, cfg.SubCoresPerSM)
			sm := NewSM(0, &cfg, mem.NewHierarchy(cfg), run)

			progs := make([]*program.Program, nw)
			for i := range progs {
				progs[i] = p
			}
			spec := &BlockSpec{Programs: progs, RegsPerThread: rpt}
			if !sm.CanAccept(spec) {
				return
			}
			if err := sm.Allocate(spec); err != nil {
				t.Fatalf("sched %v: Allocate: %v", sched, err)
			}
			var ticks int64
			for c := int64(0); ; c++ {
				sm.Tick(c)
				ticks++
				if sm.Drained() {
					break
				}
				if c > 500000 {
					t.Fatalf("sched %v: SM failed to drain", sched)
				}
			}
			for j := range run.SMs[0].SubCores {
				sc := &run.SMs[0].SubCores[j]
				st := sc.CPI()
				for comp, v := range st {
					if v < 0 {
						t.Fatalf("sched %v: sub-core %d: negative %s = %d",
							sched, j, stats.CPIComponent(comp), v)
					}
				}
				if st.Total() != ticks {
					t.Fatalf("sched %v: sub-core %d: CPI total %d != %d ticks (stack %v)",
						sched, j, st.Total(), ticks, st)
				}
			}
		}
	})
}
