// Package smcore models one streaming multiprocessor: its sub-cores (warp
// scheduler + operand collector + SIMD execution units each), the
// SM-shared load/store unit, thread-block-granularity resource
// allocation, and barriers. This is the structure whose partitioning the
// paper studies; every mechanism the paper identifies — static sub-core
// warp assignment, block-granularity deallocation, per-sub-core bank and
// collector-unit budgets — is modeled directly.
package smcore

import (
	"repro/internal/isa"
	"repro/internal/program"
)

// WarpState tracks a resident warp's lifecycle.
type WarpState uint8

const (
	// WarpEmpty marks an unoccupied warp slot.
	WarpEmpty WarpState = iota
	// WarpActive warps fetch and issue.
	WarpActive
	// WarpAtBarrier warps wait for the rest of their block.
	WarpAtBarrier
	// WarpFinished warps have issued EXIT but still hold their slot and
	// registers until the whole block completes — the static-assignment
	// pathology of Section III-B.
	WarpFinished
)

const sbWords = 4 // scoreboard bitset covers 256 architectural registers

// Warp is a resident warp's hardware state on an SM.
//
//snapshot:state
type Warp struct {
	// State is the lifecycle state.
	State WarpState
	// GID is the kernel-wide warp index (block * warpsPerBlock + lane),
	// used for address synthesis and reporting.
	GID int64
	// BlockSlot indexes the SM's resident-block table.
	BlockSlot int32
	// SubCore and SchedSlot locate the warp in its scheduler's PC table;
	// BankOff is the precomputed register-bank offset of the slot.
	SubCore   int8
	SchedSlot int16
	BankOff   int16
	// Age is the SM-wide allocation order; GTO/RBA tie-break on it.
	Age int64
	// Cursor walks the warp's program.
	Cursor program.Cursor
	// IBuf is the 2-entry instruction buffer; IBufN is its fill level.
	IBuf  [2]isa.Instr
	IBufN int8
	// sb is the pending-destination-register bitset (RAW/WAW scoreboard);
	// sbCount is the number of set registers.
	sb      [sbWords]uint64
	sbCount int16
	// StolenCU is the collector unit holding a bank-stealing
	// pre-allocation for this warp's IBuf[0], or -1.
	//simlint:allow nexteventguard -- set and cleared within issue/writeback activity, which the wb heap and CU state report
	StolenCU int8
	// MemCounter sequences this warp's memory accesses for address
	// synthesis.
	//simlint:allow nexteventguard -- moves only at issue and writeback completion, both events NextEvent reports
	MemCounter int64
	// rng is the warp-private xorshift state for PatRandom addresses.
	//simlint:allow nexteventguard -- RBA sampling stream draws only when the scheduler issues; quiescent spans draw nothing
	rng uint64
}

// SBSet reserves register r (at issue).
func (w *Warp) SBSet(r isa.Reg) {
	idx, bit := int(r)>>6, uint(r)&63
	if idx >= sbWords {
		idx, bit = sbWords-1, 63 // clamp: workloads stay under 256 regs
	}
	if w.sb[idx]&(1<<bit) == 0 {
		w.sb[idx] |= 1 << bit
		w.sbCount++
	}
}

// SBClear releases register r (at writeback).
func (w *Warp) SBClear(r isa.Reg) {
	idx, bit := int(r)>>6, uint(r)&63
	if idx >= sbWords {
		idx, bit = sbWords-1, 63
	}
	if w.sb[idx]&(1<<bit) != 0 {
		w.sb[idx] &^= 1 << bit
		w.sbCount--
	}
}

// SBPending reports whether register r has an outstanding write.
func (w *Warp) SBPending(r isa.Reg) bool {
	idx, bit := int(r)>>6, uint(r)&63
	if idx >= sbWords {
		idx, bit = sbWords-1, 63
	}
	return w.sb[idx]&(1<<bit) != 0
}

// SBEmpty reports whether no writes are outstanding.
func (w *Warp) SBEmpty() bool { return w.sbCount == 0 }

// Hazard reports whether instruction in has a RAW or WAW hazard against
// this warp's outstanding writes.
func (w *Warp) Hazard(in *isa.Instr) bool {
	if in.Dst.Valid() && w.SBPending(in.Dst) {
		return true
	}
	for _, s := range in.Srcs {
		if s.Valid() && w.SBPending(s) {
			return true
		}
	}
	return false
}

// NextRand steps the warp's xorshift64 PRNG.
func (w *Warp) NextRand() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// resetWarp prepares a slot for a new warp.
func resetWarp(w *Warp, gid int64, blockSlot int32, subCore int8, schedSlot int16, age int64, prog *program.Program) {
	*w = Warp{
		State:     WarpActive,
		GID:       gid,
		BlockSlot: blockSlot,
		SubCore:   subCore,
		SchedSlot: schedSlot,
		Age:       age,
		Cursor:    prog.Cursor(),
		StolenCU:  -1,
		rng:       uint64(gid)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03,
	}
}
