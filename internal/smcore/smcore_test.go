package smcore

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/stats"
)

func testSM(t *testing.T, mut func(*config.GPU)) (*SM, *stats.Run) {
	t.Helper()
	cfg := config.VoltaV100()
	cfg.NumSMs = 1
	if mut != nil {
		mut(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	run := stats.NewRun(1, cfg.SubCoresPerSM)
	hier := mem.NewHierarchy(cfg)
	return NewSM(0, &cfg, hier, run), run
}

func fmaProg(n int) *program.Program {
	b := program.NewBuilder()
	b.Loop(int64(n), func(lb *program.Builder) { lb.FMA(4, 1, 2, 3) })
	return b.MustBuild()
}

func specOf(progs []*program.Program, regs, shmem int) *BlockSpec {
	return &BlockSpec{Programs: progs, RegsPerThread: regs, SharedMemBytes: shmem}
}

func runToDrain(t *testing.T, sm *SM, maxCycles int64) int64 {
	t.Helper()
	for c := int64(0); c < maxCycles; c++ {
		sm.Tick(c)
		if sm.Drained() {
			return c
		}
	}
	t.Fatalf("SM did not drain within %d cycles", maxCycles)
	return 0
}

func TestScoreboardOps(t *testing.T) {
	var w Warp
	if !w.SBEmpty() {
		t.Fatal("fresh warp must have empty scoreboard")
	}
	w.SBSet(5)
	w.SBSet(5) // idempotent
	if w.sbCount != 1 {
		t.Errorf("sbCount = %d, want 1", w.sbCount)
	}
	if !w.SBPending(5) || w.SBPending(4) {
		t.Error("SBPending wrong")
	}
	in := isa.MakeFMA(9, 5, 1, 2) // reads R5
	if !w.Hazard(&in) {
		t.Error("RAW hazard missed")
	}
	waw := isa.MakeFMA(5, 1, 2, 3) // writes R5
	if !w.Hazard(&waw) {
		t.Error("WAW hazard missed")
	}
	ok := isa.MakeFMA(9, 1, 2, 3)
	if w.Hazard(&ok) {
		t.Error("false hazard")
	}
	w.SBClear(5)
	w.SBClear(5) // idempotent
	if !w.SBEmpty() {
		t.Error("scoreboard not empty after clear")
	}
	// Out-of-range registers clamp rather than corrupt memory.
	w.SBSet(isa.Reg(1000))
	if !w.SBPending(isa.Reg(1000)) {
		t.Error("clamped register lost")
	}
	w.SBClear(isa.Reg(1000))
}

func TestWarpRandDeterministic(t *testing.T) {
	var a, b Warp
	resetWarp(&a, 7, 0, 0, 0, 0, fmaProg(1))
	resetWarp(&b, 7, 0, 0, 0, 0, fmaProg(1))
	for i := 0; i < 10; i++ {
		if a.NextRand() != b.NextRand() {
			t.Fatal("same-GID warps must have identical random streams")
		}
	}
}

func TestAllocateDistributesRoundRobin(t *testing.T) {
	sm, _ := testSM(t, nil)
	progs := make([]*program.Program, 8)
	p := fmaProg(4)
	for i := range progs {
		progs[i] = p
	}
	if err := sm.Allocate(specOf(progs, 8, 0)); err != nil {
		t.Fatal(err)
	}
	// RR: warps 0..7 -> sub-cores 0,1,2,3,0,1,2,3.
	for i := 0; i < 8; i++ {
		if got := sm.warps[i].SubCore; got != int8(i%4) {
			t.Errorf("warp %d on sub-core %d, want %d", i, got, i%4)
		}
	}
	if sm.ResidentWarps() != 8 {
		t.Errorf("resident = %d, want 8", sm.ResidentWarps())
	}
}

func TestCanAcceptLimits(t *testing.T) {
	sm, _ := testSM(t, nil)
	p := fmaProg(1)
	mkProgs := func(n int) []*program.Program {
		out := make([]*program.Program, n)
		for i := range out {
			out[i] = p
		}
		return out
	}
	// Warp-slot limit: 64 max.
	if !sm.CanAccept(specOf(mkProgs(64), 8, 0)) {
		t.Error("64 warps should fit an empty SM")
	}
	if sm.CanAccept(specOf(mkProgs(65), 8, 0)) {
		t.Error("65 warps must not fit")
	}
	// Shared-memory limit.
	if sm.CanAccept(specOf(mkProgs(1), 8, 97*1024)) {
		t.Error("97KB scratchpad must not fit")
	}
	// Register limit: 64 regs/thread x 32 threads x 4B = 8KB/warp;
	// 4 sub-cores x 64KB = 256KB -> 32 warps max.
	if !sm.CanAccept(specOf(mkProgs(32), 64, 0)) {
		t.Error("32 fat warps should fit")
	}
	if sm.CanAccept(specOf(mkProgs(33), 64, 0)) {
		t.Error("33 fat warps must not fit")
	}
}

func TestRegisterCapacityLimitsPerSubCore(t *testing.T) {
	// 64 regs/thread: 8 warps per sub-core. Allocate 32 warps (full), all
	// must be placed without fallback under RR.
	sm, run := testSM(t, nil)
	p := fmaProg(2)
	progs := make([]*program.Program, 32)
	for i := range progs {
		progs[i] = p
	}
	if err := sm.Allocate(specOf(progs, 64, 0)); err != nil {
		t.Fatal(err)
	}
	if run.SMs[0].AssignFallbacks != 0 {
		t.Errorf("fallbacks = %d, want 0", run.SMs[0].AssignFallbacks)
	}
	for _, sc := range sm.subcores {
		if sc.used != 8 {
			t.Errorf("sub-core %d hosts %d warps, want 8", sc.id, sc.used)
		}
		if sc.freeRegBytes != 0 {
			t.Errorf("sub-core %d has %d free reg bytes, want 0", sc.id, sc.freeRegBytes)
		}
	}
}

func TestBlockRetireFreesResources(t *testing.T) {
	sm, run := testSM(t, nil)
	p := fmaProg(4)
	progs := []*program.Program{p, p, p, p}
	if err := sm.Allocate(specOf(progs, 16, 1024)); err != nil {
		t.Fatal(err)
	}
	runToDrain(t, sm, 10000)
	if sm.ResidentWarps() != 0 {
		t.Error("warps not freed at block retire")
	}
	if run.SMs[0].BlocksCompleted != 1 {
		t.Error("block not counted complete")
	}
	if sm.freeShmem != sm.cfg.SharedMemKBPerSM*1024 {
		t.Error("shared memory not restored")
	}
	for _, sc := range sm.subcores {
		if sc.used != 0 || sc.freeRegBytes != sc.cfg.RegFileKBPerSubCore*1024 {
			t.Error("sub-core resources not restored")
		}
	}
}

func TestFinishedWarpsHoldSlotsUntilBlockRetires(t *testing.T) {
	// One long warp and 7 trivially short warps on a 4-sub-core SM: the
	// short warps finish early but their slots stay occupied (the paper's
	// static-assignment pathology), observable via IdleAllFinished.
	sm, run := testSM(t, nil)
	long := fmaProg(512)
	short := fmaProg(1)
	progs := []*program.Program{long, short, short, short, short, short, short, short}
	if err := sm.Allocate(specOf(progs, 8, 0)); err != nil {
		t.Fatal(err)
	}
	sawFinishedHolding := false
	for c := int64(0); c < 100000; c++ {
		sm.Tick(c)
		if sm.Drained() {
			break
		}
		if sm.ResidentWarps() == 8 && sm.warps[1].State == WarpFinished {
			sawFinishedHolding = true
		}
	}
	if !sawFinishedHolding {
		t.Error("finished warps did not hold their slots while the block ran")
	}
	idle := int64(0)
	for i := range run.SMs[0].SubCores {
		idle += run.SMs[0].SubCores[i].IdleAllFinished
	}
	if idle == 0 {
		t.Error("no IdleAllFinished cycles recorded for stalled sub-cores")
	}
}

func TestBarrierReleasesOnlyWhenAllArrive(t *testing.T) {
	sm, _ := testSM(t, nil)
	// Two warps: both bar then one more FMA.
	b := program.NewBuilder()
	b.FMA(4, 1, 2, 3).Bar().FMA(5, 1, 2, 3)
	p := b.MustBuild()
	if err := sm.Allocate(specOf([]*program.Program{p, p}, 8, 0)); err != nil {
		t.Fatal(err)
	}
	runToDrain(t, sm, 10000)
}

func TestBarrierWithExitedWarps(t *testing.T) {
	// One warp exits immediately; the other hits a barrier. The barrier
	// must release without the exited warp.
	sm, _ := testSM(t, nil)
	exiter := program.NewBuilder().MustBuild() // bare EXIT
	barer := program.NewBuilder().Bar().MustBuild()
	if err := sm.Allocate(specOf([]*program.Program{barer, exiter}, 8, 0)); err != nil {
		t.Fatal(err)
	}
	runToDrain(t, sm, 10000)
}

func TestExitWaitsForOutstandingWrites(t *testing.T) {
	// A load followed by EXIT: the warp may not exit until the load's
	// writeback lands.
	sm, _ := testSM(t, nil)
	b := program.NewBuilder()
	b.LDG(4, 1, isa.MemTrait{Pattern: isa.PatCoalesced, Footprint: 1 << 16})
	p := b.MustBuild()
	if err := sm.Allocate(specOf([]*program.Program{p}, 8, 0)); err != nil {
		t.Fatal(err)
	}
	done := runToDrain(t, sm, 100000)
	// A cold global load takes hundreds of cycles; EXIT at ~5 would mean
	// it did not wait.
	if done < 50 {
		t.Errorf("warp exited at cycle %d, before its load returned", done)
	}
}

func TestLSUQueueBackpressure(t *testing.T) {
	// Tiny LSU queue: many concurrent loads must still all complete.
	sm, _ := testSM(t, func(g *config.GPU) { g.LSUQueue = 2 })
	b := program.NewBuilder()
	b.Loop(8, func(lb *program.Builder) {
		lb.LDG(4, 1, isa.MemTrait{Pattern: isa.PatCoalesced, Footprint: 1 << 16})
		lb.FMA(5, 4, 4, 4)
	})
	p := b.MustBuild()
	progs := make([]*program.Program, 16)
	for i := range progs {
		progs[i] = p
	}
	if err := sm.Allocate(specOf(progs, 16, 0)); err != nil {
		t.Fatal(err)
	}
	runToDrain(t, sm, 500000)
}

func TestSharedMemoryConflictDegrees(t *testing.T) {
	cases := []struct {
		name string
		t    isa.MemTrait
		want int
	}{
		{"coalesced", isa.MemTrait{Pattern: isa.PatCoalesced}, 1},
		{"broadcast", isa.MemTrait{Pattern: isa.PatBroadcast}, 1},
		{"stride2w", isa.MemTrait{Pattern: isa.PatStrided, StrideBytes: 8}, 2},
		{"stride32w", isa.MemTrait{Pattern: isa.PatStrided, StrideBytes: 128}, 32},
		{"stride-odd", isa.MemTrait{Pattern: isa.PatStrided, StrideBytes: 12}, 1},
		{"stride-over", isa.MemTrait{Pattern: isa.PatStrided, StrideBytes: 1 << 12}, 32},
		{"random", isa.MemTrait{Pattern: isa.PatRandom}, 2},
	}
	for _, c := range cases {
		if got := sharedConflictDegree(c.t, 32); got != c.want {
			t.Errorf("%s: degree = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestLDSConflictsSlowExecution(t *testing.T) {
	mk := func(stride uint32) *program.Program {
		b := program.NewBuilder()
		b.Loop(64, func(lb *program.Builder) {
			lb.LDS(4, 1, isa.MemTrait{Pattern: isa.PatStrided, StrideBytes: stride})
			lb.FMA(5, 4, 4, 5)
		})
		return b.MustBuild()
	}
	run := func(p *program.Program) int64 {
		sm, _ := testSM(t, nil)
		progs := make([]*program.Program, 8)
		for i := range progs {
			progs[i] = p
		}
		if err := sm.Allocate(specOf(progs, 16, 4096)); err != nil {
			t.Fatal(err)
		}
		return runToDrain(t, sm, 500000)
	}
	fast := run(mk(4))    // conflict-free
	slow := run(mk(1024)) // 32-way conflicts (stride 256 words, pow2)
	if slow <= fast {
		t.Errorf("32-way shared conflicts (%d cycles) not slower than conflict-free (%d)", slow, fast)
	}
}

func TestIssuedInstructionCounts(t *testing.T) {
	sm, run := testSM(t, nil)
	p := fmaProg(16) // 16 FMA + EXIT = 17
	if err := sm.Allocate(specOf([]*program.Program{p, p, p, p}, 8, 0)); err != nil {
		t.Fatal(err)
	}
	runToDrain(t, sm, 10000)
	var issued int64
	for i := range run.SMs[0].SubCores {
		issued += run.SMs[0].SubCores[i].Issued
	}
	if issued != 4*17 {
		t.Errorf("issued = %d, want %d", issued, 4*17)
	}
}

// Property: any mix of FMA/IADD/LDG programs drains, and issued counts
// exactly match program lengths.
func TestSMAlwaysDrainsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := seed
		next := func(n int64) int64 {
			r = r*6364136223846793005 + 1442695040888963407
			v := (r >> 33) % n
			if v < 0 {
				v = -v
			}
			return v
		}
		b := program.NewBuilder()
		ops := next(20) + 1
		for i := int64(0); i < ops; i++ {
			switch next(4) {
			case 0:
				b.FMA(isa.Reg(4+next(4)), 1, 2, 3)
			case 1:
				b.IADD(isa.Reg(8+next(4)), 1, 2)
			case 2:
				b.LDG(isa.Reg(12+next(4)), 1, isa.MemTrait{Pattern: isa.PatCoalesced, Footprint: 1 << 14})
			default:
				b.SFU(isa.Reg(16+next(4)), 1)
			}
		}
		p := b.MustBuild()
		cfg := config.VoltaV100()
		cfg.NumSMs = 1
		run := stats.NewRun(1, cfg.SubCoresPerSM)
		sm := NewSM(0, &cfg, mem.NewHierarchy(cfg), run)
		nw := int(next(12)) + 1
		progs := make([]*program.Program, nw)
		for i := range progs {
			progs[i] = p
		}
		if err := sm.Allocate(specOf(progs, 24, 0)); err != nil {
			return false
		}
		for c := int64(0); c < 200000; c++ {
			sm.Tick(c)
			if sm.Drained() {
				var issued int64
				for i := range run.SMs[0].SubCores {
					issued += run.SMs[0].SubCores[i].Issued
				}
				return issued == int64(nw)*p.Len()
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
