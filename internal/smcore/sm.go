package smcore

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/regfile"
	"repro/internal/stats"
	"repro/internal/trace"
)

// BlockSpec describes one thread block to place on an SM: one program per
// warp plus its resource demands. The gpu package builds these from
// workload kernels.
type BlockSpec struct {
	// KernelBlockID is the block's index within its kernel grid.
	KernelBlockID int
	// Programs holds one instruction stream per warp in the block.
	Programs []*program.Program
	// RegsPerThread is the compiler-assigned register footprint.
	RegsPerThread int
	// SharedMemBytes is the scratchpad reservation.
	SharedMemBytes int
	// FirstWarpGID is the kernel-wide warp index of warp 0 in this block.
	FirstWarpGID int64
}

// Warps returns the block's warp count.
func (b *BlockSpec) Warps() int { return len(b.Programs) }

// block is a resident thread block's bookkeeping on an SM.
//
//snapshot:state
type block struct {
	active        bool
	kernelBlockID int
	warpsTotal    int
	//simlint:allow nexteventguard -- advances only when a warp issues EXIT — impossible in a quiescent span
	warpsExited int
	//simlint:allow nexteventguard -- changes only on barrier arrival/release, both driven by warp issues
	barrierWaiting int
	warpIdxs       []int32
	regsPerThread  int
	sharedBytes    int
}

// subRoom is CanAccept's per-sub-core feasibility scratch (free warp
// slots and register bytes), kept on the SM so the per-cycle placement
// probe never allocates.
type subRoom struct{ slots, regs int }

// wbEvent is a scheduled register writeback (execution or load return).
//
//snapshot:state
type wbEvent struct {
	cycle   int64
	warpIdx int32
	reg     isa.Reg
	bank    int8
	subCore int8
}

// wbHeap is a min-heap of writeback events ordered by cycle. It is a
// typed binary heap rather than container/heap because push/pop run on
// the per-cycle path: container/heap's interface{} Push/Pop boxes every
// wbEvent (one allocation per scheduled writeback, flagged by
// simlint's hotpath analyzer).
type wbHeap []wbEvent

func (h *wbHeap) push(e wbEvent) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].cycle <= q[i].cycle {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
	*h = q
}

func (h *wbHeap) pop() wbEvent {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		small := i
		if l := 2*i + 1; l < n && q[l].cycle < q[small].cycle {
			small = l
		}
		if r := 2*i + 2; r < n && q[r].cycle < q[small].cycle {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	*h = q
	return top
}

// SM is one streaming multiprocessor: sub-cores, the shared LSU, resident
// warps/blocks, and the warp→sub-core assigner.
//
//snapshot:state
type SM struct {
	id    int
	cfg   *config.GPU
	warps []Warp
	//simlint:allow nexteventguard -- slot bookkeeping changes only at placement/retirement; retirement needs warp exits, placement is driven by the run loop itself
	blocks   []block
	subcores []*SubCore
	assigner core.Assigner
	lsu      *LSU
	//simlint:allow nexteventguard -- sub-component pointer; the hierarchy's own NextEvent is consulted by the device loop
	hier *mem.Hierarchy
	st   *stats.SM
	run  *stats.Run

	wb wbHeap
	//simlint:allow nexteventguard -- changes only at block placement/retirement (see blocks)
	freeShmem  int
	ageCounter int64
	// rooms is CanAccept's reusable feasibility scratch.
	rooms []subRoom
	// auditSB is Audit's reusable expected-scoreboard scratch: the
	// periodic invariant sweep (gpu heartbeat, every monitorPeriod
	// cycles) must not allocate per visit.
	auditSB [][sbWords]uint64
	// residentWarps counts occupied warp slots (all states).
	//simlint:allow nexteventguard -- occupancy tallies change only at placement/exit events, never across a quiescent span
	residentWarps int
	//simlint:allow nexteventguard -- occupancy tallies change only at placement/exit events (see residentWarps)
	residentBlocks int
	// liveWarps counts warps not yet exited; the SM is drained when 0 and
	// no writebacks or LSU entries are pending.
	//simlint:allow nexteventguard -- decrements only on warp exit, which requires an issue (see residentWarps)
	liveWarps int

	traceReads bool
	//simlint:allow nexteventguard -- read-trace bookkeeping; FastForward appends the exact zero deltas the skipped ticks would have
	lastRegRead int64

	// tr is the observability handle for this SM; nil when the SM is not
	// traced, which is the fast path every emission site branches on.
	//simlint:allow nexteventguard -- trace wiring: emission is output-only and idle cycles emit no events
	tr *trace.SMT
}

// NewSM builds SM id for a validated config, wiring it to the shared
// memory hierarchy and the run's stats.
func NewSM(id int, cfg *config.GPU, hier *mem.Hierarchy, run *stats.Run) *SM {
	sm := &SM{
		id:        id,
		cfg:       cfg,
		warps:     make([]Warp, cfg.MaxWarpsPerSM),
		blocks:    make([]block, cfg.MaxBlocksPerSM),
		hier:      hier,
		st:        &run.SMs[id],
		run:       run,
		assigner:  core.NewAssigner(cfg.SubCoreAssign, cfg.SubCoresPerSM, cfg.HashTableEntries, cfg.Seed, id),
		freeShmem: cfg.SharedMemKBPerSM * 1024,
	}
	sm.lsu = newLSU(sm, cfg.LSUQueue)
	for i := 0; i < cfg.SubCoresPerSM; i++ {
		sm.subcores = append(sm.subcores, newSubCore(i, cfg, sm, &run.SMs[id].SubCores[i]))
	}
	sm.rooms = make([]subRoom, len(sm.subcores))
	return sm
}

// TraceReads enables the per-cycle register-read trace (Fig. 14); only
// meaningful on SM 0 of a run.
func (sm *SM) TraceReads(on bool) { sm.traceReads = on }

// SetTracer attaches the observability layer: the SM keeps its emission
// handle (nil when this SM is not traced) and forwards it to the LSU and
// each sub-core's operand collector. Pass nil to detach.
func (sm *SM) SetTracer(t *trace.Tracer) {
	h := t.ForSM(sm.id) // nil-safe: nil tracer or untraced SM yields nil
	sm.tr = h
	sm.lsu.tr = h
	for _, sc := range sm.subcores {
		sc.tr = h
		sc.coll.SetTracer(h, int8(sc.id))
	}
}

// TraceCounters implements trace.CounterSource: a point-in-time snapshot
// of the SM's occupancy, queue depths and cumulative throughput counters
// for the sampled time-series.
func (sm *SM) TraceCounters(s *trace.CounterSample) {
	s.Occupancy = int32(sm.residentWarps)
	s.LSUQueue = int32(sm.lsu.pending())
	banks := sm.cfg.BanksPerSubCore
	for i, sc := range sm.subcores {
		s.IssuedBySub[i] = sc.st.Issued
		s.OccBySub[i] = int32(sc.used)
		s.RFReadsTotal += sc.st.RegReads
		for b := 0; b < banks; b++ {
			s.QLenByBank[i*banks+b] = int32(sc.coll.QueueLen(b))
		}
	}
}

// CanAccept reports whether the SM can place the whole block: a block
// slot, shared memory, and — because registers and warp slots are
// partitioned per sub-core — a feasible per-sub-core placement for every
// warp. A block can be refused even when the SM's *total* free register
// space would suffice: per-sub-core fragmentation from earlier blocks
// (e.g. a concurrent kernel with a different register footprint) strands
// capacity. This is the paper's fourth partitioning effect (Section I).
//
// CanAccept runs on the per-cycle path (the block scheduler probes every
// SM each cycle while blocks are pending), hence the reusable rooms
// scratch instead of a per-call allocation.
//
//simlint:hotpath
func (sm *SM) CanAccept(b *BlockSpec) bool {
	if sm.residentBlocks >= len(sm.blocks) {
		return false
	}
	if sm.residentWarps+b.Warps() > sm.cfg.MaxWarpsPerSM {
		return false
	}
	if b.SharedMemBytes > sm.freeShmem {
		return false
	}
	// First-fit feasibility over per-sub-core slots and register space.
	perWarp := b.RegsPerThread * sm.cfg.WarpSize * 4
	rooms := sm.rooms
	for i, sc := range sm.subcores {
		rooms[i] = subRoom{slots: len(sc.slots) - sc.used, regs: sc.freeRegBytes}
	}
	for w := 0; w < b.Warps(); w++ {
		placed := false
		for i := range rooms {
			if rooms[i].slots > 0 && rooms[i].regs >= perWarp {
				rooms[i].slots--
				rooms[i].regs -= perWarp
				placed = true
				break
			}
		}
		if !placed {
			return false
		}
	}
	return true
}

// Allocate places a block: each warp is pinned to the sub-core chosen by
// the assignment policy (falling back to the least-loaded sub-core with
// space when the designated one is full — counted, since the hash table
// in hardware is constructed so this cannot happen for balanced shapes).
// Call only after CanAccept. Runs once per placed block, not per cycle.
//
//simlint:cold
func (sm *SM) Allocate(b *BlockSpec) error {
	if !sm.CanAccept(b) {
		return fmt.Errorf("smcore: SM %d cannot accept block %d", sm.id, b.KernelBlockID)
	}
	blkSlot := -1
	for i := range sm.blocks {
		if !sm.blocks[i].active {
			blkSlot = i
			break
		}
	}
	blk := &sm.blocks[blkSlot]
	*blk = block{
		active:        true,
		kernelBlockID: b.KernelBlockID,
		warpsTotal:    b.Warps(),
		regsPerThread: b.RegsPerThread,
		sharedBytes:   b.SharedMemBytes,
	}
	sm.freeShmem -= b.SharedMemBytes
	for wi, prog := range b.Programs {
		scID := sm.assigner.Next()
		if !sm.subcores[scID].canHost(b.RegsPerThread) {
			// The designated sub-core is full (slots or registers); fall
			// back to the least-loaded sub-core with space. CanAccept
			// guaranteed a feasible placement exists.
			scID = sm.fallbackSubCore(b.RegsPerThread)
			sm.st.AssignFallbacks++
			if scID < 0 {
				panic("smcore: no sub-core can host a warp after CanAccept")
			}
		}
		warpIdx := sm.freeWarpSlot()
		sc := sm.subcores[scID]
		schedSlot := sc.host(int32(warpIdx), b.RegsPerThread)
		gid := b.FirstWarpGID + int64(wi)
		resetWarp(&sm.warps[warpIdx], gid, int32(blkSlot), int8(scID), schedSlot, sm.ageCounter, prog)
		sm.warps[warpIdx].BankOff = int16(regfile.SlotOffset(int(schedSlot), sm.cfg.BankSwizzle))
		sm.ageCounter++
		blk.warpIdxs = append(blk.warpIdxs, int32(warpIdx))
		sm.residentWarps++
		sm.liveWarps++
	}
	sm.residentBlocks++
	if sm.tr != nil {
		sm.tr.Emit(trace.KBlockPlace, -1, -1, int32(b.KernelBlockID), int32(b.Warps()))
	}
	return nil
}

func (sm *SM) freeWarpSlot() int {
	for i := range sm.warps {
		if sm.warps[i].State == WarpEmpty {
			return i
		}
	}
	panic("smcore: no free warp slot after CanAccept")
}

func (sm *SM) fallbackSubCore(regsPerThread int) int {
	best, bestLoad := -1, 1<<30
	for i, sc := range sm.subcores {
		if sc.canHost(regsPerThread) && sc.used < bestLoad {
			best, bestLoad = i, sc.used
		}
	}
	return best
}

// scheduleWriteback books a register write at the given cycle; the write
// then contends for its bank's port before clearing the scoreboard.
func (sm *SM) scheduleWriteback(cycle int64, warpIdx int32, reg isa.Reg, bank int8, subCore int) {
	sm.wb.push(wbEvent{cycle: cycle, warpIdx: warpIdx, reg: reg, bank: bank, subCore: int8(subCore)})
}

// warpExited handles an EXIT issue: the warp stops fetching but keeps its
// slot and registers until the whole block retires.
func (sm *SM) warpExited(w *Warp) {
	w.State = WarpFinished
	sm.liveWarps--
	blk := &sm.blocks[w.BlockSlot]
	blk.warpsExited++
	sm.checkBarrierRelease(blk)
	if blk.warpsExited == blk.warpsTotal {
		sm.retireBlock(blk)
	}
}

// warpAtBarrier handles a BAR issue.
func (sm *SM) warpAtBarrier(w *Warp) {
	w.State = WarpAtBarrier
	blk := &sm.blocks[w.BlockSlot]
	blk.barrierWaiting++
	sm.checkBarrierRelease(blk)
}

// checkBarrierRelease opens the barrier once every non-exited warp of the
// block has arrived (exited warps no longer participate).
func (sm *SM) checkBarrierRelease(blk *block) {
	alive := blk.warpsTotal - blk.warpsExited
	if blk.barrierWaiting == 0 || blk.barrierWaiting < alive {
		return
	}
	blk.barrierWaiting = 0
	for _, wi := range blk.warpIdxs {
		if sm.warps[wi].State == WarpAtBarrier {
			sm.warps[wi].State = WarpActive
		}
	}
}

// retireBlock frees every resource the block held — the all-at-once
// deallocation that makes sub-core imbalance expensive.
func (sm *SM) retireBlock(blk *block) {
	for _, wi := range blk.warpIdxs {
		w := &sm.warps[wi]
		sm.subcores[w.SubCore].release(w.SchedSlot, blk.regsPerThread)
		w.State = WarpEmpty
		sm.residentWarps--
	}
	sm.freeShmem += blk.sharedBytes
	blk.active = false
	sm.residentBlocks--
	sm.st.BlocksCompleted++
	if sm.tr != nil {
		sm.tr.Emit(trace.KBlockRetire, -1, -1, int32(blk.kernelBlockID), 0)
	}
}

// Tick advances the SM one cycle. Stages run back-to-front so results
// produced this cycle are visible no earlier than the next.
func (sm *SM) Tick(now int64) {
	// 1. Writeback events whose time has come enter the bank write ports.
	for len(sm.wb) > 0 && sm.wb[0].cycle <= now {
		e := sm.wb.pop()
		sm.subcores[e.subCore].coll.EnqueueWrite(regfile.WriteReq{WarpIdx: e.warpIdx, Reg: e.reg, Bank: e.bank})
		if sm.tr != nil {
			sm.tr.Emit(trace.KWriteback, e.subCore, e.warpIdx, int32(e.reg), int32(e.bank))
		}
	}
	// 2. The shared LSU admits memory instructions.
	sm.lsu.tick(now)
	// 3. Operand collection, dispatch, and write-port grants.
	for _, sc := range sm.subcores {
		sc.collectorTick(now)
	}
	// 4. Issue.
	for _, sc := range sm.subcores {
		sc.issueTick(now)
		if sm.cfg.BankStealing {
			sc.stealTick()
		}
	}
	// 5. Decode/fetch.
	for _, sc := range sm.subcores {
		sc.decodeTick()
	}
	// 6. Per-cycle register-read trace (Fig. 14).
	if sm.traceReads {
		var total int64
		for _, sc := range sm.subcores {
			total += sc.st.RegReads
		}
		delta := (total - sm.lastRegRead) * int64(sm.cfg.WarpSize)
		sm.lastRegRead = total
		if delta > 65535 {
			delta = 65535
		}
		sm.run.ReadsPerCycle = append(sm.run.ReadsPerCycle, uint16(delta))
	}
	// Account active cycles.
	if sm.residentWarps > 0 {
		for _, sc := range sm.subcores {
			sc.st.Cycles++
		}
	}
}

// NextEvent returns the earliest cycle at or after now at which ticking
// this SM could mutate state (beyond pure per-cycle stall accounting):
// now itself when any stage has work this cycle — an issuable or
// decodable warp, a collector with queued requests or a dispatchable
// unit, an LSU with an admissible entry — or the earliest time-gated
// event otherwise: the next writeback in the heap, or the LSU coalescer
// port freeing over a non-empty queue. mem.NeverCycle means the SM has
// no intrinsic future event (empty, or wedged until a barrier that will
// never release — the device deadline still bounds that).
//
// The contract (docs/ARCHITECTURE.md, "Performance"): if NextEvent(now)
// returns t > now, then Tick(c) for every c in [now, t) would change
// nothing except the stall/idle counters that FastForward replays in
// bulk. The run loop's fast-forward leans on this for byte-identical
// statistics; TestFastForwardDifferential enforces it end to end.
//
//simlint:hotpath
func (sm *SM) NextEvent(now int64) int64 {
	next := mem.NeverCycle
	if len(sm.wb) > 0 {
		if sm.wb[0].cycle <= now {
			return now
		}
		next = sm.wb[0].cycle // heap root is the earliest writeback
	}
	if sm.lsu.pending() > 0 {
		if sm.lsu.portFree <= now {
			return now
		}
		if sm.lsu.portFree < next {
			next = sm.lsu.portFree
		}
	}
	for _, sc := range sm.subcores {
		if !sc.quiescent(now) {
			return now
		}
	}
	return next
}

// FastForward bulk-charges n quiescent cycles starting at now: the
// exact counters n Ticks would have accumulated given NextEvent(now)
// reported no event before now+n. Stall attribution per sub-core
// replays issueTick's no-candidate decision; collector clocks and RBA
// queue-length rings advance bit-exactly; the per-cycle register-read
// trace (Fig. 14) appends its zero deltas. Emits one KFastForward event
// covering the span when the SM is traced.
func (sm *SM) FastForward(now, n int64) {
	for _, sc := range sm.subcores {
		sc.fastForward(now, n)
	}
	if sm.traceReads {
		for i := int64(0); i < n; i++ {
			// RegReads is static across a quiescent span, so every skipped
			// cycle's delta is zero.
			sm.run.ReadsPerCycle = append(sm.run.ReadsPerCycle, 0)
		}
	}
	if sm.residentWarps > 0 {
		for _, sc := range sm.subcores {
			sc.st.Cycles += n
		}
	}
	if sm.tr != nil {
		sm.tr.Emit(trace.KFastForward, -1, -1, int32(n), 0)
	}
}

// Drained reports whether the SM holds no work: no resident warps, no
// pending writebacks, no queued memory instructions, and empty collectors.
func (sm *SM) Drained() bool {
	if sm.residentWarps > 0 || len(sm.wb) > 0 || sm.lsu.pending() > 0 {
		return false
	}
	for _, sc := range sm.subcores {
		if !sc.coll.Drained() {
			return false
		}
	}
	return true
}

// ResidentWarps returns the number of occupied warp slots.
func (sm *SM) ResidentWarps() int { return sm.residentWarps }

// ResetForKernel clears scheduler history and the assigner between
// kernels of the same application (resources must already be drained).
func (sm *SM) ResetForKernel() {
	sm.assigner.Reset()
	for _, sc := range sm.subcores {
		sc.reset()
	}
}
