package smcore

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/stats"
)

// FuzzSMExecution decodes arbitrary bytes into a program + block shape
// and asserts the SM's global invariants: it always drains, issues
// exactly the dynamic instruction count, and restores every resource.
func FuzzSMExecution(f *testing.F) {
	f.Add([]byte{4, 8, 1, 2, 3, 0, 1, 2}, uint8(4), uint8(16))
	f.Add([]byte{2, 0, 0}, uint8(1), uint8(8))
	f.Add([]byte{9, 4, 4, 4, 2, 2, 1, 3, 0, 1}, uint8(12), uint8(32))
	f.Fuzz(func(t *testing.T, code []byte, warps, regs uint8) {
		nw := int(warps%16) + 1
		rpt := int(regs%48) + 8
		b := program.NewBuilder()
		emitted := 0
		for i := 0; i+1 < len(code) && emitted < 24; i += 2 {
			op := code[i] % 6
			r := isa.Reg(code[i+1]%16 + 4)
			switch op {
			case 0:
				b.FMA(r, 1, 2, r)
			case 1:
				b.IADD(r, 1, r)
			case 2:
				b.SFU(r, r)
			case 3:
				b.LDG(r, 1, isa.MemTrait{Pattern: isa.PatCoalesced, Footprint: 1 << 14, Shared: true})
			case 4:
				b.Tensor(r, 1, 2, r)
			case 5:
				b.Bar()
			}
			emitted++
		}
		if emitted == 0 {
			return
		}
		p := b.MustBuild()

		cfg := config.VoltaV100()
		cfg.NumSMs = 1
		run := stats.NewRun(1, cfg.SubCoresPerSM)
		sm := NewSM(0, &cfg, mem.NewHierarchy(cfg), run)

		progs := make([]*program.Program, nw)
		for i := range progs {
			progs[i] = p
		}
		spec := &BlockSpec{Programs: progs, RegsPerThread: rpt}
		if !sm.CanAccept(spec) {
			return // infeasible shapes are allowed to be refused
		}
		if err := sm.Allocate(spec); err != nil {
			t.Fatalf("CanAccept/Allocate disagree: %v", err)
		}
		for c := int64(0); ; c++ {
			sm.Tick(c)
			if sm.Drained() {
				break
			}
			if c > 500000 {
				t.Fatalf("SM failed to drain: %d warps, %d regs, prog len %d", nw, rpt, p.Len())
			}
		}
		var issued int64
		for i := range run.SMs[0].SubCores {
			issued += run.SMs[0].SubCores[i].Issued
		}
		if issued != int64(nw)*p.Len() {
			t.Fatalf("issued %d, want %d", issued, int64(nw)*p.Len())
		}
		if sm.ResidentWarps() != 0 {
			t.Fatal("warps leaked")
		}
		for _, sc := range sm.subcores {
			if sc.used != 0 || sc.freeRegBytes != cfg.RegFileKBPerSubCore*1024 {
				t.Fatal("sub-core resources leaked")
			}
		}
	})
}
