package smcore

import (
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/regfile"
	"repro/internal/stats"
	"repro/internal/trace"
)

// execUnit models the SIMD pipelines of one class within a sub-core. A
// Volta sub-core has one 16-lane FP32 pipe; the hypothetical
// fully-connected SM pools four of them, so lane budgets above the native
// pipe width become additional dispatch ports rather than one wider pipe.
//
//snapshot:state
type execUnit struct {
	ii int64
	//simlint:allow nexteventguard -- port busy-times advance only at issue; any issuable candidate makes quiescent() return false
	ports []int64 // per-pipe next-free cycle
}

func newExecUnit(lanes, pipeWidth int) execUnit {
	if pipeWidth < 1 {
		pipeWidth = 1
	}
	n := lanes / pipeWidth
	if n < 1 {
		n = 1
	}
	w := pipeWidth
	if lanes < pipeWidth {
		w = lanes
	}
	return execUnit{
		ii:    int64(isa.InitiationInterval(w)),
		ports: make([]int64, n),
	}
}

func (e *execUnit) ready(now int64) bool {
	for _, p := range e.ports {
		if p <= now {
			return true
		}
	}
	return false
}

func (e *execUnit) accept(now int64) {
	for i, p := range e.ports {
		if p <= now {
			e.ports[i] = now + e.ii
			return
		}
	}
	panic("smcore: accept on busy execution unit")
}

// SubCore is one partition of an SM: a warp scheduler (or several, for the
// fully-connected model), a slice of the register file with its operand
// collector, and private execution units.
//
//snapshot:state
type SubCore struct {
	id    int
	cfg   *config.GPU
	sm    *SM
	slots []int32 // warp indices into sm.warps; -1 = empty
	//simlint:allow nexteventguard -- slot occupancy changes only at host/release (block lifecycle), never across a quiescent span
	used int

	sched core.WarpScheduler
	coll  *regfile.Collector
	//simlint:allow nexteventguard -- execution units mutate only at issue (see execUnit.ports)
	eu [isa.NumClasses]execUnit

	// freeRegBytes tracks unallocated register-file capacity.
	//simlint:allow nexteventguard -- register budget changes only at host/release (block lifecycle)
	freeRegBytes int

	st *stats.SubCore

	// tr is the SM's observability handle (nil = not traced, fast path).
	//simlint:allow nexteventguard -- trace wiring: emission is output-only and idle cycles emit no events
	tr *trace.SMT

	// scratch buffers reused across cycles.
	//simlint:allow nexteventguard -- per-Tick scratch rebuilt each issue tick; carries no cross-cycle state
	cands []core.Candidate
	//simlint:allow nexteventguard -- per-Tick scratch rebuilt each issue tick; carries no cross-cycle state
	qlenBuf []int

	// dispatchFn is the operand-collector dispatch callback, built once
	// at construction: allocating a fresh closure in collectorTick would
	// cost one heap allocation per sub-core per cycle (simlint hotpath).
	// dispNow/dispPorts carry the per-cycle arguments it closes over.
	dispatchFn func(*regfile.CollectorUnit) bool
	//simlint:allow nexteventguard -- per-Tick dispatch argument rewritten before every use; carries no cross-cycle state
	dispNow int64
	//simlint:allow nexteventguard -- per-Tick dispatch argument rewritten before every use; carries no cross-cycle state
	dispPorts int
}

func newSubCore(id int, cfg *config.GPU, sm *SM, st *stats.SubCore) *SubCore {
	sc := &SubCore{
		id:           id,
		cfg:          cfg,
		sm:           sm,
		slots:        make([]int32, cfg.WarpsPerSubCore()),
		sched:        core.NewWarpScheduler(cfg.WarpScheduler),
		coll:         regfile.NewCollector(cfg.CollectorUnitsPerSubCore, cfg.BanksPerSubCore, maxScoreDelay(cfg), st),
		freeRegBytes: cfg.RegFileKBPerSubCore * 1024,
		st:           st,
	}
	for i := range sc.slots {
		sc.slots[i] = -1
	}
	// Native pipe widths are Volta's: 16-lane FP32/INT pipes, 4-lane SFU.
	// Wider lane budgets (the fully-connected SM) become more pipes.
	sc.eu[isa.ClassFP32] = newExecUnit(cfg.FP32LanesPerSubCore, 16)
	sc.eu[isa.ClassINT] = newExecUnit(cfg.IntLanesPerSubCore, 16)
	sc.eu[isa.ClassSFU] = newExecUnit(cfg.SFULanesPerSubCore, 4)
	tensors := cfg.TensorPerSubCore
	if tensors < 1 {
		tensors = 1
	}
	sc.eu[isa.ClassTensor] = execUnit{ii: 4, ports: make([]int64, tensors)}
	// The MEM "unit" is an issue port into the SM-shared LSU; its real
	// acceptance check is the LSU queue's, applied at dispatch.
	sc.eu[isa.ClassMEM] = execUnit{ii: 1, ports: make([]int64, 1)}
	sc.dispatchFn = func(cu *regfile.CollectorUnit) bool {
		if sc.dispPorts <= 0 {
			return false
		}
		if cu.Stolen {
			return false // pre-read operands wait for formal issue
		}
		if !sc.dispatch(cu, sc.dispNow) {
			return false
		}
		sc.dispPorts--
		return true
	}
	return sc
}

func maxScoreDelay(cfg *config.GPU) int {
	if cfg.RBAScoreLatency > 0 {
		return cfg.RBAScoreLatency
	}
	return 1
}

// regBytesPerWarp returns the register-file bytes a warp of the given
// per-thread register count occupies.
func (sc *SubCore) regBytesPerWarp(regsPerThread int) int {
	return regsPerThread * sc.cfg.WarpSize * 4
}

// canHost reports whether the sub-core has a free slot and register space
// for one more warp.
func (sc *SubCore) canHost(regsPerThread int) bool {
	return sc.used < len(sc.slots) && sc.freeRegBytes >= sc.regBytesPerWarp(regsPerThread)
}

// host places warp index w into a free slot and reserves registers,
// returning the scheduler slot.
func (sc *SubCore) host(w int32, regsPerThread int) int16 {
	for i := range sc.slots {
		if sc.slots[i] == -1 {
			sc.slots[i] = w
			sc.used++
			sc.freeRegBytes -= sc.regBytesPerWarp(regsPerThread)
			return int16(i)
		}
	}
	panic("smcore: host called with no free slot")
}

// release frees a warp's slot and registers (block completion).
func (sc *SubCore) release(slot int16, regsPerThread int) {
	if sc.slots[slot] == -1 {
		panic("smcore: releasing an empty slot")
	}
	sc.slots[slot] = -1
	sc.used--
	sc.freeRegBytes += sc.regBytesPerWarp(regsPerThread)
}

// bankOf maps one register of a warp.
func (sc *SubCore) bankOf(w *Warp, r isa.Reg) int {
	return regfile.BankWithOffset(int(w.BankOff), r, sc.cfg.BanksPerSubCore)
}

// collectorTick advances the operand collector: bank grants, writeback
// grants (which clear scoreboards), and dispatch of ready collector units
// into execution units or the LSU, bounded by the sub-core's dispatch
// ports per cycle.
func (sc *SubCore) collectorTick(now int64) {
	sc.dispNow = now
	sc.dispPorts = sc.cfg.DispatchPortsPerSubCore
	sc.coll.Tick(sc.dispatchFn)
	for _, wr := range sc.coll.GrantedWrites() {
		w := &sc.sm.warps[wr.WarpIdx]
		w.SBClear(wr.Reg)
	}
}

// dispatch sends a collected instruction to its execution unit. Memory
// instructions enter the SM-shared LSU queue instead.
func (sc *SubCore) dispatch(cu *regfile.CollectorUnit, now int64) bool {
	in := &cu.Instr
	class := in.Op.UnitOf()
	if class == isa.ClassMEM {
		if !sc.sm.lsu.enqueue(cu.WarpIdx, sc.id, *in) {
			return false
		}
		if sc.tr != nil {
			sc.tr.Emit(trace.KDispatch, int8(sc.id), cu.WarpIdx, int32(in.Op), 0)
		}
		return true
	}
	u := &sc.eu[class]
	if !u.ready(now) {
		return false
	}
	u.accept(now)
	if in.Dst.Valid() {
		w := &sc.sm.warps[cu.WarpIdx]
		sc.sm.scheduleWriteback(now+int64(in.Op.Latency()), cu.WarpIdx, in.Dst, int8(sc.bankOf(w, in.Dst)), sc.id)
	}
	if sc.tr != nil {
		sc.tr.Emit(trace.KDispatch, int8(sc.id), cu.WarpIdx, int32(in.Op), 0)
	}
	return true
}

// issueCandidates fills sc.cands with ready warps and returns stall
// bookkeeping for the cycle: howmany warps were resident, blocked at
// barriers, hazard-blocked, or finished.
type issueCensus struct {
	resident  int
	active    int
	atBarrier int
	finished  int
	hazard    int
	starved   int // active but instruction buffer empty
}

//simlint:hotpath
func (sc *SubCore) buildCandidates(now int64) issueCensus {
	sc.cands = sc.cands[:0]
	var cen issueCensus
	banks := sc.cfg.BanksPerSubCore
	rba := sc.cfg.WarpScheduler == config.SchedRBA
	if rba {
		// Snapshot the arbiter queue lengths once per cycle (the RBA
		// score tap, optionally through the delay line).
		if cap(sc.qlenBuf) < banks {
			sc.qlenBuf = make([]int, banks) //simlint:allow hotpath -- grow-once scratch buffer; amortized to zero per cycle
		}
		sc.qlenBuf = sc.qlenBuf[:banks]
		delay := sc.cfg.RBAScoreLatency
		for b := 0; b < banks; b++ {
			sc.qlenBuf[b] = sc.coll.DelayedQueueLen(b, delay)
		}
	}
	for _, wi := range sc.slots {
		if wi < 0 {
			continue
		}
		cen.resident++
		w := &sc.sm.warps[wi]
		switch w.State {
		case WarpAtBarrier:
			cen.atBarrier++
			continue
		case WarpFinished:
			cen.finished++
			continue
		}
		cen.active++
		if w.IBufN == 0 {
			cen.starved++
			continue
		}
		in := &w.IBuf[0]
		if w.Hazard(in) {
			cen.hazard++
			continue
		}
		// EXIT and BAR drain outstanding writes first.
		if (in.Op.IsExit() || in.Op.IsBarrier()) && !w.SBEmpty() {
			cen.hazard++
			continue
		}
		c := core.Candidate{Slot: int(w.SchedSlot), Age: w.Age}
		if rba {
			// Sum the (possibly delayed) queue lengths of each source
			// operand's bank from the per-cycle snapshot.
			score := 0
			off := int(w.BankOff)
			for _, src := range in.Srcs {
				if !src.Valid() {
					continue
				}
				score += sc.qlenBuf[regfile.BankWithOffset(off, src, banks)]
			}
			if score > core.MaxScore {
				score = core.MaxScore
			}
			c.Score = score
		}
		sc.cands = append(sc.cands, c)
	}
	return cen
}

// warpAtSchedSlot resolves a scheduler slot back to the warp.
func (sc *SubCore) warpAtSchedSlot(slot int) *Warp {
	wi := sc.slots[slot]
	if wi < 0 {
		panic("smcore: candidate for empty slot")
	}
	return &sc.sm.warps[wi]
}

// issueTick runs the scheduler(s): up to SchedulersPerSubCore instructions
// issue per cycle, each from a distinct warp, falling through to
// lower-priority candidates when the top choice cannot issue (no free
// collector unit, blocked pipe).
func (sc *SubCore) issueTick(now int64) {
	cen := sc.buildCandidates(now)
	issued := 0
	blockedCU := false
	blockedEU := false
	blockedMem := false
	for port := 0; port < sc.cfg.SchedulersPerSubCore; port++ {
		for len(sc.cands) > 0 {
			pick := sc.sched.Pick(sc.cands)
			if pick < 0 {
				break
			}
			cand := sc.cands[pick]
			// Remove the candidate (issue or skip, it is spent this cycle).
			sc.cands[pick] = sc.cands[len(sc.cands)-1]
			sc.cands = sc.cands[:len(sc.cands)-1]
			w := sc.warpAtSchedSlot(cand.Slot)
			// Captured before tryIssue: an EXIT can retire the block and
			// clear the slot before the event is emitted.
			wIdx, op := sc.slots[cand.Slot], w.IBuf[0].Op
			ok, cu, euBusy, memBusy := sc.tryIssue(w, now)
			if ok {
				sc.sched.NotifyIssued(cand.Slot)
				sc.st.Issued++
				sc.sm.run.Instructions++
				issued++
				if sc.tr != nil {
					sc.tr.Emit(trace.KIssue, int8(sc.id), wIdx, int32(op), int32(cand.Slot))
				}
				break
			}
			blockedCU = blockedCU || cu
			blockedEU = blockedEU || euBusy
			blockedMem = blockedMem || memBusy
		}
	}
	if issued > 0 {
		sc.st.IssueCycles++
		return
	}
	// Attribute the stall (Fig. 1's effect decomposition). Exactly one
	// StallCycles bucket is charged per non-issue cycle — with the
	// refined sub-counters below, this is what makes the CPI stack
	// (stats.SubCore.CPI) sum bit-exactly to total cycles.
	var reason stats.StallReason
	switch {
	case blockedCU:
		reason = stats.StallNoCU
		// Split CU exhaustion by its upstream cause: backlogged bank
		// queues mean the CUs are hostage to bank conflicts; a collected
		// memory instruction stuck in a CU means LSU backpressure; quiet
		// banks and no stuck memory op is plain structural shortage.
		switch {
		case sc.coll.Backlogged():
			sc.st.ConflictNoCU++
		case sc.coll.BlockedOnMem():
			sc.st.MemNoCU++
		}
	case blockedEU || blockedMem:
		reason = stats.StallEUBusy
		if blockedMem {
			sc.st.MemEUBusy++
		}
	case cen.hazard > 0:
		reason = stats.StallScoreboard
	case cen.atBarrier > 0 && cen.active == 0:
		reason = stats.StallBarrier
	default:
		reason = stats.StallNoWarp
		if sc.sm.residentWarps == 0 {
			sc.st.SMIdleCycles++
		}
		if cen.resident > 0 && cen.finished == cen.resident {
			sc.st.IdleAllFinished++
		}
	}
	sc.st.StallCycles[reason]++
	if sc.tr != nil {
		sc.tr.Emit(trace.KStall, int8(sc.id), -1, int32(reason), 0)
	}
}

// quiescent reports whether ticking this sub-core at now would mutate
// nothing except stall accounting. It mirrors the candidate filter of
// buildCandidates plus the decode refill condition: a sub-core is
// quiescent when its collector has no event (no queued reads/writes, no
// dispatchable unit) and no active warp could decode or issue. With no
// candidates the scheduler's Pick is never consulted, so scheduler
// state is untouched too — the property that makes skipped cycles
// byte-identical for GTO, LRR, and RBA alike.
//
//simlint:hotpath
func (sc *SubCore) quiescent(now int64) bool {
	if sc.coll.NextEvent(now) <= now {
		return false
	}
	for _, wi := range sc.slots {
		if wi < 0 {
			continue
		}
		w := &sc.sm.warps[wi]
		if w.State != WarpActive {
			continue // barrier/finished warps act only via other warps' issues
		}
		if w.IBufN < 2 && !w.Cursor.Done() {
			return false // decodeTick would refill the buffer
		}
		if w.IBufN == 0 {
			continue // cursor done, buffer drained: nothing left to do
		}
		in := &w.IBuf[0]
		if w.Hazard(in) {
			continue // cleared by a writeback, tracked in the wb heap
		}
		if (in.Op.IsExit() || in.Op.IsBarrier()) && !w.SBEmpty() {
			continue // drains via outstanding writebacks
		}
		return false // an issuable candidate: the scheduler would act
	}
	return true
}

// fastForward replays what n quiescent issueTicks would have charged:
// the no-candidate branch of the stall-attribution switch, n times, plus
// the collector's clock and queue-length ring. The census is recomputed
// through buildCandidates so the attribution logic cannot drift from the
// ticked path; finding an issuable candidate here means the caller's
// NextEvent contract was violated, which is a simulator bug worth dying
// loudly for (the differential test would otherwise just report drift).
func (sc *SubCore) fastForward(now, n int64) {
	cen := sc.buildCandidates(now)
	if len(sc.cands) > 0 {
		panic("smcore: fast-forward over a sub-core with issuable candidates")
	}
	var reason stats.StallReason
	switch {
	case cen.hazard > 0:
		reason = stats.StallScoreboard
	case cen.atBarrier > 0 && cen.active == 0:
		reason = stats.StallBarrier
	default:
		reason = stats.StallNoWarp
		if sc.sm.residentWarps == 0 {
			sc.st.SMIdleCycles += n
		}
		if cen.resident > 0 && cen.finished == cen.resident {
			sc.st.IdleAllFinished += n
		}
	}
	sc.st.StallCycles[reason] += n
	sc.coll.FastForward(n)
}

// tryIssue attempts to issue warp w's IBuf[0]. Returns ok, plus which
// resource blocked the failure: a missing collector unit, a busy
// compute execution port, or a full LSU queue (the memory path — kept
// distinct so the CPI stack can attribute the cycle to memory).
func (sc *SubCore) tryIssue(w *Warp, now int64) (ok, noCU, euBusy, memBusy bool) {
	in := w.IBuf[0]
	switch {
	case in.Op.IsExit():
		sc.consume(w)
		sc.sm.warpExited(w)
		return true, false, false, false
	case in.Op.IsBarrier():
		sc.consume(w)
		sc.sm.warpAtBarrier(w)
		return true, false, false, false
	case in.Op == isa.OpNOP:
		sc.consume(w)
		return true, false, false, false
	}
	if !in.HasSrc() {
		// Zero-source, register-writing instructions (LDC) bypass the
		// operand collector and dispatch directly.
		return sc.issueDirect(w, &in, now)
	}
	// A bank-stealing pre-allocation for this very instruction converts
	// to a normal issue: operands are already (being) read.
	if w.StolenCU >= 0 {
		cu := sc.coll.CU(int(w.StolenCU))
		cu.Stolen = false
		w.StolenCU = -1
		if in.Dst.Valid() {
			w.SBSet(in.Dst)
		}
		sc.consume(w)
		return true, false, false, false
	}
	cuIdx := sc.coll.FreeCU()
	if cuIdx < 0 {
		return false, true, false, false
	}
	sc.coll.Allocate(cuIdx, sc.slotIndex(w), int32(w.SchedSlot), in, int(w.BankOff), false)
	if in.Dst.Valid() {
		w.SBSet(in.Dst)
	}
	sc.consume(w)
	return true, false, false, false
}

// issueDirect handles zero-source ops that still execute (LDC and
// degenerate ALU ops): they skip the collector but need their unit.
func (sc *SubCore) issueDirect(w *Warp, in *isa.Instr, now int64) (ok, noCU, euBusy, memBusy bool) {
	class := in.Op.UnitOf()
	if class == isa.ClassMEM {
		if !sc.sm.lsu.enqueue(sc.slotIndex(w), sc.id, *in) {
			return false, false, false, true
		}
	} else if class != isa.ClassNone {
		u := &sc.eu[class]
		if !u.ready(now) {
			return false, false, true, false
		}
		u.accept(now)
		if in.Dst.Valid() {
			sc.sm.scheduleWriteback(now+int64(in.Op.Latency()), sc.slotIndex(w), in.Dst, int8(sc.bankOf(w, in.Dst)), sc.id)
		}
	}
	if in.Dst.Valid() {
		w.SBSet(in.Dst)
	}
	sc.consume(w)
	return true, false, false, false
}

// slotIndex returns the warp's index in the SM warp table.
func (sc *SubCore) slotIndex(w *Warp) int32 { return sc.slots[w.SchedSlot] }

// consume pops IBuf[0].
func (sc *SubCore) consume(w *Warp) {
	w.IBuf[0] = w.IBuf[1]
	w.IBufN--
}

// stealTick pre-allocates a free collector unit with the
// highest-priority remaining candidate whose instruction reads registers,
// so its operands are fetched using otherwise-idle bank cycles —
// register bank stealing [36]. Runs after issueTick; sc.cands holds the
// candidates not issued this cycle.
func (sc *SubCore) stealTick() {
	cuIdx := sc.coll.FreeCU()
	if cuIdx < 0 {
		return
	}
	for _, cand := range sc.cands {
		w := sc.warpAtSchedSlot(cand.Slot)
		if w.StolenCU >= 0 || w.IBufN == 0 {
			continue
		}
		in := w.IBuf[0]
		if !in.HasSrc() || in.Op.IsExit() || in.Op.IsBarrier() {
			continue
		}
		sc.coll.Allocate(cuIdx, sc.slotIndex(w), int32(w.SchedSlot), in, int(w.BankOff), true)
		w.StolenCU = int8(cuIdx)
		return
	}
}

// decodeTick refills instruction buffers (ideal front-end: the paper's
// effects are entirely in the issue/operand/execute back-end).
func (sc *SubCore) decodeTick() {
	for _, wi := range sc.slots {
		if wi < 0 {
			continue
		}
		w := &sc.sm.warps[wi]
		if w.State != WarpActive {
			continue
		}
		for w.IBufN < 2 && !w.Cursor.Done() {
			in, _ := w.Cursor.Next()
			w.IBuf[w.IBufN] = in
			w.IBufN++
		}
	}
}

// reset prepares the sub-core for a new kernel.
func (sc *SubCore) reset() {
	sc.sched.Reset()
}
