package smcore

import (
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/regfile"
	"repro/internal/trace"
)

// lsuEntry is one memory instruction queued at the SM-shared LSU.
//
//snapshot:state
type lsuEntry struct {
	warpIdx int32
	subCore int8
	//simlint:allow nexteventguard -- entry payload mutates only while queued; pending LSU entries make SM.NextEvent return now
	in isa.Instr
}

// LSU is the SM-shared load/store unit. All four sub-cores feed one LSU
// (as on Volta), making it a shared resource the partitioning does not
// split. It admits cfg.LSUWidthPerSM instructions per cycle, serializes
// their line transactions through a single coalescer port, and schedules
// writebacks for loads.
//
//snapshot:state
type LSU struct {
	//simlint:allow nexteventguard -- back-pointer for writeback delivery; the SM's own quiescence is consulted directly
	sm       *SM
	queue    []lsuEntry
	capacity int
	portFree int64 // coalescer occupancy (1 transaction per cycle)
	//simlint:allow nexteventguard -- trace wiring: emission is output-only and idle cycles emit no events
	tr *trace.SMT

	// sharedBase sequences synthetic shared-memory "addresses" only for
	// conflict-degree modeling.
	lat struct {
		shared   int64
		constant int64
	}
}

func newLSU(sm *SM, capacity int) *LSU {
	l := &LSU{sm: sm, capacity: capacity}
	l.lat.shared = 24
	l.lat.constant = 8
	return l
}

// enqueue accepts a memory instruction from a sub-core dispatch port;
// false when the queue is full (the collector unit stays staged).
func (l *LSU) enqueue(warpIdx int32, subCore int, in isa.Instr) bool {
	if len(l.queue) >= l.capacity {
		return false
	}
	l.queue = append(l.queue, lsuEntry{warpIdx: warpIdx, subCore: int8(subCore), in: in})
	return true
}

// tick admits up to width instructions whose transactions the coalescer
// port can start this cycle.
func (l *LSU) tick(now int64) {
	width := l.sm.cfg.LSUWidthPerSM
	for n := 0; n < width && len(l.queue) > 0; n++ {
		if l.portFree > now {
			return // coalescer still busy with a previous burst
		}
		e := l.queue[0]
		copy(l.queue, l.queue[1:])
		l.queue = l.queue[:len(l.queue)-1]
		l.serve(&e, now)
	}
}

// serve executes one memory instruction: synthesizes its line addresses,
// charges coalescer occupancy, walks the hierarchy, and schedules the
// load writeback.
func (l *LSU) serve(e *lsuEntry, now int64) {
	w := &l.sm.warps[e.warpIdx]
	in := &e.in
	w.MemCounter++
	if l.tr != nil {
		l.tr.Emit(trace.KLSUAdmit, e.subCore, e.warpIdx, int32(in.Op), 0)
	}
	switch in.Op.SpaceOf() {
	case isa.SpaceGlobal:
		n := mem.Transactions(in.Mem, l.sm.cfg.LineBytes)
		if l.tr != nil {
			l.tr.Emit(trace.KCoalesce, e.subCore, e.warpIdx, int32(n), 0)
		}
		start := now
		if l.portFree > start {
			start = l.portFree
		}
		l.portFree = start + int64(n)
		write := in.Op == isa.OpSTG
		done := start
		for i := 0; i < n; i++ {
			addr := l.address(w, in, i)
			d := l.sm.hier.AccessGlobal(l.sm.id, addr, write, start+int64(i))
			if d > done {
				done = d
			}
		}
		if !write && in.Dst.Valid() {
			l.scheduleLoadWB(e, done)
		}
	case isa.SpaceShared:
		d := sharedConflictDegree(in.Mem, l.sm.cfg.SharedMemBanks)
		l.portFree = now + int64(d)
		if d > 1 {
			l.sm.st.SharedConflicts += int64(d - 1)
		}
		if in.Op == isa.OpLDS && in.Dst.Valid() {
			l.scheduleLoadWB(e, now+l.lat.shared+int64(d))
		}
	case isa.SpaceConst:
		l.portFree = now + 1
		if in.Dst.Valid() {
			l.scheduleLoadWB(e, now+l.lat.constant)
		}
	default:
		l.portFree = now + 1
	}
}

func (l *LSU) scheduleLoadWB(e *lsuEntry, done int64) {
	w := &l.sm.warps[e.warpIdx]
	sc := l.sm.subcores[e.subCore]
	bank := bankOfWarpReg(sc, w, e.in.Dst)
	l.sm.scheduleWriteback(done, e.warpIdx, e.in.Dst, bank, int(e.subCore))
}

// address synthesizes the i-th line address of a warp-wide access. The
// scheme gives each warp a private region (spaced 16 MB apart) unless the
// trait marks the footprint kernel-shared, in which case all warps walk a
// common region — producing realistic L1/L2 reuse without traces.
func (l *LSU) address(w *Warp, in *isa.Instr, i int) uint64 {
	line := uint64(l.sm.cfg.LineBytes)
	foot := uint64(in.Mem.Footprint)
	if foot < line {
		foot = line
	}
	lines := foot / line
	var base uint64
	if in.Mem.Shared {
		base = 1 << 40
	} else {
		base = (uint64(w.GID) + 1) << 24
	}
	var idx uint64
	switch in.Mem.Pattern {
	case isa.PatRandom:
		idx = w.NextRand() % lines
	case isa.PatBroadcast:
		idx = uint64(w.MemCounter) % lines
	default:
		// Streaming: consecutive accesses walk consecutive lines.
		idx = uint64(w.MemCounter) % lines
	}
	return base + (idx+uint64(i))%lines*line
}

// sharedConflictDegree models scratchpad bank conflicts: the number of
// serialized bank cycles a warp-wide shared access needs.
func sharedConflictDegree(t isa.MemTrait, banks int) int {
	switch t.Pattern {
	case isa.PatBroadcast, isa.PatCoalesced:
		return 1
	case isa.PatStrided:
		words := int(t.StrideBytes) / 4
		if words < 1 {
			words = 1
		}
		// Power-of-two strides of s words conflict s-way (classic rule);
		// odd strides are conflict-free.
		if words&(words-1) == 0 {
			if words > banks {
				words = banks
			}
			return words
		}
		return 1
	case isa.PatRandom:
		// Random permutations average ~e/(e-1) ≈ 2-way serialization on
		// 32 banks; charge 2.
		return 2
	default:
		return 1
	}
}

// bankOfWarpReg computes the destination bank for a warp register in its
// sub-core's file.
func bankOfWarpReg(sc *SubCore, w *Warp, r isa.Reg) int8 {
	return int8(regfile.BankWithOffset(int(w.BankOff), r, sc.cfg.BanksPerSubCore))
}

// pending reports queued entries (for drain checks).
func (l *LSU) pending() int { return len(l.queue) }
