// Package audit defines the structured record type produced by the
// simulator's runtime invariant auditor (docs/ROBUSTNESS.md).
//
// The auditor itself lives next to the state it checks: each simulated
// component (smcore.SM, regfile.Collector, mem.Hierarchy, gpu.GPU) exposes
// an Audit method that re-derives its conservation laws from first
// principles — scoreboard bits from in-flight instructions, collector
// leases from queued bank requests, MSHR bounds from the pending-fill map,
// occupancy from allocated blocks, the CPI stack from the cycle count —
// and reports every mismatch as a Violation. This package only holds the
// shared record type, so the sim packages can emit violations without
// importing each other.
package audit

import "fmt"

// Violation records one invariant breach found by a runtime audit. A
// violation always means simulator state is corrupt: either a modeling bug
// or (in tests) injected corruption. The run that produced it must not be
// trusted.
type Violation struct {
	// Rule names the invariant family that failed: "scoreboard", "lease",
	// "mshr", "occupancy", "regbudget", "shmem", "lsu", "channel", "cpi",
	// "residency".
	Rule string
	// Where locates the component, e.g. "sm2/sub1/warp13" or "l1m[0]".
	Where string
	// Detail states the expectation and the observation.
	Detail string
}

// String formats the violation for logs and fault records.
func (v Violation) String() string {
	return v.Rule + " @ " + v.Where + ": " + v.Detail
}

// Violationf builds a Violation with a formatted detail message.
func Violationf(rule, where, format string, args ...any) Violation {
	return Violation{Rule: rule, Where: where, Detail: fmt.Sprintf(format, args...)}
}
