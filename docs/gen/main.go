package main

import (
	"fmt"
	"os"

	"repro/internal/workloads"
)

func main() {
	f, _ := os.Create("docs/WORKLOADS.md")
	defer f.Close()
	fmt.Fprintln(f, "# Workload catalog")
	fmt.Fprintln(f)
	fmt.Fprintln(f, "The synthetic evaluation set: 112 applications across 8 suites")
	fmt.Fprintln(f, "(Section V of the paper; see `internal/workloads` for the per-suite")
	fmt.Fprintln(f, "generator parameters and DESIGN.md §2 for the substitution rationale).")
	fmt.Fprintln(f, "Regenerate with `go run ./docs/gen`.")
	suites, err := workloads.Suites()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gen:", err)
		os.Exit(1)
	}
	for _, suite := range suites {
		apps, err := workloads.BySuite(suite)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(f, "\n## %s (%d apps)\n\n", suite, len(apps))
		fmt.Fprintln(f, "| name | kernels | dynamic instructions | Table III sensitive | RF-sensitive |")
		fmt.Fprintln(f, "|---|---|---|---|---|")
		for _, a := range apps {
			fmt.Fprintf(f, "| %s | %d | %d | %v | %v |\n",
				a.Name, len(a.Kernels), a.Instructions(), a.Sensitive, a.RFSensitive)
		}
	}
}
