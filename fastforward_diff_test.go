package repro

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestFastForwardInert proves the run loop's idle-cycle fast-forward is
// observationally inert on real workloads: for one application from
// every benchmark suite, under both GTO and RBA scheduling, the full
// statistics object serializes byte-identically with fast-forward
// enabled and disabled.
func TestFastForwardInert(t *testing.T) {
	suites, err := Suites()
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []struct {
		name string
		cfg  Config
	}{
		{"gto", VoltaV100().WithSMs(2)},
		{"rba", VoltaV100().WithSMs(2).WithScheduler(SchedRBA)},
	}
	for _, suite := range suites {
		apps, err := AppsBySuite(suite)
		if err != nil {
			t.Fatal(err)
		}
		app := apps[0]
		for _, tc := range cfgs {
			tc := tc
			app := app
			t.Run(suite+"/"+tc.name+"/"+app.Name, func(t *testing.T) {
				t.Parallel()
				fast, err := Run(tc.cfg, app)
				if err != nil {
					t.Fatal(err)
				}
				slow, err := Run(tc.cfg.WithNoFastForward(), app)
				if err != nil {
					t.Fatal(err)
				}
				fj, err := json.Marshal(fast)
				if err != nil {
					t.Fatal(err)
				}
				sj, err := json.Marshal(slow)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fj, sj) {
					t.Errorf("fast-forward changed results\n ff:  %.300s\n off: %.300s", fj, sj)
				}
			})
		}
	}
}
