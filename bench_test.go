package repro

// One benchmark per reproduced table/figure. Each iteration regenerates
// the artifact end-to-end (workload synthesis, simulation sweep, table
// assembly), so `go test -bench=. -benchmem` both re-derives the paper's
// evaluation and measures the harness cost. Benchmarks report the
// headline metric of their figure as a custom unit.

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/trace"
)

// colGeoMean pulls a column's per-app values (excluding summary rows) and
// returns its geometric mean.
func colGeoMean(b *testing.B, t *exp.Table, col string, summaryRows int) float64 {
	b.Helper()
	vals, err := t.Column(col)
	if err != nil {
		b.Fatal(err)
	}
	if len(vals) > summaryRows {
		vals = vals[:len(vals)-summaryRows]
	}
	return stats.GeoMean(vals)
}

// BenchmarkFig1FullyConnectedGap regenerates Figure 1: the speedup of a
// hypothetical fully-connected SM over the partitioned baseline on all
// 112 applications (paper: +13.2% average).
func BenchmarkFig1FullyConnectedGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(colGeoMean(b, t, "fully-connected", 1), "fc-speedup")
	}
}

// BenchmarkFig3HardwareImbalance regenerates Figure 3: FMA microbenchmark
// slowdowns under the Fig. 4 layouts on partitioned vs monolithic SMs
// (paper: 3.9x unbalanced on A100, ~1x on Kepler).
func BenchmarkFig3HardwareImbalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Rows[0].Values[2], "partitioned-unbalanced-x")
	}
}

// BenchmarkFig8ImbalanceScaling regenerates Figure 8: unbalanced-FMA
// speedup of SRR and Shuffle over round robin as imbalance scales.
func BenchmarkFig8ImbalanceScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		last := t.Rows[len(t.Rows)-1]
		b.ReportMetric(last.Values[0], "srr-speedup-at-max-imbalance")
	}
}

// BenchmarkFig9AllApps regenerates Figure 9: combined-design speedups on
// all applications (paper: Shuffle+RBA +10.6% vs fully-connected +13.2%).
func BenchmarkFig9AllApps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(colGeoMean(b, t, "shuffle+rba", 1), "shuffle+rba-speedup")
		b.ReportMetric(colGeoMean(b, t, "fully-connected", 1), "fc-speedup")
	}
}

// BenchmarkFig10Sensitive regenerates Figure 10: the design summary on
// partitioning-sensitive applications (paper: RBA +11.1%, CU doubling
// +4.1%, bank stealing <1%).
func BenchmarkFig10Sensitive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(colGeoMean(b, t, "rba", 1), "rba-speedup")
		b.ReportMetric(colGeoMean(b, t, "4cu", 1), "4cu-speedup")
		b.ReportMetric(colGeoMean(b, t, "bank-steal", 1), "steal-speedup")
	}
}

// BenchmarkFig11RBAOnFC regenerates Figure 11: RBA layered on the
// fully-connected SM in RF-sensitive apps (paper: 6.1% -> 19.6%).
func BenchmarkFig11RBAOnFC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(colGeoMean(b, t, "fc+rba", 1), "fc+rba-speedup")
	}
}

// BenchmarkFig12CUScaling regenerates Figure 12: collector-unit scaling
// vs RBA (paper: +4.1/+7.1/+9.6% for 4/8/16 CUs).
func BenchmarkFig12CUScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(colGeoMean(b, t, "4cu", 1), "4cu-speedup")
		b.ReportMetric(colGeoMean(b, t, "16cu", 1), "16cu-speedup")
	}
}

// BenchmarkFig13AreaPower regenerates Figure 13 from the analytical
// area/power model (paper: 4 CUs => +27% area/+60% power; RBA => ~+1%).
func BenchmarkFig13AreaPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		_ = t
		area4, power4 := power.Relative(power.Design{CUs: 4, Banks: 2})
		b.ReportMetric(area4, "4cu-area-x")
		b.ReportMetric(power4, "4cu-power-x")
	}
}

// BenchmarkFig14ReadTimeline regenerates Figure 14: per-cycle register
// read utilization traces for pb-mriq and rod-srad.
func BenchmarkFig14ReadTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig14()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Rows[0].Values[0], "mriq-gto-reads-per-cycle")
	}
}

// BenchmarkFig15TPCHCompressed regenerates Figure 15 (paper: SRR +33.1%,
// Shuffle +27.4% on the compressed database).
func BenchmarkFig15TPCHCompressed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig15()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(colGeoMean(b, t, "srr", 1), "srr-speedup")
	}
}

// BenchmarkFig16TPCHUncompressed regenerates Figure 16 (paper: SRR
// +17.5%, Shuffle +13.9% on the uncompressed database).
func BenchmarkFig16TPCHUncompressed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig16()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(colGeoMean(b, t, "srr", 1), "srr-speedup")
	}
}

// BenchmarkFig17IssueCoV regenerates Figure 17: the coefficient of
// variation of per-sub-core instruction issue on uncompressed TPC-H
// (paper: 0.80 -> 0.11 under SRR).
func BenchmarkFig17IssueCoV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig17()
		if err != nil {
			b.Fatal(err)
		}
		mean := t.Rows[len(t.Rows)-1]
		b.ReportMetric(mean.Values[0], "rr-cov")
		b.ReportMetric(mean.Values[1], "srr-cov")
	}
}

// BenchmarkFig18SMScaling regenerates Figure 18: partitioned-SM count
// needed to match a fully-connected device (paper: 100 vs 80; 84 with
// the proposed techniques).
func BenchmarkFig18SMScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig18()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Rows[0].Values[2], "fc-over-partitioned-at-equal-sms")
	}
}

// BenchmarkSec5CUValidation regenerates the Section V collector-unit
// validation (paper: 2 CUs minimizes MAE against silicon at 16.2%).
func BenchmarkSec5CUValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Sec5CU()
		if err != nil {
			b.Fatal(err)
		}
		mae := t.Rows[len(t.Rows)-1]
		b.ReportMetric(mae.Values[1], "mae-2cu")
	}
}

// BenchmarkSec6B4ScoreLatency regenerates the RBA score-staleness study
// (paper: <0.1% loss from 0-20 cycles of staleness).
func BenchmarkSec6B4ScoreLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Sec6B4()
		if err != nil {
			b.Fatal(err)
		}
		gm := t.Rows[len(t.Rows)-1]
		b.ReportMetric(gm.Values[0]-gm.Values[3], "gain-lost-at-20cyc")
	}
}

// BenchmarkSec6B5BankScaling regenerates the bank-scaling sensitivity
// study (paper: RBA's gain drops from 19.3% to 15.4% with 4 banks).
func BenchmarkSec6B5BankScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Sec6B5()
		if err != nil {
			b.Fatal(err)
		}
		gm := t.Rows[len(t.Rows)-1]
		b.ReportMetric(gm.Values[0], "rba-2bank-speedup")
		b.ReportMetric(gm.Values[1], "rba-4bank-speedup")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed on one
// mid-size compute application (not a paper artifact; a harness metric).
func BenchmarkSimulatorThroughput(b *testing.B) {
	app, err := AppByName("pb-mriq")
	if err != nil {
		b.Fatal(err)
	}
	cfg := VoltaV100()
	cfg.NumSMs = 4
	var instr int64
	for i := 0; i < b.N; i++ {
		r, err := Run(cfg, app)
		if err != nil {
			b.Fatal(err)
		}
		instr = r.Instructions
	}
	b.ReportMetric(float64(instr*int64(b.N))/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkTracingOverhead guards the internal/trace hot path. "disabled"
// is the normal simulation with no tracer attached — every emission site
// reduces to a nil check, and this sub-benchmark must stay within 2% of
// the pre-tracing baseline (the CI contract). "enabled" attaches a full
// tracer (all-event ring + 32-cycle counter sampling on SM 0) and shows
// what observability actually costs when switched on.
func BenchmarkTracingOverhead(b *testing.B) {
	app, err := AppByName("pb-mriq")
	if err != nil {
		b.Fatal(err)
	}

	b.Run("disabled", func(b *testing.B) {
		cfg := VoltaV100()
		cfg.NumSMs = 4
		var instr int64
		for i := 0; i < b.N; i++ {
			r, err := Run(cfg, app)
			if err != nil {
				b.Fatal(err)
			}
			instr = r.Instructions
		}
		b.ReportMetric(float64(instr*int64(b.N))/b.Elapsed().Seconds(), "instr/s")
	})

	b.Run("enabled", func(b *testing.B) {
		cfg := VoltaV100()
		cfg.NumSMs = 4
		cfg.TraceSamplePeriod = 32
		var instr int64
		for i := 0; i < b.N; i++ {
			tr := trace.New(trace.OptionsFor(&cfg, 0))
			g, err := NewGPU(cfg)
			if err != nil {
				b.Fatal(err)
			}
			g.SetTracer(tr)
			for _, k := range app.Kernels {
				if err := g.RunKernel(k, 0); err != nil {
					b.Fatal(err)
				}
			}
			if err := tr.Close(); err != nil {
				b.Fatal(err)
			}
			instr = g.Run().Instructions
		}
		b.ReportMetric(float64(instr*int64(b.N))/b.Elapsed().Seconds(), "instr/s")
	})
}

// BenchmarkMetricsOverhead guards the internal/metrics hot path the same
// way BenchmarkTracingOverhead guards tracing. "disabled" is the normal
// simulation with no registry attached — the refined CPI counters are
// plain int64 increments inside the issue stage and the device flush
// reduces to one nil check per monitor beat; this sub-benchmark must
// stay within 2% of the pre-metrics baseline (the CI contract).
// "enabled" attaches a live registry and shows what telemetry costs
// when switched on (counter flushes ride the 1024-cycle heartbeat, so
// it should be indistinguishable).
func BenchmarkMetricsOverhead(b *testing.B) {
	app, err := AppByName("pb-mriq")
	if err != nil {
		b.Fatal(err)
	}
	cfg := VoltaV100()
	cfg.NumSMs = 4

	run := func(b *testing.B, reg *metrics.Registry) {
		var instr int64
		for i := 0; i < b.N; i++ {
			g, err := NewGPU(cfg)
			if err != nil {
				b.Fatal(err)
			}
			g.SetMetrics(reg)
			for _, k := range app.Kernels {
				if err := g.RunKernel(k, 0); err != nil {
					b.Fatal(err)
				}
			}
			instr = g.Run().Instructions
		}
		b.ReportMetric(float64(instr*int64(b.N))/b.Elapsed().Seconds(), "instr/s")
	}

	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) { run(b, metrics.New()) })
}
