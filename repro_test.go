package repro

import (
	"strings"
	"testing"
)

func TestFacadeRun(t *testing.T) {
	app, err := AppByName("pb-mriq")
	if err != nil {
		t.Fatal(err)
	}
	cfg := VoltaV100()
	cfg.NumSMs = 2
	r, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 || r.Instructions <= 0 {
		t.Fatal("empty result")
	}
	if r.IPC() <= 0 {
		t.Fatal("no throughput")
	}
}

func TestFacadeRBADeliversOnSensitiveApp(t *testing.T) {
	app, err := AppByName("pb-sgemm")
	if err != nil {
		t.Fatal(err)
	}
	cfg := VoltaV100()
	cfg.NumSMs = 2
	base, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	rba, err := Run(cfg.WithScheduler(SchedRBA), app)
	if err != nil {
		t.Fatal(err)
	}
	if rba.Cycles >= base.Cycles {
		t.Errorf("RBA (%d cycles) did not beat GTO (%d) on a RF-bound app", rba.Cycles, base.Cycles)
	}
}

func TestFacadeWorkloadCatalog(t *testing.T) {
	apps, err := Workloads()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(apps); n != 112 {
		t.Errorf("Workloads = %d, want 112", n)
	}
	suites, err := Suites()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(suites); n != 8 {
		t.Errorf("Suites = %d, want 8", n)
	}
	sens, err := SensitiveWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(sens) == 0 {
		t.Error("no sensitive workloads")
	}
	cg, err := AppsBySuite("cugraph")
	if err != nil || len(cg) != 7 {
		t.Errorf("cugraph roster wrong (%d apps, err %v)", len(cg), err)
	}
	if _, err := AppByName("nope"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestFacadeExperimentAPI(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 21 {
		t.Fatalf("ExperimentIDs = %d, want 21", len(ids))
	}
	var sb strings.Builder
	if err := RenderExperiment("fig13", &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fig13") {
		t.Error("render missing header")
	}
	if _, err := Experiment("figX"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFacadeTPCHConfig(t *testing.T) {
	cfg := TPCH(VoltaV100())
	if cfg.NumSMs != 20 {
		t.Errorf("TPCH NumSMs = %d, want 20", cfg.NumSMs)
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFacadeCustomKernel(t *testing.T) {
	p := WorkloadProfile{
		Name: "custom", Blocks: 2, WarpsPerBlock: 8, RegsPerThread: 16,
		Iters: 8, ILP: 2, FMAs: 2,
	}
	k := p.Kernel()
	cfg := VoltaV100()
	cfg.NumSMs = 1
	r, err := RunKernel(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != k.Instructions() {
		t.Errorf("instructions %d != kernel's %d", r.Instructions, k.Instructions())
	}
}
