package repro_test

import (
	"fmt"

	"repro"
)

// The simplest use: run one of the paper's workloads on the Table II
// baseline and inspect the result.
func ExampleRun() {
	cfg := repro.VoltaV100().WithSMs(2)
	app, _ := repro.AppByName("pb-mriq")
	res, _ := repro.Run(cfg, app)
	fmt.Println(res.Instructions > 0, res.Cycles > 0)
	// Output: true true
}

// Comparing the baseline against the paper's combined design.
func ExampleConfig_WithScheduler() {
	base := repro.VoltaV100().WithSMs(2)
	ours := base.WithScheduler(repro.SchedRBA).WithAssign(repro.AssignShuffle)
	app, _ := repro.AppByName("pb-sgemm")

	rBase, _ := repro.Run(base, app)
	rOurs, _ := repro.Run(ours, app)
	fmt.Println(rOurs.Cycles < rBase.Cycles)
	// Output: true
}

// Building a custom kernel through the workload profile API.
func ExampleWorkloadProfile() {
	p := repro.WorkloadProfile{
		Name:          "my-kernel",
		Blocks:        4,
		WarpsPerBlock: 8,
		RegsPerThread: 24,
		Iters:         16,
		ILP:           4,
		FMAs:          3,
	}
	k := p.Kernel()
	res, _ := repro.RunKernel(repro.VoltaV100().WithSMs(1), k)
	fmt.Println(res.Instructions == k.Instructions())
	// Output: true
}

// Enumerating the evaluation set.
func ExampleWorkloads() {
	apps, _ := repro.Workloads()
	suites, _ := repro.Suites()
	fmt.Println(len(apps), len(suites))
	// Output: 112 8
}
