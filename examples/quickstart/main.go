// Quickstart: simulate one application on the Volta baseline and on the
// paper's proposed design (RBA warp scheduling + Shuffle sub-core
// assignment), and report the speedup.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A register-file-bound application from the Parboil suite.
	app, err := repro.AppByName("pb-sgemm")
	if err != nil {
		log.Fatal(err)
	}

	// Table II baseline: GTO warp scheduling, round-robin sub-core
	// assignment, 4 sub-cores per SM with 2 banks and 2 collector units
	// each. Scaled to 4 SMs so the example runs in milliseconds.
	base := repro.VoltaV100().WithSMs(4)

	// The paper's combined design.
	ours := base.WithScheduler(repro.SchedRBA).WithAssign(repro.AssignShuffle)

	rBase, err := repro.Run(base, app)
	if err != nil {
		log.Fatal(err)
	}
	rOurs, err := repro.Run(ours, app)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("application:      %s (%d kernels, %d instructions)\n",
		app.Name, len(app.Kernels), app.Instructions())
	fmt.Printf("baseline (GTO+RR): %8d cycles  IPC %.2f  bank conflicts %d\n",
		rBase.Cycles, rBase.IPC(), rBase.TotalBankConflicts())
	fmt.Printf("RBA+Shuffle:       %8d cycles  IPC %.2f  bank conflicts %d\n",
		rOurs.Cycles, rOurs.IPC(), rOurs.TotalBankConflicts())
	fmt.Printf("speedup:           %.2fx\n", float64(rBase.Cycles)/float64(rOurs.Cycles))
}
