// TPC-H sub-core balancing: run database queries whose warp-specialized
// kernels put one long-running warp in every four, and show how hashed
// sub-core assignment (SRR / Shuffle) recovers the throughput that
// round-robin placement loses — including the coefficient-of-variation
// balance metric of Fig. 17.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	compressed := flag.Bool("compressed", false, "use the snappy-compressed database variant")
	queries := flag.Int("n", 6, "number of queries to run")
	flag.Parse()

	suite := "tpch-u"
	if *compressed {
		suite = "tpch-c"
	}
	apps, err := repro.AppsBySuite(suite)
	if err != nil {
		log.Fatal(err)
	}
	if *queries < len(apps) {
		apps = apps[:*queries]
	}

	// The paper evaluates TPC-H on 20 SMs sharing the full device memory
	// system; scaled here to 4 SMs with the same per-SM bandwidth share.
	base := repro.TPCH(repro.VoltaV100()).WithSMs(4)
	srr := base.WithAssign(repro.AssignSRR)
	shuffle := base.WithAssign(repro.AssignShuffle)

	fmt.Printf("suite: %s (one long-running warp per four; Fig 15/16/17)\n\n", suite)
	fmt.Printf("%-10s %9s %9s %9s %8s %8s\n", "query", "RR-cov", "SRR-cov", "Shuf-cov", "SRR-spd", "Shuf-spd")
	var srrSum, shufSum float64
	for _, app := range apps {
		rBase, err := repro.Run(base, app)
		if err != nil {
			log.Fatal(err)
		}
		rSRR, err := repro.Run(srr, app)
		if err != nil {
			log.Fatal(err)
		}
		rShuf, err := repro.Run(shuffle, app)
		if err != nil {
			log.Fatal(err)
		}
		sSRR := float64(rBase.Cycles) / float64(rSRR.Cycles)
		sShuf := float64(rBase.Cycles) / float64(rShuf.Cycles)
		srrSum += sSRR
		shufSum += sShuf
		fmt.Printf("%-10s %9.2f %9.2f %9.2f %7.2fx %7.2fx\n",
			app.Name, rBase.IssueCoV(), rSRR.IssueCoV(), rShuf.IssueCoV(), sSRR, sShuf)
	}
	n := float64(len(apps))
	fmt.Printf("\naverage speedup: SRR %.2fx, Shuffle %.2fx\n", srrSum/n, shufSum/n)
	fmt.Println("(paper: SRR +17.5% uncompressed / +33.1% compressed)")
}
