// Register-file pressure anatomy: build a custom kernel whose FMA
// operands cluster into one bank class per instruction (the pattern that
// makes two-bank sub-cores conflict-bound), then compare GTO, RBA, a
// doubled operand collector, and the fully-connected SM on it —
// the cost/benefit trade-off at the heart of the paper.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/power"
	"repro/internal/workloads"
)

func main() {
	// A custom register-file-bound kernel via the workload profile API.
	profile := repro.WorkloadProfile{
		Name:          "rf-bound-demo",
		Blocks:        24,
		WarpsPerBlock: 8,
		RegsPerThread: 40,
		Iters:         48,
		ILP:           6,
		FMAs:          6,
		OperandMode:   workloads.OperandsClustered,
	}
	kernel := profile.Kernel()

	base := repro.VoltaV100().WithSMs(4)
	designs := []struct {
		name string
		cfg  repro.Config
		// area/power of the sub-core front-end (Fig 13 model)
		hw power.Design
	}{
		{"GTO (baseline)", base, power.Design{CUs: 2, Banks: 2}},
		{"RBA", base.WithScheduler(repro.SchedRBA), power.Design{CUs: 2, Banks: 2, RBA: true}},
		{"4 CUs", base.WithCUs(4), power.Design{CUs: 4, Banks: 2}},
		{"bank stealing", base.WithBankStealing(), power.Design{CUs: 2, Banks: 2}},
		{"fully-connected", repro.FullyConnected().WithSMs(4), power.Design{CUs: 8, Banks: 8}},
	}

	var baseCycles int64
	fmt.Printf("%-16s %10s %8s %12s %9s %9s\n",
		"design", "cycles", "speedup", "conflicts", "area-x", "power-x")
	for i, d := range designs {
		r, err := repro.RunKernel(d.cfg, kernel)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseCycles = r.Cycles
		}
		area, pw := power.Relative(d.hw)
		fmt.Printf("%-16s %10d %7.2fx %12d %9.2f %9.2f\n",
			d.name, r.Cycles, float64(baseCycles)/float64(r.Cycles),
			r.TotalBankConflicts(), area, pw)
	}
	fmt.Println("\nRBA buys CU-scaling-class speedup at ~1% of the area/power cost (Fig 10/13).")
}
