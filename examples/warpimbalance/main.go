// Warp imbalance anatomy: reproduce the paper's Section III-B hardware
// observation in simulation. A thread block whose compute warps all land
// on one sub-core (positions 0,4,8,... under round-robin assignment)
// crawls on a partitioned SM, while a monolithic SM does not care — and
// the paper's hashed assignment policies recover the loss.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workloads"
)

func main() {
	const fmas = 1024
	partitioned := repro.VoltaV100().WithSMs(4)
	monolithic := repro.FullyConnected().WithSMs(4)

	fmt.Println("Fig 3: FMA microbenchmark, execution time normalized to the baseline layout")
	fmt.Printf("%-28s %10s %10s %10s\n", "device", "baseline", "balanced", "unbalanced")
	for _, d := range []struct {
		name string
		cfg  repro.Config
	}{
		{"partitioned (Volta/Ampere)", partitioned},
		{"monolithic (Kepler)", monolithic},
	} {
		var cycles [3]int64
		for i, layout := range []workloads.FMALayout{
			workloads.FMABaseline, workloads.FMABalanced, workloads.FMAUnbalanced,
		} {
			r, err := repro.RunKernel(d.cfg, workloads.FMAMicro(layout, fmas))
			if err != nil {
				log.Fatal(err)
			}
			cycles[i] = r.Cycles
		}
		fmt.Printf("%-28s %10.2f %10.2f %10.2f\n", d.name,
			1.0,
			float64(cycles[1])/float64(cycles[0]),
			float64(cycles[2])/float64(cycles[0]))
	}

	fmt.Println()
	fmt.Println("Fig 8: unbalanced FMA under each sub-core assignment policy (speedup vs RR)")
	fmt.Printf("%-10s %10s %10s\n", "imbalance", "SRR", "Shuffle")
	for _, scale := range []int{1, 2, 4, 8} {
		k := workloads.FMAImbalanceScaled(scale)
		base, err := repro.RunKernel(partitioned, k)
		if err != nil {
			log.Fatal(err)
		}
		srr, err := repro.RunKernel(partitioned.WithAssign(repro.AssignSRR), k)
		if err != nil {
			log.Fatal(err)
		}
		shuf, err := repro.RunKernel(partitioned.WithAssign(repro.AssignShuffle), k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("x%-9d %10.2f %10.2f\n", scale,
			float64(base.Cycles)/float64(srr.Cycles),
			float64(base.Cycles)/float64(shuf.Cycles))
	}
}
